// Command fgraph-bench regenerates the paper's dynamic-graph evaluation:
// the algorithm suite of Figure 9 / Table 14 (PR, CC, BC on F-Graph vs
// C-PaC vs Aspen), the batch-insert throughput of Figure 10 / Table 15,
// and the memory footprint of Table 7.
//
// Usage:
//
//	fgraph-bench [flags] <experiment>...
//	fgraph-bench algos inserts space
//	fgraph-bench all
//
// The synthetic graphs are scaled R-MAT/Erdős–Rényi stand-ins for the
// paper's social networks (DESIGN.md §4); -graphs selects a subset.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"repro/internal/experiments"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	seed := flag.Uint64("seed", 42, "graph seed")
	prIters := flag.Int("priters", 10, "PageRank iterations")
	inserts := flag.Int("inserts", 1_000_000, "edges inserted in the throughput benchmark")
	graphsFlag := flag.String("graphs", "LJ,CO,ER", "comma-separated graph subset (LJ,CO,ER,TW,FS)")
	flag.Parse()

	keep := map[string]bool{}
	for _, g := range strings.Split(*graphsFlag, ",") {
		keep[strings.TrimSpace(g)] = true
	}
	var graphs []workload.SyntheticGraph
	for _, g := range workload.PaperGraphs() {
		if keep[g.Name] {
			graphs = append(graphs, g)
		}
	}
	if len(graphs) == 0 {
		fmt.Fprintln(os.Stderr, "no graphs selected")
		os.Exit(2)
	}

	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "no experiment given; try: fgraph-bench all")
		os.Exit(2)
	}
	run := map[string]bool{}
	for _, a := range args {
		run[a] = true
	}
	all := run["all"]
	out := os.Stdout
	fmt.Fprintf(out, "fgraph-bench: graphs=%s GOMAXPROCS=%d\n\n", *graphsFlag, runtime.GOMAXPROCS(0))

	if all || run["algos"] {
		rows := experiments.Fig9GraphAlgos(graphs, *seed, *prIters)
		experiments.WriteAlgoTimes(out, rows)
		writeAlgoRatios(rows)
		fmt.Fprintln(out)
	}
	if all || run["inserts"] {
		base := graphs[len(graphs)-1] // largest selected graph, like the paper's FS
		rows := experiments.Fig10GraphInserts(base, *seed, *inserts)
		experiments.WriteGraphInserts(out, rows)
		fmt.Fprintln(out)
	}
	if all || run["space"] {
		rows := experiments.Table7GraphSpace(graphs, *seed)
		experiments.WriteGraphSpace(out, rows)
		fmt.Fprintln(out)
	}
}

// writeAlgoRatios prints the speedup-over-baselines summary of Figure 9.
func writeAlgoRatios(rows []experiments.AlgoTimes) {
	byKey := map[string]experiments.AlgoTimes{}
	var graphs []string
	for _, r := range rows {
		if r.System == "F-Graph" {
			graphs = append(graphs, r.Graph)
		}
		byKey[r.Graph+"/"+r.System] = r
	}
	t := stats.NewTable("graph", "PR F/A", "PR F/C", "CC F/A", "CC F/C", "BC F/A", "BC F/C")
	for _, g := range graphs {
		f := byKey[g+"/F-Graph"]
		a := byKey[g+"/Aspen"]
		c := byKey[g+"/C-PaC"]
		t.Row(g,
			stats.Ratio(a.PR.Seconds(), f.PR.Seconds()),
			stats.Ratio(c.PR.Seconds(), f.PR.Seconds()),
			stats.Ratio(a.CC.Seconds(), f.CC.Seconds()),
			stats.Ratio(c.CC.Seconds(), f.CC.Seconds()),
			stats.Ratio(a.BC.Seconds(), f.BC.Seconds()),
			stats.Ratio(c.BC.Seconds(), f.BC.Seconds()))
	}
	fmt.Println("Speedups over baselines (>1 = F-Graph faster):")
	t.Write(os.Stdout)
}

// Command fgraph-bench regenerates the paper's dynamic-graph evaluation:
// the algorithm suite of Figure 9 / Table 14 (PR, CC, BC on F-Graph vs
// C-PaC vs Aspen), the batch-insert throughput of Figure 10 / Table 15,
// and the memory footprint of Table 7 — plus the repo's streaming
// extension: the sharded F-Graph's ingest-rate x analytics-latency x
// snapshot-staleness sweep ("stream"), whose rows land in -graphjson (the
// committed BENCH_graph.json). With -verify the stream experiment gates
// bytewise BFS/PR/CC equality against the phased single-CPMA reference on
// every mid-stream view and exits nonzero on any divergence — the CI
// smoke gate. -obs serves live metrics (/metrics, /statz, /tracez) while
// the stream runs.
//
// Usage:
//
//	fgraph-bench [flags] <experiment>...
//	fgraph-bench algos inserts space stream
//	fgraph-bench all
//
// The synthetic graphs are scaled R-MAT/Erdős–Rényi stand-ins for the
// paper's social networks (DESIGN.md §4); -graphs selects a subset.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"repro/internal/experiments"
	"repro/internal/fgraph"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	seed := flag.Uint64("seed", 42, "graph seed")
	prIters := flag.Int("priters", 10, "PageRank iterations")
	inserts := flag.Int("inserts", 1_000_000, "edges inserted in the throughput benchmark")
	graphsFlag := flag.String("graphs", "LJ,CO,ER", "comma-separated graph subset (LJ,CO,ER,TW,FS)")
	shardsFlag := flag.String("shards", "2,8", "comma-separated shard counts for the stream experiment")
	scale := flag.Int("scale", 17, "stream experiment R-MAT scale (vertices = 2^scale)")
	batches := flag.Int("batches", 64, "stream experiment edge batches per shard count")
	batchSize := flag.Int("batch", 100_000, "stream experiment inserted edges per batch")
	delFrac := flag.Float64("delfrac", 0.2, "stream experiment delete fraction per batch")
	verify := flag.Bool("verify", false, "stream experiment: gate bytewise kernel equality vs the single-CPMA reference")
	graphJSON := flag.String("graphjson", "BENCH_graph.json", "output file for the stream experiment's JSON rows (empty disables)")
	obsAddr := flag.String("obs", "", "serve live metrics on this address while experiments run (e.g. :9090)")
	flag.Parse()

	keep := map[string]bool{}
	for _, g := range strings.Split(*graphsFlag, ",") {
		keep[strings.TrimSpace(g)] = true
	}
	var graphs []workload.SyntheticGraph
	for _, g := range workload.PaperGraphs() {
		if keep[g.Name] {
			graphs = append(graphs, g)
		}
	}
	if len(graphs) == 0 {
		fmt.Fprintln(os.Stderr, "no graphs selected")
		os.Exit(2)
	}

	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "no experiment given; try: fgraph-bench all")
		os.Exit(2)
	}
	run := map[string]bool{}
	for _, a := range args {
		run[a] = true
	}
	all := run["all"]
	out := os.Stdout
	fmt.Fprintf(out, "fgraph-bench: graphs=%s GOMAXPROCS=%d\n\n", *graphsFlag, runtime.GOMAXPROCS(0))

	if all || run["algos"] {
		rows := experiments.Fig9GraphAlgos(graphs, *seed, *prIters)
		experiments.WriteAlgoTimes(out, rows)
		writeAlgoRatios(rows)
		fmt.Fprintln(out)
	}
	if all || run["inserts"] {
		base := graphs[len(graphs)-1] // largest selected graph, like the paper's FS
		rows := experiments.Fig10GraphInserts(base, *seed, *inserts)
		experiments.WriteGraphInserts(out, rows)
		fmt.Fprintln(out)
	}
	if all || run["space"] {
		rows := experiments.Table7GraphSpace(graphs, *seed)
		experiments.WriteGraphSpace(out, rows)
		fmt.Fprintln(out)
	}
	if all || run["stream"] {
		cfg := experiments.StreamConfig{
			Seed:       *seed,
			Scale:      *scale,
			Shards:     parseShards(*shardsFlag),
			Batches:    *batches,
			BatchSize:  *batchSize,
			DeleteFrac: *delFrac,
			PRIters:    *prIters,
			Verify:     *verify,
		}
		if *obsAddr != "" {
			srv, err := obs.Serve(*obsAddr, nil)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer srv.Close()
			fmt.Fprintf(os.Stderr, "obs: serving /metrics /statz /tracez on %s\n", srv.Addr())
			// Each shard count's live graph gets a fresh registry swapped
			// into the server, so /metrics reflects the current run.
			experiments.ObserveGraph = func(label string, g *fgraph.Sharded) {
				r := obs.NewRegistry(label)
				g.RegisterMetrics(r, "fgraph")
				srv.SetRegistry(r)
				srv.AddTrace("current", g.Set().Trace())
			}
		}
		rows, err := experiments.GraphStreamSweep(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "stream:", err)
			os.Exit(1)
		}
		experiments.WriteGraphStream(out, rows)
		if cfg.Verify {
			fmt.Fprintln(out, "verify: all mid-stream views byte-identical to the single-CPMA reference")
		}
		fmt.Fprintln(out)
		if *graphJSON != "" {
			blob, err := json.MarshalIndent(struct {
				Scale int                     `json:"scale"`
				Procs int                     `json:"gomaxprocs"`
				Note  string                  `json:"note"`
				Rows  []experiments.StreamRow `json:"rows"`
			}{cfg.Scale, runtime.GOMAXPROCS(0),
				"analytics rounds run against mid-stream snapshot views with no flush barrier; lag is the enqueued-unapplied key backlog at view capture",
				rows}, "", "  ")
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := os.WriteFile(*graphJSON, append(blob, '\n'), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Fprintf(out, "stream: wrote %s (%d rows)\n", *graphJSON, len(rows))
		}
	}
}

func parseShards(s string) []int {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "bad -shards entry %q\n", f)
			os.Exit(2)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		fmt.Fprintln(os.Stderr, "-shards selects nothing")
		os.Exit(2)
	}
	return out
}

// writeAlgoRatios prints the speedup-over-baselines summary of Figure 9.
func writeAlgoRatios(rows []experiments.AlgoTimes) {
	byKey := map[string]experiments.AlgoTimes{}
	var graphs []string
	for _, r := range rows {
		if r.System == "F-Graph" {
			graphs = append(graphs, r.Graph)
		}
		byKey[r.Graph+"/"+r.System] = r
	}
	t := stats.NewTable("graph", "PR F/A", "PR F/C", "CC F/A", "CC F/C", "BC F/A", "BC F/C")
	for _, g := range graphs {
		f := byKey[g+"/F-Graph"]
		a := byKey[g+"/Aspen"]
		c := byKey[g+"/C-PaC"]
		t.Row(g,
			stats.Ratio(a.PR.Seconds(), f.PR.Seconds()),
			stats.Ratio(c.PR.Seconds(), f.PR.Seconds()),
			stats.Ratio(a.CC.Seconds(), f.CC.Seconds()),
			stats.Ratio(c.CC.Seconds(), f.CC.Seconds()),
			stats.Ratio(a.BC.Seconds(), f.BC.Seconds()),
			stats.Ratio(c.BC.Seconds(), f.BC.Seconds()))
	}
	fmt.Println("Speedups over baselines (>1 = F-Graph faster):")
	t.Write(os.Stdout)
}

// Command cpma-bench regenerates the paper's set microbenchmarks: Figures
// 1, 2, 7, 8, 11, the growing-factor study of Appendix C (Figures 12/13),
// and Tables 1, 3, 4, 5, 6 (equivalently Tables 9-13 of the appendix).
//
// Usage:
//
//	cpma-bench [flags] <experiment>...
//	cpma-bench -n 1000000 -k 1000000 fig1 fig2 table5
//	cpma-bench all
//
// Experiments: fig1 fig2 fig7 fig8 fig11 table1 table3 table4 table5
// table6 growfactor shards rebalance hotkey persist clonecost repl all.
// The defaults are ~100x below paper scale; raise -n/-k on a machine with
// the paper's 256 GB.
//
// The clonecost experiment measures the publish/checkpoint cost of the
// leaf-granular COW machinery: per steady-state size it streams uniform
// and clustered drains through a durable single-shard pipeline with one
// snapshot publication and one checkpoint per drain, and reports bytes
// actually copied (clone cost) and written (base + delta checkpoints)
// against the full-copy baselines. Results also land in -clonejson (for
// the repo's committed BENCH_clone.json). It exits nonzero if the
// clustered workload at the largest size misses the acceptance ratio
// (>= 10x cheaper than full copies at >= 1M keys/shard, >= 2x at the
// small CI smoke sizes).
//
// The shards experiment goes beyond the paper: it sweeps the concurrent
// sharded front-end from 1 to -shards shards, with -clients goroutines
// streaming batch inserts concurrently (something a single-writer CPMA
// cannot accept) and -readers goroutines issuing point lookups and range
// sums during the mixed phase; -partition selects hash or range routing.
// It then sweeps the asynchronous mailbox pipeline over clients × mailbox
// depth (-depths), comparing fire-and-forget ingest (with a final Flush)
// against the blocking front-end and reporting the achieved coalesced
// batch size. With -zipf (or the standalone rebalance experiment) it adds
// the zipfian skew sweep: power-law inserts (-zipfs exponent) into a
// range-partitioned set with live span rebalancing off versus on,
// reporting per-shard load ratio, ingest throughput, and boundary moves —
// the standalone form exits nonzero if rebalancing leaves the max/mean
// key-count ratio above 2x. With -hotfrac > 0 it also embeds the hot-key
// absorption sweep.
//
// The hotkey experiment measures the hot-key absorber (shard
// Options.HotKeys): it streams single-key-hotspot workloads — power-law
// s=2.5 unscrambled, plus a -hotfrac/-hotkeys hot-spot mix — through the
// async pipeline with absorption off and on, differentially verifying
// each run's final contents against an exact model. Results land in
// -hotjson (the repo's committed BENCH_hotkey.json). It exits nonzero if
// any row fails verification or the power-law speedup misses the
// acceptance bound (>= 5x at >= 1M inserted keys, >= 2x at CI smoke
// sizes). Finally it sweeps
// snapshot-scan-while-ingesting (-scanners):
// concurrent full-set scans through Flush barriers versus lock-free
// Snapshot captures of the writer-published frozen handles, reporting
// scan and ingest throughput under each discipline plus the
// copy-on-publish cost (publishes, clone MB).
//
// The repl experiment measures WAL-shipping replication (internal/repl):
// it preloads and checkpoints a durable primary, then sweeps 0..3
// in-process followers, reporting bootstrap catch-up time, per-node and
// fleet snapshot-read capacity (per-node rates are measured
// time-multiplexed — each node serves while the others idle — and summed,
// the capacity model for replicas that own their own machines; the
// co-scheduled single-host aggregate is reported alongside), live-ingest
// tail lag, and tail catch-up time. Results land in -repljson (the repo's
// committed BENCH_repl.json). It exits nonzero if the 3-follower fleet
// capacity misses 2x the primary-only capacity.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/internal/cachesim"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/stats"
)

func main() {
	n := flag.Int("n", 1_000_000, "elements preloaded before measurement")
	k := flag.Int("k", 1_000_000, "elements inserted/deleted during measurement")
	queries := flag.Int("queries", 1_000, "parallel range queries per measurement")
	trials := flag.Int("trials", 3, "timed trials per query measurement")
	seed := flag.Uint64("seed", 42, "workload seed")
	shards := flag.Int("shards", runtime.NumCPU(), "max shard count for the shards experiment")
	clients := flag.Int("clients", 4, "concurrent writer clients for the shards experiment")
	readers := flag.Int("readers", 2, "concurrent readers in the shards mixed phase")
	partition := flag.String("partition", "hash", "shards experiment key routing: hash|range")
	depths := flag.String("depths", "1,8,64", "mailbox depths for the async ingest sweep")
	asyncBatch := flag.Int("asyncbatch", 500, "keys per client batch in the async ingest sweep")
	scanners := flag.String("scanners", "1,4", "scanner counts for the snapshot-scan sweep")
	persistDir := flag.String("persistdir", "", "directory for the persist experiment (default: a fresh temp dir)")
	zipf := flag.Bool("zipf", false, "add the zipfian skew/rebalance sweep to the shards experiment")
	zipfS := flag.Float64("zipfs", 1.1, "power-law exponent for the skew sweep")
	cloneJSON := flag.String("clonejson", "BENCH_clone.json", "output file for the clonecost experiment's JSON rows")
	hotFrac := flag.Float64("hotfrac", 0, "hot-spot traffic fraction for the hot-key sweep (0 disables the -shards embed; the hotkey experiment defaults to 0.9)")
	hotKeysN := flag.Int("hotkeys", 4, "distinct hot keys in the hot-key sweep's hot-spot workload")
	hotJSON := flag.String("hotjson", "BENCH_hotkey.json", "output file for the hotkey experiment's JSON rows")
	replJSON := flag.String("repljson", "BENCH_repl.json", "output file for the repl experiment's JSON rows")
	obsJSON := flag.String("obsjson", "BENCH_obs.json", "output file for the percentile rows of the shards/hotkey/persist experiments (empty disables)")
	obsAddr := flag.String("obs", "", "serve live observability (/metrics /statz /tracez /debug/pprof) on this address while experiments run")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file")
	flag.Parse()

	if *obsAddr != "" {
		srv, err := obs.Serve(*obsAddr, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "obs: serving /metrics /statz /tracez /debug/pprof on %s\n", srv.Addr())
		// Each measurement set a sweep builds gets a fresh registry swapped
		// into the live server, so /metrics always reflects the current run.
		experiments.ObserveSet = func(label string, s *shard.Sharded) {
			r := obs.NewRegistry(label)
			s.RegisterMetrics(r, "cpma")
			srv.SetRegistry(r)
			srv.AddTrace("current", s.Trace())
		}
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		profiling = true
		defer pprof.StopCPUProfile()
	}

	part, err := parsePartition(*partition)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		fail(2)
	}
	depthList, err := parseInts(*depths)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bad -depths: %v\n", err)
		fail(2)
	}
	scannerList, err := parseInts(*scanners)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bad -scanners: %v\n", err)
		fail(2)
	}

	cfg := experiments.MicroConfig{BaseN: *n, TotalK: *k, Seed: *seed, Trials: *trials}
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "no experiment given; try: cpma-bench all")
		fail(2)
	}
	run := map[string]bool{}
	for _, a := range args {
		run[a] = true
	}
	all := run["all"]
	out := os.Stdout
	fmt.Fprintf(out, "cpma-bench: n=%d k=%d GOMAXPROCS=%d\n\n", *n, *k, runtime.GOMAXPROCS(0))

	// Percentile rows accumulated across experiments for -obsjson.
	var obsRows []experiments.ObsRow

	// The fig1/fig2 comparison tables carry the sharded front-end flavors
	// alongside the paper's five single-writer systems.
	makers := experiments.ComparisonSetMakers(*shards)
	if all || run["fig1"] {
		rows := experiments.Fig1BatchInsert(makers, cfg, false)
		experiments.WriteInsertRows(out, "Figure 1 / Table 9: parallel batch-insert throughput (inserts/s), uniform 40-bit", makers, rows)
		fmt.Fprintln(out)
	}
	if all || run["fig2"] {
		rows := experiments.Fig2RangeQuery(makers, cfg, *queries)
		experiments.WriteRangeRows(out, "Figure 2 / Table 10: range-query throughput (elements/s)", makers, rows)
		fmt.Fprintln(out)
	}
	if all || run["fig11"] {
		rows := experiments.Fig1BatchInsert(experiments.AllSetMakers(), cfg, true)
		experiments.WriteInsertRows(out, "Figure 11 / Table 13: zipfian batch-insert throughput (inserts/s)", experiments.AllSetMakers(), rows)
		fmt.Fprintln(out)
	}
	if all || run["table1"] {
		res := cachesim.Table1(cachesim.DefaultConfig())
		fmt.Fprintln(out, "Table 1: simulated cache misses during batch inserts (scaled replay)")
		t := stats.NewTable("workload", "L1 misses", "L3 misses")
		for _, r := range res {
			t.Row(r.Name, stats.Sci(float64(r.L1Misses)), stats.Sci(float64(r.L3Misses)))
		}
		t.Write(out)
		fmt.Fprintln(out)
	}
	if all || run["table3"] {
		rows := experiments.Table3SerialVsParallel(cfg)
		fmt.Fprintln(out, "Table 3: serial vs parallel PMA batch inserts (inserts/s)")
		t := stats.NewTable("batch", "serial TP", "parallel TP", "speedup")
		for _, r := range rows {
			t.Row(stats.Sci(float64(r.BatchSize)), stats.Sci(r.SerialTP), stats.Sci(r.ParallelTP),
				stats.Ratio(r.ParallelTP, r.SerialTP))
		}
		t.Write(out)
		fmt.Fprintln(out)
	}
	if all || run["table4"] {
		rows := experiments.Table4RMA(cfg)
		fmt.Fprintln(out, "Table 4: serial batch inserts, RMA baseline vs this paper's PMA (inserts/s)")
		t := stats.NewTable("batch", "RMA", "PMA", "PMA/RMA")
		for _, r := range rows {
			t.Row(stats.Sci(float64(r.BatchSize)), stats.Sci(r.RMATP), stats.Sci(r.PMATP),
				stats.Ratio(r.PMATP, r.RMATP))
		}
		t.Write(out)
		fmt.Fprintln(out)
	}
	if all || run["table5"] {
		for _, dist := range []struct {
			name string
			zipf bool
		}{{"uniform", false}, {"zipfian", true}} {
			rows := experiments.Table5InsertDelete(cfg, dist.zipf)
			fmt.Fprintf(out, "Table 5 (%s): batch inserts and deletes (updates/s)\n", dist.name)
			t := stats.NewTable("batch", "PMA ins", "PMA del", "D/I", "CPMA ins", "CPMA del", "D/I")
			for _, r := range rows {
				t.Row(stats.Sci(float64(r.BatchSize)),
					stats.Sci(r.PMAInsert), stats.Sci(r.PMADelete), stats.Ratio(r.PMADelete, r.PMAInsert),
					stats.Sci(r.CPMAInsert), stats.Sci(r.CPMADelete), stats.Ratio(r.CPMADelete, r.CPMAInsert))
			}
			t.Write(out)
			fmt.Fprintln(out)
		}
	}
	if all || run["table6"] {
		sizes := []int{*n / 10, *n, *n * 4}
		rows := experiments.Table6Space(experiments.AllSetMakers(), sizes, *seed)
		fmt.Fprintln(out, "Table 6: bytes per element")
		t := stats.NewTable("n", "U-PaC", "PMA", "C-PaC", "CPMA", "CPMA/C-PaC", "CPMA/PMA")
		for _, r := range rows {
			t.Row(stats.Sci(float64(r.N)),
				fmt.Sprintf("%.2f", r.BytesPerElem["U-PaC"]),
				fmt.Sprintf("%.2f", r.BytesPerElem["PMA"]),
				fmt.Sprintf("%.2f", r.BytesPerElem["C-PaC"]),
				fmt.Sprintf("%.2f", r.BytesPerElem["CPMA"]),
				stats.Ratio(r.BytesPerElem["CPMA"], r.BytesPerElem["C-PaC"]),
				stats.Ratio(r.BytesPerElem["CPMA"], r.BytesPerElem["PMA"]))
		}
		t.Write(out)
		fmt.Fprintln(out)
	}
	if all || run["fig7"] {
		rows := experiments.Fig7InsertScaling(cfg)
		fmt.Fprintln(out, "Figure 7 / Table 11: batch-insert strong scaling")
		writeScaling(rows)
	}
	if all || run["fig8"] {
		rows := experiments.Fig8RangeScaling(cfg, *queries, *n/100+1)
		fmt.Fprintln(out, "Figure 8 / Table 12: range-query strong scaling")
		writeScaling(rows)
	}
	if all || run["shards"] {
		if *shards < 1 {
			*shards = 1
		}
		bs := *n / 100
		if bs < 1 {
			bs = 1
		}
		rows := experiments.ShardConcurrentClients(cfg, *shards, *clients, *readers, bs, part)
		fmt.Fprintf(out, "Sharded front-end (%s partition): %d concurrent clients, batch %d, 1..%d shards\n",
			*partition, *clients, bs, *shards)
		t := stats.NewTable("shards", "insert TP", "speedup", "mixed TP", "reads/s", "final n")
		base := rows[0]
		for _, r := range rows {
			t.Row(r.Shards,
				stats.Sci(r.InsertTP), stats.Ratio(r.InsertTP, base.InsertTP),
				stats.Sci(r.MixedTP), stats.Sci(r.ReadOps),
				stats.Sci(float64(r.FinalElems)))
		}
		t.Write(out)
		fmt.Fprintln(out)

		arows := experiments.ShardAsyncIngest(cfg, *shards, *clients, depthList, *asyncBatch, part)
		fmt.Fprintf(out, "Async ingest pipeline (%s partition): %d shards, client batch %d, clients x mailbox depth\n",
			*partition, *shards, *asyncBatch)
		at := stats.NewTable("clients", "depth", "sync TP", "async TP", "async/sync", "sub-batch", "applied", "coalesce", "p50 ms", "p99 ms")
		for _, r := range arows {
			at.Row(r.Clients, r.Depth,
				stats.Sci(r.SyncTP), stats.Sci(r.AsyncTP), stats.Ratio(r.AsyncTP, r.SyncTP),
				fmt.Sprintf("%.0f", r.MeanSubBatch), fmt.Sprintf("%.0f", r.MeanApplied),
				stats.Ratio(r.MeanApplied, r.MeanSubBatch),
				fmt.Sprintf("%.3f", r.P50ms), fmt.Sprintf("%.3f", r.P99ms))
			obsRows = append(obsRows, experiments.ObsRow{
				Experiment: "async-ingest",
				Label:      fmt.Sprintf("clients=%d depth=%d", r.Clients, r.Depth),
				Metric:     "mailbox_residency_ns",
				OpsPerSec:  r.AsyncTP,
				P50ms:      r.P50ms,
				P99ms:      r.P99ms,
				Samples:    r.LatSamples,
			})
		}
		at.Write(out)
		fmt.Fprintln(out)

		if *zipf {
			runRebalanceSweep(out, cfg, *shards, *clients, *asyncBatch, *zipfS)
		}
		if *hotFrac > 0 {
			// Embedded form: print the sweep, no gate (the standalone
			// hotkey experiment enforces the acceptance bound).
			hrows, _, _ := runHotKeySweep(out, cfg, *shards, *clients, *asyncBatch, *hotKeysN, []float64{*hotFrac}, "")
			obsRows = append(obsRows, hotKeyObsRows(hrows)...)
		}

		srows := experiments.ShardSnapshotScan(cfg, *shards, *clients, scannerList, *asyncBatch, part)
		fmt.Fprintf(out, "Snapshot scans while ingesting (%s partition): %d shards, %d clients, flush-barrier vs lock-free snapshot scans\n",
			*partition, *shards, *clients)
		st := stats.NewTable("scanners", "flush scans/s", "ingest TP", "snap scans/s", "ingest TP", "snap/flush", "publishes", "clone MB")
		for _, r := range srows {
			st.Row(r.Scanners,
				stats.Sci(r.FlushScans), stats.Sci(r.FlushIngestTP),
				stats.Sci(r.SnapScans), stats.Sci(r.SnapIngestTP),
				stats.Ratio(r.SnapScans, r.FlushScans),
				r.Publishes, fmt.Sprintf("%.1f", r.CloneMB))
		}
		st.Write(out)
		fmt.Fprintln(out)
	}
	if (all || run["rebalance"]) && !run["shards"] {
		// Standalone skew sweep (the shards experiment embeds it via -zipf).
		if !runRebalanceSweep(out, cfg, *shards, *clients, *asyncBatch, *zipfS) {
			fmt.Fprintln(os.Stderr, "rebalance sweep: skew ratio above the 2x acceptance bound with rebalancing on")
			fail(1)
		}
	}
	if all || run["hotkey"] {
		fracs := []float64{0.9}
		if *hotFrac > 0 {
			fracs = []float64{*hotFrac}
		}
		hrows, speedup, verified := runHotKeySweep(out, cfg, *shards, *clients, *asyncBatch, *hotKeysN, fracs, *hotJSON)
		obsRows = append(obsRows, hotKeyObsRows(hrows)...)
		thr := 2.0
		if cfg.TotalK >= 1_000_000 {
			thr = 5.0
		}
		if !verified {
			fmt.Fprintln(os.Stderr, "hotkey sweep: differential verification FAILED")
			fail(1)
		}
		if speedup < thr {
			fmt.Fprintf(os.Stderr, "hotkey sweep: power-law absorber speedup %.1fx below the %.0fx acceptance bound\n", speedup, thr)
			fail(1)
		}
	}
	if all || run["persist"] {
		dir := *persistDir
		if dir == "" {
			tmp, err := os.MkdirTemp("", "cpma-persist-*")
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				fail(1)
			}
			defer os.RemoveAll(tmp)
			dir = tmp
		}
		fmt.Fprintf(out, "Durable sharded set (%s partition): ingest -> kill -> recover -> verify\n", *partition)
		r, err := experiments.PersistSmoke(cfg, *shards, *clients, *n/100+1, part, dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "persist experiment: %v\n", err)
			fail(1)
		}
		t := stats.NewTable("phase", "keys", "ok", "detail")
		t.Row("ingest", stats.Sci(float64(r.Keys)), "-",
			fmt.Sprintf("%.2e keys/s, %.1f MB WAL, %d fsyncs, %d ckpts (%.1f MB)",
				r.IngestTP, r.WalMB, r.Fsyncs, r.Ckpts, r.CkptMB))
		t.Row("wal stalls", "-", "-",
			fmt.Sprintf("append p50/p99 %.3f/%.3f ms, fsync p50/p99 %.3f/%.3f ms",
				r.AppendP50ms, r.AppendP99ms, r.FsyncP50ms, r.FsyncP99ms))
		obsRows = append(obsRows,
			experiments.ObsRow{Experiment: "persist", Label: "wal-append", Metric: "wal_append_ns",
				OpsPerSec: r.IngestTP, P50ms: r.AppendP50ms, P99ms: r.AppendP99ms, Samples: r.AppendSamples},
			experiments.ObsRow{Experiment: "persist", Label: "wal-fsync", Metric: "wal_fsync_ns",
				OpsPerSec: r.IngestTP, P50ms: r.FsyncP50ms, P99ms: r.FsyncP99ms, Samples: r.FsyncSamples})
		t.Row("clean reopen", stats.Sci(float64(r.CleanLen)), fmt.Sprintf("%v", r.CleanOK), "exact state restored")
		t.Row("torn reopen", stats.Sci(float64(r.TornLen)), fmt.Sprintf("%v", r.TornOK),
			fmt.Sprintf("cut %d B off one WAL, replayed %d batches, discarded %d torn B",
				r.TornCut, r.Replayed, r.TornBytes))
		t.Write(out)
		if !r.CleanOK || !r.TornOK {
			fmt.Fprintln(os.Stderr, "persist experiment: recovery verification FAILED")
			fail(1)
		}
		fmt.Fprintln(out)
	}
	if all || run["repl"] {
		if err := runReplSweep(out, *n, *shards, *readers, *seed, *replJSON); err != nil {
			fmt.Fprintf(os.Stderr, "repl experiment: %v\n", err)
			fail(1)
		}
	}
	if all || run["clonecost"] {
		if err := runCloneCost(out, cfg, *n, *cloneJSON); err != nil {
			fmt.Fprintf(os.Stderr, "clonecost experiment: %v\n", err)
			fail(1)
		}
	}
	if all || run["growfactor"] {
		factors := []float64{1.1, 1.2, 1.3, 1.4, 1.5, 1.6, 1.7, 1.8, 1.9, 2.0}
		rows := experiments.AppCGrowingFactor(cfg, factors)
		fmt.Fprintln(out, "Appendix C (Figures 12/13): growing-factor sensitivity")
		t := stats.NewTable("factor", "insert TP", "bytes/elem", "scan TP")
		for _, r := range rows {
			t.Row(fmt.Sprintf("%.1f", r.Factor), stats.Sci(r.InsertTP),
				fmt.Sprintf("%.2f", r.BytesPerElem), stats.Sci(r.ScanTP))
		}
		t.Write(out)
		fmt.Fprintln(out)
	}

	if *obsJSON != "" && len(obsRows) > 0 {
		blob, err := json.MarshalIndent(struct {
			Shards  int                  `json:"shards"`
			Clients int                  `json:"clients"`
			TotalK  int                  `json:"total_keys"`
			Note    string               `json:"note"`
			Rows    []experiments.ObsRow `json:"rows"`
		}{*shards, *clients, *k,
			"p50/p99 are obs-histogram quantiles of each experiment's dominant stage latency over its timed phase; buckets are power-of-two wide, so values are bucket-interpolated",
			obsRows}, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			fail(1)
		}
		if err := os.WriteFile(*obsJSON, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			fail(1)
		}
		fmt.Fprintf(out, "obs: wrote %s (%d percentile rows)\n", *obsJSON, len(obsRows))
	}
}

// hotKeyObsRows distills a hot-key sweep into percentile rows for
// -obsjson: one row per (workload, absorber) pair.
func hotKeyObsRows(rows []experiments.HotKeyRow) []experiments.ObsRow {
	var out []experiments.ObsRow
	for _, r := range rows {
		label := fmt.Sprintf("%s frac=%.2f absorb=%v", r.Workload, r.HotFrac, r.Absorb)
		out = append(out, experiments.ObsRow{
			Experiment: "hotkey",
			Label:      label,
			Metric:     "mailbox_residency_ns",
			OpsPerSec:  r.IngestTP,
			P50ms:      r.P50ms,
			P99ms:      r.P99ms,
		})
	}
	return out
}

// runCloneCost runs the publish/checkpoint cost sweep at n/10 and n keys
// per shard, prints the table, writes the JSON rows to jsonPath, and
// enforces the acceptance gate on the clustered workload at the largest
// size: COW clones and delta checkpoints must beat the full-copy
// baselines by >= 10x at paper-adjacent scale (>= 1M keys/shard), or by
// >= 2x at CI smoke sizes.
func runCloneCost(out *os.File, cfg experiments.MicroConfig, n int, jsonPath string) error {
	sizes := []int{n / 10, n}
	if sizes[0] < 1 {
		sizes = sizes[1:]
	}
	const rounds, batch = 16, 2048
	dir, err := os.MkdirTemp("", "cpma-clonecost-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	rows, err := experiments.CloneCostSweep(cfg, sizes, rounds, batch, dir)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "Publish/checkpoint cost per drain (1 shard, %d rounds, batch size/500 capped at %d): COW clones and delta checkpoints vs full copies\n",
		rounds, batch)
	t := stats.NewTable("workload", "keys", "batch", "publishes", "clone MB", "full MB", "ratio",
		"ckpts", "deltas", "ckpt MB", "full MB", "ratio", "ingest TP")
	for _, r := range rows {
		t.Row(r.Workload, stats.Sci(float64(r.Keys)), r.Batch, r.Publishes,
			fmt.Sprintf("%.2f", r.CloneMB), fmt.Sprintf("%.2f", r.FullMB), fmt.Sprintf("%.1fx", r.CloneRatio),
			r.Checkpoints, r.Deltas,
			fmt.Sprintf("%.2f", r.CkptMB), fmt.Sprintf("%.2f", r.FullCkptMB), fmt.Sprintf("%.1fx", r.CkptRatio),
			stats.Sci(r.IngestTP))
	}
	t.Write(out)
	fmt.Fprintln(out)

	blob, err := json.MarshalIndent(struct {
		Rounds int                        `json:"rounds"`
		Batch  int                        `json:"batch"`
		Rows   []experiments.CloneCostRow `json:"rows"`
	}{rounds, batch, rows}, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "clonecost: wrote %s\n\n", jsonPath)

	largest := sizes[len(sizes)-1]
	thr := 2.0
	if largest >= 1_000_000 {
		thr = 10.0
	}
	for _, r := range rows {
		if r.Workload != "clustered" || r.Keys != largest {
			continue
		}
		if r.CloneRatio < thr || r.CkptRatio < thr {
			return fmt.Errorf("clustered drains at %d keys: clone ratio %.1fx / checkpoint ratio %.1fx below the %.0fx acceptance bound",
				largest, r.CloneRatio, r.CkptRatio, thr)
		}
	}
	return nil
}

// runReplSweep runs the replication capacity sweep (0..3 followers),
// prints the table, writes the JSON rows to jsonPath, and enforces the
// acceptance gate: fleet snapshot-read capacity at 3 followers must be
// >= 2x the primary-only capacity.
func runReplSweep(out *os.File, n, shards, readers int, seed uint64, jsonPath string) error {
	preload := n / 10
	if preload < 1_000 {
		preload = 1_000
	}
	dir, err := os.MkdirTemp("", "cpma-repl-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	cfg := experiments.ReplConfig{
		Shards:    shards,
		Readers:   readers,
		Preload:   preload,
		Followers: []int{0, 1, 2, 3},
		Seed:      seed,
	}
	rows, err := experiments.ReplSweep(cfg, dir)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "WAL-shipping replication (%d shards, %d keys preloaded, %d readers/node): fleet snapshot-read capacity vs follower count\n",
		shards, preload, cfg.Readers)
	fmt.Fprintln(out, "(fleet TP = sum of per-node rates measured one node at a time — the capacity model for replicas on their own machines; cosched TP = all nodes sharing this one host)")
	t := stats.NewTable("followers", "catchup ms", "fleet TP", "gain", "cosched TP", "tail ms", "peak lag", "shipped keys", "boots")
	for _, r := range rows {
		t.Row(r.Followers,
			fmt.Sprintf("%.1f", r.CatchupMS),
			stats.Sci(r.FleetTP), fmt.Sprintf("%.2fx", r.FleetGain),
			stats.Sci(r.CoschedTP),
			fmt.Sprintf("%.1f", r.TailCatchupMS),
			r.MaxLagRecords, stats.Sci(float64(r.ShippedKeys)), r.Bootstraps)
	}
	t.Write(out)
	fmt.Fprintln(out)

	blob, err := json.MarshalIndent(struct {
		Shards        int                   `json:"shards"`
		Readers       int                   `json:"readers_per_node"`
		PreloadKeys   int                   `json:"preload_keys"`
		CapacityModel string                `json:"capacity_model"`
		Rows          []experiments.ReplRow `json:"rows"`
	}{shards, cfg.Readers, preload,
		"fleet_read_tp sums per-node rates measured time-multiplexed (one node serving at a time), the capacity model for replicas deployed on separate machines; cosched_read_tp co-schedules every node on this single benchmark host",
		rows}, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "repl: wrote %s\n\n", jsonPath)

	last := rows[len(rows)-1]
	if last.Followers >= 3 && last.FleetGain < 2.0 {
		return fmt.Errorf("fleet capacity at %d followers is %.2fx primary-only, below the 2x acceptance bound",
			last.Followers, last.FleetGain)
	}
	return nil
}

// runRebalanceSweep prints the zipfian skew sweep (rebalance off vs on
// over a range-partitioned async set) and reports whether the
// rebalance-on run met the <= 2x max/mean load-ratio bound.
func runRebalanceSweep(out *os.File, cfg experiments.MicroConfig, shards, clients, batchSize int, s float64) bool {
	rows := experiments.ShardRebalanceSweep(cfg, shards, clients, batchSize, s)
	fmt.Fprintf(out, "Zipfian skew sweep (range partition, power-law s=%.2f over %d-bit keys): %d shards, %d clients, live rebalancing off vs on\n",
		s, experiments.RebalanceBits, shards, clients)
	t := stats.NewTable("rebalance", "ingest TP", "TP gain", "max/mean", "hot frac", "moves", "moved keys", "final n")
	ok := true
	var offTP float64
	for _, r := range rows {
		name := "off"
		gain := "-"
		if r.Rebalance {
			name = "on"
			gain = stats.Ratio(r.IngestTP, offTP)
			if shards > 1 && r.MaxMeanRatio > 2 {
				ok = false
			}
		} else {
			offTP = r.IngestTP
		}
		t.Row(name, stats.Sci(r.IngestTP), gain,
			fmt.Sprintf("%.2f", r.MaxMeanRatio), fmt.Sprintf("%.2f", r.MaxShardFrac),
			r.Moves, stats.Sci(float64(r.MovedKeys)), stats.Sci(float64(r.FinalKeys)))
	}
	t.Write(out)
	fmt.Fprintln(out)
	return ok
}

// runHotKeySweep prints the hot-key absorption sweep (absorber off vs on
// over identical skewed streams), optionally writes the JSON rows to
// jsonPath (skipped when empty — the -shards embedded form), and returns
// the power-law row pair's on/off throughput ratio plus whether every row
// passed its exact differential verification.
func runHotKeySweep(out *os.File, cfg experiments.MicroConfig, shards, clients, batchSize, hotKeys int, hotFracs []float64, jsonPath string) (rows []experiments.HotKeyRow, speedup float64, verified bool) {
	const s = 2.5
	rows = experiments.ShardHotKeySweep(cfg, shards, clients, batchSize, hotKeys, s, hotFracs)
	fmt.Fprintf(out, "Hot-key absorption sweep (hash partition, %d shards, %d clients): power-law s=%.1f unscrambled + hot-spot mixes, absorber off vs on\n",
		shards, clients, s)
	t := stats.NewTable("workload", "hot frac", "absorb", "ingest TP", "TP gain", "absorbed", "promos", "demos", "final n", "verified", "p50 ms", "p99 ms")
	verified = true
	var offTP float64
	for _, r := range rows {
		name, gain := "off", "-"
		if r.Absorb {
			name = "on"
			gain = stats.Ratio(r.IngestTP, offTP)
			if r.Workload == "powerlaw-2.5" && offTP > 0 {
				speedup = r.IngestTP / offTP
			}
		} else {
			offTP = r.IngestTP
		}
		if !r.Verified {
			verified = false
		}
		t.Row(r.Workload, fmt.Sprintf("%.2f", r.HotFrac), name,
			stats.Sci(r.IngestTP), gain,
			fmt.Sprintf("%.0f%%", 100*r.AbsorbedFrac),
			r.Promotions, r.Demotions,
			stats.Sci(float64(r.FinalKeys)), fmt.Sprintf("%v", r.Verified),
			fmt.Sprintf("%.3f", r.P50ms), fmt.Sprintf("%.3f", r.P99ms))
	}
	t.Write(out)
	fmt.Fprintln(out)

	if jsonPath != "" {
		blob, err := json.MarshalIndent(struct {
			Shards    int                     `json:"shards"`
			Clients   int                     `json:"clients"`
			TotalKeys int                     `json:"total_keys"`
			PowerLawS float64                 `json:"powerlaw_s"`
			Rows      []experiments.HotKeyRow `json:"rows"`
		}{shards, clients, cfg.TotalK, s, rows}, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "hotkey sweep: %v\n", err)
			return rows, speedup, false
		}
		if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "hotkey sweep: %v\n", err)
			return rows, speedup, false
		}
		fmt.Fprintf(out, "hotkey: wrote %s\n\n", jsonPath)
	}
	return rows, speedup, verified
}

// profiling notes whether a -cpuprofile run is active so fail can flush
// the profile before exiting nonzero (deferred stops don't run past
// os.Exit).
var profiling bool

func fail(code int) {
	if profiling {
		pprof.StopCPUProfile()
	}
	os.Exit(code)
}

func parsePartition(s string) (shard.Partition, error) {
	switch s {
	case "hash":
		return shard.HashPartition, nil
	case "range":
		return shard.RangePartition, nil
	}
	return 0, fmt.Errorf("bad -partition %q: want hash or range", s)
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		if v < 1 {
			return nil, fmt.Errorf("value %d out of range", v)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

func writeScaling(rows []experiments.ScalingRow) {
	t := stats.NewTable("cores", "PMA TP", "PMA speedup", "CPMA TP", "CPMA speedup")
	base := rows[0]
	for _, r := range rows {
		t.Row(r.Procs,
			stats.Sci(r.PMATP), stats.Ratio(r.PMATP, base.PMATP),
			stats.Sci(r.CPMATP), stats.Ratio(r.CPMATP, base.CPMATP))
	}
	t.Write(os.Stdout)
	fmt.Println()
}

// Benchmarks regenerating every table and figure of the paper's evaluation
// at a scale that finishes in seconds (one Benchmark per experiment; the
// cmd/cpma-bench and cmd/fgraph-bench harnesses run the same drivers at
// configurable scale and print the papers' row format).
//
//	go test -bench=. -benchmem
package repro_test

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/cachesim"
	"repro/internal/cpma"
	"repro/internal/experiments"
	"repro/internal/fgraph"
	"repro/internal/graph"
	"repro/internal/pma"
	"repro/internal/rma"
	"repro/internal/workload"
)

const (
	benchBaseN = 200_000 // structure size before measurement
	benchBits  = workload.UniformBits
)

// prebuilt batches cycled through b.N iterations.
func benchBatches(seed uint64, count, size int, zipf bool) [][]uint64 {
	r := workload.NewRNG(seed)
	var z *workload.Zipf
	if zipf {
		z = workload.NewZipf(r, workload.ZipfBits, workload.ZipfTheta)
	}
	out := make([][]uint64, count)
	for i := range out {
		if zipf {
			out[i] = workload.ZipfBatch(z, size)
		} else {
			out[i] = workload.Uniform(r, size, benchBits)
		}
	}
	return out
}

func baseKeys(seed uint64) []uint64 {
	return workload.Uniform(workload.NewRNG(seed), benchBaseN, benchBits)
}

// benchInsert times batch inserts of one size into one system.
func benchInsert(b *testing.B, mk experiments.SetMaker, bs int, zipf bool) {
	s := mk.New()
	s.InsertBatch(baseKeys(1), false)
	batches := benchBatches(2, 64, bs, zipf)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.InsertBatch(batches[i%len(batches)], false)
	}
	b.ReportMetric(float64(bs), "inserts/op")
}

// BenchmarkFig1BatchInsert covers Figure 1 / Table 9: uniform batch-insert
// throughput per system and batch size.
func BenchmarkFig1BatchInsert(b *testing.B) {
	for _, mk := range experiments.AllSetMakers() {
		for _, bs := range []int{100, 10_000} {
			b.Run(fmt.Sprintf("%s/bs=%d", mk.Name, bs), func(b *testing.B) {
				benchInsert(b, mk, bs, false)
			})
		}
	}
}

// BenchmarkFig11Zipf covers Figure 11 / Table 13: zipfian batch inserts.
func BenchmarkFig11Zipf(b *testing.B) {
	for _, mk := range experiments.AllSetMakers() {
		b.Run(mk.Name, func(b *testing.B) {
			benchInsert(b, mk, 10_000, true)
		})
	}
}

// BenchmarkFig2RangeQuery covers Figure 2 / Table 10: range-map throughput
// per system and expected range length.
func BenchmarkFig2RangeQuery(b *testing.B) {
	for _, mk := range experiments.AllSetMakers() {
		for _, avgLen := range []int{50, 20_000} {
			b.Run(fmt.Sprintf("%s/len=%d", mk.Name, avgLen), func(b *testing.B) {
				s := mk.New()
				s.InsertBatch(baseKeys(1), false)
				span := uint64(float64(uint64(1)<<benchBits) * float64(avgLen) / float64(benchBaseN))
				r := workload.NewRNG(3)
				b.ResetTimer()
				total := 0
				for i := 0; i < b.N; i++ {
					start := 1 + r.Uint64()%(uint64(1)<<benchBits-span)
					_, cnt := s.RangeSum(start, start+span)
					total += cnt
				}
				b.ReportMetric(float64(total)/float64(b.N), "elems/op")
			})
		}
	}
}

// BenchmarkTable1CacheModel covers Table 1: the simulated cache-miss replay.
func BenchmarkTable1CacheModel(b *testing.B) {
	cfg := cachesim.DefaultConfig()
	cfg.N = 200_000
	cfg.BatchSize = 2_000
	cfg.Batches = 2
	cfg.L3Bytes = 1 << 18
	for i := 0; i < b.N; i++ {
		res := cachesim.Table1(cfg)
		if len(res) != 4 {
			b.Fatal("bad result")
		}
	}
}

// BenchmarkTable3SerialVsParallel covers Table 3: the PMA batch-insert
// algorithm on one worker vs all workers.
func BenchmarkTable3SerialVsParallel(b *testing.B) {
	for _, procs := range []int{1, 0} { // 0 = all
		name := "parallel"
		if procs == 1 {
			name = "serial"
		}
		b.Run(name, func(b *testing.B) {
			if procs == 1 {
				restore := setProcs(1)
				defer restore()
			}
			p := pma.New(nil)
			p.InsertBatch(baseKeys(1), false)
			batches := benchBatches(2, 64, 10_000, false)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.InsertBatch(batches[i%len(batches)], false)
			}
		})
	}
}

// BenchmarkTable4RMA covers Table 4: serial batch inserts, RMA-style local
// merges vs this paper's algorithm.
func BenchmarkTable4RMA(b *testing.B) {
	b.Run("RMA", func(b *testing.B) {
		m := rma.New(0)
		m.InsertBatch(baseKeys(1), false)
		batches := benchBatches(2, 64, 10_000, false)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.InsertBatch(batches[i%len(batches)], false)
		}
	})
	b.Run("PMA", func(b *testing.B) {
		p := pma.New(nil)
		p.InsertBatch(baseKeys(1), false)
		batches := benchBatches(2, 64, 10_000, false)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.InsertBatch(batches[i%len(batches)], false)
		}
	})
}

// BenchmarkTable5Deletes covers Table 5: batch deletes for PMA and CPMA.
func BenchmarkTable5Deletes(b *testing.B) {
	for _, mk := range []experiments.SetMaker{experiments.PMAMaker(), experiments.CPMAMaker()} {
		b.Run(mk.Name, func(b *testing.B) {
			s := mk.New()
			s.InsertBatch(baseKeys(1), false)
			batches := benchBatches(2, 64, 10_000, false)
			for _, batch := range batches {
				s.InsertBatch(batch, false)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				batch := batches[i%len(batches)]
				s.RemoveBatch(batch, false)
				b.StopTimer()
				s.InsertBatch(batch, false) // restore for the next round
				b.StartTimer()
			}
		})
	}
}

// BenchmarkTable6Space covers Table 6: bytes per element per system.
func BenchmarkTable6Space(b *testing.B) {
	for _, mk := range experiments.AllSetMakers() {
		b.Run(mk.Name, func(b *testing.B) {
			var per float64
			for i := 0; i < b.N; i++ {
				s := mk.New()
				s.InsertBatch(baseKeys(1), false)
				per = float64(s.SizeBytes()) / float64(s.Len())
			}
			b.ReportMetric(per, "bytes/elem")
		})
	}
}

// BenchmarkFig7InsertScaling covers Figure 7 / Table 11 (bounded by the
// host's cores).
func BenchmarkFig7InsertScaling(b *testing.B) {
	for _, procs := range experiments.CoreCounts() {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			restore := setProcs(procs)
			defer restore()
			p := cpma.New(nil)
			p.InsertBatch(baseKeys(1), false)
			batches := benchBatches(2, 64, 10_000, false)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.InsertBatch(batches[i%len(batches)], false)
			}
		})
	}
}

// BenchmarkFig8RangeScaling covers Figure 8 / Table 12.
func BenchmarkFig8RangeScaling(b *testing.B) {
	s := cpma.New(nil)
	s.InsertBatch(baseKeys(1), false)
	avgLen := 2_000
	span := uint64(float64(uint64(1)<<benchBits) * float64(avgLen) / float64(benchBaseN))
	for _, procs := range experiments.CoreCounts() {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			restore := setProcs(procs)
			defer restore()
			r := workload.NewRNG(5)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				start := 1 + r.Uint64()%(uint64(1)<<benchBits-span)
				s.RangeSum(start, start+span)
			}
		})
	}
}

// BenchmarkAppCGrowingFactor covers Appendix C (Figures 12/13).
func BenchmarkAppCGrowingFactor(b *testing.B) {
	for _, f := range []float64{1.2, 1.5, 2.0} {
		b.Run(fmt.Sprintf("factor=%.1f", f), func(b *testing.B) {
			batches := benchBatches(2, 32, 10_000, false)
			b.ResetTimer()
			var per float64
			for i := 0; i < b.N; i++ {
				c := cpma.New(&cpma.Options{GrowthFactor: f})
				for _, batch := range batches {
					c.InsertBatch(batch, false)
				}
				per = float64(c.SizeBytes()) / float64(c.Len())
			}
			b.ReportMetric(per, "bytes/elem")
		})
	}
}

// --- graph experiments ---

func benchGraph(nv int) []workload.Edge {
	r := workload.NewRNG(9)
	return workload.Symmetrize(workload.RMAT(r, nv*8, log2(nv), workload.DefaultRMAT()))
}

func log2(v int) int {
	n := 0
	for 1<<n < v {
		n++
	}
	return n
}

// BenchmarkFig9GraphAlgos covers Figure 9 / Table 14: PR, CC, BC across the
// three graph systems.
func BenchmarkFig9GraphAlgos(b *testing.B) {
	nv := 1 << 12
	edges := benchGraph(nv)
	for _, mk := range experiments.GraphMakers() {
		g := mk.New(nv, edges)
		for _, algo := range []string{"PR", "CC", "BC"} {
			b.Run(mk.Name+"/"+algo, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if fg, ok := g.(interface{ BuildIndex() }); ok {
						fg.BuildIndex()
					}
					switch algo {
					case "PR":
						graph.PageRank(g, 10)
					case "CC":
						graph.ConnectedComponents(g)
					default:
						graph.BC(g, 0)
					}
				}
			})
		}
	}
}

// BenchmarkFig10GraphInserts covers Figure 10 / Table 15: batch edge
// inserts into a prebuilt graph.
func BenchmarkFig10GraphInserts(b *testing.B) {
	nv := 1 << 12
	edges := benchGraph(nv)
	for _, mk := range experiments.GraphMakers() {
		b.Run(mk.Name, func(b *testing.B) {
			g := mk.New(nv, edges)
			r := workload.NewRNG(11)
			batches := make([][]workload.Edge, 32)
			for i := range batches {
				batches[i] = workload.RMAT(r, 10_000, log2(nv), workload.DefaultRMAT())
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.InsertEdges(batches[i%len(batches)])
			}
			b.ReportMetric(10_000, "edges/op")
		})
	}
}

// BenchmarkTable7GraphSpace covers Table 7: graph memory footprint.
func BenchmarkTable7GraphSpace(b *testing.B) {
	nv := 1 << 12
	edges := benchGraph(nv)
	for _, mk := range experiments.GraphMakers() {
		b.Run(mk.Name, func(b *testing.B) {
			var bytes uint64
			for i := 0; i < b.N; i++ {
				g := mk.New(nv, edges)
				bytes = g.SizeBytes()
			}
			b.ReportMetric(float64(bytes)/float64(len(edges)), "bytes/edge")
		})
	}
}

// BenchmarkFGraphIndexBuild isolates F-Graph's vertex-index rebuild, the
// fixed per-algorithm cost §6 discusses.
func BenchmarkFGraphIndexBuild(b *testing.B) {
	nv := 1 << 12
	g := fgraph.FromEdges(nv, benchGraph(nv), nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.BuildIndex()
	}
}

func setProcs(p int) func() {
	old := runtime.GOMAXPROCS(p)
	return func() { runtime.GOMAXPROCS(old) }
}

// Graphstream: the sharded streaming F-Graph — one goroutine pours R-MAT
// insert/delete edge batches through the async pipeline while another runs
// analytics (BFS, connected components, PageRank) against immutable
// epoch-snapshot views, with no flush barrier between rounds. Each round
// prints the view's staleness (ingest backlog at capture and view age)
// next to the kernel timings: the phased single-CPMA engine of paper §6
// has neither number, because there analytics always see — and wait for —
// a quiescent graph.
package main

import (
	"fmt"
	"time"

	"repro"
)

func main() {
	const (
		scale   = 14 // 16k vertices
		nv      = 1 << scale
		shards  = 4
		batches = 40
		perStep = 50_000
	)
	g := repro.NewShardedFGraph(nv, shards, nil)

	done := make(chan struct{})
	go func() {
		defer close(done)
		stream := repro.NewEdgeStream(7, scale, 0.15)
		for b := 0; b < batches; b++ {
			ins, del := stream.Next(perStep)
			if err := g.InsertEdges(ins); err != nil {
				panic(err)
			}
			if len(del) > 0 {
				if err := g.DeleteEdges(del); err != nil {
					panic(err)
				}
			}
		}
		g.Flush()
	}()

	round := 0
	ingesting := true
	for ingesting {
		select {
		case <-done:
			ingesting = false
		default:
		}
		round++
		start := time.Now()
		v := g.View()
		build := time.Since(start)

		start = time.Now()
		labels := repro.ConnectedComponents(v)
		cc := time.Since(start)

		start = time.Now()
		ranks := repro.PageRank(v, 10)
		pr := time.Since(start)

		components := map[uint32]bool{}
		reachable := 0
		for u, l := range labels {
			if v.Degree(uint32(u)) > 0 {
				components[l] = true
				reachable++
			}
		}
		maxV, maxR := 0, 0.0
		for u, x := range ranks {
			if x > maxR {
				maxV, maxR = u, x
			}
		}
		fmt.Printf("round %2d: view %8d edges (%5.1fms build, lag %7d keys, age %5.1fms) | %4d components over %5d vertices (CC %6.1fms) | top PR vertex %5d (PR %6.1fms)\n",
			round, v.NumEdges(), build.Seconds()*1e3, v.LagKeys(), v.Age().Seconds()*1e3,
			len(components), reachable, cc.Seconds()*1e3, maxV, pr.Seconds()*1e3)
	}

	g.Close()
	final := g.View() // views work after Close; this one sees the drained state
	fmt.Printf("\nfinal graph: %d vertices, %d directed edges over %d shards, %.2f MB (%.2f bytes/edge), %d analytics rounds ran during ingest\n",
		final.NumVertices(), final.NumEdges(), shards,
		float64(g.SizeBytes())/(1<<20),
		float64(g.SizeBytes())/float64(final.NumEdges()), round)
}

// Graphstream: F-Graph as a dynamic-graph engine — stream R-MAT edge
// batches into the single-CPMA graph and interleave analytics (connected
// components, PageRank), the workload of paper §6.
package main

import (
	"fmt"
	"time"

	"repro"
)

func main() {
	const (
		scale   = 14 // 16k vertices
		nv      = 1 << scale
		rounds  = 5
		perStep = 200_000
	)
	g := repro.NewFGraph(nv)
	r := repro.NewRNG(7)

	for round := 1; round <= rounds; round++ {
		// Ingest a batch of directed edges, stored in both directions.
		batch := repro.Symmetrize(repro.RMATEdges(r, perStep, scale))
		start := time.Now()
		added := g.InsertEdges(batch)
		ingest := time.Since(start)

		// Rebuild the vertex index (one parallel pass over the CPMA) and
		// run analytics on the updated graph.
		start = time.Now()
		g.EnsureIndex()
		labels := repro.ConnectedComponents(g)
		cc := time.Since(start)

		start = time.Now()
		ranks := repro.PageRank(g, 10)
		pr := time.Since(start)

		components := map[uint32]bool{}
		reachable := 0
		for v, l := range labels {
			if g.Degree(uint32(v)) > 0 {
				components[l] = true
				reachable++
			}
		}
		maxV, maxR := 0, 0.0
		for v, x := range ranks {
			if x > maxR {
				maxV, maxR = v, x
			}
		}
		fmt.Printf("round %d: +%6d edges (%7.1fms ingest) | %8d edges total | %4d components over %5d vertices (CC %6.1fms) | top PR vertex %5d (PR %6.1fms)\n",
			round, added, ingest.Seconds()*1e3, g.NumEdges(),
			len(components), reachable, cc.Seconds()*1e3, maxV, pr.Seconds()*1e3)
	}

	fmt.Printf("\nfinal graph: %d vertices, %d directed edges, %.2f MB in one CPMA (%.2f bytes/edge)\n",
		g.NumVertices(), g.NumEdges(),
		float64(g.SizeBytes())/(1<<20),
		float64(g.SizeBytes())/float64(g.NumEdges()))
}

// Shardserver: the sharded front-end as a tiny in-memory set server,
// running the asynchronous ingest pipeline. The CPMA itself is
// batch-parallel but single-writer; an async ShardedSet multiplexes many
// concurrently mutating clients onto P single-writer shards, each fed by
// a bounded mailbox whose writer goroutine coalesces adjacent batches
// into one large merged apply. Writers here fire-and-forget their
// batches (InsertBatchAsync/RemoveBatchAsync) while point readers issue
// lookups against the applied state and analytics readers run whole-set
// scans off Snapshot captures — frozen epoch cuts the shard writers
// publish after every state-changing drain — so the query phase runs
// concurrently with ingest instead of behind a flush barrier, never
// blocks the writers, and never observes a shard mid-apply: every scan
// sees each shard at a batch boundary of its mailbox (a frontier cut;
// a multi-shard client batch may still be partially visible across
// shards until every mailbox has drained it).
//
// With -dir the server becomes durable: batches are write-ahead logged
// per shard before applying, checkpoints are cut from the published
// snapshot handles, and a restart with the same -dir recovers the
// previous run's state (the boot line reports recovered keys and
// replayed batches). Kill it mid-run and restart to watch recovery
// truncate the torn tail.
//
// A durable server can also replicate. With -listen it serves its WAL to
// followers while running the workload; a second process started with
// -follow (and the same -shards) dials it, bootstraps from the
// checkpoint chain, replays the live record stream into a read-only
// replica, and serves point lookups and snapshot scans off it until the
// primary exits:
//
//	shardserver -dir /tmp/primary -listen 127.0.0.1:7000
//	shardserver -follow 127.0.0.1:7000 -shards 8
//
// Kill and restart the follower mid-run: the reconnect resumes from its
// replicated positions instead of re-shipping history.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro"
)

func main() {
	shards := flag.Int("shards", 8, "number of CPMA shards")
	writers := flag.Int("writers", 4, "concurrent writer clients")
	readers := flag.Int("readers", 4, "concurrent point-lookup clients")
	analysts := flag.Int("analysts", 2, "concurrent snapshot-scan clients")
	batches := flag.Int("batches", 50, "batches per writer")
	batchSize := flag.Int("batch", 10_000, "keys per batch")
	depth := flag.Int("depth", 0, "mailbox depth per shard (0 = default)")
	dir := flag.String("dir", "", "durable store directory: the server recovers its state from here on boot and survives restarts (empty = in-memory only)")
	listen := flag.String("listen", "", "serve WAL replication to followers on this address (requires -dir)")
	follow := flag.String("follow", "", "run as a read-only follower of the primary at this address (use the primary's -shards)")
	obsAddr := flag.String("obs", "", "serve observability (/metrics /statz /tracez /debug/pprof) on this address")
	obsHold := flag.Duration("obshold", 0, "keep serving -obs for this long after the workload finishes (e.g. 30s), so the final state can be scraped")
	flag.Parse()

	if *follow != "" {
		runFollower(*follow, *shards, *readers, *analysts, *obsAddr)
		return
	}

	// With -dir the server is durable: every batch is write-ahead logged
	// by the shard writers, checkpoints are cut in the background, and a
	// restart replays whatever the last run left behind. Run it twice with
	// the same -dir and watch the boot line pick up the previous run's
	// keys.
	var s *repro.ShardedSet
	var pr *repro.ReplPrimary
	var ln net.Listener
	if *listen != "" && *dir == "" {
		fmt.Fprintln(os.Stderr, "-listen requires -dir: replication ships the durable WAL")
		os.Exit(1)
	}
	if *dir != "" {
		var err error
		sopts := &repro.ShardedSetOptions{
			MailboxDepth:           *depth,
			CheckpointEveryBatches: 200,
		}
		if *listen != "" {
			s, pr, err = repro.OpenPrimary(*dir, *shards, sopts)
		} else {
			s, err = repro.OpenDurableShardedSet(*dir, *shards, sopts)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "open durable store:", err)
			os.Exit(1)
		}
		boot := s.PersistStats()
		fmt.Printf("recovered %d keys from %s (%d WAL batches replayed, %d keys, %d torn bytes dropped)\n",
			boot.RecoveredKeys, *dir, boot.ReplayedBatches, boot.ReplayedKeys, boot.TornBytes)
		if *listen != "" {
			if ln, err = net.Listen("tcp", *listen); err != nil {
				fmt.Fprintln(os.Stderr, "listen:", err)
				os.Exit(1)
			}
			go repro.ServeReplication(ln, pr, nil)
			fmt.Printf("serving WAL replication on %s\n", ln.Addr())
		}
	} else {
		s = repro.NewShardedSetWith(*shards, &repro.ShardedSetOptions{
			Async:        true,
			MailboxDepth: *depth,
		})
	}
	defer s.Close()

	// Opt-in observability: the set's full metric surface (and the
	// primary's shipping counters when replicating) behind one HTTP
	// endpoint. Scrapes never block the pipeline, so curl away mid-run.
	var msrv *repro.MetricsServer
	if *obsAddr != "" {
		m := repro.NewMetrics("shardserver")
		repro.Observe(s, m, "cpma")
		if pr != nil {
			pr.RegisterMetrics(m, "cpma_repl")
		}
		var err error
		if msrv, err = repro.ServeMetrics(*obsAddr, m); err != nil {
			fmt.Fprintln(os.Stderr, "obs:", err)
			os.Exit(1)
		}
		msrv.AddTrace("pipeline", s.Trace())
		fmt.Printf("observability on http://%s (/metrics /statz /tracez /debug/pprof/)\n", msrv.Addr())
	}

	// Writers: each client streams its own uniform batches into the
	// mailboxes and moves on immediately; roughly one in eight batches is
	// retracted again to exercise deletes. Per-client enqueue order is
	// preserved shard by shard, so each retraction lands after its insert.
	var enqueued, retracted atomic.Int64
	var writerWG sync.WaitGroup
	start := time.Now()
	for w := 0; w < *writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			r := repro.NewRNG(uint64(w) + 1)
			for i := 0; i < *batches; i++ {
				batch := repro.UniformKeys(r, *batchSize, 40)
				s.InsertBatchAsync(batch, false)
				enqueued.Add(int64(len(batch)))
				if i%8 == 7 {
					s.RemoveBatchAsync(batch[:len(batch)/2], false)
					retracted.Add(int64(len(batch) / 2))
				}
			}
		}(w)
	}

	// Point readers: lookups against the applied state (read-through)
	// until the writers are done enqueueing.
	var lookups atomic.Int64
	var done atomic.Bool
	var readerWG sync.WaitGroup
	for g := 0; g < *readers; g++ {
		readerWG.Add(1)
		go func(g int) {
			defer readerWG.Done()
			r := repro.NewRNG(uint64(1000 + g))
			for !done.Load() {
				s.Has(1 + r.Uint64()%(1<<40))
				lookups.Add(1)
			}
		}(g)
	}

	// Analysts: the query phase, running concurrently with ingest. Each
	// analyst captures a frozen Snapshot (a lock-free handle grab off the
	// writer-published epoch cuts) and scans it — whole-set Len plus a
	// range sum — with no flush barrier and no shard locks, so scans
	// neither wait for the mailboxes to drain nor stall the writers.
	var scans, scannedKeys atomic.Int64
	for g := 0; g < *analysts; g++ {
		readerWG.Add(1)
		go func(g int) {
			defer readerWG.Done()
			r := repro.NewRNG(uint64(2000 + g))
			for !done.Load() {
				snap := s.Snapshot()
				lo := r.Uint64() % (1 << 40)
				_, cnt := snap.RangeSum(lo, lo+1<<34)
				scannedKeys.Add(int64(snap.Len()) + int64(cnt))
				scans.Add(1)
			}
		}(g)
	}

	writerWG.Wait()
	enqueueDone := time.Since(start)
	// The final summary still wants everything enqueued: one Flush, then a
	// last Snapshot that is guaranteed to cover it (read-your-flushes).
	s.Flush()
	elapsed := time.Since(start)
	done.Store(true)
	readerWG.Wait()
	final := s.Snapshot()

	updates := enqueued.Load() + retracted.Load()
	st := s.IngestStats()
	sst := s.SnapshotStats()
	fmt.Printf("%d shards (mailbox pipeline), %d writers, %d readers, %d analysts, %.2fs (+%.0fms flush)\n",
		*shards, *writers, *readers, *analysts, elapsed.Seconds(), (elapsed-enqueueDone).Seconds()*1000)
	fmt.Printf("enqueued %d inserts and %d removes (%.2e updates/s) alongside %d lookups\n",
		enqueued.Load(), retracted.Load(), float64(updates)/elapsed.Seconds(), lookups.Load())
	fmt.Printf("coalescing: %d sub-batches (mean %.0f keys) applied as %d merges (mean %.0f keys, %.1fx)\n",
		st.EnqueuedBatches, st.MeanEnqueuedBatch(), st.AppliedBatches, st.MeanAppliedBatch(),
		st.MeanAppliedBatch()/st.MeanEnqueuedBatch())
	fmt.Printf("snapshots: %d scans over %d captures during ingest (%.2e keys scanned), %d epochs published as %d clones (%.1f MB)\n",
		scans.Load(), sst.Captures, float64(scannedKeys.Load()), sst.Epochs, sst.Publishes,
		float64(sst.CloneBytes)/(1<<20))
	fmt.Printf("final set: %d keys in %.1f MB (%.2f bytes/key)\n",
		final.Len(), float64(final.SizeBytes())/(1<<20), float64(final.SizeBytes())/float64(final.Len()))

	// Durable runs: cut a final checkpoint so the next boot recovers from
	// slabs instead of replaying the whole log, and show what durability
	// cost this session.
	if s.Durable() {
		if err := s.Checkpoint(); err != nil {
			fmt.Fprintln(os.Stderr, "final checkpoint:", err)
			os.Exit(1)
		}
		pst := s.PersistStats()
		fmt.Printf("durability: %d WAL batches (%.1f MB, %d fsyncs), %d checkpoints (%.1f MB slabs), %d segments truncated\n",
			pst.AppendedBatches, float64(pst.AppendedBytes)/(1<<20), pst.Fsyncs,
			pst.Checkpoints, float64(pst.CheckpointBytes)/(1<<20), pst.TruncatedSegments)
	}

	// Replicating primaries: give live followers a moment to drain the
	// tail, report the shipping totals, and stop accepting.
	if pr != nil {
		deadline := time.Now().Add(3 * time.Second)
		for time.Now().Before(deadline) {
			rs := pr.ReplStats()
			if rs.Links == 0 || rs.LagRecords == 0 {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		rs := pr.ReplStats()
		fmt.Printf("replication: %d live links, shipped %d records / %.2e keys, %d bootstraps, %d bounds updates, final lag %d records\n",
			rs.Links, rs.ShippedRecords, float64(rs.ShippedKeys), rs.Bootstraps, rs.BoundsUpdates, rs.LagRecords)
		ln.Close()
	}

	// The frozen view stays globally ordered across shards.
	if lo, ok := final.Min(); ok {
		hi, _ := final.Max()
		_, cnt := final.RangeSum(lo, lo+(hi-lo)/1000)
		fmt.Printf("keys span [%d, %d]; first 0.1%% of the span holds %d keys\n", lo, hi, cnt)
	}

	// Hold the observability endpoint open if asked, so the finished run's
	// totals (and pprof) can still be scraped; then shut it down.
	if msrv != nil {
		if *obsHold > 0 {
			fmt.Printf("holding observability endpoint for %s\n", *obsHold)
			time.Sleep(*obsHold)
		}
		msrv.Close()
	}
}

// runFollower is the -follow mode: a read-only replica that dials the
// primary, bootstraps from its checkpoint chain, replays the live record
// stream, and serves point lookups and snapshot scans until the primary
// goes away (client mutations on the replica panic by contract).
func runFollower(addr string, shards, readers, analysts int, obsAddr string) {
	f := repro.OpenFollower(shards, nil)
	c, err := repro.DialPrimary(addr, f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dial primary:", err)
		os.Exit(1)
	}
	fmt.Printf("following %s with %d shards\n", addr, shards)
	set := f.Set()

	if obsAddr != "" {
		m := repro.NewMetrics("shardserver-follower")
		repro.Observe(set, m, "cpma")
		f.RegisterMetrics(m, "cpma_follower")
		msrv, err := repro.ServeMetrics(obsAddr, m)
		if err != nil {
			fmt.Fprintln(os.Stderr, "obs:", err)
			os.Exit(1)
		}
		defer msrv.Close()
		msrv.AddTrace("replica", set.Trace())
		fmt.Printf("observability on http://%s\n", msrv.Addr())
	}

	var lookups, scans atomic.Int64
	var done atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := repro.NewRNG(uint64(3000 + g))
			for !done.Load() {
				set.Has(1 + r.Uint64()%(1<<40))
				lookups.Add(1)
			}
		}(g)
	}
	for g := 0; g < analysts; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := repro.NewRNG(uint64(4000 + g))
			for !done.Load() {
				snap := f.Snapshot()
				lo := r.Uint64() % (1 << 40)
				snap.RangeSum(lo, lo+1<<34)
				scans.Add(1)
			}
		}(g)
	}

	start := time.Now()
	tick := time.NewTicker(500 * time.Millisecond)
	defer tick.Stop()
serve:
	for {
		select {
		case <-c.Done():
			break serve
		case <-tick.C:
			st := f.Stats()
			fmt.Printf("  applied %d records / %.2e keys (%d bootstraps); serving %d keys\n",
				st.AppliedRecords, float64(st.AppliedKeys), st.Bootstraps, set.Len())
		}
	}
	done.Store(true)
	wg.Wait()
	if err := c.Err(); err != nil {
		fmt.Printf("stream ended: %v\n", err)
	}
	c.Close()

	st := f.Stats()
	elapsed := time.Since(start)
	fmt.Printf("follower final: %d keys after %d records / %.2e keys replayed (%d bootstraps); served %.2e lookups and %d scans in %.2fs\n",
		set.Len(), st.AppliedRecords, float64(st.AppliedKeys), st.Bootstraps,
		float64(lookups.Load()), scans.Load(), elapsed.Seconds())
}

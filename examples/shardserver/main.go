// Shardserver: the sharded front-end as a tiny in-memory set server,
// running the asynchronous ingest pipeline. The CPMA itself is
// batch-parallel but single-writer; an async ShardedSet multiplexes many
// concurrently mutating clients onto P single-writer shards, each fed by
// a bounded mailbox whose writer goroutine coalesces adjacent batches
// into one large merged apply. Writers here fire-and-forget their
// batches (InsertBatchAsync/RemoveBatchAsync) while readers issue point
// lookups and range sums against the applied state; a Flush barrier then
// separates the ingest phase from the query phase, so the summary
// queries observe every enqueued update.
package main

import (
	"flag"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro"
)

func main() {
	shards := flag.Int("shards", 8, "number of CPMA shards")
	writers := flag.Int("writers", 4, "concurrent writer clients")
	readers := flag.Int("readers", 4, "concurrent reader clients")
	batches := flag.Int("batches", 50, "batches per writer")
	batchSize := flag.Int("batch", 10_000, "keys per batch")
	depth := flag.Int("depth", 0, "mailbox depth per shard (0 = default)")
	flag.Parse()

	s := repro.NewShardedSetWith(*shards, &repro.ShardedSetOptions{
		Async:        true,
		MailboxDepth: *depth,
	})
	defer s.Close()

	// Writers: each client streams its own uniform batches into the
	// mailboxes and moves on immediately; roughly one in eight batches is
	// retracted again to exercise deletes. Per-client enqueue order is
	// preserved shard by shard, so each retraction lands after its insert.
	var enqueued, retracted atomic.Int64
	var writerWG sync.WaitGroup
	start := time.Now()
	for w := 0; w < *writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			r := repro.NewRNG(uint64(w) + 1)
			for i := 0; i < *batches; i++ {
				batch := repro.UniformKeys(r, *batchSize, 40)
				s.InsertBatchAsync(batch, false)
				enqueued.Add(int64(len(batch)))
				if i%8 == 7 {
					s.RemoveBatchAsync(batch[:len(batch)/2], false)
					retracted.Add(int64(len(batch) / 2))
				}
			}
		}(w)
	}

	// Readers: point lookups and short range sums against the applied
	// state (read-through) until the writers are done enqueueing.
	var lookups, rangeSums atomic.Int64
	var done atomic.Bool
	var readerWG sync.WaitGroup
	for g := 0; g < *readers; g++ {
		readerWG.Add(1)
		go func(g int) {
			defer readerWG.Done()
			r := repro.NewRNG(uint64(1000 + g))
			for ops := 0; !done.Load(); ops++ {
				if ops%5 == 4 {
					lo := r.Uint64() % (1 << 40)
					s.RangeSum(lo, lo+1<<20)
					rangeSums.Add(1)
				} else {
					s.Has(1 + r.Uint64()%(1<<40))
					lookups.Add(1)
				}
			}
		}(g)
	}

	writerWG.Wait()
	enqueueDone := time.Since(start)
	// Flush-before-query: the barrier after which every enqueued update is
	// applied and the query phase sees the final state.
	s.Flush()
	elapsed := time.Since(start)
	done.Store(true)
	readerWG.Wait()

	updates := enqueued.Load() + retracted.Load()
	st := s.IngestStats()
	fmt.Printf("%d shards (mailbox pipeline), %d writers, %d readers, %.2fs (+%.0fms flush)\n",
		*shards, *writers, *readers, elapsed.Seconds(), (elapsed-enqueueDone).Seconds()*1000)
	fmt.Printf("enqueued %d inserts and %d removes (%.2e updates/s) alongside %d lookups and %d range sums\n",
		enqueued.Load(), retracted.Load(), float64(updates)/elapsed.Seconds(), lookups.Load(), rangeSums.Load())
	fmt.Printf("coalescing: %d sub-batches (mean %.0f keys) applied as %d merges (mean %.0f keys, %.1fx)\n",
		st.EnqueuedBatches, st.MeanEnqueuedBatch(), st.AppliedBatches, st.MeanAppliedBatch(),
		st.MeanAppliedBatch()/st.MeanEnqueuedBatch())
	fmt.Printf("final set: %d keys in %.1f MB (%.2f bytes/key)\n",
		s.Len(), float64(s.SizeBytes())/(1<<20), float64(s.SizeBytes())/float64(s.Len()))

	// The merged view stays globally ordered across shards.
	if lo, ok := s.Min(); ok {
		hi, _ := s.Max()
		_, cnt := s.RangeSum(lo, lo+(hi-lo)/1000)
		fmt.Printf("keys span [%d, %d]; first 0.1%% of the span holds %d keys\n", lo, hi, cnt)
	}
}

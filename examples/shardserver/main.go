// Shardserver: the sharded front-end as a tiny in-memory set server. The
// CPMA itself is batch-parallel but single-writer; a ShardedSet multiplexes
// many concurrently mutating clients onto P single-writer shards, so this
// demo drives it from N writer goroutines and M reader goroutines at once —
// a workload none of the underlying structures could accept alone.
package main

import (
	"flag"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro"
)

func main() {
	shards := flag.Int("shards", 8, "number of CPMA shards")
	writers := flag.Int("writers", 4, "concurrent writer clients")
	readers := flag.Int("readers", 4, "concurrent reader clients")
	batches := flag.Int("batches", 50, "batches per writer")
	batchSize := flag.Int("batch", 10_000, "keys per batch")
	flag.Parse()

	s := repro.NewShardedSet(*shards, nil)

	// Writers: each client streams its own uniform batches; roughly one in
	// eight batches is retracted again to exercise deletes.
	var inserted, removed atomic.Int64
	var writerWG sync.WaitGroup
	start := time.Now()
	for w := 0; w < *writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			r := repro.NewRNG(uint64(w) + 1)
			for i := 0; i < *batches; i++ {
				batch := repro.UniformKeys(r, *batchSize, 40)
				inserted.Add(int64(s.InsertBatch(batch, false)))
				if i%8 == 7 {
					removed.Add(int64(s.RemoveBatch(batch[:len(batch)/2], false)))
				}
			}
		}(w)
	}

	// Readers: point lookups and short range sums against live shards until
	// the writers are done.
	var lookups, rangeSums atomic.Int64
	var done atomic.Bool
	var readerWG sync.WaitGroup
	for g := 0; g < *readers; g++ {
		readerWG.Add(1)
		go func(g int) {
			defer readerWG.Done()
			r := repro.NewRNG(uint64(1000 + g))
			for ops := 0; !done.Load(); ops++ {
				if ops%5 == 4 {
					lo := r.Uint64() % (1 << 40)
					s.RangeSum(lo, lo+1<<20)
					rangeSums.Add(1)
				} else {
					s.Has(1 + r.Uint64()%(1<<40))
					lookups.Add(1)
				}
			}
		}(g)
	}

	writerWG.Wait()
	elapsed := time.Since(start)
	done.Store(true)
	readerWG.Wait()

	updates := inserted.Load() + removed.Load()
	fmt.Printf("%d shards, %d writers, %d readers, %.2fs\n", *shards, *writers, *readers, elapsed.Seconds())
	fmt.Printf("applied %d inserts and %d removes (%.2e updates/s) alongside %d lookups and %d range sums\n",
		inserted.Load(), removed.Load(), float64(updates)/elapsed.Seconds(), lookups.Load(), rangeSums.Load())
	fmt.Printf("final set: %d keys in %.1f MB (%.2f bytes/key)\n",
		s.Len(), float64(s.SizeBytes())/(1<<20), float64(s.SizeBytes())/float64(s.Len()))

	// The merged view stays globally ordered across shards.
	if lo, ok := s.Min(); ok {
		hi, _ := s.Max()
		_, cnt := s.RangeSum(lo, lo+(hi-lo)/1000)
		fmt.Printf("keys span [%d, %d]; first 0.1%% of the span holds %d keys\n", lo, hi, cnt)
	}
}

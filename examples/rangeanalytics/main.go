// Rangeanalytics: time-window analytics over an event store keyed by
// timestamp — the scan-heavy ordered-set workload (range maps) where the
// paper's Figure 2 shows the CPMA's contiguous layout winning.
//
// Events are (timestamp<<20 | sensor) keys; windows are key ranges, so a
// dashboard query is exactly a range_map.
package main

import (
	"fmt"
	"time"

	"repro"
)

const sensorBits = 20

func key(ts uint64, sensor uint32) uint64 { return ts<<sensorBits | uint64(sensor) }

func main() {
	s := repro.NewSet(nil)
	r := repro.NewRNG(3)

	// Ingest 2M events over a simulated day (86,400 seconds).
	const events = 2_000_000
	const day = 86_400
	batch := make([]uint64, 0, events)
	for i := 0; i < events; i++ {
		ts := uint64(r.Intn(day))
		sensor := uint32(r.Intn(1 << 10))
		batch = append(batch, key(ts, sensor))
	}
	ingested := s.InsertBatch(batch, false)
	fmt.Printf("ingested %d events (%d after dedup), %.2f MB (%.2f bytes/event)\n",
		events, ingested, float64(s.SizeBytes())/(1<<20),
		float64(s.SizeBytes())/float64(s.Len()))

	// Window queries: count events per hour — 24 range maps.
	start := time.Now()
	fmt.Println("\nevents per hour:")
	for h := 0; h < 24; h += 6 {
		lo := key(uint64(h*3600), 0)
		hi := key(uint64((h+6)*3600), 0)
		_, cnt := s.RangeSum(lo, hi)
		fmt.Printf("  %02d:00-%02d:00  %8d events\n", h, h+6, cnt)
	}
	fmt.Printf("window scan time: %.2fms\n", time.Since(start).Seconds()*1e3)

	// Retention: batch-delete everything before 06:00.
	cutoff := key(6*3600, 0)
	var expired []uint64
	s.MapRange(0, cutoff, func(k uint64) bool {
		expired = append(expired, k)
		return true
	})
	removed := s.RemoveBatch(expired, true)
	fmt.Printf("\nretention pass: removed %d expired events, %d remain, %.2f MB\n",
		removed, s.Len(), float64(s.SizeBytes())/(1<<20))

	// Successor query: the first event at or after a timestamp.
	if k, ok := s.Next(key(12*3600, 0)); ok {
		fmt.Printf("first event at/after 12:00: t=%ds sensor=%d\n",
			k>>sensorBits, uint32(k)&(1<<sensorBits-1))
	}
}

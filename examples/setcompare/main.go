// Setcompare: a miniature Figure 1 + Figure 2 — batch-insert and
// range-query throughput of the CPMA against the uncompressed PMA on this
// machine, over a sweep of batch sizes.
package main

import (
	"fmt"
	"runtime"
	"time"

	"repro"
)

func main() {
	const baseN = 500_000
	const total = 500_000
	fmt.Printf("CPMA vs PMA on %d cores (start %d keys, insert %d)\n\n",
		runtime.GOMAXPROCS(0), baseN, total)

	fmt.Println("batch-insert throughput (keys/s):")
	fmt.Printf("%10s %12s %12s\n", "batch", "PMA", "CPMA")
	for _, bs := range []int{100, 1_000, 10_000, 100_000} {
		pTP := measureInsert(repro.NewPMA(nil), baseN, total, bs)
		cTP := measureInsert(repro.NewSet(nil), baseN, total, bs)
		fmt.Printf("%10d %12.0f %12.0f\n", bs, pTP, cTP)
	}

	fmt.Println("\nrange-query throughput (keys scanned/s):")
	p := repro.NewPMA(nil)
	c := repro.NewSet(nil)
	r := repro.NewRNG(1)
	keys := repro.UniformKeys(r, baseN, 40)
	p.InsertBatch(keys, false)
	c.InsertBatch(keys, false)
	fmt.Printf("%10s %12s %12s\n", "avg-len", "PMA", "CPMA")
	for _, avgLen := range []int{100, 10_000, 100_000} {
		span := uint64(float64(uint64(1)<<40) * float64(avgLen) / float64(baseN))
		fmt.Printf("%10d %12.0f %12.0f\n", avgLen,
			measureScan(p.RangeSum, span), measureScan(c.RangeSum, span))
	}
}

type batchInserter interface {
	InsertBatch(keys []uint64, sorted bool) int
}

func measureInsert(s batchInserter, baseN, total, bs int) float64 {
	r := repro.NewRNG(42)
	s.InsertBatch(repro.UniformKeys(r, baseN, 40), false)
	batches := make([][]uint64, 0, total/bs)
	for done := 0; done < total; done += bs {
		batches = append(batches, repro.UniformKeys(r, bs, 40))
	}
	start := time.Now()
	for _, b := range batches {
		s.InsertBatch(b, false)
	}
	return float64(total) / time.Since(start).Seconds()
}

func measureScan(rangeSum func(lo, hi uint64) (uint64, int), span uint64) float64 {
	r := repro.NewRNG(7)
	start := time.Now()
	scanned := 0
	for q := 0; q < 200; q++ {
		lo := 1 + r.Uint64()%(uint64(1)<<40-span)
		_, cnt := rangeSum(lo, lo+span)
		scanned += cnt
	}
	return float64(scanned) / time.Since(start).Seconds()
}

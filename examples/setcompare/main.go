// Setcompare: a miniature Figure 1 + Figure 2 — batch-insert and
// range-query throughput of the CPMA against the uncompressed PMA and the
// sharded front-end flavors on this machine, over a sweep of batch sizes.
// The Sharded column applies each batch synchronously across its shards;
// the AsyncSharded column enqueues fire-and-forget batches into the
// per-shard mailboxes (with a final Flush inside the timed region), so the
// writers coalesce adjacent batches and recover Figure 1's batch-size
// amortization even though the client streams small batches.
package main

import (
	"fmt"
	"runtime"
	"time"

	"repro"
)

func main() {
	const baseN = 500_000
	const total = 500_000
	shards := runtime.GOMAXPROCS(0)
	fmt.Printf("CPMA vs PMA vs Sharded(%d) on %d cores (start %d keys, insert %d)\n\n",
		shards, runtime.GOMAXPROCS(0), baseN, total)

	fmt.Println("batch-insert throughput (keys/s):")
	fmt.Printf("%10s %12s %12s %12s %12s\n", "batch", "PMA", "CPMA", "Sharded", "AsyncSharded")
	for _, bs := range []int{100, 1_000, 10_000, 100_000} {
		pTP := measureInsert(repro.NewPMA(nil), baseN, total, bs)
		cTP := measureInsert(repro.NewSet(nil), baseN, total, bs)
		sTP := measureInsert(repro.NewShardedSet(shards, nil), baseN, total, bs)
		a := repro.NewAsyncShardedSet(shards, nil)
		aTP := measureInsertAsync(a, baseN, total, bs)
		a.Close()
		fmt.Printf("%10d %12.0f %12.0f %12.0f %12.0f\n", bs, pTP, cTP, sTP, aTP)
	}

	fmt.Println("\nrange-query throughput (keys scanned/s):")
	p := repro.NewPMA(nil)
	c := repro.NewSet(nil)
	s := repro.NewShardedSet(shards, nil)
	r := repro.NewRNG(1)
	keys := repro.UniformKeys(r, baseN, 40)
	p.InsertBatch(keys, false)
	c.InsertBatch(keys, false)
	s.InsertBatch(keys, false)
	fmt.Printf("%10s %12s %12s %12s\n", "avg-len", "PMA", "CPMA", "Sharded")
	for _, avgLen := range []int{100, 10_000, 100_000} {
		span := uint64(float64(uint64(1)<<40) * float64(avgLen) / float64(baseN))
		fmt.Printf("%10d %12.0f %12.0f %12.0f\n", avgLen,
			measureScan(p.RangeSum, span), measureScan(c.RangeSum, span), measureScan(s.RangeSum, span))
	}
}

type batchInserter interface {
	InsertBatch(keys []uint64, sorted bool) int
}

func measureScan(rangeSum func(lo, hi uint64) (uint64, int), span uint64) float64 {
	r := repro.NewRNG(7)
	start := time.Now()
	scanned := 0
	for q := 0; q < 200; q++ {
		lo := 1 + r.Uint64()%(uint64(1)<<40-span)
		_, cnt := rangeSum(lo, lo+span)
		scanned += cnt
	}
	return float64(scanned) / time.Since(start).Seconds()
}

func measureInsert(s batchInserter, baseN, total, bs int) float64 {
	batches := prepare(s, baseN, total, bs)
	start := time.Now()
	for _, b := range batches {
		s.InsertBatch(b, false)
	}
	return float64(total) / time.Since(start).Seconds()
}

func measureInsertAsync(s *repro.ShardedSet, baseN, total, bs int) float64 {
	batches := prepare(s, baseN, total, bs)
	start := time.Now()
	for _, b := range batches {
		s.InsertBatchAsync(b, false)
	}
	s.Flush() // only a flushed pipeline has done the work being timed
	return float64(total) / time.Since(start).Seconds()
}

// prepare preloads the base keys and draws the insert batches from the
// same key stream, so every system sees the identical workload.
func prepare(s batchInserter, baseN, total, bs int) [][]uint64 {
	r := repro.NewRNG(42)
	s.InsertBatch(repro.UniformKeys(r, baseN, 40), false)
	batches := make([][]uint64, 0, total/bs)
	for done := 0; done < total; done += bs {
		batches = append(batches, repro.UniformKeys(r, bs, 40))
	}
	return batches
}

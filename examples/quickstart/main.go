// Quickstart: the CPMA as an ordered set — point updates, batch updates,
// ordered iteration, range maps, and the space the compression saves.
package main

import (
	"fmt"

	"repro"
)

func main() {
	// A Set is a compressed, dynamic, ordered set of nonzero uint64 keys.
	s := repro.NewSet(nil)

	// Point operations.
	s.Insert(42)
	s.Insert(7)
	if s.Has(42) {
		fmt.Println("42 is in the set")
	}
	s.Remove(7)

	// Batch updates are where the CPMA shines: sorted or unsorted input,
	// duplicates absorbed, all cores used for large batches.
	batch := make([]uint64, 0, 1_000_000)
	r := repro.NewRNG(1)
	batch = append(batch, repro.UniformKeys(r, 1_000_000, 40)...)
	added := s.InsertBatch(batch, false)
	fmt.Printf("batch insert: %d new keys, set now holds %d\n", added, s.Len())

	// Ordered iteration and range maps (one search + a contiguous scan).
	smallest, _ := s.Min()
	fmt.Printf("smallest key: %d\n", smallest)
	count := 0
	s.MapRange(1<<30, 1<<31, func(k uint64) bool {
		count++
		return true
	})
	fmt.Printf("keys in [2^30, 2^31): %d\n", count)

	sum, n := s.RangeSum(0, ^uint64(0))
	fmt.Printf("sum of all %d keys: %d\n", n, sum)

	// Compression: compare with the uncompressed PMA on the same keys.
	p := repro.NewPMA(nil)
	p.InsertBatch(batch, false)
	fmt.Printf("CPMA: %.2f bytes/key   PMA: %.2f bytes/key\n",
		float64(s.SizeBytes())/float64(s.Len()),
		float64(p.SizeBytes())/float64(p.Len()))

	// Batch deletes are symmetric.
	removed := s.RemoveBatch(batch[:500_000], false)
	fmt.Printf("batch delete: %d keys removed, %d remain\n", removed, s.Len())
}

package pactree

import (
	"testing"

	"repro/internal/workload"
)

func benchTree(n int, compressed bool) *Tree {
	t := New(&Options{Compressed: compressed})
	t.InsertBatch(workload.Uniform(workload.NewRNG(1), n, 40), false)
	return t
}

func BenchmarkBatchInsert10kUncompressed(b *testing.B) {
	t := benchTree(100_000, false)
	r := workload.NewRNG(2)
	batches := make([][]uint64, 32)
	for i := range batches {
		batches[i] = workload.Uniform(r, 10_000, 40)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.InsertBatch(batches[i%len(batches)], false)
	}
}

func BenchmarkBatchInsert10kCompressed(b *testing.B) {
	t := benchTree(100_000, true)
	r := workload.NewRNG(2)
	batches := make([][]uint64, 32)
	for i := range batches {
		batches[i] = workload.Uniform(r, 10_000, 40)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.InsertBatch(batches[i%len(batches)], false)
	}
}

func BenchmarkSumCompressed(b *testing.B) {
	t := benchTree(200_000, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Sum()
	}
}

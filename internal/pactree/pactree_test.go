package pactree

import (
	"math/rand"
	"slices"
	"testing"
	"testing/quick"
)

func uniqueRandom(r *rand.Rand, n int, max uint64) []uint64 {
	set := make(map[uint64]bool, n)
	for len(set) < n {
		set[1+r.Uint64()%max] = true
	}
	out := make([]uint64, 0, n)
	for k := range set {
		out = append(out, k)
	}
	return out
}

func bothVariants(t *testing.T, f func(t *testing.T, opts *Options)) {
	t.Run("U-PaC", func(t *testing.T) { f(t, &Options{Compressed: false}) })
	t.Run("C-PaC", func(t *testing.T) { f(t, &Options{Compressed: true}) })
}

func TestEmpty(t *testing.T) {
	bothVariants(t, func(t *testing.T, opts *Options) {
		tr := New(opts)
		if tr.Len() != 0 || tr.Has(1) {
			t.Fatal("empty tree misbehaves")
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestFromSortedRoundTrip(t *testing.T) {
	bothVariants(t, func(t *testing.T, opts *Options) {
		r := rand.New(rand.NewSource(1))
		for _, n := range []int{1, 2, 255, 256, 257, 10_000} {
			keys := uniqueRandom(r, n, 1<<40)
			slices.Sort(keys)
			tr := FromSorted(keys, opts)
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
			if !slices.Equal(tr.Keys(), keys) {
				t.Fatalf("n=%d: round trip mismatch", n)
			}
		}
	})
}

func TestInsertBatchAgainstModel(t *testing.T) {
	bothVariants(t, func(t *testing.T, opts *Options) {
		r := rand.New(rand.NewSource(2))
		base := uniqueRandom(r, 30_000, 1<<40)
		tr := New(opts)
		if added := tr.InsertBatch(base, false); added != len(base) {
			t.Fatalf("added = %d", added)
		}
		batch := uniqueRandom(r, 15_000, 1<<40)
		present := map[uint64]bool{}
		for _, k := range base {
			present[k] = true
		}
		wantNew := 0
		for _, k := range batch {
			if !present[k] {
				wantNew++
				present[k] = true
			}
		}
		if added := tr.InsertBatch(batch, false); added != wantNew {
			t.Fatalf("added = %d, want %d", added, wantNew)
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		want := make([]uint64, 0, len(present))
		for k := range present {
			want = append(want, k)
		}
		slices.Sort(want)
		if !slices.Equal(tr.Keys(), want) {
			t.Fatal("contents mismatch")
		}
	})
}

func TestRemoveBatch(t *testing.T) {
	bothVariants(t, func(t *testing.T, opts *Options) {
		r := rand.New(rand.NewSource(3))
		base := uniqueRandom(r, 20_000, 1<<40)
		tr := New(opts)
		tr.InsertBatch(base, false)
		del := append(slices.Clone(base[:12_000]), uniqueRandom(r, 300, 1<<16)...)
		present := map[uint64]bool{}
		for _, k := range base {
			present[k] = true
		}
		wantRemoved := 0
		for _, k := range del {
			if present[k] {
				wantRemoved++
				delete(present, k)
			}
		}
		if got := tr.RemoveBatch(del, false); got != wantRemoved {
			t.Fatalf("removed = %d, want %d", got, wantRemoved)
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		if tr.Len() != len(present) {
			t.Fatalf("Len = %d, want %d", tr.Len(), len(present))
		}
	})
}

func TestRemoveEverything(t *testing.T) {
	bothVariants(t, func(t *testing.T, opts *Options) {
		r := rand.New(rand.NewSource(4))
		base := uniqueRandom(r, 5000, 1<<40)
		tr := New(opts)
		tr.InsertBatch(base, false)
		if got := tr.RemoveBatch(base, false); got != len(base) {
			t.Fatalf("removed %d", got)
		}
		if tr.Len() != 0 || tr.root != nil {
			t.Fatal("tree not empty")
		}
	})
}

func TestPointOps(t *testing.T) {
	bothVariants(t, func(t *testing.T, opts *Options) {
		tr := New(opts)
		if !tr.Insert(5) || tr.Insert(5) || !tr.Insert(3) {
			t.Fatal("Insert wrong")
		}
		if !tr.Has(5) || tr.Has(4) {
			t.Fatal("Has wrong")
		}
		if !tr.Remove(5) || tr.Remove(5) {
			t.Fatal("Remove wrong")
		}
		if !slices.Equal(tr.Keys(), []uint64{3}) {
			t.Fatalf("Keys = %v", tr.Keys())
		}
	})
}

func TestMapRangeAndNext(t *testing.T) {
	bothVariants(t, func(t *testing.T, opts *Options) {
		var keys []uint64
		for i := 1; i <= 3000; i++ {
			keys = append(keys, uint64(i*5))
		}
		tr := FromSorted(keys, opts)
		var got []uint64
		tr.MapRange(21, 51, func(v uint64) bool {
			got = append(got, v)
			return true
		})
		if !slices.Equal(got, []uint64{25, 30, 35, 40, 45, 50}) {
			t.Fatalf("MapRange = %v", got)
		}
		if v, ok := tr.Next(22); !ok || v != 25 {
			t.Fatalf("Next(22) = %d,%v", v, ok)
		}
		if v, ok := tr.Next(15000); !ok || v != 15000 {
			t.Fatalf("Next(15000) = %d,%v", v, ok)
		}
		if _, ok := tr.Next(15001); ok {
			t.Fatal("Next past max should fail")
		}
	})
}

func TestSum(t *testing.T) {
	bothVariants(t, func(t *testing.T, opts *Options) {
		r := rand.New(rand.NewSource(5))
		keys := uniqueRandom(r, 30_000, 1<<40)
		tr := New(opts)
		tr.InsertBatch(keys, false)
		var want uint64
		for _, k := range keys {
			want += k
		}
		if got := tr.Sum(); got != want {
			t.Fatalf("Sum = %d, want %d", got, want)
		}
	})
}

func TestCompressedSmallerThanUncompressed(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	keys := uniqueRandom(r, 100_000, 1<<40)
	u := New(&Options{Compressed: false})
	c := New(&Options{Compressed: true})
	u.InsertBatch(keys, false)
	c.InsertBatch(keys, false)
	if c.SizeBytes() >= u.SizeBytes() {
		t.Fatalf("C-PaC %d bytes >= U-PaC %d bytes", c.SizeBytes(), u.SizeBytes())
	}
	perElem := float64(u.SizeBytes()) / float64(len(keys))
	if perElem < 8 || perElem > 10 {
		t.Fatalf("U-PaC %.2f bytes/elem outside the ~8.1 paper range", perElem)
	}
}

func TestBatchPropertyAgainstModel(t *testing.T) {
	f := func(seed int64, compressed bool) bool {
		r := rand.New(rand.NewSource(seed))
		tr := New(&Options{Compressed: compressed, BlockMax: 64})
		ref := map[uint64]bool{}
		for round := 0; round < 5; round++ {
			batch := make([]uint64, 300+r.Intn(2000))
			for i := range batch {
				batch[i] = 1 + r.Uint64()%(1<<18)
			}
			if r.Intn(2) == 0 {
				tr.InsertBatch(batch, false)
				for _, k := range batch {
					ref[k] = true
				}
			} else {
				tr.RemoveBatch(batch, false)
				for _, k := range batch {
					delete(ref, k)
				}
			}
			if tr.Len() != len(ref) {
				return false
			}
			if tr.CheckInvariants() != nil {
				return false
			}
		}
		want := make([]uint64, 0, len(ref))
		for k := range ref {
			want = append(want, k)
		}
		slices.Sort(want)
		return slices.Equal(tr.Keys(), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestDepthStaysLogarithmic(t *testing.T) {
	keys := make([]uint64, 1<<17)
	for i := range keys {
		keys[i] = uint64(i + 1)
	}
	tr := New(nil)
	// Insert in adversarial ascending order in many batches.
	for i := 0; i < len(keys); i += 1 << 12 {
		tr.InsertBatch(keys[i:i+1<<12], true)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	d := depth(tr.root)
	if d > 40 {
		t.Fatalf("depth %d too large", d)
	}
}

func depth(n *node) int {
	if n == nil {
		return 0
	}
	l, r := depth(n.left), depth(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}

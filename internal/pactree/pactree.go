// Package pactree implements the PaC-tree baseline (CPAM [33]): a blocked
// batch-parallel search tree whose leaves hold up to BlockMax keys, either
// uncompressed (U-PaC) or delta-byte-code compressed (C-PaC). Internal nodes
// carry a separator pivot; batch updates partition the batch by pivot and
// recurse in parallel, merging at the blocks.
//
// Balance substitution (documented in DESIGN.md §4): CPAM's weight-balanced
// joins are replaced with weight-balance-checked subtree rebuilds
// (scapegoat-style), which preserve the expected logarithmic depth and,
// importantly for the paper's comparison, the identical memory layout:
// pointer-linked internal nodes over contiguous (possibly compressed)
// blocks.
package pactree

import (
	"fmt"

	"repro/internal/codec"
	"repro/internal/parallel"
)

// DefaultBlockMax matches the PaC-tree library's default set block size of
// 256 elements ("a maximum node size of 4108 bytes", paper §6).
const DefaultBlockMax = 256

// forkGrain is the subtree size above which recursions fork.
const forkGrain = 4096

// node is either an internal node (left/right non-nil) or a leaf block.
type node struct {
	pivot uint64 // internal: all left keys < pivot <= all right keys
	size  uint32 // keys in subtree
	left  *node
	right *node
	elems []uint64 // uncompressed block (U-PaC leaves)
	blob  []byte   // compressed block (C-PaC leaves)
}

func (n *node) leaf() bool { return n.left == nil }

// Tree is a batch-parallel ordered set over nonzero uint64 keys.
type Tree struct {
	root       *node
	blockMax   int
	compressed bool
}

// Options configures a PaC-tree.
type Options struct {
	// BlockMax is the maximum number of keys per leaf block (default 256).
	BlockMax int
	// Compressed selects delta-byte-code blocks (C-PaC) over raw uint64
	// blocks (U-PaC).
	Compressed bool
}

// New returns an empty tree; opts may be nil for an uncompressed tree with
// the default block size.
func New(opts *Options) *Tree {
	var o Options
	if opts != nil {
		o = *opts
	}
	if o.BlockMax <= 0 {
		o.BlockMax = DefaultBlockMax
	}
	return &Tree{blockMax: o.BlockMax, compressed: o.Compressed}
}

// FromSorted builds a tree from sorted, duplicate-free nonzero keys.
func FromSorted(keys []uint64, opts *Options) *Tree {
	t := New(opts)
	if len(keys) > 0 && keys[0] == 0 {
		panic("pactree: key 0 is reserved")
	}
	t.root = t.build(keys)
	return t
}

// Len returns the number of keys.
func (t *Tree) Len() int {
	if t.root == nil {
		return 0
	}
	return int(t.root.size)
}

// makeLeaf wraps a short sorted run in a block node.
func (t *Tree) makeLeaf(run []uint64) *node {
	n := &node{size: uint32(len(run))}
	if t.compressed {
		blob := make([]byte, codec.SizeOfRun(run))
		codec.EncodeRun(blob, run)
		n.blob = blob
	} else {
		n.elems = append([]uint64(nil), run...)
	}
	return n
}

// decode returns the keys of a leaf block, appending to dst.
func (t *Tree) decode(dst []uint64, n *node) []uint64 {
	if t.compressed {
		return codec.DecodeRun(dst, n.blob, len(n.blob))
	}
	return append(dst, n.elems...)
}

// build constructs a balanced subtree over a sorted run in parallel.
func (t *Tree) build(run []uint64) *node {
	if len(run) == 0 {
		return nil
	}
	if len(run) <= t.blockMax {
		return t.makeLeaf(run)
	}
	mid := len(run) / 2
	n := &node{pivot: run[mid], size: uint32(len(run))}
	parallel.DoIf(len(run) > forkGrain,
		func() { n.left = t.build(run[:mid]) },
		func() { n.right = t.build(run[mid:]) },
	)
	return n
}

// flatten collects a subtree's keys into a sorted slice.
func (t *Tree) flatten(n *node) []uint64 {
	if n == nil {
		return nil
	}
	out := make([]uint64, 0, n.size)
	return t.appendAll(out, n)
}

func (t *Tree) appendAll(dst []uint64, n *node) []uint64 {
	if n == nil {
		return dst
	}
	if n.leaf() {
		return t.decode(dst, n)
	}
	dst = t.appendAll(dst, n.left)
	return t.appendAll(dst, n.right)
}

// rebalance restores weight balance by rebuilding the subtree when one side
// dominates; merges undersized subtrees back into a single block.
func (t *Tree) rebalance(n *node) *node {
	if n == nil {
		return nil
	}
	switch {
	case n.left == nil && n.right == nil:
		return nil
	case n.left == nil:
		return n.right
	case n.right == nil:
		return n.left
	}
	n.size = n.left.size + n.right.size
	if int(n.size) <= t.blockMax {
		return t.makeLeaf(t.flatten(n))
	}
	l, r := int(n.left.size), int(n.right.size)
	if max(l, r) > (3*(l+r))/4+t.blockMax {
		return t.build(t.flatten(n))
	}
	return n
}

// multiInsert merges a sorted batch into the subtree, returning the new
// root. Internal nodes partition the batch by pivot and recurse in
// parallel; blocks merge and re-block.
func (t *Tree) multiInsert(n *node, batch []uint64) *node {
	if len(batch) == 0 {
		return n
	}
	if n == nil {
		return t.build(batch)
	}
	if n.leaf() {
		merged, _ := parallel.MergeDedup(t.decode(make([]uint64, 0, int(n.size)+len(batch)), n), batch)
		return t.build(merged)
	}
	i := lowerBound(batch, n.pivot)
	parallel.DoIf(len(batch) > 1024 && int(n.size) > forkGrain,
		func() { n.left = t.multiInsert(n.left, batch[:i]) },
		func() { n.right = t.multiInsert(n.right, batch[i:]) },
	)
	return t.rebalance(n)
}

// multiDelete removes a sorted batch from the subtree.
func (t *Tree) multiDelete(n *node, batch []uint64) *node {
	if n == nil || len(batch) == 0 {
		return n
	}
	if n.leaf() {
		keys := t.decode(make([]uint64, 0, int(n.size)), n)
		w := 0
		j := 0
		for _, v := range keys {
			for j < len(batch) && batch[j] < v {
				j++
			}
			if j < len(batch) && batch[j] == v {
				continue
			}
			keys[w] = v
			w++
		}
		if w == 0 {
			return nil
		}
		if w == len(keys) {
			return n
		}
		return t.makeLeaf(keys[:w])
	}
	i := lowerBound(batch, n.pivot)
	parallel.DoIf(len(batch) > 1024 && int(n.size) > forkGrain,
		func() { n.left = t.multiDelete(n.left, batch[:i]) },
		func() { n.right = t.multiDelete(n.right, batch[i:]) },
	)
	return t.rebalance(n)
}

func lowerBound(a []uint64, x uint64) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// InsertBatch adds a batch, returning how many keys were new.
func (t *Tree) InsertBatch(keys []uint64, sorted bool) int {
	batch := prepare(keys, sorted)
	if len(batch) == 0 {
		return 0
	}
	before := t.Len()
	t.root = t.multiInsert(t.root, batch)
	return t.Len() - before
}

// RemoveBatch deletes a batch, returning how many keys were present.
func (t *Tree) RemoveBatch(keys []uint64, sorted bool) int {
	batch := prepare(keys, sorted)
	if len(batch) == 0 {
		return 0
	}
	before := t.Len()
	t.root = t.multiDelete(t.root, batch)
	return before - t.Len()
}

// Insert adds one key, reporting whether it was new.
func (t *Tree) Insert(x uint64) bool {
	if x == 0 {
		panic("pactree: key 0 is reserved")
	}
	if t.Has(x) {
		return false
	}
	t.root = t.multiInsert(t.root, []uint64{x})
	return true
}

// Remove deletes one key, reporting whether it was present.
func (t *Tree) Remove(x uint64) bool {
	if !t.Has(x) {
		return false
	}
	t.root = t.multiDelete(t.root, []uint64{x})
	return true
}

func prepare(keys []uint64, sorted bool) []uint64 {
	if len(keys) == 0 {
		return nil
	}
	var batch []uint64
	if sorted {
		batch = parallel.DedupSorted(keys)
	} else {
		batch = parallel.DedupSorted(parallel.SortedCopy(keys))
	}
	if len(batch) > 0 && batch[0] == 0 {
		panic("pactree: key 0 is reserved")
	}
	return batch
}

// Has reports membership: a root-to-block descent plus a block scan.
func (t *Tree) Has(x uint64) bool {
	n := t.root
	for n != nil && !n.leaf() {
		if x < n.pivot {
			n = n.left
		} else {
			n = n.right
		}
	}
	if n == nil {
		return false
	}
	found := false
	t.iterBlock(n, func(v uint64) bool {
		if v == x {
			found = true
			return false
		}
		return v < x
	})
	return found
}

// Next returns the smallest key >= x.
func (t *Tree) Next(x uint64) (uint64, bool) {
	var res uint64
	ok := false
	t.MapRange(x, ^uint64(0), func(v uint64) bool {
		res, ok = v, true
		return false
	})
	if !ok && x == ^uint64(0) && t.Has(x) {
		return x, true
	}
	return res, ok
}

// iterBlock walks a leaf block in order until f returns false.
func (t *Tree) iterBlock(n *node, f func(uint64) bool) bool {
	if t.compressed {
		blob := n.blob
		if len(blob) == 0 {
			return true
		}
		v := codec.Head(blob)
		if !f(v) {
			return false
		}
		for off := codec.HeadBytes; off < len(blob); {
			d, k := codec.Get(blob[off:])
			v += d
			if !f(v) {
				return false
			}
			off += k
		}
		return true
	}
	for _, v := range n.elems {
		if !f(v) {
			return false
		}
	}
	return true
}

// Map applies f to every key in ascending order until f returns false.
func (t *Tree) Map(f func(uint64) bool) bool { return t.mapNode(t.root, f) }

func (t *Tree) mapNode(n *node, f func(uint64) bool) bool {
	if n == nil {
		return true
	}
	if n.leaf() {
		return t.iterBlock(n, f)
	}
	return t.mapNode(n.left, f) && t.mapNode(n.right, f)
}

// MapRange applies f to keys in [start, end) in ascending order.
func (t *Tree) MapRange(start, end uint64, f func(uint64) bool) bool {
	return t.mapRangeNode(t.root, start, end, f)
}

func (t *Tree) mapRangeNode(n *node, start, end uint64, f func(uint64) bool) bool {
	if n == nil {
		return true
	}
	if n.leaf() {
		return t.iterBlock(n, func(v uint64) bool {
			if v < start {
				return true
			}
			if v >= end {
				return false
			}
			return f(v)
		})
	}
	if start < n.pivot && !t.mapRangeNode(n.left, start, end, f) {
		return false
	}
	if end > n.pivot {
		return t.mapRangeNode(n.right, start, end, f)
	}
	return true
}

// Sum returns the key sum with fork-join parallelism (the scan benchmark).
func (t *Tree) Sum() uint64 { return t.sumNode(t.root) }

func (t *Tree) sumNode(n *node) uint64 {
	if n == nil {
		return 0
	}
	if n.leaf() {
		var s uint64
		t.iterBlock(n, func(v uint64) bool { s += v; return true })
		return s
	}
	if n.size <= forkGrain {
		return t.sumNode(n.left) + t.sumNode(n.right)
	}
	var l, r uint64
	parallel.Do(
		func() { l = t.sumNode(n.left) },
		func() { r = t.sumNode(n.right) },
	)
	return l + r
}

// RangeSum sums keys in [start, end).
func (t *Tree) RangeSum(start, end uint64) (sum uint64, count int) {
	t.MapRange(start, end, func(v uint64) bool {
		sum += v
		count++
		return true
	})
	return sum, count
}

// Keys returns all keys in ascending order.
func (t *Tree) Keys() []uint64 { return t.flatten(t.root) }

// internalNodeBytes models a CPAM internal node (pivot, two pointers, size/
// refcount word) and blockHeaderBytes a block header, matching the C++
// library's footprint rather than Go's per-object overhead.
const (
	internalNodeBytes = 32
	blockHeaderBytes  = 16
)

// SizeBytes reports the modeled memory footprint of the tree.
func (t *Tree) SizeBytes() uint64 {
	return t.sizeNode(t.root)
}

func (t *Tree) sizeNode(n *node) uint64 {
	if n == nil {
		return 0
	}
	if n.leaf() {
		if t.compressed {
			return blockHeaderBytes + uint64(len(n.blob))
		}
		return blockHeaderBytes + 8*uint64(len(n.elems))
	}
	return internalNodeBytes + t.sizeNode(n.left) + t.sizeNode(n.right)
}

// CheckInvariants verifies order, sizes, pivots, and block capacities.
func (t *Tree) CheckInvariants() error {
	_, _, _, err := t.check(t.root)
	return err
}

func (t *Tree) check(n *node) (sz uint32, min, max uint64, err error) {
	if n == nil {
		return 0, 0, 0, nil
	}
	if n.leaf() {
		keys := t.decode(nil, n)
		if len(keys) == 0 {
			return 0, 0, 0, fmt.Errorf("pactree: empty leaf block")
		}
		if len(keys) > t.blockMax {
			return 0, 0, 0, fmt.Errorf("pactree: block of %d > max %d", len(keys), t.blockMax)
		}
		if int(n.size) != len(keys) {
			return 0, 0, 0, fmt.Errorf("pactree: leaf size %d but %d keys", n.size, len(keys))
		}
		for i := 1; i < len(keys); i++ {
			if keys[i] <= keys[i-1] {
				return 0, 0, 0, fmt.Errorf("pactree: block order violation")
			}
		}
		return n.size, keys[0], keys[len(keys)-1], nil
	}
	ls, lmin, lmax, err := t.check(n.left)
	if err != nil {
		return 0, 0, 0, err
	}
	rs, rmin, rmax, err := t.check(n.right)
	if err != nil {
		return 0, 0, 0, err
	}
	if ls == 0 || rs == 0 {
		return 0, 0, 0, fmt.Errorf("pactree: internal node with empty child")
	}
	if n.size != ls+rs {
		return 0, 0, 0, fmt.Errorf("pactree: size %d != %d+%d", n.size, ls, rs)
	}
	if lmax >= n.pivot || rmin < n.pivot {
		return 0, 0, 0, fmt.Errorf("pactree: pivot %d not separating (%d, %d)", n.pivot, lmax, rmin)
	}
	return n.size, lmin, rmax, nil
}

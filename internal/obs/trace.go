package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// EventKind identifies a pipeline lifecycle event.
type EventKind uint8

const (
	EvDrain      EventKind = iota // writer drained its mailbox: A=ops coalesced, B=keys applied
	EvPublish                     // copy-on-write publication: A=approx clone cost (bytes or keys)
	EvCheckpoint                  // checkpoint barrier completed (set-global): A=duration ns
	EvPromote                     // hot-key promotions installed: A=keys promoted
	EvDemote                      // hot-key demotions (or table drop): A=keys demoted
	EvMove                        // rebalance boundary move: A=destination shard, B=keys moved
	EvShip                        // replication shipped records: A=records, B=keys
	EvBootstrap                   // replication bootstrap sent: A=records in base state
	EvApply                       // follower applied shipped records: A=records, B=keys
	EvIndex                       // graph view index built (set-global): A=edges indexed, B=build ns
)

var eventNames = [...]string{
	EvDrain:      "drain",
	EvPublish:    "publish",
	EvCheckpoint: "checkpoint",
	EvPromote:    "promote",
	EvDemote:     "demote",
	EvMove:       "move",
	EvShip:       "ship",
	EvBootstrap:  "bootstrap",
	EvApply:      "apply",
	EvIndex:      "index",
}

func (k EventKind) String() string {
	if int(k) < len(eventNames) {
		return eventNames[k]
	}
	return "unknown"
}

// MarshalJSON renders the kind as its name so /tracez dumps read without
// a decoder ring.
func (k EventKind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// Event is one recorded lifecycle event. Epoch and Gen tie the event to
// the snapshot epoch and router generation current when it fired; A and
// B are kind-specific payloads (see the EventKind constants).
type Event struct {
	TS    int64     `json:"ts_unix_ns"`
	Shard int       `json:"shard"` // -1 for set-global events (checkpoint)
	Kind  EventKind `json:"kind"`
	Epoch uint64    `json:"epoch"`
	Gen   uint64    `json:"gen"`
	A     uint64    `json:"a"`
	B     uint64    `json:"b"`
}

// DefaultTraceDepth is the per-shard ring capacity when 0 is passed to
// NewTrace.
const DefaultTraceDepth = 256

// Trace is a set of fixed-size per-shard event rings. Recording takes
// the owning ring's mutex — writers are per-shard, so the only
// contention is a concurrent dump — and overwrites the oldest event when
// full. Ring index -1 addresses a dedicated global ring for set-wide
// events.
type Trace struct {
	depth int
	rings []traceRing // rings[0] is the global ring; shard s is rings[s+1]
}

type traceRing struct {
	mu  sync.Mutex
	buf []Event
	n   uint64 // total events ever recorded; buf[(n-1) % depth] is newest
}

// NewTrace returns a trace with one ring per shard plus a global ring.
func NewTrace(shards, depth int) *Trace {
	if depth <= 0 {
		depth = DefaultTraceDepth
	}
	return &Trace{depth: depth, rings: make([]traceRing, shards+1)}
}

// Record appends an event to shard's ring (-1 for the global ring).
func (t *Trace) Record(shard int, kind EventKind, epoch, gen, a, b uint64) {
	if t == nil {
		return
	}
	r := &t.rings[shard+1]
	ev := Event{TS: time.Now().UnixNano(), Shard: shard, Kind: kind, Epoch: epoch, Gen: gen, A: a, B: b}
	r.mu.Lock()
	if len(r.buf) < t.depth {
		r.buf = append(r.buf, ev)
	} else {
		r.buf[r.n%uint64(t.depth)] = ev
	}
	r.n++
	r.mu.Unlock()
}

// Events returns every retained event across all rings, oldest first.
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	var out []Event
	for i := range t.rings {
		r := &t.rings[i]
		r.mu.Lock()
		out = append(out, r.buf...)
		r.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TS < out[j].TS })
	return out
}

// Dropped returns how many events have been overwritten ring-wide.
func (t *Trace) Dropped() uint64 {
	if t == nil {
		return 0
	}
	var d uint64
	for i := range t.rings {
		r := &t.rings[i]
		r.mu.Lock()
		if r.n > uint64(len(r.buf)) {
			d += r.n - uint64(len(r.buf))
		}
		r.mu.Unlock()
	}
	return d
}

// WriteJSON dumps the retained events (oldest first) as indented JSON.
func (t *Trace) WriteJSON(w io.Writer) error {
	evs := t.Events()
	if evs == nil {
		evs = []Event{}
	}
	blob, err := json.MarshalIndent(struct {
		Dropped uint64  `json:"dropped"`
		Events  []Event `json:"events"`
	}{t.Dropped(), evs}, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	_, err = w.Write(blob)
	return err
}

// Package obs is the zero-dependency observability layer: atomic
// counters and gauges, lock-free log-bucketed latency histograms, a
// fixed-size event-trace ring, and an opt-in HTTP server that exposes
// all of it as Prometheus text (/metrics), JSON (/statz), a trace dump
// (/tracez), and net/http/pprof.
//
// Everything is built on sync/atomic: recording a histogram sample is
// three atomic adds, scraping never takes a lock and never blocks a
// writer, and histograms snapshot/merge/subtract so callers can take
// percentiles over a window (snap, run, snap, Sub). Buckets are
// powers of two (bucketOf(v) = bits.Len64(v)), so quantiles are
// interpolated within a 2x bucket — coarse in absolute terms, exact
// enough to tell a 100µs stall from a 10ms one.
//
// # Metrics catalog
//
// Pipeline histograms, registered by Sharded.RegisterMetrics under a
// prefix (default "cpma"); each is aggregated across shards and
// recorded at the site named:
//
//	{p}_mailbox_residency_ns  ns    enqueue→applied residency of one async
//	                                sub-batch; stamped at enqueue, recorded at
//	                                the end of the writer drain that applied it
//	{p}_drain_ns              ns    one writer drain end to end: coalesce, WAL
//	                                append, apply, reconcile, publish (drains
//	                                parked by a quiesce token are not recorded)
//	{p}_coalesce_keys         keys  keys merged into one drain (width of the
//	                                batch the writer actually applied)
//	{p}_publish_ns            ns    one copy-on-write publication (leaf-COW
//	                                Clone + snapshot handle swap)
//	{p}_reconcile_ns          ns    one hot-key reconcile pass that had dirty
//	                                absorbed state to fold in
//	{p}_quiesce_ns            ns    rebalance pair park: quiesce tokens sent →
//	                                both writers at rest
//	{p}_move_ns               ns    one whole rebalance boundary move, quiesce
//	                                through unpark
//	{p}_snapshot_capture_ns   ns    one Snapshot() capture
//	{p}_checkpoint_ns         ns    one Sharded.Checkpoint() barrier: flush +
//	                                journal checkpoint
//
// Durable-store histograms, registered by the persist.Store under
// {p}_wal:
//
//	{p}_wal_append_ns      ns  whole WAL append call — lock wait + buffered
//	                           write + group-commit fsync when this append
//	                           triggered one (the stall a writer sees)
//	{p}_wal_fsync_ns       ns  the fsync alone, recorded inside syncLocked
//	{p}_wal_checkpoint_ns  ns  one per-shard checkpoint pass that wrote a
//	                           base or delta (skipped passes not recorded)
//
// Replication histograms, registered by repl.Primary (default prefix
// "repl") and repl.Follower (default "follower"):
//
//	{p}_ship_ns       ns  one record shipment; for in-process links the
//	                      send delivers through apply synchronously
//	{p}_bootstrap_ns  ns  one full bootstrap state transfer
//	{p}_apply_ns      ns  one replay batch applied to the replica set
//	                      (batches that applied zero records not recorded)
//
// Counter/gauge families expanded at scrape time from the legacy
// *Stats structs via Registry.Stats (uint64 fields become counters,
// int fields gauges, CamelCase→snake_case): {p}_ingest_* from
// IngestStats, {p}_snapshot_* from SnapshotStats, {p}_rebalance_*
// from RebalanceStats, {p}_persist_* from PersistStats when the set is
// durable, plus the repl/follower stats under their prefixes.
//
// # Stage latency map
//
// Where each histogram sits on the ingest path:
//
//	client InsertBatchAsync
//	   │ scatter ── hot-key absorb (absorbed keys skip the mailbox)
//	   ▼
//	mailbox ══ residency_ns ══╗
//	   │ writer wakes         ║
//	   ▼                      ║
//	coalesce (coalesce_keys)  ║
//	   │                      ║
//	WAL append ── wal_append_ns ──▶ fsync (wal_fsync_ns)
//	   │                      ║
//	apply → reconcile (reconcile_ns)
//	   │                      ║
//	publish COW clone (publish_ns) ◀══ drain_ns covers coalesce→publish
//	   ▼
//	checkpoint (checkpoint_ns, wal_checkpoint_ns)   ship (ship_ns) → apply (apply_ns)
//
// # Trace ring
//
// Trace keeps one fixed-depth ring per shard plus a global ring;
// Record is lock-free in the common case (a mutex per ring guards only
// the slot write). Events carry a timestamp, shard, kind (drain,
// publish, checkpoint, promote, demote, move, ship, bootstrap, apply),
// the shard's epoch and snapshot generation, and two free operands.
// The ring overwrites oldest-first, so /tracez is always "the last N
// things each shard did", never a growing log.
package obs

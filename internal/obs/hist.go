package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// NumBuckets is the fixed bucket count of every Histogram. Bucket 0
// holds zeros; bucket i (1..64) holds values in [2^(i-1), 2^i). The
// layout is shared by all histograms, which is what makes snapshots
// mergeable and subtractable without negotiation.
const NumBuckets = 65

// bucketOf maps a recorded value to its bucket index. bits.Len64 is
// exactly the log-bucket function: zero lands in bucket 0, and every
// positive v lands in the unique bucket whose half-open power-of-two
// range contains it.
func bucketOf(v uint64) int { return bits.Len64(v) }

// BucketLo returns the inclusive lower bound of bucket i.
func BucketLo(i int) uint64 {
	if i == 0 {
		return 0
	}
	return 1 << (i - 1)
}

// BucketHi returns the exclusive upper bound of bucket i. The top
// bucket's bound saturates at MaxUint64 (2^64 does not fit).
func BucketHi(i int) uint64 {
	if i == 0 {
		return 1
	}
	if i >= 64 {
		return math.MaxUint64
	}
	return 1 << i
}

// Histogram is a lock-free log-bucketed latency/size histogram. Record
// costs three atomic adds and no allocation, so it is safe to call from
// the shard writer hot path. The zero value is ready to use.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [NumBuckets]atomic.Uint64
}

// Record adds one observation of v.
func (h *Histogram) Record(v uint64) {
	h.buckets[bucketOf(v)].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Observe records a duration in nanoseconds (negative clamps to zero).
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.Record(uint64(d))
}

// Since records the nanoseconds elapsed since start.
func (h *Histogram) Since(start time.Time) { h.Observe(time.Since(start)) }

// Snapshot captures a point-in-time copy. Under concurrent Record the
// capture is approximate but internally consistent: Count is derived
// from the bucket sum, so quantile ranks can never exceed the bucket
// population.
func (h *Histogram) Snapshot() HistSnap {
	var s HistSnap
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
		s.Count += s.Buckets[i]
	}
	s.Sum = h.sum.Load()
	return s
}

// HistSnap is a frozen histogram capture: plain values, freely copyable,
// mergeable across shards and subtractable across time for phase deltas.
type HistSnap struct {
	Count   uint64
	Sum     uint64
	Buckets [NumBuckets]uint64
}

// Merge returns the bucket-wise sum of s and o. Merging is associative
// and commutative because buckets are independent counters.
func (s HistSnap) Merge(o HistSnap) HistSnap {
	s.Count += o.Count
	s.Sum += o.Sum
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
	return s
}

// Sub returns the bucket-wise delta s - prev, for measuring one phase of
// a longer run. prev must be an earlier snapshot of the same histogram.
func (s HistSnap) Sub(prev HistSnap) HistSnap {
	s.Count -= prev.Count
	s.Sum -= prev.Sum
	for i := range s.Buckets {
		s.Buckets[i] -= prev.Buckets[i]
	}
	return s
}

// Mean returns the average recorded value, or 0 when empty.
func (s HistSnap) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Max returns the exclusive upper bound of the highest populated bucket
// (an upper estimate of the largest recorded value), or 0 when empty.
func (s HistSnap) Max() uint64 {
	for i := NumBuckets - 1; i >= 0; i-- {
		if s.Buckets[i] != 0 {
			return BucketHi(i)
		}
	}
	return 0
}

// Quantile returns an estimate of the q-quantile (q in [0,1]) by walking
// the cumulative bucket counts and interpolating linearly inside the
// bucket that contains the target rank. The estimate is monotone in q
// and always lies within the bounds of a populated bucket.
func (s HistSnap) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i := 0; i < NumBuckets; i++ {
		n := s.Buckets[i]
		if n == 0 {
			continue
		}
		cum += n
		if cum >= rank {
			lo, hi := float64(BucketLo(i)), float64(BucketHi(i))
			frac := float64(rank-(cum-n)) / float64(n)
			return lo + frac*(hi-lo)
		}
	}
	return float64(s.Max())
}

// P50, P90, P99 and P999 are the extraction points the pipeline reports.
func (s HistSnap) P50() float64  { return s.Quantile(0.50) }
func (s HistSnap) P90() float64  { return s.Quantile(0.90) }
func (s HistSnap) P99() float64  { return s.Quantile(0.99) }
func (s HistSnap) P999() float64 { return s.Quantile(0.999) }

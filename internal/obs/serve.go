package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
	"sync/atomic"
)

// Server exposes a registry (and any attached traces) over HTTP:
//
//	/metrics        Prometheus text exposition
//	/statz          JSON metric summaries (histograms as percentile rows)
//	/tracez         JSON dump of the attached event-trace rings
//	/debug/pprof/*  standard net/http/pprof handlers
//
// The endpoint is strictly opt-in: nothing in the pipeline starts one.
// Scrapes never block the pipeline — every read is an atomic load or a
// scrape-time stats snapshot.
type Server struct {
	reg atomic.Pointer[Registry]

	mu     sync.Mutex
	traces map[string]*Trace

	srv *http.Server
	ln  net.Listener
}

// NewServer returns a server (handler only; not listening) for r. A nil
// r serves an empty registry until SetRegistry installs a real one.
func NewServer(r *Registry) *Server {
	if r == nil {
		r = NewRegistry("obs")
	}
	s := &Server{traces: make(map[string]*Trace)}
	s.reg.Store(r)
	return s
}

// SetRegistry swaps the served registry. Benches that build one set per
// sweep point swap the live set's registry in as runs start. Nil is
// ignored.
func (s *Server) SetRegistry(r *Registry) {
	if r != nil {
		s.reg.Store(r)
	}
}

// AddTrace attaches a named trace ring set to /tracez.
func (s *Server) AddTrace(name string, t *Trace) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.traces[name] = t
}

// Handler returns the HTTP handler serving all endpoints.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = s.reg.Load().WriteProm(w)
	})
	mux.HandleFunc("/statz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = s.reg.Load().WriteStatz(w)
	})
	mux.HandleFunc("/tracez", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		s.mu.Lock()
		names := make([]string, 0, len(s.traces))
		for name := range s.traces {
			names = append(names, name)
		}
		traces := make(map[string]*Trace, len(s.traces))
		for name, t := range s.traces {
			traces[name] = t
		}
		s.mu.Unlock()
		sort.Strings(names)
		fmt.Fprintln(w, "{")
		for i, name := range names {
			fmt.Fprintf(w, "%q: ", name)
			_ = traces[name].WriteJSON(w)
			if i < len(names)-1 {
				fmt.Fprintln(w, ",")
			}
		}
		fmt.Fprintln(w, "}")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprintf(w, "obs: %s\n/metrics /statz /tracez /debug/pprof/\n", s.reg.Load().Name())
	})
	return mux
}

// Serve starts an HTTP observability endpoint for r on addr and returns
// once the listener is bound. Use Addr to discover the bound address
// (addr may use port 0) and Close to shut it down.
func Serve(addr string, r *Registry) (*Server, error) {
	s := NewServer(r)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.Handler()}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listen address, or "" if not serving.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener. Safe to call on a handler-only server.
func (s *Server) Close() error {
	if s.srv == nil {
		return nil
	}
	return s.srv.Close()
}

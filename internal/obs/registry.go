package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"reflect"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Uint64 }

func (c *Counter) Inc()          { c.v.Add(1) }
func (c *Counter) Add(n uint64)  { c.v.Add(n) }
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous atomic value that may go up or down.
type Gauge struct{ v atomic.Int64 }

func (g *Gauge) Set(n int64)  { g.v.Store(n) }
func (g *Gauge) Add(n int64)  { g.v.Add(n) }
func (g *Gauge) Value() int64 { return g.v.Load() }

type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
	kindStats
)

type entry struct {
	name, unit, help string
	kind             metricKind
	c                *Counter
	g                *Gauge
	h                *Histogram
	cfn              func() uint64
	gfn              func() int64
	stats            func() any
}

// Registry is a named set of metrics. Registration takes a lock;
// recording on the returned Counter/Gauge/Histogram is lock-free.
// Scraping (Gather/WriteProm/WriteStatz) walks the entries and reads
// every value atomically at that instant — legacy *Stats() accessors
// plugged in via Stats() are invoked at scrape time only, so the hot
// path pays nothing for them.
type Registry struct {
	name string

	mu    sync.Mutex
	ents  []*entry
	names map[string]bool
}

// NewRegistry returns an empty registry. name labels /statz output and
// is informational only.
func NewRegistry(name string) *Registry {
	return &Registry{name: name, names: make(map[string]bool)}
}

// Name returns the registry's label.
func (r *Registry) Name() string { return r.name }

func (r *Registry) register(e *entry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[e.name] {
		panic("obs: duplicate metric name " + e.name)
	}
	r.names[e.name] = true
	r.ents = append(r.ents, e)
}

// Counter registers and returns a new counter.
func (r *Registry) Counter(name, unit, help string) *Counter {
	c := &Counter{}
	r.register(&entry{name: name, unit: unit, help: help, kind: kindCounter, c: c})
	return c
}

// Gauge registers and returns a new gauge.
func (r *Registry) Gauge(name, unit, help string) *Gauge {
	g := &Gauge{}
	r.register(&entry{name: name, unit: unit, help: help, kind: kindGauge, g: g})
	return g
}

// Histogram registers and returns a new histogram.
func (r *Registry) Histogram(name, unit, help string) *Histogram {
	h := &Histogram{}
	r.RegisterHistogram(name, unit, help, h)
	return h
}

// RegisterHistogram registers an externally owned histogram (one that
// lives inside a pipeline struct and is recorded to directly).
func (r *Registry) RegisterHistogram(name, unit, help string, h *Histogram) {
	r.register(&entry{name: name, unit: unit, help: help, kind: kindHistogram, h: h})
}

// CounterFunc registers a counter whose value is computed at scrape time.
func (r *Registry) CounterFunc(name, unit, help string, fn func() uint64) {
	r.register(&entry{name: name, unit: unit, help: help, kind: kindCounterFunc, cfn: fn})
}

// GaugeFunc registers a gauge whose value is computed at scrape time.
func (r *Registry) GaugeFunc(name, unit, help string, fn func() int64) {
	r.register(&entry{name: name, unit: unit, help: help, kind: kindGaugeFunc, gfn: fn})
}

// Stats registers a legacy stats struct provider. fn is called at scrape
// time; every exported uint64 field of the returned struct becomes a
// counter named prefix_snake_case(field), every int field a gauge. This
// is the unification path for the pre-obs *Stats() accessors: the hot
// path keeps its existing atomic counters, and the registry reads them
// through the same snapshot accessor tests and callers use.
func (r *Registry) Stats(prefix, help string, fn func() any) {
	r.register(&entry{name: prefix, help: help, kind: kindStats, stats: fn})
}

// Sample is one scraped metric value.
type Sample struct {
	Name string
	Unit string
	Help string
	Kind string // "counter", "gauge", or "histogram"

	Value float64   // counter / gauge value
	Hist  *HistSnap // histogram capture, nil otherwise
}

// Gather scrapes every registered metric, expanding Stats providers via
// reflection, and returns samples sorted by name.
func (r *Registry) Gather() []Sample {
	r.mu.Lock()
	ents := make([]*entry, len(r.ents))
	copy(ents, r.ents)
	r.mu.Unlock()

	var out []Sample
	for _, e := range ents {
		switch e.kind {
		case kindCounter:
			out = append(out, Sample{Name: e.name, Unit: e.unit, Help: e.help, Kind: "counter", Value: float64(e.c.Value())})
		case kindGauge:
			out = append(out, Sample{Name: e.name, Unit: e.unit, Help: e.help, Kind: "gauge", Value: float64(e.g.Value())})
		case kindCounterFunc:
			out = append(out, Sample{Name: e.name, Unit: e.unit, Help: e.help, Kind: "counter", Value: float64(e.cfn())})
		case kindGaugeFunc:
			out = append(out, Sample{Name: e.name, Unit: e.unit, Help: e.help, Kind: "gauge", Value: float64(e.gfn())})
		case kindHistogram:
			sn := e.h.Snapshot()
			out = append(out, Sample{Name: e.name, Unit: e.unit, Help: e.help, Kind: "histogram", Hist: &sn})
		case kindStats:
			out = append(out, statsSamples(e.name, e.help, e.stats())...)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// statsSamples expands one stats struct into counter/gauge samples.
func statsSamples(prefix, help string, v any) []Sample {
	rv := reflect.ValueOf(v)
	for rv.Kind() == reflect.Pointer {
		if rv.IsNil() {
			return nil
		}
		rv = rv.Elem()
	}
	if rv.Kind() != reflect.Struct {
		return nil
	}
	rt := rv.Type()
	out := make([]Sample, 0, rt.NumField())
	for i := 0; i < rt.NumField(); i++ {
		f := rt.Field(i)
		if !f.IsExported() {
			continue
		}
		name := prefix + "_" + snakeCase(f.Name)
		switch f.Type.Kind() {
		case reflect.Uint64:
			out = append(out, Sample{Name: name, Help: help, Kind: "counter", Value: float64(rv.Field(i).Uint())})
		case reflect.Int, reflect.Int64:
			out = append(out, Sample{Name: name, Help: help, Kind: "gauge", Value: float64(rv.Field(i).Int())})
		}
	}
	return out
}

// snakeCase converts CamelCase field names to snake_case metric suffixes
// ("EnqueuedKeys" -> "enqueued_keys", "CkptSeq" -> "ckpt_seq").
func snakeCase(s string) string {
	var b strings.Builder
	rs := []rune(s)
	for i, c := range rs {
		if c >= 'A' && c <= 'Z' {
			lowerPrev := i > 0 && rs[i-1] >= 'a' && rs[i-1] <= 'z'
			lowerNext := i+1 < len(rs) && rs[i+1] >= 'a' && rs[i+1] <= 'z'
			if i > 0 && (lowerPrev || lowerNext) {
				b.WriteByte('_')
			}
			b.WriteRune(c - 'A' + 'a')
		} else {
			b.WriteRune(c)
		}
	}
	return b.String()
}

// WriteProm writes the registry in Prometheus text exposition format.
// Histograms emit cumulative le-buckets (trimmed to the populated
// prefix), _sum, and _count series.
func (r *Registry) WriteProm(w io.Writer) error {
	for _, s := range r.Gather() {
		help := s.Help
		if s.Unit != "" {
			help += " (" + s.Unit + ")"
		}
		if help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", s.Name, help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.Name, s.Kind); err != nil {
			return err
		}
		if s.Hist == nil {
			if _, err := fmt.Fprintf(w, "%s %s\n", s.Name, formatFloat(s.Value)); err != nil {
				return err
			}
			continue
		}
		h := s.Hist
		top := -1
		for i := NumBuckets - 1; i >= 0; i-- {
			if h.Buckets[i] != 0 {
				top = i
				break
			}
		}
		var cum uint64
		for i := 0; i <= top; i++ {
			cum += h.Buckets[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", s.Name, BucketHi(i), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", s.Name, h.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", s.Name, h.Sum, s.Name, h.Count); err != nil {
			return err
		}
	}
	return nil
}

func formatFloat(v float64) string {
	if v == float64(uint64(v)) {
		return fmt.Sprintf("%d", uint64(v))
	}
	return fmt.Sprintf("%g", v)
}

// statzMetric is the JSON shape of one metric in /statz output.
type statzMetric struct {
	Type  string  `json:"type"`
	Unit  string  `json:"unit,omitempty"`
	Value float64 `json:"value,omitempty"`

	Count uint64  `json:"count,omitempty"`
	Sum   uint64  `json:"sum,omitempty"`
	Mean  float64 `json:"mean,omitempty"`
	P50   float64 `json:"p50,omitempty"`
	P90   float64 `json:"p90,omitempty"`
	P99   float64 `json:"p99,omitempty"`
	P999  float64 `json:"p999,omitempty"`
	Max   uint64  `json:"max,omitempty"`
}

// WriteStatz writes the registry as indented JSON: one flat object of
// metric name -> value/summary, counters and gauges alongside histogram
// percentile summaries.
func (r *Registry) WriteStatz(w io.Writer) error {
	metrics := make(map[string]statzMetric)
	for _, s := range r.Gather() {
		m := statzMetric{Type: s.Kind, Unit: s.Unit}
		if s.Hist != nil {
			h := s.Hist
			m.Count, m.Sum, m.Mean = h.Count, h.Sum, h.Mean()
			m.P50, m.P90, m.P99, m.P999 = h.P50(), h.P90(), h.P99(), h.P999()
			m.Max = h.Max()
		} else {
			m.Value = s.Value
		}
		metrics[s.Name] = m
	}
	blob, err := json.MarshalIndent(struct {
		Registry string                 `json:"registry"`
		Metrics  map[string]statzMetric `json:"metrics"`
	}{r.name, metrics}, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	_, err = w.Write(blob)
	return err
}

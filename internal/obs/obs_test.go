package obs

import (
	"io"
	"math"
	"math/rand"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// Property: every recorded value lands in a bucket whose half-open
// range contains it (satellite: bucket-boundary property test).
func TestHistogramBucketBoundaries(t *testing.T) {
	// Exhaustive around every power-of-two boundary plus random fill.
	var vals []uint64
	vals = append(vals, 0, 1, 2, math.MaxUint64)
	for i := 1; i < 64; i++ {
		b := uint64(1) << i
		vals = append(vals, b-1, b, b+1)
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 10000; i++ {
		vals = append(vals, rng.Uint64()>>uint(rng.Intn(64)))
	}
	for _, v := range vals {
		i := bucketOf(v)
		if i < 0 || i >= NumBuckets {
			t.Fatalf("value %d mapped to out-of-range bucket %d", v, i)
		}
		lo, hi := BucketLo(i), BucketHi(i)
		if v < lo {
			t.Fatalf("value %d below bucket %d lower bound %d", v, i, lo)
		}
		// hi is exclusive except the saturated top bucket.
		if i < 64 && v >= hi {
			t.Fatalf("value %d at/above bucket %d upper bound %d", v, i, hi)
		}
	}
	// Bucket bounds must tile: hi(i) == lo(i+1).
	for i := 0; i < 63; i++ {
		if BucketHi(i) != BucketLo(i+1) {
			t.Fatalf("buckets %d,%d do not tile: hi=%d lo=%d", i, i+1, BucketHi(i), BucketLo(i+1))
		}
	}
}

// Property: merging snapshots is associative and commutative, and a
// merge of per-goroutine histograms equals one shared histogram fed the
// union of the streams.
func TestHistogramMergeAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	mk := func() HistSnap {
		var h Histogram
		for i := 0; i < 5000; i++ {
			h.Record(rng.Uint64() >> uint(rng.Intn(64)))
		}
		return h.Snapshot()
	}
	a, b, c := mk(), mk(), mk()
	left := a.Merge(b).Merge(c)
	right := a.Merge(b.Merge(c))
	swap := c.Merge(a).Merge(b)
	if left != right || left != swap {
		t.Fatal("merge is not associative/commutative")
	}
	if left.Count != a.Count+b.Count+c.Count || left.Sum != a.Sum+b.Sum+c.Sum {
		t.Fatal("merge lost observations")
	}
	// Sub inverts Merge.
	if left.Sub(c) != a.Merge(b) {
		t.Fatal("Sub does not invert Merge")
	}
}

// Property: quantile estimates are monotone in q, bounded by populated
// bucket ranges, and stay sane under concurrent Record from 8 goroutines
// (satellite: quantile monotonicity under concurrency).
func TestHistogramQuantileMonotoneConcurrent(t *testing.T) {
	var h Histogram
	const goroutines = 8
	const perG = 20000
	stop := make(chan struct{})
	var readers sync.WaitGroup
	// A concurrent quantile reader while recorders run: every capture
	// must itself be monotone.
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			checkMonotone(t, h.Snapshot())
		}
	}()
	var recorders sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		recorders.Add(1)
		go func(seed int64) {
			defer recorders.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perG; i++ {
				h.Record(rng.Uint64() >> uint(rng.Intn(64)))
			}
		}(int64(g))
	}
	recorders.Wait()
	close(stop)
	readers.Wait()

	sn := h.Snapshot()
	if sn.Count != goroutines*perG {
		t.Fatalf("lost records under concurrency: %d != %d", sn.Count, goroutines*perG)
	}
	checkMonotone(t, sn)
	// Quantile lands inside a populated bucket's range.
	for _, q := range []float64{0, 0.1, 0.5, 0.9, 0.99, 0.999, 1} {
		v := sn.Quantile(q)
		ok := false
		for i := 0; i < NumBuckets; i++ {
			if sn.Buckets[i] != 0 && v >= float64(BucketLo(i)) && v <= float64(BucketHi(i)) {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("quantile(%g)=%g outside every populated bucket", q, v)
		}
	}
}

func checkMonotone(t *testing.T, sn HistSnap) {
	t.Helper()
	qs := []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1}
	prev := -1.0
	for _, q := range qs {
		v := sn.Quantile(q)
		if v < prev {
			t.Fatalf("quantile not monotone: q=%g gave %g < %g", q, v, prev)
		}
		prev = v
	}
}

func TestRegistryScrape(t *testing.T) {
	r := NewRegistry("test")
	c := r.Counter("test_ops", "ops", "operations")
	g := r.Gauge("test_links", "links", "live links")
	h := r.Histogram("test_lat_ns", "ns", "latency")
	r.CounterFunc("test_fn", "", "computed", func() uint64 { return 7 })
	type fake struct {
		EnqueuedKeys uint64
		Links        int
	}
	r.Stats("test_stats", "legacy", func() any { return fake{EnqueuedKeys: 42, Links: 3} })

	c.Add(5)
	g.Set(-2)
	for i := uint64(1); i <= 100; i++ {
		h.Record(i)
	}

	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	prom := sb.String()
	for _, want := range []string{
		"test_ops 5", "test_links -2", "test_fn 7",
		"test_stats_enqueued_keys 42", "test_stats_links 3",
		"test_lat_ns_count 100", "test_lat_ns_bucket{le=\"+Inf\"} 100",
		"# TYPE test_lat_ns histogram", "# TYPE test_ops counter", "# TYPE test_links gauge",
	} {
		if !strings.Contains(prom, want) {
			t.Fatalf("prom output missing %q:\n%s", want, prom)
		}
	}

	sb.Reset()
	if err := r.WriteStatz(&sb); err != nil {
		t.Fatal(err)
	}
	statz := sb.String()
	for _, want := range []string{`"test_lat_ns"`, `"p99"`, `"test_stats_enqueued_keys"`, `"registry": "test"`} {
		if !strings.Contains(statz, want) {
			t.Fatalf("statz output missing %q:\n%s", want, statz)
		}
	}
}

func TestSnakeCase(t *testing.T) {
	for in, want := range map[string]string{
		"EnqueuedKeys":  "enqueued_keys",
		"CkptSeq":       "ckpt_seq",
		"Links":         "links",
		"LagRecords":    "lag_records",
		"BoundsUpdates": "bounds_updates",
		"Gen":           "gen",
	} {
		if got := snakeCase(in); got != want {
			t.Fatalf("snakeCase(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestTraceRing(t *testing.T) {
	tr := NewTrace(2, 4)
	for i := uint64(0); i < 10; i++ {
		tr.Record(0, EvDrain, i, 0, i, 0)
	}
	tr.Record(1, EvPublish, 3, 1, 0, 0)
	tr.Record(-1, EvCheckpoint, 0, 0, 123, 0)
	evs := tr.Events()
	if len(evs) != 4+1+1 {
		t.Fatalf("got %d events, want 6 (ring depth 4 + 2)", len(evs))
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", tr.Dropped())
	}
	// Oldest retained drain event must be epoch 6 (0..5 overwritten).
	minEpoch := uint64(1 << 62)
	for _, ev := range evs {
		if ev.Kind == EvDrain && ev.Epoch < minEpoch {
			minEpoch = ev.Epoch
		}
	}
	if minEpoch != 6 {
		t.Fatalf("oldest retained drain epoch = %d, want 6", minEpoch)
	}
	var sb strings.Builder
	if err := tr.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"kind": "drain"`, `"kind": "checkpoint"`, `"shard": -1`, `"dropped": 6`} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("trace json missing %q:\n%s", want, sb.String())
		}
	}
}

func TestServerEndpoints(t *testing.T) {
	r := NewRegistry("srv")
	h := r.Histogram("srv_lat_ns", "ns", "latency")
	h.Record(100)
	s := NewServer(r)
	s.AddTrace("pipeline", NewTrace(1, 8))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(path string) string {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	if body := get("/metrics"); !strings.Contains(body, "srv_lat_ns_count 1") {
		t.Fatalf("/metrics missing histogram:\n%s", body)
	}
	if body := get("/statz"); !strings.Contains(body, `"registry": "srv"`) {
		t.Fatalf("/statz missing registry name:\n%s", body)
	}
	if body := get("/tracez"); !strings.Contains(body, `"pipeline"`) {
		t.Fatalf("/tracez missing trace name:\n%s", body)
	}
	if body := get("/debug/pprof/cmdline"); body == "" {
		t.Fatal("/debug/pprof/cmdline empty")
	}
}

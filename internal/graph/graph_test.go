package graph

import (
	"math"
	"math/rand"
	"slices"
	"sort"
	"testing"
)

// sliceGraph is a simple adjacency-list reference implementation.
type sliceGraph struct {
	adj [][]uint32
	m   int64
}

func newSliceGraph(n int, edges [][2]uint32) *sliceGraph {
	g := &sliceGraph{adj: make([][]uint32, n)}
	for _, e := range edges {
		g.adj[e[0]] = append(g.adj[e[0]], e[1])
		g.adj[e[1]] = append(g.adj[e[1]], e[0])
		g.m += 2
	}
	for _, a := range g.adj {
		sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
	}
	return g
}

func (g *sliceGraph) NumVertices() int    { return len(g.adj) }
func (g *sliceGraph) NumEdges() int64     { return g.m }
func (g *sliceGraph) Degree(v uint32) int { return len(g.adj[v]) }
func (g *sliceGraph) Neighbors(v uint32, f func(u uint32) bool) {
	for _, u := range g.adj[v] {
		if !f(u) {
			return
		}
	}
}

// pathGraph: 0-1-2-...-n-1.
func pathGraph(n int) *sliceGraph {
	var edges [][2]uint32
	for i := 0; i+1 < n; i++ {
		edges = append(edges, [2]uint32{uint32(i), uint32(i + 1)})
	}
	return newSliceGraph(n, edges)
}

func TestVertexSubset(t *testing.T) {
	s := NewSparse(10, []uint32{1, 3, 5})
	if s.Size() != 3 || s.Empty() || !s.Has(3) || s.Has(2) {
		t.Fatal("sparse subset wrong")
	}
	d := NewDense([]bool{true, false, true})
	if d.Size() != 2 || !d.Has(0) || d.Has(1) {
		t.Fatal("dense subset wrong")
	}
	if All(5).Size() != 5 {
		t.Fatal("All wrong")
	}
}

func TestEdgeMapBFSLevels(t *testing.T) {
	// BFS on a path must advance one level per EdgeMap round in both
	// directions of the push/pull heuristic.
	for _, frac := range []int64{1, 1 << 30} { // force dense, force sparse
		g := pathGraph(50)
		depth := make([]int32, 50)
		for i := range depth {
			depth[i] = -1
		}
		depth[0] = 0
		frontier := NewSparse(50, []uint32{0})
		round := int32(0)
		for !frontier.Empty() {
			round++
			r := round
			frontier = EdgeMap(g, frontier,
				func(s, d uint32) bool {
					if depth[d] == -1 {
						depth[d] = r
						return true
					}
					return false
				},
				func(d uint32) bool { return depth[d] == -1 },
				&EdgeMapOptions{DenseThresholdFrac: frac},
			)
		}
		for i, dep := range depth {
			if dep != int32(i) {
				t.Fatalf("frac=%d: depth[%d] = %d, want %d", frac, i, dep, i)
			}
		}
	}
}

func randomGraph(r *rand.Rand, n, m int) *sliceGraph {
	seen := map[[2]uint32]bool{}
	var edges [][2]uint32
	for len(edges) < m {
		a, b := uint32(r.Intn(n)), uint32(r.Intn(n))
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		if seen[[2]uint32{a, b}] {
			continue
		}
		seen[[2]uint32{a, b}] = true
		edges = append(edges, [2]uint32{a, b})
	}
	return newSliceGraph(n, edges)
}

func TestConnectedComponents(t *testing.T) {
	// Two disjoint cliques plus isolated vertices.
	var edges [][2]uint32
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			edges = append(edges, [2]uint32{uint32(i), uint32(j)})
			edges = append(edges, [2]uint32{uint32(10 + i), uint32(10 + j)})
		}
	}
	g := newSliceGraph(20, edges)
	labels := ConnectedComponents(g)
	for i := 0; i < 5; i++ {
		if labels[i] != 0 {
			t.Fatalf("labels[%d] = %d, want 0", i, labels[i])
		}
		if labels[10+i] != 10 {
			t.Fatalf("labels[%d] = %d, want 10", 10+i, labels[10+i])
		}
	}
	for i := 5; i < 10; i++ {
		if labels[i] != uint32(i) {
			t.Fatalf("isolated labels[%d] = %d", i, labels[i])
		}
	}
}

func TestConnectedComponentsRandomAgainstUnionFind(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	g := randomGraph(r, 500, 700)
	labels := ConnectedComponents(g)
	// Reference: BFS components.
	ref := make([]int, 500)
	for i := range ref {
		ref[i] = -1
	}
	comp := 0
	for s := 0; s < 500; s++ {
		if ref[s] != -1 {
			continue
		}
		stack := []uint32{uint32(s)}
		ref[s] = comp
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, u := range g.adj[v] {
				if ref[u] == -1 {
					ref[u] = comp
					stack = append(stack, u)
				}
			}
		}
		comp++
	}
	// Same partition: labels equal iff ref equal.
	for i := 0; i < 500; i++ {
		for j := i + 1; j < 500; j += 37 {
			if (labels[i] == labels[j]) != (ref[i] == ref[j]) {
				t.Fatalf("partition mismatch at %d,%d", i, j)
			}
		}
	}
}

func TestPageRankStar(t *testing.T) {
	// Star graph: the center must carry the highest rank, leaves equal.
	var edges [][2]uint32
	for i := 1; i < 10; i++ {
		edges = append(edges, [2]uint32{0, uint32(i)})
	}
	g := newSliceGraph(10, edges)
	rank := PageRank(g, 10)
	sum := 0.0
	for _, x := range rank {
		sum += x
	}
	if math.Abs(sum-1) > 0.05 {
		t.Fatalf("ranks sum to %f", sum)
	}
	for i := 1; i < 10; i++ {
		if rank[0] <= rank[i] {
			t.Fatalf("center rank %f <= leaf rank %f", rank[0], rank[i])
		}
		if math.Abs(rank[i]-rank[1]) > 1e-12 {
			t.Fatal("leaf ranks differ")
		}
	}
}

func TestPageRankMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	g := randomGraph(r, 200, 600)
	got := PageRank(g, 10)
	// Reference: straightforward dense iteration.
	n := 200
	rank := make([]float64, n)
	for i := range rank {
		rank[i] = 1 / float64(n)
	}
	for it := 0; it < 10; it++ {
		next := make([]float64, n)
		for v := 0; v < n; v++ {
			sum := 0.0
			for _, u := range g.adj[v] {
				sum += rank[u] / float64(len(g.adj[u]))
			}
			next[v] = 0.15/float64(n) + 0.85*sum
		}
		rank = next
	}
	for i := range rank {
		if math.Abs(got[i]-rank[i]) > 1e-9 {
			t.Fatalf("rank[%d] = %g, want %g", i, got[i], rank[i])
		}
	}
}

// bcReference is a serial Brandes implementation.
func bcReference(g *sliceGraph, src uint32) []float64 {
	n := g.NumVertices()
	sigma := make([]float64, n)
	depth := make([]int, n)
	for i := range depth {
		depth[i] = -1
	}
	sigma[src] = 1
	depth[src] = 0
	var order []uint32
	queue := []uint32{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, u := range g.adj[v] {
			if depth[u] == -1 {
				depth[u] = depth[v] + 1
				queue = append(queue, u)
			}
			if depth[u] == depth[v]+1 {
				sigma[u] += sigma[v]
			}
		}
	}
	delta := make([]float64, n)
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		for _, u := range g.adj[v] {
			if depth[u] == depth[v]+1 && sigma[u] > 0 {
				delta[v] += sigma[v] / sigma[u] * (1 + delta[u])
			}
		}
	}
	delta[src] = 0
	return delta
}

func TestBCMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 5; trial++ {
		g := randomGraph(r, 120, 300)
		src := uint32(r.Intn(120))
		got := BC(g, src)
		want := bcReference(g, src)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("trial %d: delta[%d] = %g, want %g", trial, i, got[i], want[i])
			}
		}
	}
}

func TestBCPath(t *testing.T) {
	g := pathGraph(5) // 0-1-2-3-4 from source 0: deltas 0,3,2,1,0
	got := BC(g, 0)
	want := []float64{0, 3, 2, 1, 0}
	if !slices.Equal(got, want) {
		t.Fatalf("BC = %v, want %v", got, want)
	}
}

func TestDegrees(t *testing.T) {
	g := pathGraph(4)
	deg := Degrees(g)
	if !slices.Equal(deg, []int32{1, 2, 2, 1}) {
		t.Fatalf("Degrees = %v", deg)
	}
}

func TestBFSMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	g := randomGraph(r, 300, 900)
	depth := BFS(g, 5)
	// Reference BFS.
	ref := make([]int32, 300)
	for i := range ref {
		ref[i] = -1
	}
	ref[5] = 0
	queue := []uint32{5}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.adj[v] {
			if ref[u] == -1 {
				ref[u] = ref[v] + 1
				queue = append(queue, u)
			}
		}
	}
	if !slices.Equal(depth, ref) {
		t.Fatal("BFS depths mismatch")
	}
}

func TestBFSPath(t *testing.T) {
	g := pathGraph(6)
	depth := BFS(g, 0)
	for i, d := range depth {
		if d != int32(i) {
			t.Fatalf("depth[%d] = %d", i, d)
		}
	}
}

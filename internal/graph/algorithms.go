package graph

import (
	"math"
	"sync/atomic"

	"repro/internal/parallel"
)

func bitsFloat(b uint64) float64 { return math.Float64frombits(b) }
func floatBits(f float64) uint64 { return math.Float64bits(f) }

// PageRank runs the paper's PR benchmark: a fixed number of pull-based
// iterations with damping 0.85 ("the PR implementation runs for a fixed
// number (10) of iterations"). Graphs implementing ContribScanner (F-Graph
// and the sharded view) use a flat edge scan per iteration; others pull per
// vertex. The two paths are bit-identical by the ContribScanner contract
// (each vertex's contributions summed sequentially in ascending neighbor
// order), so PR vectors are reproducible across storage layouts and shard
// counts — the streaming differential harness compares them bytewise.
func PageRank(g Graph, iters int) []float64 {
	n := g.NumVertices()
	if iters <= 0 {
		iters = 10
	}
	deg := make([]float64, n)
	parallel.For(n, 256, func(i int) { deg[i] = float64(g.Degree(uint32(i))) })

	rank := make([]float64, n)
	for i := range rank {
		rank[i] = 1 / float64(n)
	}
	contrib := make([]float64, n)
	acc := make([]float64, n)
	scanner, hasScanner := g.(ContribScanner)
	base := 0.15 / float64(n)

	for it := 0; it < iters; it++ {
		parallel.For(n, 1024, func(i int) {
			if deg[i] > 0 {
				contrib[i] = rank[i] / deg[i]
			} else {
				contrib[i] = 0
			}
		})
		if hasScanner {
			// The scanner writes acc[v] only for vertices with edges;
			// zero the rest so isolated vertices keep a clean slate.
			parallel.For(n, 2048, func(i int) { acc[i] = 0 })
			scanner.AccumulateContrib(contrib, acc)
		} else {
			parallel.For(n, 64, func(i int) {
				sum := 0.0
				g.Neighbors(uint32(i), func(u uint32) bool {
					sum += contrib[u]
					return true
				})
				acc[i] = sum
			})
		}
		parallel.For(n, 1024, func(i int) {
			rank[i] = base + 0.85*acc[i]
		})
	}
	return rank
}

// ConnectedComponents labels every vertex with the minimum vertex id
// reachable from it, via frontier-based label propagation (Ligra's CC).
func ConnectedComponents(g Graph) []uint32 {
	n := g.NumVertices()
	labels := make([]uint32, n)
	for i := range labels {
		labels[i] = uint32(i)
	}
	frontier := All(n)
	for !frontier.Empty() {
		frontier = EdgeMap(g, frontier,
			func(s, d uint32) bool {
				return writeMinUint32(&labels[d], atomic.LoadUint32(&labels[s]))
			},
			func(uint32) bool { return true },
			nil,
		)
	}
	return labels
}

// BC computes single-source betweenness centrality contributions from src
// (Brandes' algorithm with a level-synchronous frontier BFS, as in Ligra's
// BC): a forward sparse/dense traversal accumulating shortest-path counts,
// then a backward sweep accumulating dependencies.
func BC(g Graph, src uint32) []float64 {
	n := g.NumVertices()
	sigma := make([]uint64, n) // float64 bits, updated with CAS adds
	depth := make([]int32, n)
	for i := range depth {
		depth[i] = -1
	}
	depth[src] = 0
	sigma[src] = floatBits(1)

	var levels []VertexSubset
	frontier := NewSparse(n, []uint32{src})
	cur := int32(0)
	for !frontier.Empty() {
		levels = append(levels, frontier)
		next := cur + 1
		frontier = EdgeMap(g, frontier,
			func(s, d uint32) bool {
				// Runs only while cond(d) holds, i.e. d is unvisited or
				// already placed in the next level; both accumulate sigma.
				first := atomic.CompareAndSwapInt32(&depth[d], -1, next)
				if atomic.LoadInt32(&depth[d]) == next {
					atomicAddFloat64(&sigma[d], bitsFloat(atomic.LoadUint64(&sigma[s])))
				}
				return first
			},
			func(d uint32) bool {
				dd := atomic.LoadInt32(&depth[d])
				return dd == -1 || dd == next
			},
			nil,
		)
		cur = next
	}

	// Backward dependency accumulation, level by level from the deepest.
	delta := make([]float64, n)
	for l := len(levels) - 2; l >= 0; l-- {
		lv := levels[l]
		lv.ForEach(func(v uint32) {
			sv := bitsFloat(sigma[v])
			if sv == 0 {
				return
			}
			d := 0.0
			g.Neighbors(v, func(u uint32) bool {
				if depth[u] == depth[v]+1 {
					su := bitsFloat(sigma[u])
					if su > 0 {
						d += sv / su * (1 + delta[u])
					}
				}
				return true
			})
			delta[v] = d
		})
	}
	delta[src] = 0
	return delta
}

// BFS returns the BFS depth of every vertex from src (-1 if unreachable),
// using the direction-switching EdgeMap — the building block of the
// frontier-based kernels.
func BFS(g Graph, src uint32) []int32 {
	n := g.NumVertices()
	depth := make([]int32, n)
	for i := range depth {
		depth[i] = -1
	}
	depth[src] = 0
	frontier := NewSparse(n, []uint32{src})
	for d := int32(1); !frontier.Empty(); d++ {
		dd := d
		frontier = EdgeMap(g, frontier,
			func(s, u uint32) bool {
				return atomic.CompareAndSwapInt32(&depth[u], -1, dd)
			},
			func(u uint32) bool { return atomic.LoadInt32(&depth[u]) == -1 },
			nil,
		)
	}
	return depth
}

// Degrees returns the degree array; shared helper for harnesses.
func Degrees(g Graph) []int32 {
	n := g.NumVertices()
	deg := make([]int32, n)
	parallel.For(n, 256, func(i int) { deg[i] = int32(g.Degree(uint32(i))) })
	return deg
}

// Package graph implements the Ligra-style VertexSubset/EdgeMap framework
// [66] and the paper's three evaluation kernels — PageRank, connected
// components, and single-source betweenness centrality (§6) — over a small
// Graph interface that F-Graph, the C-PaC graph, and the Aspen stand-in all
// implement ("all systems run the same algorithms via the Ligra interface").
package graph

import (
	"sync/atomic"

	"repro/internal/parallel"
)

// Graph is the adjacency interface the kernels run against. Graphs are
// undirected and store each edge in both directions.
type Graph interface {
	// NumVertices returns the size of the vertex-id space.
	NumVertices() int
	// NumEdges returns the number of stored (directed) edges.
	NumEdges() int64
	// Degree returns the out-degree of v.
	Degree(v uint32) int
	// Neighbors applies f to the out-neighbors of v in ascending order
	// until f returns false.
	Neighbors(v uint32, f func(u uint32) bool)
}

// ContribScanner is an optional fast path for PageRank-style kernels: one
// flat pass over the stored edges computing, for every source vertex s with
// at least one edge, acc[s] = sum of w[d] over s's neighbors d. F-Graph
// implements it with a single scan of its CPMA (§6: PR "can be cast as a
// straightforward pass through the data structure") and the sharded view
// with one scan per frozen shard.
//
// The contract is deterministic and layout-independent: each acc[s] must be
// the sequential left-to-right sum of w[d] in ascending d order, written
// exactly once (entries for vertices without edges are left untouched).
// That makes the scanner path bit-identical to a per-vertex Neighbors pull
// — and therefore bit-identical across storage layouts, shard counts, and
// schedules — which the streaming-graph differential harness relies on.
// Implementations parallelize by run ownership (one task owns all of a
// vertex's edges) rather than by CAS-merging partial sums, whose grouping
// would depend on leaf boundaries.
type ContribScanner interface {
	AccumulateContrib(w []float64, acc []float64)
}

// VertexSubset is a Ligra frontier: sparse (vertex list) or dense (bitmap).
type VertexSubset struct {
	n      int
	sparse []uint32 // valid when dense == nil
	dense  []bool
	size   int
}

// NewSparse builds a frontier from an explicit vertex list.
func NewSparse(n int, vs []uint32) VertexSubset {
	return VertexSubset{n: n, sparse: vs, size: len(vs)}
}

// NewDense builds a frontier from a bitmap; size is recomputed.
func NewDense(marks []bool) VertexSubset {
	size := 0
	for _, m := range marks {
		if m {
			size++
		}
	}
	return VertexSubset{n: len(marks), dense: marks, size: size}
}

// All returns the full frontier over n vertices.
func All(n int) VertexSubset {
	marks := make([]bool, n)
	for i := range marks {
		marks[i] = true
	}
	return VertexSubset{n: n, dense: marks, size: n}
}

// Size returns the number of vertices in the frontier.
func (f VertexSubset) Size() int { return f.size }

// Empty reports whether the frontier has no vertices.
func (f VertexSubset) Empty() bool { return f.size == 0 }

// ForEach applies fn to every frontier vertex (parallel).
func (f VertexSubset) ForEach(fn func(v uint32)) {
	if f.dense != nil {
		parallel.For(f.n, 1024, func(i int) {
			if f.dense[i] {
				fn(uint32(i))
			}
		})
		return
	}
	parallel.For(len(f.sparse), 256, func(i int) { fn(f.sparse[i]) })
}

// Has reports membership of v in the frontier.
func (f VertexSubset) Has(v uint32) bool {
	if f.dense != nil {
		return f.dense[v]
	}
	for _, u := range f.sparse {
		if u == v {
			return true
		}
	}
	return false
}

// toDense materializes the bitmap form.
func (f VertexSubset) toDense() []bool {
	if f.dense != nil {
		return f.dense
	}
	marks := make([]bool, f.n)
	for _, v := range f.sparse {
		marks[v] = true
	}
	return marks
}

// EdgeMapOptions tunes the push/pull direction heuristic.
type EdgeMapOptions struct {
	// DenseThresholdFrac d switches to the dense (pull) traversal when
	// |frontier| + out-degree(frontier) > edges/d. Ligra's default is 20.
	DenseThresholdFrac int64
}

// EdgeMap is Ligra's edge traversal: from each frontier vertex s, visit
// edges (s, d) with cond(d) true and apply update(s, d); d joins the output
// frontier when update returns true. update must be atomic: it may be
// called concurrently for the same d. Direction (sparse push vs dense pull)
// follows Ligra's threshold heuristic.
func EdgeMap(g Graph, frontier VertexSubset, update func(s, d uint32) bool, cond func(d uint32) bool, opts *EdgeMapOptions) VertexSubset {
	frac := int64(20)
	if opts != nil && opts.DenseThresholdFrac > 0 {
		frac = opts.DenseThresholdFrac
	}
	var outDeg int64
	frontier.ForEach(func(v uint32) {
		atomic.AddInt64(&outDeg, int64(g.Degree(v)))
	})
	if int64(frontier.Size())+outDeg > g.NumEdges()/frac {
		return edgeMapDense(g, frontier, update, cond)
	}
	return edgeMapSparse(g, frontier, update, cond)
}

// edgeMapDense pulls: every vertex d with cond(d) scans its in-neighbors
// (graphs are symmetric, so out-neighbors) for frontier members.
func edgeMapDense(g Graph, frontier VertexSubset, update func(s, d uint32) bool, cond func(d uint32) bool) VertexSubset {
	n := g.NumVertices()
	in := frontier.toDense()
	out := make([]bool, n)
	parallel.For(n, 64, func(i int) {
		d := uint32(i)
		if !cond(d) {
			return
		}
		g.Neighbors(d, func(s uint32) bool {
			if in[s] && update(s, d) {
				out[d] = true
			}
			return cond(d)
		})
	})
	return NewDense(out)
}

// edgeMapSparse pushes from each frontier vertex; output vertices are
// deduplicated with an atomic claim array.
func edgeMapSparse(g Graph, frontier VertexSubset, update func(s, d uint32) bool, cond func(d uint32) bool) VertexSubset {
	n := g.NumVertices()
	claimed := make([]int32, n)
	var mu chunkedAppender
	frontier.ForEach(func(s uint32) {
		var local []uint32
		g.Neighbors(s, func(d uint32) bool {
			if cond(d) && update(s, d) {
				if atomic.CompareAndSwapInt32(&claimed[d], 0, 1) {
					local = append(local, d)
				}
			}
			return true
		})
		if len(local) > 0 {
			mu.append(local)
		}
	})
	return NewSparse(n, mu.collect())
}

// chunkedAppender gathers per-task slices under a lock; contention is one
// lock acquisition per frontier vertex with output, not per edge.
type chunkedAppender struct {
	mu     spinMutex
	chunks [][]uint32
	total  int
}

func (c *chunkedAppender) append(chunk []uint32) {
	c.mu.Lock()
	c.chunks = append(c.chunks, chunk)
	c.total += len(chunk)
	c.mu.Unlock()
}

func (c *chunkedAppender) collect() []uint32 {
	out := make([]uint32, 0, c.total)
	for _, ch := range c.chunks {
		out = append(out, ch...)
	}
	return out
}

// spinMutex is a tiny test-and-set lock: the critical sections above are a
// few nanoseconds, shorter than a sync.Mutex slow path.
type spinMutex struct{ v int32 }

func (m *spinMutex) Lock() {
	for !atomic.CompareAndSwapInt32(&m.v, 0, 1) {
	}
}
func (m *spinMutex) Unlock() { atomic.StoreInt32(&m.v, 0) }

// atomicAddFloat64 adds delta to *addr with a CAS loop.
func atomicAddFloat64(addr *uint64, delta float64) {
	for {
		old := atomic.LoadUint64(addr)
		new := floatBits(bitsFloat(old) + delta)
		if atomic.CompareAndSwapUint64(addr, old, new) {
			return
		}
	}
}

// writeMinUint32 lowers *addr to v, reporting whether it changed.
func writeMinUint32(addr *uint32, v uint32) bool {
	for {
		old := atomic.LoadUint32(addr)
		if v >= old {
			return false
		}
		if atomic.CompareAndSwapUint32(addr, old, v) {
			return true
		}
	}
}

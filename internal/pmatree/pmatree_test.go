package pmatree

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLeafRange(t *testing.T) {
	tr := New(10, 8, DefaultBounds())
	cases := []struct {
		node           Node
		wantLo, wantHi int
	}{
		{Node{0, 0}, 0, 1},
		{Node{0, 9}, 9, 10},
		{Node{1, 0}, 0, 2},
		{Node{1, 4}, 8, 10},
		{Node{2, 2}, 8, 10}, // right edge truncation
		{Node{3, 1}, 8, 10}, // deeper truncation
		{Node{4, 0}, 0, 10}, // root covers everything
	}
	for _, c := range cases {
		lo, hi := tr.LeafRange(c.node)
		if lo != c.wantLo || hi != c.wantHi {
			t.Errorf("LeafRange(%v) = [%d,%d), want [%d,%d)", c.node, lo, hi, c.wantLo, c.wantHi)
		}
	}
	if tr.Height() != 4 {
		t.Errorf("Height = %d, want 4", tr.Height())
	}
	if tr.Root() != (Node{4, 0}) {
		t.Errorf("Root = %v", tr.Root())
	}
}

func TestBoundsMonotone(t *testing.T) {
	tr := New(1024, 32, DefaultBounds())
	for l := 1; l <= tr.Height(); l++ {
		if tr.Upper(l) > tr.Upper(l-1) {
			t.Errorf("Upper not non-increasing at level %d", l)
		}
		if tr.Lower(l) < tr.Lower(l-1) {
			t.Errorf("Lower not non-decreasing at level %d", l)
		}
	}
	if tr.Upper(0) != 0.9 || tr.Upper(tr.Height()) != 0.7 {
		t.Errorf("endpoint bounds wrong: %f %f", tr.Upper(0), tr.Upper(tr.Height()))
	}
}

func TestSingleLeafTree(t *testing.T) {
	tr := New(1, 16, DefaultBounds())
	if tr.Height() != 0 {
		t.Fatalf("height = %d", tr.Height())
	}
	used := func(int) int { return 14 } // density 0.875 > UpperRoot 0.7
	plan := tr.Count(used, []int{0}, true, false)
	if !plan.Grow {
		t.Fatal("expected Grow for over-full single leaf")
	}
	used = func(int) int { return 8 }
	plan = tr.Count(used, []int{0}, true, false)
	if plan.Grow || len(plan.Redistribute) != 0 {
		t.Fatalf("expected empty plan, got %+v", plan)
	}
}

func TestCountEscalatesToInBoundAncestor(t *testing.T) {
	// 8 leaves of capacity 10. Leaf 3 is overfull; its sibling region has
	// plenty of space, so the parent (level 1, index 1) should be the
	// redistribution root.
	tr := New(8, 10, DefaultBounds())
	occ := []int{5, 5, 5, 10, 5, 5, 5, 5}
	plan := tr.Count(func(i int) int { return occ[i] }, []int{3}, true, false)
	if plan.Grow || plan.Shrink {
		t.Fatalf("unexpected grow/shrink: %+v", plan)
	}
	if len(plan.Redistribute) != 1 {
		t.Fatalf("want 1 region, got %+v", plan.Redistribute)
	}
	r := plan.Redistribute[0]
	if r.Level != 1 || r.Index != 1 || r.LoLeaf != 2 || r.HiLeaf != 4 || r.Used != 15 {
		t.Fatalf("bad region %+v", r)
	}
}

func TestCountOverflowedLeafEscalatesFurther(t *testing.T) {
	// Leaf 3 overflowed to 25 units (capacity 10): level-1 node (2,3) holds
	// 30/20 units — violating. Level-2 node (leaves 0-3) holds 40/40 > bound.
	// Root (leaves 0-7) holds 60/80 = 0.75 > 0.7 -> grow.
	tr := New(8, 10, DefaultBounds())
	occ := []int{5, 5, 5, 25, 5, 5, 5, 5}
	plan := tr.Count(func(i int) int { return occ[i] }, []int{3}, true, false)
	if !plan.Grow {
		t.Fatalf("expected grow, got %+v", plan)
	}
	if plan.RootUsed != 60 {
		t.Fatalf("RootUsed = %d, want 60", plan.RootUsed)
	}
}

func TestCountLowerBoundShrink(t *testing.T) {
	tr := New(8, 10, DefaultBounds())
	occ := []int{1, 0, 0, 0, 0, 0, 0, 0}
	plan := tr.Count(func(i int) int { return occ[i] }, []int{0, 1, 2, 3}, false, true)
	if !plan.Shrink {
		t.Fatalf("expected shrink, got %+v", plan)
	}
}

func TestCountMergesSiblingViolations(t *testing.T) {
	// Two violating leaves under the same grandparent produce one maximal
	// region, not two nested/overlapping ones.
	tr := New(16, 10, DefaultBounds())
	occ := make([]int, 16)
	for i := range occ {
		occ[i] = 2
	}
	occ[4], occ[5] = 10, 10 // both leaves of node (1,2) violate
	plan := tr.Count(func(i int) int { return occ[i] }, []int{4, 5}, true, false)
	if len(plan.Redistribute) != 1 {
		t.Fatalf("want one region, got %+v", plan.Redistribute)
	}
	r := plan.Redistribute[0]
	if r.LoLeaf > 4 || r.HiLeaf < 6 {
		t.Fatalf("region %+v does not cover both dirty leaves", r)
	}
	// Verify the region is in bounds at its own level.
	if r.Used > tr.UpperUnits(r.Node) {
		t.Fatalf("chosen region violates its own bound: %+v", r)
	}
}

func TestCountRegionsDisjointProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		leaves := 3 + r.Intn(60)
		cap := 8 + r.Intn(64)
		tr := New(leaves, cap, DefaultBounds())
		occ := make([]int, leaves)
		for i := range occ {
			occ[i] = r.Intn(cap + 1)
		}
		var dirty []int
		for i := 0; i < leaves; i++ {
			if r.Intn(3) == 0 {
				occ[i] = cap + r.Intn(cap) // simulate overflow
				dirty = append(dirty, i)
			}
		}
		if len(dirty) == 0 {
			dirty = []int{0}
		}
		plan := tr.Count(func(i int) int { return occ[i] }, dirty, true, false)
		if plan.Grow || plan.Shrink {
			return true
		}
		// regions must be sorted, disjoint, and within their own bounds
		last := -1
		for _, reg := range plan.Redistribute {
			if reg.LoLeaf <= last {
				return false
			}
			if reg.Used > tr.UpperUnits(reg.Node) {
				return false
			}
			sum := 0
			for i := reg.LoLeaf; i < reg.HiLeaf; i++ {
				sum += occ[i]
			}
			if sum != reg.Used {
				return false
			}
			last = reg.HiLeaf - 1
		}
		// every overflowed dirty leaf must be covered by some region
		for _, d := range dirty {
			if occ[d] <= int(tr.Upper(0)*float64(cap)) {
				continue
			}
			covered := false
			for _, reg := range plan.Redistribute {
				if d >= reg.LoLeaf && d < reg.HiLeaf {
					covered = true
				}
			}
			if !covered {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestWalkUpMatchesPointSemantics(t *testing.T) {
	tr := New(8, 10, DefaultBounds())
	occ := []int{5, 5, 5, 10, 5, 5, 5, 5}
	plan := tr.WalkUp(func(i int) int { return occ[i] }, 3, true, false)
	if len(plan.Redistribute) != 1 {
		t.Fatalf("want one region, got %+v", plan)
	}
	r := plan.Redistribute[0]
	if r.LoLeaf != 2 || r.HiLeaf != 4 {
		t.Fatalf("bad region %+v", r)
	}
	// An in-bounds leaf yields an empty plan.
	plan = tr.WalkUp(func(i int) int { return occ[i] }, 0, true, false)
	if len(plan.Redistribute) != 0 && !plan.Grow {
		t.Fatalf("expected empty plan, got %+v", plan)
	}
}

func TestWalkUpGrowAtRoot(t *testing.T) {
	tr := New(4, 10, DefaultBounds())
	occ := []int{10, 10, 10, 10}
	plan := tr.WalkUp(func(i int) int { return occ[i] }, 1, true, false)
	if !plan.Grow || plan.RootUsed != 40 {
		t.Fatalf("expected grow with RootUsed 40, got %+v", plan)
	}
}

func TestWalkUpShrink(t *testing.T) {
	tr := New(4, 10, DefaultBounds())
	occ := []int{0, 1, 0, 0}
	plan := tr.WalkUp(func(i int) int { return occ[i] }, 0, false, true)
	if !plan.Shrink {
		t.Fatalf("expected shrink, got %+v", plan)
	}
}

// Package pmatree implements the implicit binary tree that a Packed Memory
// Array defines over its leaves (paper §3) together with the work-efficient
// parallel counting algorithm for batch updates (paper §4, Figure 5).
//
// The tree is purely arithmetic: a node is a (level, index) pair whose region
// is a contiguous range of leaves. The planner in this package decides which
// regions must be redistributed after a batch merge; the PMA and CPMA own the
// actual data movement. Occupancy is measured in abstract "units" — cells for
// the uncompressed PMA, bytes for the CPMA — so one planner serves both.
package pmatree

import (
	"sort"

	"repro/internal/bitutil"
	"repro/internal/parallel"
)

// Bounds holds the density thresholds at the two ends of the implicit tree.
// Upper bounds tighten toward the root (growth pressure), lower bounds
// tighten toward the root as well (shrink pressure); intermediate levels are
// linearly interpolated, following the classic PMA analysis [16, 50].
type Bounds struct {
	UpperLeaf float64 // max density allowed in a leaf (level 0)
	UpperRoot float64 // max density allowed at the root
	LowerLeaf float64 // min density allowed in a leaf
	LowerRoot float64 // min density allowed at the root
}

// DefaultBounds are the thresholds used across the repository: leaves may
// fill to 0.9 (the paper's examples use a 0.9 leaf bound), the root to 0.7;
// deletions keep the root at least 0.3 full and leaves at least 0.1.
func DefaultBounds() Bounds {
	return Bounds{UpperLeaf: 0.9, UpperRoot: 0.7, LowerLeaf: 0.1, LowerRoot: 0.3}
}

// Tree is the implicit PMA tree over a fixed number of leaves, each with a
// fixed capacity in units. It is immutable; PMA resizes build a new Tree.
type Tree struct {
	leaves  int
	leafCap int
	height  int
	bounds  Bounds
}

// New returns the implicit tree for the given leaf count and per-leaf
// capacity. leaves may be any positive number (growth factors other than 2
// produce non-power-of-two leaf counts); right-edge nodes simply cover fewer
// leaves.
func New(leaves, leafCap int, b Bounds) *Tree {
	if leaves < 1 || leafCap < 1 {
		panic("pmatree: leaves and leafCap must be positive")
	}
	return &Tree{
		leaves:  leaves,
		leafCap: leafCap,
		height:  bitutil.Log2Ceil(uint64(leaves)),
		bounds:  b,
	}
}

// Leaves returns the number of leaves.
func (t *Tree) Leaves() int { return t.leaves }

// LeafCap returns the per-leaf capacity in units.
func (t *Tree) LeafCap() int { return t.leafCap }

// Height returns the height of the implicit tree (0 for a single leaf).
func (t *Tree) Height() int { return t.height }

// Node identifies a region of the implicit tree: level 0 is the leaves, and
// node (l, i) covers leaves [i<<l, min((i+1)<<l, leaves)).
type Node struct {
	Level int
	Index int
}

// Root returns the root node.
func (t *Tree) Root() Node { return Node{Level: t.height, Index: 0} }

// Parent returns the parent of n.
func (t *Tree) Parent(n Node) Node {
	return Node{Level: n.Level + 1, Index: n.Index >> 1}
}

// LeafRange returns the half-open leaf range [lo, hi) covered by n.
func (t *Tree) LeafRange(n Node) (lo, hi int) {
	lo = n.Index << uint(n.Level)
	hi = lo + 1<<uint(n.Level)
	if hi > t.leaves {
		hi = t.leaves
	}
	return lo, hi
}

// Upper returns the maximum allowed density for a node at the given level.
func (t *Tree) Upper(level int) float64 {
	if t.height == 0 {
		return t.bounds.UpperRoot
	}
	frac := float64(level) / float64(t.height)
	return t.bounds.UpperLeaf + (t.bounds.UpperRoot-t.bounds.UpperLeaf)*frac
}

// Lower returns the minimum allowed density for a node at the given level.
func (t *Tree) Lower(level int) float64 {
	if t.height == 0 {
		return t.bounds.LowerRoot
	}
	frac := float64(level) / float64(t.height)
	return t.bounds.LowerLeaf + (t.bounds.LowerRoot-t.bounds.LowerLeaf)*frac
}

// UpperUnits returns the unit budget of node n under its upper bound.
func (t *Tree) UpperUnits(n Node) int {
	lo, hi := t.LeafRange(n)
	return int(t.Upper(n.Level) * float64((hi-lo)*t.leafCap))
}

// LowerUnits returns the minimum units node n may hold under its lower bound.
func (t *Tree) LowerUnits(n Node) int {
	lo, hi := t.LeafRange(n)
	return int(t.Lower(n.Level) * float64((hi-lo)*t.leafCap))
}

// Region is a planner result: a maximal node whose covered leaves must be
// redistributed, along with its cached occupancy.
type Region struct {
	Node
	LoLeaf int // first covered leaf
	HiLeaf int // one past the last covered leaf
	Used   int // total occupied units across the covered leaves
}

// Plan is the outcome of the counting phase.
type Plan struct {
	// Redistribute lists the maximal in-bound ancestors whose regions must
	// be redistributed. Regions are disjoint.
	Redistribute []Region
	// Grow is set when the root violates its upper bound: the structure must
	// be rebuilt at a larger capacity.
	Grow bool
	// Shrink is set when the root violates its lower bound.
	Shrink bool
	// RootUsed is the total occupied units; only valid when Grow or Shrink
	// is set or when the root itself was counted.
	RootUsed int
}

// walkUp implements the point-update rebalance walk: starting from a leaf,
// climb until a node within its bounds is found. used must report occupied
// units per leaf. Returns the region to redistribute, or grow/shrink at the
// root. Exposed for the PMA/CPMA point-update paths.
func (t *Tree) WalkUp(used func(leaf int) int, leaf int, checkUpper, checkLower bool) Plan {
	n := Node{Level: 0, Index: leaf}
	for {
		lo, hi := t.LeafRange(n)
		total := 0
		for i := lo; i < hi; i++ {
			total += used(i)
		}
		over := checkUpper && total > t.UpperUnits(n)
		under := checkLower && total < t.LowerUnits(n)
		if !over && !under {
			if n.Level == 0 {
				// The touched leaf is already within bounds: nothing to do.
				return Plan{}
			}
			return Plan{Redistribute: []Region{{Node: n, LoLeaf: lo, HiLeaf: hi, Used: total}}}
		}
		if n.Level == t.height {
			return Plan{Grow: over, Shrink: under && !over, RootUsed: total}
		}
		n = t.Parent(n)
	}
}

// Count runs the work-efficient parallel counting algorithm (paper §4).
//
// dirty lists the leaves modified by the batch-merge phase. used reports the
// occupied units of a leaf and may exceed LeafCap for overflowed leaves.
// checkUpper/checkLower select which bound violations escalate (inserts use
// upper, deletes lower; both may be set).
//
// Levels are processed serially from the leaves to the root; all nodes of a
// level are counted in parallel, and every count is cached so no region is
// counted twice (Lemma 2). A node within its bounds that was reached because
// a child violated becomes a redistribution root; nested roots are filtered
// so the returned regions are maximal and disjoint.
func (t *Tree) Count(used func(leaf int) int, dirty []int, checkUpper, checkLower bool) Plan {
	if len(dirty) == 0 {
		return Plan{}
	}
	var plan Plan
	candidates := make(map[Node]Region)

	// cache[l] maps node index -> occupied units for counted nodes at level l.
	cache := make([]map[int]int, t.height+1)
	cache[0] = make(map[int]int, len(dirty))

	// Level 0: count the dirty leaves (in parallel) and find violators.
	leafUsed := make([]int, len(dirty))
	parallel.For(len(dirty), 64, func(i int) {
		leafUsed[i] = used(dirty[i])
	})
	next := make(map[int]bool)
	for i, leaf := range dirty {
		cache[0][leaf] = leafUsed[i]
		over := checkUpper && leafUsed[i] > t.UpperUnits(Node{0, leaf})
		under := checkLower && leafUsed[i] < t.LowerUnits(Node{0, leaf})
		if over || under {
			if t.height == 0 {
				return Plan{Grow: over, Shrink: under && !over, RootUsed: leafUsed[i]}
			}
			next[leaf>>1] = true
		}
	}

	// countRegion sums the units of an uncounted region by scanning its
	// leaves; used exactly once per region thanks to the caches.
	countRegion := func(n Node) int {
		lo, hi := t.LeafRange(n)
		total := 0
		for i := lo; i < hi; i++ {
			total += used(i)
		}
		return total
	}

	for level := 1; level <= t.height && len(next) > 0; level++ {
		nodes := make([]int, 0, len(next))
		for idx := range next {
			nodes = append(nodes, idx)
		}
		sort.Ints(nodes)
		next = make(map[int]bool)
		counts := make([]int, len(nodes))
		prev := cache[level-1]
		parallel.For(len(nodes), 8, func(i int) {
			idx := nodes[i]
			total := 0
			for _, c := range []int{2 * idx, 2*idx + 1} {
				child := Node{level - 1, c}
				clo, chi := t.LeafRange(child)
				if clo >= chi {
					continue // right edge: child has no leaves
				}
				if v, ok := prev[c]; ok {
					total += v
				} else {
					total += countRegion(child)
				}
			}
			counts[i] = total
		})
		cache[level] = make(map[int]int, len(nodes))
		for i, idx := range nodes {
			cache[level][idx] = counts[i]
			n := Node{level, idx}
			over := checkUpper && counts[i] > t.UpperUnits(n)
			under := checkLower && counts[i] < t.LowerUnits(n)
			switch {
			case !over && !under:
				lo, hi := t.LeafRange(n)
				candidates[n] = Region{Node: n, LoLeaf: lo, HiLeaf: hi, Used: counts[i]}
			case level == t.height:
				plan.Grow = over
				plan.Shrink = under && !over
				plan.RootUsed = counts[i]
			default:
				next[idx>>1] = true
			}
		}
	}

	if plan.Grow || plan.Shrink {
		// A rebuild supersedes every regional redistribution.
		return Plan{Grow: plan.Grow, Shrink: plan.Shrink, RootUsed: plan.RootUsed}
	}

	// Keep only maximal candidates: drop any whose ancestor is also chosen.
	for n, r := range candidates {
		covered := false
		for a := t.Parent(n); a.Level <= t.height; a = t.Parent(a) {
			if _, ok := candidates[a]; ok {
				covered = true
				break
			}
			if a.Level == t.height {
				break
			}
		}
		if !covered {
			plan.Redistribute = append(plan.Redistribute, r)
		}
	}
	sort.Slice(plan.Redistribute, func(i, j int) bool {
		return plan.Redistribute[i].LoLeaf < plan.Redistribute[j].LoLeaf
	})
	return plan
}

// Package repl replicates a durable sharded set to read-only followers by
// shipping its write-ahead log.
//
// A Primary wraps a live async durable set (shard.Sharded + its
// persist.Store). Followers replay the primary's per-shard WAL records —
// already a total order per shard — into replica sets (shard.NewReplica)
// and serve the full epoch-consistent snapshot and live read API off
// them, scaling read traffic horizontally. Two transports share one
// shipping engine: Pair wires a follower in process (catch-up, then
// tailing), Serve/Dial put a length-prefixed socket protocol in the
// middle with resume-from-position on reconnect.
//
// # Replication contract
//
//   - Per-shard exact prefix: at every instant, each follower shard's key
//     set equals the result of applying a prefix of the primary's
//     acknowledged, fsynced record sequence for that shard. The shipper
//     only reads below the primary's seal (persist.ShippableUpTo), the
//     applier enforces gap-free sequence continuity, and bootstrap states
//     are checkpoint-chain states — exact at their covering sequence (the
//     recovery path's own invariant, inherited wholesale). There is no
//     weaker mode: a follower that cannot maintain the invariant stops
//     with an error instead of approximating.
//   - Cross-shard: eventually consistent. Shards ship independently, so a
//     follower's cut across shards can sit at different prefixes, and a
//     boundary-table update can reach the follower slightly before or
//     after the move records it describes; during that window a range
//     read on the follower may miss or double-route keys near a moved
//     boundary, exactly as a primary-side reader racing the move window
//     spans shard states. When the follower is caught up and the primary
//     quiescent, follower state equals primary state, bounds included.
//   - Staleness: a follower lags the primary by (a) unsynced records the
//     group commit has not sealed, plus (b) sealed records not yet
//     shipped/applied. ReplStats reports (b) for live links; followers
//     report their own positions. Followers never serve anything the
//     primary could not have served at some recent instant.
//   - Bootstrap: a fresh or too-far-behind follower (its position deleted
//     behind a base checkpoint: persist.ErrPositionGone) receives the
//     newest verifiable checkpoint chain state — the pointer-free slab
//     format makes this a memcpy-grade transfer — stamped with the
//     sequence it covers, then resumes record shipping from there.
//     Recovery-time span-enforcement drops are journaled by the store, so
//     chain-state ⊕ records is always exactly the acknowledged history.
//
// Followers must be constructed with the primary's geometry (shard
// count, partition policy, key width, and for range partitions the same
// seed Bounds/BoundsGen); later boundary moves replicate automatically.
// One link (Pair or Dial) may drive a Follower at a time.
package repl

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cpma"
	"repro/internal/obs"
	"repro/internal/persist"
	"repro/internal/shard"
)

// Default shipping knobs: how long a caught-up shipper sleeps before
// polling the seal again, and how many keys one read batch carries.
const (
	DefaultTailInterval   = 2 * time.Millisecond
	DefaultMaxKeysPerRead = 1 << 16
)

// Options tunes a replication link. The zero value selects the defaults.
type Options struct {
	// TailInterval is the idle poll interval once a follower is caught up
	// to the primary's seal. 0 means DefaultTailInterval.
	TailInterval time.Duration
	// MaxKeysPerRead bounds the keys one shipping read collects per shard
	// per iteration. 0 means DefaultMaxKeysPerRead.
	MaxKeysPerRead int
}

func (o *Options) withDefaults() Options {
	var v Options
	if o != nil {
		v = *o
	}
	if v.TailInterval <= 0 {
		v.TailInterval = DefaultTailInterval
	}
	if v.MaxKeysPerRead <= 0 {
		v.MaxKeysPerRead = DefaultMaxKeysPerRead
	}
	return v
}

// Primary is the shipping side of replication: a live durable set and its
// store, plus counters over every link served (in-process and socket).
type Primary struct {
	set *shard.Sharded
	st  *persist.Store

	shippedRecs atomic.Uint64
	shippedKeys atomic.Uint64
	bootstraps  atomic.Uint64
	boundsShips atomic.Uint64

	// shipDur times one record shipment end to end — for in-process links
	// that includes the follower's apply, for socket links the frame write.
	// bootDur times bootstrap state transfers.
	shipDur obs.Histogram
	bootDur obs.Histogram

	mu    sync.Mutex
	links map[*cursor]struct{}
}

// NewPrimary wraps a running durable async set and its store for
// replication. The set must have been opened from st (persist.OpenSharded
// or repro.OpenPrimary wire this correctly).
func NewPrimary(set *shard.Sharded, st *persist.Store) (*Primary, error) {
	if set == nil || st == nil {
		return nil, errors.New("repl: NewPrimary needs a set and its store")
	}
	if !set.Durable() {
		return nil, errors.New("repl: the primary must be durable (replication ships its WAL)")
	}
	if set.Replica() {
		return nil, errors.New("repl: a replica cannot be a primary")
	}
	if n := len(st.Positions()); n != set.Shards() {
		return nil, fmt.Errorf("repl: store has %d shards, set has %d", n, set.Shards())
	}
	return &Primary{set: set, st: st, links: make(map[*cursor]struct{})}, nil
}

// Set returns the primary's sharded set.
func (pr *Primary) Set() *shard.Sharded { return pr.set }

// ReplStats is the primary's replication counters. LagRecords is the
// largest sealed-but-unshipped record count across live links: for
// in-process links shipping and applying are one synchronous step, so it
// is the true follower apply lag; for socket links it measures up to the
// send (the follower's own FollowerStats positions give the apply side).
type ReplStats struct {
	Links          int
	ShippedRecords uint64
	ShippedKeys    uint64
	Bootstraps     uint64
	BoundsUpdates  uint64
	LagRecords     uint64
}

// Sub returns the counters accumulated since prev. Links and LagRecords
// are instantaneous gauges, not monotonic counters, and are carried.
func (s ReplStats) Sub(prev ReplStats) ReplStats {
	return ReplStats{
		Links:          s.Links,
		ShippedRecords: s.ShippedRecords - prev.ShippedRecords,
		ShippedKeys:    s.ShippedKeys - prev.ShippedKeys,
		Bootstraps:     s.Bootstraps - prev.Bootstraps,
		BoundsUpdates:  s.BoundsUpdates - prev.BoundsUpdates,
		LagRecords:     s.LagRecords,
	}
}

// ShipLatency snapshots the primary's per-shipment latency histogram.
func (pr *Primary) ShipLatency() obs.HistSnap { return pr.shipDur.Snapshot() }

// RegisterMetrics registers the primary's replication counters and
// shipping latency histograms with r under prefix (e.g. "cpma_repl").
func (pr *Primary) RegisterMetrics(r *obs.Registry, prefix string) {
	if prefix == "" {
		prefix = "repl"
	}
	r.RegisterHistogram(prefix+"_ship_ns", "ns", "one record shipment, send through apply for in-process links", &pr.shipDur)
	r.RegisterHistogram(prefix+"_bootstrap_ns", "ns", "one bootstrap state transfer", &pr.bootDur)
	r.Stats(prefix, "primary replication counters", func() any { return pr.ReplStats() })
}

// ReplStats returns the primary's replication counters.
func (pr *Primary) ReplStats() ReplStats {
	s := ReplStats{
		ShippedRecords: pr.shippedRecs.Load(),
		ShippedKeys:    pr.shippedKeys.Load(),
		Bootstraps:     pr.bootstraps.Load(),
		BoundsUpdates:  pr.boundsShips.Load(),
	}
	seal := make([]uint64, pr.set.Shards())
	for p := range seal {
		seal[p] = pr.st.ShippableUpTo(p)
	}
	pr.mu.Lock()
	s.Links = len(pr.links)
	for cur := range pr.links {
		var lag uint64
		cur.mu.Lock()
		for p, pos := range cur.pos {
			if seal[p] > pos {
				lag += seal[p] - pos
			}
		}
		cur.mu.Unlock()
		if lag > s.LagRecords {
			s.LagRecords = lag
		}
	}
	pr.mu.Unlock()
	return s
}

func (pr *Primary) addLink(cur *cursor) {
	pr.mu.Lock()
	pr.links[cur] = struct{}{}
	pr.mu.Unlock()
}

func (pr *Primary) dropLink(cur *cursor) {
	pr.mu.Lock()
	delete(pr.links, cur)
	pr.mu.Unlock()
}

// cursor is one link's shipping position: the last record sequence sent
// per shard and the last boundary generation sent. The link goroutine
// owns it; ReplStats reads it under mu.
type cursor struct {
	mu        sync.Mutex
	pos       []uint64
	boundsGen uint64
}

func (c *cursor) get(p int) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pos[p]
}

func (c *cursor) set(p int, seq uint64) {
	c.mu.Lock()
	c.pos[p] = seq
	c.mu.Unlock()
}

// sink is where a link delivers: the in-process sink applies straight to
// the follower, the socket sink writes frames.
type sink interface {
	sendBoot(p int, tip uint64, set *cpma.CPMA) error
	sendRecs(p int, recs []persist.Rec) error
	sendBounds(gen uint64, bounds []uint64) error
}

// shipOnce runs one shipping sweep: bounds first (cheap, keeps follower
// routing close to follower contents), then every shard — bootstrap if
// the position is gone (or fresh with a chain available), else the
// sealed records past the cursor. Reports whether anything moved.
func (pr *Primary) shipOnce(cur *cursor, sk sink, maxKeys int) (bool, error) {
	progress := false
	if gen, bounds := pr.set.RouterBounds(); bounds != nil && gen > cur.boundsGen {
		if err := sk.sendBounds(gen, bounds); err != nil {
			return progress, err
		}
		cur.boundsGen = gen
		pr.boundsShips.Add(1)
		progress = true
	}
	for p := 0; p < pr.set.Shards(); p++ {
		moved, err := pr.shipShard(cur, sk, p, maxKeys)
		if err != nil {
			return progress, err
		}
		progress = progress || moved
	}
	return progress, nil
}

func (pr *Primary) shipShard(cur *cursor, sk sink, p, maxKeys int) (bool, error) {
	pos := cur.get(p)
	boot := pos == 0 && pr.st.Positions()[p].CkptSeq > 0
	var recs []persist.Rec
	if !boot {
		var err error
		recs, err = pr.st.ReadShippable(p, pos, maxKeys)
		if errors.Is(err, persist.ErrPositionGone) {
			boot = true
		} else if err != nil {
			return false, err
		}
	}
	if boot {
		set, tip, err := pr.st.BootState(p)
		if err != nil {
			return false, err
		}
		t0 := time.Now()
		if err := sk.sendBoot(p, tip, set); err != nil {
			return false, err
		}
		pr.bootDur.Since(t0)
		cur.set(p, tip)
		pr.bootstraps.Add(1)
		pr.set.Trace().Record(p, obs.EvBootstrap, 0, 0, tip, 0)
		return true, nil
	}
	if len(recs) == 0 {
		return false, nil
	}
	t0 := time.Now()
	if err := sk.sendRecs(p, recs); err != nil {
		return false, err
	}
	pr.shipDur.Since(t0)
	cur.set(p, recs[len(recs)-1].Seq)
	nk := 0
	for _, r := range recs {
		nk += len(r.Keys)
	}
	pr.shippedRecs.Add(uint64(len(recs)))
	pr.shippedKeys.Add(uint64(nk))
	pr.set.Trace().Record(p, obs.EvShip, 0, 0, uint64(len(recs)), uint64(nk))
	return true, nil
}

// Follower is the replay side: a replica sharded set plus per-shard
// replication positions. Construct with NewFollower, attach with Pair
// (in-process) or Dial (socket) — one link at a time — and read through
// Set or Snapshot.
type Follower struct {
	set     *shard.Sharded
	setOpts *cpma.Options

	mu  sync.Mutex
	pos []persist.Position

	inUse       atomic.Bool
	attaches    atomic.Uint64
	appliedRecs atomic.Uint64
	appliedKeys atomic.Uint64
	bootstraps  atomic.Uint64

	// applyDur times one applyRecs replay batch (records actually applied).
	applyDur obs.Histogram
}

// NewFollower builds a follower with the given geometry; opts carries the
// primary's Partition/KeyBits/Bounds/BoundsGen/Set (other fields are
// ignored — followers are synchronous replicas).
func NewFollower(shards int, opts *shard.Options) *Follower {
	var so *cpma.Options
	if opts != nil {
		so = opts.Set
	}
	return &Follower{
		set:     shard.NewReplica(shards, opts),
		setOpts: so,
		pos:     make([]persist.Position, maxInt(shards, 1)),
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Set returns the follower's replica set: the full live read API, with
// client mutations panicking.
func (f *Follower) Set() *shard.Sharded { return f.set }

// Snapshot captures an epoch-consistent frozen view of the follower's
// current state (shard.Sharded.Snapshot on the replica).
func (f *Follower) Snapshot() *shard.Snapshot { return f.set.Snapshot() }

// Positions returns the follower's per-shard replication positions: the
// chain sequence it last bootstrapped from and the last record applied.
func (f *Follower) Positions() []persist.Position {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]persist.Position(nil), f.pos...)
}

// FollowerStats counts a follower's replay work.
type FollowerStats struct {
	AppliedRecords uint64
	AppliedKeys    uint64
	Bootstraps     uint64
	Attaches       uint64
}

// Sub returns the counters accumulated since prev.
func (s FollowerStats) Sub(prev FollowerStats) FollowerStats {
	return FollowerStats{
		AppliedRecords: s.AppliedRecords - prev.AppliedRecords,
		AppliedKeys:    s.AppliedKeys - prev.AppliedKeys,
		Bootstraps:     s.Bootstraps - prev.Bootstraps,
		Attaches:       s.Attaches - prev.Attaches,
	}
}

// ApplyLatency snapshots the follower's replay-batch latency histogram.
func (f *Follower) ApplyLatency() obs.HistSnap { return f.applyDur.Snapshot() }

// RegisterMetrics registers the follower's replay counters and apply
// latency histogram with r under prefix (e.g. "cpma_follower").
func (f *Follower) RegisterMetrics(r *obs.Registry, prefix string) {
	if prefix == "" {
		prefix = "follower"
	}
	r.RegisterHistogram(prefix+"_apply_ns", "ns", "one replay batch applied to the replica set", &f.applyDur)
	r.Stats(prefix, "follower replay counters", func() any { return f.Stats() })
}

// Stats returns the follower's replay counters.
func (f *Follower) Stats() FollowerStats {
	return FollowerStats{
		AppliedRecords: f.appliedRecs.Load(),
		AppliedKeys:    f.appliedKeys.Load(),
		Bootstraps:     f.bootstraps.Load(),
		Attaches:       f.attaches.Load(),
	}
}

// attach claims the follower for one link.
func (f *Follower) attach() error {
	if !f.inUse.CompareAndSwap(false, true) {
		return errors.New("repl: follower already attached to a link")
	}
	f.attaches.Add(1)
	return nil
}

func (f *Follower) detach() { f.inUse.Store(false) }

// applyBoot installs a bootstrap state for shard p, covering records up
// to tip. Ownership of set transfers to the replica.
func (f *Follower) applyBoot(p int, tip uint64, set *cpma.CPMA) {
	f.set.ReplicaReset(p, set)
	f.mu.Lock()
	f.pos[p] = persist.Position{CkptSeq: tip, Seq: tip}
	f.mu.Unlock()
	f.bootstraps.Add(1)
}

// applyRecs replays records for shard p, enforcing gap-free sequence
// continuity: already-applied records are skipped, a hole is a hard error
// (the prefix invariant would silently break).
func (f *Follower) applyRecs(p int, recs []persist.Rec) error {
	t0 := time.Now()
	f.mu.Lock()
	cur := f.pos[p].Seq
	f.mu.Unlock()
	var applied, keys uint64
	for _, r := range recs {
		if r.Seq <= cur {
			continue
		}
		if r.Seq != cur+1 {
			return fmt.Errorf("repl: shard %d sequence gap: applied %d, next record %d", p, cur, r.Seq)
		}
		f.set.ReplicaApply(p, r.Remove, r.Keys)
		cur = r.Seq
		applied++
		keys += uint64(len(r.Keys))
	}
	f.mu.Lock()
	f.pos[p].Seq = cur
	f.mu.Unlock()
	if applied > 0 {
		f.appliedRecs.Add(applied)
		f.appliedKeys.Add(keys)
		f.applyDur.Since(t0)
		f.set.Trace().Record(p, obs.EvApply, 0, 0, applied, keys)
	}
	return nil
}

// applyBounds installs a replicated boundary table.
func (f *Follower) applyBounds(gen uint64, bounds []uint64) {
	f.set.ReplicaSetBounds(gen, bounds)
}

// localSink applies shipped state directly to an in-process follower.
type localSink struct{ f *Follower }

func (s localSink) sendBoot(p int, tip uint64, set *cpma.CPMA) error {
	s.f.applyBoot(p, tip, set)
	return nil
}
func (s localSink) sendRecs(p int, recs []persist.Rec) error { return s.f.applyRecs(p, recs) }
func (s localSink) sendBounds(gen uint64, bounds []uint64) error {
	s.f.applyBounds(gen, bounds)
	return nil
}

// Link is a running in-process replication link. Close stops it; a
// stopped link can be re-Paired (the follower keeps its positions, so
// the new link resumes where this one stopped — the reconnect
// primitive the differential harness kills and revives).
type Link struct {
	pr       *Primary
	f        *Follower
	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}

	errMu sync.Mutex
	err   error
}

// Pair attaches a follower to a primary in process and starts shipping:
// catch-up (bootstrap if needed) and then tailing until Close. The
// follower resumes from its current positions.
func Pair(pr *Primary, f *Follower, opts *Options) (*Link, error) {
	o := opts.withDefaults()
	if err := checkGeometry(pr.set, f.set); err != nil {
		return nil, err
	}
	if err := f.attach(); err != nil {
		return nil, err
	}
	cur := newCursor(f)
	l := &Link{pr: pr, f: f, stop: make(chan struct{}), done: make(chan struct{})}
	pr.addLink(cur)
	go l.run(cur, o)
	return l, nil
}

// newCursor seeds a link cursor from the follower's own positions, so a
// re-attached link continues exactly where the previous one stopped.
func newCursor(f *Follower) *cursor {
	positions := f.Positions()
	pos := make([]uint64, len(positions))
	for p, q := range positions {
		pos[p] = q.Seq
	}
	return &cursor{pos: pos, boundsGen: f.set.RebalanceStats().Gen}
}

func checkGeometry(p, f *shard.Sharded) error {
	if p.Shards() != f.Shards() {
		return fmt.Errorf("repl: primary has %d shards, follower %d", p.Shards(), f.Shards())
	}
	if p.Partition() != f.Partition() {
		return errors.New("repl: primary and follower partition policies differ")
	}
	if p.KeyBits() != f.KeyBits() {
		return fmt.Errorf("repl: primary KeyBits %d, follower %d", p.KeyBits(), f.KeyBits())
	}
	return nil
}

func (l *Link) run(cur *cursor, o Options) {
	defer close(l.done)
	defer l.f.detach()
	defer l.pr.dropLink(cur)
	sk := localSink{f: l.f}
	for {
		progress, err := l.pr.shipOnce(cur, sk, o.MaxKeysPerRead)
		if err != nil {
			l.setErr(err)
			return
		}
		if progress {
			select {
			case <-l.stop:
				return
			default:
			}
			continue
		}
		select {
		case <-l.stop:
			return
		case <-time.After(o.TailInterval):
		}
	}
}

func (l *Link) setErr(err error) {
	l.errMu.Lock()
	if l.err == nil {
		l.err = err
	}
	l.errMu.Unlock()
}

// Err returns the link's first hard error (nil while healthy).
func (l *Link) Err() error {
	l.errMu.Lock()
	defer l.errMu.Unlock()
	return l.err
}

// Close stops the link and waits for its shipper to exit, returning the
// link's first error. The follower stays valid (and re-attachable) with
// everything applied so far.
func (l *Link) Close() error {
	l.stopOnce.Do(func() { close(l.stop) })
	<-l.done
	return l.Err()
}

package repl

// The differential replication harness: scripted ingest, checkpoints, and
// rebalancing on a durable primary, with links killed and revived at
// every step. The harness drains the primary's shippable stream into its
// own per-shard record history (before retention can delete it) and
// checks, after every kill, that each follower shard equals the replay of
// an exact prefix of that history at the follower's reported position —
// the replication contract, checked from first principles rather than by
// comparing against the follower's own machinery.

import (
	"net"
	"slices"
	"testing"
	"time"

	"repro/internal/persist"
	"repro/internal/shard"
	"repro/internal/workload"
)

// drainHist appends all newly sealed records for shard p to hist,
// asserting gap-free continuity from seq 1. Call after Flush and before
// Checkpoint, so retention never outruns the harness's cursor.
func drainHist(t *testing.T, st *persist.Store, p int, hist []persist.Rec) []persist.Rec {
	t.Helper()
	var last uint64
	if len(hist) > 0 {
		last = hist[len(hist)-1].Seq
	}
	recs, err := st.ReadShippable(p, last, 0)
	if err != nil {
		t.Fatalf("harness drain shard %d after %d: %v", p, last, err)
	}
	for _, r := range recs {
		if r.Seq != last+1 {
			t.Fatalf("harness drain shard %d: gap after %d, got %d", p, last, r.Seq)
		}
		last = r.Seq
	}
	return append(hist, recs...)
}

// replayPrefix applies hist's records with Seq <= upto to an empty set
// and returns the resulting keys in ascending order.
func replayPrefix(hist []persist.Rec, upto uint64) []uint64 {
	m := make(map[uint64]struct{})
	for _, r := range hist {
		if r.Seq > upto {
			break
		}
		for _, k := range r.Keys {
			if r.Remove {
				delete(m, k)
			} else {
				m[k] = struct{}{}
			}
		}
	}
	keys := make([]uint64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// verifyPrefix checks every follower shard against the replay of the
// harness history at the follower's own position. Call with the
// follower's link closed (positions frozen).
func verifyPrefix(t *testing.T, f *Follower, hist [][]persist.Rec, when string) {
	t.Helper()
	for p, pos := range f.Positions() {
		if pos.Seq > uint64(len(hist[p])) {
			t.Fatalf("%s: follower shard %d at seq %d, history only holds %d", when, p, pos.Seq, len(hist[p]))
		}
		want := replayPrefix(hist[p], pos.Seq)
		got := f.Set().ShardKeys(p)
		if !slices.Equal(want, got) {
			t.Fatalf("%s: follower shard %d at seq %d: %d keys, prefix replay has %d", when, p, pos.Seq, len(got), len(want))
		}
	}
}

// waitCaughtUp polls until every follower shard reaches the target
// sequence (the primary must be quiescent above it).
func waitCaughtUp(t *testing.T, f *Follower, target []uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		ok := true
		for p, pos := range f.Positions() {
			if pos.Seq < target[p] {
				ok = false
			}
		}
		if ok {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower stuck at %v, want %v", f.Positions(), target)
		}
		time.Sleep(time.Millisecond)
	}
}

func seqTargets(st *persist.Store) []uint64 {
	positions := st.Positions()
	out := make([]uint64, len(positions))
	for p, q := range positions {
		out[p] = q.Seq
	}
	return out
}

func TestReplDifferential(t *testing.T) {
	for _, cfg := range []struct {
		name string
		opt  shard.Options
	}{
		{"hash", shard.Options{SyncEvery: 1, CheckpointEveryBatches: -1, CompactEveryDeltas: -1}},
		{"range", shard.Options{
			Partition: shard.RangePartition, KeyBits: 24,
			SyncEvery: 1, CheckpointEveryBatches: -1, CompactEveryDeltas: -1,
		}},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			const shards = 4
			opt := cfg.opt
			opt.Dir = t.TempDir()
			s, st, err := persist.OpenSharded(shards, &opt)
			if err != nil {
				t.Fatalf("OpenSharded: %v", err)
			}
			defer s.Close()
			pr, err := NewPrimary(s, st)
			if err != nil {
				t.Fatalf("NewPrimary: %v", err)
			}

			fopt := shard.Options{Partition: opt.Partition, KeyBits: opt.KeyBits}
			f1 := NewFollower(shards, &fopt)
			l1, err := Pair(pr, f1, nil)
			if err != nil {
				t.Fatalf("Pair: %v", err)
			}
			var f2 *Follower
			var l2 *Link

			r := workload.NewRNG(42)
			hist := make([][]persist.Rec, shards)
			var inserted []uint64
			f1Detached := false

			for round := 0; round < 10; round++ {
				// Ingest: uniform keys, plus (range config) skewed low-range
				// batches so RebalanceOnce has boundary moves to make.
				bits := 24
				if cfg.opt.Partition == shard.RangePartition && round%2 == 1 {
					bits = 20
				}
				keys := workload.Uniform(r, 1500, bits)
				s.InsertBatchAsync(keys, false)
				inserted = append(inserted, keys...)
				if len(inserted) > 3000 {
					dead := inserted[:1000]
					inserted = inserted[1000:]
					s.RemoveBatchAsync(dead, false)
				}
				s.Flush()
				for p := 0; p < shards; p++ {
					hist[p] = drainHist(t, st, p, hist[p])
				}

				if round%2 == 1 {
					if err := s.Checkpoint(); err != nil {
						t.Fatalf("Checkpoint: %v", err)
					}
				}
				if cfg.opt.Partition == shard.RangePartition && round%3 == 2 {
					s.RebalanceOnce()
					s.Flush()
					for p := 0; p < shards; p++ {
						hist[p] = drainHist(t, st, p, hist[p])
					}
				}

				// Mid-test follower churn: f2 joins late (bootstraps from the
				// checkpoint chain), f1 goes dark across base checkpoints and
				// must re-bootstrap on return (retention deleted its position).
				switch round {
				case 3:
					f2 = NewFollower(shards, &fopt)
					if l2, err = Pair(pr, f2, nil); err != nil {
						t.Fatalf("Pair f2: %v", err)
					}
				case 4:
					if err := l1.Close(); err != nil {
						t.Fatalf("l1.Close: %v", err)
					}
					verifyPrefix(t, f1, hist, "f1 going dark")
					f1Detached = true
				case 7:
					if l1, err = Pair(pr, f1, nil); err != nil {
						t.Fatalf("re-Pair f1: %v", err)
					}
					f1Detached = false
				}

				// The kill/reconnect loop proper: every round, stop the live
				// links, check the prefix invariant cold, revive.
				if !f1Detached {
					if err := l1.Close(); err != nil {
						t.Fatalf("round %d l1.Close: %v", round, err)
					}
					verifyPrefix(t, f1, hist, "f1 kill")
					if l1, err = Pair(pr, f1, nil); err != nil {
						t.Fatalf("round %d re-Pair f1: %v", round, err)
					}
				}
				if l2 != nil {
					if err := l2.Close(); err != nil {
						t.Fatalf("round %d l2.Close: %v", round, err)
					}
					verifyPrefix(t, f2, hist, "f2 kill")
					if l2, err = Pair(pr, f2, nil); err != nil {
						t.Fatalf("round %d re-Pair f2: %v", round, err)
					}
				}
			}

			// Final catch-up: quiescent primary, both followers converge to
			// the full history and to the primary's own per-shard state.
			s.Flush()
			for p := 0; p < shards; p++ {
				hist[p] = drainHist(t, st, p, hist[p])
			}
			target := seqTargets(st)
			for _, fl := range []*Follower{f1, f2} {
				waitCaughtUp(t, fl, target)
			}
			if err := l1.Close(); err != nil {
				t.Fatalf("final l1.Close: %v", err)
			}
			if err := l2.Close(); err != nil {
				t.Fatalf("final l2.Close: %v", err)
			}
			for _, fl := range []*Follower{f1, f2} {
				verifyPrefix(t, fl, hist, "final")
				for p := 0; p < shards; p++ {
					if !slices.Equal(s.ShardKeys(p), fl.Set().ShardKeys(p)) {
						t.Fatalf("final: follower shard %d differs from primary", p)
					}
				}
				if !slices.Equal(s.Keys(), fl.Set().Keys()) {
					t.Fatal("final: aggregate keys differ")
				}
			}
			if cfg.opt.Partition == shard.RangePartition {
				pg, pb := s.RouterBounds()
				for _, fl := range []*Follower{f1, f2} {
					fg, fb := fl.Set().RouterBounds()
					if fg != pg || !slices.Equal(fb, pb) {
						t.Fatalf("final bounds differ: follower gen %d %v, primary gen %d %v", fg, fb, pg, pb)
					}
				}
			}
			if f1.Stats().Bootstraps == 0 {
				t.Fatal("f1 never re-bootstrapped after its position was retired")
			}
			if f2.Stats().Bootstraps == 0 {
				t.Fatal("f2 joined after checkpoints but never bootstrapped")
			}
			if pr.ReplStats().Links != 0 {
				t.Fatalf("links leaked: %d", pr.ReplStats().Links)
			}
		})
	}
}

// TestReplRaceHammer runs ingest, checkpoints, link kill/revive, and
// follower snapshot readers concurrently — the -race target. Correctness
// gate: after quiescing and catching up, follower state equals primary
// state exactly.
func TestReplRaceHammer(t *testing.T) {
	const shards = 2
	opt := shard.Options{Dir: t.TempDir(), SyncEvery: 1, CheckpointEveryBatches: -1}
	s, st, err := persist.OpenSharded(shards, &opt)
	if err != nil {
		t.Fatalf("OpenSharded: %v", err)
	}
	defer s.Close()
	pr, err := NewPrimary(s, st)
	if err != nil {
		t.Fatalf("NewPrimary: %v", err)
	}
	f := NewFollower(shards, nil)
	l, err := Pair(pr, f, nil)
	if err != nil {
		t.Fatalf("Pair: %v", err)
	}

	stop := make(chan struct{})
	done := make(chan struct{}, 4)

	go func() { // ingest
		defer func() { done <- struct{}{} }()
		r := workload.NewRNG(7)
		for i := 0; i < 150; i++ {
			keys := workload.Uniform(r, 300, 22)
			s.InsertBatchAsync(keys, false)
			if i%3 == 2 {
				s.RemoveBatchAsync(keys[:100], false)
			}
			if i%10 == 9 {
				s.Flush()
			}
		}
	}()
	go func() { // checkpoints
		defer func() { done <- struct{}{} }()
		for i := 0; i < 10; i++ {
			if err := s.Checkpoint(); err != nil {
				t.Errorf("Checkpoint: %v", err)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()
	go func() { // follower snapshot + live readers
		defer func() { done <- struct{}{} }()
		r := workload.NewRNG(9)
		for {
			select {
			case <-stop:
				return
			default:
			}
			sn := f.Snapshot()
			n := sn.Len()
			if keys := sn.Keys(); len(keys) != n {
				t.Errorf("snapshot Len %d vs %d keys", n, len(keys))
				return
			}
			f.Set().Has(r.Uint64() & ((1 << 22) - 1))
		}
	}()
	go func() { // link killer
		defer func() { done <- struct{}{} }()
		for {
			select {
			case <-stop:
				return
			default:
			}
			time.Sleep(5 * time.Millisecond)
			if err := l.Close(); err != nil {
				t.Errorf("Close: %v", err)
				return
			}
			var err error
			if l, err = Pair(pr, f, nil); err != nil {
				t.Errorf("re-Pair: %v", err)
				return
			}
		}
	}()

	<-done // ingest
	<-done // checkpoints
	close(stop)
	<-done
	<-done

	s.Flush()
	waitCaughtUp(t, f, seqTargets(st))
	if err := l.Close(); err != nil {
		t.Fatalf("final Close: %v", err)
	}
	for p := 0; p < shards; p++ {
		if !slices.Equal(s.ShardKeys(p), f.Set().ShardKeys(p)) {
			t.Fatalf("follower shard %d differs from primary after quiesce", p)
		}
	}
}

// TestSocketReplication drives the wire transport end to end on a range
// partition: bootstrap over the socket from a checkpoint chain, bounds
// frames from a live rebalance, a kill mid-stream, and a reconnect that
// resumes from the follower's positions.
func TestSocketReplication(t *testing.T) {
	const shards = 4
	opt := shard.Options{
		Dir:       t.TempDir(),
		Partition: shard.RangePartition, KeyBits: 24,
		SyncEvery: 1, CheckpointEveryBatches: -1, CompactEveryDeltas: -1,
	}
	s, st, err := persist.OpenSharded(shards, &opt)
	if err != nil {
		t.Fatalf("OpenSharded: %v", err)
	}
	defer s.Close()
	pr, err := NewPrimary(s, st)
	if err != nil {
		t.Fatalf("NewPrimary: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer ln.Close()
	go Serve(ln, pr, nil)
	addr := ln.Addr().String()

	// History before the follower exists, sealed into a base checkpoint:
	// the first connection must bootstrap, not replay from scratch.
	r := workload.NewRNG(11)
	s.InsertBatchAsync(workload.Uniform(r, 4000, 20), false) // skewed low
	if err := s.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}

	fopt := shard.Options{Partition: shard.RangePartition, KeyBits: 24}
	f := NewFollower(shards, &fopt)
	c, err := Dial(addr, f)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	waitCaughtUp(t, f, seqTargets(st))
	if f.Stats().Bootstraps == 0 {
		t.Fatal("fresh follower with a checkpoint chain available did not bootstrap")
	}

	// Kill mid-stream, mutate (including a boundary move), reconnect:
	// resume-from-position, no second bootstrap.
	if err := c.Close(); err != nil {
		t.Fatalf("Conn.Close: %v", err)
	}
	s.InsertBatchAsync(workload.Uniform(r, 4000, 24), false)
	s.RemoveBatchAsync(workload.Uniform(r, 500, 20), false)
	s.Flush()
	s.RebalanceOnce()
	s.Flush()
	bootsBefore := f.Stats().Bootstraps

	c, err = Dial(addr, f)
	if err != nil {
		t.Fatalf("re-Dial: %v", err)
	}
	defer c.Close()
	waitCaughtUp(t, f, seqTargets(st))
	deadline := time.Now().Add(5 * time.Second)
	for {
		fg, _ := f.Set().RouterBounds()
		pg, _ := s.RouterBounds()
		if fg == pg {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("bounds gen stuck: follower %d, primary %d", fg, pg)
		}
		time.Sleep(time.Millisecond)
	}
	if f.Stats().Bootstraps != bootsBefore {
		t.Fatal("reconnect re-bootstrapped instead of resuming from position")
	}
	for p := 0; p < shards; p++ {
		if !slices.Equal(s.ShardKeys(p), f.Set().ShardKeys(p)) {
			t.Fatalf("follower shard %d differs from primary over the socket", p)
		}
	}
	pg, pb := s.RouterBounds()
	fg, fb := f.Set().RouterBounds()
	if fg != pg || !slices.Equal(fb, pb) {
		t.Fatalf("bounds differ over socket: follower gen %d, primary gen %d", fg, pg)
	}
}

// TestLinkExclusivityAndGeometry: one link per follower, and geometry
// mismatches are rejected at attach time (Pair) or by the primary's hello
// check (Dial).
func TestLinkExclusivityAndGeometry(t *testing.T) {
	opt := shard.Options{Dir: t.TempDir(), SyncEvery: 1}
	s, st, err := persist.OpenSharded(2, &opt)
	if err != nil {
		t.Fatalf("OpenSharded: %v", err)
	}
	defer s.Close()
	pr, err := NewPrimary(s, st)
	if err != nil {
		t.Fatalf("NewPrimary: %v", err)
	}

	f := NewFollower(2, nil)
	l, err := Pair(pr, f, nil)
	if err != nil {
		t.Fatalf("Pair: %v", err)
	}
	if _, err := Pair(pr, f, nil); err == nil {
		t.Fatal("second Pair on an attached follower succeeded")
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := Pair(pr, NewFollower(3, nil), nil); err == nil {
		t.Fatal("Pair accepted a shard-count mismatch")
	}
	if _, err := Pair(pr, NewFollower(2, &shard.Options{Partition: shard.RangePartition, KeyBits: 24}), nil); err == nil {
		t.Fatal("Pair accepted a partition-policy mismatch")
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer ln.Close()
	go Serve(ln, pr, nil)
	bad := NewFollower(3, nil)
	c, err := Dial(ln.Addr().String(), bad)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	select {
	case <-c.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("primary kept a geometry-mismatched connection open")
	}
	if c.Err() == nil {
		t.Fatal("mismatched connection ended without an error")
	}
	c.Close()
	if bad.Set().Len() != 0 {
		t.Fatal("rejected follower received state")
	}
}

package repl

import (
	"reflect"
	"testing"
)

// TestReplStatsSubFieldCompleteness extends the shard package's
// Sub-completeness harness to the replication stats structs (they live
// here because repl imports shard, not the reverse): every field must
// flow through Sub, either as a delta or as a documented gauge carry.
func TestReplStatsSubFieldCompleteness(t *testing.T) {
	check := func(name string, st, prev, got reflect.Value, carried map[string]bool) {
		t.Helper()
		typ := st.Type()
		for i := 0; i < typ.NumField(); i++ {
			f := typ.Field(i)
			var want, g uint64
			switch f.Type.Kind() {
			case reflect.Uint64:
				want = st.Field(i).Uint() - prev.Field(i).Uint()
				if carried[f.Name] {
					want = st.Field(i).Uint()
				}
				g = got.Field(i).Uint()
			case reflect.Int:
				w := st.Field(i).Int() - prev.Field(i).Int()
				if carried[f.Name] {
					w = st.Field(i).Int()
				}
				want, g = uint64(w), uint64(got.Field(i).Int())
			default:
				t.Fatalf("%s.%s is %v; extend the reflection harness", name, f.Name, f.Type)
			}
			if g != want {
				t.Fatalf("%s.Sub dropped field %s: got %d, want %d", name, f.Name, g, want)
			}
		}
	}
	fill := func(v reflect.Value, mul uint64) {
		for i := 0; i < v.NumField(); i++ {
			switch v.Field(i).Kind() {
			case reflect.Uint64:
				v.Field(i).SetUint(uint64(i+1) * mul)
			case reflect.Int:
				v.Field(i).SetInt(int64(uint64(i+1) * mul))
			}
		}
	}

	var rs, rprev ReplStats
	fill(reflect.ValueOf(&rs).Elem(), 100)
	fill(reflect.ValueOf(&rprev).Elem(), 1)
	check("ReplStats", reflect.ValueOf(rs), reflect.ValueOf(rprev),
		reflect.ValueOf(rs.Sub(rprev)), map[string]bool{"Links": true, "LagRecords": true})

	var fs, fprev FollowerStats
	fill(reflect.ValueOf(&fs).Elem(), 100)
	fill(reflect.ValueOf(&fprev).Elem(), 1)
	check("FollowerStats", reflect.ValueOf(fs), reflect.ValueOf(fprev),
		reflect.ValueOf(fs.Sub(fprev)), nil)
}

package repl

import (
	"io"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/persist"
	"repro/internal/shard"
	"repro/internal/workload"
)

// TestStatsScrapeRace is the observability race hammer: a durable,
// rebalancing, hot-key async set with a live replication link, scraped
// continuously — Prometheus text, JSON statz, trace dumps, pipeline
// latency snapshots, and every raw *Stats accessor — while clients
// ingest, the rebalancer moves boundaries, and checkpoints run. Any
// non-atomic multi-field read in a stats path surfaces here under -race
// (the CI race job runs it). It lives in repl rather than shard because
// only this package can see every layer's registry at once.
func TestStatsScrapeRace(t *testing.T) {
	opt := shard.Options{
		Partition: shard.RangePartition,
		KeyBits:   20,
		HotKeys:   true,
		SyncEvery: 8,
		// Manual checkpoints only: the hammer drives its own cadence.
		CheckpointEveryBatches: -1,
		CompactEveryDeltas:     -1,
		Dir:                    t.TempDir(),
	}
	const shards = 4
	s, st, err := persist.OpenSharded(shards, &opt)
	if err != nil {
		t.Fatalf("OpenSharded: %v", err)
	}
	defer s.Close()
	pr, err := NewPrimary(s, st)
	if err != nil {
		t.Fatalf("NewPrimary: %v", err)
	}
	f := NewFollower(shards, &shard.Options{Partition: opt.Partition, KeyBits: opt.KeyBits})
	l, err := Pair(pr, f, nil)
	if err != nil {
		t.Fatalf("Pair: %v", err)
	}
	defer l.Close()

	reg := obs.NewRegistry("hammer")
	s.RegisterMetrics(reg, "cpma")
	pr.RegisterMetrics(reg, "cpma_repl")
	f.RegisterMetrics(reg, "cpma_follower")
	srv := obs.NewServer(reg)
	srv.AddTrace("primary", s.Trace())

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Ingest: skewed clients (half the traffic on a handful of keys, so
	// the absorber promotes) plus disjoint uniform churn.
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := workload.NewRNG(seed)
			hot := []uint64{77, 177, 1 << 18, 3 << 17}
			for {
				select {
				case <-stop:
					return
				default:
				}
				keys := workload.Uniform(r, 400, 20)
				for i := 0; i < 200; i++ {
					keys = append(keys, hot[i%len(hot)])
				}
				s.InsertBatchAsync(keys, false)
			}
		}(uint64(c + 1))
	}

	// Structural churn: boundary moves and checkpoints.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			s.RebalanceOnce()
			if i%3 == 0 {
				if err := s.Checkpoint(); err != nil {
					t.Errorf("Checkpoint: %v", err)
					return
				}
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// Scrapers: every exported read path, concurrently and repeatedly.
	scrape := []func(){
		func() { reg.WriteProm(io.Discard) },
		func() { reg.WriteStatz(io.Discard) },
		func() { s.Trace().Events() },
		func() { s.PipelineLatencies() },
		func() { st.Latencies() },
		func() { _ = s.IngestStats() },
		func() { _ = s.SnapshotStats() },
		func() { _ = s.RebalanceStats() },
		func() { _ = s.PersistStats() },
		func() { _ = pr.ReplStats() },
		func() { _ = f.Stats() },
		func() { _ = pr.ShipLatency() },
		func() { _ = f.ApplyLatency() },
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				scrape[(i+w)%len(scrape)]()
			}
		}(w)
	}

	time.Sleep(600 * time.Millisecond)
	close(stop)
	wg.Wait()
	s.Flush()

	// The scrape surface must also be coherent after the dust settles:
	// drains happened, so the drain histogram is populated and statz
	// renders it.
	lat := s.PipelineLatencies()
	if lat.Drain.Count == 0 {
		t.Fatalf("drain histogram empty after ingest")
	}
	if lat.Coalesce.Count == 0 {
		t.Fatalf("coalesce histogram empty after ingest")
	}
	if st.Latencies().Fsync.Count == 0 {
		t.Fatalf("fsync histogram empty on a durable set")
	}
}

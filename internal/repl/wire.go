package repl

// The socket transport: the same shipping engine as Pair, with a
// length-prefixed binary protocol in the middle. A follower Dials,
// announces its geometry and per-shard positions in a hello frame, and
// the primary streams boot/recs/bounds frames from there — so reconnect
// is resume-from-position by construction: whatever the follower durably
// holds in memory is where the next hello starts. The primary sends ping
// frames while idle so a dead peer is detected even with nothing to ship.
//
// Frames: u32 payload length, u8 type, payload. All integers little
// endian. Boot payloads carry the shard's slab via cpma.WriteTo/ReadFrom
// — the pointer-free layout shipping as flat bytes.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/cpma"
	"repro/internal/persist"
	"repro/internal/shard"
)

const (
	wireMagic    = "CPMARPL1"
	maxFrameLen  = 1 << 30
	pingAfterMax = 250 * time.Millisecond

	frHello  = 1
	frBoot   = 2
	frRecs   = 3
	frBounds = 4
	frPing   = 5
)

func writeFrame(w *bufio.Writer, typ byte, payload []byte) error {
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	return w.Flush()
}

func readFrame(r *bufio.Reader) (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n > maxFrameLen {
		return 0, nil, fmt.Errorf("repl: frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[4], payload, nil
}

// Serve accepts follower connections on ln and ships to each until its
// connection breaks or ln closes. Blocks; run it in a goroutine and close
// the listener to stop accepting (live connections drain on their own
// errors — closing a follower's Conn is what ends its stream).
func Serve(ln net.Listener, pr *Primary, opts *Options) error {
	o := opts.withDefaults()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go pr.serveConn(conn, o)
	}
}

func (pr *Primary) serveConn(conn net.Conn, o Options) {
	defer conn.Close()
	r := bufio.NewReader(conn)
	typ, payload, err := readFrame(r)
	if err != nil || typ != frHello {
		return
	}
	cur, err := pr.parseHello(payload)
	if err != nil {
		return
	}
	pr.addLink(cur)
	defer pr.dropLink(cur)
	sk := &connSink{w: bufio.NewWriter(conn)}
	idle := time.Duration(0)
	for {
		progress, err := pr.shipOnce(cur, sk, o.MaxKeysPerRead)
		if err != nil {
			return
		}
		if progress {
			idle = 0
			continue
		}
		time.Sleep(o.TailInterval)
		idle += o.TailInterval
		if idle >= pingAfterMax {
			// Probe the connection: a follower that went away while we were
			// caught up would otherwise pin this goroutine forever.
			if err := writeFrame(sk.w, frPing, nil); err != nil {
				return
			}
			idle = 0
		}
	}
}

// parseHello validates a follower hello against the primary's geometry
// and returns a cursor seeded from the announced positions.
func (pr *Primary) parseHello(payload []byte) (*cursor, error) {
	shards := pr.set.Shards()
	want := len(wireMagic) + 4 + 1 + 1 + 8 + shards*16
	if len(payload) != want || string(payload[:8]) != wireMagic {
		return nil, errors.New("repl: bad hello")
	}
	b := payload[8:]
	if int(binary.LittleEndian.Uint32(b)) != shards {
		return nil, errors.New("repl: shard count mismatch")
	}
	if shard.Partition(b[4]) != pr.set.Partition() || int(b[5]) != pr.set.KeyBits() {
		return nil, errors.New("repl: geometry mismatch")
	}
	cur := &cursor{pos: make([]uint64, shards), boundsGen: binary.LittleEndian.Uint64(b[6:])}
	b = b[14:]
	for p := 0; p < shards; p++ {
		// The ckpt half of each position travels for observability; the
		// cursor only needs the applied sequence.
		cur.pos[p] = binary.LittleEndian.Uint64(b[p*16+8:])
	}
	return cur, nil
}

// connSink encodes shipped state as frames.
type connSink struct{ w *bufio.Writer }

func (s *connSink) sendBoot(p int, tip uint64, set *cpma.CPMA) error {
	var buf bytes.Buffer
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(p))
	binary.LittleEndian.PutUint64(hdr[4:], tip)
	buf.Write(hdr[:])
	if _, err := set.WriteTo(&buf); err != nil {
		return err
	}
	return writeFrame(s.w, frBoot, buf.Bytes())
}

func (s *connSink) sendRecs(p int, recs []persist.Rec) error {
	size := 8
	for _, r := range recs {
		size += 13 + 8*len(r.Keys)
	}
	buf := make([]byte, 8, size)
	binary.LittleEndian.PutUint32(buf[:4], uint32(p))
	binary.LittleEndian.PutUint32(buf[4:8], uint32(len(recs)))
	for _, r := range recs {
		var rh [13]byte
		binary.LittleEndian.PutUint64(rh[:8], r.Seq)
		if r.Remove {
			rh[8] = 1
		}
		binary.LittleEndian.PutUint32(rh[9:], uint32(len(r.Keys)))
		buf = append(buf, rh[:]...)
		for _, k := range r.Keys {
			buf = binary.LittleEndian.AppendUint64(buf, k)
		}
	}
	return writeFrame(s.w, frRecs, buf)
}

func (s *connSink) sendBounds(gen uint64, bounds []uint64) error {
	buf := make([]byte, 12, 12+8*len(bounds))
	binary.LittleEndian.PutUint64(buf[:8], gen)
	binary.LittleEndian.PutUint32(buf[8:], uint32(len(bounds)))
	for _, b := range bounds {
		buf = binary.LittleEndian.AppendUint64(buf, b)
	}
	return writeFrame(s.w, frBounds, buf)
}

// Conn is a follower's live socket link. Close tears it down; the
// follower keeps its state and positions, and a new Dial resumes from
// them.
type Conn struct {
	f    *Follower
	c    net.Conn
	done chan struct{}

	errMu sync.Mutex
	err   error
}

// Dial connects a follower to a serving primary at addr and starts the
// receive loop: hello with current positions, then apply frames until
// Close (or a connection error — check Err after Done closes).
func Dial(addr string, f *Follower) (*Conn, error) {
	if err := f.attach(); err != nil {
		return nil, err
	}
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		f.detach()
		return nil, err
	}
	w := bufio.NewWriter(nc)
	if err := writeFrame(w, frHello, helloPayload(f)); err != nil {
		nc.Close()
		f.detach()
		return nil, err
	}
	c := &Conn{f: f, c: nc, done: make(chan struct{})}
	go c.recv()
	return c, nil
}

func helloPayload(f *Follower) []byte {
	set := f.set
	positions := f.Positions()
	buf := make([]byte, 0, len(wireMagic)+14+16*len(positions))
	buf = append(buf, wireMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(set.Shards()))
	buf = append(buf, byte(set.Partition()), byte(set.KeyBits()))
	buf = binary.LittleEndian.AppendUint64(buf, set.RebalanceStats().Gen)
	for _, p := range positions {
		buf = binary.LittleEndian.AppendUint64(buf, p.CkptSeq)
		buf = binary.LittleEndian.AppendUint64(buf, p.Seq)
	}
	return buf
}

func (c *Conn) recv() {
	defer close(c.done)
	r := bufio.NewReader(c.c)
	for {
		typ, payload, err := readFrame(r)
		if err != nil {
			c.setErr(err)
			return
		}
		switch typ {
		case frPing:
		case frBoot:
			if err := c.applyBootFrame(payload); err != nil {
				c.setErr(err)
				return
			}
		case frRecs:
			if err := c.applyRecsFrame(payload); err != nil {
				c.setErr(err)
				return
			}
		case frBounds:
			if err := c.applyBoundsFrame(payload); err != nil {
				c.setErr(err)
				return
			}
		default:
			c.setErr(fmt.Errorf("repl: unknown frame type %d", typ))
			return
		}
	}
}

func (c *Conn) applyBootFrame(payload []byte) error {
	if len(payload) < 12 {
		return errors.New("repl: short boot frame")
	}
	p := int(binary.LittleEndian.Uint32(payload[:4]))
	tip := binary.LittleEndian.Uint64(payload[4:])
	if p < 0 || p >= c.f.set.Shards() {
		return fmt.Errorf("repl: boot frame for shard %d", p)
	}
	set, err := cpma.ReadFrom(bytes.NewReader(payload[12:]), c.f.setOpts)
	if err != nil {
		return err
	}
	c.f.applyBoot(p, tip, set)
	return nil
}

func (c *Conn) applyRecsFrame(payload []byte) error {
	if len(payload) < 8 {
		return errors.New("repl: short recs frame")
	}
	p := int(binary.LittleEndian.Uint32(payload[:4]))
	count := int(binary.LittleEndian.Uint32(payload[4:8]))
	if p < 0 || p >= c.f.set.Shards() {
		return fmt.Errorf("repl: recs frame for shard %d", p)
	}
	b := payload[8:]
	recs := make([]persist.Rec, 0, count)
	for i := 0; i < count; i++ {
		if len(b) < 13 {
			return errors.New("repl: truncated record")
		}
		seq := binary.LittleEndian.Uint64(b[:8])
		remove := b[8] == 1
		n := int(binary.LittleEndian.Uint32(b[9:13]))
		b = b[13:]
		if n < 0 || len(b) < 8*n {
			return errors.New("repl: truncated record keys")
		}
		keys := make([]uint64, n)
		for j := range keys {
			keys[j] = binary.LittleEndian.Uint64(b[8*j:])
		}
		b = b[8*n:]
		recs = append(recs, persist.Rec{Seq: seq, Remove: remove, Keys: keys})
	}
	if len(b) != 0 {
		return errors.New("repl: trailing bytes in recs frame")
	}
	return c.f.applyRecs(p, recs)
}

func (c *Conn) applyBoundsFrame(payload []byte) error {
	if len(payload) < 12 {
		return errors.New("repl: short bounds frame")
	}
	gen := binary.LittleEndian.Uint64(payload[:8])
	n := int(binary.LittleEndian.Uint32(payload[8:12]))
	if len(payload) != 12+8*n {
		return errors.New("repl: bad bounds frame length")
	}
	bounds := make([]uint64, n)
	for i := range bounds {
		bounds[i] = binary.LittleEndian.Uint64(payload[12+8*i:])
	}
	c.f.applyBounds(gen, bounds)
	return nil
}

func (c *Conn) setErr(err error) {
	c.errMu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.errMu.Unlock()
}

// Err returns the connection's first error. net.ErrClosed after a Close
// is the normal shutdown path.
func (c *Conn) Err() error {
	c.errMu.Lock()
	defer c.errMu.Unlock()
	return c.err
}

// Done is closed when the receive loop has exited.
func (c *Conn) Done() <-chan struct{} { return c.done }

// Close tears the connection down and waits for the receive loop; the
// follower detaches with everything applied so far and can Dial again to
// resume.
func (c *Conn) Close() error {
	err := c.c.Close()
	<-c.done
	c.f.detach()
	return err
}

package shard

import (
	"math/bits"
	"sort"

	"repro/internal/parallel"
)

// scatterGrain is the block size of the parallel counting scatter.
const scatterGrain = 8192

// spanWidth returns the key span each shard covers under RangePartition:
// the key space [0, 2^keyBits) divided into shards contiguous pieces.
func spanWidth(keyBits, shards int) uint64 {
	if keyBits >= 64 {
		return ^uint64(0)/uint64(shards) + 1
	}
	total := uint64(1) << uint(keyBits)
	w := total / uint64(shards)
	if total%uint64(shards) != 0 {
		w++
	}
	if w == 0 {
		w = 1
	}
	return w
}

// mix64 is the splitmix64 finalizer, the same bijective scramble the
// workload generator uses to spread keys uniformly.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// router routes keys to shards: the partition policy plus the scalar
// geometry it needs. It is a small value type so snapshots can carry a
// copy and route without retaining the live Sharded (and the memory
// behind it) beyond the frozen handles they serve.
type router struct {
	part   Partition
	width  uint64 // span per shard under RangePartition
	shards int
}

// shardOf routes a key to its owning shard.
func (rt router) shardOf(key uint64) int {
	if rt.shards == 1 {
		return 0
	}
	if rt.part == RangePartition {
		p := int(key / rt.width)
		if p >= rt.shards {
			p = rt.shards - 1
		}
		return p
	}
	// Multiply-shift maps the hash onto [0, shards) without a modulo.
	hi, _ := bits.Mul64(mix64(key), uint64(rt.shards))
	return int(hi)
}

// shardSpan returns the inclusive shard interval overlapping [start, end):
// the exact span under RangePartition, every shard under HashPartition.
func (rt router) shardSpan(start, end uint64) (lo, hi int) {
	if rt.part == RangePartition {
		return rt.shardOf(start), rt.shardOf(end - 1)
	}
	return 0, rt.shards - 1
}

func (s *Sharded) shardOf(key uint64) int { return s.rt.shardOf(key) }

func (s *Sharded) shardSpan(start, end uint64) (lo, hi int) {
	return s.rt.shardSpan(start, end)
}

// split partitions a batch into per-shard sub-batches, preserving input
// order within each sub-batch (so sorted inputs yield sorted sub-batches).
// Sorted range-partitioned batches split into subslices of the input with
// no copying; everything else goes through a blocked two-pass parallel
// counting scatter. aliased reports whether the sub-batches share memory
// with keys — the ownership fact asyncSplit's copy decision depends on,
// returned here so it cannot drift from the implementation.
func (s *Sharded) split(keys []uint64, sorted bool) (subs [][]uint64, aliased bool) {
	P := len(s.cells)
	if P == 1 {
		return [][]uint64{keys}, true
	}
	if s.opt.Partition == RangePartition && sorted {
		subs = make([][]uint64, P)
		lo := 0
		for p := 0; p < P; p++ {
			hi := len(keys)
			if p+1 < P {
				bound := uint64(p+1) * s.rt.width // first key owned by shard p+1
				hi = lo + sort.Search(len(keys)-lo, func(i int) bool { return keys[lo+i] >= bound })
			}
			subs[p] = keys[lo:hi]
			lo = hi
		}
		return subs, true
	}
	return s.scatter(keys), false
}

// asyncSplit partitions a batch into per-shard sub-batches that are sorted
// and safe for the ingest pipeline to hold: a fire-and-forget enqueue
// outlives the call, so its sub-batches must never alias the caller's
// slice (which the caller is free to reuse the moment the enqueue
// returns). A ticketed enqueue (wait) blocks until the writers have
// consumed the keys, so aliasing is safe and the defensive copy is
// skipped. Unsorted input is sorted up front — the writers' coalescing
// merge needs sorted runs — which also makes every split path below
// order-preserving.
func (s *Sharded) asyncSplit(keys []uint64, sorted, wait bool) [][]uint64 {
	if len(keys) == 0 {
		return nil
	}
	owned := false
	if !sorted {
		keys = parallel.SortedCopy(keys)
		owned = true
	}
	subs, aliased := s.split(keys, true)
	// Aliased sub-batches need copies unless the sort above produced a
	// private copy or the caller waits for the apply.
	if aliased && !owned && !wait {
		for p, sub := range subs {
			if len(sub) > 0 {
				subs[p] = append(make([]uint64, 0, len(sub)), sub...)
			}
		}
	}
	return subs
}

// scatter buckets keys by shard with a two-pass counting scatter: blocks
// count in parallel, a shard-major prefix sum assigns every block a private
// window in each bucket, and blocks then fill their windows in parallel
// without synchronization. Input order is preserved within each bucket.
func (s *Sharded) scatter(keys []uint64) [][]uint64 {
	P := len(s.cells)
	n := len(keys)
	nb := (n + scatterGrain - 1) / scatterGrain
	ids := make([]int32, n)
	counts := make([]int, nb*P)
	parallel.For(nb, 1, func(b int) {
		lo, hi := b*scatterGrain, (b+1)*scatterGrain
		if hi > n {
			hi = n
		}
		row := counts[b*P : (b+1)*P]
		for i := lo; i < hi; i++ {
			id := int32(s.shardOf(keys[i]))
			ids[i] = id
			row[id]++
		}
	})
	offsets := make([]int, nb*P)
	totals := make([]int, P)
	for p := 0; p < P; p++ {
		run := 0
		for b := 0; b < nb; b++ {
			offsets[b*P+p] = run
			run += counts[b*P+p]
		}
		totals[p] = run
	}
	subs := make([][]uint64, P)
	for p := range subs {
		if totals[p] > 0 {
			subs[p] = make([]uint64, totals[p])
		}
	}
	parallel.For(nb, 1, func(b int) {
		lo, hi := b*scatterGrain, (b+1)*scatterGrain
		if hi > n {
			hi = n
		}
		pos := make([]int, P)
		copy(pos, offsets[b*P:(b+1)*P])
		for i := lo; i < hi; i++ {
			id := ids[i]
			subs[id][pos[id]] = keys[i]
			pos[id]++
		}
	})
	return subs
}

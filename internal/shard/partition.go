package shard

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/parallel"
)

// scatterGrain is the block size of the parallel counting scatter.
const scatterGrain = 8192

// spanWidth returns the key span each shard covers under the default
// (equal-width) RangePartition table: the key space [0, 2^keyBits) divided
// into shards contiguous pieces.
func spanWidth(keyBits, shards int) uint64 {
	if keyBits >= 64 {
		return ^uint64(0)/uint64(shards) + 1
	}
	total := uint64(1) << uint(keyBits)
	w := total / uint64(shards)
	if total%uint64(shards) != 0 {
		w++
	}
	if w == 0 {
		w = 1
	}
	return w
}

// DefaultBounds returns the equal-width interior boundary table a fresh
// range-partitioned set starts with (nil for a single shard): the table
// Options.Bounds defaults to, exported so the persist layer can reason
// about spans of stores that predate (or never performed) a rebalance.
func DefaultBounds(keyBits, shards int) []uint64 {
	if keyBits <= 0 || keyBits > 64 {
		keyBits = 64
	}
	return defaultBounds(keyBits, shards)
}

// defaultBounds builds the equal-width interior boundary table for
// RangePartition: shards-1 ascending keys, shard p owning
// [bounds[p-1], bounds[p]) with implicit 0 below and infinity above. With
// small key spaces (spanWidth rounds up) trailing shards legitimately own
// empty spans — their boundaries saturate at the top of the key space.
func defaultBounds(keyBits, shards int) []uint64 {
	if shards <= 1 {
		return nil
	}
	w := spanWidth(keyBits, shards)
	bounds := make([]uint64, shards-1)
	for i := range bounds {
		hi, lo := bits.Mul64(uint64(i+1), w)
		if hi != 0 {
			lo = ^uint64(0)
		}
		bounds[i] = lo
	}
	return bounds
}

// checkBounds validates a caller-supplied interior boundary table.
func checkBounds(bounds []uint64, shards int) {
	if len(bounds) != shards-1 {
		panic(fmt.Sprintf("shard: boundary table has %d entries, want shards-1 = %d", len(bounds), shards-1))
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] < bounds[i-1] {
			panic(fmt.Sprintf("shard: boundary table not sorted at %d: %d < %d", i, bounds[i], bounds[i-1]))
		}
	}
}

// mix64 is the splitmix64 finalizer, the same bijective scramble the
// workload generator uses to spread keys uniformly.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// router routes keys to shards: the partition policy plus the authoritative
// sorted span-boundary table it needs under RangePartition. A router is
// immutable once published — rebalancing builds a fresh router (new bounds,
// bumped gen, copied spanGen) and swaps the Sharded's atomic pointer — so
// readers and snapshots can hold one and route consistently without locks,
// and without retaining the live Sharded beyond the frozen handles they
// serve.
type router struct {
	part   Partition
	shards int
	// bounds is the interior boundary table: shards-1 ascending keys, shard
	// p owning the half-open span [bounds[p-1], bounds[p]) with implicit 0
	// below bounds[0] and +inf above bounds[shards-2]. Equal adjacent
	// boundaries denote empty spans. Unused (nil) under HashPartition.
	bounds []uint64
	// gen counts router generations: 0 at construction, +1 per rebalance.
	gen uint64
	// spanGen[p] is the generation at which shard p's span last changed.
	// Snapshot captures validate published handles against it: a handle
	// published under an older span generation must not be routed with this
	// router (the keys it holds may have moved shards since).
	spanGen []uint64
}

// shardOf routes a key to its owning shard.
func (rt *router) shardOf(key uint64) int {
	if rt.shards == 1 {
		return 0
	}
	if rt.part == RangePartition {
		// First interior boundary strictly above the key; keys at or above
		// every boundary (including keys past 2^KeyBits) route to the last
		// shard.
		return sort.Search(len(rt.bounds), func(i int) bool { return key < rt.bounds[i] })
	}
	// Multiply-shift maps the hash onto [0, shards) without a modulo.
	hi, _ := bits.Mul64(mix64(key), uint64(rt.shards))
	return int(hi)
}

// spanOf returns shard p's half-open span [lo, hi) under RangePartition;
// last reports that the span is unbounded above (hi is meaningless then).
func (rt *router) spanOf(p int) (lo, hi uint64, last bool) {
	if p > 0 {
		lo = rt.bounds[p-1]
	}
	if p == rt.shards-1 {
		return lo, 0, true
	}
	return lo, rt.bounds[p], false
}

// shardSpan returns the inclusive shard interval overlapping [start, end):
// the exact span under RangePartition, every shard under HashPartition. A
// degenerate range (end <= start, including the end == 0 wraparound that
// used to underflow into a full-span scan) yields an empty interval with
// hi < lo; callers iterate [lo, hi] and naturally touch nothing.
func (rt *router) shardSpan(start, end uint64) (lo, hi int) {
	if end <= start {
		return 0, -1
	}
	if rt.part == RangePartition {
		return rt.shardOf(start), rt.shardOf(end - 1)
	}
	return 0, rt.shards - 1
}

// split partitions a batch into per-shard sub-batches, preserving input
// order within each sub-batch (so sorted inputs yield sorted sub-batches).
// Sorted range-partitioned batches split into subslices of the input with
// no copying — the per-shard search bound is the same boundary table
// shardOf routes with, so the two can never disagree; everything else goes
// through a blocked two-pass parallel counting scatter. aliased reports
// whether the sub-batches share memory with keys — the ownership fact
// asyncSplit's copy decision depends on, returned here so it cannot drift
// from the implementation.
func (rt *router) split(keys []uint64, sorted bool) (subs [][]uint64, aliased bool) {
	P := rt.shards
	if P == 1 {
		return [][]uint64{keys}, true
	}
	if rt.part == RangePartition && sorted {
		subs = make([][]uint64, P)
		lo := 0
		for p := 0; p < P; p++ {
			hi := len(keys)
			if p+1 < P {
				bound := rt.bounds[p] // first key owned by shard p+1 (or later)
				hi = lo + sort.Search(len(keys)-lo, func(i int) bool { return keys[lo+i] >= bound })
			}
			subs[p] = keys[lo:hi]
			lo = hi
		}
		return subs, true
	}
	return rt.scatter(keys), false
}

// scatter buckets keys by shard with a two-pass counting scatter: blocks
// count in parallel, a shard-major prefix sum assigns every block a private
// window in each bucket, and blocks then fill their windows in parallel
// without synchronization. Input order is preserved within each bucket.
func (rt *router) scatter(keys []uint64) [][]uint64 {
	P := rt.shards
	n := len(keys)
	nb := (n + scatterGrain - 1) / scatterGrain
	ids := make([]int32, n)
	counts := make([]int, nb*P)
	parallel.For(nb, 1, func(b int) {
		lo, hi := b*scatterGrain, (b+1)*scatterGrain
		if hi > n {
			hi = n
		}
		row := counts[b*P : (b+1)*P]
		for i := lo; i < hi; i++ {
			id := int32(rt.shardOf(keys[i]))
			ids[i] = id
			row[id]++
		}
	})
	offsets := make([]int, nb*P)
	totals := make([]int, P)
	for p := 0; p < P; p++ {
		run := 0
		for b := 0; b < nb; b++ {
			offsets[b*P+p] = run
			run += counts[b*P+p]
		}
		totals[p] = run
	}
	subs := make([][]uint64, P)
	for p := range subs {
		if totals[p] > 0 {
			subs[p] = make([]uint64, totals[p])
		}
	}
	parallel.For(nb, 1, func(b int) {
		lo, hi := b*scatterGrain, (b+1)*scatterGrain
		if hi > n {
			hi = n
		}
		pos := make([]int, P)
		copy(pos, offsets[b*P:(b+1)*P])
		for i := lo; i < hi; i++ {
			id := ids[i]
			subs[id][pos[id]] = keys[i]
			pos[id]++
		}
	})
	return subs
}

// router returns the current routing table. The pointer is immutable;
// rebalancing publishes replacements through the atomic.
func (s *Sharded) router() *router { return s.rt.Load() }

func (s *Sharded) shardOf(key uint64) int { return s.router().shardOf(key) }

// asyncSplit partitions a batch into per-shard sub-batches that are sorted
// and safe for the ingest pipeline to hold: a fire-and-forget enqueue
// outlives the call, so its sub-batches must never alias the caller's
// slice (which the caller is free to reuse the moment the enqueue
// returns). A ticketed enqueue (wait) blocks until the writers have
// consumed the keys, so aliasing is safe and the defensive copy is
// skipped. Unsorted input is sorted up front — the writers' coalescing
// merge needs sorted runs — which also makes every split path below
// order-preserving. The caller must hold life.RLock so the router cannot
// be swapped between the split and the enqueue.
func (s *Sharded) asyncSplit(rt *router, keys []uint64, sorted, wait bool) [][]uint64 {
	if len(keys) == 0 {
		return nil
	}
	owned := false
	if !sorted {
		keys = parallel.SortedCopy(keys)
		owned = true
	}
	subs, aliased := rt.split(keys, true)
	// Aliased sub-batches need copies unless the sort above produced a
	// private copy or the caller waits for the apply.
	if aliased && !owned && !wait {
		for p, sub := range subs {
			if len(sub) > 0 {
				subs[p] = append(make([]uint64, 0, len(sub)), sub...)
			}
		}
	}
	return subs
}

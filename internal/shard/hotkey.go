package shard

// Hot-key absorption: phase-reconciled commutative ingest for single-key
// hotspots.
//
// The rebalancer caps *span* skew but cannot subdivide one key: when a
// single key dominates traffic, its owning shard's writer becomes the whole
// pipeline's throughput ceiling, re-merging and re-applying the same key
// millions of times. CPMA insert/remove of one key is idempotent-
// commutative, so duplicate traffic to a detected-hot key can be absorbed
// in front of the mailbox and folded into the CPMA once per drain — the
// Doppel-style split-phase protocol, one level up from the paper's batch
// amortization.
//
// The pieces:
//
//   - Detection: each shard's writer feeds a small space-saving sketch from
//     the batches it applies (run-length over the sorted merge, so a drain
//     costs O(distinct) sketch updates). Every HotKeyEvery keys it promotes
//     keys whose share of the window exceeds HotKeyFrac and demotes
//     promoted keys whose absorbed traffic cooled below a quarter of that.
//   - Separation: unsorted batches run a pre-pass against the global
//     promoted-key index (hotIdx, the sorted union of all shards' tables)
//     that tallies hot occurrences into compact hotEntry records —
//     {key, occurrence count} — before the batch is even sorted, so hot
//     traffic skips the enqueue-side sort and scatter (the dominant cost
//     on skewed streams) as well as the mailbox payload, the coalescing
//     merge, and the CPMA applies; that is the throughput win. Sorted
//     sub-batches are additionally checked against the owning shard's
//     table (an atomic pointer load; nil when nothing is hot) and runs of
//     promoted keys are excised the same way.
//   - Absorption: the writer folds an op's entries into per-key slots (a
//     last-wins insert/remove bit over a base-presence bit) inside the same
//     critical section as the op's cold apply, at the op's FIFO position.
//     A writer-side strip in applyOne is the backstop for sub-batches split
//     against a stale table during a promotion, so a promoted key's CPMA
//     state ("base") never changes outside reconciliation.
//   - Overlay: live reads add the pending delta (effective minus base
//     presence, ±key for sums) under the same shard read locks the cut
//     already holds, so Len/Sum/RangeSum/Has/Next/Max/Map stay exact while
//     ops sit absorbed.
//   - Reconciliation: before every publish point (drain end, Flush token,
//     quiesce token) the writer folds dirty slots into the CPMA as ordinary
//     sorted batches — WAL-appended first, exactly like any other apply —
//     so published snapshot handles are always an exact FIFO prefix of the
//     shard's history (absorption is invisible to the snapshot contract),
//     Flush forces reconciliation, and durability covers exactly the
//     reconciled state.

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/cpma"
	"repro/internal/obs"
)

// Default absorber tuning: the detector evaluates every DefaultHotKeyEvery
// keys through a shard, promotes keys above DefaultHotKeyFrac of that
// window, and keeps at most DefaultHotKeyMax keys promoted per shard.
const (
	DefaultHotKeyFrac  = 1.0 / 16
	DefaultHotKeyMax   = 16
	DefaultHotKeyEvery = 1 << 15
)

// pending op states of a hotSlot.
const (
	pendNone uint8 = iota
	pendInsert
	pendRemove
)

// hotEntry is the compact absorbed form of one promoted key's occurrences
// within one sub-batch: separation collapses a run of n equal keys into a
// single entry (the op kind is the mailbox op's kind). Entries are always
// freshly built — they never alias caller memory.
type hotEntry struct {
	key uint64
	n   uint64
}

// hotSlot is one promoted key's absorbed state. base is the key's presence
// in the shard's CPMA (the truth as of the last reconciliation — promoted
// keys are stripped from every apply, so base changes only at reconcile);
// pend is the last-wins pending op. The effective membership is pend if
// set, else base. base and pend are written by the shard's writer goroutine
// under the shard's write lock and read by overlay reads under its read
// lock. hits counts absorbed occurrences since the last detector window
// and is touched only by the writer goroutine (no lock).
type hotSlot struct {
	base bool
	pend uint8
	hits uint64
}

// eff returns the slot's effective membership: the pending op if one is
// absorbed, else the base presence. Callers hold the shard lock.
func (sl *hotSlot) eff() bool {
	if sl.pend != pendNone {
		return sl.pend == pendInsert
	}
	return sl.base
}

// hotTable is one shard's promoted-key set: sorted keys with parallel
// slots. The table itself is immutable once published through cell.hot
// (promotion/demotion installs a replacement under the shard's write
// lock); the slots it points to are mutable under the shard lock.
type hotTable struct {
	keys  []uint64
	slots []*hotSlot
}

// lookup returns the slot for k, nil if k is not promoted. Reading the
// returned slot's base/pend requires the shard lock.
func (ht *hotTable) lookup(k uint64) *hotSlot {
	if ht == nil || len(ht.keys) == 0 {
		return nil
	}
	i := sort.Search(len(ht.keys), func(j int) bool { return ht.keys[j] >= k })
	if i < len(ht.keys) && ht.keys[i] == k {
		return ht.slots[i]
	}
	return nil
}

// pendingLists returns the overlay's visible difference from the CPMA:
// added (effective but not base — in the set, not yet in the CPMA) and
// removed (base but not effective) keys, both sorted. Caller holds the
// shard lock.
func (ht *hotTable) pendingLists() (added, removed []uint64) {
	if ht == nil {
		return nil, nil
	}
	for i, sl := range ht.slots {
		if sl.pend == pendNone {
			continue
		}
		if e := sl.pend == pendInsert; e != sl.base {
			if e {
				added = append(added, ht.keys[i])
			} else {
				removed = append(removed, ht.keys[i])
			}
		}
	}
	return added, removed
}

// lenSumDelta returns the overlay's contribution to Len and Sum (mod 2^64):
// +1/+key per pending-added key, -1/-key per pending-removed key. Caller
// holds the shard lock.
func (ht *hotTable) lenSumDelta() (dn int, dsum uint64) {
	if ht == nil {
		return 0, 0
	}
	for i, sl := range ht.slots {
		if sl.pend == pendNone {
			continue
		}
		if e := sl.pend == pendInsert; e != sl.base {
			if e {
				dn++
				dsum += ht.keys[i]
			} else {
				dn--
				dsum -= ht.keys[i]
			}
		}
	}
	return dn, dsum
}

// rangeDelta is lenSumDelta restricted to keys in [start, end). Caller
// holds the shard lock.
func (ht *hotTable) rangeDelta(start, end uint64) (dn int, dsum uint64) {
	if ht == nil {
		return 0, 0
	}
	for i, sl := range ht.slots {
		k := ht.keys[i]
		if k < start || k >= end || sl.pend == pendNone {
			continue
		}
		if e := sl.pend == pendInsert; e != sl.base {
			if e {
				dn++
				dsum += k
			} else {
				dn--
				dsum -= k
			}
		}
	}
	return dn, dsum
}

// stripHotSorted excises runs of promoted keys from a sorted sub-batch. It
// returns (nil, nil) when no promoted key occurs — the caller keeps sub —
// and otherwise a freshly built cold remainder (never aliasing sub) plus
// one entry per promoted key found, in table (ascending key) order. It
// reads only the table's immutable keys, so enqueuers may call it without
// the shard lock.
func stripHotSorted(sub []uint64, ht *hotTable) ([]uint64, []hotEntry) {
	if ht == nil || len(ht.keys) == 0 {
		return nil, nil
	}
	var (
		cold []uint64
		ents []hotEntry
		prev int
	)
	for _, hk := range ht.keys {
		rest := sub[prev:]
		i := prev + sort.Search(len(rest), func(j int) bool { return rest[j] >= hk })
		if i == len(sub) {
			break
		}
		rest = sub[i:]
		j := i + sort.Search(len(rest), func(k int) bool { return rest[k] > hk })
		if j == i {
			continue
		}
		cold = append(cold, sub[prev:i]...)
		ents = append(ents, hotEntry{key: hk, n: uint64(j - i)})
		prev = j
	}
	if ents == nil {
		return nil, nil
	}
	return append(cold, sub[prev:]...), ents
}

// --- detection ---

// ssEntry is one space-saving counter.
type ssEntry struct {
	key   uint64
	count uint64
}

// spaceSaving is a tiny top-K frequency sketch: at most cap counters, a
// new key beyond capacity replaces the minimum counter and inherits its
// count (the classic overestimate — fine for a promotion trigger, which a
// real absorbed-traffic measurement then confirms or demotes). Capacity is
// small, so linear scans beat a heap.
type spaceSaving struct {
	entries []ssEntry
	cap     int
}

func (s *spaceSaving) add(key, n uint64) {
	for i := range s.entries {
		if s.entries[i].key == key {
			s.entries[i].count += n
			return
		}
	}
	if len(s.entries) < s.cap {
		s.entries = append(s.entries, ssEntry{key: key, count: n})
		return
	}
	mi := 0
	for i := 1; i < len(s.entries); i++ {
		if s.entries[i].count < s.entries[mi].count {
			mi = i
		}
	}
	s.entries[mi] = ssEntry{key: key, count: s.entries[mi].count + n}
}

func (s *spaceSaving) reset() { s.entries = s.entries[:0] }

// hotDetector is one shard's traffic sampler: a space-saving sketch over
// the keys the writer applies plus a window counter that triggers
// evaluation. Touched only by the shard's writer goroutine (the rebalancer
// resets it only while the writer is parked on a quiesce token).
type hotDetector struct {
	sk     spaceSaving
	window uint64
}

func (d *hotDetector) reset() {
	d.sk.reset()
	d.window = 0
}

// observe feeds one applied sorted batch into the sketch, run-length
// collapsed. Large batches skip runs too short to matter — a key below
// ~0.4% of one merged drain cannot reach a promotion share — so uniform
// traffic costs almost no sketch updates.
func (d *hotDetector) observe(keys []uint64) {
	n := len(keys)
	if n == 0 {
		return
	}
	d.window += uint64(n)
	minRun := 1 + n>>8
	for i := 0; i < n; {
		j := i + 1
		for j < n && keys[j] == keys[i] {
			j++
		}
		if j-i >= minRun {
			d.sk.add(keys[i], uint64(j-i))
		}
		i = j
	}
}

// --- writer-side absorption, reconciliation, promotion/demotion ---

// splitEntries partitions an op's hot entries against the current table:
// entries for still-promoted keys absorb into slots; entries whose key was
// demoted while the op was in flight fall back to ordinary keys, merged
// into the op's cold batch at the same FIFO position. A fallback entry of
// n occurrences re-expands as one applied key — idempotent ops collapse —
// with the other n-1 reported as surplus so the absorbed-key accounting
// (AppliedKeys + AbsorbedKeys converges to EnqueuedKeys) stays exact.
// Entries from a coalesced run are concatenated per op, so the fallback
// list is sorted before use. Reads only immutable table keys — no lock
// needed.
func splitEntries(ht *hotTable, ents []hotEntry) (abs []hotEntry, fallback []uint64, surplus uint64) {
	for _, e := range ents {
		if ht.lookup(e.key) != nil {
			abs = append(abs, e)
		} else {
			fallback = append(fallback, e.key)
			surplus += e.n - 1
		}
	}
	if len(fallback) > 1 && !sort.SliceIsSorted(fallback, func(i, j int) bool { return fallback[i] < fallback[j] }) {
		sort.Slice(fallback, func(i, j int) bool { return fallback[i] < fallback[j] })
	}
	return abs, fallback, surplus
}

// mergeSortedInto merges the small sorted list extra into the sorted batch
// keys (the demotion-fallback path; rare, so it allocates).
func mergeSortedInto(keys, extra []uint64) []uint64 {
	out := make([]uint64, 0, len(keys)+len(extra))
	i, j := 0, 0
	for i < len(keys) && j < len(extra) {
		if keys[i] <= extra[j] {
			out = append(out, keys[i])
			i++
		} else {
			out = append(out, extra[j])
			j++
		}
	}
	return append(append(out, keys[i:]...), extra[j:]...)
}

// reconcileHot folds every dirty slot into the shard's CPMA as ordinary
// sorted batches: WAL-appended before the apply (outside the lock, exactly
// like applyOne), then applied with the slot bases flipped in the same
// critical section, so overlay readers can never see a key both pending
// and applied. Called by the writer before every publish point; after it
// returns, the published handle equals the exact FIFO prefix of the
// shard's operation history — absorption is invisible to snapshots,
// recovery, and checkpoints.
func (s *Sharded) reconcileHot(p int, c *cell) {
	ht := c.hot.Load()
	if ht == nil {
		return
	}
	var ins, rem []uint64 // table order, therefore sorted
	dirty := false
	for i, sl := range ht.slots {
		if sl.pend == pendNone {
			continue
		}
		dirty = true
		if e := sl.pend == pendInsert; e != sl.base {
			if e {
				ins = append(ins, ht.keys[i])
			} else {
				rem = append(rem, ht.keys[i])
			}
		}
	}
	if !dirty {
		return
	}
	t0 := time.Now()
	if j := s.opt.Journal; j != nil {
		if len(ins) > 0 {
			if err := j.Append(p, false, ins); err != nil {
				panic(fmt.Sprintf("shard %d: journal append (reconcile): %v", p, err))
			}
		}
		if len(rem) > 0 {
			if err := j.Append(p, true, rem); err != nil {
				panic(fmt.Sprintf("shard %d: journal append (reconcile): %v", p, err))
			}
		}
	}
	c.mu.Lock()
	changed := 0
	if len(ins) > 0 {
		changed += c.set.InsertBatch(ins, true)
		c.reconciles.Add(1)
	}
	if len(rem) > 0 {
		changed += c.set.RemoveBatch(rem, true)
		c.reconciles.Add(1)
	}
	for _, sl := range ht.slots {
		if sl.pend != pendNone {
			sl.base = sl.pend == pendInsert
			sl.pend = pendNone
		}
	}
	if changed > 0 {
		c.epoch.Add(1)
	}
	c.mu.Unlock()
	s.pm.reconcile.Since(t0)
}

// retuneHot is the writer's end-of-drain promotion/demotion pass. It runs
// after reconcileHot, so every slot is clean: a demoted key's CPMA state
// is already the truth (dropping the slot loses nothing), and a freshly
// promoted key's base is read straight off the CPMA (this goroutine is the
// only mutator). Table swaps install under the shard's write lock so no
// overlay read holds a cut across the change.
func (s *Sharded) retuneHot(p int, c *cell) {
	d := &c.det
	if d.window < uint64(s.opt.HotKeyEvery) {
		return
	}
	ht := c.hot.Load()
	promoteAt := uint64(float64(d.window) * s.opt.HotKeyFrac)
	if promoteAt < 1 {
		promoteAt = 1
	}
	demoteAt := promoteAt / 4

	kept := 0
	var drop []bool
	if ht != nil {
		drop = make([]bool, len(ht.keys))
		for i, sl := range ht.slots {
			if sl.hits < demoteAt {
				drop[i] = true
			} else {
				kept++
			}
		}
	}
	var adds []uint64
	for _, e := range d.sk.entries {
		if e.count >= promoteAt && ht.lookup(e.key) == nil && kept+len(adds) < s.opt.HotKeyMax {
			adds = append(adds, e.key)
		}
	}
	demoted := 0
	if ht != nil {
		demoted = len(ht.keys) - kept
	}
	if len(adds) > 0 || demoted > 0 {
		var nt *hotTable
		if kept+len(adds) > 0 {
			nt = &hotTable{
				keys:  make([]uint64, 0, kept+len(adds)),
				slots: make([]*hotSlot, 0, kept+len(adds)),
			}
			if ht != nil {
				for i := range ht.keys {
					if !drop[i] {
						ht.slots[i].hits = 0
						nt.keys = append(nt.keys, ht.keys[i])
						nt.slots = append(nt.slots, ht.slots[i])
					}
				}
			}
			for _, k := range adds {
				// The writer is the shard's sole mutator, so reading the
				// CPMA here without the lock is safe against concurrent
				// readers.
				nt.keys = append(nt.keys, k)
				nt.slots = append(nt.slots, &hotSlot{base: c.set.Has(k)})
			}
			sortTable(nt)
		}
		c.mu.Lock()
		c.hot.Store(nt)
		c.mu.Unlock()
		s.rebuildHotIndex()
		c.promos.Add(uint64(len(adds)))
		c.demos.Add(uint64(demoted))
		if len(adds) > 0 {
			s.trace.Record(p, obs.EvPromote, c.epoch.Load(), 0, uint64(len(adds)), 0)
		}
		if demoted > 0 {
			s.trace.Record(p, obs.EvDemote, c.epoch.Load(), 0, uint64(demoted), 0)
		}
	} else if ht != nil {
		for _, sl := range ht.slots {
			sl.hits = 0
		}
	}
	d.reset()
}

// sortTable co-sorts a freshly built table's keys and slots (insertion
// sort — tables hold at most HotKeyMax entries).
func sortTable(t *hotTable) {
	for i := 1; i < len(t.keys); i++ {
		k, sl := t.keys[i], t.slots[i]
		j := i - 1
		for j >= 0 && t.keys[j] > k {
			t.keys[j+1], t.slots[j+1] = t.keys[j], t.slots[j]
			j--
		}
		t.keys[j+1], t.slots[j+1] = k, sl
	}
}

// dropHotTables demotes every promoted key on shard p, resetting the
// detector. Called by the rebalancer with the writer quiesced and the
// shard's write lock held: a boundary move changes which shard owns a key,
// so per-shard promoted state (whose base was read from this shard's CPMA)
// must not survive the move. Slots are clean — the quiesce token's publish
// reconciled them — so dropping the table loses nothing; genuinely hot
// keys re-promote within one detector window.
func (s *Sharded) dropHotTables(p int, c *cell) {
	if !s.opt.HotKeys {
		return
	}
	if ht := c.hot.Load(); ht != nil {
		c.hot.Store(nil)
		c.demos.Add(uint64(len(ht.keys)))
		s.trace.Record(p, obs.EvDemote, c.epoch.Load(), 0, uint64(len(ht.keys)), 0)
	}
	c.det.reset()
	s.rebuildHotIndex()
}

// hotIndexDenseMax bounds the direct-mapped lookup table: when every
// promoted key is below it — they are on skewed streams, whose hot keys
// cluster at the bottom of the key space — the pre-pass lookup is a single
// array load instead of a binary search. 512 KiB of int16 at worst.
const hotIndexDenseMax = 1 << 18

// hotIndex is the global promoted-key index: the sorted union of every
// shard's hot-table keys (at most shards x HotKeyMax of them). Immutable
// once published through Sharded.hotIdx; enqueue's pre-pass probes it per
// key, with a cheap top-key reject for the cold majority of a uniform
// tail.
type hotIndex struct {
	keys []uint64
	top  uint64 // keys[len(keys)-1]
	// dense direct-maps [0, top]: dense[k] is 1 + k's position in keys, 0
	// for unpromoted keys. Nil when top >= hotIndexDenseMax.
	dense []int16
}

// find returns k's position in ix.keys, or -1 if k is not promoted.
func (ix *hotIndex) find(k uint64) int {
	if ix.dense != nil {
		if k < uint64(len(ix.dense)) {
			return int(ix.dense[k]) - 1
		}
		return -1
	}
	if k > ix.top {
		return -1
	}
	lo, hi := 0, len(ix.keys)
	for lo < hi {
		m := int(uint(lo+hi) >> 1)
		if ix.keys[m] < k {
			lo = m + 1
		} else {
			hi = m
		}
	}
	if lo < len(ix.keys) && ix.keys[lo] == k {
		return lo
	}
	return -1
}

// rebuildHotIndex republishes the index from the cells' current tables.
// Callers are the shard writers (after a retune) and the rebalancer (after
// dropping tables); concurrent rebuilds are benign — each publishes a
// coherent union of the tables it observed, and enqueue-side staleness in
// either direction is corrected downstream (backstop strip / demotion
// fallback).
func (s *Sharded) rebuildHotIndex() {
	var keys []uint64
	for i := range s.cells {
		if ht := s.cells[i].hot.Load(); ht != nil {
			keys = append(keys, ht.keys...)
		}
	}
	if len(keys) == 0 {
		s.hotIdx.Store(nil)
		return
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	idx := &hotIndex{keys: keys, top: keys[len(keys)-1]}
	if idx.top < hotIndexDenseMax {
		idx.dense = make([]int16, idx.top+1)
		for j, k := range keys {
			idx.dense[k] = int16(j + 1)
		}
	}
	s.hotIdx.Store(idx)
}

// hotScan is the enqueue-side fast pre-pass for unsorted batches: it
// tallies occurrences of globally promoted keys (per hot-index position)
// and returns the remaining cold keys, so hot traffic never reaches the
// sort or the scatter. It doubles as the batch's reserved-key check — one
// pass over the batch instead of checkKeys plus a probe pass. The cold
// slice is freshly allocated whenever anything was excised (the caller's
// slice is never mutated); if nothing hot occurs the input is returned
// as-is with nil counts. Runs before life.RLock (no side effects, so the
// reserved-key panic cannot strand the lock); the index snapshot may be a
// retune older or newer than any shard's table, which the writer-side
// backstop strip and demotion fallback already tolerate.
func (s *Sharded) hotScan(keys []uint64) (cold []uint64, ik []uint64, counts []uint64) {
	idx := s.hotIdx.Load()
	if idx == nil || len(keys) == 0 {
		checkKeys(keys, false)
		return keys, nil, nil
	}
	ik = idx.keys
	if dense := idx.dense; dense != nil {
		// The hot loop of the hot path: one array load per key (find has a
		// search loop, so the compiler won't inline it — hand-inline the
		// dense probe).
		bound := uint64(len(dense))
		for i, k := range keys {
			if k == 0 {
				panic("shard: key 0 is reserved")
			}
			if k < bound {
				if j := dense[k]; j != 0 {
					if counts == nil {
						counts = make([]uint64, len(ik))
						cold = append(make([]uint64, 0, i+(len(keys)-i)/8+8), keys[:i]...)
					}
					counts[j-1]++
					continue
				}
			}
			if counts != nil {
				cold = append(cold, k)
			}
		}
	} else {
		for i, k := range keys {
			if k == 0 {
				panic("shard: key 0 is reserved")
			}
			if j := idx.find(k); j >= 0 {
				if counts == nil {
					counts = make([]uint64, len(ik))
					cold = append(make([]uint64, 0, i+(len(keys)-i)/8+8), keys[:i]...)
				}
				counts[j]++
				continue
			}
			if counts != nil {
				cold = append(cold, k)
			}
		}
	}
	if counts == nil {
		return keys, nil, nil
	}
	return cold, ik, counts
}

// routeHot turns a hotScan tally into per-shard hotEntry lists using the
// router the caller splits and mails by (held stable under life.RLock).
func routeHot(rt *router, ik []uint64, counts []uint64) [][]hotEntry {
	ents := make([][]hotEntry, rt.shards)
	for j, n := range counts {
		if n == 0 {
			continue
		}
		p := rt.shardOf(ik[j])
		ents[p] = append(ents[p], hotEntry{key: ik[j], n: n})
	}
	return ents
}

// --- overlay read helpers (live cuts; snapshots never need them because
// published handles are reconciled) ---

// overlayHas resolves a point lookup through the overlay: a promoted key's
// effective state is its slot, everything else reads the CPMA. Caller
// holds the shard lock.
func overlayHas(set *cpma.CPMA, ht *hotTable, x uint64) bool {
	if sl := ht.lookup(x); sl != nil {
		return sl.eff()
	}
	return set.Has(x)
}

// overlayNext returns the smallest effective key >= x: the CPMA's
// successor chain skipping pending-removed keys, merged with the smallest
// pending-added key. Caller holds the shard lock.
func overlayNext(set *cpma.CPMA, ht *hotTable, x uint64) (uint64, bool) {
	added, removed := ht.pendingLists()
	r, ok := set.Next(x)
	for ok && sortedContains(removed, r) {
		r, ok = set.Next(r + 1)
	}
	for _, a := range added {
		if a >= x && (!ok || a < r) {
			return a, true
		}
	}
	return r, ok
}

// overlayMax returns the largest effective key: the CPMA's max, walked
// down past pending-removed keys (the CPMA has no predecessor query, so
// each step is a binary search on the key space driven by Next), merged
// with the largest pending-added key. Caller holds the shard lock.
func overlayMax(set *cpma.CPMA, ht *hotTable) (uint64, bool) {
	added, removed := ht.pendingLists()
	m, ok := set.Max()
	for ok && sortedContains(removed, m) {
		m, ok = prevBelow(set, m)
	}
	if len(added) > 0 {
		if a := added[len(added)-1]; !ok || a > m {
			return a, true
		}
	}
	return m, ok
}

// prevBelow returns the largest key < m in set. Invariant of the search:
// a key exists in [lo, m) and none exists in [hi, m), so when the bounds
// meet, lo itself is that key (Next(lo) < m but Next(lo+1) >= m).
func prevBelow(set *cpma.CPMA, m uint64) (uint64, bool) {
	if m <= 1 {
		return 0, false
	}
	if r, ok := set.Next(1); !ok || r >= m {
		return 0, false
	}
	lo, hi := uint64(1), m
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		if r, ok := set.Next(mid); ok && r < m {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, true
}

// overlayMapRange streams the effective keys of [start, end) in order:
// the CPMA's stream with pending-removed keys skipped and pending-added
// keys merged in. Caller holds the shard lock (live range-partition scans
// run under it by contract).
func overlayMapRange(set *cpma.CPMA, ht *hotTable, start, end uint64, f func(uint64) bool) bool {
	added, removed := ht.pendingLists()
	if added == nil && removed == nil {
		return set.MapRange(start, end, f)
	}
	ai := 0
	for ai < len(added) && added[ai] < start {
		ai++
	}
	ok := set.MapRange(start, end, func(x uint64) bool {
		for ai < len(added) && added[ai] < x {
			if !f(added[ai]) {
				return false
			}
			ai++
		}
		if sortedContains(removed, x) {
			return true
		}
		return f(x)
	})
	if !ok {
		return false
	}
	for ; ai < len(added) && added[ai] < end; ai++ {
		if !f(added[ai]) {
			return false
		}
	}
	return true
}

func sortedContains(keys []uint64, x uint64) bool {
	if len(keys) == 0 {
		return false
	}
	i := sort.Search(len(keys), func(j int) bool { return keys[j] >= x })
	return i < len(keys) && keys[i] == x
}

// HotKeys returns the currently promoted (absorbed-path) keys across all
// shards, sorted — bench and test introspection for the absorber.
func (s *Sharded) HotKeys() []uint64 {
	if !s.opt.HotKeys {
		return nil
	}
	var out []uint64
	for p := range s.cells {
		c := &s.cells[p]
		c.mu.RLock()
		if ht := c.hot.Load(); ht != nil {
			out = append(out, ht.keys...)
		}
		c.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

package shard

import (
	"slices"
	"testing"

	"repro/internal/workload"
)

// TestShardSpanDegenerateRanges is the regression test for the
// end-underflow bug: shardSpan used to compute shardOf(end-1), which
// wrapped to ^uint64(0) when end == 0 (and covered the whole span
// whenever end <= start), turning an empty range into a full-span scan.
// Degenerate ranges must now yield an empty shard interval at the router
// and empty results on every live and snapshot read path.
func TestShardSpanDegenerateRanges(t *testing.T) {
	degenerate := [][2]uint64{
		{1, 0}, {5, 0}, {^uint64(0), 0}, // end == 0: the underflow case
		{0, 0}, {7, 7}, {^uint64(0), ^uint64(0)}, // empty
		{9, 3}, {^uint64(0), 1}, // inverted
	}
	for name, opt := range configs() {
		t.Run(name, func(t *testing.T) {
			s := newTestSet(t, name, opt)
			s.InsertBatch(workload.Uniform(workload.NewRNG(3), 5000, 16), false)
			s.Flush()
			rt := s.router()
			for _, d := range degenerate {
				lo, hi := rt.shardSpan(d[0], d[1])
				if hi >= lo {
					t.Fatalf("shardSpan(%d, %d) = [%d, %d], want empty", d[0], d[1], lo, hi)
				}
			}
			sn := s.Snapshot()
			for _, d := range degenerate {
				if sum, count := s.RangeSum(d[0], d[1]); sum != 0 || count != 0 {
					t.Fatalf("RangeSum(%d, %d) = %d, %d; want empty", d[0], d[1], sum, count)
				}
				if !s.MapRange(d[0], d[1], func(uint64) bool {
					t.Fatalf("MapRange(%d, %d) visited a key", d[0], d[1])
					return false
				}) {
					t.Fatalf("MapRange(%d, %d) reported early stop", d[0], d[1])
				}
				if sum, count := sn.RangeSum(d[0], d[1]); sum != 0 || count != 0 {
					t.Fatalf("snapshot RangeSum(%d, %d) = %d, %d; want empty", d[0], d[1], sum, count)
				}
				if !sn.MapRange(d[0], d[1], func(uint64) bool {
					t.Fatalf("snapshot MapRange(%d, %d) visited a key", d[0], d[1])
					return false
				}) {
					t.Fatalf("snapshot MapRange(%d, %d) reported early stop", d[0], d[1])
				}
			}
		})
	}
}

// routerGeometries builds routing tables across extreme partition
// geometries: full 64-bit spans, tiny key spaces with more shards than
// distinct spans, non-power-of-two shard counts, and randomized
// (rebalanced-looking) boundary tables with empty and duplicate spans.
func routerGeometries(r *workload.RNG) []*router {
	var rts []*router
	for _, g := range []struct{ keyBits, shards int }{
		{64, 1}, {64, 3}, {64, 5}, {64, 64}, {64, 100},
		{40, 7}, {16, 9}, {8, 200},
		{2, 9}, {3, 8}, {1, 5}, // shards > distinct spans
	} {
		rts = append(rts, &router{
			part:    RangePartition,
			shards:  g.shards,
			bounds:  defaultBounds(g.keyBits, g.shards),
			spanGen: make([]uint64, g.shards),
		})
		// A randomized table over the same geometry: sorted draws from the
		// key space, with duplicates (empty spans) kept.
		if g.shards > 1 {
			bounds := make([]uint64, g.shards-1)
			for i := range bounds {
				bounds[i] = r.Uint64() >> uint(64-g.keyBits)
			}
			slices.Sort(bounds)
			rts = append(rts, &router{
				part:    RangePartition,
				shards:  g.shards,
				bounds:  bounds,
				spanGen: make([]uint64, g.shards),
			})
		}
	}
	rts = append(rts, &router{part: HashPartition, shards: 7, spanGen: make([]uint64, 7)})
	return rts
}

// TestSplitMatchesShardOf is the property test pinning the satellite fix:
// split's per-shard search bounds and shardOf's routing must derive from
// the same boundary table, so every key of every sub-batch must route to
// the sub-batch's shard — across default and randomized (rebalanced)
// tables, sorted and unsorted inputs — and the sub-batches must
// concatenate back to the input. The old fixed-width recomputation
// (uint64(p+1) * width) drifted from shardOf's clamp on exactly the
// rounded-up geometries this sweep includes.
func TestSplitMatchesShardOf(t *testing.T) {
	r := workload.NewRNG(17)
	for _, rt := range routerGeometries(r) {
		for trial := 0; trial < 4; trial++ {
			n := 1 + r.Intn(3000)
			keys := make([]uint64, n)
			for i := range keys {
				switch r.Intn(4) {
				case 0: // boundary-adjacent keys stress the search bounds
					if len(rt.bounds) > 0 {
						b := rt.bounds[r.Intn(len(rt.bounds))]
						keys[i] = b + uint64(r.Intn(3)) - 1
					} else {
						keys[i] = r.Uint64()
					}
				case 1:
					keys[i] = r.Uint64()
				default:
					keys[i] = 1 + r.Uint64()%(1<<20)
				}
				if keys[i] == 0 {
					keys[i] = 1
				}
			}
			for _, sorted := range []bool{false, true} {
				in := slices.Clone(keys)
				if sorted {
					slices.Sort(in)
				}
				subs, _ := rt.split(in, sorted)
				if len(subs) != rt.shards {
					t.Fatalf("split returned %d sub-batches for %d shards", len(subs), rt.shards)
				}
				total := 0
				for p, sub := range subs {
					total += len(sub)
					for _, k := range sub {
						if got := rt.shardOf(k); got != p {
							t.Fatalf("shards=%d bounds=%v sorted=%v: key %d in sub-batch %d, shardOf says %d",
								rt.shards, rt.bounds, sorted, k, p, got)
						}
					}
				}
				if total != len(in) {
					t.Fatalf("split dropped keys: %d of %d", total, len(in))
				}
				if sorted && rt.part == RangePartition {
					// Sorted input: sub-batches must concatenate to the input.
					var cat []uint64
					for _, sub := range subs {
						cat = append(cat, sub...)
					}
					if !slices.Equal(cat, in) {
						t.Fatalf("shards=%d: sorted split does not concatenate to input", rt.shards)
					}
				}
			}
		}
	}
}

// TestDefaultBoundsMatchWidthArithmetic pins the default table to the
// historical fixed-width routing (int(key/width), clamped), which the
// persist kill-point harness and every pre-rebalance store on disk rely
// on.
func TestDefaultBoundsMatchWidthArithmetic(t *testing.T) {
	r := workload.NewRNG(23)
	for _, g := range []struct{ keyBits, shards int }{
		// shards >= 2: the single-shard router short-circuits before any
		// width arithmetic (spanWidth(64, 1) wraps to 0 by construction).
		{64, 3}, {64, 16}, {40, 5}, {16, 9}, {2, 9}, {8, 200},
	} {
		rt := &router{
			part:    RangePartition,
			shards:  g.shards,
			bounds:  defaultBounds(g.keyBits, g.shards),
			spanGen: make([]uint64, g.shards),
		}
		w := spanWidth(g.keyBits, g.shards)
		for i := 0; i < 20000; i++ {
			k := r.Uint64()
			if g.keyBits < 64 && i%2 == 0 {
				k >>= uint(64 - g.keyBits)
			}
			// Unsigned quotient with the clamp applied before the int
			// conversion: the historical code converted first, which
			// overflowed int for tiny key spaces (keyBits=2 leaves width 1,
			// so a 64-bit key's quotient exceeds int64) — another latent
			// fixed-width bug the boundary table removes.
			want := g.shards - 1
			if q := k / w; q < uint64(g.shards) {
				want = int(q)
			}
			if got := rt.shardOf(k); got != want {
				t.Fatalf("keyBits=%d shards=%d: shardOf(%d) = %d, width arithmetic says %d",
					g.keyBits, g.shards, k, got, want)
			}
		}
	}
}

package shard

// Live span rebalancing for skewed workloads. RangePartition assigns each
// shard a contiguous key span; a skewed key distribution (zipfian inserts,
// monotone id streams) can concentrate most keys — and most ingest work —
// in one shard, whose single writer then caps the whole pipeline. The
// rebalancer makes the spans dynamic: a monitor samples per-shard key
// counts and, when the max/mean ratio exceeds Options.MaxSkew, runs a
// repartition sweep — left-to-right passes over the adjacent boundary
// pairs that give each shard its fair share of the keys, letting surplus
// flow through the pairs until the ratio is back under the threshold.
//
// One move is the span handoff the mailbox writers make feasible:
//
//  1. Take life.Lock — no batch can be split against one boundary table
//     and mailed against another, and Close is excluded.
//  2. Quiesce the two affected writers with opQuiesce tokens: each parks
//     at a rest point between applies, leaving the rebalancer as the sole
//     mutator of both CPMAs (readers still proceed under the shard read
//     locks).
//  3. Extract both shards' keys (they are frozen and adjacent, so the
//     concatenation is already sorted), pick the new boundary at the
//     target split index, and build the two new CPMAs with a batch build.
//  4. On a durable set, journal the move first (Journal.Rebalanced): WAL
//     barrier records carrying the moved keys plus a durable boundary-
//     table update, ordered so any crash point recovers to exactly the
//     pre- or post-move state.
//  5. Under both shards' write locks: install the new CPMAs, bump the
//     shard epochs, publish fresh snapshot handles stamped with the new
//     span generation, and swap in the new router.
//  6. Resume the writers and release life.Lock.
//
// Readers that routed against the old table re-validate after locking
// (withCut/Has) and retry; snapshot captures validate handle span
// generations; so no read can ever pair pre-move placement with post-move
// routing or vice versa.

import (
	"fmt"
	"time"

	"repro/internal/cpma"
	"repro/internal/obs"
)

// RebalanceStats counts the rebalancer's work. Counters are monotone;
// snapshot before and after a phase and Sub the two to measure it.
type RebalanceStats struct {
	Checks    uint64 // skew evaluations (monitor ticks + RebalanceOnce calls)
	Moves     uint64 // boundary moves performed
	MovedKeys uint64 // keys that changed shards across those moves
	Gen       uint64 // current router generation (0 = never rebalanced)
}

// Sub returns the counter deltas st - prev (Gen is carried, not
// subtracted).
func (st RebalanceStats) Sub(prev RebalanceStats) RebalanceStats {
	return RebalanceStats{
		Checks:    st.Checks - prev.Checks,
		Moves:     st.Moves - prev.Moves,
		MovedKeys: st.MovedKeys - prev.MovedKeys,
		Gen:       st.Gen,
	}
}

// RebalanceStats returns the rebalancer counters.
func (s *Sharded) RebalanceStats() RebalanceStats {
	return RebalanceStats{
		Checks:    s.rebalChecks.Load(),
		Moves:     s.rebalMoves.Load(),
		MovedKeys: s.rebalMovedKeys.Load(),
		Gen:       s.router().gen,
	}
}

// Bounds returns a copy of the current interior boundary table: shards-1
// ascending keys, shard p owning [bounds[p-1], bounds[p]). nil under
// HashPartition or with a single shard.
func (s *Sharded) Bounds() []uint64 {
	return append([]uint64(nil), s.router().bounds...)
}

// LoadRatio reports the current max/mean shard key-count ratio and the
// per-shard key counts it was computed from (1 on an empty or single-shard
// set). Counts are sampled per shard without a global cut — the monitor
// needs a trend, not a linearizable total.
func (s *Sharded) LoadRatio() (float64, []int) {
	lens := s.shardLens()
	return loadRatio(lens), lens
}

func (s *Sharded) shardLens() []int {
	lens := make([]int, len(s.cells))
	for p := range lens {
		lens[p] = s.cellLen(p)
	}
	return lens
}

func loadRatio(lens []int) float64 {
	total, max := 0, 0
	for _, n := range lens {
		total += n
		if n > max {
			max = n
		}
	}
	if total == 0 || len(lens) < 2 {
		return 1
	}
	return float64(max) * float64(len(lens)) / float64(total)
}

// rebalanceMonitor is the background load monitor: every RebalanceEvery it
// samples the per-shard key counts and runs a rebalance sweep when the
// skew exceeds MaxSkew.
func (s *Sharded) rebalanceMonitor() {
	defer s.rebalWG.Done()
	t := time.NewTicker(s.opt.RebalanceEvery)
	defer t.Stop()
	for {
		select {
		case <-s.rebalStop:
			return
		case <-t.C:
			s.RebalanceOnce()
		}
	}
}

// RebalanceOnce runs one rebalance sweep: while the max/mean shard
// key-count ratio exceeds Options.MaxSkew, repartition passes move the
// adjacent span boundaries so every shard converges to its fair share.
// It returns the number of boundary moves performed (0 when the set
// is already balanced, closed, or too small to matter). Requires the
// async pipeline and RangePartition — the same preconditions as
// Options.Rebalance — and panics otherwise; it may be called manually
// whether or not the background monitor is running, and is serialized
// against it.
func (s *Sharded) RebalanceOnce() int {
	if !s.opt.Async || s.opt.Partition != RangePartition {
		panic("shard: RebalanceOnce requires the async pipeline and RangePartition")
	}
	if len(s.cells) < 2 {
		return 0
	}
	s.rebalMu.Lock()
	defer s.rebalMu.Unlock()
	s.rebalChecks.Add(1)
	P := len(s.cells)
	moves := 0
	// A sweep is a sequence of left-to-right repartition passes: each pass
	// walks the boundaries in order and splits every adjacent pair so the
	// left shard ends up holding its fair share of the total, letting
	// surplus (or deficit) flow rightward through the pairs. One pass
	// settles any surplus that sits left of (or inside) the shards that
	// need it; a deficit at the far left needs the surplus to ripple back,
	// one pass per shard of distance in the worst case — hence the P-pass
	// cap. Purely local greedy moves (trim the hottest shard toward its
	// lighter neighbor) were tried first and can oscillate when the hot
	// shard sits at the end of the array: the excess bounces between the
	// last pair forever.
	for pass := 0; pass < P; pass++ {
		lens := s.shardLens()
		total := 0
		for _, n := range lens {
			total += n
		}
		if total < minRebalanceKeys || loadRatio(lens) <= s.opt.MaxSkew {
			break
		}
		share := total / P
		extra := total % P
		movedInPass := 0
		for a := 0; a < P-1; a++ {
			want := share
			if a < extra {
				want++
			}
			// Cheap pre-check on the sampled counts before paying for a
			// move (which parks both writers, stalls enqueues, and extracts
			// the pair): skip corrections under the same ~6% tolerance
			// moveBoundary enforces, re-sampling only the pair so earlier
			// moves in this pass are accounted for. Without this, residual
			// skew between the tolerance and MaxSkew would make every
			// monitor tick quiesce and copy out the whole set for nothing.
			la, lb := s.cellLen(a), s.cellLen(a+1)
			diff := la - want
			if diff < 0 {
				diff = -diff
			}
			if diff*16 < la+lb {
				continue
			}
			if s.moveBoundary(a, want) {
				movedInPass++
			}
		}
		moves += movedInPass
		if movedInPass == 0 {
			break
		}
	}
	return moves
}

func (s *Sharded) cellLen(p int) int {
	c := &s.cells[p]
	c.mu.RLock()
	n := c.set.Len()
	c.mu.RUnlock()
	return n
}

// moveBoundary rebalances the adjacent pair (a, a+1) by moving their
// shared boundary so the left shard keeps keepLeft keys (clamped to the
// pair's population). Reports whether a move actually happened (false
// when the set is closed or the boundary would not change).
func (s *Sharded) moveBoundary(a, keepLeft int) bool {
	b := a + 1
	s.life.Lock()
	if s.closed {
		s.life.Unlock()
		return false
	}
	// Park both writers. The tokens are the last ops in the two mailboxes:
	// enqueues need life.RLock, which we hold exclusively.
	tMove := time.Now()
	resume := make(chan struct{})
	park := newTicket(2)
	for _, p := range [2]int{a, b} {
		s.cells[p].mbox <- shardOp{kind: opQuiesce, tk: park, resume: resume}
	}
	park.wait()
	s.pm.quiesce.Since(tMove)
	unpark := func() {
		close(resume)
		s.life.Unlock()
	}

	// Both CPMAs are frozen (writers parked, mutators excluded by
	// life.Lock); extract and rebuild. Adjacent spans mean ka < kb
	// pointwise, so the concatenation is sorted and the split point is a
	// plain index.
	ka := s.cells[a].set.Keys()
	kb := s.cells[b].set.Keys()
	merged := append(ka, kb...)
	n := len(merged)
	if n < 2 {
		unpark()
		return false
	}
	splitAt := keepLeft
	if splitAt < 1 {
		splitAt = 1
	}
	if splitAt > n-1 {
		splitAt = n - 1
	}
	rt := s.router()
	newBound := merged[splitAt] // keys < newBound stay left, >= newBound go right
	oldBound := rt.bounds[a]
	if newBound == oldBound {
		unpark()
		return false
	}
	// The moved keys are the slice between the old and new boundary.
	var moved []uint64
	var src, dst int
	if newBound < oldBound {
		moved, src, dst = merged[splitAt:len(ka)], a, b
	} else {
		moved, src, dst = merged[len(ka):splitAt], b, a
	}
	// A move rebuilds both CPMAs, so marginal shifts are not worth it:
	// skip when the correction is under ~6% of the pair's population.
	// Per-pair shares then sit within that tolerance of ideal, which
	// keeps the global ratio comfortably under every supported MaxSkew
	// while letting the sweep reach a stable no-op state instead of
	// endlessly polishing boundaries under live ingest.
	if len(moved) == 0 || len(moved)*16 < n {
		unpark()
		return false
	}
	newA := cpma.FromSorted(merged[:splitAt], s.opt.Set)
	newB := cpma.FromSorted(merged[splitAt:], s.opt.Set)

	nrt := &router{
		part:    rt.part,
		shards:  rt.shards,
		bounds:  append([]uint64(nil), rt.bounds...),
		gen:     rt.gen + 1,
		spanGen: append([]uint64(nil), rt.spanGen...),
	}
	nrt.bounds[a] = newBound
	nrt.spanGen[a] = nrt.gen
	nrt.spanGen[b] = nrt.gen

	// Write-ahead: the journal sees the move before memory does. Its
	// barrier protocol (dest record, boundary table, source record — each
	// forced to disk in turn) makes every crash point recover to exactly
	// the pre- or post-move state.
	if j := s.opt.Journal; j != nil {
		if err := j.Rebalanced(src, dst, moved, nrt.gen, nrt.bounds); err != nil {
			unpark()
			panic(fmt.Sprint("shard: journal rebalance: ", err))
		}
	}

	// Install under both write locks: readers either hold a read lock now
	// (and saw the old router — consistent with the old placement they are
	// reading) or will acquire one after us and re-validate the router.
	ca, cb := &s.cells[a], &s.cells[b]
	ca.mu.Lock()
	cb.mu.Lock()
	ca.set, cb.set = newA, newB
	ca.epoch.Add(1)
	cb.epoch.Add(1)
	// The move changed which shard owns which keys, so both shards'
	// promoted-key state (whose base bits were read off the old CPMAs) is
	// demoted wholesale. Slots are clean — the quiesce-token publish
	// reconciled them, so the extracted Keys above were already the full
	// truth — and genuinely hot keys re-promote within one detector window.
	// The parked writers give the rebalancer safe access to the detectors.
	s.dropHotTables(a, ca)
	s.dropHotTables(b, cb)
	s.rt.Store(nrt)
	// Publish fresh handles at the new span generation so snapshot
	// captures converge (stale-gen handles are rejected until these land).
	sa := s.publish(a, ca)
	sb := s.publish(b, cb)
	cb.mu.Unlock()
	ca.mu.Unlock()
	if j := s.opt.Journal; j != nil {
		// The writers are still parked, so recording the published handles
		// (covering the barrier records just appended) is race-free.
		j.Published(a, sa.set)
		j.Published(b, sb.set)
	}

	s.rebalMoves.Add(1)
	s.rebalMovedKeys.Add(uint64(len(moved)))
	s.pm.move.Since(tMove)
	s.trace.Record(src, obs.EvMove, 0, nrt.gen, uint64(dst), uint64(len(moved)))
	unpark()
	return true
}

package shard

// Race coverage: these tests exercise concurrent readers against in-flight
// batch writes and concurrent writing clients. They are meaningful mostly
// under `go test -race` (the CI race job runs exactly that); without the
// detector they still verify convergence.

import (
	"slices"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/workload"
)

func TestConcurrentReadersDuringBatchWrites(t *testing.T) {
	for _, opt := range []*Options{
		{Partition: HashPartition},
		{Partition: RangePartition, KeyBits: 20},
	} {
		s := New(4, opt)
		s.InsertBatch(workload.Uniform(workload.NewRNG(1), 20000, 20), false)

		const writers, readers, rounds = 2, 4, 30
		var done atomic.Bool
		var writersWG, readersWG sync.WaitGroup
		for w := 0; w < writers; w++ {
			writersWG.Add(1)
			go func(w int) {
				defer writersWG.Done()
				r := workload.NewRNG(uint64(100 + w))
				for i := 0; i < rounds; i++ {
					s.InsertBatch(workload.Uniform(r, 2000, 20), false)
					s.RemoveBatch(workload.Uniform(r, 1000, 20), false)
				}
			}(w)
		}
		var reads atomic.Int64
		for g := 0; g < readers; g++ {
			readersWG.Add(1)
			go func(g int) {
				defer readersWG.Done()
				r := workload.NewRNG(uint64(200 + g))
				for !done.Load() {
					switch r.Intn(4) {
					case 0:
						s.Has(1 + r.Uint64()%(1<<20))
					case 1:
						start := r.Uint64() % (1 << 20)
						s.RangeSum(start, start+1024)
					case 2:
						s.Len()
					default:
						s.MapRange(1, 4096, func(uint64) bool { return true })
					}
					reads.Add(1)
				}
			}(g)
		}
		writersWG.Wait()
		done.Store(true)
		readersWG.Wait()
		if reads.Load() == 0 {
			t.Fatal("readers never ran")
		}
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestConcurrentDisjointWriters(t *testing.T) {
	const clients = 8
	const perClient = 10000
	for _, opt := range []*Options{
		{Partition: HashPartition},
		{Partition: RangePartition, KeyBits: 32},
	} {
		s := New(5, opt)
		var wg sync.WaitGroup
		for cl := 0; cl < clients; cl++ {
			wg.Add(1)
			go func(cl int) {
				defer wg.Done()
				base := uint64(cl*perClient) + 1
				batch := make([]uint64, perClient)
				for i := range batch {
					batch[i] = base + uint64(i)
				}
				for lo := 0; lo < perClient; lo += 1000 {
					s.InsertBatch(batch[lo:lo+1000], true)
				}
			}(cl)
		}
		wg.Wait()
		if got := s.Len(); got != clients*perClient {
			t.Fatalf("Len = %d, want %d", got, clients*perClient)
		}
		keys := s.Keys()
		for i, v := range keys {
			if v != uint64(i)+1 {
				t.Fatalf("Keys[%d] = %d, want %d", i, v, i+1)
			}
		}
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestAsyncIngestRace hammers the mailbox pipeline: concurrent async
// enqueuers (with occasional synchronous ticketed batches and point ops),
// readers, and a flusher, finishing with a Close that races the readers
// and flusher. Meaningful mostly under -race; without the detector it
// still verifies that Close drains every enqueued key.
func TestAsyncIngestRace(t *testing.T) {
	for _, opt := range []*Options{
		{Async: true, MailboxDepth: 4, Partition: HashPartition},
		{Async: true, MailboxDepth: 2, Partition: RangePartition, KeyBits: 18, FlushReads: true},
	} {
		s := New(4, opt)
		const writers = 4
		var wwg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wwg.Add(1)
			go func(w int) {
				defer wwg.Done()
				r := workload.NewRNG(uint64(300 + w))
				for i := 0; i < 25; i++ {
					s.InsertBatchAsync(workload.Uniform(r, 1500, 18), false)
					switch i % 5 {
					case 2:
						s.RemoveBatchAsync(workload.Uniform(r, 700, 18), false)
					case 4:
						s.InsertBatch(workload.Uniform(r, 100, 18), false) // ticketed sync path
						s.Insert(1 + r.Uint64()%(1<<18))
					}
				}
			}(w)
		}
		var done atomic.Bool
		var rwg sync.WaitGroup
		for g := 0; g < 3; g++ {
			rwg.Add(1)
			go func(g int) {
				defer rwg.Done()
				r := workload.NewRNG(uint64(400 + g))
				for !done.Load() {
					switch r.Intn(4) {
					case 0:
						s.Has(1 + r.Uint64()%(1<<18))
					case 1:
						start := r.Uint64() % (1 << 18)
						s.RangeSum(start, start+2048)
					case 2:
						s.Len()
					default:
						s.MapRange(1, 4096, func(uint64) bool { return true })
					}
				}
			}(g)
		}
		rwg.Add(1)
		go func() { // flusher: Flush must be safe against a concurrent Close
			defer rwg.Done()
			for !done.Load() {
				s.Flush()
			}
		}()
		wwg.Wait()
		s.Close()
		done.Store(true)
		rwg.Wait()
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
		st := s.IngestStats()
		if st.AppliedKeys != st.EnqueuedKeys {
			t.Fatalf("Close left keys behind: applied %d of %d", st.AppliedKeys, st.EnqueuedKeys)
		}
		if st.AppliedBatches > st.EnqueuedBatches {
			t.Fatalf("more applies than sub-batches: %+v", st)
		}
	}
}

func TestConcurrentInsertRemoveConverge(t *testing.T) {
	// Writers insert and remove overlapping uniform batches; afterwards the
	// set must equal the result of replaying the same per-client streams
	// serially per shard (which the per-shard locks guarantee), so we only
	// assert structural health and that point ops agree with membership.
	s := New(4, &Options{Partition: HashPartition})
	var wg sync.WaitGroup
	for cl := 0; cl < 4; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			r := workload.NewRNG(uint64(42 + cl))
			for i := 0; i < 20; i++ {
				s.InsertBatch(workload.Uniform(r, 3000, 14), false)
				s.RemoveBatch(workload.Uniform(r, 1500, 14), false)
				s.Insert(1 + r.Uint64()%(1<<14))
				s.Remove(1 + r.Uint64()%(1<<14))
			}
		}(cl)
	}
	wg.Wait()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	keys := s.Keys()
	if len(keys) != s.Len() {
		t.Fatalf("Keys returned %d, Len says %d", len(keys), s.Len())
	}
	for _, k := range keys[:min(len(keys), 500)] {
		if !s.Has(k) {
			t.Fatalf("key %d in Keys but Has is false", k)
		}
	}
}

// TestRebalanceRace hammers live boundary moves against everything at
// once: concurrent async writers streaming maximally skewed disjoint
// insert streams (sequential keys — the worst case for RangePartition),
// readers, snapshotters, a flusher, the background monitor, and a
// goroutine spamming manual sweeps. Because the writers' streams are
// disjoint inserts, the final state is exact: every key must survive
// every boundary handoff. Meaningful mostly under -race; without the
// detector it still verifies that no key is lost or duplicated across
// concurrent rebalances.
func TestRebalanceRace(t *testing.T) {
	const writers, perWriter, bits = 4, 20000, 28
	s := New(5, &Options{
		Partition: RangePartition, KeyBits: bits, Async: true, MailboxDepth: 4,
		Rebalance: true, RebalanceEvery: time.Millisecond, MaxSkew: 1.3,
	})
	var wwg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wwg.Add(1)
		go func(w int) {
			defer wwg.Done()
			base := uint64(w*perWriter) + 1
			batch := make([]uint64, perWriter)
			for i := range batch {
				batch[i] = base + uint64(i)
			}
			for lo := 0; lo < perWriter; lo += 500 {
				s.InsertBatch(batch[lo:lo+500], true)
			}
		}(w)
	}
	var done atomic.Bool
	var rwg sync.WaitGroup
	for g := 0; g < 3; g++ {
		rwg.Add(1)
		go func(g int) {
			defer rwg.Done()
			r := workload.NewRNG(uint64(800 + g))
			for !done.Load() {
				switch r.Intn(5) {
				case 0:
					s.Has(1 + r.Uint64()%(writers*perWriter))
				case 1:
					start := r.Uint64() % (writers * perWriter)
					s.RangeSum(start, start+2048)
				case 2:
					s.Len()
				case 3:
					sn := s.Snapshot()
					if n := len(sn.Keys()); n != sn.Len() {
						t.Errorf("snapshot inconsistent during rebalance: %d keys, Len %d", n, sn.Len())
						return
					}
				default:
					s.MapRange(1, 4096, func(uint64) bool { return true })
				}
			}
		}(g)
	}
	rwg.Add(2)
	go func() { // flusher
		defer rwg.Done()
		for !done.Load() {
			s.Flush()
		}
	}()
	go func() { // manual sweeps racing the background monitor
		defer rwg.Done()
		for !done.Load() {
			s.RebalanceOnce()
		}
	}()
	wwg.Wait()
	s.Flush()
	s.RebalanceOnce()
	done.Store(true)
	rwg.Wait()
	if got := s.Len(); got != writers*perWriter {
		t.Fatalf("lost or duplicated keys across rebalances: Len = %d, want %d", got, writers*perWriter)
	}
	keys := s.Keys()
	for i, v := range keys {
		if v != uint64(i)+1 {
			t.Fatalf("Keys[%d] = %d, want %d", i, v, i+1)
		}
	}
	if ratio, lens := s.LoadRatio(); ratio > 1.5 {
		t.Fatalf("rebalancer left ratio %.2f (lens %v)", ratio, lens)
	}
	if bounds := s.Bounds(); !slices.IsSorted(bounds) {
		t.Fatalf("boundary table unsorted: %v", bounds)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Post-Close: snapshots and reads still serve the final state.
	if sn := s.Snapshot(); sn.Len() != writers*perWriter {
		t.Fatalf("post-Close snapshot Len = %d", sn.Len())
	}
}

// TestSnapshotRace hammers Snapshot capture and scans against concurrent
// async ingest (fire-and-forget, ticketed, and point ops), Flush, and a
// Close racing the snapshotters. Every snapshot's reads must stay mutually
// consistent while the set churns, a snapshot captured mid-run must keep
// serving reads after the set is closed (snapshot outlives Close), and a
// capture after Close must equal the fully drained state.
func TestSnapshotRace(t *testing.T) {
	for _, opt := range []*Options{
		{Async: true, MailboxDepth: 4, Partition: HashPartition},
		{Async: true, MailboxDepth: 2, Partition: RangePartition, KeyBits: 18},
	} {
		s := New(4, opt)
		const writers = 3
		var wwg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wwg.Add(1)
			go func(w int) {
				defer wwg.Done()
				r := workload.NewRNG(uint64(500 + w))
				for i := 0; i < 20; i++ {
					s.InsertBatchAsync(workload.Uniform(r, 1000, 18), false)
					switch i % 5 {
					case 2:
						s.RemoveBatchAsync(workload.Uniform(r, 500, 18), false)
					case 4:
						s.InsertBatch(workload.Uniform(r, 100, 18), false)
						s.Insert(1 + r.Uint64()%(1<<18))
					}
				}
			}(w)
		}
		var done atomic.Bool
		var rwg sync.WaitGroup
		var kept atomic.Pointer[Snapshot]
		for g := 0; g < 3; g++ {
			rwg.Add(1)
			go func(g int) {
				defer rwg.Done()
				r := workload.NewRNG(uint64(600 + g))
				for !done.Load() {
					sn := s.Snapshot()
					n := 0
					sn.Map(func(uint64) bool { n++; return true })
					if n != sn.Len() {
						t.Errorf("snapshot scan visits %d keys, Len says %d", n, sn.Len())
						return
					}
					start := r.Uint64() % (1 << 18)
					sn.RangeSum(start, start+4096)
					sn.Next(1 + r.Uint64()%(1<<18))
					sn.Has(1 + r.Uint64()%(1<<18))
					kept.Store(sn)
				}
			}(g)
		}
		rwg.Add(1)
		go func() { // flusher: Flush must be safe against capture and Close
			defer rwg.Done()
			for !done.Load() {
				s.Flush()
			}
		}()
		wwg.Wait()
		s.Close()
		fin := s.Snapshot() // capture racing the snapshotters, after Close
		done.Store(true)
		rwg.Wait()

		if sn := kept.Load(); sn != nil {
			if err := sn.Validate(); err != nil {
				t.Fatalf("kept snapshot invalid after Close: %v", err)
			}
			if got := len(sn.Keys()); got != sn.Len() {
				t.Fatalf("kept snapshot inconsistent after Close: %d keys, Len %d", got, sn.Len())
			}
		}
		if fin.Len() != s.Len() || fin.Sum() != s.Sum() {
			t.Fatalf("post-Close snapshot = %d/%d, live %d/%d", fin.Len(), fin.Sum(), s.Len(), s.Sum())
		}
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSnapshotSyncRace: sync-mode captures (which clone under all read
// locks) racing batch writers and each other.
func TestSnapshotSyncRace(t *testing.T) {
	s := New(4, &Options{Partition: HashPartition})
	s.InsertBatch(workload.Uniform(workload.NewRNG(8), 20000, 20), false)
	var wwg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wwg.Add(1)
		go func(w int) {
			defer wwg.Done()
			r := workload.NewRNG(uint64(700 + w))
			for i := 0; i < 20; i++ {
				s.InsertBatch(workload.Uniform(r, 2000, 20), false)
				s.RemoveBatch(workload.Uniform(r, 1000, 20), false)
			}
		}(w)
	}
	var done atomic.Bool
	var rwg sync.WaitGroup
	for g := 0; g < 3; g++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			for !done.Load() {
				sn := s.Snapshot()
				if got := len(sn.Keys()); got != sn.Len() {
					t.Errorf("snapshot inconsistent: %d keys, Len %d", got, sn.Len())
					return
				}
			}
		}()
	}
	wwg.Wait()
	done.Store(true)
	rwg.Wait()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

package shard

import (
	"reflect"
	"slices"
	"sync"
	"testing"
	"time"

	"repro/internal/workload"
)

// hotOpts builds a hot-key-enabled async Options with a tiny detector
// window so tests promote within a few batches.
func hotOpts(part Partition) *Options {
	o := &Options{
		Partition:    part,
		Set:          smallSet,
		Async:        true,
		MailboxDepth: 4,
		HotKeys:      true,
		HotKeyEvery:  64,
		HotKeyFrac:   0.05,
		HotKeyMax:    8,
	}
	if part == RangePartition {
		o.KeyBits = 16
	}
	return o
}

// TestHotKeyOverlayReads pins every overlay read path deterministically:
// a hand-installed promoted-key table with dirty slots must make live
// reads behave exactly as if the pending ops had been applied, and the
// next Flush must reconcile the slots into the CPMA verbatim. White-box —
// it bypasses detection so the overlay arithmetic is isolated from
// promotion timing.
func TestHotKeyOverlayReads(t *testing.T) {
	for _, part := range []Partition{HashPartition, RangePartition} {
		name := "hash"
		if part == RangePartition {
			name = "range"
		}
		t.Run(name, func(t *testing.T) {
			opt := hotOpts(part)
			opt.HotKeyEvery = 1 << 30 // never retune: the table stays as installed
			s := New(1, opt)
			t.Cleanup(s.Close)
			s.InsertBatch([]uint64{10, 20, 30, 100, 200}, true)
			s.Flush()

			// Overlay: remove 10 and 200 (the max), add 25, plus two no-op
			// pending slots (insert of a present key, remove of an absent
			// one) that must contribute nothing.
			c := &s.cells[0]
			c.mu.Lock()
			c.hot.Store(&hotTable{
				keys: []uint64{10, 25, 30, 40, 200},
				slots: []*hotSlot{
					{base: true, pend: pendRemove},
					{base: false, pend: pendInsert},
					{base: true, pend: pendInsert},
					{base: false, pend: pendRemove},
					{base: true, pend: pendRemove},
				},
			})
			c.mu.Unlock()

			want := []uint64{20, 25, 30, 100}
			if got := s.Keys(); !slices.Equal(got, want) {
				t.Fatalf("Keys = %v, want %v", got, want)
			}
			if got := s.Len(); got != 4 {
				t.Fatalf("Len = %d, want 4", got)
			}
			if got := s.Sum(); got != 175 {
				t.Fatalf("Sum = %d, want 175", got)
			}
			for k, present := range map[uint64]bool{10: false, 20: true, 25: true, 30: true, 40: false, 100: true, 200: false} {
				if s.Has(k) != present {
					t.Fatalf("Has(%d) = %v, want %v", k, s.Has(k), present)
				}
			}
			if v, ok := s.Next(1); !ok || v != 20 {
				t.Fatalf("Next(1) = %d,%v want 20 (overlay-removed 10 not skipped)", v, ok)
			}
			if v, ok := s.Next(21); !ok || v != 25 {
				t.Fatalf("Next(21) = %d,%v want overlay-added 25", v, ok)
			}
			if v, ok := s.Next(101); ok {
				t.Fatalf("Next(101) = %d, want none (200 is overlay-removed)", v)
			}
			if v, ok := s.Max(); !ok || v != 100 {
				t.Fatalf("Max = %d,%v want 100 (walk below the removed max)", v, ok)
			}
			if sum, n := s.RangeSum(10, 30); sum != 45 || n != 2 {
				t.Fatalf("RangeSum[10,30) = %d,%d want 45,2", sum, n)
			}
			visited := 0
			if s.MapRange(1, 1<<15, func(uint64) bool { visited++; return visited < 2 }) {
				t.Fatal("MapRange ignored early stop through the overlay")
			}

			// Flush reconciles: the CPMA itself must now hold the effective
			// set, the slots must be clean, and reads unchanged.
			s.Flush()
			c.mu.RLock()
			got := c.set.Keys()
			ht := c.hot.Load()
			for i, sl := range ht.slots {
				if sl.pend != pendNone {
					t.Fatalf("slot %d dirty after Flush", i)
				}
				if wantBase := slices.Contains(want, ht.keys[i]); sl.base != wantBase {
					t.Fatalf("slot %d base = %v after reconcile, want %v", i, sl.base, wantBase)
				}
			}
			c.mu.RUnlock()
			if !slices.Equal(got, want) {
				t.Fatalf("CPMA after reconcile = %v, want %v", got, want)
			}
			if got := s.Keys(); !slices.Equal(got, want) {
				t.Fatalf("Keys after reconcile = %v, want %v", got, want)
			}
			sn := s.Snapshot()
			if !slices.Equal(sn.Keys(), want) {
				t.Fatalf("Snapshot after reconcile = %v, want %v", sn.Keys(), want)
			}
			if st := s.IngestStats(); st.ReconcileBatches == 0 {
				t.Fatalf("no reconcile batches counted: %+v", st)
			}

			// Second overlay phase: a pending-added key above the current
			// max must win Max.
			c.mu.Lock()
			c.hot.Store(&hotTable{
				keys:  []uint64{5000},
				slots: []*hotSlot{{base: false, pend: pendInsert}},
			})
			c.mu.Unlock()
			if v, ok := s.Max(); !ok || v != 5000 {
				t.Fatalf("Max = %d,%v want overlay-added 5000", v, ok)
			}
			s.Flush()
			if !s.Has(5000) {
				t.Fatal("5000 lost by reconcile")
			}
			if err := s.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestHotKeyAbsorptionDifferential streams hot-spot traffic (rotating hot
// sets, mixed inserts and removes) through the absorber and checks every
// read against a model after each Flush — the exact-result differential
// the absorber must preserve end to end. The rotation forces promotion
// AND demotion churn mid-stream.
func TestHotKeyAbsorptionDifferential(t *testing.T) {
	for _, part := range []Partition{HashPartition, RangePartition} {
		name := "hash"
		if part == RangePartition {
			name = "range"
		}
		t.Run(name, func(t *testing.T) {
			s := New(4, hotOpts(part))
			t.Cleanup(s.Close)
			r := workload.NewRNG(41)
			model := map[uint64]bool{}

			apply := func(keys []uint64, remove bool) {
				for _, k := range keys {
					if remove {
						delete(model, k)
					} else {
						model[k] = true
					}
				}
				if remove {
					s.RemoveBatchAsync(keys, false)
				} else {
					s.InsertBatchAsync(keys, false)
				}
			}
			check := func(round int) {
				t.Helper()
				want := make([]uint64, 0, len(model))
				var wantSum uint64
				for k := range model {
					want = append(want, k)
					wantSum += k
				}
				slices.Sort(want)
				if got := s.Len(); got != len(want) {
					t.Fatalf("round %d: Len = %d, want %d", round, got, len(want))
				}
				if got := s.Sum(); got != wantSum {
					t.Fatalf("round %d: Sum = %d, want %d", round, got, wantSum)
				}
				if got := s.Keys(); !slices.Equal(got, want) {
					t.Fatalf("round %d: Keys diverge (%d vs %d keys)", round, len(got), len(want))
				}
				for trial := 0; trial < 20; trial++ {
					k := 1 + r.Uint64()%(1<<16)
					if s.Has(k) != model[k] {
						t.Fatalf("round %d: Has(%d) = %v, want %v", round, k, s.Has(k), model[k])
					}
					start := r.Uint64() % (1 << 16)
					end := start + r.Uint64()%(1<<13)
					var ws uint64
					wc := 0
					for _, k := range want {
						if k >= start && k < end {
							ws += k
							wc++
						}
					}
					if gs, gc := s.RangeSum(start, end); gs != ws || gc != wc {
						t.Fatalf("round %d: RangeSum[%d,%d) = %d,%d want %d,%d", round, start, end, gs, gc, ws, wc)
					}
				}
				if len(want) > 0 {
					if v, ok := s.Max(); !ok || v != want[len(want)-1] {
						t.Fatalf("round %d: Max = %d,%v want %d", round, v, ok, want[len(want)-1])
					}
					if v, ok := s.Min(); !ok || v != want[0] {
						t.Fatalf("round %d: Min = %d,%v want %d", round, v, ok, want[0])
					}
				}
			}

			const rounds = 150
			for round := 0; round < rounds; round++ {
				// The hot set rotates every 40 rounds so earlier hot keys
				// cool down and demote while new ones promote.
				hotBase := uint64(round/40) * 4
				n := 1 + r.Intn(100)
				keys := workload.Uniform(r, n, 16)
				for i := 0; i < 2*n; i++ {
					keys = append(keys, hotBase+1+uint64(r.Intn(4)))
				}
				apply(keys, round%4 == 3)
				if round%10 == 9 {
					s.Flush()
					check(round)
				}
			}
			s.Flush()
			check(rounds)
			if err := s.Validate(); err != nil {
				t.Fatal(err)
			}
			st := s.IngestStats()
			if st.AbsorbedKeys == 0 {
				t.Fatalf("nothing absorbed: %+v", st)
			}
			if st.HotKeys == 0 {
				t.Fatalf("nothing promoted: %+v", st)
			}
			if st.Demotions == 0 {
				t.Fatalf("rotation produced no demotions: %+v", st)
			}
			if st.ReconcileBatches == 0 {
				t.Fatalf("no reconcile batches: %+v", st)
			}
			if st.AppliedKeys+st.AbsorbedKeys != st.EnqueuedKeys {
				t.Fatalf("key conservation broken: applied %d + absorbed %d != enqueued %d",
					st.AppliedKeys, st.AbsorbedKeys, st.EnqueuedKeys)
			}
		})
	}
}

// TestHotKeyExactTicketedCounts: once a key is promoted, blocking point
// ops route through the absorbed path and must still report exact
// fresh/present answers (from the slot's effective-membership flip), and
// reads between them must see each op immediately (read-your-writes via
// the overlay).
func TestHotKeyExactTicketedCounts(t *testing.T) {
	opt := hotOpts(HashPartition)
	opt.HotKeyEvery = 256
	s := New(2, opt)
	t.Cleanup(s.Close)
	const k = uint64(7777)

	blast := make([]uint64, 400)
	for i := range blast {
		blast[i] = k
	}
	promoted := func() bool { return slices.Contains(s.HotKeys(), k) }
	for try := 0; try < 50 && !promoted(); try++ {
		s.InsertBatchAsync(blast, true)
		s.Flush()
	}
	if !promoted() {
		t.Fatalf("key %d never promoted: %+v", k, s.IngestStats())
	}

	if !s.Has(k) {
		t.Fatal("promoted key lost")
	}
	if s.Insert(k) {
		t.Fatal("Insert of present promoted key reported fresh")
	}
	if !s.Remove(k) {
		t.Fatal("Remove of present promoted key reported absent")
	}
	if s.Has(k) {
		t.Fatal("read-your-writes: removed key still visible")
	}
	if s.Remove(k) {
		t.Fatal("second Remove reported present")
	}
	if !s.Insert(k) {
		t.Fatal("Insert of absent promoted key reported duplicate")
	}
	if !s.Has(k) {
		t.Fatal("read-your-writes: inserted key invisible")
	}
	if s.Insert(k) {
		t.Fatal("second Insert reported fresh")
	}
	s.Flush()
	if !s.Has(k) {
		t.Fatal("key lost across reconcile")
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestStatsSubFieldCompleteness reflects over the counter structs' fields
// and pins their Sub methods to complete coverage: a field added without
// Sub support surfaces here as a zero delta. RebalanceStats.Gen is the
// one documented carry-not-subtract exception.
func TestStatsSubFieldCompleteness(t *testing.T) {
	check := func(name string, st, prev, got reflect.Value, carried map[string]bool) {
		t.Helper()
		typ := st.Type()
		for i := 0; i < typ.NumField(); i++ {
			f := typ.Field(i)
			if f.Type.Kind() != reflect.Uint64 {
				t.Fatalf("%s.%s is %v; the reflection harness assumes uint64 counters — extend it", name, f.Name, f.Type)
			}
			want := st.Field(i).Uint() - prev.Field(i).Uint()
			if carried[f.Name] {
				want = st.Field(i).Uint()
			}
			if g := got.Field(i).Uint(); g != want {
				t.Fatalf("%s.Sub dropped field %s: got %d, want %d", name, f.Name, g, want)
			}
		}
	}
	fill := func(v reflect.Value, mul uint64) {
		for i := 0; i < v.NumField(); i++ {
			v.Field(i).SetUint(uint64(i+1) * mul)
		}
	}

	var ist, iprev IngestStats
	fill(reflect.ValueOf(&ist).Elem(), 100)
	fill(reflect.ValueOf(&iprev).Elem(), 1)
	check("IngestStats", reflect.ValueOf(ist), reflect.ValueOf(iprev),
		reflect.ValueOf(ist.Sub(iprev)), nil)

	var pst, pprev PersistStats
	fill(reflect.ValueOf(&pst).Elem(), 100)
	fill(reflect.ValueOf(&pprev).Elem(), 1)
	check("PersistStats", reflect.ValueOf(pst), reflect.ValueOf(pprev),
		reflect.ValueOf(pst.Sub(pprev)), nil)

	var sst, sprev SnapshotStats
	fill(reflect.ValueOf(&sst).Elem(), 100)
	fill(reflect.ValueOf(&sprev).Elem(), 1)
	check("SnapshotStats", reflect.ValueOf(sst), reflect.ValueOf(sprev),
		reflect.ValueOf(sst.Sub(sprev)), nil)

	var rst, rprev RebalanceStats
	fill(reflect.ValueOf(&rst).Elem(), 100)
	fill(reflect.ValueOf(&rprev).Elem(), 1)
	check("RebalanceStats", reflect.ValueOf(rst), reflect.ValueOf(rprev),
		reflect.ValueOf(rst.Sub(rprev)), map[string]bool{"Gen": true})
}

// TestHotKeyRace is the promote/demote hammer: concurrent clients blast
// shared hot keys (phase-shifted so promotions and demotions happen while
// traffic is live) and insert/remove disjoint private streams, racing
// readers, snapshot captures, Flush, Checkpoint, and the live rebalancer
// (whose boundary moves demote wholesale). The disjoint streams plus
// insert-only hot keys make the final state exact, so any key lost or
// duplicated by an absorb/reconcile/demote handoff fails the run. The CI
// race job runs this under -race.
func TestHotKeyRace(t *testing.T) {
	opt := &Options{
		Partition:    RangePartition,
		KeyBits:      20,
		Set:          smallSet,
		Async:        true,
		MailboxDepth: 4,
		HotKeys:      true,
		HotKeyEvery:  64,
		HotKeyFrac:   0.05,
		HotKeyMax:    8,
		Rebalance:    true,
		MaxSkew:      1.2,
		// 1ms: boundary moves race ingest/reconcile/demote constantly.
		RebalanceEvery: time.Millisecond,
	}
	s := New(4, opt)
	const (
		clients = 4
		perCli  = 4000
		stride  = 1 << 16
	)
	hotA := []uint64{11, 12, 13}
	hotB := []uint64{21, 22, 23}

	var wg sync.WaitGroup
	done := make(chan struct{})
	// Readers and barrier callers race the whole run.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := workload.NewRNG(uint64(100 + g))
			for {
				select {
				case <-done:
					return
				default:
				}
				switch r.Intn(6) {
				case 0:
					s.Len()
				case 1:
					s.Has(hotA[r.Intn(len(hotA))])
				case 2:
					s.Snapshot().Sum()
				case 3:
					s.Flush()
				case 4:
					s.Max()
				case 5:
					if err := s.Checkpoint(); err != nil {
						panic(err)
					}
				}
			}
		}(g)
	}

	var cwg sync.WaitGroup
	for cl := 0; cl < clients; cl++ {
		cwg.Add(1)
		go func(cl int) {
			defer cwg.Done()
			r := workload.NewRNG(uint64(cl + 1))
			base := uint64(1<<18 + cl*stride)
			buf := make([]uint64, 0, 128)
			for i := 0; i < perCli; i++ {
				buf = append(buf[:0], base+uint64(i))
				// Blast the phase's hot keys so they promote, then cool As
				// demote while Bs heat up mid-run.
				hot := hotA
				if i > perCli/2 {
					hot = hotB
				}
				for j := 0; j < 100; j++ {
					buf = append(buf, hot[r.Intn(len(hot))])
				}
				s.InsertBatchAsync(buf, false)
				if i%64 == 63 {
					// Remove a settled slice of this client's private
					// stream (disjoint from all other writers).
					lo := base + uint64(i-63)
					rm := make([]uint64, 0, 32)
					for k := lo; k < lo+32; k++ {
						rm = append(rm, k)
					}
					s.RemoveBatchAsync(rm, true)
				}
			}
		}(cl)
	}
	cwg.Wait()
	close(done)
	wg.Wait()
	s.Flush()

	// Exact final state: every client's stream minus its removed slices,
	// plus both hot sets (insert-only).
	want := map[uint64]bool{}
	for _, k := range append(append([]uint64{}, hotA...), hotB...) {
		want[k] = true
	}
	for cl := 0; cl < clients; cl++ {
		base := uint64(1<<18 + cl*stride)
		for i := 0; i < perCli; i++ {
			want[base+uint64(i)] = true
		}
		for i := 63; i < perCli; i += 64 {
			lo := base + uint64(i-63)
			for k := lo; k < lo+32; k++ {
				delete(want, k)
			}
		}
	}
	if got := s.Len(); got != len(want) {
		t.Fatalf("Len = %d, want %d", got, len(want))
	}
	var wantSum uint64
	for k := range want {
		wantSum += k
	}
	if got := s.Sum(); got != wantSum {
		t.Fatalf("Sum = %d, want %d", got, wantSum)
	}
	for _, k := range s.Keys() {
		if !want[k] {
			t.Fatalf("unexpected key %d in final state", k)
		}
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	st := s.IngestStats()
	if st.AbsorbedKeys == 0 || st.HotKeys == 0 {
		t.Fatalf("absorber never engaged: %+v", st)
	}
	if st.AppliedKeys+st.AbsorbedKeys != st.EnqueuedKeys {
		t.Fatalf("key conservation broken: %+v", st)
	}
	s.Close()
	if got := s.Len(); got != len(want) {
		t.Fatalf("Len after Close = %d, want %d", got, len(want))
	}
}

package shard

// Pipeline observability: always-on aggregate latency histograms over the
// ingest pipeline's stages plus a per-shard lifecycle event trace. The
// recording discipline is one time.Now per drain (plus one per enqueue
// call, amortized over the whole batch), never per key: enqueue stamps
// each mailed sub-batch once, and the writer reads the clock twice per
// drain to derive residency, drain duration, and coalesce width for
// everything it just applied. Histograms are lock-free (three atomic adds
// per Record) and live on the Sharded set itself, so they survive — and
// stay readable after — Close.
//
// RegisterMetrics exposes everything through an obs.Registry; nothing is
// exported anywhere until the caller opts in (obs.Serve).

import (
	"repro/internal/obs"
)

// pipeMetrics aggregates the pipeline histograms across all shards. All
// durations are nanoseconds.
type pipeMetrics struct {
	residency  obs.Histogram // enqueue -> applied mailbox residency per sub-batch
	drain      obs.Histogram // one writer drain: WAL append + apply + reconcile + publish
	coalesce   obs.Histogram // keys merged into one drain (the coalescing win, as a distribution)
	publish    obs.Histogram // one copy-on-write publication (cpma.Clone)
	reconcile  obs.Histogram // one hot-key reconcile that folded dirty slots
	quiesce    obs.Histogram // rebalance pair park: tokens sent -> both writers at rest
	move       obs.Histogram // whole rebalance boundary move
	capture    obs.Histogram // one Snapshot() capture
	checkpoint obs.Histogram // one Checkpoint() barrier: flush + journal checkpoint
}

// PipelineLatencies is a frozen capture of the pipeline histograms —
// plain values, safe to keep, subtract, and merge. Field names mirror
// pipeMetrics; see RegisterMetrics for units and recording sites.
type PipelineLatencies struct {
	Residency  obs.HistSnap
	Drain      obs.HistSnap
	Coalesce   obs.HistSnap
	Publish    obs.HistSnap
	Reconcile  obs.HistSnap
	Quiesce    obs.HistSnap
	Move       obs.HistSnap
	Capture    obs.HistSnap
	Checkpoint obs.HistSnap
}

// PipelineLatencies captures the current pipeline histograms.
func (s *Sharded) PipelineLatencies() PipelineLatencies {
	return PipelineLatencies{
		Residency:  s.pm.residency.Snapshot(),
		Drain:      s.pm.drain.Snapshot(),
		Coalesce:   s.pm.coalesce.Snapshot(),
		Publish:    s.pm.publish.Snapshot(),
		Reconcile:  s.pm.reconcile.Snapshot(),
		Quiesce:    s.pm.quiesce.Snapshot(),
		Move:       s.pm.move.Snapshot(),
		Capture:    s.pm.capture.Snapshot(),
		Checkpoint: s.pm.checkpoint.Snapshot(),
	}
}

// Sub returns the per-histogram deltas l - prev (for measuring one phase).
func (l PipelineLatencies) Sub(prev PipelineLatencies) PipelineLatencies {
	return PipelineLatencies{
		Residency:  l.Residency.Sub(prev.Residency),
		Drain:      l.Drain.Sub(prev.Drain),
		Coalesce:   l.Coalesce.Sub(prev.Coalesce),
		Publish:    l.Publish.Sub(prev.Publish),
		Reconcile:  l.Reconcile.Sub(prev.Reconcile),
		Quiesce:    l.Quiesce.Sub(prev.Quiesce),
		Move:       l.Move.Sub(prev.Move),
		Capture:    l.Capture.Sub(prev.Capture),
		Checkpoint: l.Checkpoint.Sub(prev.Checkpoint),
	}
}

// Trace returns the set's lifecycle event trace: per-shard rings of
// drain/publish/promote/demote/move events plus a global ring for
// checkpoints, each stamped with the epoch and router generation current
// when it fired. Attach it to an obs.Server (AddTrace) to expose /tracez.
func (s *Sharded) Trace() *obs.Trace { return s.trace }

// RegisterMetrics registers every metric the set exports into r under
// prefix ("cpma" when empty): the stage latency histograms plus all
// legacy stats counters (IngestStats, SnapshotStats, RebalanceStats, and
// on a durable set PersistStats and the journal's WAL-level histograms),
// unified through the registry's scrape-time snapshot path. Scrapes never
// block the pipeline and remain valid after Close.
func (s *Sharded) RegisterMetrics(r *obs.Registry, prefix string) {
	if prefix == "" {
		prefix = "cpma"
	}
	pm := &s.pm
	r.RegisterHistogram(prefix+"_mailbox_residency_ns", "ns", "enqueue-to-apply mailbox residency per sub-batch", &pm.residency)
	r.RegisterHistogram(prefix+"_drain_ns", "ns", "one writer drain: WAL append, apply, reconcile, publish", &pm.drain)
	r.RegisterHistogram(prefix+"_coalesce_keys", "keys", "keys coalesced into one drain", &pm.coalesce)
	r.RegisterHistogram(prefix+"_publish_ns", "ns", "one copy-on-write publication (cpma.Clone)", &pm.publish)
	r.RegisterHistogram(prefix+"_reconcile_ns", "ns", "one hot-key reconcile folding absorbed state into the CPMA", &pm.reconcile)
	r.RegisterHistogram(prefix+"_quiesce_ns", "ns", "rebalance pair park: quiesce tokens sent to both writers at rest", &pm.quiesce)
	r.RegisterHistogram(prefix+"_move_ns", "ns", "one whole rebalance boundary move", &pm.move)
	r.RegisterHistogram(prefix+"_snapshot_capture_ns", "ns", "one Snapshot() capture", &pm.capture)
	r.RegisterHistogram(prefix+"_checkpoint_ns", "ns", "one Checkpoint() barrier: flush plus journal checkpoint", &pm.checkpoint)
	r.Stats(prefix+"_ingest", "batch traffic counters (IngestStats)", func() any { return s.IngestStats() })
	r.Stats(prefix+"_snapshot", "snapshot machinery counters (SnapshotStats)", func() any { return s.SnapshotStats() })
	r.Stats(prefix+"_rebalance", "rebalancer counters (RebalanceStats)", func() any { return s.RebalanceStats() })
	if j := s.opt.Journal; j != nil {
		r.Stats(prefix+"_persist", "durability journal counters (PersistStats)", func() any { return j.Stats() })
		if mr, ok := j.(interface {
			RegisterMetrics(*obs.Registry, string)
		}); ok {
			mr.RegisterMetrics(r, prefix+"_wal")
		}
	}
}

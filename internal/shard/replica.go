package shard

// Replica mode: a read-only Sharded set driven by a replication applier
// (repro/internal/repl) instead of clients. A replica runs the synchronous
// engine with no mailboxes, no journal, and no rebalancer — its mutation
// history arrives pre-serialized as per-shard WAL records, already sorted
// and already routed, so the only writes it needs are the applier's
// ReplicaApply/ReplicaReset/ReplicaSetBounds below. Everything on the
// read side — live atomic-cut reads, Snapshot (the sync-mode capture:
// all read locks, clone-if-changed publication), SnapshotStats — works
// unchanged, which is the point: a follower serves the exact read API the
// primary does, off state that is always a per-shard prefix of the
// primary's acknowledged history.
//
// Client mutations (Insert, InsertBatch, ...) panic on a replica: the
// replica's state must be a pure function of the replicated log, and a
// single locally inserted key would silently break the prefix invariant
// the differential harness (and any failover story) depends on.

import (
	"repro/internal/cpma"
)

// NewReplica returns a read-only Sharded set for a replication follower.
// Only the geometry and read-side options are honored (Partition, KeyBits,
// Bounds, BoundsGen, Set); ingest options are ignored — appliers write
// through the Replica* methods, clients through none.
func NewReplica(shards int, opts *Options) *Sharded {
	var o Options
	if opts != nil {
		o = *opts
	}
	ro := Options{
		Partition: o.Partition,
		KeyBits:   o.KeyBits,
		Bounds:    o.Bounds,
		BoundsGen: o.BoundsGen,
		Set:       o.Set,
	}
	s := newSharded(shards, nil, &ro)
	s.replica = true
	return s
}

// Replica reports whether this set is a read-only replication follower.
func (s *Sharded) Replica() bool { return s.replica }

// checkNotReplica guards the client mutation entry points.
func (s *Sharded) checkNotReplica() {
	if s.replica {
		panic("shard: client mutation on a replication follower (replicas only change by replay)")
	}
}

// ReplicaApply applies one replicated record to shard p: a sorted key
// batch, inserted or removed exactly as the primary's writer applied it.
// Returns the number of keys whose membership changed. Caller is the
// single applier goroutine; concurrent readers are safe (the shard's
// write lock serializes them), concurrent appliers on one shard are not.
func (s *Sharded) ReplicaApply(p int, remove bool, keys []uint64) int {
	if !s.replica {
		panic("shard: ReplicaApply on a non-replica set")
	}
	c := &s.cells[p]
	c.enqBatches.Add(1)
	c.enqKeys.Add(uint64(len(keys)))
	c.appBatches.Add(1)
	c.appKeys.Add(uint64(len(keys)))
	c.mu.Lock()
	var n int
	if remove {
		n = c.set.RemoveBatch(keys, true)
	} else {
		n = c.set.InsertBatch(keys, true)
	}
	if n > 0 {
		c.epoch.Add(1)
	}
	c.mu.Unlock()
	return n
}

// ReplicaReset replaces shard p's entire state — the bootstrap path: the
// applier installs a checkpoint-chain state received from the primary and
// resumes record replay from the sequence it covers. Ownership of set
// transfers to the shard.
func (s *Sharded) ReplicaReset(p int, set *cpma.CPMA) {
	if !s.replica {
		panic("shard: ReplicaReset on a non-replica set")
	}
	if set == nil {
		set = cpma.New(s.opt.Set)
	}
	c := &s.cells[p]
	c.mu.Lock()
	c.set = set
	c.epoch.Add(1)
	c.mu.Unlock()
}

// ReplicaSetBounds installs the primary's boundary table at router
// generation gen, so the follower's range routing (shardSpan on reads,
// span pruning on MapRange) matches the shard contents the replicated
// moves produce. Stale or repeated generations are ignored. Single
// applier goroutine; concurrent readers revalidate the router pointer
// after locking and simply retry across the swap, exactly as they do on
// the primary. No-op under HashPartition.
func (s *Sharded) ReplicaSetBounds(gen uint64, bounds []uint64) {
	if !s.replica {
		panic("shard: ReplicaSetBounds on a non-replica set")
	}
	if s.opt.Partition != RangePartition || len(s.cells) < 2 {
		return
	}
	old := s.rt.Load()
	if gen <= old.gen {
		return
	}
	nb := append([]uint64(nil), bounds...)
	checkBounds(nb, len(s.cells))
	sg := make([]uint64, len(s.cells))
	for i := range sg {
		sg[i] = gen
	}
	s.rt.Store(&router{
		part:    RangePartition,
		shards:  len(s.cells),
		bounds:  nb,
		gen:     gen,
		spanGen: sg,
	})
}

// RouterBounds returns the current boundary table (a copy; nil under
// HashPartition) and its router generation from one atomic router load —
// the pair a replication shipper forwards to followers, where reading
// them in separate calls could pair a table with a neighboring
// generation across a concurrent move.
func (s *Sharded) RouterBounds() (gen uint64, bounds []uint64) {
	rt := s.router()
	if rt.bounds == nil {
		return rt.gen, nil
	}
	return rt.gen, append([]uint64(nil), rt.bounds...)
}

// ShardKeys returns shard p's keys in ascending order under its read
// lock — the differential harness's per-shard comparison primitive (the
// prefix invariant is per shard, so the comparison must be too; a
// cross-shard read would route through bounds that may sit at a different
// point of the move history than the shard contents do).
func (s *Sharded) ShardKeys(p int) []uint64 {
	c := &s.cells[p]
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.set.Keys()
}

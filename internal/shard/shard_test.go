package shard

import (
	"testing"

	"repro/internal/cpma"
	"repro/internal/workload"
)

func configs() map[string]*Options {
	return map[string]*Options{
		"hash-1":        {Partition: HashPartition},
		"hash-4":        {Partition: HashPartition},
		"hash-7":        {Partition: HashPartition},
		"range-4":       {Partition: RangePartition, KeyBits: workload.UniformBits},
		"range-5":       {Partition: RangePartition, KeyBits: 64},
		"range-64":      {Partition: RangePartition, KeyBits: 16},
		"async-hash-1":  {Partition: HashPartition, Async: true, MailboxDepth: 2},
		"async-hash-4":  {Partition: HashPartition, Async: true, MailboxDepth: 4},
		"async-range-4": {Partition: RangePartition, KeyBits: workload.UniformBits, Async: true, MailboxDepth: 4, FlushReads: true},
	}
}

func shardCount(name string) int {
	switch name {
	case "hash-1", "async-hash-1":
		return 1
	case "hash-4", "range-4", "async-hash-4", "async-range-4":
		return 4
	case "hash-7":
		return 7
	case "range-5":
		return 5
	default:
		return 64
	}
}

// newTestSet builds a Sharded for one named config and stops its writer
// goroutines (async configs) when the test finishes.
func newTestSet(t *testing.T, name string, opt *Options) *Sharded {
	t.Helper()
	s := New(shardCount(name), opt)
	t.Cleanup(s.Close)
	return s
}

func TestPointOps(t *testing.T) {
	for name, opt := range configs() {
		t.Run(name, func(t *testing.T) {
			s := newTestSet(t, name, opt)
			keys := []uint64{5, 1, 9, 1 << 15, 77, 1<<15 + 1, 3}
			for _, k := range keys {
				if !s.Insert(k) {
					t.Fatalf("Insert(%d) reported duplicate", k)
				}
			}
			if s.Insert(5) {
				t.Fatal("duplicate Insert(5) reported new")
			}
			if got := s.Len(); got != len(keys) {
				t.Fatalf("Len = %d, want %d", got, len(keys))
			}
			for _, k := range keys {
				if !s.Has(k) {
					t.Fatalf("Has(%d) = false", k)
				}
			}
			if s.Has(2) || s.Has(0) {
				t.Fatal("Has reported absent key present")
			}
			if v, ok := s.Min(); !ok || v != 1 {
				t.Fatalf("Min = %d,%v want 1", v, ok)
			}
			if v, ok := s.Max(); !ok || v != 1<<15+1 {
				t.Fatalf("Max = %d,%v want %d", v, ok, 1<<15+1)
			}
			if v, ok := s.Next(6); !ok || v != 9 {
				t.Fatalf("Next(6) = %d,%v want 9", v, ok)
			}
			if !s.Remove(9) || s.Remove(9) {
				t.Fatal("Remove(9) wrong")
			}
			if v, ok := s.Next(6); !ok || v != 77 {
				t.Fatalf("Next(6) after remove = %d,%v want 77", v, ok)
			}
			if err := s.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestBatchAgainstSingleCPMA(t *testing.T) {
	for name, opt := range configs() {
		t.Run(name, func(t *testing.T) {
			s := newTestSet(t, name, opt)
			ref := cpma.New(nil)
			r := workload.NewRNG(7)
			for round := 0; round < 6; round++ {
				ins := workload.Uniform(r, 5000, 16)
				gotIns := s.InsertBatch(ins, false)
				wantIns := ref.InsertBatch(ins, false)
				if gotIns != wantIns {
					t.Fatalf("round %d: InsertBatch added %d, want %d", round, gotIns, wantIns)
				}
				del := workload.Uniform(r, 2000, 16)
				gotDel := s.RemoveBatch(del, false)
				wantDel := ref.RemoveBatch(del, false)
				if gotDel != wantDel {
					t.Fatalf("round %d: RemoveBatch removed %d, want %d", round, gotDel, wantDel)
				}
				if s.Len() != ref.Len() {
					t.Fatalf("round %d: Len = %d, want %d", round, s.Len(), ref.Len())
				}
				if s.Sum() != ref.Sum() {
					t.Fatalf("round %d: Sum mismatch", round)
				}
				if err := s.Validate(); err != nil {
					t.Fatalf("round %d: %v", round, err)
				}
			}
			got, want := s.Keys(), ref.Keys()
			if len(got) != len(want) {
				t.Fatalf("Keys length %d, want %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("Keys[%d] = %d, want %d", i, got[i], want[i])
				}
			}
		})
	}
}

func TestSortedBatchSplit(t *testing.T) {
	for name, opt := range configs() {
		t.Run(name, func(t *testing.T) {
			s := newTestSet(t, name, opt)
			keys := make([]uint64, 0, 10000)
			for k := uint64(1); k <= 10000; k++ {
				keys = append(keys, k*3)
			}
			if got := s.InsertBatch(keys, true); got != len(keys) {
				t.Fatalf("sorted InsertBatch added %d, want %d", got, len(keys))
			}
			if got := s.InsertBatch(keys, true); got != 0 {
				t.Fatalf("repeat sorted InsertBatch added %d, want 0", got)
			}
			if got := s.RemoveBatch(keys[:5000], true); got != 5000 {
				t.Fatalf("sorted RemoveBatch removed %d, want 5000", got)
			}
			if s.Len() != 5000 {
				t.Fatalf("Len = %d, want 5000", s.Len())
			}
			if err := s.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestMapRange(t *testing.T) {
	for name, opt := range configs() {
		t.Run(name, func(t *testing.T) {
			s := newTestSet(t, name, opt)
			ref := cpma.New(nil)
			r := workload.NewRNG(11)
			keys := workload.Uniform(r, 20000, 16)
			s.InsertBatch(keys, false)
			ref.InsertBatch(keys, false)
			for trial := 0; trial < 30; trial++ {
				start := r.Uint64() % (1 << 16)
				end := start + r.Uint64()%(1<<14)
				var got, want []uint64
				s.MapRange(start, end, func(v uint64) bool { got = append(got, v); return true })
				ref.MapRange(start, end, func(v uint64) bool { want = append(want, v); return true })
				if len(got) != len(want) {
					t.Fatalf("[%d,%d): %d keys, want %d", start, end, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("[%d,%d) pos %d: %d, want %d", start, end, i, got[i], want[i])
					}
				}
				gs, gc := s.RangeSum(start, end)
				ws, wc := ref.RangeSum(start, end)
				if gs != ws || gc != wc {
					t.Fatalf("RangeSum [%d,%d) = %d,%d want %d,%d", start, end, gs, gc, ws, wc)
				}
			}
			// Early termination stops the scan.
			visited := 0
			if s.MapRange(0, ^uint64(0), func(v uint64) bool { visited++; return visited < 10 }) {
				t.Fatal("MapRange reported complete despite early stop")
			}
			if visited != 10 {
				t.Fatalf("early stop visited %d, want 10", visited)
			}
		})
	}
}

func TestRoutingIsTotal(t *testing.T) {
	for _, opt := range []*Options{
		{Partition: HashPartition},
		{Partition: RangePartition, KeyBits: 40},
		{Partition: RangePartition, KeyBits: 64},
	} {
		for _, p := range []int{1, 2, 3, 5, 8, 64} {
			s := New(p, opt)
			r := workload.NewRNG(3)
			for i := 0; i < 10000; i++ {
				k := r.Uint64()
				if id := s.shardOf(k); id < 0 || id >= p {
					t.Fatalf("shardOf(%d) = %d out of [0,%d)", k, id, p)
				}
			}
			// Range routing must be monotone in the key.
			if opt.Partition == RangePartition {
				prev := 0
				for _, k := range []uint64{1, 1 << 10, 1 << 20, 1 << 39, 1 << 63, ^uint64(0)} {
					id := s.shardOf(k)
					if id < prev {
						t.Fatalf("range shardOf not monotone at %d: %d < %d", k, id, prev)
					}
					prev = id
				}
			}
		}
	}
}

func TestZeroShardClamp(t *testing.T) {
	s := New(0, nil)
	if s.Shards() != 1 {
		t.Fatalf("Shards = %d, want 1", s.Shards())
	}
	s.Insert(9)
	if !s.Has(9) {
		t.Fatal("single-shard set lost key")
	}
}

// TestAsyncFlushVisibility: Flush is the read barrier — everything
// enqueued before it is visible afterwards, and the caller's batch slice
// may be reused immediately after an async enqueue returns.
func TestAsyncFlushVisibility(t *testing.T) {
	for _, part := range []Partition{HashPartition, RangePartition} {
		s := New(3, &Options{Partition: part, KeyBits: 18, Async: true, MailboxDepth: 4})
		defer s.Close()
		ref := cpma.New(nil)
		r := workload.NewRNG(21)
		buf := make([]uint64, 800)
		for round := 0; round < 20; round++ {
			keys := workload.Uniform(r, len(buf), 18)
			copy(buf, keys)
			ref.InsertBatch(keys, false)
			s.InsertBatchAsync(buf, false)
			for i := range buf { // enqueue must not alias the caller's slice
				buf[i] = 0
			}
			if round%4 == 3 {
				del := workload.Uniform(r, 300, 18)
				s.RemoveBatchAsync(del, false)
				ref.RemoveBatch(del, false)
			}
		}
		s.Flush()
		if s.Len() != ref.Len() || s.Sum() != ref.Sum() {
			t.Fatalf("partition %v: after Flush Len/Sum = %d/%d, want %d/%d",
				part, s.Len(), s.Sum(), ref.Len(), ref.Sum())
		}
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCloseDrainsAndRejects: Close without a prior Flush still applies
// every enqueued batch, is idempotent, keeps reads working, and makes
// further mutations panic.
func TestCloseDrainsAndRejects(t *testing.T) {
	s := New(3, &Options{Async: true, MailboxDepth: 2})
	keys := workload.Uniform(workload.NewRNG(5), 20000, 18)
	ref := cpma.New(nil)
	ref.InsertBatch(keys, false)
	for lo := 0; lo < len(keys); lo += 500 {
		s.InsertBatchAsync(keys[lo:lo+500], false)
	}
	s.Close()
	if s.Len() != ref.Len() || s.Sum() != ref.Sum() {
		t.Fatalf("Close did not drain: Len/Sum = %d/%d, want %d/%d", s.Len(), s.Sum(), ref.Len(), ref.Sum())
	}
	s.Close() // idempotent
	s.Flush() // no-op after Close
	if !s.Has(keys[0]) {
		t.Fatal("reads must keep working on a closed set")
	}
	for name, op := range map[string]func(){
		"InsertBatch":       func() { s.InsertBatch([]uint64{1}, true) },
		"InsertBatch empty": func() { s.InsertBatch(nil, true) },
		"RemoveBatch":       func() { s.RemoveBatch([]uint64{1}, true) },
		"InsertBatchAsync":  func() { s.InsertBatchAsync([]uint64{1}, true) },
		"Insert":            func() { s.Insert(1) },
	} {
		if !panics(op) {
			t.Fatalf("%s after Close did not panic", name)
		}
	}
}

// TestIngestStatsCoalesce pins the writers behind their shard locks while
// sub-batches pile up in the mailboxes, making coalescing deterministic:
// releasing the locks must drain each mailbox in at most two applies.
func TestIngestStatsCoalesce(t *testing.T) {
	const batches, batchLen = 16, 100
	s := New(2, &Options{Async: true, MailboxDepth: 2 * batches})
	defer s.Close()
	r := workload.NewRNG(9)
	for p := range s.cells {
		s.cells[p].mu.Lock()
	}
	for i := 0; i < batches; i++ {
		s.InsertBatchAsync(workload.Uniform(r, batchLen, 20), false)
	}
	for p := range s.cells {
		s.cells[p].mu.Unlock()
	}
	s.Flush()
	st := s.IngestStats()
	if st.EnqueuedKeys != uint64(batches*batchLen) || st.EnqueuedKeys != st.AppliedKeys {
		t.Fatalf("key accounting off: %+v", st)
	}
	// Per shard: at most one pre-pile apply (the op grabbed before the
	// lock stalled the writer) plus one coalesced drain of the rest.
	if max := uint64(2 * s.Shards()); st.AppliedBatches > max {
		t.Fatalf("coalescing failed: %d applies for %d sub-batches (max %d): %+v",
			st.AppliedBatches, st.EnqueuedBatches, max, st)
	}
	if st.MeanAppliedBatch() <= st.MeanEnqueuedBatch() {
		t.Fatalf("mean applied %.1f not above mean enqueued %.1f",
			st.MeanAppliedBatch(), st.MeanEnqueuedBatch())
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestZeroKeyRejected: the reserved key 0 fails fast at the API boundary,
// in the caller's goroutine, in both modes.
func TestZeroKeyRejected(t *testing.T) {
	for _, async := range []bool{false, true} {
		s := New(2, &Options{Async: async})
		defer s.Close()
		if s.Has(0) {
			t.Fatal("Has(0) must be false")
		}
		for name, op := range map[string]func(){
			"Insert":               func() { s.Insert(0) },
			"Remove":               func() { s.Remove(0) },
			"InsertBatch unsorted": func() { s.InsertBatch([]uint64{3, 0, 5}, false) },
			"InsertBatch sorted":   func() { s.InsertBatch([]uint64{0, 3}, true) },
			"RemoveBatch unsorted": func() { s.RemoveBatch([]uint64{3, 0}, false) },
			"InsertBatchAsync":     func() { s.InsertBatchAsync([]uint64{0}, true) },
			"RemoveBatchAsync":     func() { s.RemoveBatchAsync([]uint64{5, 0}, false) },
		} {
			if !panics(op) {
				t.Fatalf("async=%v: %s accepted key 0", async, name)
			}
		}
		if s.Len() != 0 {
			t.Fatalf("async=%v: rejected ops mutated the set", async)
		}
	}
}

func panics(f func()) (did bool) {
	defer func() { did = recover() != nil }()
	f()
	return false
}

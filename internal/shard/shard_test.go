package shard

import (
	"testing"

	"repro/internal/cpma"
	"repro/internal/workload"
)

func configs() map[string]*Options {
	return map[string]*Options{
		"hash-1":   {Partition: HashPartition},
		"hash-4":   {Partition: HashPartition},
		"hash-7":   {Partition: HashPartition},
		"range-4":  {Partition: RangePartition, KeyBits: workload.UniformBits},
		"range-5":  {Partition: RangePartition, KeyBits: 64},
		"range-64": {Partition: RangePartition, KeyBits: 16},
	}
}

func shardCount(name string) int {
	switch name {
	case "hash-1":
		return 1
	case "hash-4", "range-4":
		return 4
	case "hash-7":
		return 7
	case "range-5":
		return 5
	default:
		return 64
	}
}

func TestPointOps(t *testing.T) {
	for name, opt := range configs() {
		t.Run(name, func(t *testing.T) {
			s := New(shardCount(name), opt)
			keys := []uint64{5, 1, 9, 1 << 15, 77, 1<<15 + 1, 3}
			for _, k := range keys {
				if !s.Insert(k) {
					t.Fatalf("Insert(%d) reported duplicate", k)
				}
			}
			if s.Insert(5) {
				t.Fatal("duplicate Insert(5) reported new")
			}
			if got := s.Len(); got != len(keys) {
				t.Fatalf("Len = %d, want %d", got, len(keys))
			}
			for _, k := range keys {
				if !s.Has(k) {
					t.Fatalf("Has(%d) = false", k)
				}
			}
			if s.Has(2) || s.Has(0) {
				t.Fatal("Has reported absent key present")
			}
			if v, ok := s.Min(); !ok || v != 1 {
				t.Fatalf("Min = %d,%v want 1", v, ok)
			}
			if v, ok := s.Max(); !ok || v != 1<<15+1 {
				t.Fatalf("Max = %d,%v want %d", v, ok, 1<<15+1)
			}
			if v, ok := s.Next(6); !ok || v != 9 {
				t.Fatalf("Next(6) = %d,%v want 9", v, ok)
			}
			if !s.Remove(9) || s.Remove(9) {
				t.Fatal("Remove(9) wrong")
			}
			if v, ok := s.Next(6); !ok || v != 77 {
				t.Fatalf("Next(6) after remove = %d,%v want 77", v, ok)
			}
			if err := s.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestBatchAgainstSingleCPMA(t *testing.T) {
	for name, opt := range configs() {
		t.Run(name, func(t *testing.T) {
			s := New(shardCount(name), opt)
			ref := cpma.New(nil)
			r := workload.NewRNG(7)
			for round := 0; round < 6; round++ {
				ins := workload.Uniform(r, 5000, 16)
				gotIns := s.InsertBatch(ins, false)
				wantIns := ref.InsertBatch(ins, false)
				if gotIns != wantIns {
					t.Fatalf("round %d: InsertBatch added %d, want %d", round, gotIns, wantIns)
				}
				del := workload.Uniform(r, 2000, 16)
				gotDel := s.RemoveBatch(del, false)
				wantDel := ref.RemoveBatch(del, false)
				if gotDel != wantDel {
					t.Fatalf("round %d: RemoveBatch removed %d, want %d", round, gotDel, wantDel)
				}
				if s.Len() != ref.Len() {
					t.Fatalf("round %d: Len = %d, want %d", round, s.Len(), ref.Len())
				}
				if s.Sum() != ref.Sum() {
					t.Fatalf("round %d: Sum mismatch", round)
				}
				if err := s.Validate(); err != nil {
					t.Fatalf("round %d: %v", round, err)
				}
			}
			got, want := s.Keys(), ref.Keys()
			if len(got) != len(want) {
				t.Fatalf("Keys length %d, want %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("Keys[%d] = %d, want %d", i, got[i], want[i])
				}
			}
		})
	}
}

func TestSortedBatchSplit(t *testing.T) {
	for name, opt := range configs() {
		t.Run(name, func(t *testing.T) {
			s := New(shardCount(name), opt)
			keys := make([]uint64, 0, 10000)
			for k := uint64(1); k <= 10000; k++ {
				keys = append(keys, k*3)
			}
			if got := s.InsertBatch(keys, true); got != len(keys) {
				t.Fatalf("sorted InsertBatch added %d, want %d", got, len(keys))
			}
			if got := s.InsertBatch(keys, true); got != 0 {
				t.Fatalf("repeat sorted InsertBatch added %d, want 0", got)
			}
			if got := s.RemoveBatch(keys[:5000], true); got != 5000 {
				t.Fatalf("sorted RemoveBatch removed %d, want 5000", got)
			}
			if s.Len() != 5000 {
				t.Fatalf("Len = %d, want 5000", s.Len())
			}
			if err := s.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestMapRange(t *testing.T) {
	for name, opt := range configs() {
		t.Run(name, func(t *testing.T) {
			s := New(shardCount(name), opt)
			ref := cpma.New(nil)
			r := workload.NewRNG(11)
			keys := workload.Uniform(r, 20000, 16)
			s.InsertBatch(keys, false)
			ref.InsertBatch(keys, false)
			for trial := 0; trial < 30; trial++ {
				start := r.Uint64() % (1 << 16)
				end := start + r.Uint64()%(1<<14)
				var got, want []uint64
				s.MapRange(start, end, func(v uint64) bool { got = append(got, v); return true })
				ref.MapRange(start, end, func(v uint64) bool { want = append(want, v); return true })
				if len(got) != len(want) {
					t.Fatalf("[%d,%d): %d keys, want %d", start, end, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("[%d,%d) pos %d: %d, want %d", start, end, i, got[i], want[i])
					}
				}
				gs, gc := s.RangeSum(start, end)
				ws, wc := ref.RangeSum(start, end)
				if gs != ws || gc != wc {
					t.Fatalf("RangeSum [%d,%d) = %d,%d want %d,%d", start, end, gs, gc, ws, wc)
				}
			}
			// Early termination stops the scan.
			visited := 0
			if s.MapRange(0, ^uint64(0), func(v uint64) bool { visited++; return visited < 10 }) {
				t.Fatal("MapRange reported complete despite early stop")
			}
			if visited != 10 {
				t.Fatalf("early stop visited %d, want 10", visited)
			}
		})
	}
}

func TestRoutingIsTotal(t *testing.T) {
	for _, opt := range []*Options{
		{Partition: HashPartition},
		{Partition: RangePartition, KeyBits: 40},
		{Partition: RangePartition, KeyBits: 64},
	} {
		for _, p := range []int{1, 2, 3, 5, 8, 64} {
			s := New(p, opt)
			r := workload.NewRNG(3)
			for i := 0; i < 10000; i++ {
				k := r.Uint64()
				if id := s.shardOf(k); id < 0 || id >= p {
					t.Fatalf("shardOf(%d) = %d out of [0,%d)", k, id, p)
				}
			}
			// Range routing must be monotone in the key.
			if opt.Partition == RangePartition {
				prev := 0
				for _, k := range []uint64{1, 1 << 10, 1 << 20, 1 << 39, 1 << 63, ^uint64(0)} {
					id := s.shardOf(k)
					if id < prev {
						t.Fatalf("range shardOf not monotone at %d: %d < %d", k, id, prev)
					}
					prev = id
				}
			}
		}
	}
}

func TestZeroShardClamp(t *testing.T) {
	s := New(0, nil)
	if s.Shards() != 1 {
		t.Fatalf("Shards = %d, want 1", s.Shards())
	}
	s.Insert(9)
	if !s.Has(9) {
		t.Fatal("single-shard set lost key")
	}
}

package shard

import (
	"slices"
	"testing"

	"repro/internal/cpma"
	"repro/internal/workload"
)

func configs() map[string]*Options {
	return map[string]*Options{
		"hash-1":        {Partition: HashPartition},
		"hash-4":        {Partition: HashPartition},
		"hash-7":        {Partition: HashPartition},
		"range-4":       {Partition: RangePartition, KeyBits: workload.UniformBits},
		"range-5":       {Partition: RangePartition, KeyBits: 64},
		"range-64":      {Partition: RangePartition, KeyBits: 16},
		"async-hash-1":  {Partition: HashPartition, Async: true, MailboxDepth: 2},
		"async-hash-4":  {Partition: HashPartition, Async: true, MailboxDepth: 4},
		"async-range-4": {Partition: RangePartition, KeyBits: workload.UniformBits, Async: true, MailboxDepth: 4, FlushReads: true},
		// Extreme partition geometries: more shards than distinct spans
		// (2-bit keys across 9 shards leave most spans empty), the full
		// 64-bit space over a non-power-of-two shard count, and the async
		// pipeline over both.
		"range-9x2bit":       {Partition: RangePartition, KeyBits: 2},
		"async-range-9x2bit": {Partition: RangePartition, KeyBits: 2, Async: true, MailboxDepth: 2},
		"async-range-7x64":   {Partition: RangePartition, KeyBits: 64, Async: true, MailboxDepth: 4},
	}
}

func shardCount(name string) int {
	switch name {
	case "hash-1", "async-hash-1":
		return 1
	case "hash-4", "range-4", "async-hash-4", "async-range-4":
		return 4
	case "hash-7", "async-range-7x64":
		return 7
	case "range-5":
		return 5
	case "range-9x2bit", "async-range-9x2bit":
		return 9
	default:
		return 64
	}
}

// newTestSet builds a Sharded for one named config and stops its writer
// goroutines (async configs) when the test finishes.
func newTestSet(t *testing.T, name string, opt *Options) *Sharded {
	t.Helper()
	s := New(shardCount(name), opt)
	t.Cleanup(s.Close)
	return s
}

func TestPointOps(t *testing.T) {
	for name, opt := range configs() {
		t.Run(name, func(t *testing.T) {
			s := newTestSet(t, name, opt)
			keys := []uint64{5, 1, 9, 1 << 15, 77, 1<<15 + 1, 3}
			for _, k := range keys {
				if !s.Insert(k) {
					t.Fatalf("Insert(%d) reported duplicate", k)
				}
			}
			if s.Insert(5) {
				t.Fatal("duplicate Insert(5) reported new")
			}
			if got := s.Len(); got != len(keys) {
				t.Fatalf("Len = %d, want %d", got, len(keys))
			}
			for _, k := range keys {
				if !s.Has(k) {
					t.Fatalf("Has(%d) = false", k)
				}
			}
			if s.Has(2) || s.Has(0) {
				t.Fatal("Has reported absent key present")
			}
			if v, ok := s.Min(); !ok || v != 1 {
				t.Fatalf("Min = %d,%v want 1", v, ok)
			}
			if v, ok := s.Max(); !ok || v != 1<<15+1 {
				t.Fatalf("Max = %d,%v want %d", v, ok, 1<<15+1)
			}
			if v, ok := s.Next(6); !ok || v != 9 {
				t.Fatalf("Next(6) = %d,%v want 9", v, ok)
			}
			if !s.Remove(9) || s.Remove(9) {
				t.Fatal("Remove(9) wrong")
			}
			if v, ok := s.Next(6); !ok || v != 77 {
				t.Fatalf("Next(6) after remove = %d,%v want 77", v, ok)
			}
			if err := s.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestBatchAgainstSingleCPMA(t *testing.T) {
	for name, opt := range configs() {
		t.Run(name, func(t *testing.T) {
			s := newTestSet(t, name, opt)
			ref := cpma.New(nil)
			r := workload.NewRNG(7)
			for round := 0; round < 6; round++ {
				ins := workload.Uniform(r, 5000, 16)
				gotIns := s.InsertBatch(ins, false)
				wantIns := ref.InsertBatch(ins, false)
				if gotIns != wantIns {
					t.Fatalf("round %d: InsertBatch added %d, want %d", round, gotIns, wantIns)
				}
				del := workload.Uniform(r, 2000, 16)
				gotDel := s.RemoveBatch(del, false)
				wantDel := ref.RemoveBatch(del, false)
				if gotDel != wantDel {
					t.Fatalf("round %d: RemoveBatch removed %d, want %d", round, gotDel, wantDel)
				}
				if s.Len() != ref.Len() {
					t.Fatalf("round %d: Len = %d, want %d", round, s.Len(), ref.Len())
				}
				if s.Sum() != ref.Sum() {
					t.Fatalf("round %d: Sum mismatch", round)
				}
				if err := s.Validate(); err != nil {
					t.Fatalf("round %d: %v", round, err)
				}
			}
			got, want := s.Keys(), ref.Keys()
			if len(got) != len(want) {
				t.Fatalf("Keys length %d, want %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("Keys[%d] = %d, want %d", i, got[i], want[i])
				}
			}
		})
	}
}

func TestSortedBatchSplit(t *testing.T) {
	for name, opt := range configs() {
		t.Run(name, func(t *testing.T) {
			s := newTestSet(t, name, opt)
			keys := make([]uint64, 0, 10000)
			for k := uint64(1); k <= 10000; k++ {
				keys = append(keys, k*3)
			}
			if got := s.InsertBatch(keys, true); got != len(keys) {
				t.Fatalf("sorted InsertBatch added %d, want %d", got, len(keys))
			}
			if got := s.InsertBatch(keys, true); got != 0 {
				t.Fatalf("repeat sorted InsertBatch added %d, want 0", got)
			}
			if got := s.RemoveBatch(keys[:5000], true); got != 5000 {
				t.Fatalf("sorted RemoveBatch removed %d, want 5000", got)
			}
			if s.Len() != 5000 {
				t.Fatalf("Len = %d, want 5000", s.Len())
			}
			if err := s.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestMapRange(t *testing.T) {
	for name, opt := range configs() {
		t.Run(name, func(t *testing.T) {
			s := newTestSet(t, name, opt)
			ref := cpma.New(nil)
			r := workload.NewRNG(11)
			keys := workload.Uniform(r, 20000, 16)
			s.InsertBatch(keys, false)
			ref.InsertBatch(keys, false)
			for trial := 0; trial < 30; trial++ {
				start := r.Uint64() % (1 << 16)
				end := start + r.Uint64()%(1<<14)
				var got, want []uint64
				s.MapRange(start, end, func(v uint64) bool { got = append(got, v); return true })
				ref.MapRange(start, end, func(v uint64) bool { want = append(want, v); return true })
				if len(got) != len(want) {
					t.Fatalf("[%d,%d): %d keys, want %d", start, end, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("[%d,%d) pos %d: %d, want %d", start, end, i, got[i], want[i])
					}
				}
				gs, gc := s.RangeSum(start, end)
				ws, wc := ref.RangeSum(start, end)
				if gs != ws || gc != wc {
					t.Fatalf("RangeSum [%d,%d) = %d,%d want %d,%d", start, end, gs, gc, ws, wc)
				}
			}
			// Early termination stops the scan.
			visited := 0
			if s.MapRange(0, ^uint64(0), func(v uint64) bool { visited++; return visited < 10 }) {
				t.Fatal("MapRange reported complete despite early stop")
			}
			if visited != 10 {
				t.Fatalf("early stop visited %d, want 10", visited)
			}
		})
	}
}

func TestRoutingIsTotal(t *testing.T) {
	for _, opt := range []*Options{
		{Partition: HashPartition},
		{Partition: RangePartition, KeyBits: 40},
		{Partition: RangePartition, KeyBits: 64},
	} {
		for _, p := range []int{1, 2, 3, 5, 8, 64} {
			s := New(p, opt)
			r := workload.NewRNG(3)
			for i := 0; i < 10000; i++ {
				k := r.Uint64()
				if id := s.shardOf(k); id < 0 || id >= p {
					t.Fatalf("shardOf(%d) = %d out of [0,%d)", k, id, p)
				}
			}
			// Range routing must be monotone in the key.
			if opt.Partition == RangePartition {
				prev := 0
				for _, k := range []uint64{1, 1 << 10, 1 << 20, 1 << 39, 1 << 63, ^uint64(0)} {
					id := s.shardOf(k)
					if id < prev {
						t.Fatalf("range shardOf not monotone at %d: %d < %d", k, id, prev)
					}
					prev = id
				}
			}
		}
	}
}

func TestZeroShardClamp(t *testing.T) {
	s := New(0, nil)
	if s.Shards() != 1 {
		t.Fatalf("Shards = %d, want 1", s.Shards())
	}
	s.Insert(9)
	if !s.Has(9) {
		t.Fatal("single-shard set lost key")
	}
}

// TestAsyncFlushVisibility: Flush is the read barrier — everything
// enqueued before it is visible afterwards, and the caller's batch slice
// may be reused immediately after an async enqueue returns.
func TestAsyncFlushVisibility(t *testing.T) {
	for _, part := range []Partition{HashPartition, RangePartition} {
		s := New(3, &Options{Partition: part, KeyBits: 18, Async: true, MailboxDepth: 4})
		defer s.Close()
		ref := cpma.New(nil)
		r := workload.NewRNG(21)
		buf := make([]uint64, 800)
		for round := 0; round < 20; round++ {
			keys := workload.Uniform(r, len(buf), 18)
			copy(buf, keys)
			ref.InsertBatch(keys, false)
			s.InsertBatchAsync(buf, false)
			for i := range buf { // enqueue must not alias the caller's slice
				buf[i] = 0
			}
			if round%4 == 3 {
				del := workload.Uniform(r, 300, 18)
				s.RemoveBatchAsync(del, false)
				ref.RemoveBatch(del, false)
			}
		}
		s.Flush()
		if s.Len() != ref.Len() || s.Sum() != ref.Sum() {
			t.Fatalf("partition %v: after Flush Len/Sum = %d/%d, want %d/%d",
				part, s.Len(), s.Sum(), ref.Len(), ref.Sum())
		}
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCloseDrainsAndRejects: Close without a prior Flush still applies
// every enqueued batch, is idempotent, keeps reads working, and makes
// further mutations panic.
func TestCloseDrainsAndRejects(t *testing.T) {
	s := New(3, &Options{Async: true, MailboxDepth: 2})
	keys := workload.Uniform(workload.NewRNG(5), 20000, 18)
	ref := cpma.New(nil)
	ref.InsertBatch(keys, false)
	for lo := 0; lo < len(keys); lo += 500 {
		s.InsertBatchAsync(keys[lo:lo+500], false)
	}
	s.Close()
	if s.Len() != ref.Len() || s.Sum() != ref.Sum() {
		t.Fatalf("Close did not drain: Len/Sum = %d/%d, want %d/%d", s.Len(), s.Sum(), ref.Len(), ref.Sum())
	}
	s.Close() // idempotent
	s.Flush() // no-op after Close
	if !s.Has(keys[0]) {
		t.Fatal("reads must keep working on a closed set")
	}
	for name, op := range map[string]func(){
		"InsertBatch":       func() { s.InsertBatch([]uint64{1}, true) },
		"InsertBatch empty": func() { s.InsertBatch(nil, true) },
		"RemoveBatch":       func() { s.RemoveBatch([]uint64{1}, true) },
		"InsertBatchAsync":  func() { s.InsertBatchAsync([]uint64{1}, true) },
		"Insert":            func() { s.Insert(1) },
	} {
		if !panics(op) {
			t.Fatalf("%s after Close did not panic", name)
		}
	}
}

// TestIngestStatsCoalesce pins the writers behind their shard locks while
// sub-batches pile up in the mailboxes, making coalescing deterministic:
// releasing the locks must drain each mailbox in at most two applies.
func TestIngestStatsCoalesce(t *testing.T) {
	const batches, batchLen = 16, 100
	s := New(2, &Options{Async: true, MailboxDepth: 2 * batches})
	defer s.Close()
	r := workload.NewRNG(9)
	for p := range s.cells {
		s.cells[p].mu.Lock()
	}
	for i := 0; i < batches; i++ {
		s.InsertBatchAsync(workload.Uniform(r, batchLen, 20), false)
	}
	for p := range s.cells {
		s.cells[p].mu.Unlock()
	}
	s.Flush()
	st := s.IngestStats()
	if st.EnqueuedKeys != uint64(batches*batchLen) || st.EnqueuedKeys != st.AppliedKeys {
		t.Fatalf("key accounting off: %+v", st)
	}
	// Per shard: at most one pre-pile apply (the op grabbed before the
	// lock stalled the writer) plus one coalesced drain of the rest.
	if max := uint64(2 * s.Shards()); st.AppliedBatches > max {
		t.Fatalf("coalescing failed: %d applies for %d sub-batches (max %d): %+v",
			st.AppliedBatches, st.EnqueuedBatches, max, st)
	}
	if st.MeanAppliedBatch() <= st.MeanEnqueuedBatch() {
		t.Fatalf("mean applied %.1f not above mean enqueued %.1f",
			st.MeanAppliedBatch(), st.MeanEnqueuedBatch())
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestZeroKeyRejected: the reserved key 0 fails fast at the API boundary,
// in the caller's goroutine, in both modes.
func TestZeroKeyRejected(t *testing.T) {
	for _, async := range []bool{false, true} {
		s := New(2, &Options{Async: async})
		defer s.Close()
		if s.Has(0) {
			t.Fatal("Has(0) must be false")
		}
		for name, op := range map[string]func(){
			"Insert":               func() { s.Insert(0) },
			"Remove":               func() { s.Remove(0) },
			"InsertBatch unsorted": func() { s.InsertBatch([]uint64{3, 0, 5}, false) },
			"InsertBatch sorted":   func() { s.InsertBatch([]uint64{0, 3}, true) },
			"RemoveBatch unsorted": func() { s.RemoveBatch([]uint64{3, 0}, false) },
			"InsertBatchAsync":     func() { s.InsertBatchAsync([]uint64{0}, true) },
			"RemoveBatchAsync":     func() { s.RemoveBatchAsync([]uint64{5, 0}, false) },
		} {
			if !panics(op) {
				t.Fatalf("async=%v: %s accepted key 0", async, name)
			}
		}
		if s.Len() != 0 {
			t.Fatalf("async=%v: rejected ops mutated the set", async)
		}
	}
}

func panics(f func()) (did bool) {
	defer func() { did = recover() != nil }()
	f()
	return false
}

// --- Snapshot tests ---

// smallSet shrinks shard CPMAs so snapshot walks cross many leaf rebuilds.
var smallSet = &cpma.Options{LeafBytes: 256, PointThreshold: 10}

// TestSnapshotPrefixCutDifferential is the snapshot-consistency
// differential harness: a writer streams a scripted history of
// fire-and-forget insert/remove batches through the async pipeline while
// the main goroutine repeatedly captures Snapshots. Every capture must be
// a valid cut — each shard's frozen contents must equal that shard's state
// after some prefix of the applied history (shard mailboxes are FIFO and
// writers publish only at batch boundaries) — with per-shard prefixes and
// epochs advancing monotonically across captures, for both hash and range
// partitions. Each subtest verifies 600+ randomized capture interleavings
// (1200+ total), which the CI race job runs under -race with -count=2.
func TestSnapshotPrefixCutDifferential(t *testing.T) {
	for _, tc := range []struct {
		name string
		opt  *Options
	}{
		{"hash", &Options{Partition: HashPartition, Set: smallSet, Async: true, MailboxDepth: 4}},
		{"range", &Options{Partition: RangePartition, KeyBits: 16, Set: smallSet, Async: true, MailboxDepth: 4}},
		// Hot-key absorption must not change the cut contract: absorbed
		// occurrences reconcile before every publish, so each capture is
		// still an exact FIFO prefix even mid-absorption.
		{"hash-hotkey", &Options{Partition: HashPartition, Set: smallSet, Async: true, MailboxDepth: 4,
			HotKeys: true, HotKeyEvery: 64, HotKeyFrac: 0.1, HotKeyMax: 8}},
		{"range-hotkey", &Options{Partition: RangePartition, KeyBits: 16, Set: smallSet, Async: true, MailboxDepth: 4,
			HotKeys: true, HotKeyEvery: 64, HotKeyFrac: 0.1, HotKeyMax: 8}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const P = 3
			const rounds = 120
			const minCaptures = 600
			s := New(P, tc.opt)
			t.Cleanup(s.Close)
			r := workload.NewRNG(77)

			// Script the batch history up front and precompute, per shard,
			// the expected contents after every prefix of it.
			type histBatch struct {
				remove bool
				keys   []uint64
			}
			hist := make([]histBatch, rounds)
			states := make([][][]uint64, P) // states[p][j]: shard p after j batches
			shardModel := make([]map[uint64]bool, P)
			for p := 0; p < P; p++ {
				shardModel[p] = map[uint64]bool{}
				states[p] = make([][]uint64, rounds+1)
				states[p][0] = []uint64{}
			}
			sortedOf := func(m map[uint64]bool) []uint64 {
				out := make([]uint64, 0, len(m))
				for k := range m {
					out = append(out, k)
				}
				slices.Sort(out)
				return out
			}
			for j := range hist {
				remove := j%4 == 3
				keys := workload.Uniform(r, 1+r.Intn(250), 16)
				if tc.opt.HotKeys {
					// Make the history hot-heavy so batches actually cross
					// the separation/absorption path mid-capture.
					for i := 0; i < 150; i++ {
						keys = append(keys, 1+uint64(r.Intn(4)))
					}
				}
				hist[j] = histBatch{remove: remove, keys: keys}
				for _, k := range keys {
					if remove {
						delete(shardModel[s.shardOf(k)], k)
					} else {
						shardModel[s.shardOf(k)][k] = true
					}
				}
				for p := 0; p < P; p++ {
					states[p][j+1] = sortedOf(shardModel[p])
				}
			}

			done := make(chan struct{})
			go func() {
				defer close(done)
				for _, b := range hist {
					if b.remove {
						s.RemoveBatchAsync(b.keys, false)
					} else {
						s.InsertBatchAsync(b.keys, false)
					}
				}
				s.Flush()
			}()

			cur := make([]int, P) // last matched prefix per shard
			lastEpochs := make([]uint64, P)
			captures := 0
			writerDone := false
			for !writerDone || captures < minCaptures {
				select {
				case <-done:
					writerDone = true
				default:
				}
				sn := s.Snapshot()
				for p := 0; p < P; p++ {
					if sn.epochs[p] < lastEpochs[p] {
						t.Fatalf("capture %d shard %d: epoch went backwards (%d < %d)",
							captures, p, sn.epochs[p], lastEpochs[p])
					}
					lastEpochs[p] = sn.epochs[p]
					got := sn.v.sets[p].Keys()
					j := cur[p]
					for j <= rounds && !slices.Equal(got, states[p][j]) {
						j++
					}
					if j > rounds {
						t.Fatalf("capture %d shard %d: %d keys match no prefix of the applied history (last matched prefix %d)",
							captures, p, len(got), cur[p])
					}
					cur[p] = j
				}
				// Reads within one snapshot must be mutually consistent.
				if captures%64 == 0 {
					keys := sn.Keys()
					if len(keys) != sn.Len() {
						t.Fatalf("capture %d: Keys yields %d, Len says %d", captures, len(keys), sn.Len())
					}
					var sum uint64
					for _, k := range keys {
						sum += k
					}
					if sum != sn.Sum() {
						t.Fatalf("capture %d: Sum inconsistent with Keys", captures)
					}
				}
				captures++
			}

			// After the final Flush, a fresh snapshot sits at the full history.
			sn := s.Snapshot()
			for p := 0; p < P; p++ {
				if !slices.Equal(sn.v.sets[p].Keys(), states[p][rounds]) {
					t.Fatalf("post-flush snapshot shard %d does not hold the full history", p)
				}
			}
			if err := sn.Validate(); err != nil {
				t.Fatal(err)
			}
			if captures < minCaptures {
				t.Fatalf("only %d captures", captures)
			}
		})
	}
}

// TestSnapshotReadAPI checks every Snapshot read against the live set on a
// quiesced Sharded for all configs, then checks snapshot isolation: later
// mutations of the live set must not be visible through the old snapshot.
func TestSnapshotReadAPI(t *testing.T) {
	for name, opt := range configs() {
		t.Run(name, func(t *testing.T) {
			s := newTestSet(t, name, opt)
			r := workload.NewRNG(13)
			s.InsertBatch(workload.Uniform(r, 20000, 16), false)
			s.RemoveBatch(workload.Uniform(r, 5000, 16), false)
			s.Flush()
			sn := s.Snapshot()

			if sn.Shards() != s.Shards() {
				t.Fatalf("Shards = %d, want %d", sn.Shards(), s.Shards())
			}
			if sn.Len() != s.Len() || sn.Sum() != s.Sum() {
				t.Fatalf("Len/Sum = %d/%d, live %d/%d", sn.Len(), sn.Sum(), s.Len(), s.Sum())
			}
			if sn.SizeBytes() == 0 {
				t.Fatal("SizeBytes = 0")
			}
			keys := sn.Keys()
			if !slices.Equal(keys, s.Keys()) {
				t.Fatal("Keys diverge from live set")
			}
			if v, ok := sn.Min(); !ok || v != keys[0] {
				t.Fatalf("Min = %d,%v want %d", v, ok, keys[0])
			}
			if v, ok := sn.Max(); !ok || v != keys[len(keys)-1] {
				t.Fatalf("Max = %d,%v want %d", v, ok, keys[len(keys)-1])
			}
			for trial := 0; trial < 50; trial++ {
				k := 1 + r.Uint64()%(1<<16)
				if sn.Has(k) != s.Has(k) {
					t.Fatalf("Has(%d) diverges", k)
				}
				gv, gok := sn.Next(k)
				wv, wok := s.Next(k)
				if gv != wv || gok != wok {
					t.Fatalf("Next(%d) = %d,%v want %d,%v", k, gv, gok, wv, wok)
				}
				start := r.Uint64() % (1 << 16)
				end := start + r.Uint64()%(1<<14)
				gs, gc := sn.RangeSum(start, end)
				ws, wc := s.RangeSum(start, end)
				if gs != ws || gc != wc {
					t.Fatalf("RangeSum[%d,%d) diverges", start, end)
				}
			}
			if sn.Has(0) {
				t.Fatal("Has(0) must be false")
			}
			visited := 0
			if sn.MapRange(1, ^uint64(0), func(uint64) bool { visited++; return visited < 10 }) {
				t.Fatal("MapRange reported complete despite early stop")
			}
			if visited != 10 {
				t.Fatalf("early stop visited %d", visited)
			}
			if err := sn.Validate(); err != nil {
				t.Fatal(err)
			}

			// Isolation: mutations after the capture stay invisible.
			s.InsertBatch(workload.Uniform(r, 10000, 16), false)
			s.Remove(keys[0])
			s.Flush()
			if !slices.Equal(sn.Keys(), keys) {
				t.Fatal("snapshot observed mutations applied after its capture")
			}
			if !sn.Has(keys[0]) {
				t.Fatal("snapshot lost a key removed from the live set after capture")
			}
		})
	}
}

// TestSnapshotSyncCaptureCaching: in sync mode an unchanged shard's handle
// is reused across captures (no re-clone), and a point write re-clones
// exactly the one shard it touched.
func TestSnapshotSyncCaptureCaching(t *testing.T) {
	s := New(4, &Options{Partition: HashPartition})
	s.InsertBatch(workload.Uniform(workload.NewRNG(3), 10000, 20), false)
	sn1 := s.Snapshot()
	st1 := s.SnapshotStats()
	sn2 := s.Snapshot()
	st2 := s.SnapshotStats()
	if st2.Publishes != st1.Publishes {
		t.Fatalf("unchanged set re-published: %d -> %d", st1.Publishes, st2.Publishes)
	}
	if st2.Captures != st1.Captures+1 {
		t.Fatalf("capture counter off: %+v", st2)
	}
	for p := range sn1.v.sets {
		if sn1.v.sets[p] != sn2.v.sets[p] {
			t.Fatalf("shard %d handle not shared across unchanged captures", p)
		}
	}
	const k = 123456789
	s.Insert(k)
	sn3 := s.Snapshot()
	st3 := s.SnapshotStats()
	if !sn3.Has(k) {
		t.Fatal("fresh capture missed the new key")
	}
	if sn2.Has(k) {
		t.Fatal("old capture sees the new key")
	}
	if st3.Publishes != st2.Publishes+1 {
		t.Fatalf("want exactly one re-clone for a one-shard write, got %d", st3.Publishes-st2.Publishes)
	}
	if st3.Epochs != st2.Epochs+1 {
		t.Fatalf("epoch accounting off: %+v", st3)
	}
	if st3.CloneBytes <= st2.CloneBytes {
		t.Fatal("clone bytes did not grow")
	}
}

// TestSnapshotReadYourFlushes: a Snapshot captured after Flush returns
// covers everything enqueued before the Flush, without FlushReads.
func TestSnapshotReadYourFlushes(t *testing.T) {
	s := New(3, &Options{Async: true, MailboxDepth: 4})
	t.Cleanup(s.Close)
	ref := cpma.New(nil)
	r := workload.NewRNG(29)
	for round := 0; round < 15; round++ {
		for b := 0; b < 4; b++ {
			keys := workload.Uniform(r, 500, 18)
			s.InsertBatchAsync(keys, false)
			ref.InsertBatch(keys, false)
		}
		s.Flush()
		sn := s.Snapshot()
		if sn.Len() != ref.Len() || sn.Sum() != ref.Sum() {
			t.Fatalf("round %d: snapshot after Flush = %d/%d, want %d/%d",
				round, sn.Len(), sn.Sum(), ref.Len(), ref.Sum())
		}
	}
	st := s.SnapshotStats()
	if st.Publishes == 0 || st.Publishes > st.Epochs+uint64(s.Shards()) {
		t.Fatalf("publication accounting off: %+v", st)
	}
}

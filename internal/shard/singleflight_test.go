package shard

import (
	"sync"
	"testing"

	"repro/internal/workload"
)

// TestPublishSingleFlight: racing sync-mode captures of a freshly
// mutated shard must coalesce into exactly one clone per (epoch, gen).
// Before the publish mutex, concurrent Snapshot calls could each build a
// clone and CAS-race to install one — wasted O(shard) copies under the
// old deep clone, and under COW a correctness bug: two simultaneous
// Clones of one live set would race the ownership handoff itself. One
// publication per epoch is what makes Clone's at-rest contract hold.
func TestPublishSingleFlight(t *testing.T) {
	const rounds, goroutines = 40, 8
	s := New(4, &Options{Partition: HashPartition})
	defer s.Close()
	s.InsertBatch(workload.Uniform(workload.NewRNG(7), 20000, 26), false)
	_ = s.Snapshot() // settle every shard's handle at the current epoch
	start := s.SnapshotStats().Publishes

	for round := 0; round < rounds; round++ {
		k := uint64(1)<<40 + uint64(round) + 1
		if !s.Insert(k) {
			t.Fatalf("round %d: key not fresh", round)
		}
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if !s.Snapshot().Has(k) {
					t.Errorf("round %d: capture missed the round's key", round)
				}
			}()
		}
		wg.Wait()
	}

	st := s.SnapshotStats()
	// Each round dirtied exactly one shard, so the 8 racing captures may
	// add exactly one publication between them.
	if st.Publishes != start+rounds {
		t.Fatalf("want %d publications (%d start + %d rounds), got %d",
			start+rounds, start, rounds, st.Publishes)
	}
	// And every publication ever made — seeds included — built exactly
	// one clone of some cell's live set: no clone was built and discarded.
	var clones uint64
	for p := range s.cells {
		clones += s.cells[p].set.Clones()
	}
	if clones != st.Publishes {
		t.Fatalf("%d clones built for %d publications", clones, st.Publishes)
	}
}

package shard

// The asynchronous ingest pipeline: each shard owns a bounded mailbox of
// pending operations drained by a dedicated writer goroutine. Clients
// enqueue sorted sub-batches and return immediately (async) or wait on a
// completion ticket (sync); the writer greedily drains whatever has
// accumulated, merges runs of adjacent same-kind fire-and-forget batches
// into one sorted run, and applies it as a single InsertBatch/RemoveBatch
// under the shard lock. Coalescing is what makes the pipeline fast: the
// CPMA's rebalance cost amortizes with batch size (paper Fig. 1), so under
// many clients sending small batches the writer applies few large merges
// instead of many small ones.

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/parallel"
)

// opKind labels a mailbox operation.
type opKind uint8

const (
	opInsert opKind = iota
	opRemove
	opFlush
	opQuiesce
)

// shardOp is one mailbox entry: a sorted sub-batch destined for the
// owning shard (opInsert/opRemove), a flush token (opFlush), or a
// rebalancer quiesce token (opQuiesce). keys must not be read after the
// op's apply completes: fire-and-forget enqueues hand over copies the
// pipeline owns outright, but ticketed ops may alias the caller's slice,
// which the caller is free to reuse the moment its ticket completes
// (asyncSplit documents the ownership matrix). A non-nil ticket makes the
// op synchronous: the writer applies it individually (for an exact
// fresh/removed count) and completes the ticket; ticket-free ops are the
// coalescable fast path. A quiesce token parks the writer — it completes
// the ticket and then blocks until resume is closed, leaving the
// rebalancer as the shard's sole mutator for the interim.
//
// With the hot-key absorber on (Options.HotKeys), hot carries the
// promoted-key occurrences the enqueuer stripped from keys — run-collapsed
// {key, count} records the writer absorbs into slot state at this op's
// FIFO position instead of pushing through the merge and the CPMA
// (hotkey.go). Entries are always freshly built, never aliasing caller
// memory.
type shardOp struct {
	kind   opKind
	keys   []uint64
	hot    []hotEntry
	tk     *ticket
	resume chan struct{}
	// enq is the enqueue timestamp feeding the mailbox-residency
	// histogram: one clock read per enqueue call covers every sub-op it
	// mails. Zero for flush/quiesce tokens (they measure nothing).
	enq time.Time
}

// ticket is a completion barrier shared by the per-shard sub-ops of one
// logical operation. Each sub-op completes it once, adding its count; the
// waiter unblocks when the last shard reports in.
type ticket struct {
	remaining atomic.Int32
	total     atomic.Int64
	done      chan struct{}
}

func newTicket(parts int) *ticket {
	t := &ticket{done: make(chan struct{})}
	t.remaining.Store(int32(parts))
	return t
}

func (t *ticket) complete(n int) {
	t.total.Add(int64(n))
	if t.remaining.Add(-1) == 0 {
		close(t.done)
	}
}

func (t *ticket) wait() int {
	<-t.done
	return int(t.total.Load())
}

// IngestStats counts the batch traffic through a Sharded set: sub-batches
// as enqueued by clients versus merged applies executed by the shard
// writers. AppliedKeys + AbsorbedKeys always converges to EnqueuedKeys
// once the pipeline is flushed; AppliedBatches <= EnqueuedBatches, and the
// gap is the coalescing win (mean applied-batch size / mean enqueued
// sub-batch size). In synchronous mode both sides count the per-shard
// applies directly.
//
// The last four counters track the hot-key absorber (Options.HotKeys; all
// zero when it is off): AbsorbedKeys counts key occurrences diverted from
// the apply path into per-shard slot state, ReconcileBatches the batches
// that folded absorbed state back into the CPMAs at publish points
// (deliberately excluded from AppliedBatches/AppliedKeys, which keep
// counting client traffic only), and HotKeys/Demotions the cumulative
// promotions and demotions (HotKeys - Demotions is the number of keys on
// the absorbed path right now).
type IngestStats struct {
	EnqueuedBatches uint64 // sub-batches handed to shards
	EnqueuedKeys    uint64 // keys across those sub-batches
	AppliedBatches  uint64 // merged InsertBatch/RemoveBatch calls at shards
	AppliedKeys     uint64 // keys across those applies (pre-dedup)

	AbsorbedKeys     uint64 // hot-key occurrences absorbed instead of applied
	ReconcileBatches uint64 // reconcile batches folding absorbed state into CPMAs
	HotKeys          uint64 // cumulative key promotions to the absorbed path
	Demotions        uint64 // cumulative demotions back to the normal path
}

// MeanEnqueuedBatch returns the mean keys per enqueued sub-batch.
func (st IngestStats) MeanEnqueuedBatch() float64 {
	if st.EnqueuedBatches == 0 {
		return 0
	}
	return float64(st.EnqueuedKeys) / float64(st.EnqueuedBatches)
}

// MeanAppliedBatch returns the mean keys per merged apply.
func (st IngestStats) MeanAppliedBatch() float64 {
	if st.AppliedBatches == 0 {
		return 0
	}
	return float64(st.AppliedKeys) / float64(st.AppliedBatches)
}

// Sub returns the counter deltas st - prev (for measuring one phase).
func (st IngestStats) Sub(prev IngestStats) IngestStats {
	return IngestStats{
		EnqueuedBatches: st.EnqueuedBatches - prev.EnqueuedBatches,
		EnqueuedKeys:    st.EnqueuedKeys - prev.EnqueuedKeys,
		AppliedBatches:  st.AppliedBatches - prev.AppliedBatches,
		AppliedKeys:     st.AppliedKeys - prev.AppliedKeys,

		AbsorbedKeys:     st.AbsorbedKeys - prev.AbsorbedKeys,
		ReconcileBatches: st.ReconcileBatches - prev.ReconcileBatches,
		HotKeys:          st.HotKeys - prev.HotKeys,
		Demotions:        st.Demotions - prev.Demotions,
	}
}

// IngestStats returns the batch-traffic counters summed over all shards.
// Counters are monotone; snapshot before and after a phase and Sub the two
// to measure it.
func (s *Sharded) IngestStats() IngestStats {
	var st IngestStats
	for p := range s.cells {
		c := &s.cells[p]
		st.EnqueuedBatches += c.enqBatches.Load()
		st.EnqueuedKeys += c.enqKeys.Load()
		st.AppliedBatches += c.appBatches.Load()
		st.AppliedKeys += c.appKeys.Load()
		st.AbsorbedKeys += c.absorbed.Load()
		st.ReconcileBatches += c.reconciles.Load()
		st.HotKeys += c.promos.Load()
		st.Demotions += c.demos.Load()
	}
	return st
}

// writerScratch holds one writer's reusable buffers: the drained-op list,
// two ping-pong merge arenas, and the run-level hot-entry accumulator, so
// steady-state coalescing allocates nothing beyond what the CPMA itself
// needs.
type writerScratch struct {
	pending []shardOp
	runs    [][]uint64
	bufs    [2][]uint64
	ents    []hotEntry
}

// maxRetainedArena caps the merge-arena capacity (in keys) a writer keeps
// between drains; a one-off burst near CoalesceMax must not pin megabytes
// of scratch for the rest of the set's lifetime.
const maxRetainedArena = 1 << 16

// release drops references the last drain no longer needs: the applied
// key slices behind pending/runs (so their arrays become collectable) and
// any arena an unusually large coalesce grew past the retention cap.
func (ws *writerScratch) release() {
	clear(ws.pending[:cap(ws.pending)]) // full capacity: drop prior drains' stale headers too
	clear(ws.runs[:cap(ws.runs)])
	clear(ws.ents[:cap(ws.ents)])
	for i := range ws.bufs {
		if cap(ws.bufs[i]) > maxRetainedArena {
			ws.bufs[i] = nil
		}
	}
}

// writer is shard p's single mutator: it blocks for the next op, greedily
// drains whatever else is already buffered (up to CoalesceMax keys), and
// applies the drained prefix in order. It exits when the mailbox is closed
// and fully drained, so Close doubles as a final flush.
func (s *Sharded) writer(p int) {
	defer s.writers.Done()
	c := &s.cells[p]
	var ws writerScratch
	for {
		op, ok := <-c.mbox
		if !ok {
			return
		}
		ws.pending = append(ws.pending[:0], op)
		n := len(op.keys)
		closed := false
	drain:
		for n < s.opt.CoalesceMax {
			select {
			case op2, ok2 := <-c.mbox:
				if !ok2 {
					closed = true
					break drain
				}
				ws.pending = append(ws.pending, op2)
				n += len(op2.keys)
			default:
				break drain
			}
		}
		t0 := time.Now()
		s.applyPending(p, c, &ws)
		// Reconcile-before-publish: fold absorbed hot-key state into the
		// CPMA so the handle published next is an exact FIFO prefix of the
		// shard's history (absorption stays invisible to snapshots and
		// durability), then let the detector retune the promoted set at
		// this rest point — slots are clean, so promotion and demotion are
		// plain table swaps.
		if s.opt.HotKeys {
			s.reconcileHot(p, c)
			s.retuneHot(p, c)
		}
		// Copy-on-publish: one frozen handle per state-changing drain, so
		// snapshot captures never wait on (or block) the apply path. The
		// final drain before exit publishes too, so a Snapshot taken after
		// Close sees the fully drained state.
		sn := s.publish(p, c)
		// The journal learns the published handle after every drain: it is
		// the immutable state a checkpoint can serialize, covering every
		// record appended so far (this goroutine appended them all).
		if j := s.opt.Journal; j != nil {
			j.Published(p, sn.set)
		}
		// Two clock reads bound the whole drain; residency for each
		// drained sub-batch derives from its enqueue stamp against the
		// same end time. A drain that carried a quiesce token spent its
		// time parked for a rebalance, not working — the pair park is
		// measured by the rebalance quiesce/move histograms instead.
		t1 := time.Now()
		parked := false
		for i := range ws.pending {
			if ws.pending[i].kind == opQuiesce {
				parked = true
				break
			}
		}
		if !parked {
			s.pm.drain.Observe(t1.Sub(t0))
			if n > 0 {
				s.pm.coalesce.Record(uint64(n))
			}
			for i := range ws.pending {
				op := &ws.pending[i]
				if (op.kind == opInsert || op.kind == opRemove) && !op.enq.IsZero() {
					s.pm.residency.Observe(t1.Sub(op.enq))
				}
			}
		}
		s.trace.Record(p, obs.EvDrain, sn.epoch, sn.gen, uint64(len(ws.pending)), uint64(n))
		ws.release()
		if closed {
			return
		}
	}
}

// applyPending executes the drained ops in mailbox order. Maximal runs of
// adjacent ticket-free ops of one kind merge into a single sorted apply;
// ticketed ops apply alone so their fresh/removed counts stay exact; flush
// tokens just complete their tickets (everything enqueued before them has
// been applied by the time they are reached).
func (s *Sharded) applyPending(p int, c *cell, ws *writerScratch) {
	pending := ws.pending
	for i := 0; i < len(pending); {
		op := pending[i]
		switch {
		case op.kind == opFlush:
			// Publish before completing the token: once a Flush returns,
			// the published handles must include everything it covered
			// (the snapshot read-your-flushes guarantee). Reconcile first:
			// Flush promises applied-and-logged, so absorbed state covered
			// by the token must fold into the CPMA (and the WAL) before
			// the publish. On a durable set the token is also the
			// durability barrier — hand the journal the fresh handle and
			// force its log to disk before anyone waiting on the Flush is
			// released.
			if s.opt.HotKeys {
				s.reconcileHot(p, c)
			}
			sn := s.publish(p, c)
			if j := s.opt.Journal; j != nil {
				j.Published(p, sn.set)
				if err := j.Synced(p); err != nil {
					panic(fmt.Sprintf("shard %d: journal sync: %v", p, err))
				}
			}
			op.tk.complete(0)
			i++
		case op.kind == opQuiesce:
			// Park for the rebalancer: publish the rest-point state (the
			// pre-move handle other shards' captures may still pair with),
			// signal arrival, and block. Reconcile first so the rebalancer
			// extracts a CPMA with no absorbed state hiding beside it.
			// Everything drained before this token has been applied;
			// nothing can follow it in the mailbox because the rebalancer
			// holds the enqueue-side lifecycle lock while it is
			// outstanding. Until resume closes, the rebalancer is this
			// shard's sole mutator.
			if s.opt.HotKeys {
				s.reconcileHot(p, c)
			}
			sn := s.publish(p, c)
			if j := s.opt.Journal; j != nil {
				j.Published(p, sn.set)
			}
			op.tk.complete(0)
			<-op.resume
			i++
		case op.tk != nil:
			op.tk.complete(s.applyOne(p, c, op.kind, op.keys, op.hot))
			i++
		default:
			j := i + 1
			for j < len(pending) && pending[j].kind == op.kind && pending[j].tk == nil {
				j++
			}
			keys, hot := op.keys, op.hot
			if j > i+1 {
				ws.runs = ws.runs[:0]
				// Hot entries from the run's ops concatenate in op order;
				// within one run every op has the same kind, so a last-wins
				// fold over them lands on the same slot state regardless of
				// how the cold keys merged.
				ws.ents = ws.ents[:0]
				for k := i; k < j; k++ {
					if ks := pending[k].keys; len(ks) > 0 {
						ws.runs = append(ws.runs, ks)
					}
					ws.ents = append(ws.ents, pending[k].hot...)
				}
				keys = nil
				if len(ws.runs) > 0 {
					keys = mergeRuns(ws.runs, &ws.bufs)
				}
				hot = ws.ents
			}
			s.applyOne(p, c, op.kind, keys, hot)
			i = j
		}
	}
}

// applyOne applies one sorted batch to shard p under its lock, records it
// in the ingest counters, and advances the shard's snapshot epoch when the
// apply changed state (all-duplicate or all-absent batches leave the state
// — and therefore the published snapshot — untouched). On a durable set
// the batch is appended to the shard's write-ahead log first, outside the
// shard lock: the log must never trail the in-memory state it redoes, and
// a log the set cannot append to is fatal (see Journal).
//
// With the absorber on, hot carries the op's pre-separated promoted-key
// entries, and the batch is re-checked against the current table first
// (the backstop for sub-batches split against a stale table during a
// promotion — a promoted key's CPMA state must never change outside
// reconciliation). Entries whose key was demoted while the op was in
// flight fall back into the applied batch at this same FIFO position, so
// the write-ahead contract covers them; surviving entries fold into slot
// state inside the same critical section as the cold apply — absorbed keys
// are deliberately NOT journaled here, their WAL records are written by
// reconcileHot when the slot state folds into the CPMA. The returned count
// stays exact for ticketed ops: a slot whose effective membership flips
// counts exactly like a fresh insert or a present remove.
func (s *Sharded) applyOne(p int, c *cell, kind opKind, keys []uint64, hot []hotEntry) int {
	var ht *hotTable
	if s.opt.HotKeys {
		ht = c.hot.Load()
		if ht != nil && len(keys) > 0 {
			if cold, ents := stripHotSorted(keys, ht); ents != nil {
				keys = cold
				hot = append(hot, ents...)
			}
		}
		if len(hot) > 0 {
			abs, fallback, surplus := splitEntries(ht, hot)
			if len(fallback) > 0 {
				keys = mergeSortedInto(keys, fallback)
			}
			if surplus > 0 {
				// Demotion-fallback duplicates collapsed by separation: they
				// count as absorbed traffic (they never reach the CPMA) even
				// though their key travels the normal path again.
				c.absorbed.Add(surplus)
				c.det.window += surplus
			}
			hot = abs
		}
	}
	if len(keys) == 0 && len(hot) == 0 {
		return 0
	}
	if len(keys) > 0 {
		if j := s.opt.Journal; j != nil {
			if err := j.Append(p, kind == opRemove, keys); err != nil {
				panic(fmt.Sprintf("shard %d: journal append: %v", p, err))
			}
		}
		c.appBatches.Add(1)
		c.appKeys.Add(uint64(len(keys)))
	}
	var n int
	var absorbed uint64
	c.mu.Lock()
	if len(keys) > 0 {
		if kind == opInsert {
			n = c.set.InsertBatch(keys, true)
		} else {
			n = c.set.RemoveBatch(keys, true)
		}
		if n > 0 {
			c.epoch.Add(1)
		}
	}
	for _, e := range hot {
		sl := ht.lookup(e.key) // non-nil: splitEntries kept only table keys
		was := sl.eff()
		if kind == opInsert {
			sl.pend = pendInsert
		} else {
			sl.pend = pendRemove
		}
		if sl.eff() != was {
			n++
		}
		sl.hits += e.n
		absorbed += e.n
	}
	c.mu.Unlock()
	if s.opt.HotKeys {
		if absorbed > 0 {
			c.absorbed.Add(absorbed)
		}
		// Absorbed traffic advances the detector's window (it is real
		// traffic for share computation) but not the sketch — its keys are
		// already promoted.
		c.det.observe(keys)
		c.det.window += absorbed
	}
	return n
}

// mergeRuns merges the k sorted runs into one sorted slice with
// level-by-level pairwise rounds (O(total log k) element moves),
// ping-ponging between two reusable arenas. Every round writes all of its
// output — including a copied odd leftover — into that round's arena, so
// no round ever reads the arena it is writing. Duplicates across runs are
// preserved — the CPMA's batch preparation dedups sorted input — so a
// plain merge suffices. runs is clobbered; the result aliases one of the
// arenas and is only valid until the next call.
func mergeRuns(runs [][]uint64, bufs *[2][]uint64) []uint64 {
	total := 0
	for _, r := range runs {
		total += len(r)
	}
	which := 0
	for len(runs) > 1 {
		dst := bufs[which]
		if cap(dst) < total {
			dst = make([]uint64, total)
		}
		dst = dst[:total]
		bufs[which] = dst
		which ^= 1
		off, n := 0, 0
		for i := 0; i+1 < len(runs); i += 2 {
			a, b := runs[i], runs[i+1]
			out := dst[off : off+len(a)+len(b)]
			parallel.Merge(a, b, out)
			runs[n] = out
			n++
			off += len(out)
		}
		if len(runs)%2 == 1 {
			last := runs[len(runs)-1]
			out := dst[off : off+len(last)]
			copy(out, last)
			runs[n] = out
			n++
		}
		runs = runs[:n]
	}
	return runs[0]
}

package shard

import (
	"slices"
	"testing"
	"time"

	"repro/internal/workload"
)

// skewedKeys draws n power-law keys (hot keys clustered at the bottom of
// the key space — the range-partition-adversarial shape).
func skewedKeys(r *workload.RNG, n, bits int) []uint64 {
	z := workload.NewPowerLaw(r, bits, 1.1, false)
	return workload.PowerLawBatch(z, n)
}

// TestRebalanceOnceBalancesSkew: a skewed insert stream concentrates the
// keys in shard 0; one rebalance sweep must bring the max/mean key-count
// ratio under MaxSkew, keep the boundary table sorted, and change
// nothing about the set's contents.
func TestRebalanceOnceBalancesSkew(t *testing.T) {
	const P, bits = 6, 24
	s := New(P, &Options{Partition: RangePartition, KeyBits: bits, Async: true, Set: smallSet})
	t.Cleanup(s.Close)
	r := workload.NewRNG(5)
	keys := skewedKeys(r, 40000, bits)
	s.InsertBatch(keys, false)
	want := append([]uint64(nil), keys...)
	slices.Sort(want)
	want = slices.Compact(want)

	before, _ := s.LoadRatio()
	if before <= s.opt.MaxSkew {
		t.Fatalf("workload not skewed enough to test: ratio %.2f", before)
	}
	moves := s.RebalanceOnce()
	if moves == 0 {
		t.Fatal("RebalanceOnce made no moves on a skewed set")
	}
	after, lens := s.LoadRatio()
	if after > s.opt.MaxSkew {
		t.Fatalf("ratio %.2f still above MaxSkew %.2f after %d moves (lens %v)", after, s.opt.MaxSkew, moves, lens)
	}
	bounds := s.Bounds()
	if len(bounds) != P-1 || !slices.IsSorted(bounds) {
		t.Fatalf("boundary table invalid after rebalance: %v", bounds)
	}
	if !slices.Equal(s.Keys(), want) {
		t.Fatal("rebalance changed the set's contents")
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	st := s.RebalanceStats()
	if st.Moves != uint64(moves) || st.MovedKeys == 0 || st.Gen != uint64(moves) {
		t.Fatalf("rebalance stats off: %+v (moves %d)", st, moves)
	}
	// Every key must still route to the shard that holds it: point reads
	// agree with membership after the handoff.
	for _, k := range want[:500] {
		if !s.Has(k) {
			t.Fatalf("Has(%d) = false after rebalance", k)
		}
	}
	// A balanced set re-sweeps to nothing.
	if again := s.RebalanceOnce(); again != 0 {
		t.Fatalf("second sweep moved %d boundaries on a balanced set", again)
	}
}

// TestRebalanceDifferential is the rebalance differential walk: scripted
// skewed insert/remove batches stream through the async pipeline with
// live boundary moves interleaved (manual sweeps at varying points), and
// after every flush the set — contents, order, Len, Sum, RangeSum,
// snapshots — must equal the sorted-slice model exactly.
func TestRebalanceDifferential(t *testing.T) {
	const P, bits, rounds = 5, 20, 40
	s := New(P, &Options{Partition: RangePartition, KeyBits: bits, Async: true, MailboxDepth: 4, Set: smallSet})
	t.Cleanup(s.Close)
	r := workload.NewRNG(11)
	model := map[uint64]bool{}
	sortedModel := func() []uint64 {
		out := make([]uint64, 0, len(model))
		for k := range model {
			out = append(out, k)
		}
		slices.Sort(out)
		return out
	}
	for round := 0; round < rounds; round++ {
		// Skewed inserts, plus periodic removals of a slice of the hot
		// region so boundaries have to move back down.
		ins := skewedKeys(r, 500+r.Intn(1500), bits)
		s.InsertBatchAsync(ins, false)
		for _, k := range ins {
			model[k] = true
		}
		if round%3 == 2 {
			del := skewedKeys(r, 400, bits)
			s.RemoveBatchAsync(del, false)
			for _, k := range del {
				delete(model, k)
			}
		}
		s.Flush()
		switch round % 4 {
		case 1:
			s.RebalanceOnce()
		case 3:
			// Interleave a sweep with in-flight ingest: the next round's
			// batches race it (the monitor's behavior, deterministically).
			s.InsertBatchAsync(nil, true)
			s.RebalanceOnce()
		}
		want := sortedModel()
		if got := s.Keys(); !slices.Equal(got, want) {
			t.Fatalf("round %d: contents diverge from model (%d vs %d keys)", round, len(got), len(want))
		}
		if s.Len() != len(want) {
			t.Fatalf("round %d: Len %d, model %d", round, s.Len(), len(want))
		}
		sn := s.Snapshot()
		if !slices.Equal(sn.Keys(), want) {
			t.Fatalf("round %d: snapshot diverges from model", round)
		}
		for trial := 0; trial < 10; trial++ {
			start := r.Uint64() % (1 << bits)
			end := start + r.Uint64()%(1<<14)
			var wantSum uint64
			wantCount := 0
			for _, k := range want {
				if k >= start && k < end {
					wantSum += k
					wantCount++
				}
			}
			if gs, gc := s.RangeSum(start, end); gs != wantSum || gc != wantCount {
				t.Fatalf("round %d: RangeSum[%d,%d) = %d,%d want %d,%d", round, start, end, gs, gc, wantSum, wantCount)
			}
			if gs, gc := sn.RangeSum(start, end); gs != wantSum || gc != wantCount {
				t.Fatalf("round %d: snapshot RangeSum diverges", round)
			}
		}
		if bounds := s.Bounds(); !slices.IsSorted(bounds) {
			t.Fatalf("round %d: boundary table unsorted: %v", round, bounds)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	if st := s.RebalanceStats(); st.Moves == 0 {
		t.Fatal("differential walk never rebalanced; workload not skewed enough")
	}
}

// TestBackgroundRebalancer: with Options.Rebalance set, the monitor alone
// (no manual sweeps) must pull a continuously skewed ingest stream back
// under MaxSkew.
func TestBackgroundRebalancer(t *testing.T) {
	const P, bits = 4, 22
	s := New(P, &Options{
		Partition: RangePartition, KeyBits: bits, Async: true,
		Rebalance: true, RebalanceEvery: time.Millisecond, MaxSkew: 1.5,
		Set: smallSet,
	})
	t.Cleanup(s.Close)
	r := workload.NewRNG(7)
	for i := 0; i < 40; i++ {
		s.InsertBatchAsync(skewedKeys(r, 2000, bits), false)
	}
	s.Flush()
	deadline := time.Now().Add(10 * time.Second)
	for {
		ratio, _ := s.LoadRatio()
		if ratio <= 1.5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("monitor did not rebalance: ratio %.2f after deadline", ratio)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := s.RebalanceStats(); st.Moves == 0 || st.Checks == 0 {
		t.Fatalf("monitor stats off: %+v", st)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestRebalanceRequiresAsyncRange: the misuse panics promised by the API.
func TestRebalanceRequiresAsyncRange(t *testing.T) {
	if !panics(func() { New(4, &Options{Rebalance: true}) }) {
		t.Fatal("Rebalance without Async+RangePartition must panic")
	}
	if !panics(func() { New(4, &Options{Rebalance: true, Partition: RangePartition}) }) {
		t.Fatal("Rebalance without Async must panic")
	}
	if !panics(func() { New(4, &Options{Rebalance: true, Async: true}) }) {
		t.Fatal("Rebalance under HashPartition must panic")
	}
	s := New(2, &Options{Partition: HashPartition, Async: true})
	defer s.Close()
	if !panics(func() { s.RebalanceOnce() }) {
		t.Fatal("RebalanceOnce on a hash partition must panic")
	}
	sync := New(2, &Options{Partition: RangePartition})
	if !panics(func() { sync.RebalanceOnce() }) {
		t.Fatal("RebalanceOnce on a synchronous set must panic")
	}
	// Closed set: a sweep is a quiet no-op (the monitor may race Close).
	c := New(2, &Options{Partition: RangePartition, Async: true})
	c.Close()
	if c.RebalanceOnce() != 0 {
		t.Fatal("RebalanceOnce on a closed set must be a no-op")
	}
	// Invalid seed tables are rejected at construction.
	if !panics(func() {
		New(3, &Options{Partition: RangePartition, Bounds: []uint64{5}})
	}) {
		t.Fatal("short Bounds must panic")
	}
	if !panics(func() {
		New(3, &Options{Partition: RangePartition, Bounds: []uint64{9, 5}})
	}) {
		t.Fatal("unsorted Bounds must panic")
	}
}

// TestSeededBoundsRouting: a set seeded with an explicit boundary table
// routes by it (the persist layer restarts recovered sets this way).
func TestSeededBoundsRouting(t *testing.T) {
	s := New(3, &Options{Partition: RangePartition, KeyBits: 16, Bounds: []uint64{100, 200}})
	for k, want := range map[uint64]int{1: 0, 99: 0, 100: 1, 199: 1, 200: 2, 1 << 15: 2, ^uint64(0): 2} {
		if got := s.shardOf(k); got != want {
			t.Fatalf("shardOf(%d) = %d, want %d", k, got, want)
		}
	}
	if !slices.Equal(s.Bounds(), []uint64{100, 200}) {
		t.Fatalf("Bounds = %v", s.Bounds())
	}
}

package shard

// Consistent multi-shard reads via writer-published epochs.
//
// The CPMA's pointer-free layout makes a whole-structure copy a
// memcpy-class operation, and its leaf-granular copy-on-write Clone makes
// it cheaper still — O(dirty leaves) per publication — which this file
// turns into cheap snapshots the way Aspen derives functional graph
// snapshots and PAM-style structures derive persistence: the structure's
// sole mutator publishes an immutable handle after it mutates, and readers
// grab handles instead of locks. Two capture paths share one read implementation (cut):
//
//   - Async mode: each shard's mailbox writer is already the shard's only
//     mutator, so after every drain that changed state it stamps the shard's
//     monotone epoch and publishes a frozen Clone through an atomic.Pointer
//     — zero new synchronization on the apply path. Snapshot() then grabs
//     one published handle per shard, lock-free, without stalling ingest.
//   - Sync mode: there are no writer goroutines, so Snapshot() holds every
//     shard's read lock simultaneously (an atomic cut — writers are blocked
//     everywhere for the duration) and refreshes only the shards whose
//     published handle is stale; an unchanged shard reuses its last clone.
//
// The live multi-shard read paths (Len, Sum, Keys, Map/MapRange, Next, Max,
// RangeSum, SizeBytes) go through the same machinery via withCut: they hold
// all overlapping read locks at once and run the shared cut algorithms
// against the live sets, so even non-snapshot aggregate reads observe one
// atomic cut instead of per-shard consistency.

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/cpma"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// shardSnap is one shard's published frozen state: an immutable CPMA handle
// stamped with the epoch (count of state-changing applies) it reflects and
// the span generation (router.spanGen) its shard's key range had when it
// was published. Once published the handle is never mutated — the live set
// keeps mutating and the next publication clones afresh. The gen stamp is
// what keeps captures coherent across rebalances: a capture only accepts a
// handle whose gen matches the routing table it will serve reads with.
type shardSnap struct {
	epoch uint64
	gen   uint64
	set   *cpma.CPMA
}

// cut is a captured per-shard view that the multi-shard read algorithms run
// against: at(p) is shard p's CPMA as of the capture, for p in [lo, hi]
// (sets is span-sized and indexed relative to lo, so a narrow-span capture
// allocates only what it covers). A cut over the live sets is valid only
// while the overlapping read locks are held (withCut); a cut over
// published frozen handles is valid forever (Snapshot). rt is the routing
// table the capture was validated against — the cut's data placement and
// its routing always agree, even across rebalances.
//
// With the hot-key absorber on, a live cut also captures each shard's
// promoted-key table (hot; same indexing) and the read algorithms overlay
// the absorbed pending state — reading slot bits under the same read locks
// that keep the writer out — so live reads stay exact between
// reconciliations. Snapshot cuts leave hot nil: published handles are
// reconciled before publication and never need the overlay.
type cut struct {
	sets   []*cpma.CPMA // sets[p-lo] is shard p's CPMA
	hot    []*hotTable  // hot[p-lo] is shard p's promoted-key table (live cuts only)
	rt     *router
	lo, hi int
}

func (v cut) at(p int) *cpma.CPMA { return v.sets[p-v.lo] }

// hotAt returns shard p's captured promoted-key table, nil when the
// absorber is off, nothing is promoted, or the cut is a snapshot.
func (v cut) hotAt(p int) *hotTable {
	if v.hot == nil {
		return nil
	}
	return v.hot[p-v.lo]
}

// withCut computes the shard interval span(rt) under the current router,
// acquires those shards' read locks in ascending order, and — after
// re-validating that the router was not swapped by a concurrent rebalance
// while the locks were being taken (rebalances install new routers while
// holding the affected shards' write locks, so a reader that holds a lock
// and still sees the old pointer routed correctly) — runs f against the
// resulting atomic cut of the live sets. Holding every overlapping lock at
// once is what upgrades the multi-shard read paths from per-shard
// consistency to one consistent cut: no writer can land between the
// capture of shard p and shard q. Ascending acquisition cannot deadlock
// against writers or the rebalancer (which locks its pair ascending) or
// against other cuts. span may return hi < lo for a degenerate range; f
// then runs on an empty cut.
func (s *Sharded) withCut(span func(rt *router) (lo, hi int), f func(v cut)) {
	for {
		rt := s.router()
		lo, hi := span(rt)
		if hi < lo {
			f(cut{rt: rt, lo: 0, hi: -1})
			return
		}
		for p := lo; p <= hi; p++ {
			s.cells[p].mu.RLock()
		}
		if s.router() == rt {
			sets := make([]*cpma.CPMA, hi-lo+1)
			var hots []*hotTable
			if s.opt.HotKeys {
				// Captured under the read locks: the writer installs tables
				// and mutates slots only under the write lock, so both are
				// stable for the cut's lifetime.
				hots = make([]*hotTable, hi-lo+1)
			}
			for p := lo; p <= hi; p++ {
				sets[p-lo] = s.cells[p].set
				if hots != nil {
					hots[p-lo] = s.cells[p].hot.Load()
				}
			}
			f(cut{sets: sets, hot: hots, rt: rt, lo: lo, hi: hi})
			for p := lo; p <= hi; p++ {
				s.cells[p].mu.RUnlock()
			}
			return
		}
		// A rebalance swapped the router between routing and locking; the
		// spans (and possibly the data placement) moved, so re-route.
		for p := lo; p <= hi; p++ {
			s.cells[p].mu.RUnlock()
		}
	}
}

// fullSpan is the span callback for whole-set reads.
func fullSpan(rt *router) (int, int) { return 0, rt.shards - 1 }

// publish refreshes c's published handle if state-changing applies landed
// since the last publication (or the shard's span changed generation), and
// returns the current handle. The caller must exclude mutation of c.set
// for the duration: the async shard writer (the shard's sole mutator)
// calls it between applies, sync-mode capture calls it while holding the
// shard's read lock, and the rebalancer calls it with the writer quiesced
// and the shard's write lock held.
//
// Publication is single-flight per (epoch, gen): concurrent sync-mode
// captures of the same stale shard serialize on pubMu, exactly one builds
// the clone, and the rest reuse it. This is load-bearing beyond the stats:
// cpma.Clone performs a dirty-window handoff and flips COW ownership bits
// on the parent, so two racing Clones of one cell would corrupt each other
// — the old CompareAndSwap-and-discard scheme stopped being sound the
// moment Clone became copy-on-write.
func (s *Sharded) publish(p int, c *cell) *shardSnap {
	e := c.epoch.Load()
	g := s.router().spanGen[p]
	if old := c.snap.Load(); old != nil && old.epoch == e && old.gen == g {
		return old
	}
	c.pubMu.Lock()
	defer c.pubMu.Unlock()
	// Re-check under the lock: a concurrent capture may have published this
	// (epoch, gen) while we waited.
	e = c.epoch.Load()
	g = s.router().spanGen[p]
	if old := c.snap.Load(); old != nil && old.epoch == e && old.gen == g {
		return old
	}
	t0 := time.Now()
	sn := &shardSnap{epoch: e, gen: g, set: c.set.Clone()}
	c.snap.Store(sn)
	s.snapPublishes.Add(1)
	s.snapCloneBytes.Add(sn.set.CloneCost())
	s.snapFullBytes.Add(sn.set.SizeBytes())
	s.pm.publish.Since(t0)
	s.trace.Record(p, obs.EvPublish, e, g, sn.set.CloneCost(), 0)
	return sn
}

// Snapshot is a frozen, immutable view of a Sharded set: one consistent
// epoch cut across all shards, serving the full read API off frozen CPMAs
// with no locks. Scans on a Snapshot never block writers and never observe
// in-flight batches, so long analytics reads can run concurrently with
// ingest. A Snapshot remains valid forever — including after the set is
// Closed.
//
// Consistency: each shard's handle reflects a prefix of that shard's
// applied operation sequence (its mailbox is FIFO and its writer publishes
// only at rest points between applies), and all handles are captured at one
// instant. In async mode the cut is a frontier — different shards may sit
// at different prefixes of a multi-shard batch stream — while in sync mode
// the capture holds every shard lock at once and is a pointwise atomic cut.
// Within one Snapshot every read is mutually consistent: Len equals the
// number of keys Map visits, Sum matches Keys, and repeated reads are
// stable.
//
// A snapshot observes only published state, and publication happens at
// drain boundaries and Flush tokens — not at ticket completion. So in
// async mode even a blocking mutation (Insert, a ticketed InsertBatch)
// that has returned may be missing from an immediately captured Snapshot
// until its drain ends; the guarantee is read-your-flushes, not
// read-your-writes: after a Flush returns, the published handles include
// everything the Flush covered. Call Flush before Snapshot (or set
// Options.FlushReads, which Snapshot honors) when the capture must cover
// your own preceding mutations. Sync-mode captures never lag: they
// publish the live state under the shard locks.
type Snapshot struct {
	v      cut
	epochs []uint64
}

// Snapshot captures one epoch cut across all shards. In async mode it is a
// lock-free handle grab — no flush barrier, no shard locks, O(shards) work
// — and honors Options.FlushReads by flushing first. In sync mode it holds
// all shard read locks for the capture and clones only shards that changed
// since their last publication (repeated snapshots of an unchanged set are
// free and share handles).
//
// Rebalance coherence: the async capture validates every grabbed handle's
// span generation against the routing table it grabbed first (and
// re-checks the table afterwards), retrying if a concurrent boundary move
// tore the capture — so a Snapshot can never route with spans that
// disagree with where its frozen handles actually hold the keys. The
// sync-mode capture needs no validation: rebalancing requires the async
// pipeline.
func (s *Sharded) Snapshot() *Snapshot {
	t0 := time.Now()
	defer s.pm.capture.Since(t0)
	s.snapCaptures.Add(1)
	P := len(s.cells)
	snaps := make([]*shardSnap, P)
	var rt *router
	if s.opt.Async {
		if s.opt.FlushReads {
			s.Flush()
		}
	capture:
		for {
			rt = s.router()
			for p := range s.cells {
				sp := s.cells[p].snap.Load()
				if sp.gen != rt.spanGen[p] {
					// This handle was published under a different span for
					// shard p (a rebalance is mid-publication); its keys may
					// sit on the other side of a moved boundary. Re-grab.
					continue capture
				}
				snaps[p] = sp
			}
			if s.router() == rt {
				break
			}
		}
	} else {
		rt = s.router()
		for p := range s.cells {
			s.cells[p].mu.RLock()
		}
		parallel.For(P, 1, func(p int) {
			snaps[p] = s.publish(p, &s.cells[p])
		})
		for p := range s.cells {
			s.cells[p].mu.RUnlock()
		}
	}
	sn := &Snapshot{
		v:      cut{sets: make([]*cpma.CPMA, P), rt: rt, lo: 0, hi: P - 1},
		epochs: make([]uint64, P),
	}
	for p, sp := range snaps {
		sn.v.sets[p] = sp.set
		sn.epochs[p] = sp.epoch
	}
	return sn
}

// Shards returns the number of shards the snapshot covers.
func (sn *Snapshot) Shards() int { return len(sn.v.sets) }

// ShardSets returns the snapshot's frozen per-shard CPMA handles in shard
// order. The handles are immutable by the publication contract: callers may
// scan them freely (Leaves/LeafMap/Map and the other read APIs) from any
// number of goroutines, concurrently with ingest on the live set, but must
// never mutate them. Under RangePartition shard order is key order, so the
// concatenated leaf sequence of the returned sets holds every key of the
// snapshot in ascending order — the property leaf-level analytics (the
// sharded F-Graph view) build on. The returned slice is a copy; the
// handles are the originals.
func (sn *Snapshot) ShardSets() []*cpma.CPMA {
	return append([]*cpma.CPMA(nil), sn.v.sets...)
}

// Bounds returns a copy of the interior span-boundary table the snapshot
// was routed with (nil for a single shard or a hash partition): shards-1
// ascending keys, shard p owning [Bounds[p-1], Bounds[p]). Because capture
// validates every handle's span generation against this table, the
// returned bounds always agree with where the frozen handles actually hold
// their keys — even when the capture raced a rebalance.
func (sn *Snapshot) Bounds() []uint64 {
	return append([]uint64(nil), sn.v.rt.bounds...)
}

// RangePartitioned reports whether the snapshot's shards partition the key
// space by contiguous ranges (shard order = key order).
func (sn *Snapshot) RangePartitioned() bool { return sn.v.rt.part == RangePartition }

// Epochs returns the per-shard epochs (state-changing applies reflected)
// the snapshot was cut at. Epochs are monotone per shard: a later Snapshot
// never reports a smaller epoch for any shard.
func (sn *Snapshot) Epochs() []uint64 {
	return append([]uint64(nil), sn.epochs...)
}

// Len returns the number of keys in the snapshot.
func (sn *Snapshot) Len() int { return sn.v.length() }

// SizeBytes returns the summed memory footprint of the frozen shards.
func (sn *Snapshot) SizeBytes() uint64 { return sn.v.sizeBytes() }

// Sum returns the sum (mod 2^64) of all keys in the snapshot.
func (sn *Snapshot) Sum() uint64 { return sn.v.sum() }

// RangeSum sums keys in [start, end).
func (sn *Snapshot) RangeSum(start, end uint64) (sum uint64, count int) {
	return sn.v.rangeSum(start, end)
}

// Has reports whether x is in the snapshot.
func (sn *Snapshot) Has(x uint64) bool {
	if x == 0 {
		return false
	}
	return sn.v.sets[sn.v.rt.shardOf(x)].Has(x)
}

// Next returns the smallest key >= x in the snapshot.
func (sn *Snapshot) Next(x uint64) (uint64, bool) { return sn.v.next(x) }

// Min returns the smallest key in the snapshot.
func (sn *Snapshot) Min() (uint64, bool) { return sn.v.next(1) }

// Max returns the largest key in the snapshot.
func (sn *Snapshot) Max() (uint64, bool) { return sn.v.max() }

// MapRange applies f to keys in [start, end) in ascending order, stopping
// early when f returns false; reports whether the scan completed. The scan
// is lock-free; f may freely call back into the snapshot or the live set.
func (sn *Snapshot) MapRange(start, end uint64, f func(uint64) bool) bool {
	if start >= end {
		return true
	}
	return sn.v.mapRange(start, end, f)
}

// Map applies f to every key in ascending order, stopping early when f
// returns false; reports whether the scan completed. Lock-free.
func (sn *Snapshot) Map(f func(uint64) bool) bool {
	return sn.v.mapAll(f)
}

// Keys returns all keys in the snapshot in ascending order.
func (sn *Snapshot) Keys() []uint64 {
	var out []uint64
	sn.Map(func(v uint64) bool {
		out = append(out, v)
		return true
	})
	return out
}

// Validate checks every frozen shard's CPMA invariants (a test helper).
func (sn *Snapshot) Validate() error {
	for p, set := range sn.v.sets {
		if err := set.Validate(); err != nil {
			return fmt.Errorf("snapshot shard %d: %w", p, err)
		}
	}
	return nil
}

// --- shared read algorithms over a cut ---

func (v cut) length() int {
	total := 0
	for i, set := range v.sets {
		total += set.Len()
		if v.hot != nil {
			dn, _ := v.hot[i].lenSumDelta()
			total += dn
		}
	}
	return total
}

func (v cut) sizeBytes() uint64 {
	return parallel.ReduceSum(len(v.sets), 1, func(i int) uint64 {
		return v.sets[i].SizeBytes()
	})
}

func (v cut) sum() uint64 {
	return parallel.ReduceSum(len(v.sets), 1, func(i int) uint64 {
		s := v.sets[i].Sum()
		if v.hot != nil {
			_, dsum := v.hot[i].lenSumDelta()
			s += dsum
		}
		return s
	})
}

func (v cut) rangeSum(start, end uint64) (uint64, int) {
	if start >= end {
		return 0, 0
	}
	lo, hi := v.rt.shardSpan(start, end)
	if lo < v.lo {
		lo = v.lo
	}
	if hi > v.hi {
		hi = v.hi
	}
	var su atomic.Uint64
	var cnt atomic.Int64
	parallel.For(hi-lo+1, 1, func(i int) {
		s, k := v.at(lo+i).RangeSum(start, end)
		if ht := v.hotAt(lo + i); ht != nil {
			dn, dsum := ht.rangeDelta(start, end)
			s += dsum
			k += dn
		}
		su.Add(s)
		cnt.Add(int64(k))
	})
	return su.Load(), int(cnt.Load())
}

// shardNext is one shard's successor query through the overlay (a plain
// CPMA Next when the shard has no absorbed state).
func (v cut) shardNext(p int, x uint64) (uint64, bool) {
	if ht := v.hotAt(p); ht != nil {
		return overlayNext(v.at(p), ht, x)
	}
	return v.at(p).Next(x)
}

func (v cut) next(x uint64) (uint64, bool) {
	if v.rt.part == RangePartition {
		lo := v.rt.shardOf(x)
		if lo < v.lo {
			lo = v.lo
		}
		for p := lo; p <= v.hi; p++ {
			if r, ok := v.shardNext(p, x); ok {
				return r, true
			}
		}
		return 0, false
	}
	var best uint64
	found := false
	for p := v.lo; p <= v.hi; p++ {
		if r, ok := v.shardNext(p, x); ok && (!found || r < best) {
			best, found = r, true
		}
	}
	return best, found
}

// shardMax is one shard's maximum through the overlay.
func (v cut) shardMax(p int) (uint64, bool) {
	if ht := v.hotAt(p); ht != nil {
		return overlayMax(v.at(p), ht)
	}
	return v.at(p).Max()
}

func (v cut) max() (uint64, bool) {
	var best uint64
	found := false
	for p := v.hi; p >= v.lo; p-- {
		if r, ok := v.shardMax(p); ok {
			if v.rt.part == RangePartition {
				return r, true
			}
			if !found || r > best {
				best, found = r, true
			}
		}
	}
	return best, found
}

// mapRange is the full ordered scan dispatch for a cut whose lifetime does
// not depend on locks (Snapshot): range partitions stream in key order, a
// hash partition gathers the merged range and then iterates. The live
// Sharded front-end cannot use it for the hash path — there f must run
// after the shard locks are released — so Sharded.MapRange keeps the
// gather-inside/iterate-outside split and shares only the pieces.
func (v cut) mapRange(start, end uint64, f func(uint64) bool) bool {
	if v.rt.part == RangePartition {
		return v.streamRange(start, end, f)
	}
	for _, x := range v.gatherRange(start, end) {
		if !f(x) {
			return false
		}
	}
	return true
}

// mapAll is mapRange over the whole key space (see mapRange's caveats).
func (v cut) mapAll(f func(uint64) bool) bool {
	if v.rt.part == RangePartition {
		return v.streamAll(f)
	}
	for _, x := range v.gatherAll() {
		if !f(x) {
			return false
		}
	}
	return true
}

// streamRange streams [start, end) in key order across a range-partitioned
// cut, shard by shard, calling f inline.
func (v cut) streamRange(start, end uint64, f func(uint64) bool) bool {
	lo, hi := v.rt.shardSpan(start, end)
	if lo < v.lo {
		lo = v.lo
	}
	if hi > v.hi {
		hi = v.hi
	}
	for p := lo; p <= hi; p++ {
		if ht := v.hotAt(p); ht != nil {
			if !overlayMapRange(v.at(p), ht, start, end, f) {
				return false
			}
		} else if !v.at(p).MapRange(start, end, f) {
			return false
		}
	}
	return true
}

// streamAll streams every key in order across a range-partitioned cut.
func (v cut) streamAll(f func(uint64) bool) bool {
	for i, set := range v.sets {
		if ht := v.hotAt(v.lo + i); ht != nil {
			// The overlay merge is half-open; cover the top key explicitly.
			if !overlayMapRange(set, ht, 1, ^uint64(0), f) {
				return false
			}
			if top := ^uint64(0); overlayHas(set, ht, top) && !f(top) {
				return false
			}
		} else if !set.Map(f) {
			return false
		}
	}
	return true
}

// gatherRange collects [start, end) from every shard of the cut in parallel
// and merges the disjoint sorted runs (the hash-partition scan shape).
func (v cut) gatherRange(start, end uint64) []uint64 {
	lists := make([][]uint64, len(v.sets))
	parallel.For(len(lists), 1, func(i int) {
		var keys []uint64
		collect := func(x uint64) bool {
			keys = append(keys, x)
			return true
		}
		if ht := v.hotAt(v.lo + i); ht != nil {
			overlayMapRange(v.sets[i], ht, start, end, collect)
		} else {
			v.sets[i].MapRange(start, end, collect)
		}
		lists[i] = keys
	})
	return mergeLists(lists)
}

// gatherAll collects every key of the cut, including the maximum key that
// the half-open gather range cannot express.
func (v cut) gatherAll() []uint64 {
	out := v.gatherRange(1, ^uint64(0))
	top := ^uint64(0)
	p := v.rt.shardOf(top)
	if overlayHas(v.at(p), v.hotAt(p), top) {
		out = append(out, top)
	}
	return out
}

// SnapshotStats counts the snapshot machinery's work: epoch advances
// (state-changing applies across shards), publications (frozen handles
// materialized — each one a cpma.Clone), the bytes those clones actually
// copied versus the full-copy baseline, and Snapshot captures.
// Publishes <= Epochs + Shards (each shard seeds one publication at epoch
// 0 when the set is built): the gap is the publication amortization
// (drains coalesce many applies into one clone, unchanged shards
// republish nothing). CloneBytes/FullCopyBytes is the copy-on-write win:
// clones
// materialize only the per-leaf spine plus the leaves dirtied since the
// previous publication, while FullCopyBytes accumulates what eager deep
// copies of the same handles would have cost.
type SnapshotStats struct {
	Epochs        uint64 // state-changing applies across all shards
	Publishes     uint64 // frozen handles published (cpma.Clone calls)
	CloneBytes    uint64 // bytes materialized across those clones (COW)
	FullCopyBytes uint64 // SizeBytes of the same handles (full-copy baseline)
	Captures      uint64 // Snapshot() calls
}

// Sub returns the counter deltas st - prev (for measuring one phase).
func (st SnapshotStats) Sub(prev SnapshotStats) SnapshotStats {
	return SnapshotStats{
		Epochs:        st.Epochs - prev.Epochs,
		Publishes:     st.Publishes - prev.Publishes,
		CloneBytes:    st.CloneBytes - prev.CloneBytes,
		FullCopyBytes: st.FullCopyBytes - prev.FullCopyBytes,
		Captures:      st.Captures - prev.Captures,
	}
}

// SnapshotStats returns the snapshot counters. Counters are monotone;
// snapshot before and after a phase and Sub the two to measure it.
func (s *Sharded) SnapshotStats() SnapshotStats {
	st := SnapshotStats{
		Publishes:     s.snapPublishes.Load(),
		CloneBytes:    s.snapCloneBytes.Load(),
		FullCopyBytes: s.snapFullBytes.Load(),
		Captures:      s.snapCaptures.Load(),
	}
	for p := range s.cells {
		st.Epochs += s.cells[p].epoch.Load()
	}
	return st
}

// Package shard layers a concurrent, sharded front-end over the
// batch-parallel CPMA.
//
// The CPMA is batch-parallel, not concurrent (paper §2): a batch update uses
// every core, but only a single writer may mutate the structure at a time,
// which caps a server at one mutating client no matter how many cores are
// free. A Sharded set turns P single-writer CPMAs into one concurrently
// usable set — the way PaC-trees wrap batch-parallel structures behind a
// concurrent collection interface. Keys are partitioned across P shards
// (by hash or by key range), each shard owning one CPMA guarded by its own
// RWMutex:
//
//   - Point mutations (Insert, Remove) lock only the owning shard.
//   - Batch mutations (InsertBatch, RemoveBatch) scatter the batch into
//     per-shard sub-batches and apply them with one writer goroutine per
//     shard, so a single large batch still uses many cores and independent
//     clients mutating different shards proceed in parallel.
//   - Reads (Has, Next, MapRange, RangeSum, Sum, Len, Keys) take shard read
//     locks, so any number of readers proceed concurrently with each other
//     and with writers on other shards.
//
// Consistency contract: each shard is individually linearizable — its mutex
// serializes access, and within a shard the CPMA's single-writer contract
// is preserved by construction. Cross-shard reads (Len, Sum, Keys, a
// MapRange spanning several shards, ...) do NOT take a global snapshot:
// they observe each shard at a possibly different instant. Quiesce external
// writers when a multi-shard read must be atomic. Iteration callbacks
// (Map, MapRange) may run under a shard's read lock and must not call back
// into the same Sharded.
package shard

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/cpma"
	"repro/internal/parallel"
)

// Partition selects how keys are routed to shards.
type Partition int

const (
	// HashPartition routes a key through a splitmix64 finalizer, spreading
	// any input distribution evenly across shards. Ordered operations
	// (MapRange, Keys) must merge across all shards.
	HashPartition Partition = iota
	// RangePartition splits the key space [1, 2^KeyBits) into P contiguous
	// equal spans, so ordered operations touch only the overlapping shards.
	// Skewed key distributions will load shards unevenly.
	RangePartition
)

// Options configures a Sharded set.
type Options struct {
	// Partition selects the routing policy (default HashPartition).
	Partition Partition
	// KeyBits is the expected key width for RangePartition: keys are assumed
	// to lie in [1, 2^KeyBits), and keys at or above 2^KeyBits all route to
	// the last shard. 0 (or >64) means the full 64-bit space.
	KeyBits int
	// Set configures each shard's CPMA; nil selects the paper's defaults.
	Set *cpma.Options
}

// cell is one shard: a CPMA plus its lock, padded so that neighboring
// shards' locks do not share a cache line under write contention.
type cell struct {
	mu  sync.RWMutex
	set *cpma.CPMA
	_   [96]byte
}

// Sharded is a concurrent set of nonzero uint64 keys built from P
// single-writer CPMA shards. The zero value is not usable; call New.
type Sharded struct {
	cells []cell
	opt   Options
	width uint64 // span per shard under RangePartition
}

// New returns a Sharded set with the given number of shards (clamped to at
// least 1); opts may be nil for hash partitioning over default CPMAs.
func New(shards int, opts *Options) *Sharded {
	var o Options
	if opts != nil {
		o = *opts
	}
	if shards < 1 {
		shards = 1
	}
	if o.KeyBits <= 0 || o.KeyBits > 64 {
		o.KeyBits = 64
	}
	s := &Sharded{cells: make([]cell, shards), opt: o}
	s.width = spanWidth(o.KeyBits, shards)
	for i := range s.cells {
		s.cells[i].set = cpma.New(o.Set)
	}
	return s
}

// Shards returns the number of shards.
func (s *Sharded) Shards() int { return len(s.cells) }

// Insert adds x, returning false if already present. Locks one shard.
func (s *Sharded) Insert(x uint64) bool {
	c := &s.cells[s.shardOf(x)]
	c.mu.Lock()
	ok := c.set.Insert(x)
	c.mu.Unlock()
	return ok
}

// Remove deletes x, returning false if absent. Locks one shard.
func (s *Sharded) Remove(x uint64) bool {
	c := &s.cells[s.shardOf(x)]
	c.mu.Lock()
	ok := c.set.Remove(x)
	c.mu.Unlock()
	return ok
}

// Has reports whether x is in the set. Read-locks one shard.
func (s *Sharded) Has(x uint64) bool {
	if x == 0 {
		return false
	}
	c := &s.cells[s.shardOf(x)]
	c.mu.RLock()
	ok := c.set.Has(x)
	c.mu.RUnlock()
	return ok
}

// InsertBatch inserts a batch of keys, returning how many were new. The
// batch is scattered into per-shard sub-batches applied by one writer
// goroutine per shard. If sorted is true the keys must be in ascending
// order (scattering preserves order, so sub-batches stay sorted).
func (s *Sharded) InsertBatch(keys []uint64, sorted bool) int {
	return s.batch(keys, sorted, func(set *cpma.CPMA, sub []uint64) int {
		return set.InsertBatch(sub, sorted)
	})
}

// RemoveBatch removes a batch of keys, returning how many were present.
func (s *Sharded) RemoveBatch(keys []uint64, sorted bool) int {
	return s.batch(keys, sorted, func(set *cpma.CPMA, sub []uint64) int {
		return set.RemoveBatch(sub, sorted)
	})
}

func (s *Sharded) batch(keys []uint64, sorted bool, apply func(set *cpma.CPMA, sub []uint64) int) int {
	if len(keys) == 0 {
		return 0
	}
	subs := s.split(keys, sorted)
	var total atomic.Int64
	parallel.For(len(subs), 1, func(p int) {
		sub := subs[p]
		if len(sub) == 0 {
			return
		}
		c := &s.cells[p]
		c.mu.Lock()
		n := apply(c.set, sub)
		c.mu.Unlock()
		total.Add(int64(n))
	})
	return int(total.Load())
}

// Len returns the number of keys stored, summed shard by shard (not a
// global snapshot under concurrent writes).
func (s *Sharded) Len() int {
	total := 0
	for i := range s.cells {
		c := &s.cells[i]
		c.mu.RLock()
		total += c.set.Len()
		c.mu.RUnlock()
	}
	return total
}

// SizeBytes returns the summed memory footprint of the shards.
func (s *Sharded) SizeBytes() uint64 {
	return parallel.ReduceSum(len(s.cells), 1, func(p int) uint64 {
		c := &s.cells[p]
		c.mu.RLock()
		v := c.set.SizeBytes()
		c.mu.RUnlock()
		return v
	})
}

// Sum returns the sum (mod 2^64) of all keys, shards processed in parallel.
func (s *Sharded) Sum() uint64 {
	return parallel.ReduceSum(len(s.cells), 1, func(p int) uint64 {
		c := &s.cells[p]
		c.mu.RLock()
		v := c.set.Sum()
		c.mu.RUnlock()
		return v
	})
}

// RangeSum sums keys in [start, end). Under RangePartition only the
// overlapping shards are read; under HashPartition every shard is, in
// parallel (order is irrelevant for a sum).
func (s *Sharded) RangeSum(start, end uint64) (sum uint64, count int) {
	if start >= end {
		return 0, 0
	}
	lo, hi := s.shardSpan(start, end)
	var su atomic.Uint64
	var cnt atomic.Int64
	parallel.For(hi-lo+1, 1, func(i int) {
		c := &s.cells[lo+i]
		c.mu.RLock()
		v, k := c.set.RangeSum(start, end)
		c.mu.RUnlock()
		su.Add(v)
		cnt.Add(int64(k))
	})
	return su.Load(), int(cnt.Load())
}

// Next returns the smallest key >= x across all shards.
func (s *Sharded) Next(x uint64) (uint64, bool) {
	if s.opt.Partition == RangePartition {
		for p := s.shardOf(x); p < len(s.cells); p++ {
			c := &s.cells[p]
			c.mu.RLock()
			v, ok := c.set.Next(x)
			c.mu.RUnlock()
			if ok {
				return v, true
			}
		}
		return 0, false
	}
	var best uint64
	found := false
	for p := range s.cells {
		c := &s.cells[p]
		c.mu.RLock()
		v, ok := c.set.Next(x)
		c.mu.RUnlock()
		if ok && (!found || v < best) {
			best, found = v, true
		}
	}
	return best, found
}

// Min returns the smallest key in the set.
func (s *Sharded) Min() (uint64, bool) {
	return s.Next(1)
}

// Max returns the largest key in the set.
func (s *Sharded) Max() (uint64, bool) {
	var best uint64
	found := false
	for p := len(s.cells) - 1; p >= 0; p-- {
		c := &s.cells[p]
		c.mu.RLock()
		v, ok := c.set.Max()
		c.mu.RUnlock()
		if ok {
			if s.opt.Partition == RangePartition {
				return v, true
			}
			if !found || v > best {
				best, found = v, true
			}
		}
	}
	return best, found
}

// MapRange applies f to keys in [start, end) in ascending order, stopping
// early when f returns false; reports whether the scan completed. Under
// RangePartition the overlapping shards stream in key order one at a time,
// with f running under the current shard's read lock — f must not call back
// into this Sharded, or it can deadlock against a waiting writer. Under
// HashPartition the whole range is first gathered from every shard in
// parallel and merged (so early exits still pay the full gather) and f runs
// lock-free.
func (s *Sharded) MapRange(start, end uint64, f func(uint64) bool) bool {
	if start >= end {
		return true
	}
	if s.opt.Partition == RangePartition {
		lo, hi := s.shardSpan(start, end)
		for p := lo; p <= hi; p++ {
			c := &s.cells[p]
			c.mu.RLock()
			done := c.set.MapRange(start, end, f)
			c.mu.RUnlock()
			if !done {
				return false
			}
		}
		return true
	}
	for _, v := range s.gatherMerge(start, end) {
		if !f(v) {
			return false
		}
	}
	return true
}

// Map applies f to every key in ascending order, stopping early when f
// returns false; reports whether the scan completed. The same locking
// contract as MapRange applies: under RangePartition f runs under shard
// read locks and must not call back into this Sharded.
func (s *Sharded) Map(f func(uint64) bool) bool {
	if s.opt.Partition == RangePartition {
		for p := range s.cells {
			c := &s.cells[p]
			c.mu.RLock()
			done := c.set.Map(f)
			c.mu.RUnlock()
			if !done {
				return false
			}
		}
		return true
	}
	for _, v := range s.gatherMerge(1, ^uint64(0)) {
		if !f(v) {
			return false
		}
	}
	// gatherMerge's half-open range cannot express the maximum key.
	top := ^uint64(0)
	if s.Has(top) && !f(top) {
		return false
	}
	return true
}

// Keys returns all keys in ascending order; primarily for tests.
func (s *Sharded) Keys() []uint64 {
	out := make([]uint64, 0, s.Len())
	s.Map(func(v uint64) bool {
		out = append(out, v)
		return true
	})
	return out
}

// gatherMerge collects each shard's slice of [start, end) under its read
// lock (shards in parallel) and merges the per-shard sorted runs. Shards
// hold disjoint keys, so a plain merge suffices.
func (s *Sharded) gatherMerge(start, end uint64) []uint64 {
	lists := make([][]uint64, len(s.cells))
	parallel.For(len(s.cells), 1, func(p int) {
		c := &s.cells[p]
		c.mu.RLock()
		var keys []uint64
		c.set.MapRange(start, end, func(v uint64) bool {
			keys = append(keys, v)
			return true
		})
		c.mu.RUnlock()
		lists[p] = keys
	})
	return mergeLists(lists)
}

// mergeLists merges disjoint sorted runs pairwise (log P rounds of the
// load-balanced parallel merge).
func mergeLists(lists [][]uint64) []uint64 {
	for len(lists) > 1 {
		next := make([][]uint64, 0, (len(lists)+1)/2)
		for i := 0; i+1 < len(lists); i += 2 {
			a, b := lists[i], lists[i+1]
			switch {
			case len(a) == 0:
				next = append(next, b)
			case len(b) == 0:
				next = append(next, a)
			default:
				out := make([]uint64, len(a)+len(b))
				parallel.Merge(a, b, out)
				next = append(next, out)
			}
		}
		if len(lists)%2 == 1 {
			next = append(next, lists[len(lists)-1])
		}
		lists = next
	}
	if len(lists) == 0 {
		return nil
	}
	return lists[0]
}

// Validate checks every shard's CPMA invariants (a test helper); callers
// must quiesce writers first.
func (s *Sharded) Validate() error {
	for p := range s.cells {
		c := &s.cells[p]
		c.mu.RLock()
		err := c.set.Validate()
		c.mu.RUnlock()
		if err != nil {
			return fmt.Errorf("shard %d: %w", p, err)
		}
	}
	return nil
}

// Package shard layers a concurrent, sharded front-end over the
// batch-parallel CPMA.
//
// The CPMA is batch-parallel, not concurrent (paper §2): a batch update uses
// every core, but only a single writer may mutate the structure at a time,
// which caps a server at one mutating client no matter how many cores are
// free. A Sharded set turns P single-writer CPMAs into one concurrently
// usable set — the way PaC-trees wrap batch-parallel structures behind a
// concurrent collection interface. Keys are partitioned across P shards
// (by hash or by key range), each shard owning one CPMA guarded by its own
// RWMutex:
//
//   - Point mutations (Insert, Remove) lock only the owning shard.
//   - Batch mutations (InsertBatch, RemoveBatch) scatter the batch into
//     per-shard sub-batches and apply them with one writer goroutine per
//     shard, so a single large batch still uses many cores and independent
//     clients mutating different shards proceed in parallel.
//   - Reads (Has, Next, MapRange, RangeSum, Sum, Len, Keys) take shard read
//     locks, so any number of readers proceed concurrently with each other
//     and with writers on other shards.
//
// # Asynchronous ingest (Options.Async)
//
// In the default synchronous mode every batch call blocks until its
// sub-batches land, so under many concurrent clients each shard applies a
// stream of small batches and forfeits exactly the amortization that makes
// CPMA batches fast (larger merged batches insert strictly faster per
// element — paper Fig. 1). Async mode decouples accepting updates from
// applying them: each shard owns a bounded mailbox (Options.MailboxDepth)
// drained by a dedicated writer goroutine that coalesces adjacent pending
// sub-batches into one sorted merge and applies it as a single batch under
// the shard lock.
//
//   - InsertBatchAsync/RemoveBatchAsync scatter, enqueue, and return
//     without waiting for the apply. A full mailbox exerts backpressure:
//     the enqueue blocks until the writer catches up.
//   - InsertBatch/RemoveBatch on an async set enqueue with a completion
//     ticket and wait, so they remain exact (their fresh/removed counts are
//     computed by applying them individually) and everything they enqueued
//     is applied when they return.
//   - Flush blocks until every operation enqueued before the call is
//     applied; it is the read barrier for async ingest. Operations enqueued
//     concurrently with a Flush may or may not be covered by it.
//   - Close drains all mailboxes (a final implicit Flush), stops the
//     writers, and makes further mutations panic; reads remain valid on the
//     closed set. Close must not race with in-flight mutations, but is safe
//     against concurrent Flush and reads, and is idempotent.
//
// # Consistency contract
//
// Each shard is individually linearizable — its mailbox is FIFO and its
// mutex serializes access, so within a shard the CPMA's single-writer
// contract is preserved by construction, and all operations enqueued by
// one goroutine apply in their enqueue order on every shard they touch.
// Operations from different goroutines interleave in mailbox arrival
// order, exactly as lock-acquisition order interleaves them in synchronous
// mode.
//
// Reads on an async set read through by default: they observe only what
// the writers have applied, so a client's own fire-and-forget batches may
// be invisible until a Flush. Setting Options.FlushReads makes every read
// flush the shards it touches first (read-your-enqueues at per-shard
// cost); Len, Sum, Keys and friends then flush every shard.
//
// Cross-shard reads (Len, Sum, Keys, a MapRange spanning several shards,
// Next, Max, ...) observe one atomic cut: they hold every overlapping
// shard's read lock simultaneously for the capture, so a concurrent writer
// can never land between the read of shard p and shard q and the aggregate
// view is never torn. In async read-through mode the cut covers applied
// state; with Options.FlushReads it covers everything previously enqueued.
// Iteration callbacks (Map, MapRange) under RangePartition run while the
// span's read locks are held and must not call back into the same Sharded;
// under HashPartition the range is gathered first and f runs lock-free.
//
// # Snapshots
//
// Snapshot() captures a frozen, immutable view — one epoch cut across all
// shards — that serves the full read API off frozen CPMAs with no locks,
// so long analytics scans run concurrently with ingest instead of blocking
// writers (and instead of being blocked by them). In async mode each shard
// writer publishes an immutable cpma.Clone handle after every
// state-changing drain (copy-on-publish, amortized over coalesced
// applies), and Snapshot grabs one published handle per shard without any
// barrier; in sync mode the capture holds all shard read locks and clones
// only shards that changed since their last publication. Snapshots observe
// published state and guarantee read-your-flushes — a Snapshot captured
// after a Flush returns includes everything that Flush covered — but not
// read-your-writes: in async mode a blocking mutation that has returned
// may be missing from a Snapshot captured before its drain ends (direct
// reads like Has and Len do see it; only the snapshot publication lags).
// A Snapshot outlives Close. See Snapshot and SnapshotStats in
// snapshot.go.
//
// # Durability (Options.Journal)
//
// A durable set plugs a Journal (implemented by repro/internal/persist)
// into the async pipeline. The mailbox writers are the hook points: each
// writer appends its batch to the journal before applying it
// (write-ahead), hands the journal the frozen handle it publishes after
// every drain (the checkpointable state), and turns Flush tokens into
// fsync barriers. Checkpoint() is Flush plus a slab checkpoint of every
// shard and WAL truncation; PersistStats() reports the journal counters.
// Because all mutations on an async set flow through the writers — point
// ops and ticketed batches included — the journal observes the complete
// per-shard operation sequence with no extra synchronization on the
// ingest path. See the persist package for the durability contract and
// the on-disk formats.
//
// # Rebalancing (Options.Rebalance)
//
// Under RangePartition a skewed key distribution loads shards unevenly,
// and the hot shard's single writer becomes the pipeline's bottleneck.
// Rebalancing makes the span boundaries dynamic: routing is an
// authoritative sorted boundary table held behind an atomic pointer, and
// a load monitor (or an explicit RebalanceOnce call) moves the boundary
// between an overloaded shard and its lighter neighbor. One move
// quiesces exactly the two affected mailbox writers (a quiesce token
// parks each writer at a rest point between applies), extracts the
// pair's keys from their frozen-ordered CPMAs, rebuilds two CPMAs split
// at the pair's target share, journals the move on a durable set
// (see the persist package's barrier protocol), installs the new sets
// and publishes fresh snapshot handles under the pair's write locks, and
// swaps in a new router generation. Every other shard keeps ingesting
// throughout; enqueues stall only for the move's duration (the
// rebalancer holds the enqueue-side lifecycle lock so no batch can be
// split against one boundary table and mailed against another).
//
// The consistency contract survives rebalancing unchanged: multi-shard
// live reads validate that the router they routed with is still current
// after acquiring their shard locks (retrying on the rare conflict), and
// snapshot captures validate every published handle against the router's
// per-shard span generation, so a capture can never pair a handle from
// before a boundary move with a routing table from after it (or vice
// versa). Rebalancing requires the async pipeline and RangePartition.
//
// # Hot-key absorption (Options.HotKeys)
//
// Rebalancing caps span skew but cannot subdivide one key: when a single
// key dominates traffic, its owning shard's writer is the whole pipeline's
// ceiling. CPMA insert/remove of one key is idempotent-commutative, so the
// absorber (hotkey.go) detects such keys from the ingest traffic itself,
// strips them from enqueued sub-batches into compact absorbed records, and
// folds each record into per-shard slot state (a last-wins insert/remove
// bit over the key's CPMA presence) at the record's FIFO position — the
// Doppel split-phase protocol applied to the mailbox pipeline. The
// absorbed state reconciles into the CPMA immediately before every
// snapshot publication (drain end, Flush token, rebalance quiesce) as
// ordinary write-ahead-logged batches.
//
// The consistency contract is unchanged by absorption:
//
//   - Live reads (Has, Len, Sum, RangeSum, Next, Max, Map, MapRange, Keys)
//     overlay the absorbed state under the same shard read locks their cut
//     already holds, so they remain exact — an applied-but-unreconciled
//     hot-key op is visible exactly as if it had been applied to the CPMA.
//   - Published snapshot handles are reconciled first, so every Snapshot
//     remains an exact per-shard FIFO prefix of the operation history and
//     never needs the overlay.
//   - Flush forces reconciliation before its token completes: after a
//     Flush, absorbed state is folded, logged, and (on a durable set)
//     fsynced — durability always covers exactly the reconciled state.
//   - Ticketed mutations stay exact: an absorbed Insert/Remove reports
//     fresh/present from the slot's effective-membership flip.
//
// Detection and demotion are per shard: a space-saving sketch over applied
// traffic promotes keys whose share of a HotKeyEvery-key window exceeds
// HotKeyFrac (at most HotKeyMax per shard), and cooled keys demote back to
// the normal path at the next evaluation. A rebalance boundary move
// demotes both affected shards' keys (ownership moved); in-flight
// operations split against a stale promoted-key table are re-checked by
// the writer, so promotion and demotion never reorder or lose operations.
// IngestStats reports AbsorbedKeys/ReconcileBatches/HotKeys/Demotions.
package shard

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cpma"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// Partition selects how keys are routed to shards.
type Partition int

const (
	// HashPartition routes a key through a splitmix64 finalizer, spreading
	// any input distribution evenly across shards. Ordered operations
	// (MapRange, Keys) must merge across all shards.
	HashPartition Partition = iota
	// RangePartition splits the key space [1, 2^KeyBits) into P contiguous
	// equal spans, so ordered operations touch only the overlapping shards.
	// Skewed key distributions will load shards unevenly.
	RangePartition
)

// Default async tuning: a mailbox holds up to DefaultMailboxDepth pending
// sub-batches, and one drain coalesces at most DefaultCoalesceMax keys
// into a single apply (a single larger batch is still applied whole).
const (
	DefaultMailboxDepth = 64
	DefaultCoalesceMax  = 1 << 20
)

// Default rebalancer tuning: the monitor samples per-shard key counts
// every DefaultRebalanceEvery and moves boundaries while the max/mean
// ratio exceeds DefaultMaxSkew.
const (
	DefaultMaxSkew        = 1.5
	DefaultRebalanceEvery = 100 * time.Millisecond
	// minRebalanceKeys is the smallest pair population worth moving a
	// boundary for; below it skew is noise, not load.
	minRebalanceKeys = 64
)

// Options configures a Sharded set.
type Options struct {
	// Partition selects the routing policy (default HashPartition).
	Partition Partition
	// KeyBits is the expected key width for RangePartition: keys are assumed
	// to lie in [1, 2^KeyBits), and keys at or above 2^KeyBits all route to
	// the last shard. 0 (or >64) means the full 64-bit space.
	KeyBits int
	// Bounds seeds the RangePartition boundary table: shards-1 ascending
	// keys, shard p owning [Bounds[p-1], Bounds[p]). nil selects the
	// equal-width default over [0, 2^KeyBits). The persist layer uses it to
	// restart a durable set with the spans its recovery replayed against.
	Bounds []uint64
	// BoundsGen seeds the router generation (the persist layer restores the
	// last journaled rebalance generation so new moves keep the on-disk
	// generation sequence monotone). 0 for fresh sets.
	BoundsGen uint64
	// Set configures each shard's CPMA; nil selects the paper's defaults.
	Set *cpma.Options

	// Async enables the mailbox ingest pipeline (see the package
	// documentation): per-shard writer goroutines drain bounded mailboxes
	// and coalesce pending sub-batches into large merged applies. Async
	// sets should be Closed when done to stop their writers.
	Async bool
	// MailboxDepth bounds each shard's mailbox (pending sub-batches); a
	// full mailbox blocks enqueues. 0 means DefaultMailboxDepth.
	MailboxDepth int
	// CoalesceMax caps the keys one drain merges into a single apply.
	// 0 means DefaultCoalesceMax.
	CoalesceMax int
	// FlushReads makes every read flush the shards it touches before
	// reading, so reads observe all previously enqueued operations. The
	// default is read-through: reads see only applied state.
	FlushReads bool

	// HotKeys enables the per-shard hot-key absorber (see the package
	// documentation and hotkey.go): detected-hot keys are stripped from
	// enqueued sub-batches and absorbed into per-shard slot state, then
	// reconciled into the CPMA before every snapshot publication. Requires
	// Async; New panics otherwise. Works with either partition policy and
	// composes with Rebalance (a boundary move demotes the pair's keys)
	// and a Journal (absorbed keys are WAL-logged at reconcile time).
	HotKeys bool
	// HotKeyFrac is the promotion threshold: a key is promoted when its
	// share of one detector window exceeds this fraction, and demoted when
	// its absorbed traffic cools below a quarter of it. 0 means
	// DefaultHotKeyFrac.
	HotKeyFrac float64
	// HotKeyMax caps the promoted keys per shard. 0 means DefaultHotKeyMax.
	HotKeyMax int
	// HotKeyEvery is the detector window: promotion/demotion is evaluated
	// once this many keys have passed through a shard since the last
	// evaluation. 0 means DefaultHotKeyEvery.
	HotKeyEvery int

	// Rebalance starts the live span rebalancer (see the package
	// documentation): a background monitor samples per-shard key counts and
	// moves span boundaries between adjacent shards whenever the max/mean
	// ratio exceeds MaxSkew. Requires Async and RangePartition; New panics
	// otherwise. RebalanceOnce can always be called manually on an async
	// range-partitioned set, monitor or not.
	Rebalance bool
	// MaxSkew is the rebalance trigger: the monitor moves boundaries while
	// the max/mean shard key-count ratio exceeds it. 0 means
	// DefaultMaxSkew; values below 1.1 are clamped to 1.1 (a perfectly flat
	// target would rebalance forever on rounding noise).
	MaxSkew float64
	// RebalanceEvery is the monitor's sampling interval. 0 means
	// DefaultRebalanceEvery.
	RebalanceEvery time.Duration

	// Dir, when non-empty, asks for crash durability: a per-shard
	// write-ahead log plus slab checkpoints rooted at this directory. The
	// shard package itself only carries these fields — the persist layer
	// reads them, recovers the on-disk state, and hands New a Journal; use
	// repro.OpenDurableShardedSet (or persist.OpenSharded) to build a
	// durable set. New panics if Dir is set without a Journal, so a
	// silently non-durable set cannot be constructed by accident.
	Dir string
	// SyncEvery is the WAL group-commit record threshold: each shard's log
	// is fsynced after this many appended batch records (1 = every record,
	// 0 = the persist layer's default, negative = no count-based fsync).
	SyncEvery int
	// SyncBytes is the WAL group-commit byte threshold, fsyncing a shard's
	// log once this many bytes accumulate since the last sync (0 = default,
	// negative = no byte-based fsync). Flush always forces an fsync
	// regardless of both knobs.
	SyncBytes int
	// CheckpointEveryBatches makes the background checkpointer write a
	// shard's slab checkpoint (and truncate its WAL prefix) once that many
	// batch records accumulate past the last checkpoint (0 = default,
	// negative = checkpoint only on explicit Checkpoint calls).
	CheckpointEveryBatches int
	// CompactEveryDeltas bounds a shard's delta-checkpoint chain: after
	// this many incremental delta checkpoints against one base slab, the
	// next checkpoint writes a fresh full base and compacts the chain away
	// (0 = the persist layer's default, negative = compact on every
	// checkpoint, i.e. disable deltas).
	CompactEveryDeltas int
	// Journal is the durability hook the persist layer implements. Requires
	// Async: the journal is driven by the mailbox writer goroutines.
	Journal Journal
}

// Journal is the hook a persistence layer plugs into an async Sharded set.
// All per-shard calls (Append, Published, Synced) are made from the owning
// shard's writer goroutine only, strictly ordered: every batch is Appended
// before it is applied to the shard's CPMA (write-ahead), Published hands
// over the frozen handle covering everything appended so far after each
// drain, and Synced is the durability barrier behind Flush. Checkpoint,
// Stats, and Close may be called from any goroutine.
//
// Append and Synced errors are fatal to the writer goroutine (it panics):
// a durable set that can no longer log must not keep acknowledging
// mutations as if it could.
type Journal interface {
	// Append logs one sorted batch bound for shard p before it is applied.
	Append(p int, remove bool, keys []uint64) error
	// Published reports that set — an immutable handle — reflects every
	// batch appended to shard p so far. The handle carries the dirty-leaf
	// window since the previous published handle (cpma.DirtySince), which
	// the journal accumulates to write delta checkpoints; the same handle
	// may be reported repeatedly (flush tokens republish), and only the
	// first report of a handle carries a new window. Also called once per
	// shard during construction (before any writer starts) to hand over
	// the seed handle.
	Published(p int, set *cpma.CPMA)
	// Synced forces shard p's log to stable storage.
	Synced(p int) error
	// Rebalanced journals one boundary move — keys moved from shard src to
	// shard dst, producing router generation gen with the given interior
	// boundary table — as a pair of WAL barrier records plus a durable
	// boundary-table update, ordered so that every crash point recovers to
	// exactly the pre- or post-move state (see the persist package). Called
	// by the rebalancer with both affected writers quiesced, before the
	// in-memory move is applied (write-ahead); an error is fatal to the
	// rebalance (it panics, like writer-side Append failures).
	Rebalanced(src, dst int, keys []uint64, gen uint64, bounds []uint64) error
	// Checkpoint writes a durable checkpoint for every shard and truncates
	// obsolete WAL prefixes.
	Checkpoint() error
	// Stats returns the journal's counters.
	Stats() PersistStats
	// Err returns the first hard I/O error the journal has hit (sticky),
	// including failures during Close.
	Err() error
	// Close flushes and closes the journal. Idempotent.
	Close() error
}

// PersistStats counts a durable set's journal and checkpoint work. The
// Appended/Fsync counters track the write-ahead log; the Checkpoint
// counters count full base slabs and the Delta counters the incremental
// delta checkpoints written against them (CheckpointBytes+DeltaBytes is
// the total checkpoint I/O, and its gap to Checkpoints+DeltaCheckpoints
// times the full slab size is the incremental-checkpoint win); the
// Recovered/Replayed/Torn counters describe the recovery the store
// performed when it was opened.
type PersistStats struct {
	AppendedBatches   uint64 // WAL records appended (one per applied batch)
	AppendedKeys      uint64 // keys across those records
	AppendedBytes     uint64 // encoded WAL bytes appended
	Fsyncs            uint64 // WAL fsyncs (group commits + barriers)
	Checkpoints       uint64 // full (base) slab checkpoints written
	CheckpointBytes   uint64 // encoded slab bytes across those bases
	DeltaCheckpoints  uint64 // delta checkpoints written
	DeltaBytes        uint64 // encoded bytes across those deltas
	TruncatedSegments uint64 // WAL segment files deleted behind checkpoints
	MoveRecords       uint64 // rebalance barrier records appended (two per move)
	MovedKeys         uint64 // keys carried by rebalance barrier records
	RecoveredKeys     uint64 // keys in the recovered shards at Open (checkpoint + replay)
	ReplayedBatches   uint64 // WAL records replayed at Open
	ReplayedKeys      uint64 // keys across replayed records
	TornBytes         uint64 // trailing WAL bytes discarded as torn at Open
	DroppedKeys       uint64 // out-of-span keys dropped by recovery (mid-rebalance crash repair)
}

// Sub returns the counter deltas st - prev (for measuring one phase).
func (st PersistStats) Sub(prev PersistStats) PersistStats {
	return PersistStats{
		AppendedBatches:   st.AppendedBatches - prev.AppendedBatches,
		AppendedKeys:      st.AppendedKeys - prev.AppendedKeys,
		AppendedBytes:     st.AppendedBytes - prev.AppendedBytes,
		Fsyncs:            st.Fsyncs - prev.Fsyncs,
		Checkpoints:       st.Checkpoints - prev.Checkpoints,
		CheckpointBytes:   st.CheckpointBytes - prev.CheckpointBytes,
		DeltaCheckpoints:  st.DeltaCheckpoints - prev.DeltaCheckpoints,
		DeltaBytes:        st.DeltaBytes - prev.DeltaBytes,
		TruncatedSegments: st.TruncatedSegments - prev.TruncatedSegments,
		MoveRecords:       st.MoveRecords - prev.MoveRecords,
		MovedKeys:         st.MovedKeys - prev.MovedKeys,
		RecoveredKeys:     st.RecoveredKeys - prev.RecoveredKeys,
		ReplayedBatches:   st.ReplayedBatches - prev.ReplayedBatches,
		ReplayedKeys:      st.ReplayedKeys - prev.ReplayedKeys,
		TornBytes:         st.TornBytes - prev.TornBytes,
		DroppedKeys:       st.DroppedKeys - prev.DroppedKeys,
	}
}

// cell is one shard: a CPMA plus its lock, mailbox, and ingest counters,
// padded so that neighboring shards' hot state does not share a cache line
// under write contention.
type cell struct {
	mu   sync.RWMutex
	set  *cpma.CPMA
	mbox chan shardOp

	enqBatches atomic.Uint64
	enqKeys    atomic.Uint64
	appBatches atomic.Uint64
	appKeys    atomic.Uint64

	// Snapshot publication state (snapshot.go): epoch counts this shard's
	// state-changing applies (bumped under the shard's write lock), snap is
	// the last published frozen handle at its epoch, and pubMu makes
	// publication single-flight — racing sync-mode captures must not run
	// cpma.Clone concurrently on one cell (the COW ownership handoff is
	// single-caller by contract).
	epoch atomic.Uint64
	snap  atomic.Pointer[shardSnap]
	pubMu sync.Mutex

	// Hot-key absorber state (hotkey.go): hot is the promoted-key table
	// (nil when nothing is promoted; the table is immutable, its slots
	// mutate under mu), det is the traffic detector owned by the writer
	// goroutine, and the counters feed IngestStats.
	hot        atomic.Pointer[hotTable]
	det        hotDetector
	absorbed   atomic.Uint64
	reconciles atomic.Uint64
	promos     atomic.Uint64
	demos      atomic.Uint64

	_ [40]byte
}

// countOne records a synchronous point op in the ingest counters (a
// sub-batch of one, applied directly), keeping IngestStats comparable
// between the sync and async modes.
func (c *cell) countOne() {
	c.enqBatches.Add(1)
	c.enqKeys.Add(1)
	c.appBatches.Add(1)
	c.appKeys.Add(1)
}

// Sharded is a concurrent set of nonzero uint64 keys built from P
// single-writer CPMA shards. The zero value is not usable; call New.
type Sharded struct {
	cells []cell
	opt   Options
	// rt is the current routing table. Each published *router is immutable;
	// a rebalance installs a replacement while holding life.Lock and the
	// affected shards' write locks, so enqueues (which split and mail under
	// life.RLock) and locked reads (which re-validate the pointer after
	// acquiring their shard locks) always route against one coherent table.
	rt atomic.Pointer[router]

	// Async lifecycle: enqueues hold life.RLock while sending; Close and
	// the rebalancer take life.Lock, so no send can race a mailbox close or
	// a router swap.
	life    sync.RWMutex
	closed  bool
	writers sync.WaitGroup

	// replica marks a read-only replication follower (replica.go): client
	// mutations panic, state changes only through the Replica* appliers.
	replica bool

	// Rebalancer state: rebalMu serializes moves (monitor vs manual
	// RebalanceOnce), rebalStop ends the monitor goroutine.
	rebalMu        sync.Mutex
	rebalStop      chan struct{}
	rebalWG        sync.WaitGroup
	rebalChecks    atomic.Uint64
	rebalMoves     atomic.Uint64
	rebalMovedKeys atomic.Uint64

	// Snapshot counters (SnapshotStats).
	snapCaptures   atomic.Uint64
	snapPublishes  atomic.Uint64
	snapCloneBytes atomic.Uint64
	snapFullBytes  atomic.Uint64

	// Pipeline observability (metrics.go): always-on aggregate stage
	// latency histograms and the per-shard lifecycle event trace.
	pm    pipeMetrics
	trace *obs.Trace

	// hotIdx is the global promoted-key index: the sorted union of every
	// shard's hot-table keys, rebuilt whenever a retune or boundary move
	// changes promotions. enqueue's pre-pass consults it to excise hot
	// occurrences before the sort+scatter (the dominant enqueue cost on
	// skewed streams). Mild staleness either way is benign: a missing key
	// travels cold and applyOne's backstop strip absorbs it; an extra key
	// arrives as an entry and splitEntries falls it back to the cold path.
	hotIdx atomic.Pointer[hotIndex]
}

// New returns a Sharded set with the given number of shards (clamped to at
// least 1); opts may be nil for hash partitioning over default CPMAs.
func New(shards int, opts *Options) *Sharded {
	return newSharded(shards, nil, opts)
}

// NewFrom returns a Sharded set seeded with the given per-shard CPMAs —
// one shard per entry, ownership transferring to the set (callers must not
// touch them afterwards). The persist layer uses it to restart a durable
// set from its recovered shards.
func NewFrom(sets []*cpma.CPMA, opts *Options) *Sharded {
	if len(sets) == 0 {
		panic("shard: NewFrom needs at least one shard")
	}
	return newSharded(len(sets), sets, opts)
}

func newSharded(shards int, seed []*cpma.CPMA, opts *Options) *Sharded {
	var o Options
	if opts != nil {
		o = *opts
	}
	if o.Journal != nil && !o.Async {
		panic("shard: a Journal requires the async pipeline (Options.Async)")
	}
	if o.Dir != "" && o.Journal == nil {
		panic("shard: Options.Dir set without a Journal; build durable sets with repro.OpenDurableShardedSet")
	}
	if shards < 1 {
		shards = 1
	}
	if o.KeyBits <= 0 || o.KeyBits > 64 {
		o.KeyBits = 64
	}
	if o.MailboxDepth <= 0 {
		o.MailboxDepth = DefaultMailboxDepth
	}
	if o.CoalesceMax <= 0 {
		o.CoalesceMax = DefaultCoalesceMax
	}
	if o.Rebalance && (!o.Async || o.Partition != RangePartition) {
		panic("shard: Options.Rebalance requires the async pipeline and RangePartition")
	}
	if o.HotKeys {
		if !o.Async {
			panic("shard: Options.HotKeys requires the async pipeline (Options.Async)")
		}
		if o.HotKeyFrac <= 0 {
			o.HotKeyFrac = DefaultHotKeyFrac
		}
		if o.HotKeyMax <= 0 {
			o.HotKeyMax = DefaultHotKeyMax
		}
		if o.HotKeyEvery <= 0 {
			o.HotKeyEvery = DefaultHotKeyEvery
		}
	}
	if o.MaxSkew <= 0 {
		o.MaxSkew = DefaultMaxSkew
	} else if o.MaxSkew < 1.1 {
		o.MaxSkew = 1.1
	}
	if o.RebalanceEvery <= 0 {
		o.RebalanceEvery = DefaultRebalanceEvery
	}
	s := &Sharded{cells: make([]cell, shards), opt: o}
	s.trace = obs.NewTrace(shards, 0)
	bounds := o.Bounds
	if o.Partition != RangePartition {
		bounds = nil
	} else if bounds == nil {
		bounds = defaultBounds(o.KeyBits, shards)
	} else {
		checkBounds(bounds, shards)
		bounds = append([]uint64(nil), bounds...) // the router owns its table
	}
	s.rt.Store(&router{
		part:    o.Partition,
		shards:  shards,
		bounds:  bounds,
		gen:     o.BoundsGen,
		spanGen: make([]uint64, shards),
	})
	for i := range s.cells {
		if seed != nil {
			s.cells[i].set = seed[i]
		} else {
			s.cells[i].set = cpma.New(o.Set)
		}
		// Seed each shard's published handle through the regular publish
		// path, so a Snapshot captured before any publication still holds
		// valid frozen sets stamped with a real (epoch, gen) — the old bare
		// shardSnap literal had zero stamps, bypassed the stats, and (being
		// a pre-COW deep clone) doubled resident memory on durable reopens.
		sn := s.publish(i, &s.cells[i])
		if o.Journal != nil {
			// The journal must learn the seed handle too: on a durable
			// reopen the seed Clone consumes the recovery replay's dirty
			// window, and skipping this handoff would lose that window for
			// the first delta checkpoint. No writers are running yet, so
			// the call is race-free.
			o.Journal.Published(i, sn.set)
		}
	}
	if o.HotKeys {
		// The sketch tracks a few times more candidates than can be
		// promoted, so near-threshold keys are not evicted by churn right
		// before an evaluation.
		for i := range s.cells {
			s.cells[i].det.sk.cap = 4 * o.HotKeyMax
		}
	}
	if o.Async {
		for i := range s.cells {
			s.cells[i].mbox = make(chan shardOp, o.MailboxDepth)
		}
		s.writers.Add(shards)
		for i := range s.cells {
			go s.writer(i)
		}
	}
	if o.Rebalance && shards > 1 {
		s.rebalStop = make(chan struct{})
		s.rebalWG.Add(1)
		go s.rebalanceMonitor()
	}
	return s
}

// Shards returns the number of shards.
func (s *Sharded) Shards() int { return len(s.cells) }

// Async reports whether this set runs the mailbox ingest pipeline.
func (s *Sharded) Async() bool { return s.opt.Async }

// Partition returns the routing policy keys are partitioned by.
func (s *Sharded) Partition() Partition { return s.opt.Partition }

// KeyBits returns the configured key width (64 when unset).
func (s *Sharded) KeyBits() int { return s.opt.KeyBits }

// checkKey rejects the reserved key 0 at the API boundary, in the caller's
// goroutine — once writers are asynchronous, a panic inside one would be
// unrecoverable for the client that enqueued the bad key.
func checkKey(x uint64) {
	if x == 0 {
		panic("shard: key 0 is reserved")
	}
}

// checkKeys rejects batches containing the reserved key 0. Sorted batches
// only need their first element checked.
func checkKeys(keys []uint64, sorted bool) {
	if len(keys) == 0 {
		return
	}
	if sorted {
		checkKey(keys[0])
		return
	}
	for _, k := range keys {
		checkKey(k)
	}
}

// Insert adds x, returning false if already present. Locks one shard; on
// an async set it routes through the owning shard's mailbox (behind any
// batches already enqueued) and waits for the apply.
func (s *Sharded) Insert(x uint64) bool {
	s.checkNotReplica()
	checkKey(x)
	if s.opt.Async {
		return s.enqueueOne(opInsert, x)
	}
	c := &s.cells[s.shardOf(x)]
	c.countOne()
	c.mu.Lock()
	ok := c.set.Insert(x)
	if ok {
		c.epoch.Add(1)
	}
	c.mu.Unlock()
	return ok
}

// Remove deletes x, returning false if absent. Locks one shard; on an
// async set it routes through the mailbox like Insert.
func (s *Sharded) Remove(x uint64) bool {
	s.checkNotReplica()
	checkKey(x)
	if s.opt.Async {
		return s.enqueueOne(opRemove, x)
	}
	c := &s.cells[s.shardOf(x)]
	c.countOne()
	c.mu.Lock()
	ok := c.set.Remove(x)
	if ok {
		c.epoch.Add(1)
	}
	c.mu.Unlock()
	return ok
}

// Has reports whether x is in the set. Read-locks one shard; if a
// rebalance moved x's span between routing and locking, the lookup
// re-routes against the new table (the shard it locked would no longer
// hold x).
func (s *Sharded) Has(x uint64) bool {
	if x == 0 {
		return false
	}
	for {
		rt := s.router()
		p := rt.shardOf(x)
		if s.opt.FlushReads {
			s.flushSpan(p, p)
		}
		c := &s.cells[p]
		c.mu.RLock()
		if s.router() == rt {
			var ok bool
			if s.opt.HotKeys {
				ok = overlayHas(c.set, c.hot.Load(), x)
			} else {
				ok = c.set.Has(x)
			}
			c.mu.RUnlock()
			return ok
		}
		c.mu.RUnlock()
	}
}

// InsertBatch inserts a batch of keys, returning how many were new. The
// batch is scattered into per-shard sub-batches applied by one writer
// goroutine per shard. If sorted is true the keys must be in ascending
// order (scattering preserves order, so sub-batches stay sorted). On an
// async set the sub-batches go through the mailboxes with a completion
// ticket, so the call still blocks until applied and the count is exact.
func (s *Sharded) InsertBatch(keys []uint64, sorted bool) int {
	s.checkNotReplica()
	if s.opt.Async {
		return s.enqueue(opInsert, keys, sorted, true)
	}
	checkKeys(keys, sorted)
	return s.batch(keys, sorted, func(set *cpma.CPMA, sub []uint64) int {
		return set.InsertBatch(sub, sorted)
	})
}

// RemoveBatch removes a batch of keys, returning how many were present.
func (s *Sharded) RemoveBatch(keys []uint64, sorted bool) int {
	s.checkNotReplica()
	if s.opt.Async {
		return s.enqueue(opRemove, keys, sorted, true)
	}
	checkKeys(keys, sorted)
	return s.batch(keys, sorted, func(set *cpma.CPMA, sub []uint64) int {
		return set.RemoveBatch(sub, sorted)
	})
}

// InsertBatchAsync enqueues a batch for insertion and returns without
// waiting for it to apply; use Flush (or a FlushReads read) to observe it.
// A full shard mailbox blocks until its writer catches up (backpressure).
// On a synchronous set it falls back to a plain blocking InsertBatch.
func (s *Sharded) InsertBatchAsync(keys []uint64, sorted bool) {
	if !s.opt.Async {
		s.InsertBatch(keys, sorted)
		return
	}
	s.enqueue(opInsert, keys, sorted, false)
}

// RemoveBatchAsync enqueues a batch for removal and returns without
// waiting; the same contract as InsertBatchAsync.
func (s *Sharded) RemoveBatchAsync(keys []uint64, sorted bool) {
	if !s.opt.Async {
		s.RemoveBatch(keys, sorted)
		return
	}
	s.enqueue(opRemove, keys, sorted, false)
}

// enqueueOne mails a single-key ticketed op straight to its owning shard —
// the point-op path, skipping the scatter machinery entirely — and waits
// for the apply, reporting whether the key was fresh (insert) or present
// (remove). The fresh slice keeps the mailbox from aliasing caller memory.
// Routing happens under life.RLock so a concurrent rebalance (which holds
// life.Lock for the router swap) cannot strand the key in a shard that no
// longer owns it.
func (s *Sharded) enqueueOne(kind opKind, x uint64) bool {
	tk := newTicket(1)
	s.life.RLock()
	if s.closed {
		s.life.RUnlock()
		panic("shard: mutation on closed Sharded")
	}
	c := &s.cells[s.shardOf(x)]
	c.enqBatches.Add(1)
	c.enqKeys.Add(1)
	op := shardOp{kind: kind, tk: tk, enq: time.Now()}
	if s.opt.HotKeys && c.hot.Load().lookup(x) != nil {
		// Promoted key: mail the compact absorbed form. The exact
		// fresh/removed answer comes off the slot's effective-membership
		// flip, so the ticket contract is unchanged.
		op.hot = []hotEntry{{key: x, n: 1}}
	} else {
		op.keys = []uint64{x}
	}
	c.mbox <- op
	s.life.RUnlock()
	return tk.wait() == 1
}

// enqueue scatters keys into sorted sub-batches and mails each to its
// shard, all under life.RLock — the split must use the same boundary
// table the mailboxes are routed by, and a rebalance excludes itself via
// life.Lock. With wait set it attaches a completion ticket, blocks until
// every shard has applied its part, and returns the summed exact count;
// otherwise it returns 0 as soon as everything is enqueued (see asyncSplit
// for when sub-batches may alias the caller's slice).
func (s *Sharded) enqueue(kind opKind, keys []uint64, sorted bool, wait bool) int {
	// Fast pre-pass, outside the lock: tally globally promoted keys before
	// the sort+scatter — on hot-key-dominated streams this shrinks the
	// expensive split to the cold residue. The scan doubles as the
	// reserved-key check (one pass over the batch, not two).
	var hotIK, hotCounts []uint64
	if s.opt.HotKeys && !sorted {
		keys, hotIK, hotCounts = s.hotScan(keys)
	} else {
		checkKeys(keys, sorted)
	}
	s.life.RLock()
	if s.closed {
		s.life.RUnlock()
		panic("shard: mutation on closed Sharded")
	}
	rt := s.router()
	var hotEnts [][]hotEntry
	if hotCounts != nil {
		hotEnts = routeHot(rt, hotIK, hotCounts)
	}
	subs := s.asyncSplit(rt, keys, sorted, wait)
	parts := 0
	for p := range s.cells {
		if (subs != nil && len(subs[p]) > 0) || (hotEnts != nil && len(hotEnts[p]) > 0) {
			parts++
		}
	}
	if parts == 0 {
		s.life.RUnlock()
		return 0
	}
	var tk *ticket
	if wait {
		tk = newTicket(parts)
	}
	// One clock read covers every sub-batch this call mails: residency is
	// measured per drained op, stamped per enqueue call, never per key.
	now := time.Now()
	for p := range s.cells {
		var sub []uint64
		if subs != nil {
			sub = subs[p]
		}
		var hot []hotEntry
		if hotEnts != nil {
			hot = hotEnts[p]
		}
		if len(sub) == 0 && len(hot) == 0 {
			continue
		}
		c := &s.cells[p]
		c.enqBatches.Add(1)
		n := uint64(len(sub))
		for _, e := range hot {
			n += e.n
		}
		c.enqKeys.Add(n)
		if s.opt.HotKeys && len(sub) > 0 {
			// Separation against the owning shard's own table catches keys
			// the global index hasn't picked up yet (and the whole sorted
			// path). Splitting against a table one retune older than the
			// writer's is benign — the writer re-checks in applyOne
			// (backstop strip / demotion fallback).
			if cold, ents := stripHotSorted(sub, c.hot.Load()); ents != nil {
				sub = cold
				hot = append(hot, ents...)
			}
		}
		c.mbox <- shardOp{kind: kind, keys: sub, hot: hot, tk: tk, enq: now}
	}
	s.life.RUnlock()
	if wait {
		return tk.wait()
	}
	return 0
}

// Flush blocks until every operation enqueued before the call has been
// applied, establishing a read barrier across all shards — even when it
// races a concurrent Close, in which case it waits for Close's final
// drain. On a synchronous set it returns immediately.
func (s *Sharded) Flush() {
	s.flushSpan(0, len(s.cells)-1)
}

// flushSpan flushes shards [lo, hi] by mailing each a flush token and
// waiting for all of them; mailbox FIFO order means everything enqueued
// earlier has applied by the time a token completes.
func (s *Sharded) flushSpan(lo, hi int) {
	if !s.opt.Async {
		return
	}
	s.life.RLock()
	if s.closed {
		s.life.RUnlock()
		// Close is (or was) draining; a barrier must still not return
		// until everything previously enqueued has been applied.
		s.writers.Wait()
		return
	}
	tk := newTicket(hi - lo + 1)
	for p := lo; p <= hi; p++ {
		s.cells[p].mbox <- shardOp{kind: opFlush, tk: tk}
	}
	s.life.RUnlock()
	tk.wait()
}

// Close drains all mailboxes, stops the writer goroutines, and marks the
// set closed: further mutations panic, Flush becomes a no-op, and reads
// keep working against the final state. Idempotent; safe against
// concurrent Flush and reads, but must not race in-flight mutations. A
// no-op on synchronous sets. On a durable set the Close that wins the
// race additionally closes the journal after the drain, fsyncing every
// shard's log (the final durability barrier); journal close errors are
// sticky — check PersistErr after Close.
func (s *Sharded) Close() {
	if !s.opt.Async {
		return
	}
	s.life.Lock()
	if s.closed {
		s.life.Unlock()
		// Another Close won the race to set the flag; still wait for the
		// drain so every caller of Close observes the fully applied state.
		s.writers.Wait()
		return
	}
	s.closed = true
	s.life.Unlock()
	// Stop the rebalance monitor first: a move that raced the flag is
	// already excluded (moves run under life.Lock and abort on closed), so
	// this only ends the sampling loop.
	if s.rebalStop != nil {
		close(s.rebalStop)
		s.rebalWG.Wait()
	}
	// No sender can be in-flight past this point: enqueues take life.RLock
	// and observe closed. Closing the mailboxes is the writers' drain-and-
	// exit signal, so Close doubles as a final Flush.
	for p := range s.cells {
		close(s.cells[p].mbox)
	}
	s.writers.Wait()
	if j := s.opt.Journal; j != nil {
		j.Close()
	}
}

// Durable reports whether this set runs a persistence journal.
func (s *Sharded) Durable() bool { return s.opt.Journal != nil }

// Checkpoint is the durability barrier: it flushes the pipeline (every
// previously enqueued operation applied and logged), then writes a slab
// checkpoint of every shard's published state and truncates the obsolete
// WAL prefix. After Checkpoint returns, recovery replays at most the
// operations enqueued after the call. On a non-durable set it degrades to
// a plain Flush and returns nil.
func (s *Sharded) Checkpoint() error {
	t0 := time.Now()
	s.Flush()
	if s.opt.Journal == nil {
		return nil
	}
	err := s.opt.Journal.Checkpoint()
	if err == nil {
		d := time.Since(t0)
		s.pm.checkpoint.Observe(d)
		s.trace.Record(-1, obs.EvCheckpoint, 0, s.router().gen, uint64(d), 0)
	}
	return err
}

// PersistStats returns the durability counters (zero on a non-durable
// set). Counters are monotone; snapshot before and after a phase and Sub
// the two to measure it.
func (s *Sharded) PersistStats() PersistStats {
	if s.opt.Journal == nil {
		return PersistStats{}
	}
	return s.opt.Journal.Stats()
}

// PersistErr returns the first hard I/O error the durability journal has
// hit, nil on a healthy or non-durable set. It is the post-Close health
// check: Close cannot return an error, so a failed final fsync (real
// durability loss) surfaces here — check it after Close before trusting
// the unsynced tail to have landed.
func (s *Sharded) PersistErr() error {
	if s.opt.Journal == nil {
		return nil
	}
	return s.opt.Journal.Err()
}

func (s *Sharded) batch(keys []uint64, sorted bool, apply func(set *cpma.CPMA, sub []uint64) int) int {
	if len(keys) == 0 {
		return 0
	}
	// Synchronous sets never rebalance, so one router load covers the whole
	// scatter-and-apply.
	subs, _ := s.router().split(keys, sorted)
	var total atomic.Int64
	parallel.For(len(subs), 1, func(p int) {
		sub := subs[p]
		if len(sub) == 0 {
			return
		}
		c := &s.cells[p]
		c.enqBatches.Add(1)
		c.enqKeys.Add(uint64(len(sub)))
		c.appBatches.Add(1)
		c.appKeys.Add(uint64(len(sub)))
		t0 := time.Now()
		c.mu.Lock()
		n := apply(c.set, sub)
		if n > 0 {
			c.epoch.Add(1)
		}
		c.mu.Unlock()
		// Sync mode has no mailbox: the locked apply is both the drain and
		// the client-observed batch latency, so it lands in the same
		// histograms the async writer feeds.
		s.pm.drain.Since(t0)
		s.pm.coalesce.Record(uint64(len(sub)))
		total.Add(int64(n))
	})
	return int(total.Load())
}

// readBarrier flushes every shard when FlushReads is set; the multi-shard
// read paths call it before touching any shard.
func (s *Sharded) readBarrier() {
	if s.opt.FlushReads {
		s.flushSpan(0, len(s.cells)-1)
	}
}

// Len returns the number of keys stored, captured as one atomic cut (all
// shard read locks held at once).
func (s *Sharded) Len() int {
	s.readBarrier()
	total := 0
	s.withCut(fullSpan, func(v cut) { total = v.length() })
	return total
}

// SizeBytes returns the summed memory footprint of the shards.
func (s *Sharded) SizeBytes() uint64 {
	s.readBarrier()
	var total uint64
	s.withCut(fullSpan, func(v cut) { total = v.sizeBytes() })
	return total
}

// Sum returns the sum (mod 2^64) of all keys over one atomic cut, shards
// processed in parallel.
func (s *Sharded) Sum() uint64 {
	s.readBarrier()
	var total uint64
	s.withCut(fullSpan, func(v cut) { total = v.sum() })
	return total
}

// RangeSum sums keys in [start, end) over one atomic cut of the
// overlapping shards. Under RangePartition only the span's shards are
// locked and read; under HashPartition every shard is, in parallel (order
// is irrelevant for a sum). Degenerate ranges (end <= start) are empty.
func (s *Sharded) RangeSum(start, end uint64) (sum uint64, count int) {
	if start >= end {
		return 0, 0
	}
	s.withCut(func(rt *router) (int, int) {
		lo, hi := rt.shardSpan(start, end)
		if s.opt.FlushReads && hi >= lo {
			s.flushSpan(lo, hi)
		}
		return lo, hi
	}, func(v cut) { sum, count = v.rangeSum(start, end) })
	return sum, count
}

// Next returns the smallest key >= x across all shards, read off one
// atomic cut — the merge cannot skip a key that a concurrent writer moved
// into view mid-read, which per-shard re-querying could.
func (s *Sharded) Next(x uint64) (uint64, bool) {
	var best uint64
	var found bool
	s.withCut(func(rt *router) (int, int) {
		lo := 0
		if rt.part == RangePartition {
			lo = rt.shardOf(x)
		}
		if s.opt.FlushReads {
			s.flushSpan(lo, rt.shards-1)
		}
		return lo, rt.shards - 1
	}, func(v cut) { best, found = v.next(x) })
	return best, found
}

// Min returns the smallest key in the set.
func (s *Sharded) Min() (uint64, bool) {
	return s.Next(1)
}

// Max returns the largest key in the set, read off one atomic cut.
func (s *Sharded) Max() (uint64, bool) {
	s.readBarrier()
	var best uint64
	var found bool
	s.withCut(fullSpan, func(v cut) { best, found = v.max() })
	return best, found
}

// MapRange applies f to keys in [start, end) in ascending order over one
// atomic cut of the overlapping shards, stopping early when f returns
// false; reports whether the scan completed. Degenerate ranges (end <=
// start) complete immediately. Under RangePartition the span's shards
// stream in key order with all of the span's read locks held and f running
// under them — f must not call back into this Sharded, or it can deadlock
// against a waiting writer. Under HashPartition the whole range is
// gathered from every shard in parallel under the cut and merged (so early
// exits still pay the full gather), and f runs lock-free.
func (s *Sharded) MapRange(start, end uint64, f func(uint64) bool) bool {
	if start >= end {
		return true
	}
	if s.opt.Partition == RangePartition {
		done := true
		s.withCut(func(rt *router) (int, int) {
			lo, hi := rt.shardSpan(start, end)
			if s.opt.FlushReads && hi >= lo {
				s.flushSpan(lo, hi)
			}
			return lo, hi
		}, func(v cut) { done = v.streamRange(start, end, f) })
		return done
	}
	s.readBarrier()
	var gathered []uint64
	s.withCut(fullSpan, func(v cut) { gathered = v.gatherRange(start, end) })
	for _, x := range gathered {
		if !f(x) {
			return false
		}
	}
	return true
}

// Map applies f to every key in ascending order over one atomic cut,
// stopping early when f returns false; reports whether the scan completed.
// The same locking contract as MapRange applies: under RangePartition f
// runs under the shard read locks and must not call back into this
// Sharded; under HashPartition f runs lock-free after the gather.
func (s *Sharded) Map(f func(uint64) bool) bool {
	s.readBarrier()
	if s.opt.Partition == RangePartition {
		done := true
		s.withCut(fullSpan, func(v cut) { done = v.streamAll(f) })
		return done
	}
	var gathered []uint64
	s.withCut(fullSpan, func(v cut) { gathered = v.gatherAll() })
	for _, x := range gathered {
		if !f(x) {
			return false
		}
	}
	return true
}

// Keys returns all keys in ascending order; primarily for tests. The
// gather runs under Map's single read barrier and cut (sizing the result
// via Len would pay a second capture for a hint that concurrent enqueuers
// could stale anyway).
func (s *Sharded) Keys() []uint64 {
	var out []uint64
	s.Map(func(v uint64) bool {
		out = append(out, v)
		return true
	})
	return out
}

// mergeLists merges disjoint sorted runs pairwise (log P rounds of the
// load-balanced parallel merge).
func mergeLists(lists [][]uint64) []uint64 {
	for len(lists) > 1 {
		next := make([][]uint64, 0, (len(lists)+1)/2)
		for i := 0; i+1 < len(lists); i += 2 {
			a, b := lists[i], lists[i+1]
			switch {
			case len(a) == 0:
				next = append(next, b)
			case len(b) == 0:
				next = append(next, a)
			default:
				out := make([]uint64, len(a)+len(b))
				parallel.Merge(a, b, out)
				next = append(next, out)
			}
		}
		if len(lists)%2 == 1 {
			next = append(next, lists[len(lists)-1])
		}
		lists = next
	}
	if len(lists) == 0 {
		return nil
	}
	return lists[0]
}

// Validate checks every shard's CPMA invariants (a test helper). On an
// async set it flushes first; callers must still quiesce their own
// writers.
func (s *Sharded) Validate() error {
	s.Flush()
	for p := range s.cells {
		c := &s.cells[p]
		c.mu.RLock()
		err := c.set.Validate()
		c.mu.RUnlock()
		if err != nil {
			return fmt.Errorf("shard %d: %w", p, err)
		}
	}
	return nil
}

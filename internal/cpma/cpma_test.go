package cpma

import (
	"math/rand"
	"slices"
	"testing"
	"testing/quick"

	"repro/internal/pma"
)

func checkAgainst(t *testing.T, c *CPMA, want []uint64) {
	t.Helper()
	if err := c.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	if c.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", c.Len(), len(want))
	}
	got := c.Keys()
	if !slices.Equal(got, want) {
		t.Fatalf("contents mismatch: got %d keys, want %d", len(got), len(want))
	}
}

func uniqueRandom(r *rand.Rand, n int, max uint64) []uint64 {
	set := make(map[uint64]bool, n)
	for len(set) < n {
		set[1+r.Uint64()%max] = true
	}
	out := make([]uint64, 0, n)
	for k := range set {
		out = append(out, k)
	}
	return out
}

func TestEmpty(t *testing.T) {
	c := New(nil)
	if c.Len() != 0 || c.Has(42) {
		t.Fatal("empty CPMA misbehaves")
	}
	if _, ok := c.Min(); ok {
		t.Fatal("Min on empty")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPointInsertSmall(t *testing.T) {
	c := New(nil)
	keys := []uint64{5, 3, 9, 1, 7, 3, 5, 1 << 40, 1<<40 + 1}
	added := 0
	for _, k := range keys {
		if c.Insert(k) {
			added++
		}
	}
	if added != 7 {
		t.Fatalf("added = %d, want 7", added)
	}
	checkAgainst(t, c, []uint64{1, 3, 5, 7, 9, 1 << 40, 1<<40 + 1})
	if !c.Has(1<<40) || c.Has(2) {
		t.Fatal("membership wrong")
	}
}

func TestPointInsertManyRandom(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	keys := uniqueRandom(r, 20_000, 1<<40)
	c := New(nil)
	for _, k := range keys {
		if !c.Insert(k) {
			t.Fatalf("Insert(%d) reported duplicate", k)
		}
	}
	want := slices.Clone(keys)
	slices.Sort(want)
	checkAgainst(t, c, want)
	for _, k := range keys[:200] {
		if c.Insert(k) {
			t.Fatalf("duplicate insert of %d succeeded", k)
		}
	}
}

func TestDenseSequentialInserts(t *testing.T) {
	// Consecutive keys give 1-byte deltas: maximal compression stress on the
	// byte-budget redistribution.
	c := New(nil)
	n := 60_000
	for i := 1; i <= n; i++ {
		c.Insert(uint64(i))
	}
	if c.Len() != n {
		t.Fatalf("Len = %d", c.Len())
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Compression should be dramatic: ~1 byte per element + heads.
	if got := c.SizeBytes(); got > uint64(4*n) {
		t.Fatalf("dense set uses %d bytes for %d elements", got, n)
	}
}

func TestDescendingInserts(t *testing.T) {
	c := New(nil)
	n := 30_000
	for i := n; i >= 1; i-- {
		c.Insert(uint64(i) << 20)
	}
	if c.Len() != n {
		t.Fatalf("Len = %d", c.Len())
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPointRemove(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	keys := uniqueRandom(r, 5000, 1<<34)
	c := New(nil)
	for _, k := range keys {
		c.Insert(k)
	}
	sorted := slices.Clone(keys)
	slices.Sort(sorted)
	var left []uint64
	for i, k := range sorted {
		if i%2 == 0 {
			if !c.Remove(k) {
				t.Fatalf("Remove(%d) failed", k)
			}
		} else {
			left = append(left, k)
		}
	}
	if c.Remove(sorted[0]) {
		t.Fatal("double remove succeeded")
	}
	checkAgainst(t, c, left)
}

func TestRemoveAllShrinks(t *testing.T) {
	c := New(nil)
	n := 30_000
	for i := 1; i <= n; i++ {
		c.Insert(uint64(i) * 1000)
	}
	grown := c.Capacity()
	for i := 1; i <= n; i++ {
		if !c.Remove(uint64(i) * 1000) {
			t.Fatalf("Remove failed at %d", i)
		}
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d", c.Len())
	}
	if c.Capacity() >= grown {
		t.Fatalf("capacity did not shrink: %d -> %d", grown, c.Capacity())
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestNextMinMax(t *testing.T) {
	c := FromSorted([]uint64{10, 20, 30, 1 << 35}, nil)
	cases := []struct {
		x    uint64
		want uint64
		ok   bool
	}{
		{1, 10, true}, {10, 10, true}, {11, 20, true}, {31, 1 << 35, true}, {1<<35 + 1, 0, false},
	}
	for _, cse := range cases {
		got, ok := c.Next(cse.x)
		if got != cse.want || ok != cse.ok {
			t.Errorf("Next(%d) = (%d,%v), want (%d,%v)", cse.x, got, ok, cse.want, cse.ok)
		}
	}
	if v, _ := c.Min(); v != 10 {
		t.Errorf("Min = %d", v)
	}
	if v, _ := c.Max(); v != 1<<35 {
		t.Errorf("Max = %d", v)
	}
}

func TestMapRange(t *testing.T) {
	var keys []uint64
	for i := 1; i <= 2000; i++ {
		keys = append(keys, uint64(i*7))
	}
	c := FromSorted(keys, nil)
	var got []uint64
	c.MapRange(70, 140, func(v uint64) bool {
		got = append(got, v)
		return true
	})
	var want []uint64
	for _, k := range keys {
		if k >= 70 && k < 140 {
			want = append(want, k)
		}
	}
	if !slices.Equal(got, want) {
		t.Fatalf("MapRange got %v, want %v", got, want)
	}
	calls := 0
	c.MapRange(0, ^uint64(0), func(uint64) bool {
		calls++
		return calls < 5
	})
	if calls != 5 {
		t.Fatalf("early exit after %d calls", calls)
	}
}

func TestMapRangeLength(t *testing.T) {
	c := FromSorted([]uint64{2, 4, 6, 8, 10, 12}, nil)
	var got []uint64
	n := c.MapRangeLength(5, 3, func(v uint64) bool {
		got = append(got, v)
		return true
	})
	if n != 3 || !slices.Equal(got, []uint64{6, 8, 10}) {
		t.Fatalf("MapRangeLength = %d %v", n, got)
	}
}

func TestSum(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	keys := uniqueRandom(r, 30_000, 1<<40)
	c := New(nil)
	c.InsertBatch(keys, false)
	var want uint64
	for _, k := range keys {
		want += k
	}
	if got := c.Sum(); got != want {
		t.Fatalf("Sum = %d, want %d", got, want)
	}
}

func TestInsertBatchMatchesPMA(t *testing.T) {
	// The CPMA and PMA must represent exactly the same set after identical
	// mixed batch workloads.
	r := rand.New(rand.NewSource(6))
	c := New(nil)
	p := pma.New(nil)
	for round := 0; round < 8; round++ {
		ins := make([]uint64, 3000)
		for i := range ins {
			ins[i] = 1 + r.Uint64()%(1<<22)
		}
		ca := c.InsertBatch(ins, false)
		pa := p.InsertBatch(ins, false)
		if ca != pa {
			t.Fatalf("round %d: added %d vs %d", round, ca, pa)
		}
		del := make([]uint64, 2000)
		for i := range del {
			del[i] = 1 + r.Uint64()%(1<<22)
		}
		cr := c.RemoveBatch(del, false)
		pr := p.RemoveBatch(del, false)
		if cr != pr {
			t.Fatalf("round %d: removed %d vs %d", round, cr, pr)
		}
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if c.Len() != p.Len() {
			t.Fatalf("round %d: Len %d vs %d", round, c.Len(), p.Len())
		}
	}
	if !slices.Equal(c.Keys(), p.Keys()) {
		t.Fatal("CPMA and PMA disagree on final contents")
	}
}

func TestInsertBatchSkewedToOneLeaf(t *testing.T) {
	c := New(nil)
	var base []uint64
	for i := 1; i <= 2000; i++ {
		base = append(base, uint64(i)<<32)
	}
	c.InsertBatch(base, true)
	var batch []uint64
	target := base[1000]
	for i := 1; i <= 5000; i++ {
		batch = append(batch, target+uint64(i))
	}
	if added := c.InsertBatch(batch, true); added != 5000 {
		t.Fatalf("added = %d", added)
	}
	want := append(append([]uint64{}, base...), batch...)
	slices.Sort(want)
	checkAgainst(t, c, want)
}

func TestInsertBatchAllSmallerThanExisting(t *testing.T) {
	c := New(nil)
	var base []uint64
	for i := 0; i < 3000; i++ {
		base = append(base, 1<<39+uint64(i)*64)
	}
	c.InsertBatch(base, true)
	var batch []uint64
	for i := 1; i <= 3000; i++ {
		batch = append(batch, uint64(i)*3)
	}
	c.InsertBatch(batch, true)
	want := append(append([]uint64{}, base...), batch...)
	slices.Sort(want)
	checkAgainst(t, c, want)
}

func TestRemoveBatchEverything(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	base := uniqueRandom(r, 20_000, 1<<40)
	c := New(nil)
	c.InsertBatch(base, false)
	if got := c.RemoveBatch(base, false); got != len(base) {
		t.Fatalf("removed %d, want %d", got, len(base))
	}
	checkAgainst(t, c, nil)
}

func TestBatchPropertyAgainstModel(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := New(nil)
		ref := map[uint64]bool{}
		for round := 0; round < 6; round++ {
			n := 200 + r.Intn(3000)
			batch := make([]uint64, n)
			for i := range batch {
				batch[i] = 1 + r.Uint64()%(1<<20)
			}
			if r.Intn(2) == 0 {
				c.InsertBatch(batch, false)
				for _, k := range batch {
					ref[k] = true
				}
			} else {
				c.RemoveBatch(batch, false)
				for _, k := range batch {
					delete(ref, k)
				}
			}
			if c.Len() != len(ref) {
				return false
			}
		}
		if c.CheckInvariants() != nil {
			return false
		}
		got := c.Keys()
		want := make([]uint64, 0, len(ref))
		for k := range ref {
			want = append(want, k)
		}
		slices.Sort(want)
		return slices.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestPointOpsPropertyAgainstModel(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := New(nil)
		ref := map[uint64]bool{}
		for op := 0; op < 1500; op++ {
			k := 1 + r.Uint64()%400
			switch r.Intn(3) {
			case 0:
				if c.Insert(k) == ref[k] {
					return false
				}
				ref[k] = true
			case 1:
				if c.Remove(k) != ref[k] {
					return false
				}
				delete(ref, k)
			default:
				if c.Has(k) != ref[k] {
					return false
				}
			}
		}
		return c.CheckInvariants() == nil && c.Len() == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestCompressionBeatsUncompressed(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	keys := uniqueRandom(r, 200_000, 1<<40) // paper's 40-bit uniform workload
	c := New(nil)
	p := pma.New(nil)
	c.InsertBatch(keys, false)
	p.InsertBatch(keys, false)
	cs, ps := c.SizeBytes(), p.SizeBytes()
	if cs*2 > ps {
		t.Fatalf("CPMA %d bytes not ≥2x smaller than PMA %d bytes (paper Table 6)", cs, ps)
	}
	// At 200k keys in a 40-bit space the average delta needs a 4-byte code,
	// so ~6.5 B/elem is the expected figure (the paper's 4.77 B/elem is at
	// 1M keys where deltas fit 3 bytes).
	bytesPerElem := float64(cs) / float64(len(keys))
	if bytesPerElem > 7 {
		t.Fatalf("CPMA uses %.2f bytes/element on 40-bit uniform keys", bytesPerElem)
	}
}

func TestGrowingFactorAffectsCapacity(t *testing.T) {
	keys := make([]uint64, 50_000)
	for i := range keys {
		keys[i] = uint64(i+1) * 17
	}
	small := New(&Options{GrowthFactor: 1.1})
	big := New(&Options{GrowthFactor: 2.0})
	small.InsertBatch(keys, true)
	big.InsertBatch(keys, true)
	if small.Capacity() > big.Capacity() {
		t.Fatalf("growth 1.1 capacity %d > growth 2.0 capacity %d", small.Capacity(), big.Capacity())
	}
}

func TestInsertZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on key 0")
		}
	}()
	New(nil).Insert(0)
}

func TestLeafBytesOption(t *testing.T) {
	c := New(&Options{LeafBytes: 256})
	if c.LeafBytes() != 256 {
		t.Fatalf("LeafBytes = %d", c.LeafBytes())
	}
	r := rand.New(rand.NewSource(9))
	keys := uniqueRandom(r, 10_000, 1<<40)
	c.InsertBatch(keys, false)
	if c.LeafBytes() != 256 {
		t.Fatalf("LeafBytes changed to %d", c.LeafBytes())
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestHugeDeltasNearMaxUint(t *testing.T) {
	// Keys spread across the full 64-bit space: 10-byte codes everywhere.
	keys := []uint64{1, 1 << 20, 1 << 40, 1 << 62, 1<<63 + 5, ^uint64(0)}
	c := New(nil)
	for _, k := range keys {
		c.Insert(k)
	}
	checkAgainst(t, c, keys)
	for _, k := range keys {
		if !c.Remove(k) {
			t.Fatalf("Remove(%d) failed", k)
		}
	}
	checkAgainst(t, c, nil)
}

func TestZipfianBatchesRegression(t *testing.T) {
	// Mirror of the PMA regression test: hot keys below the structure's
	// current minimum inside a recursion subrange.
	r := rand.New(rand.NewSource(99))
	c := New(nil)
	ref := map[uint64]bool{}
	for round := 0; round < 12; round++ {
		batch := make([]uint64, 1500)
		for i := range batch {
			if r.Intn(3) == 0 {
				batch[i] = 1 + uint64(r.Intn(20))
			} else {
				batch[i] = 1 + r.Uint64()%(1<<34)
			}
		}
		c.InsertBatch(batch, false)
		for _, k := range batch {
			ref[k] = true
		}
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	if c.Len() != len(ref) {
		t.Fatalf("Len %d, want %d", c.Len(), len(ref))
	}
}

// cloneEqual asserts that two CPMAs hold identical contents and that both
// pass the strict leaf invariants.
func cloneEqual(t *testing.T, a, b *CPMA) {
	t.Helper()
	if a.Len() != b.Len() || a.Sum() != b.Sum() {
		t.Fatalf("Len/Sum diverge: %d/%d vs %d/%d", a.Len(), a.Sum(), b.Len(), b.Sum())
	}
	if !slices.Equal(a.Keys(), b.Keys()) {
		t.Fatal("Keys diverge")
	}
	for _, c := range []*CPMA{a, b} {
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCloneEquality(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for _, n := range []int{0, 1, 100, 20000} {
		c := New(&Options{LeafBytes: 256, PointThreshold: 10})
		keys := uniqueRandom(r, n, 1<<30)
		c.InsertBatch(keys, false)
		d := c.Clone()
		cloneEqual(t, c, d)
		slices.Sort(keys)
		if !slices.Equal(d.Keys(), keys) {
			t.Fatalf("n=%d: clone contents wrong", n)
		}
	}
}

// TestCloneIsolation: mutating the original — including through growth and
// shrink rebuilds that replace every internal array — must never change a
// previously taken clone, and mutating the clone must never change the
// original.
func TestCloneIsolation(t *testing.T) {
	r := rand.New(rand.NewSource(32))
	c := New(&Options{LeafBytes: 256, PointThreshold: 10})
	c.InsertBatch(uniqueRandom(r, 5000, 1<<28), false)
	frozen := c.Clone()
	want := frozen.Keys()

	// Growth rebuilds: quadruple the original's contents.
	c.InsertBatch(uniqueRandom(r, 15000, 1<<28), false)
	if !slices.Equal(frozen.Keys(), want) {
		t.Fatal("growth rebuild of the original leaked into the clone")
	}
	if err := frozen.Validate(); err != nil {
		t.Fatalf("clone after original growth: %v", err)
	}

	// Shrink rebuilds: remove almost everything from the original.
	all := c.Keys()
	c.RemoveBatch(all[:len(all)-10], true)
	if !slices.Equal(frozen.Keys(), want) {
		t.Fatal("shrink rebuild of the original leaked into the clone")
	}

	// The clone is itself a live CPMA: mutate it through its own growth and
	// shrink rebuilds, then check the (tiny) original never noticed.
	origKeys := c.Keys()
	frozen.InsertBatch(uniqueRandom(r, 20000, 1<<28), false)
	if err := frozen.Validate(); err != nil {
		t.Fatalf("clone after its own growth: %v", err)
	}
	fk := frozen.Keys()
	frozen.RemoveBatch(fk[:len(fk)-20], true)
	if err := frozen.Validate(); err != nil {
		t.Fatalf("clone after its own shrink: %v", err)
	}
	if !slices.Equal(c.Keys(), origKeys) {
		t.Fatal("mutating the clone leaked into the original")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestCloneChain: clones of clones stay independent (each publication epoch
// in the sharded snapshot pipeline clones the same live set repeatedly).
func TestCloneChain(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	c := New(&Options{LeafBytes: 256, PointThreshold: 10})
	var snaps []*CPMA
	var wants [][]uint64
	for round := 0; round < 8; round++ {
		c.InsertBatch(uniqueRandom(r, 2000, 1<<26), false)
		c.RemoveBatch(uniqueRandom(r, 500, 1<<26), false)
		snaps = append(snaps, c.Clone())
		wants = append(wants, c.Keys())
	}
	for i, sn := range snaps {
		if !slices.Equal(sn.Keys(), wants[i]) {
			t.Fatalf("snapshot %d drifted", i)
		}
		if err := sn.Validate(); err != nil {
			t.Fatalf("snapshot %d: %v", i, err)
		}
	}
}

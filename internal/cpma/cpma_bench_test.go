package cpma

import (
	"testing"

	"repro/internal/workload"
)

func benchBase(n int) *CPMA {
	c := New(nil)
	c.InsertBatch(workload.Uniform(workload.NewRNG(1), n, 40), false)
	return c
}

func BenchmarkPointInsert(b *testing.B) {
	c := benchBase(100_000)
	r := workload.NewRNG(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Insert(1 + r.Uint64()%(1<<40))
	}
}

func BenchmarkPointQuery(b *testing.B) {
	c := benchBase(100_000)
	r := workload.NewRNG(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Has(1 + r.Uint64()%(1<<40))
	}
}

func BenchmarkBatchInsert10k(b *testing.B) {
	c := benchBase(100_000)
	r := workload.NewRNG(4)
	batches := make([][]uint64, 32)
	for i := range batches {
		batches[i] = workload.Uniform(r, 10_000, 40)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.InsertBatch(batches[i%len(batches)], false)
	}
}

func BenchmarkSum(b *testing.B) {
	c := benchBase(200_000)
	b.SetBytes(int64(c.UsedBytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Sum()
	}
}

func BenchmarkRangeSum(b *testing.B) {
	c := benchBase(200_000)
	r := workload.NewRNG(5)
	span := uint64(1) << 40 / 100
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := 1 + r.Uint64()%(uint64(1)<<40-span)
		c.RangeSum(lo, lo+span)
	}
}

func BenchmarkBuildFromSorted(b *testing.B) {
	keys := workload.Uniform(workload.NewRNG(6), 200_000, 40)
	c := New(nil)
	c.InsertBatch(keys, false)
	sorted := c.Keys()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FromSorted(sorted, nil)
	}
}

package cpma

import (
	"sort"
	"sync/atomic"

	"repro/internal/codec"
	"repro/internal/parallel"
)

// The batch-update algorithm below is identical to the uncompressed PMA's
// (paper §5: "the batch-update algorithm in the CPMA is identical to the
// batch-update algorithm for PMAs described in Section 4") — only the
// per-leaf merge and the redistribution work on byte codes.

const mergeForkGrain = 2048

// InsertBatch inserts a batch of keys, returning how many were new. If
// sorted is false the batch is sorted in a copy first; duplicates within
// the batch are removed either way.
func (c *CPMA) InsertBatch(keys []uint64, sorted bool) int {
	batch := c.prepareBatch(keys, sorted)
	if len(batch) == 0 {
		return 0
	}
	switch {
	case c.n == 0:
		c.rebuildFrom(batch)
		return len(batch)
	case len(batch) <= c.opt.PointThreshold:
		added := 0
		for _, x := range batch {
			if c.Insert(x) {
				added++
			}
		}
		return added
	case float64(len(batch)) >= c.opt.RebuildFraction*float64(c.n):
		return c.rebuildMerge(batch)
	default:
		return c.batchMerge(batch)
	}
}

// RemoveBatch removes a batch of keys, returning how many were present.
func (c *CPMA) RemoveBatch(keys []uint64, sorted bool) int {
	batch := c.prepareBatch(keys, sorted)
	if len(batch) == 0 || c.n == 0 {
		return 0
	}
	if len(batch) <= c.opt.PointThreshold {
		removed := 0
		for _, x := range batch {
			if c.Remove(x) {
				removed++
			}
		}
		return removed
	}
	dirty := parallel.NewBitset(c.leaves)
	var removed atomic.Int64
	c.removeRange(batch, 0, c.leaves-1, dirty, &removed)
	c.n -= int(removed.Load())
	if c.Capacity() > minCapacity {
		plan := c.tree.Count(c.usedOf, dirty.Indices(), false, true)
		c.applyPlan(plan)
	}
	return int(removed.Load())
}

func (c *CPMA) prepareBatch(keys []uint64, sorted bool) []uint64 {
	if len(keys) == 0 {
		return nil
	}
	var batch []uint64
	if sorted {
		batch = parallel.DedupSorted(keys)
	} else {
		batch = parallel.DedupSorted(parallel.SortedCopy(keys))
	}
	if len(batch) > 0 && batch[0] == 0 {
		panic("cpma: key 0 is reserved")
	}
	return batch
}

func (c *CPMA) batchMerge(batch []uint64) int {
	if c.overflow == nil {
		c.overflow = make([][]uint64, c.leaves)
	}
	dirty := parallel.NewBitset(c.leaves)
	var added atomic.Int64

	c.mergeRange(batch, 0, c.leaves-1, dirty, &added)
	c.n += int(added.Load())

	plan := c.tree.Count(c.usedOf, dirty.Indices(), true, false)
	c.applyPlan(plan)
	return int(added.Load())
}

func (c *CPMA) rebuildMerge(batch []uint64) int {
	all := c.gatherElems(0, c.leaves)
	merged, fresh := parallel.MergeDedup(all, batch)
	c.rebuildFrom(merged)
	return fresh
}

// mergeRange mirrors pma.mergeRange; see that implementation for the
// leaf-range ownership argument that makes the recursion lock-free.
func (c *CPMA) mergeRange(batch []uint64, loLeaf, hiLeaf int, dirty *parallel.Bitset, added *atomic.Int64) {
	if len(batch) == 0 {
		return
	}
	if loLeaf > hiLeaf {
		panic("cpma: batch elements with no target leaf range")
	}
	mid := batch[len(batch)/2]
	leaf := c.leafForIn(mid, loLeaf, hiLeaf)
	var lo, hi int
	if leaf == -1 {
		first := c.firstNonEmptyIn(loLeaf, hiLeaf)
		if first == -1 {
			c.mergeLeaf((loLeaf+hiLeaf)/2, batch, dirty, added)
			return
		}
		leaf = first
		lo = 0
	} else if leaf == loLeaf {
		// No room to recurse left: elements below this head belong at the
		// front of the range's first leaf.
		lo = 0
	} else {
		h := c.head(leaf)
		lo = sort.Search(len(batch), func(i int) bool { return batch[i] >= h })
	}
	upper := c.nextHeadIn(leaf, hiLeaf)
	hi = lo + sort.Search(len(batch)-lo, func(i int) bool { return batch[lo+i] >= upper })

	sub, left, right := batch[lo:hi], batch[:lo], batch[hi:]
	if len(batch) <= mergeForkGrain {
		c.mergeLeaf(leaf, sub, dirty, added)
		c.mergeRange(left, loLeaf, leaf-1, dirty, added)
		c.mergeRange(right, leaf+1, hiLeaf, dirty, added)
		return
	}
	parallel.Do3(
		func() { c.mergeLeaf(leaf, sub, dirty, added) },
		func() { c.mergeRange(left, loLeaf, leaf-1, dirty, added) },
		func() { c.mergeRange(right, leaf+1, hiLeaf, dirty, added) },
	)
}

// mergeLeaf merges a sorted batch run into a compressed leaf: decode, merge,
// re-encode if the bytes fit, otherwise keep the merged run out-of-place
// with its encoded size recorded for the counting phase (Figure 4).
func (c *CPMA) mergeLeaf(leaf int, sub []uint64, dirty *parallel.Bitset, added *atomic.Int64) {
	if len(sub) == 0 {
		return
	}
	dirty.Set(leaf)
	ec := c.ecntOf(leaf)
	var merged []uint64
	fresh := 0
	if ec == 0 {
		merged, fresh = sub, len(sub)
	} else {
		cur := codec.DecodeRun(make([]uint64, 0, ec), c.leafData(leaf), c.usedOf(leaf))
		merged, fresh = parallel.MergeDedup(cur, sub)
	}
	size := codec.SizeOfRun(merged)
	if size <= c.LeafBytes() {
		ld := c.leafDataW(leaf)
		w := codec.EncodeRun(ld, merged)
		clearBytes(ld[w:])
	} else {
		// Overflow: the slab is untouched (the counting phase redistributes
		// it later), so only the metadata changes — no unshare needed.
		if ec == 0 {
			merged = append([]uint64(nil), sub...)
		}
		c.overflow[leaf] = merged
	}
	c.setLeafMeta(leaf, int32(size), int32(len(merged)))
	added.Add(int64(fresh))
}

func (c *CPMA) removeRange(batch []uint64, loLeaf, hiLeaf int, dirty *parallel.Bitset, removed *atomic.Int64) {
	if len(batch) == 0 || loLeaf > hiLeaf {
		return
	}
	mid := batch[len(batch)/2]
	leaf := c.leafForIn(mid, loLeaf, hiLeaf)
	var lo, hi int
	if leaf == -1 {
		first := c.firstNonEmptyIn(loLeaf, hiLeaf)
		if first == -1 {
			return
		}
		leaf = first
		lo = 0
	} else if leaf == loLeaf {
		lo = 0
	} else {
		h := c.head(leaf)
		lo = sort.Search(len(batch), func(i int) bool { return batch[i] >= h })
	}
	upper := c.nextHeadIn(leaf, hiLeaf)
	hi = lo + sort.Search(len(batch)-lo, func(i int) bool { return batch[lo+i] >= upper })

	sub, left, right := batch[lo:hi], batch[:lo], batch[hi:]
	if len(batch) <= mergeForkGrain {
		c.removeLeaf(leaf, sub, dirty, removed)
		c.removeRange(left, loLeaf, leaf-1, dirty, removed)
		c.removeRange(right, leaf+1, hiLeaf, dirty, removed)
		return
	}
	parallel.Do3(
		func() { c.removeLeaf(leaf, sub, dirty, removed) },
		func() { c.removeRange(left, loLeaf, leaf-1, dirty, removed) },
		func() { c.removeRange(right, leaf+1, hiLeaf, dirty, removed) },
	)
}

// removeLeaf deletes keys of sub present in the leaf with a two-finger
// difference over the decoded run. Deletion never grows the encoding, so
// the result always re-encodes in place.
func (c *CPMA) removeLeaf(leaf int, sub []uint64, dirty *parallel.Bitset, removed *atomic.Int64) {
	if len(sub) == 0 || c.usedOf(leaf) == 0 {
		return
	}
	cur := codec.DecodeRun(make([]uint64, 0, c.ecntOf(leaf)), c.leafData(leaf), c.usedOf(leaf))
	w := 0
	j := 0
	dropped := 0
	for _, v := range cur {
		for j < len(sub) && sub[j] < v {
			j++
		}
		if j < len(sub) && sub[j] == v {
			dropped++
			continue
		}
		cur[w] = v
		w++
	}
	if dropped == 0 {
		return
	}
	dirty.Set(leaf)
	removed.Add(int64(dropped))
	ld := c.leafDataW(leaf)
	if w == 0 {
		clearBytes(ld[:c.usedOf(leaf)])
		c.setLeafMeta(leaf, 0, 0)
		return
	}
	size := codec.EncodeRun(ld, cur[:w])
	clearBytes(ld[size:c.usedOf(leaf)])
	c.setLeafMeta(leaf, int32(size), int32(w))
}

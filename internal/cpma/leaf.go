package cpma

import "repro/internal/codec"

// This file holds the single-pass leaf operations of §5: every mutation of a
// compressed leaf is one forward walk over its byte codes, with an in-place
// byte shift at the edit point.

// leafInsert inserts x into a non-full leaf. The caller guarantees
// used + codec.MaxGrowth <= capacity, so the shifted codes always fit.
// Returns false if x was already present.
func (c *CPMA) leafInsert(leaf int, x uint64) bool {
	// Unshare up front: duplicate hits leave an unshared-but-unchanged
	// leaf, which the COW contract allows (contents identical).
	ld := c.leafDataW(leaf)
	u := c.usedOf(leaf)
	e := int32(c.ecntOf(leaf))
	if u == 0 {
		codec.PutHead(ld, x)
		c.setLeafMeta(leaf, codec.HeadBytes, 1)
		return true
	}
	head := codec.Head(ld)
	if x == head {
		return false
	}
	if x < head {
		// New head; the old head becomes the first delta.
		var code [codec.MaxLen]byte
		k := codec.Put(code[:], head-x)
		copy(ld[codec.HeadBytes+k:u+k], ld[codec.HeadBytes:u])
		copy(ld[codec.HeadBytes:], code[:k])
		codec.PutHead(ld, x)
		c.setLeafMeta(leaf, int32(u+k), e+1)
		return true
	}
	prev := head
	off := codec.HeadBytes
	for off < u {
		d, k := codec.Get(ld[off:])
		cur := prev + d
		if cur == x {
			return false
		}
		if cur > x {
			// Split delta d into (x-prev, cur-x).
			var code [2 * codec.MaxLen]byte
			w := codec.Put(code[:], x-prev)
			w += codec.Put(code[w:], cur-x)
			grow := w - k
			copy(ld[off+w:u+grow], ld[off+k:u])
			copy(ld[off:], code[:w])
			c.setLeafMeta(leaf, int32(u+grow), e+1)
			return true
		}
		prev = cur
		off += k
	}
	// x is the new maximum: append one delta.
	w := codec.Put(ld[u:], x-prev)
	c.setLeafMeta(leaf, int32(u+w), e+1)
	return true
}

// leafRemove removes x from the leaf if present, merging the neighboring
// deltas. Removal never grows the encoding.
func (c *CPMA) leafRemove(leaf int, x uint64) bool {
	u := c.usedOf(leaf)
	if u == 0 {
		return false
	}
	// Unshare before the walk (misses leave an unchanged unshared leaf;
	// see leafInsert).
	ld := c.leafDataW(leaf)
	e := int32(c.ecntOf(leaf))
	head := codec.Head(ld)
	if x < head {
		return false
	}
	if x == head {
		if u == codec.HeadBytes {
			// Last element gone; leaf becomes empty.
			clearBytes(ld[:u])
			c.setLeafMeta(leaf, 0, 0)
			return true
		}
		d, k := codec.Get(ld[codec.HeadBytes:])
		copy(ld[codec.HeadBytes:u-k], ld[codec.HeadBytes+k:u])
		clearBytes(ld[u-k : u])
		codec.PutHead(ld, head+d)
		c.setLeafMeta(leaf, int32(u-k), e-1)
		return true
	}
	prev := head
	off := codec.HeadBytes
	for off < u {
		d, k := codec.Get(ld[off:])
		cur := prev + d
		switch {
		case cur < x:
			prev = cur
			off += k
		case cur > x:
			return false
		default: // cur == x
			if off+k == u {
				// Removing the maximum: drop the trailing delta.
				clearBytes(ld[off:u])
				c.setLeafMeta(leaf, int32(off), e-1)
				return true
			}
			d2, k2 := codec.Get(ld[off+k:])
			var code [codec.MaxLen]byte
			w := codec.Put(code[:], d+d2) // next element relative to prev
			shrink := k + k2 - w
			copy(ld[off:], code[:w])
			copy(ld[off+w:u-shrink], ld[off+k+k2:u])
			clearBytes(ld[u-shrink : u])
			c.setLeafMeta(leaf, int32(u-shrink), e-1)
			return true
		}
	}
	return false
}

// leafHas reports whether x is in the leaf.
func (c *CPMA) leafHas(leaf int, x uint64) bool {
	ld := c.leafData(leaf)
	u := c.usedOf(leaf)
	if u == 0 {
		return false
	}
	v := codec.Head(ld)
	if v == x {
		return true
	}
	if v > x {
		return false
	}
	for off := codec.HeadBytes; off < u; {
		d, k := codec.Get(ld[off:])
		v += d
		if v == x {
			return true
		}
		if v > x {
			return false
		}
		off += k
	}
	return false
}

// leafIter applies f to the leaf's keys in order until f returns false.
// It reports whether the full leaf was visited. The byte-code decode is
// inlined by hand: Go does not inline functions containing loops, and this
// is the range-map hot path.
func (c *CPMA) leafIter(leaf int, f func(uint64) bool) bool {
	ld := c.leafData(leaf)
	u := c.usedOf(leaf)
	if u == 0 {
		return true
	}
	v := codec.Head(ld)
	if !f(v) {
		return false
	}
	for off := codec.HeadBytes; off < u; {
		b := ld[off]
		off++
		d := uint64(b & 0x7f)
		for shift := uint(7); b >= 0x80; shift += 7 {
			b = ld[off]
			off++
			d |= uint64(b&0x7f) << shift
		}
		v += d
		if !f(v) {
			return false
		}
	}
	return true
}

// leafSum returns the sum of the leaf's keys (inlined decode; see leafIter).
func (c *CPMA) leafSum(leaf int) uint64 {
	ld := c.leafData(leaf)
	u := c.usedOf(leaf)
	if u == 0 {
		return 0
	}
	v := codec.Head(ld)
	s := v
	for off := codec.HeadBytes; off < u; {
		b := ld[off]
		off++
		d := uint64(b & 0x7f)
		for shift := uint(7); b >= 0x80; shift += 7 {
			b = ld[off]
			off++
			d |= uint64(b&0x7f) << shift
		}
		v += d
		s += v
	}
	return s
}

package cpma

import (
	"bytes"
	"encoding/binary"
	"io"
	"slices"
	"testing"

	"repro/internal/workload"
)

// roundTrip serializes c, asserts the byte count matches EncodedSize, and
// deserializes it back with the same options.
func roundTrip(t *testing.T, c *CPMA, opts *Options) *CPMA {
	t.Helper()
	var buf bytes.Buffer
	n, err := c.WriteTo(&buf)
	if err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if uint64(n) != c.EncodedSize() {
		t.Fatalf("WriteTo wrote %d bytes, EncodedSize says %d", n, c.EncodedSize())
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, buffer holds %d", n, buf.Len())
	}
	d, err := ReadFrom(&buf, opts)
	if err != nil {
		t.Fatalf("ReadFrom: %v", err)
	}
	return d
}

// assertEqualSets checks that two CPMAs decode to the same keys and both
// pass the strict validator.
func assertEqualSets(t *testing.T, want, got *CPMA) {
	t.Helper()
	if err := got.Validate(); err != nil {
		t.Fatalf("deserialized CPMA invalid: %v", err)
	}
	if got.Len() != want.Len() {
		t.Fatalf("Len mismatch: want %d, got %d", want.Len(), got.Len())
	}
	if !slices.Equal(want.Keys(), got.Keys()) {
		t.Fatal("key sets differ after round trip")
	}
}

func TestSlabRoundTripStates(t *testing.T) {
	r := workload.NewRNG(7)
	for _, tc := range []struct {
		name string
		opts *Options
		fill func(c *CPMA)
	}{
		{"empty", nil, func(c *CPMA) {}},
		{"single-key", nil, func(c *CPMA) { c.Insert(42) }},
		// LeafBytes == minCapacity gives exactly one leaf.
		{"single-leaf", &Options{LeafBytes: 4 * minLeafBytes}, func(c *CPMA) {
			c.InsertBatch([]uint64{3, 9, 1 << 30, 1 << 50}, true)
		}},
		// Dense sequential keys drive every leaf toward the byte-density
		// ceiling (1-byte deltas), the max-density shape.
		{"max-density", nil, func(c *CPMA) {
			keys := make([]uint64, 40_000)
			for i := range keys {
				keys[i] = uint64(i + 1)
			}
			c.InsertBatch(keys, true)
		}},
		{"uniform-grown", nil, func(c *CPMA) {
			c.InsertBatch(workload.Uniform(r, 60_000, 40), false)
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := New(tc.opts)
			tc.fill(c)
			if err := c.Validate(); err != nil {
				t.Fatalf("source invalid before serialization: %v", err)
			}
			assertEqualSets(t, c, roundTrip(t, c, tc.opts))
		})
	}
}

// TestSlabRoundTripAcrossRebuilds walks one CPMA through growth and shrink
// rebuilds, round-tripping at every stage, and finally checks the
// deserialized copy is a fully functional CPMA by mutating it onward.
func TestSlabRoundTripAcrossRebuilds(t *testing.T) {
	r := workload.NewRNG(11)
	c := New(nil)
	keys := workload.Uniform(r, 80_000, 40)
	for i := 0; i < len(keys); i += 20_000 { // growth rebuilds
		c.InsertBatch(keys[i:i+20_000], false)
		assertEqualSets(t, c, roundTrip(t, c, nil))
	}
	c.RemoveBatch(keys[:72_000], false) // shrink rebuilds
	d := roundTrip(t, c, nil)
	assertEqualSets(t, c, d)

	// The copy must keep working independently of the original.
	fresh := d.InsertBatch(keys[:30_000], false)
	if err := d.Validate(); err != nil {
		t.Fatalf("mutated deserialized CPMA invalid: %v", err)
	}
	if c.Len()+fresh != d.Len() {
		t.Fatalf("independent mutation leaked: orig %d + %d fresh != copy %d", c.Len(), fresh, d.Len())
	}
}

func TestSlabRejectsCorruption(t *testing.T) {
	c := New(nil)
	c.InsertBatch([]uint64{5, 9, 1000, 1 << 33}, true)
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	corrupt := func(mutate func(b []byte)) []byte {
		b := append([]byte(nil), good...)
		mutate(b)
		return b
	}
	cases := map[string][]byte{
		"bad-magic":   corrupt(func(b []byte) { b[0] = 'X' }),
		"bad-version": corrupt(func(b []byte) { binary.LittleEndian.PutUint32(b[8:], 99) }),
		"leaflog-out-of-range": corrupt(func(b []byte) {
			binary.LittleEndian.PutUint32(b[12:], 40)
		}),
		"zero-leaves": corrupt(func(b []byte) { binary.LittleEndian.PutUint64(b[16:], 0) }),
		"overflowing-geometry": corrupt(func(b []byte) {
			// leaves<<leafLog2 wraps uint64; the bound check must not.
			binary.LittleEndian.PutUint32(b[12:], 4)
			binary.LittleEndian.PutUint64(b[16:], 1<<60)
		}),
		"absurd-count": corrupt(func(b []byte) {
			binary.LittleEndian.PutUint64(b[24:], 1<<40)
		}),
		"flipped-metadata": corrupt(func(b []byte) { b[slabHeaderSize] ^= 0xff }),
		"flipped-data":     corrupt(func(b []byte) { b[len(b)-10] ^= 0x01 }),
		"flipped-crc":      corrupt(func(b []byte) { b[len(b)-1] ^= 0x01 }),
		"truncated":        good[:len(good)-7],
		"empty":            nil,
	}
	for name, blob := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadFrom(bytes.NewReader(blob), nil); err == nil {
				t.Fatal("ReadFrom accepted a corrupted slab")
			}
		})
	}

	// A short writer must surface the error, not emit a silent prefix.
	if _, err := c.WriteTo(&limitedWriter{limit: 10}); err == nil {
		t.Fatal("WriteTo swallowed a short write")
	}
}

type limitedWriter struct{ limit int }

func (w *limitedWriter) Write(p []byte) (int, error) {
	if len(p) > w.limit {
		n := w.limit
		w.limit = 0
		return n, io.ErrShortWrite
	}
	w.limit -= len(p)
	return len(p), nil
}

package cpma

// Slab serialization: the persistence payoff of the paper's central design
// choice. A CPMA's entire state is three flat slabs — data []byte, the
// per-leaf used/ecnt metadata, and a few geometry scalars — with no
// pointers, so checkpointing is a straight dump of those slabs: no node
// traversal, no pointer fixup on load, no re-encoding. (Contrast PaC-trees,
// whose purely-functional nodes force a pointer-chasing serializer.)
// WriteTo/ReadFrom implement that dump with a fixed little-endian header
// and a trailing CRC32C so torn or bit-rotted files are rejected rather
// than loaded; the implicit pmatree is arithmetic and is rebuilt from the
// geometry on load.
//
// Format (version 1, all integers little-endian):
//
//	[ 8] magic "CPMASLB1"
//	[ 4] version (1)
//	[ 4] leafLog2
//	[ 8] leaves
//	[ 8] n (stored keys)
//	[4L] used[leaf]  int32 x leaves
//	[4L] ecnt[leaf]  int32 x leaves
//	[  ] data        leaves << leafLog2 bytes
//	[ 4] CRC32C of every preceding byte
//
// The overflow spine is intentionally absent: it is non-nil only mid-batch,
// and serialization is defined on at-rest structures (Clone handles
// published by the shard writers are always at rest).

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/pmatree"
)

const (
	slabMagic   = "CPMASLB1"
	slabVersion = 1
	// slabHeaderSize is the fixed prefix before the per-leaf slabs.
	slabHeaderSize = 8 + 4 + 4 + 8 + 8
	slabCRCSize    = 4

	// Sanity bounds ReadFrom enforces before allocating anything, so a
	// corrupted header cannot demand an absurd allocation. maxSlabLeafLog2
	// is generous (1 MiB leaves) next to the in-memory cap of 2 KiB.
	minSlabLeafLog2 = 4
	maxSlabLeafLog2 = 20
	maxSlabBytes    = 1 << 36
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// EncodedSize returns the exact number of bytes WriteTo emits. It tracks
// SizeBytes (the in-memory footprint the paper's get_size reports) up to
// the fixed header and CRC: both count the data array plus the per-leaf
// metadata, so checkpoint-size stats stay comparable with the clone-size
// stats the snapshot machinery reports.
func (c *CPMA) EncodedSize() uint64 {
	return uint64(slabHeaderSize + 8*c.leaves + c.Capacity() + slabCRCSize)
}

// WriteTo serializes the CPMA to w (implementing io.WriterTo) and returns
// the bytes written, always EncodedSize on success. The receiver must be at
// rest (no batch in flight) and must not be mutated for the duration;
// frozen Clone handles satisfy both by construction.
func (c *CPMA) WriteTo(w io.Writer) (int64, error) {
	crc := crc32.New(castagnoli)
	mw := io.MultiWriter(w, crc)
	var written int64

	hdr := make([]byte, slabHeaderSize)
	copy(hdr, slabMagic)
	binary.LittleEndian.PutUint32(hdr[8:], slabVersion)
	binary.LittleEndian.PutUint32(hdr[12:], uint32(c.leafLog2))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(c.leaves))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(c.n))
	n, err := mw.Write(hdr)
	written += int64(n)
	if err != nil {
		return written, err
	}

	meta := make([]byte, 8*c.leaves)
	for i := 0; i < c.leaves; i++ {
		st := c.leafSt(i)
		binary.LittleEndian.PutUint32(meta[4*i:], uint32(st.used))
		binary.LittleEndian.PutUint32(meta[4*c.leaves+4*i:], uint32(st.ecnt))
	}
	n, err = mw.Write(meta)
	written += int64(n)
	if err != nil {
		return written, err
	}

	// Leaf slabs in order reproduce the v1 flat data array byte for byte;
	// COW sharing is invisible to the format.
	for i := 0; i < c.leaves; i++ {
		n, err = mw.Write(c.leafSt(i).data)
		written += int64(n)
		if err != nil {
			return written, err
		}
	}

	var tail [slabCRCSize]byte
	binary.LittleEndian.PutUint32(tail[:], crc.Sum32())
	n, err = w.Write(tail[:])
	written += int64(n)
	return written, err
}

// ReadFrom deserializes a CPMA written by WriteTo. opts plays the role it
// plays in New — it configures future rebuilds (growth factor, bounds) and
// may be nil for defaults — while the array geometry comes from the stream.
// The stream is validated structurally (magic, version, geometry bounds,
// metadata consistency) and end-to-end by the trailing CRC32C; any mismatch
// returns an error and no CPMA. Callers that distrust the producer should
// additionally run Validate on the result.
func ReadFrom(r io.Reader, opts *Options) (*CPMA, error) {
	crc := crc32.New(castagnoli)
	tr := io.TeeReader(r, crc)

	hdr := make([]byte, slabHeaderSize)
	if _, err := io.ReadFull(tr, hdr); err != nil {
		return nil, fmt.Errorf("cpma: slab header: %w", err)
	}
	if string(hdr[:8]) != slabMagic {
		return nil, fmt.Errorf("cpma: bad slab magic %q", hdr[:8])
	}
	if v := binary.LittleEndian.Uint32(hdr[8:]); v != slabVersion {
		return nil, fmt.Errorf("cpma: unsupported slab version %d (want %d)", v, slabVersion)
	}
	leafLog2 := binary.LittleEndian.Uint32(hdr[12:])
	leaves := binary.LittleEndian.Uint64(hdr[16:])
	count := binary.LittleEndian.Uint64(hdr[24:])
	if leafLog2 < minSlabLeafLog2 || leafLog2 > maxSlabLeafLog2 {
		return nil, fmt.Errorf("cpma: slab leafLog2 %d out of range", leafLog2)
	}
	// Compare without shifting leaves: a crafted huge leaf count must not
	// overflow its way past the allocation bound.
	if leaves < 1 || leaves > maxSlabBytes>>leafLog2 {
		return nil, fmt.Errorf("cpma: slab geometry %d leaves x %d bytes out of range", leaves, 1<<leafLog2)
	}
	dataLen := int(leaves) << leafLog2
	if count > uint64(dataLen) {
		return nil, fmt.Errorf("cpma: slab claims %d keys in %d bytes", count, dataLen)
	}

	meta := make([]byte, 8*leaves)
	if _, err := io.ReadFull(tr, meta); err != nil {
		return nil, fmt.Errorf("cpma: slab metadata: %w", err)
	}
	data := make([]byte, dataLen)
	if _, err := io.ReadFull(tr, data); err != nil {
		return nil, fmt.Errorf("cpma: slab data: %w", err)
	}
	var tail [slabCRCSize]byte
	if _, err := io.ReadFull(r, tail[:]); err != nil {
		return nil, fmt.Errorf("cpma: slab checksum: %w", err)
	}
	if got, want := crc.Sum32(), binary.LittleEndian.Uint32(tail[:]); got != want {
		return nil, fmt.Errorf("cpma: slab checksum mismatch (computed %08x, stored %08x)", got, want)
	}

	leafBytes := 1 << leafLog2
	lf := leafSpineOver(data, int(leaves), leafBytes)
	total := uint64(0)
	for i := 0; i < int(leaves); i++ {
		u := int32(binary.LittleEndian.Uint32(meta[4*i:]))
		e := int32(binary.LittleEndian.Uint32(meta[4*int(leaves)+4*i:]))
		if u < 0 || int(u) > leafBytes {
			return nil, fmt.Errorf("cpma: slab leaf %d used %d out of range", i, u)
		}
		if e < 0 || (u == 0) != (e == 0) {
			return nil, fmt.Errorf("cpma: slab leaf %d used %d but ecnt %d", i, u, e)
		}
		st := &lf[i>>chunkLog].Load()[i&chunkMask]
		st.used = u
		st.ecnt = e
		total += uint64(e)
	}
	if total != count {
		return nil, fmt.Errorf("cpma: slab leaves hold %d keys but header says %d", total, count)
	}

	var o Options
	if opts != nil {
		o = *opts
	}
	c := &CPMA{
		lf:       lf,
		leafLog2: uint(leafLog2),
		leaves:   int(leaves),
		n:        int(count),
		opt:      o.withDefaults(),
	}
	c.tree = pmatree.New(c.leaves, leafBytes, effectiveBounds(c.opt.Bounds, leafBytes))
	c.ownAllChunks()
	// A freshly loaded slab is clean: mutations applied on top (e.g. WAL
	// replay during recovery) accumulate into the dirty window naturally.
	c.resetDirty()
	return c, nil
}

package cpma

import "repro/internal/parallel"

// Map applies f to every key in ascending order, stopping early when f
// returns false; reports whether the scan completed.
func (c *CPMA) Map(f func(uint64) bool) bool {
	for leaf := 0; leaf < c.leaves; leaf++ {
		if !c.leafIter(leaf, f) {
			return false
		}
	}
	return true
}

// ParallelMap applies f to every key with leaf-level parallelism; ordering
// is guaranteed only within a leaf. f must be safe for concurrent calls.
func (c *CPMA) ParallelMap(f func(uint64)) {
	forLeaves(c.leaves, func(leaf int) {
		c.leafIter(leaf, func(v uint64) bool { f(v); return true })
	})
}

// MapRange applies f to keys in [start, end) in ascending order — one
// search, then a contiguous decode (paper's range_map). Stops early when f
// returns false.
func (c *CPMA) MapRange(start, end uint64, f func(uint64) bool) bool {
	if c.n == 0 || start >= end {
		return true
	}
	leaf := c.findLeaf(start)
	for ; leaf < c.leaves; leaf++ {
		done := false
		if !c.leafIter(leaf, func(v uint64) bool {
			if v < start {
				return true
			}
			if v >= end {
				done = true
				return false
			}
			return f(v)
		}) && !done {
			return false
		}
		if done {
			return true
		}
	}
	return true
}

// MapRangeLength applies f to at most length keys starting from the first
// key >= start; returns the number visited.
func (c *CPMA) MapRangeLength(start uint64, length int, f func(uint64) bool) int {
	if c.n == 0 || length <= 0 {
		return 0
	}
	visited := 0
	stop := false
	leaf := c.findLeaf(start)
	for ; leaf < c.leaves && !stop; leaf++ {
		c.leafIter(leaf, func(v uint64) bool {
			if v < start {
				return true
			}
			if visited == length || !f(v) {
				stop = true
				return false
			}
			visited++
			return true
		})
	}
	return visited
}

// LeafMap applies f to the keys of one leaf in ascending order until f
// returns false, reporting whether the whole leaf was visited. Combined
// with Leaves it gives clients (notably F-Graph's vertex-index builder)
// leaf-granular parallel access to the flat layout.
func (c *CPMA) LeafMap(leaf int, f func(uint64) bool) bool {
	return c.leafIter(leaf, f)
}

// LeafLen returns the number of keys stored in one leaf.
func (c *CPMA) LeafLen(leaf int) int { return c.ecntOf(leaf) }

// Sum returns the sum (mod 2^64) of all keys with leaf-level parallelism.
func (c *CPMA) Sum() uint64 {
	return parallel.ReduceSum(c.leaves, 4, c.leafSum)
}

// RangeSum sums keys in [start, end).
func (c *CPMA) RangeSum(start, end uint64) (sum uint64, count int) {
	c.MapRange(start, end, func(v uint64) bool {
		sum += v
		count++
		return true
	})
	return sum, count
}

// Keys returns all keys in ascending order; primarily for tests.
func (c *CPMA) Keys() []uint64 {
	out := make([]uint64, 0, c.n)
	c.Map(func(v uint64) bool {
		out = append(out, v)
		return true
	})
	return out
}

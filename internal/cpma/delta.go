package cpma

// Delta serialization: the incremental counterpart of the slab format.
// Where WriteTo dumps every leaf, WriteDeltaTo dumps only a caller-chosen
// subset — in practice the dirty window DirtySince reported for a
// published handle — so a checkpoint against a known base costs O(dirty
// leaves) on disk just as a Clone costs O(dirty leaves) in memory.
// ApplyDeltaFrom patches a CPMA holding the base state (same geometry)
// into the delta's state. A delta with zero leaves is valid and encodes
// "nothing changed" (the key count must still match).
//
// Format (version 1, all integers little-endian):
//
//	[ 8] magic "CPMADLT1"
//	[ 4] version (1)
//	[ 4] leafLog2            must match the receiver on apply
//	[ 8] leaves              must match the receiver on apply
//	[ 8] n (stored keys after applying)
//	[ 8] D (leaf entries)
//	D x { [8] leaf, [4] used, [4] ecnt }   ascending leaf order
//	D x encoded leaf payload, used bytes each, concatenated in entry order
//	[ 4] CRC32C of every preceding byte
//
// Geometry changes cannot be expressed: a rebuild reports DirtySince all,
// and the caller falls back to a full slab (internal/persist writes a
// fresh base checkpoint in that case).

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

const (
	deltaMagic      = "CPMADLT1"
	deltaVersion    = 1
	deltaHeaderSize = 8 + 4 + 4 + 8 + 8 + 8
	deltaEntrySize  = 8 + 4 + 4
	deltaCRCSize    = 4
)

// DeltaEncodedSize returns the exact number of bytes WriteDeltaTo emits
// for the given leaf subset.
func (c *CPMA) DeltaEncodedSize(leaves []int) uint64 {
	total := uint64(deltaHeaderSize + deltaCRCSize)
	for _, leaf := range leaves {
		total += deltaEntrySize + uint64(c.leafSt(leaf).used)
	}
	return total
}

// WriteDeltaTo serializes the given leaves (ascending, in range,
// duplicate-free — Bitset.Indices output qualifies) and returns the bytes
// written. The receiver must be at rest, like WriteTo.
func (c *CPMA) WriteDeltaTo(w io.Writer, leaves []int) (int64, error) {
	crc := crc32.New(castagnoli)
	mw := io.MultiWriter(w, crc)
	var written int64

	hdr := make([]byte, deltaHeaderSize)
	copy(hdr, deltaMagic)
	binary.LittleEndian.PutUint32(hdr[8:], deltaVersion)
	binary.LittleEndian.PutUint32(hdr[12:], uint32(c.leafLog2))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(c.leaves))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(c.n))
	binary.LittleEndian.PutUint64(hdr[32:], uint64(len(leaves)))
	n, err := mw.Write(hdr)
	written += int64(n)
	if err != nil {
		return written, err
	}

	entries := make([]byte, deltaEntrySize*len(leaves))
	prev := -1
	for i, leaf := range leaves {
		if leaf <= prev || leaf >= c.leaves {
			return written, fmt.Errorf("cpma: delta leaf %d out of order or range", leaf)
		}
		prev = leaf
		st := c.leafSt(leaf)
		binary.LittleEndian.PutUint64(entries[deltaEntrySize*i:], uint64(leaf))
		binary.LittleEndian.PutUint32(entries[deltaEntrySize*i+8:], uint32(st.used))
		binary.LittleEndian.PutUint32(entries[deltaEntrySize*i+12:], uint32(st.ecnt))
	}
	n, err = mw.Write(entries)
	written += int64(n)
	if err != nil {
		return written, err
	}

	for _, leaf := range leaves {
		st := c.leafSt(leaf)
		n, err = mw.Write(st.data[:st.used])
		written += int64(n)
		if err != nil {
			return written, err
		}
	}

	var tail [deltaCRCSize]byte
	binary.LittleEndian.PutUint32(tail[:], crc.Sum32())
	n, err = w.Write(tail[:])
	written += int64(n)
	return written, err
}

// ApplyDeltaFrom patches the receiver with a delta written by WriteDeltaTo
// against the receiver's current geometry. The whole stream is read and
// verified — CRC, structure, geometry match — before any leaf is touched,
// so a failed apply leaves the receiver exactly as it was (recovery relies
// on this to stop cleanly at the first corrupt delta in a chain). On
// success the receiver's dirty window is reset: applying a delta is a load
// operation, and mutations layered on top start a fresh window.
func (c *CPMA) ApplyDeltaFrom(r io.Reader) error {
	buf, err := io.ReadAll(r)
	if err != nil {
		return fmt.Errorf("cpma: delta read: %w", err)
	}
	if len(buf) < deltaHeaderSize+deltaCRCSize {
		return fmt.Errorf("cpma: delta truncated (%d bytes)", len(buf))
	}
	body, tail := buf[:len(buf)-deltaCRCSize], buf[len(buf)-deltaCRCSize:]
	if got, want := crc32.Checksum(body, castagnoli), binary.LittleEndian.Uint32(tail); got != want {
		return fmt.Errorf("cpma: delta checksum mismatch (computed %08x, stored %08x)", got, want)
	}
	if string(body[:8]) != deltaMagic {
		return fmt.Errorf("cpma: bad delta magic %q", body[:8])
	}
	if v := binary.LittleEndian.Uint32(body[8:]); v != deltaVersion {
		return fmt.Errorf("cpma: unsupported delta version %d (want %d)", v, deltaVersion)
	}
	leafLog2 := binary.LittleEndian.Uint32(body[12:])
	leaves := binary.LittleEndian.Uint64(body[16:])
	count := binary.LittleEndian.Uint64(body[24:])
	entryCount := binary.LittleEndian.Uint64(body[32:])
	if uint(leafLog2) != c.leafLog2 || leaves != uint64(c.leaves) {
		return fmt.Errorf("cpma: delta geometry %d leaves x %d bytes does not match receiver (%d x %d)",
			leaves, 1<<leafLog2, c.leaves, c.LeafBytes())
	}
	if entryCount > leaves {
		return fmt.Errorf("cpma: delta claims %d entries over %d leaves", entryCount, leaves)
	}
	leafBytes := c.LeafBytes()
	entries := body[deltaHeaderSize:]
	if uint64(len(entries)) < entryCount*deltaEntrySize {
		return fmt.Errorf("cpma: delta entry table truncated")
	}
	payload := entries[entryCount*deltaEntrySize:]

	// First pass: validate every entry and the payload length before
	// mutating anything.
	off := uint64(0)
	prev := -1
	for i := uint64(0); i < entryCount; i++ {
		e := entries[deltaEntrySize*i:]
		leaf := binary.LittleEndian.Uint64(e)
		used := binary.LittleEndian.Uint32(e[8:])
		ecnt := binary.LittleEndian.Uint32(e[12:])
		if leaf >= uint64(c.leaves) || int(leaf) <= prev {
			return fmt.Errorf("cpma: delta leaf %d out of order or range", leaf)
		}
		prev = int(leaf)
		if used > uint32(leafBytes) {
			return fmt.Errorf("cpma: delta leaf %d used %d out of range", leaf, used)
		}
		if (used == 0) != (ecnt == 0) {
			return fmt.Errorf("cpma: delta leaf %d used %d but ecnt %d", leaf, used, ecnt)
		}
		off += uint64(used)
	}
	if off != uint64(len(payload)) {
		return fmt.Errorf("cpma: delta payload is %d bytes, entries claim %d", len(payload), off)
	}

	// Second pass: apply. leafDataW keeps COW sharing intact — applying a
	// delta onto a cloned base only unshares the patched leaves.
	off = 0
	for i := uint64(0); i < entryCount; i++ {
		e := entries[deltaEntrySize*i:]
		leaf := int(binary.LittleEndian.Uint64(e))
		used := int(binary.LittleEndian.Uint32(e[8:]))
		ecnt := int(binary.LittleEndian.Uint32(e[12:]))
		ld := c.leafDataW(leaf)
		copy(ld, payload[off:off+uint64(used)])
		clearBytes(ld[used:])
		c.setLeafMeta(leaf, int32(used), int32(ecnt))
		off += uint64(used)
	}
	c.n = int(count)
	c.resetDirty()
	return nil
}

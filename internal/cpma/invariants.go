package cpma

import (
	"fmt"
	"strings"

	"repro/internal/codec"
)

// Validate is the strict invariant check the differential tests run after
// every mutation. On top of CheckInvariants' structural checks it verifies
// the three leaf-level properties the paper's design rests on, and reports
// the offending leaf's dump on failure:
//
//   - byte-density bounds: every non-empty leaf keeps at least
//     codec.MaxGrowth bytes of insertion slack (used <= LeafBytes -
//     MaxGrowth). Both the redistribution byte budget and the effective
//     upper density bound guarantee this at rest, so the next point insert
//     into any leaf can never overflow its capacity;
//   - strictly increasing decoded keys across the whole array;
//   - zero-free byte codes: no delta code byte is zero, preserving the
//     all-zero empty-cell sentinel (the head, an uncompressed uint64, is
//     exempt).
func (c *CPMA) Validate() error {
	if err := c.CheckInvariants(); err != nil {
		return err
	}
	slackLimit := c.LeafBytes() - codec.MaxGrowth
	var prev uint64
	for leaf := 0; leaf < c.leaves; leaf++ {
		u := c.usedOf(leaf)
		if u == 0 {
			continue
		}
		if u > slackLimit {
			return fmt.Errorf("cpma: leaf %d holds %d bytes, above the at-rest density bound %d (leaf %d bytes - %d slack)\n%s",
				leaf, u, slackLimit, c.LeafBytes(), codec.MaxGrowth, c.DumpLeaf(leaf))
		}
		ld := c.leafData(leaf)
		for i := codec.HeadBytes; i < u; i++ {
			if ld[i] == 0 {
				return fmt.Errorf("cpma: leaf %d has a zero byte inside its code region at offset %d\n%s",
					leaf, i, c.DumpLeaf(leaf))
			}
		}
		for i, v := range codec.DecodeRun(nil, ld, u) {
			if v <= prev {
				return fmt.Errorf("cpma: leaf %d key %d at position %d does not exceed predecessor %d\n%s",
					leaf, v, i, prev, c.DumpLeaf(leaf))
			}
			prev = v
		}
	}
	return nil
}

// DumpLeaf formats one leaf for failure messages: geometry, the used byte
// region in hex, and the decoded keys.
func (c *CPMA) DumpLeaf(leaf int) string {
	var b strings.Builder
	u := c.usedOf(leaf)
	fmt.Fprintf(&b, "leaf %d/%d: used=%d ecnt=%d cap=%d", leaf, c.leaves, u, c.ecntOf(leaf), c.LeafBytes())
	if u >= codec.HeadBytes {
		ld := c.leafData(leaf)
		fmt.Fprintf(&b, "\n  head=%d bytes=% x", codec.Head(ld), ld[:u])
		fmt.Fprintf(&b, "\n  keys=%v", codec.DecodeRun(nil, ld, u))
	}
	return b.String()
}

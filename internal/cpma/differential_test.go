package cpma_test

// Differential fuzz test: CPMA, PMA, and the sharded front-end are driven
// against a sorted-slice reference model through randomized interleaved
// point/batch/query sequences. After every step the mutated system must
// hold exactly the model's contents, and the CPMA-backed systems must pass
// the strict leaf invariants (byte-density bounds, strictly increasing
// decoded keys, zero-free codes) — failures dump the offending leaf.

import (
	"fmt"
	"slices"
	"sort"
	"testing"

	"repro/internal/cpma"
	"repro/internal/pma"
	"repro/internal/shard"
	"repro/internal/workload"
)

// sut is the face shared by every system under differential test.
type sut interface {
	Insert(uint64) bool
	Remove(uint64) bool
	Has(uint64) bool
	InsertBatch([]uint64, bool) int
	RemoveBatch([]uint64, bool) int
	Len() int
	Keys() []uint64
	MapRange(uint64, uint64, func(uint64) bool) bool
}

// validator is implemented by the CPMA-backed systems.
type validator interface{ Validate() error }

// snapshotter is implemented by the sharded systems: Snapshot captures a
// frozen epoch cut and Flush makes it cover everything previously enqueued
// (the read-your-flushes guarantee).
type snapshotter interface {
	Flush()
	Snapshot() *shard.Snapshot
}

// auditSnapshot cross-checks a frozen Snapshot against the model: after a
// Flush the capture must hold exactly the model's contents, its aggregate
// reads must be mutually consistent, and — since the snapshot is immutable
// — it must still hold those contents after the walk mutates the live set.
// Returns the snapshot and its expected contents for a later re-check.
func auditSnapshot(t *testing.T, tag string, sp snapshotter, m *model) (*shard.Snapshot, []uint64) {
	t.Helper()
	sp.Flush()
	snap := sp.Snapshot()
	if got, want := snap.Len(), len(m.keys); got != want {
		t.Fatalf("%s: snapshot Len = %d, model says %d", tag, got, want)
	}
	got := snap.Keys()
	want := append([]uint64(nil), m.keys...)
	if len(got) != len(want) {
		t.Fatalf("%s: snapshot Keys length %d, model says %d", tag, len(got), len(want))
	}
	var sum uint64
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: snapshot Keys[%d] = %d, model says %d", tag, i, got[i], want[i])
		}
		sum += got[i]
	}
	if snap.Sum() != sum {
		t.Fatalf("%s: snapshot Sum inconsistent with its own Keys", tag)
	}
	if err := snap.Validate(); err != nil {
		t.Fatalf("%s: snapshot invariants: %v", tag, err)
	}
	return snap, want
}

// model is the sorted-slice reference.
type model struct{ keys []uint64 }

func (m *model) find(x uint64) (int, bool) {
	i := sort.Search(len(m.keys), func(i int) bool { return m.keys[i] >= x })
	return i, i < len(m.keys) && m.keys[i] == x
}

func (m *model) Insert(x uint64) bool {
	i, ok := m.find(x)
	if ok {
		return false
	}
	m.keys = append(m.keys, 0)
	copy(m.keys[i+1:], m.keys[i:])
	m.keys[i] = x
	return true
}

func (m *model) Remove(x uint64) bool {
	i, ok := m.find(x)
	if !ok {
		return false
	}
	m.keys = append(m.keys[:i], m.keys[i+1:]...)
	return true
}

func (m *model) Has(x uint64) bool { _, ok := m.find(x); return ok }

func (m *model) InsertBatch(keys []uint64) int {
	added := 0
	for _, k := range keys {
		if m.Insert(k) {
			added++
		}
	}
	return added
}

func (m *model) RemoveBatch(keys []uint64) int {
	removed := 0
	for _, k := range keys {
		if m.Remove(k) {
			removed++
		}
	}
	return removed
}

func (m *model) Range(start, end uint64) []uint64 {
	lo, _ := m.find(start)
	hi, _ := m.find(end)
	return m.keys[lo:hi]
}

// smallLeaf shrinks the CPMA leaves so the random walks cross many more
// leaf boundaries, splits, and rebuilds than default sizing would.
var smallLeaf = &cpma.Options{LeafBytes: 256, PointThreshold: 10}

func systems() map[string]func() sut {
	return map[string]func() sut{
		"cpma":       func() sut { return cpma.New(nil) },
		"cpma-small": func() sut { return cpma.New(smallLeaf) },
		"pma":        func() sut { return pma.New(nil) },
		"shard-hash": func() sut {
			return shard.New(4, &shard.Options{Partition: shard.HashPartition, Set: smallLeaf})
		},
		"shard-range": func() sut {
			return shard.New(3, &shard.Options{Partition: shard.RangePartition, KeyBits: 18, Set: smallLeaf})
		},
		// The async mailbox pipeline, driven through its synchronous
		// (ticketed enqueue + wait) batch paths: every step's counts must
		// stay exact and every read must observe the preceding mutations.
		"shard-async": func() sut {
			return shard.New(4, &shard.Options{Partition: shard.HashPartition, Set: smallLeaf,
				Async: true, MailboxDepth: 4})
		},
		"shard-async-flushreads": func() sut {
			return shard.New(3, &shard.Options{Partition: shard.RangePartition, KeyBits: 18, Set: smallLeaf,
				Async: true, MailboxDepth: 2, FlushReads: true})
		},
		// Hot-key absorption with an aggressive detector: the walk's
		// repeated small keys promote quickly, so ticketed counts and reads
		// run through the separation/overlay path and must stay exact.
		"shard-async-hotkey": func() sut {
			return shard.New(4, &shard.Options{Partition: shard.HashPartition, Set: smallLeaf,
				Async: true, MailboxDepth: 4,
				HotKeys: true, HotKeyEvery: 64, HotKeyFrac: 0.05, HotKeyMax: 8})
		},
	}
}

func validate(s sut) error {
	if v, ok := s.(validator); ok {
		return v.Validate()
	}
	return nil
}

// closeSut stops an async system's shard writers when the test ends.
func closeSut(t *testing.T, s sut) {
	if c, ok := s.(interface{ Close() }); ok {
		t.Cleanup(c.Close)
	}
}

// step applies one random operation to both the model and the system and
// cross-checks results. Returns a description for failure messages.
func step(t *testing.T, r *workload.RNG, bits int, m *model, s sut) string {
	t.Helper()
	keyOf := func() uint64 { return 1 + r.Uint64()%(1<<uint(bits)) }
	batchOf := func() []uint64 {
		n := 1 + r.Intn(300)
		return workload.Uniform(r, n, bits)
	}
	switch op := r.Intn(7); op {
	case 0: // point insert
		k := keyOf()
		if got, want := s.Insert(k), m.Insert(k); got != want {
			t.Fatalf("Insert(%d) = %v, model says %v", k, got, want)
		}
		return fmt.Sprintf("Insert(%d)", k)
	case 1: // point remove
		k := keyOf()
		if got, want := s.Remove(k), m.Remove(k); got != want {
			t.Fatalf("Remove(%d) = %v, model says %v", k, got, want)
		}
		return fmt.Sprintf("Remove(%d)", k)
	case 2: // batch insert (sometimes pre-sorted)
		b := batchOf()
		sorted := r.Intn(2) == 0
		if sorted {
			sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
		}
		if got, want := s.InsertBatch(b, sorted), m.InsertBatch(b); got != want {
			t.Fatalf("InsertBatch(%d keys, sorted=%v) added %d, model says %d", len(b), sorted, got, want)
		}
		return fmt.Sprintf("InsertBatch(%d)", len(b))
	case 3: // batch remove
		b := batchOf()
		if got, want := s.RemoveBatch(b, false), m.RemoveBatch(b); got != want {
			t.Fatalf("RemoveBatch(%d keys) removed %d, model says %d", len(b), got, want)
		}
		return fmt.Sprintf("RemoveBatch(%d)", len(b))
	case 4: // membership queries
		for i := 0; i < 20; i++ {
			k := keyOf()
			if got, want := s.Has(k), m.Has(k); got != want {
				t.Fatalf("Has(%d) = %v, model says %v", k, got, want)
			}
		}
		return "Has×20"
	case 5: // range map
		start := r.Uint64() % (1 << uint(bits))
		end := start + r.Uint64()%(1<<uint(bits-2))
		var got []uint64
		s.MapRange(start, end, func(v uint64) bool { got = append(got, v); return true })
		want := m.Range(start, end)
		if len(got) != len(want) {
			t.Fatalf("MapRange[%d,%d) yielded %d keys, model says %d", start, end, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("MapRange[%d,%d) pos %d = %d, model says %d", start, end, i, got[i], want[i])
			}
		}
		return fmt.Sprintf("MapRange(%d)", len(want))
	default: // remove a run of existing keys to drive shrink paths
		if len(m.keys) > 100 {
			lo := r.Intn(len(m.keys) - 50)
			run := append([]uint64(nil), m.keys[lo:lo+50]...)
			if got, want := s.RemoveBatch(run, true), m.RemoveBatch(run); got != want {
				t.Fatalf("RemoveBatch(existing run) removed %d, model says %d", got, want)
			}
		}
		return "RemoveRun"
	}
}

func TestDifferential(t *testing.T) {
	const steps = 1200
	for name, mk := range systems() {
		for _, seed := range []uint64{1, 2} {
			for _, bits := range []int{14, 30} {
				t.Run(fmt.Sprintf("%s/seed%d/bits%d", name, seed, bits), func(t *testing.T) {
					r := workload.NewRNG(seed)
					m := &model{}
					s := mk()
					closeSut(t, s)
					var frozen *shard.Snapshot
					var frozenWant []uint64
					for i := 0; i < steps; i++ {
						desc := step(t, r, bits, m, s)
						if got, want := s.Len(), len(m.keys); got != want {
							t.Fatalf("step %d (%s): Len = %d, model says %d", i, desc, got, want)
						}
						if err := validate(s); err != nil {
							t.Fatalf("step %d (%s): invariants: %v", i, desc, err)
						}
						// Full-content audits are O(n); amortize them.
						if i%50 == 0 || i == steps-1 {
							got, want := s.Keys(), m.keys
							if len(got) != len(want) {
								t.Fatalf("step %d (%s): Keys length %d, model says %d", i, desc, len(got), len(want))
							}
							for j := range got {
								if got[j] != want[j] {
									t.Fatalf("step %d (%s): Keys[%d] = %d, model says %d", i, desc, j, got[j], want[j])
								}
							}
							if sp, ok := s.(snapshotter); ok {
								// The snapshot taken 50 steps ago must be
								// untouched by everything the walk did since.
								if frozen != nil && !slices.Equal(frozen.Keys(), frozenWant) {
									t.Fatalf("step %d (%s): an earlier snapshot drifted under later mutations", i, desc)
								}
								frozen, frozenWant = auditSnapshot(t, fmt.Sprintf("step %d (%s)", i, desc), sp, m)
							}
						}
					}
				})
			}
		}
	}
}

// TestDifferentialAsync drives the async mailbox pipeline the way it is
// meant to be used — bursts of fire-and-forget enqueues — against the
// sorted-slice model. Enqueues from one goroutine apply in order per
// shard, so after a barrier the contents must equal the model's replay of
// the same burst sequence. One variant establishes the barrier with an
// explicit Flush; the other relies on FlushReads, where every read
// flushes the shards it touches on demand.
func TestDifferentialAsync(t *testing.T) {
	for _, tc := range []struct {
		name          string
		opt           *shard.Options
		explicitFlush bool
	}{
		{"flush", &shard.Options{Partition: shard.HashPartition, Set: smallLeaf,
			Async: true, MailboxDepth: 4}, true},
		{"flushreads", &shard.Options{Partition: shard.RangePartition, KeyBits: 18, Set: smallLeaf,
			Async: true, MailboxDepth: 2, FlushReads: true}, false},
		{"hotkey-flush", &shard.Options{Partition: shard.HashPartition, Set: smallLeaf,
			Async: true, MailboxDepth: 4,
			HotKeys: true, HotKeyEvery: 64, HotKeyFrac: 0.05, HotKeyMax: 8}, true},
		{"hotkey-flushreads", &shard.Options{Partition: shard.RangePartition, KeyBits: 18, Set: smallLeaf,
			Async: true, MailboxDepth: 2, FlushReads: true,
			HotKeys: true, HotKeyEvery: 64, HotKeyFrac: 0.05, HotKeyMax: 8}, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := shard.New(3, tc.opt)
			t.Cleanup(s.Close)
			m := &model{}
			r := workload.NewRNG(5)
			for round := 0; round < 40; round++ {
				for b := 1 + r.Intn(8); b > 0; b-- {
					keys := workload.Uniform(r, 1+r.Intn(400), 16)
					if r.Intn(3) == 0 {
						s.RemoveBatchAsync(keys, false)
						m.RemoveBatch(keys)
					} else {
						s.InsertBatchAsync(keys, false)
						m.InsertBatch(keys)
					}
				}
				if tc.explicitFlush {
					s.Flush()
				}
				if got, want := s.Len(), len(m.keys); got != want {
					t.Fatalf("round %d: Len = %d, model says %d", round, got, want)
				}
				if round%8 == 7 || round == 39 {
					got := s.Keys()
					if len(got) != len(m.keys) {
						t.Fatalf("round %d: Keys length %d, model says %d", round, len(got), len(m.keys))
					}
					for i := range got {
						if got[i] != m.keys[i] {
							t.Fatalf("round %d: Keys[%d] = %d, model says %d", round, i, got[i], m.keys[i])
						}
					}
					if err := s.Validate(); err != nil {
						t.Fatalf("round %d: %v", round, err)
					}
					auditSnapshot(t, fmt.Sprintf("round %d", round), s, m)
				}
			}
		})
	}
}

// TestDifferentialFromSorted seeds each system from a prebuilt sorted base
// (the bulk-load path) before the random walk.
func TestDifferentialFromSorted(t *testing.T) {
	r := workload.NewRNG(9)
	base := workload.Uniform(r, 30000, 20)
	sort.Slice(base, func(i, j int) bool { return base[i] < base[j] })
	for name, mk := range systems() {
		t.Run(name, func(t *testing.T) {
			m := &model{}
			s := mk()
			closeSut(t, s)
			s.InsertBatch(base, true)
			m.InsertBatch(base)
			for i := 0; i < 300; i++ {
				step(t, r, 20, m, s)
				if err := validate(s); err != nil {
					t.Fatalf("step %d: %v", i, err)
				}
			}
			got, want := s.Keys(), m.keys
			if len(got) != len(want) {
				t.Fatalf("Keys length %d, model says %d", len(got), len(want))
			}
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("Keys[%d] = %d, model says %d", j, got[j], want[j])
				}
			}
			if sp, ok := s.(snapshotter); ok {
				auditSnapshot(t, "final", sp, m)
			}
		})
	}
}

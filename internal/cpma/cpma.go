// Package cpma implements the Compressed Packed Memory Array (paper §5),
// the paper's primary contribution: a PMA whose leaves store an uncompressed
// 8-byte head followed by delta-encoded byte codes, with density bounds
// measured in bytes. It supports the same point operations, range maps, and
// three-phase parallel batch updates as the uncompressed PMA (§4) — the
// batch algorithm is identical, only the leaf representation changes.
//
// Keys are uint64; key 0 is reserved (an all-zero head marks an empty leaf,
// and no delta byte code contains a zero byte).
package cpma

import (
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/bitutil"
	"repro/internal/codec"
	"repro/internal/parallel"
	"repro/internal/pmatree"
)

// Options configures a CPMA; semantics match pma.Options.
type Options struct {
	// GrowthFactor is the growing factor applied on root violations
	// (Appendix C studies 1.1–2.0; the paper's benchmarks use 1.2).
	GrowthFactor float64
	// LeafBytes fixes the leaf size in bytes (power of two, >= 128).
	// 0 selects Θ(log n) scaled automatically.
	LeafBytes int
	// PointThreshold is the batch size below which batch ops degrade to
	// point updates.
	PointThreshold int
	// RebuildFraction r: batches with k >= r*n rebuild the whole array.
	RebuildFraction float64
	// Bounds overrides density thresholds (in bytes). The leaf upper bound
	// is additionally capped so an in-bounds leaf always has room for one
	// more insertion.
	Bounds pmatree.Bounds
}

func (o Options) withDefaults() Options {
	if o.GrowthFactor <= 1 {
		o.GrowthFactor = 1.2
	}
	if o.PointThreshold <= 0 {
		o.PointThreshold = 100
	}
	if o.RebuildFraction <= 0 {
		o.RebuildFraction = 0.1
	}
	if o.Bounds == (pmatree.Bounds{}) {
		o.Bounds = pmatree.DefaultBounds()
	}
	return o
}

const (
	// minLeafBytes keeps enough slack in every leaf that the byte-budget
	// redistribution always succeeds (see scatterElems).
	minLeafBytes = 256
	maxLeafBytes = 2048
	// minCapacity is the smallest byte capacity the CPMA shrinks to.
	minCapacity = 4 * minLeafBytes
	// leafSlack is the headroom the effective leaf density bound reserves:
	// redistribution may re-spend up to MaxGrowth bytes per leaf on chunk
	// boundaries and must still leave MaxGrowth bytes of insertion slack, so
	// a redistributed leaf never immediately re-triggers a rebalance.
	leafSlack = 2*codec.MaxGrowth + codec.MaxLen
)

// CPMA is a compressed batch-parallel Packed Memory Array storing a set of
// nonzero uint64 keys. Single writer; batch operations parallelize
// internally.
type CPMA struct {
	lf         []atomic.Pointer[leafChunk] // chunked per-leaf slab + metadata spine (see cow.go)
	ownChunk   *parallel.Bitset            // spine chunks private to this CPMA
	claimChunk *parallel.Bitset            // unshare claim tickets (see unshareChunk)
	overflow   [][]uint64
	tree       *pmatree.Tree
	leafLog2   uint
	leaves     int
	n          int
	opt        Options

	// Copy-on-write bookkeeping (cow.go). dirty/dirtyAll accumulate the
	// leaves mutated since the last Clone; pubAll/pubDirty hold the window
	// a Clone captured from its parent (DirtySince). cowBytes counts
	// unshare copies since the last Clone (atomic: parallel batch phases
	// unshare concurrently); cloneBytes is the materialization cost of
	// this handle; clones counts Clone calls taken of this CPMA.
	dirty      *parallel.Bitset
	dirtyAll   bool
	pubAll     bool
	pubDirty   *parallel.Bitset
	cowBytes   uint64
	cloneBytes uint64
	clones     uint64
}

// New returns an empty CPMA; opts may be nil for defaults.
func New(opts *Options) *CPMA {
	var o Options
	if opts != nil {
		o = *opts
	}
	c := &CPMA{opt: o.withDefaults()}
	c.rebuildFrom(nil)
	return c
}

// Clone returns a logically deep copy that may be read and mutated
// independently of c: the original may keep mutating (or be mutated) while
// the clone serves reads, and the clone is itself a fully functional CPMA.
// Physically the copy is leaf-granular copy-on-write: only the chunk
// pointer table (8 bytes per 64 leaves) is copied eagerly; spine chunks
// and every leaf's byte slab are shared and unshared lazily on first
// write by either side, so a clone costs O(dirty leaves) — CloneCost
// reports the exact bytes — instead of O(n). The implicit pmatree is
// immutable and shared. Clone also hands the parent's accumulated dirty
// window to the clone (see DirtySince) and starts a fresh window on both
// sides. Must be called at rest and never concurrently with mutations of
// c; see the COW contract in cow.go.
func (c *CPMA) Clone() *CPMA {
	d := *c
	d.lf = make([]atomic.Pointer[leafChunk], len(c.lf))
	for i := range c.lf {
		d.lf[i].Store(c.lf[i].Load())
	}
	// Every chunk (and therefore every slab) is now shared: both sides
	// restart with empty ownership, and stale owned flags inside the
	// chunks are void until a chunk is re-unshared (which clears them).
	nch := len(c.lf)
	c.ownChunk, c.claimChunk = parallel.NewBitset(nch), parallel.NewBitset(nch)
	d.ownChunk, d.claimChunk = parallel.NewBitset(nch), parallel.NewBitset(nch)
	if c.overflow != nil {
		// At rest overflow entries are nil (CheckInvariants enforces it), so
		// this copies only the spine; entries are cloned defensively in case
		// a caller clones mid-batch.
		d.overflow = make([][]uint64, len(c.overflow))
		for i, ov := range c.overflow {
			if ov != nil {
				d.overflow[i] = append([]uint64(nil), ov...)
			}
		}
	}
	// Window handoff: the clone carries what changed since the parent's
	// previous Clone; the parent starts accumulating a fresh window.
	d.pubAll, d.pubDirty = c.dirtyAll, c.dirty
	c.resetDirty()
	d.resetDirty()
	// Eager cost: the pointer table plus the four fresh ownership bitsets
	// (8 bytes per chunk pointer, 2 bits per chunk per side).
	spineOverhead := uint64(nch)*8 + 4*uint64(8*((nch+63)/64))
	d.cloneBytes = atomic.SwapUint64(&c.cowBytes, 0) + spineOverhead
	d.cowBytes = 0
	d.clones = 0
	atomic.AddUint64(&c.clones, 1)
	return &d
}

// FromSorted builds a CPMA from sorted, duplicate-free, nonzero keys.
func FromSorted(keys []uint64, opts *Options) *CPMA {
	c := New(opts)
	if len(keys) > 0 {
		if keys[0] == 0 {
			panic("cpma: key 0 is reserved")
		}
		c.rebuildFrom(keys)
	}
	return c
}

// Len returns the number of keys stored.
func (c *CPMA) Len() int { return c.n }

// Capacity returns the total byte capacity.
func (c *CPMA) Capacity() int { return c.leaves << c.leafLog2 }

// LeafBytes returns the byte capacity of one leaf.
func (c *CPMA) LeafBytes() int { return 1 << c.leafLog2 }

// Leaves returns the number of leaves.
func (c *CPMA) Leaves() int { return c.leaves }

// UsedBytes returns the total encoded payload bytes across leaves.
func (c *CPMA) UsedBytes() int {
	total := 0
	for i := 0; i < c.leaves; i++ {
		total += c.usedOf(i)
	}
	return total
}

// SizeBytes returns the logical memory footprint: data capacity plus
// per-leaf used/ecnt metadata (the quantity the paper's get_size reports,
// and the baseline a non-COW full copy of this CPMA would cost).
func (c *CPMA) SizeBytes() uint64 {
	return uint64(c.Capacity() + 8*c.leaves)
}

// Read-side accessors; mutations must go through leafDataW/setLeafMeta
// (cow.go) instead.
func (c *CPMA) leafData(leaf int) []byte { return c.leafSt(leaf).data }
func (c *CPMA) head(leaf int) uint64     { return codec.Head(c.leafSt(leaf).data) }
func (c *CPMA) usedOf(leaf int) int      { return int(c.leafSt(leaf).used) }
func (c *CPMA) ecntOf(leaf int) int      { return int(c.leafSt(leaf).ecnt) }

// effectiveBounds caps the upper density bounds so that any in-bounds region
// can always be redistributed into chunks of at most leafBytes - MaxGrowth
// bytes — which both guarantees the greedy byte-budget scatter succeeds and
// leaves every redistributed leaf enough slack for the next point insert.
func effectiveBounds(b pmatree.Bounds, leafBytes int) pmatree.Bounds {
	cap := float64(leafBytes-leafSlack) / float64(leafBytes)
	if b.UpperLeaf > cap {
		b.UpperLeaf = cap
	}
	if b.UpperRoot > b.UpperLeaf {
		b.UpperRoot = b.UpperLeaf
	}
	return b
}

// autoLeafBytes picks a power-of-two leaf size of Θ(log n) scaled bytes.
func autoLeafBytes(totalBytes int) int {
	lb := int(bitutil.CeilPow2(uint64(8 * bitutil.Log2Ceil(uint64(totalBytes)+1))))
	if lb < minLeafBytes {
		lb = minLeafBytes
	}
	if lb > maxLeafBytes {
		lb = maxLeafBytes
	}
	return lb
}

// deltaPrefix builds the prefix sums of per-element delta code sizes:
// P[i] = sum of codec.Len(elems[j]-elems[j-1]) for j in [1, i]. A run
// [s, e) then encodes to 8 + P[e-1] - P[s] bytes.
func deltaPrefix(elems []uint64) []int {
	p := make([]int, len(elems))
	if len(elems) == 0 {
		return p
	}
	// Parallel by blocks: sizes are independent, only the sum is sequential.
	grain := 64 << 10
	if len(elems) <= grain || parallel.Serial() {
		for i := 1; i < len(elems); i++ {
			p[i] = p[i-1] + codec.Len(elems[i]-elems[i-1])
		}
		return p
	}
	parallel.ForRange(len(elems), grain, func(lo, hi int) {
		if lo == 0 {
			lo = 1
		}
		for i := lo; i < hi; i++ {
			p[i] = codec.Len(elems[i] - elems[i-1])
		}
	})
	for i := 1; i < len(elems); i++ {
		p[i] += p[i-1]
	}
	return p
}

// capacityFor sizes the array for the given elements by applying the
// growing factor until the encoded payload fits under the root bound.
func (c *CPMA) capacityFor(elems []uint64, prefix []int) int {
	payload := 0
	if len(elems) > 0 {
		payload = codec.HeadBytes + prefix[len(elems)-1]
	}
	cap := minCapacity
	for {
		lb := c.leafBytesFor(cap)
		leaves := bitutil.Max(1, cap/lb)
		bounds := effectiveBounds(c.opt.Bounds, lb)
		// Every extra leaf re-spends a head; budget for the worst case.
		need := payload + (leaves-1)*codec.HeadBytes
		if float64(need) <= bounds.UpperRoot*float64(leaves*lb) {
			return leaves * lb
		}
		next := int(float64(cap) * c.opt.GrowthFactor)
		if next <= cap {
			next = cap + 1
		}
		cap = next
	}
}

func (c *CPMA) leafBytesFor(capacity int) int {
	lb := c.opt.LeafBytes
	if lb <= 0 {
		lb = autoLeafBytes(capacity)
	}
	lb = int(bitutil.CeilPow2(uint64(lb)))
	if lb < minLeafBytes {
		lb = minLeafBytes
	}
	return lb
}

// rebuildFrom replaces the structure with a fresh array holding the sorted,
// duplicate-free keys.
func (c *CPMA) rebuildFrom(all []uint64) {
	prefix := deltaPrefix(all)
	capacity := c.capacityFor(all, prefix)
	lb := c.leafBytesFor(capacity)
	leaves := bitutil.Max(1, capacity/lb)
	c.leafLog2 = uint(bitutil.Log2Ceil(uint64(lb)))
	c.leaves = leaves
	c.lf = newLeafSpine(leaves, lb)
	c.ownAllChunks()
	c.overflow = nil
	c.tree = pmatree.New(leaves, lb, effectiveBounds(c.opt.Bounds, lb))
	c.n = len(all)
	// A rebuild replaces every leaf: the whole geometry is dirty relative
	// to any prior Clone, and no prior slab is shared anymore.
	c.dirty = parallel.NewBitset(leaves)
	c.dirtyAll = true
	if err := c.scatterElems(all, prefix, 0, leaves); err != nil {
		// capacityFor guarantees fit; reaching here is a bug.
		panic(err)
	}
}

// scatterElems splits a sorted run across leaves [loLeaf, hiLeaf) so every
// leaf stays within its byte capacity, encoding each chunk in parallel. The
// split walks the leaves greedily, giving each one min(capacity, fair share
// + one max code) bytes — which both balances the leaves and guarantees
// that the whole run is placed whenever it fits (see DESIGN.md).
func (c *CPMA) scatterElems(elems []uint64, prefix []int, loLeaf, hiLeaf int) error {
	nl := hiLeaf - loLeaf
	if len(elems) == 0 {
		forLeaves(nl, func(i int) { c.clearLeaf(loLeaf + i) })
		return nil
	}
	leafCap := c.LeafBytes()
	starts := make([]int, nl+1)
	start := 0
	n := len(elems)
	for t := 0; t < nl; t++ {
		if start >= n {
			starts[t+1] = n
			continue
		}
		remLeaves := nl - t
		remBytes := remLeaves*codec.HeadBytes + prefix[n-1] - prefix[start]
		fair := bitutil.CeilDiv(remBytes, remLeaves)
		budget := fair + codec.MaxLen + codec.HeadBytes
		// Always keep MaxGrowth bytes free so the next point insert into the
		// leaf cannot exceed its capacity.
		if max := leafCap - codec.MaxGrowth; budget > max {
			budget = max
		}
		// Largest e with 8 + P[e-1] - P[start] <= budget; e >= start+1.
		k := sort.Search(n-(start+1), func(k int) bool {
			return codec.HeadBytes+prefix[start+1+k]-prefix[start] > budget
		})
		starts[t+1] = start + 1 + k
		start = starts[t+1]
	}
	if start < n {
		return fmt.Errorf("cpma: scatter overflow (%d of %d elements placed over %d leaves)", start, n, nl)
	}
	forLeaves(nl, func(i int) {
		leaf := loLeaf + i
		s, e := starts[i], starts[i+1]
		if s == e {
			c.clearLeaf(leaf)
			return
		}
		ld := c.leafDataW(leaf)
		w := codec.EncodeRun(ld, elems[s:e])
		clearBytes(ld[w:])
		c.setLeafMeta(leaf, int32(w), int32(e-s))
		if c.overflow != nil {
			c.overflow[leaf] = nil
		}
	})
	return nil
}

func (c *CPMA) clearLeaf(leaf int) {
	hasOverflow := c.overflow != nil && c.overflow[leaf] != nil
	if c.usedOf(leaf) == 0 && !hasOverflow {
		// Already empty: nothing to clear, and redistribution over empty
		// leaves must not dirty (or unshare) them.
		return
	}
	ld := c.leafDataW(leaf)
	// used transiently exceeds the slab length on overflow leaves; the slab
	// itself never holds more than its capacity of stale bytes.
	u := c.usedOf(leaf)
	if u > len(ld) {
		u = len(ld)
	}
	clearBytes(ld[:u])
	c.setLeafMeta(leaf, 0, 0)
	if hasOverflow {
		c.overflow[leaf] = nil
	}
}

func clearBytes(b []byte) {
	for i := range b {
		b[i] = 0
	}
}

func forLeaves(n int, f func(i int)) {
	parallel.For(n, 32, f)
}

// gatherElems decodes leaves [loLeaf, hiLeaf) — draining overflow buffers —
// into a sorted slice, in parallel via element-count prefix sums.
func (c *CPMA) gatherElems(loLeaf, hiLeaf int) []uint64 {
	nl := hiLeaf - loLeaf
	offsets := make([]int, nl+1)
	for i := 0; i < nl; i++ {
		offsets[i+1] = offsets[i] + c.ecntOf(loLeaf+i)
	}
	buf := make([]uint64, offsets[nl])
	forLeaves(nl, func(i int) {
		leaf := loLeaf + i
		lo, hi := offsets[i], offsets[i+1]
		if c.overflow != nil && c.overflow[leaf] != nil {
			copy(buf[lo:hi], c.overflow[leaf])
			return
		}
		// Append in place: capacity is exactly the leaf's element count, so
		// DecodeRun fills buf[lo:hi] without reallocating.
		codec.DecodeRun(buf[lo:lo:hi], c.leafData(leaf), c.usedOf(leaf))
	})
	return buf
}

// redistribute evens out a planned region by byte budget.
func (c *CPMA) redistribute(r pmatree.Region) error {
	elems := c.gatherElems(r.LoLeaf, r.HiLeaf)
	return c.scatterElems(elems, deltaPrefix(elems), r.LoLeaf, r.HiLeaf)
}

// applyPlan executes a rebalance plan; a failed regional scatter (possible
// only in pathological byte-skew cases) escalates to a full rebuild.
func (c *CPMA) applyPlan(plan pmatree.Plan) {
	if plan.Grow || plan.Shrink {
		c.rebuildFrom(c.gatherElems(0, c.leaves))
		return
	}
	failed := false
	parallel.For(len(plan.Redistribute), 1, func(i int) {
		if err := c.redistribute(plan.Redistribute[i]); err != nil {
			failed = true
		}
	})
	if failed {
		c.rebuildFrom(c.gatherElems(0, c.leaves))
	}
}

// CheckInvariants verifies structural invariants; tests call it after every
// mutation batch.
func (c *CPMA) CheckInvariants() error {
	if chunksFor(c.leaves) != len(c.lf) {
		return fmt.Errorf("cpma: geometry mismatch (%d leaves, %d spine chunks)", c.leaves, len(c.lf))
	}
	if c.dirty == nil || c.dirty.Len() != c.leaves {
		return fmt.Errorf("cpma: dirty bitmap missized for %d leaves", c.leaves)
	}
	total := 0
	var prev uint64
	for leaf := 0; leaf < c.leaves; leaf++ {
		u := c.usedOf(leaf)
		if u < 0 || u > c.LeafBytes() {
			return fmt.Errorf("cpma: leaf %d used %d out of range", leaf, u)
		}
		if c.overflow != nil && c.overflow[leaf] != nil {
			return fmt.Errorf("cpma: leaf %d has undrained overflow", leaf)
		}
		ld := c.leafData(leaf)
		if len(ld) != c.LeafBytes() {
			return fmt.Errorf("cpma: leaf %d slab is %d bytes, want %d", leaf, len(ld), c.LeafBytes())
		}
		if u == 0 {
			if c.ecntOf(leaf) != 0 {
				return fmt.Errorf("cpma: empty leaf %d has ecnt %d", leaf, c.ecntOf(leaf))
			}
			for i, b := range ld {
				if b != 0 {
					return fmt.Errorf("cpma: empty leaf %d has nonzero byte at %d", leaf, i)
				}
			}
			continue
		}
		if u < codec.HeadBytes {
			return fmt.Errorf("cpma: leaf %d used %d < head size", leaf, u)
		}
		elems := codec.DecodeRun(nil, ld, u)
		if len(elems) != c.ecntOf(leaf) {
			return fmt.Errorf("cpma: leaf %d decodes to %d elements, ecnt says %d", leaf, len(elems), c.ecntOf(leaf))
		}
		if got := codec.SizeOfRun(elems); got != u {
			return fmt.Errorf("cpma: leaf %d used %d but re-encode is %d", leaf, u, got)
		}
		for i, v := range elems {
			if v == 0 {
				return fmt.Errorf("cpma: zero key in leaf %d", leaf)
			}
			if v <= prev {
				return fmt.Errorf("cpma: order violation in leaf %d pos %d (%d <= %d)", leaf, i, v, prev)
			}
			prev = v
		}
		for i := u; i < c.LeafBytes(); i++ {
			if ld[i] != 0 {
				return fmt.Errorf("cpma: leaf %d byte %d nonzero past used", leaf, i)
			}
		}
		total += len(elems)
	}
	if total != c.n {
		return fmt.Errorf("cpma: n=%d but leaves hold %d", c.n, total)
	}
	return nil
}

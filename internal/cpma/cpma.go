// Package cpma implements the Compressed Packed Memory Array (paper §5),
// the paper's primary contribution: a PMA whose leaves store an uncompressed
// 8-byte head followed by delta-encoded byte codes, with density bounds
// measured in bytes. It supports the same point operations, range maps, and
// three-phase parallel batch updates as the uncompressed PMA (§4) — the
// batch algorithm is identical, only the leaf representation changes.
//
// Keys are uint64; key 0 is reserved (an all-zero head marks an empty leaf,
// and no delta byte code contains a zero byte).
package cpma

import (
	"fmt"
	"sort"

	"repro/internal/bitutil"
	"repro/internal/codec"
	"repro/internal/parallel"
	"repro/internal/pmatree"
)

// Options configures a CPMA; semantics match pma.Options.
type Options struct {
	// GrowthFactor is the growing factor applied on root violations
	// (Appendix C studies 1.1–2.0; the paper's benchmarks use 1.2).
	GrowthFactor float64
	// LeafBytes fixes the leaf size in bytes (power of two, >= 128).
	// 0 selects Θ(log n) scaled automatically.
	LeafBytes int
	// PointThreshold is the batch size below which batch ops degrade to
	// point updates.
	PointThreshold int
	// RebuildFraction r: batches with k >= r*n rebuild the whole array.
	RebuildFraction float64
	// Bounds overrides density thresholds (in bytes). The leaf upper bound
	// is additionally capped so an in-bounds leaf always has room for one
	// more insertion.
	Bounds pmatree.Bounds
}

func (o Options) withDefaults() Options {
	if o.GrowthFactor <= 1 {
		o.GrowthFactor = 1.2
	}
	if o.PointThreshold <= 0 {
		o.PointThreshold = 100
	}
	if o.RebuildFraction <= 0 {
		o.RebuildFraction = 0.1
	}
	if o.Bounds == (pmatree.Bounds{}) {
		o.Bounds = pmatree.DefaultBounds()
	}
	return o
}

const (
	// minLeafBytes keeps enough slack in every leaf that the byte-budget
	// redistribution always succeeds (see scatterElems).
	minLeafBytes = 256
	maxLeafBytes = 2048
	// minCapacity is the smallest byte capacity the CPMA shrinks to.
	minCapacity = 4 * minLeafBytes
	// leafSlack is the headroom the effective leaf density bound reserves:
	// redistribution may re-spend up to MaxGrowth bytes per leaf on chunk
	// boundaries and must still leave MaxGrowth bytes of insertion slack, so
	// a redistributed leaf never immediately re-triggers a rebalance.
	leafSlack = 2*codec.MaxGrowth + codec.MaxLen
)

// CPMA is a compressed batch-parallel Packed Memory Array storing a set of
// nonzero uint64 keys. Single writer; batch operations parallelize
// internally.
type CPMA struct {
	data     []byte  // leaves << leafLog2 bytes, each leaf packed left
	used     []int32 // bytes used per leaf (0 = empty leaf)
	ecnt     []int32 // elements per leaf
	overflow [][]uint64
	tree     *pmatree.Tree
	leafLog2 uint
	leaves   int
	n        int
	opt      Options
}

// New returns an empty CPMA; opts may be nil for defaults.
func New(opts *Options) *CPMA {
	var o Options
	if opts != nil {
		o = *opts
	}
	c := &CPMA{opt: o.withDefaults()}
	c.rebuildFrom(nil)
	return c
}

// Clone returns a deep copy that shares no mutable state with c: the
// original may keep mutating (or be mutated) while the clone serves reads,
// and the clone is itself a fully functional CPMA that can be mutated and
// validated independently. The cost is a memcpy of the data array plus the
// per-leaf metadata — no re-encoding — which is what makes copy-on-publish
// snapshots cheap: the pointer-free contiguous layout (the paper's central
// design choice) means the whole structure is three flat slices. The
// implicit pmatree is immutable and shared.
func (c *CPMA) Clone() *CPMA {
	d := *c
	d.data = append([]byte(nil), c.data...)
	d.used = append([]int32(nil), c.used...)
	d.ecnt = append([]int32(nil), c.ecnt...)
	if c.overflow != nil {
		// At rest overflow entries are nil (CheckInvariants enforces it), so
		// this copies only the spine; entries are cloned defensively in case
		// a caller clones mid-batch.
		d.overflow = make([][]uint64, len(c.overflow))
		for i, ov := range c.overflow {
			if ov != nil {
				d.overflow[i] = append([]uint64(nil), ov...)
			}
		}
	}
	return &d
}

// FromSorted builds a CPMA from sorted, duplicate-free, nonzero keys.
func FromSorted(keys []uint64, opts *Options) *CPMA {
	c := New(opts)
	if len(keys) > 0 {
		if keys[0] == 0 {
			panic("cpma: key 0 is reserved")
		}
		c.rebuildFrom(keys)
	}
	return c
}

// Len returns the number of keys stored.
func (c *CPMA) Len() int { return c.n }

// Capacity returns the total byte capacity.
func (c *CPMA) Capacity() int { return len(c.data) }

// LeafBytes returns the byte capacity of one leaf.
func (c *CPMA) LeafBytes() int { return 1 << c.leafLog2 }

// Leaves returns the number of leaves.
func (c *CPMA) Leaves() int { return c.leaves }

// UsedBytes returns the total encoded payload bytes across leaves.
func (c *CPMA) UsedBytes() int {
	total := 0
	for _, u := range c.used {
		total += int(u)
	}
	return total
}

// SizeBytes returns the memory footprint: data array plus per-leaf metadata
// (the quantity the paper's get_size reports).
func (c *CPMA) SizeBytes() uint64 {
	return uint64(len(c.data) + 4*len(c.used) + 4*len(c.ecnt))
}

func (c *CPMA) base(leaf int) int { return leaf << c.leafLog2 }
func (c *CPMA) leafData(leaf int) []byte {
	b := c.base(leaf)
	return c.data[b : b+(1<<c.leafLog2)]
}
func (c *CPMA) head(leaf int) uint64 { return codec.Head(c.data[leaf<<c.leafLog2:]) }
func (c *CPMA) usedOf(leaf int) int  { return int(c.used[leaf]) }

// effectiveBounds caps the upper density bounds so that any in-bounds region
// can always be redistributed into chunks of at most leafBytes - MaxGrowth
// bytes — which both guarantees the greedy byte-budget scatter succeeds and
// leaves every redistributed leaf enough slack for the next point insert.
func effectiveBounds(b pmatree.Bounds, leafBytes int) pmatree.Bounds {
	cap := float64(leafBytes-leafSlack) / float64(leafBytes)
	if b.UpperLeaf > cap {
		b.UpperLeaf = cap
	}
	if b.UpperRoot > b.UpperLeaf {
		b.UpperRoot = b.UpperLeaf
	}
	return b
}

// autoLeafBytes picks a power-of-two leaf size of Θ(log n) scaled bytes.
func autoLeafBytes(totalBytes int) int {
	lb := int(bitutil.CeilPow2(uint64(8 * bitutil.Log2Ceil(uint64(totalBytes)+1))))
	if lb < minLeafBytes {
		lb = minLeafBytes
	}
	if lb > maxLeafBytes {
		lb = maxLeafBytes
	}
	return lb
}

// deltaPrefix builds the prefix sums of per-element delta code sizes:
// P[i] = sum of codec.Len(elems[j]-elems[j-1]) for j in [1, i]. A run
// [s, e) then encodes to 8 + P[e-1] - P[s] bytes.
func deltaPrefix(elems []uint64) []int {
	p := make([]int, len(elems))
	if len(elems) == 0 {
		return p
	}
	// Parallel by blocks: sizes are independent, only the sum is sequential.
	grain := 64 << 10
	if len(elems) <= grain || parallel.Serial() {
		for i := 1; i < len(elems); i++ {
			p[i] = p[i-1] + codec.Len(elems[i]-elems[i-1])
		}
		return p
	}
	parallel.ForRange(len(elems), grain, func(lo, hi int) {
		if lo == 0 {
			lo = 1
		}
		for i := lo; i < hi; i++ {
			p[i] = codec.Len(elems[i] - elems[i-1])
		}
	})
	for i := 1; i < len(elems); i++ {
		p[i] += p[i-1]
	}
	return p
}

// capacityFor sizes the array for the given elements by applying the
// growing factor until the encoded payload fits under the root bound.
func (c *CPMA) capacityFor(elems []uint64, prefix []int) int {
	payload := 0
	if len(elems) > 0 {
		payload = codec.HeadBytes + prefix[len(elems)-1]
	}
	cap := minCapacity
	for {
		lb := c.leafBytesFor(cap)
		leaves := bitutil.Max(1, cap/lb)
		bounds := effectiveBounds(c.opt.Bounds, lb)
		// Every extra leaf re-spends a head; budget for the worst case.
		need := payload + (leaves-1)*codec.HeadBytes
		if float64(need) <= bounds.UpperRoot*float64(leaves*lb) {
			return leaves * lb
		}
		next := int(float64(cap) * c.opt.GrowthFactor)
		if next <= cap {
			next = cap + 1
		}
		cap = next
	}
}

func (c *CPMA) leafBytesFor(capacity int) int {
	lb := c.opt.LeafBytes
	if lb <= 0 {
		lb = autoLeafBytes(capacity)
	}
	lb = int(bitutil.CeilPow2(uint64(lb)))
	if lb < minLeafBytes {
		lb = minLeafBytes
	}
	return lb
}

// rebuildFrom replaces the structure with a fresh array holding the sorted,
// duplicate-free keys.
func (c *CPMA) rebuildFrom(all []uint64) {
	prefix := deltaPrefix(all)
	capacity := c.capacityFor(all, prefix)
	lb := c.leafBytesFor(capacity)
	leaves := bitutil.Max(1, capacity/lb)
	c.leafLog2 = uint(bitutil.Log2Ceil(uint64(lb)))
	c.leaves = leaves
	c.data = make([]byte, leaves<<c.leafLog2)
	c.used = make([]int32, leaves)
	c.ecnt = make([]int32, leaves)
	c.overflow = nil
	c.tree = pmatree.New(leaves, lb, effectiveBounds(c.opt.Bounds, lb))
	c.n = len(all)
	if err := c.scatterElems(all, prefix, 0, leaves); err != nil {
		// capacityFor guarantees fit; reaching here is a bug.
		panic(err)
	}
}

// scatterElems splits a sorted run across leaves [loLeaf, hiLeaf) so every
// leaf stays within its byte capacity, encoding each chunk in parallel. The
// split walks the leaves greedily, giving each one min(capacity, fair share
// + one max code) bytes — which both balances the leaves and guarantees
// that the whole run is placed whenever it fits (see DESIGN.md).
func (c *CPMA) scatterElems(elems []uint64, prefix []int, loLeaf, hiLeaf int) error {
	nl := hiLeaf - loLeaf
	if len(elems) == 0 {
		forLeaves(nl, func(i int) { c.clearLeaf(loLeaf + i) })
		return nil
	}
	leafCap := c.LeafBytes()
	starts := make([]int, nl+1)
	start := 0
	n := len(elems)
	for t := 0; t < nl; t++ {
		if start >= n {
			starts[t+1] = n
			continue
		}
		remLeaves := nl - t
		remBytes := remLeaves*codec.HeadBytes + prefix[n-1] - prefix[start]
		fair := bitutil.CeilDiv(remBytes, remLeaves)
		budget := fair + codec.MaxLen + codec.HeadBytes
		// Always keep MaxGrowth bytes free so the next point insert into the
		// leaf cannot exceed its capacity.
		if max := leafCap - codec.MaxGrowth; budget > max {
			budget = max
		}
		// Largest e with 8 + P[e-1] - P[start] <= budget; e >= start+1.
		k := sort.Search(n-(start+1), func(k int) bool {
			return codec.HeadBytes+prefix[start+1+k]-prefix[start] > budget
		})
		starts[t+1] = start + 1 + k
		start = starts[t+1]
	}
	if start < n {
		return fmt.Errorf("cpma: scatter overflow (%d of %d elements placed over %d leaves)", start, n, nl)
	}
	forLeaves(nl, func(i int) {
		leaf := loLeaf + i
		s, e := starts[i], starts[i+1]
		if s == e {
			c.clearLeaf(leaf)
			return
		}
		ld := c.leafData(leaf)
		w := codec.EncodeRun(ld, elems[s:e])
		clearBytes(ld[w:])
		c.used[leaf] = int32(w)
		c.ecnt[leaf] = int32(e - s)
		if c.overflow != nil {
			c.overflow[leaf] = nil
		}
	})
	return nil
}

func (c *CPMA) clearLeaf(leaf int) {
	ld := c.leafData(leaf)
	clearBytes(ld[:c.usedOf(leaf)])
	c.used[leaf] = 0
	c.ecnt[leaf] = 0
	if c.overflow != nil {
		c.overflow[leaf] = nil
	}
}

func clearBytes(b []byte) {
	for i := range b {
		b[i] = 0
	}
}

func forLeaves(n int, f func(i int)) {
	parallel.For(n, 32, f)
}

// gatherElems decodes leaves [loLeaf, hiLeaf) — draining overflow buffers —
// into a sorted slice, in parallel via element-count prefix sums.
func (c *CPMA) gatherElems(loLeaf, hiLeaf int) []uint64 {
	nl := hiLeaf - loLeaf
	offsets := make([]int, nl+1)
	for i := 0; i < nl; i++ {
		offsets[i+1] = offsets[i] + int(c.ecnt[loLeaf+i])
	}
	buf := make([]uint64, offsets[nl])
	forLeaves(nl, func(i int) {
		leaf := loLeaf + i
		lo, hi := offsets[i], offsets[i+1]
		if c.overflow != nil && c.overflow[leaf] != nil {
			copy(buf[lo:hi], c.overflow[leaf])
			return
		}
		// Append in place: capacity is exactly the leaf's element count, so
		// DecodeRun fills buf[lo:hi] without reallocating.
		codec.DecodeRun(buf[lo:lo:hi], c.leafData(leaf), c.usedOf(leaf))
	})
	return buf
}

// redistribute evens out a planned region by byte budget.
func (c *CPMA) redistribute(r pmatree.Region) error {
	elems := c.gatherElems(r.LoLeaf, r.HiLeaf)
	return c.scatterElems(elems, deltaPrefix(elems), r.LoLeaf, r.HiLeaf)
}

// applyPlan executes a rebalance plan; a failed regional scatter (possible
// only in pathological byte-skew cases) escalates to a full rebuild.
func (c *CPMA) applyPlan(plan pmatree.Plan) {
	if plan.Grow || plan.Shrink {
		c.rebuildFrom(c.gatherElems(0, c.leaves))
		return
	}
	failed := false
	parallel.For(len(plan.Redistribute), 1, func(i int) {
		if err := c.redistribute(plan.Redistribute[i]); err != nil {
			failed = true
		}
	})
	if failed {
		c.rebuildFrom(c.gatherElems(0, c.leaves))
	}
}

// CheckInvariants verifies structural invariants; tests call it after every
// mutation batch.
func (c *CPMA) CheckInvariants() error {
	if c.leaves != len(c.used) || c.leaves != len(c.ecnt) || c.leaves<<c.leafLog2 != len(c.data) {
		return fmt.Errorf("cpma: geometry mismatch")
	}
	total := 0
	var prev uint64
	for leaf := 0; leaf < c.leaves; leaf++ {
		u := c.usedOf(leaf)
		if u < 0 || u > c.LeafBytes() {
			return fmt.Errorf("cpma: leaf %d used %d out of range", leaf, u)
		}
		if c.overflow != nil && c.overflow[leaf] != nil {
			return fmt.Errorf("cpma: leaf %d has undrained overflow", leaf)
		}
		ld := c.leafData(leaf)
		if u == 0 {
			if int(c.ecnt[leaf]) != 0 {
				return fmt.Errorf("cpma: empty leaf %d has ecnt %d", leaf, c.ecnt[leaf])
			}
			for i, b := range ld {
				if b != 0 {
					return fmt.Errorf("cpma: empty leaf %d has nonzero byte at %d", leaf, i)
				}
			}
			continue
		}
		if u < codec.HeadBytes {
			return fmt.Errorf("cpma: leaf %d used %d < head size", leaf, u)
		}
		elems := codec.DecodeRun(nil, ld, u)
		if len(elems) != int(c.ecnt[leaf]) {
			return fmt.Errorf("cpma: leaf %d decodes to %d elements, ecnt says %d", leaf, len(elems), c.ecnt[leaf])
		}
		if got := codec.SizeOfRun(elems); got != u {
			return fmt.Errorf("cpma: leaf %d used %d but re-encode is %d", leaf, u, got)
		}
		for i, v := range elems {
			if v == 0 {
				return fmt.Errorf("cpma: zero key in leaf %d", leaf)
			}
			if v <= prev {
				return fmt.Errorf("cpma: order violation in leaf %d pos %d (%d <= %d)", leaf, i, v, prev)
			}
			prev = v
		}
		for i := u; i < c.LeafBytes(); i++ {
			if ld[i] != 0 {
				return fmt.Errorf("cpma: leaf %d byte %d nonzero past used", leaf, i)
			}
		}
		total += len(elems)
	}
	if total != c.n {
		return fmt.Errorf("cpma: n=%d but leaves hold %d", c.n, total)
	}
	return nil
}

package cpma

// Leaf-granular copy-on-write. Clone used to memcpy the whole data array,
// making every published snapshot cost O(n) even when a drain touched a
// handful of leaves — the scalability cliff ROADMAP calls out. The fix
// keeps the paper's pointer-free layout but slices it per leaf: each leaf
// owns a leafState holding its byte slab and used/ecnt metadata, and the
// first mutation of a shared leaf unshares it — copies the one leaf — so
// total copy cost is O(dirty leaves), not O(n).
//
// The leafState spine itself is also shared, at chunk granularity: the
// spine is an array of pointers to fixed-size chunks of chunkLeaves
// leafStates, and Clone copies only that pointer table (8 bytes per 64
// leaves) plus fresh ownership bitsets. A per-CPMA ownChunk bitset says
// which chunks hold spine metadata private to this CPMA; the first
// metadata write into a shared chunk copies the one chunk. Without this
// second level, the eager spine memcpy (≈40 bytes/leaf) put an O(n) floor
// under every publication — about 1/7 of a full copy at the minimum leaf
// size, which is exactly the cliff the leaf-granular design exists to
// remove.
//
// COW contract:
//
//   - Clone may only be called at rest (no batch in flight) and never
//     concurrently with any mutation of the receiver; the shard layer
//     guarantees this by publishing from the single writer goroutine (or
//     under the cell's publish mutex in sync mode).
//   - After Clone, BOTH sides may be mutated independently; whichever side
//     writes a shared leaf first pays the one-leaf copy (plus the one-chunk
//     spine copy if the chunk is still shared). Within one CPMA, the batch
//     recursion partitions leaves disjointly across goroutines (see
//     mergeRange), but two goroutines' leaves can share a chunk, so chunk
//     unsharing is arbitrated with a lock-free claim bitset: exactly one
//     claimant copies and installs the chunk, the rest spin until the
//     ownership bit publishes it.
//   - A leaf's owned flag is meaningful only inside a chunk this CPMA owns
//     (ownChunk bit set): unsharing a chunk clears every owned flag in the
//     copy, because after a Clone all slabs are shared regardless of what
//     the flags said in the previous window.
//   - Shared slabs are never written in place: leafDataW is the single
//     gateway to a writable slab and unshares (chunk, then slab) first.
//     Read accessors (leafData et al.) must not be used to mutate.
//
// Dirty tracking rides on the same write gateway. c.dirty records the
// leaves mutated since the last Clone (c.dirtyAll marks whole-geometry
// rebuilds). Clone hands the accumulated window to the clone — retrievable
// via DirtySince — and resets the parent's window, so the shard's journal
// can checkpoint exactly the leaves that changed between two published
// handles (see internal/persist's delta checkpoints).

import (
	"runtime"
	"sync/atomic"

	"repro/internal/parallel"
)

// leafState is one leaf's storage: its byte slab plus the used/ecnt
// metadata that used to live in parallel flat slices. owned reports
// whether data is exclusive to this CPMA — but only inside a chunk whose
// ownChunk bit this CPMA holds; in a shared chunk the flags are void and
// every slab must be treated as shared.
type leafState struct {
	data  []byte
	used  int32 // encoded bytes (0 = empty leaf); transiently > cap during overflow
	ecnt  int32 // elements in the leaf (or its overflow buffer)
	owned bool
}

// leafSpineBytes approximates the in-memory cost of one leafState (slice
// header 24 + 2×int32 + bool, padded). Unsharing a chunk charges it per
// leaf of the chunk copy.
const leafSpineBytes = 40

// Spine chunking: chunkLeaves leafStates per chunk, so Clone's eager copy
// is one pointer per chunk instead of one leafState per leaf.
const (
	chunkLog    = 6
	chunkLeaves = 1 << chunkLog
	chunkMask   = chunkLeaves - 1
)

type leafChunk [chunkLeaves]leafState

func chunksFor(leaves int) int { return (leaves + chunkMask) >> chunkLog }

// newLeafSpine allocates a spine of leaves equally sized slabs carved from
// one contiguous backing array, preserving the paper's cache-friendly flat
// layout for freshly rebuilt arrays. All leaves start owned; the caller
// (rebuildFrom / ReadFrom) must install matching all-owned chunk bitsets
// via ownAllChunks.
func newLeafSpine(leaves, leafBytes int) []atomic.Pointer[leafChunk] {
	return leafSpineOver(make([]byte, leaves*leafBytes), leaves, leafBytes)
}

// leafSpineOver builds the chunked spine over an existing flat data array
// (leaf i owning backing[i*leafBytes : (i+1)*leafBytes]).
func leafSpineOver(backing []byte, leaves, leafBytes int) []atomic.Pointer[leafChunk] {
	lf := make([]atomic.Pointer[leafChunk], chunksFor(leaves))
	for ch := range lf {
		nc := new(leafChunk)
		for j := 0; j < chunkLeaves; j++ {
			i := ch<<chunkLog + j
			if i >= leaves {
				break
			}
			off := i * leafBytes
			nc[j].data = backing[off : off+leafBytes : off+leafBytes]
			nc[j].owned = true
		}
		lf[ch].Store(nc)
	}
	return lf
}

// ownAllChunks resets the receiver's chunk ownership to fully private —
// the state after a rebuild or a slab load, when no other CPMA can
// reference any chunk.
func (c *CPMA) ownAllChunks() {
	nch := len(c.lf)
	c.ownChunk = parallel.NewBitset(nch)
	c.claimChunk = parallel.NewBitset(nch)
	for ch := 0; ch < nch; ch++ {
		c.ownChunk.Set(ch)
	}
}

// leafSt returns the leaf's state for reading only.
func (c *CPMA) leafSt(leaf int) *leafState {
	return &c.lf[leaf>>chunkLog].Load()[leaf&chunkMask]
}

// leafStW returns the leaf's state for writing, unsharing its spine chunk
// first if a clone may still reference it.
func (c *CPMA) leafStW(leaf int) *leafState {
	ch := leaf >> chunkLog
	if !c.ownChunk.Get(ch) {
		c.unshareChunk(ch)
	}
	return &c.lf[ch].Load()[leaf&chunkMask]
}

// unshareChunk gives this CPMA a private copy of chunk ch. Concurrent
// callers (parallel batch goroutines whose disjoint leaves share a chunk)
// are arbitrated by claimChunk: the goroutine that wins the claim copies
// the chunk, installs it, and publishes ownership; losers spin on the
// ownership bit, whose atomic set/get orders the pointer store before
// their reload.
func (c *CPMA) unshareChunk(ch int) {
	for !c.ownChunk.Get(ch) {
		if !c.claimChunk.TrySet(ch) {
			runtime.Gosched()
			continue
		}
		nc := *c.lf[ch].Load()
		// The copy's slabs are shared with whoever else references the old
		// chunk; stale flags from a pre-Clone window must not claim them.
		for j := range nc {
			nc[j].owned = false
		}
		c.lf[ch].Store(&nc)
		atomic.AddUint64(&c.cowBytes, chunkLeaves*leafSpineBytes)
		c.ownChunk.Set(ch)
	}
}

// leafDataW returns the leaf's byte slab for writing, unsharing it first if
// a clone may still reference the current array. Callers that bail out
// without writing leave an unshared-but-unchanged leaf behind, which is
// correctness-neutral (unshared ≠ dirty; the contents are identical).
func (c *CPMA) leafDataW(leaf int) []byte {
	st := c.leafStW(leaf)
	if !st.owned {
		st.data = append(make([]byte, 0, len(st.data)), st.data...)
		st.owned = true
		// Parallel batch goroutines unshare distinct leaves concurrently;
		// only the counter needs synchronizing.
		atomic.AddUint64(&c.cowBytes, uint64(len(st.data)))
	}
	return st.data
}

// setLeafMeta records the leaf's new used/ecnt and marks it dirty. Every
// leaf mutation funnels through here (or rebuildFrom), which is what makes
// the dirty window a sound superset of the bytes that changed.
func (c *CPMA) setLeafMeta(leaf int, used, ecnt int32) {
	st := c.leafStW(leaf)
	st.used = used
	st.ecnt = ecnt
	c.dirty.Set(leaf)
}

// resetDirty clears the mutation window (fresh bitset, dirtyAll off).
func (c *CPMA) resetDirty() {
	c.dirty = parallel.NewBitset(c.leaves)
	c.dirtyAll = false
}

// DirtySince describes which of the receiver's leaves changed between the
// parent's previous Clone and the Clone that produced this handle: all
// means the geometry itself changed (a rebuild — every leaf differs), and
// otherwise dirty holds the changed leaf indices (possibly none). It is
// meaningful only on handles produced by Clone; the bitset must be treated
// as immutable. Handles not produced by Clone report (false, nil), which
// consumers must treat as unknown.
func (c *CPMA) DirtySince() (all bool, dirty *parallel.Bitset) {
	return c.pubAll, c.pubDirty
}

// CloneCost returns the bytes materialized to produce this handle: the
// chunk pointer table and ownership bitsets, plus every spine chunk and
// leaf slab the parent (or this handle) unshared since the parent's
// previous Clone. It is the actual copy cost of the snapshot, as opposed
// to SizeBytes — the full-copy baseline.
func (c *CPMA) CloneCost() uint64 { return c.cloneBytes }

// Clones returns how many times Clone has been called on this CPMA.
func (c *CPMA) Clones() uint64 { return atomic.LoadUint64(&c.clones) }

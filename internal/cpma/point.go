package cpma

import (
	"repro/internal/codec"
	"repro/internal/pmatree"
)

// leafForIn returns the last non-empty leaf in [lo, hi] whose head is <= x,
// or -1. The binary search probes uncompressed leaf heads (§5: "the
// uncompressed head allows for efficient searching"), walking left over
// empty leaves.
func (c *CPMA) leafForIn(x uint64, lo, hi int) int {
	res := -1
	for lo <= hi {
		mid := int(uint(lo+hi) >> 1)
		j := mid
		for j >= lo && c.leafSt(j).used == 0 {
			j--
		}
		if j < lo {
			lo = mid + 1
			continue
		}
		if c.head(j) <= x {
			res = j
			lo = mid + 1
		} else {
			hi = j - 1
		}
	}
	return res
}

func (c *CPMA) firstNonEmptyIn(lo, hi int) int {
	for j := lo; j <= hi; j++ {
		if c.leafSt(j).used != 0 {
			return j
		}
	}
	return -1
}

func (c *CPMA) nextHeadIn(leaf, hi int) uint64 {
	for j := leaf + 1; j <= hi; j++ {
		if c.leafSt(j).used != 0 {
			return c.head(j)
		}
	}
	return ^uint64(0)
}

// findLeaf locates the leaf a key belongs to for point operations.
// Returns -1 iff the CPMA is empty.
func (c *CPMA) findLeaf(x uint64) int {
	leaf := c.leafForIn(x, 0, c.leaves-1)
	if leaf == -1 {
		leaf = c.firstNonEmptyIn(0, c.leaves-1)
	}
	return leaf
}

// Has reports whether x is in the set.
func (c *CPMA) Has(x uint64) bool {
	if x == 0 || c.n == 0 {
		return false
	}
	return c.leafHas(c.findLeaf(x), x)
}

// Next returns the smallest key >= x (the paper's search operation).
func (c *CPMA) Next(x uint64) (uint64, bool) {
	if c.n == 0 {
		return 0, false
	}
	leaf := c.findLeaf(x)
	var res uint64
	found := false
	c.leafIter(leaf, func(v uint64) bool {
		if v >= x {
			res, found = v, true
			return false
		}
		return true
	})
	if found {
		return res, true
	}
	for j := leaf + 1; j < c.leaves; j++ {
		if c.leafSt(j).used != 0 {
			return c.head(j), true
		}
	}
	return 0, false
}

// Min returns the smallest key.
func (c *CPMA) Min() (uint64, bool) {
	if c.n == 0 {
		return 0, false
	}
	return c.head(c.firstNonEmptyIn(0, c.leaves-1)), true
}

// Max returns the largest key.
func (c *CPMA) Max() (uint64, bool) {
	if c.n == 0 {
		return 0, false
	}
	for j := c.leaves - 1; j >= 0; j-- {
		if c.leafSt(j).used == 0 {
			continue
		}
		var last uint64
		c.leafIter(j, func(v uint64) bool { last = v; return true })
		return last, true
	}
	return 0, false
}

// Insert adds x, returning false if already present. Point updates follow
// the PMA's four steps with the place step done as a single pass over the
// compressed leaf (§5, Figure 6).
func (c *CPMA) Insert(x uint64) bool {
	if x == 0 {
		panic("cpma: key 0 is reserved")
	}
	for {
		leaf := c.findLeaf(x)
		if leaf == -1 {
			leaf = 0
		}
		if c.usedOf(leaf)+codec.MaxGrowth > c.LeafBytes() {
			// Not enough slack for the worst-case code growth: rebalance
			// first (such a leaf always violates its byte-density bound).
			c.rebalanceLeaf(leaf, true, false)
			continue
		}
		if !c.leafInsert(leaf, x) {
			return false
		}
		c.n++
		if c.usedOf(leaf) > c.tree.UpperUnits(pmatree.Node{Level: 0, Index: leaf}) {
			c.rebalanceLeaf(leaf, true, false)
		}
		return true
	}
}

// Remove deletes x, returning false if absent.
func (c *CPMA) Remove(x uint64) bool {
	if x == 0 || c.n == 0 {
		return false
	}
	leaf := c.findLeaf(x)
	if !c.leafRemove(leaf, x) {
		return false
	}
	c.n--
	if c.usedOf(leaf) < c.tree.LowerUnits(pmatree.Node{Level: 0, Index: leaf}) {
		c.rebalanceLeaf(leaf, false, true)
	}
	return true
}

func (c *CPMA) rebalanceLeaf(leaf int, checkUpper, checkLower bool) {
	if checkLower && c.Capacity() <= minCapacity {
		return
	}
	plan := c.tree.WalkUp(c.usedOf, leaf, checkUpper, checkLower)
	c.applyPlan(plan)
}

package cpma

// COW-specific behavior: dirty-window handoff across clones, delta
// round-trips against those windows, and delta rejection on corrupt
// input. The structural isolation of clones (mutate either side through
// growth/shrink rebuilds, nothing leaks) lives in the TestClone* tests;
// here we pin down the bookkeeping the persist layer builds on.

import (
	"bytes"
	"math/rand"
	"slices"
	"testing"
)

// cloneEqualState asserts a and b hold identical key sets and both pass
// the strict validator.
func cloneEqualState(t *testing.T, a, b *CPMA, what string) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Fatalf("%s: Len %d vs %d", what, a.Len(), b.Len())
	}
	if a.Sum() != b.Sum() {
		t.Fatalf("%s: Sum mismatch", what)
	}
	if !slices.Equal(a.Keys(), b.Keys()) {
		t.Fatalf("%s: key sets differ", what)
	}
	for _, c := range []*CPMA{a, b} {
		if err := c.Validate(); err != nil {
			t.Fatalf("%s: %v", what, err)
		}
	}
}

// TestDirtyWindowHandoff: a clone's DirtySince window is exactly the
// parent's accumulated dirt since the previous clone, and Clone resets
// the parent's window.
func TestDirtyWindowHandoff(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	c := New(&Options{LeafBytes: 256, PointThreshold: 10})

	// A handle that never went through Clone reports unknown.
	if all, bits := c.DirtySince(); all || bits != nil {
		t.Fatalf("non-clone handle reported a window: all=%v bits=%v", all, bits)
	}

	c.InsertBatch(uniqueRandom(r, 5000, 1<<28), false)
	first := c.Clone()
	if all, _ := first.DirtySince(); !all {
		// The initial build is a rebuild: everything is dirty.
		t.Fatal("first clone after build should report all")
	}

	// No mutations between clones: the window must be empty, not all.
	second := c.Clone()
	if all, bits := second.DirtySince(); all || bits == nil || bits.Count() != 0 {
		t.Fatalf("idle window not empty: all=%v count=%v", all, bits)
	}

	// A small point mutation dirties at least the touched leaf, and far
	// fewer than all leaves at this size.
	k, _ := c.Min()
	c.Remove(k)
	c.Insert(k)
	third := c.Clone()
	all, bits := third.DirtySince()
	if all || bits == nil {
		t.Fatalf("point-mutation window reported all")
	}
	if n := bits.Count(); n == 0 || n >= c.Leaves() {
		t.Fatalf("point-mutation window covers %d of %d leaves", n, c.Leaves())
	}
}

// TestDeltaRoundTripDifferential walks a mutation history, maintaining a
// shadow copy that advances only through serialized deltas (or full
// slabs when a rebuild dirtied everything). After every step the shadow
// must be indistinguishable from a fresh clone of the live set — the
// exact contract persist's delta checkpoints recover by.
func TestDeltaRoundTripDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	opts := &Options{LeafBytes: 256, PointThreshold: 10}
	c := New(opts)
	c.InsertBatch(uniqueRandom(r, 8000, 1<<26), false)

	_ = c.Clone() // open the first window
	shadow := fullSlabCopy(t, c, opts)
	fulls, deltas := 0, 0

	for round := 0; round < 30; round++ {
		switch round % 5 {
		case 0: // growth-sized batch (may rebuild)
			c.InsertBatch(uniqueRandom(r, 4000, 1<<26), false)
		case 1: // removals (may shrink-rebuild)
			all := c.Keys()
			r.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
			c.RemoveBatch(all[:len(all)/3], false)
		case 2: // clustered batch: a contiguous run hitting few leaves
			base := 1 + r.Uint64()%(1<<26)
			run := make([]uint64, 512)
			for i := range run {
				run[i] = base + uint64(i)
			}
			c.InsertBatch(run, true)
		case 3: // point ops
			for i := 0; i < 50; i++ {
				c.Insert(1 + r.Uint64()%(1<<26))
				c.Remove(1 + r.Uint64()%(1<<26))
			}
		case 4: // no-op round: empty window must round-trip too
		}

		handle := c.Clone()
		all, bits := handle.DirtySince()
		if all || bits == nil {
			shadow = fullSlabCopy(t, handle, opts)
			fulls++
		} else {
			var buf bytes.Buffer
			want := handle.DeltaEncodedSize(bits.Indices())
			n, err := handle.WriteDeltaTo(&buf, bits.Indices())
			if err != nil {
				t.Fatalf("round %d: WriteDeltaTo: %v", round, err)
			}
			if uint64(n) != want || uint64(buf.Len()) != want {
				t.Fatalf("round %d: wrote %d bytes, DeltaEncodedSize said %d", round, n, want)
			}
			if err := shadow.ApplyDeltaFrom(&buf); err != nil {
				t.Fatalf("round %d: ApplyDeltaFrom: %v", round, err)
			}
			deltas++
		}
		cloneEqualState(t, shadow, handle, "shadow after delta")
	}
	if fulls == 0 || deltas == 0 {
		t.Fatalf("walk not exercising both paths: %d full, %d delta", fulls, deltas)
	}
}

func fullSlabCopy(t *testing.T, c *CPMA, opts *Options) *CPMA {
	t.Helper()
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	s, err := ReadFrom(&buf, opts)
	if err != nil {
		t.Fatalf("ReadFrom: %v", err)
	}
	return s
}

// TestDeltaCorruptionRejected: any single corrupted byte in a delta
// stream must be rejected, and a failed apply must leave the receiver
// exactly as it was.
func TestDeltaCorruptionRejected(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	opts := &Options{LeafBytes: 256, PointThreshold: 10}
	c := New(opts)
	c.InsertBatch(uniqueRandom(r, 6000, 1<<26), false)
	_ = c.Clone()
	base := fullSlabCopy(t, c, opts)
	baseKeys := base.Keys()

	c.InsertBatch(uniqueRandom(r, 200, 1<<26), false)
	handle := c.Clone()
	all, bits := handle.DirtySince()
	if all {
		t.Fatal("small batch unexpectedly rebuilt")
	}
	var buf bytes.Buffer
	if _, err := handle.WriteDeltaTo(&buf, bits.Indices()); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	for _, off := range []int{0, 9, 13, 20, 33, len(good) / 2, len(good) - 3, len(good) - 1} {
		bad := append([]byte(nil), good...)
		bad[off] ^= 0x5a
		if err := base.ApplyDeltaFrom(bytes.NewReader(bad)); err == nil {
			t.Fatalf("corruption at offset %d accepted", off)
		}
		if !slices.Equal(base.Keys(), baseKeys) {
			t.Fatalf("failed apply at offset %d mutated the receiver", off)
		}
	}
	// Truncations, including cutting the CRC itself.
	for _, cut := range []int{0, 1, len(good) / 3, len(good) - 1} {
		if err := base.ApplyDeltaFrom(bytes.NewReader(good[:cut])); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}
	if !slices.Equal(base.Keys(), baseKeys) {
		t.Fatal("failed applies mutated the receiver")
	}

	// The intact stream still applies.
	if err := base.ApplyDeltaFrom(bytes.NewReader(good)); err != nil {
		t.Fatalf("intact delta rejected after corruption attempts: %v", err)
	}
	cloneEqualState(t, base, handle, "base after intact apply")
}

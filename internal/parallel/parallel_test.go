package parallel

import (
	"math/rand"
	"slices"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestDo(t *testing.T) {
	var a, b int
	Do(func() { a = 1 }, func() { b = 2 })
	if a != 1 || b != 2 {
		t.Fatalf("Do did not run both functions: a=%d b=%d", a, b)
	}
}

func TestDo3(t *testing.T) {
	var x [3]int32
	Do3(func() { x[0] = 1 }, func() { x[1] = 2 }, func() { x[2] = 3 })
	if x != [3]int32{1, 2, 3} {
		t.Fatalf("Do3 result %v", x)
	}
}

func TestForCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 64, 1000, 100_003} {
		hits := make([]int32, n)
		For(n, 13, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d hit %d times", n, i, h)
			}
		}
	}
}

func TestForRangeDisjointCover(t *testing.T) {
	n := 12345
	var total int64
	seen := make([]int32, n)
	ForRange(n, 100, func(lo, hi int) {
		if lo < 0 || hi > n || lo >= hi {
			t.Errorf("bad range [%d,%d)", lo, hi)
		}
		atomic.AddInt64(&total, int64(hi-lo))
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&seen[i], 1)
		}
	})
	if total != int64(n) {
		t.Fatalf("ranges covered %d of %d", total, n)
	}
	for i, s := range seen {
		if s != 1 {
			t.Fatalf("index %d covered %d times", i, s)
		}
	}
}

func TestReduceSum(t *testing.T) {
	n := 100_000
	got := ReduceSum(n, 0, func(i int) uint64 { return uint64(i) })
	want := uint64(n) * uint64(n-1) / 2
	if got != want {
		t.Fatalf("ReduceSum = %d, want %d", got, want)
	}
}

func randSorted(r *rand.Rand, n int, max uint64) []uint64 {
	a := make([]uint64, n)
	for i := range a {
		a[i] = r.Uint64() % max
	}
	slices.Sort(a)
	return a
}

func TestMergeMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, na := range []int{0, 1, 100, 50_000} {
		for _, nb := range []int{0, 1, 333, 70_000} {
			a := randSorted(r, na, 1<<20)
			b := randSorted(r, nb, 1<<20)
			out := make([]uint64, na+nb)
			Merge(a, b, out)
			want := append(append([]uint64{}, a...), b...)
			slices.Sort(want)
			if !slices.Equal(out, want) {
				t.Fatalf("Merge(%d,%d) mismatch", na, nb)
			}
		}
	}
}

func TestMergeDedup(t *testing.T) {
	a := []uint64{1, 3, 5, 7}
	b := []uint64{2, 3, 6, 7, 9}
	got, fresh := MergeDedup(a, b)
	want := []uint64{1, 2, 3, 5, 6, 7, 9}
	if !slices.Equal(got, want) || fresh != 3 {
		t.Fatalf("MergeDedup = %v fresh=%d, want %v fresh=3", got, fresh, want)
	}
}

func TestMergeDedupLarge(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	a := DedupSorted(randSorted(r, 60_000, 1<<22))
	b := DedupSorted(randSorted(r, 60_000, 1<<22))
	got, fresh := MergeDedup(a, b)
	seen := map[uint64]bool{}
	for _, v := range a {
		seen[v] = true
	}
	wantFresh := 0
	for _, v := range b {
		if !seen[v] {
			wantFresh++
			seen[v] = true
		}
	}
	if fresh != wantFresh {
		t.Fatalf("fresh = %d, want %d", fresh, wantFresh)
	}
	if len(got) != len(seen) {
		t.Fatalf("len = %d, want %d", len(got), len(seen))
	}
	if !slices.IsSorted(got) {
		t.Fatal("result not sorted")
	}
}

func TestDedupSorted(t *testing.T) {
	cases := [][]uint64{
		nil,
		{5},
		{1, 1, 1},
		{1, 2, 2, 3, 3, 3, 10},
	}
	wants := [][]uint64{nil, {5}, {1}, {1, 2, 3, 10}}
	for i, c := range cases {
		got := DedupSorted(c)
		if !slices.Equal(got, wants[i]) {
			t.Errorf("DedupSorted(%v) = %v, want %v", c, got, wants[i])
		}
	}
}

func TestDedupSortedLargeProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randSorted(r, 40_000, 1<<15) // many duplicates
		got := DedupSorted(a)
		want := slices.Compact(slices.Clone(a))
		return slices.Equal(got, want)
	}
	cfg := &quick.Config{MaxCount: 8}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestSortMatchesStdlib(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for _, n := range []int{0, 1, 2, 1000, 200_000} {
		a := make([]uint64, n)
		for i := range a {
			a[i] = r.Uint64()
		}
		want := slices.Clone(a)
		slices.Sort(want)
		Sort(a)
		if !slices.Equal(a, want) {
			t.Fatalf("Sort(n=%d) mismatch", n)
		}
	}
}

func TestSortedCopyLeavesInputUnchanged(t *testing.T) {
	a := []uint64{3, 1, 2}
	got := SortedCopy(a)
	if !slices.Equal(a, []uint64{3, 1, 2}) {
		t.Fatal("input mutated")
	}
	if !slices.Equal(got, []uint64{1, 2, 3}) {
		t.Fatalf("got %v", got)
	}
}

func TestBitsetConcurrent(t *testing.T) {
	n := 10_000
	b := NewBitset(n)
	For(n, 7, func(i int) {
		if i%3 == 0 {
			b.Set(i)
		}
	})
	idx := b.Indices()
	want := 0
	for i := 0; i < n; i += 3 {
		want++
	}
	if len(idx) != want {
		t.Fatalf("got %d indices, want %d", len(idx), want)
	}
	for k := 1; k < len(idx); k++ {
		if idx[k] <= idx[k-1] {
			t.Fatal("indices not strictly increasing")
		}
	}
	for _, i := range idx {
		if i%3 != 0 || !b.Get(i) {
			t.Fatalf("unexpected index %d", i)
		}
	}
	if b.Get(1) {
		t.Fatal("bit 1 should be clear")
	}
}

func TestBitsetSetIdempotent(t *testing.T) {
	b := NewBitset(128)
	For(64, 1, func(int) { b.Set(77) })
	if got := b.Indices(); len(got) != 1 || got[0] != 77 {
		t.Fatalf("Indices = %v", got)
	}
}

package parallel

import "slices"

// sortGrain is the subproblem size below which Sort falls back to the
// standard library's pattern-defeating quicksort.
const sortGrain = 32 << 10

// Sort sorts a in place using a parallel merge sort with Merge as the
// combining step. For small inputs or GOMAXPROCS=1 it is slices.Sort.
func Sort(a []uint64) {
	if len(a) <= sortGrain || Serial() {
		slices.Sort(a)
		return
	}
	scratch := make([]uint64, len(a))
	mergeSort(a, scratch, true)
}

// SortedCopy returns a sorted copy of a, leaving a unchanged.
func SortedCopy(a []uint64) []uint64 {
	out := make([]uint64, len(a))
	copy(out, a)
	Sort(out)
	return out
}

// mergeSort sorts a; scratch is a same-length buffer. When inA is true the
// sorted result ends up in a, otherwise in scratch.
func mergeSort(a, scratch []uint64, inA bool) {
	if len(a) <= sortGrain {
		slices.Sort(a)
		if !inA {
			copy(scratch, a)
		}
		return
	}
	mid := len(a) / 2
	Do(
		func() { mergeSort(a[:mid], scratch[:mid], !inA) },
		func() { mergeSort(a[mid:], scratch[mid:], !inA) },
	)
	if inA {
		Merge(scratch[:mid], scratch[mid:], a)
	} else {
		Merge(a[:mid], a[mid:], scratch)
	}
}

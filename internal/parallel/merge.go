package parallel

import "sort"

// mergeGrain is the size below which merges run sequentially. Chosen so a
// sequential chunk comfortably amortizes a goroutine spawn.
const mergeGrain = 16 << 10

// Merge merges the sorted slices a and b into out, which must have length
// len(a)+len(b). Duplicates are preserved. Large merges are split with the
// binary-search strategy of load-balanced parallel merging [Akl–Santoro].
func Merge(a, b, out []uint64) {
	if len(a)+len(b) <= mergeGrain || Serial() {
		seqMerge(a, b, out)
		return
	}
	if len(a) < len(b) {
		a, b = b, a
	}
	mid := len(a) / 2
	pivot := a[mid]
	// Elements equal to pivot in b go left so equal runs stay adjacent.
	cut := sort.Search(len(b), func(i int) bool { return b[i] > pivot })
	Do(
		func() { Merge(a[:mid+1], b[:cut], out[:mid+1+cut]) },
		func() { Merge(a[mid+1:], b[cut:], out[mid+1+cut:]) },
	)
}

func seqMerge(a, b, out []uint64) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out[k] = a[i]
			i++
		} else {
			out[k] = b[j]
			j++
		}
		k++
	}
	k += copy(out[k:], a[i:])
	copy(out[k:], b[j:])
}

// MergeDedup merges sorted, individually duplicate-free slices a and b into a
// new slice, dropping keys present in both. It returns the merged slice and
// the number of elements of b that were not already in a.
func MergeDedup(a, b []uint64) (merged []uint64, fresh int) {
	if len(a)+len(b) <= mergeGrain || Serial() {
		return seqMergeDedup(a, b)
	}
	out := make([]uint64, len(a)+len(b))
	Merge(a, b, out)
	merged = DedupSorted(out)
	return merged, len(merged) - len(a)
}

func seqMergeDedup(a, b []uint64) ([]uint64, int) {
	out := make([]uint64, 0, len(a)+len(b))
	i, j := 0, 0
	fresh := 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
			fresh++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	fresh += len(b) - j
	out = append(out, b[j:]...)
	return out, fresh
}

// DedupSorted returns sorted slice a with adjacent duplicates removed. The
// result is freshly allocated; a is left unchanged. Large inputs are
// compacted in parallel with a per-block count, exclusive scan, and scatter.
func DedupSorted(a []uint64) []uint64 {
	if len(a) == 0 {
		return nil
	}
	if len(a) <= mergeGrain || Serial() {
		out := make([]uint64, 0, len(a))
		out = append(out, a[0])
		for i := 1; i < len(a); i++ {
			if a[i] != a[i-1] {
				out = append(out, a[i])
			}
		}
		return out
	}
	grain := DefaultGrain(len(a))
	nblocks := (len(a) + grain - 1) / grain
	counts := make([]int, nblocks+1)
	For(nblocks, 1, func(blk int) {
		lo, hi := blk*grain, min((blk+1)*grain, len(a))
		c := 0
		for i := lo; i < hi; i++ {
			if i == 0 || a[i] != a[i-1] {
				c++
			}
		}
		counts[blk+1] = c
	})
	for i := 1; i <= nblocks; i++ {
		counts[i] += counts[i-1]
	}
	out := make([]uint64, counts[nblocks])
	For(nblocks, 1, func(blk int) {
		lo, hi := blk*grain, min((blk+1)*grain, len(a))
		k := counts[blk]
		for i := lo; i < hi; i++ {
			if i == 0 || a[i] != a[i-1] {
				out[k] = a[i]
				k++
			}
		}
	})
	return out
}

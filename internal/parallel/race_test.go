package parallel

// Race coverage for the fork-join primitives: these tests run the
// primitives from several client goroutines at once — the usage pattern the
// sharded front-end introduces, where independent batch writers each spin
// up their own parallel loops — and are meaningful mostly under
// `go test -race` (the CI race job runs exactly that).

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestRaceConcurrentForClients(t *testing.T) {
	const clients = 4
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			out := make([]int, 10000)
			For(len(out), 64, func(i int) { out[i] = i + c })
			for i, v := range out {
				if v != i+c {
					t.Errorf("client %d: out[%d] = %d", c, i, v)
					return
				}
			}
		}(c)
	}
	wg.Wait()
}

func TestRaceNestedForkJoin(t *testing.T) {
	var total atomic.Int64
	Do3(
		func() {
			ForRange(1000, 16, func(lo, hi int) { total.Add(int64(hi - lo)) })
		},
		func() {
			For(1000, 16, func(int) { total.Add(1) })
		},
		func() {
			total.Add(int64(ReduceSum(1000, 16, func(int) uint64 { return 1 })))
		},
	)
	if got := total.Load(); got != 3000 {
		t.Fatalf("nested fork-join total = %d, want 3000", got)
	}
}

func TestRaceBitsetSharedWriters(t *testing.T) {
	bs := NewBitset(100000)
	For(100000, 32, func(i int) {
		if i%3 == 0 {
			bs.Set(i)
		}
	})
	idx := bs.Indices()
	if len(idx) != (100000+2)/3 {
		t.Fatalf("bitset holds %d indices, want %d", len(idx), (100000+2)/3)
	}
	for _, i := range idx {
		if i%3 != 0 {
			t.Fatalf("unexpected index %d set", i)
		}
	}
}

func TestRaceConcurrentSortAndMerge(t *testing.T) {
	var wg sync.WaitGroup
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			a := make([]uint64, 50000)
			for i := range a {
				a[i] = uint64((i*2654435761 + c) % 1000003)
			}
			Sort(a)
			for i := 1; i < len(a); i++ {
				if a[i-1] > a[i] {
					t.Errorf("client %d: sort order violated at %d", c, i)
					return
				}
			}
			merged, _ := MergeDedup(a[:25000], a[25000:])
			for i := 1; i < len(merged); i++ {
				if merged[i-1] >= merged[i] {
					t.Errorf("client %d: merge-dedup order violated at %d", c, i)
					return
				}
			}
		}(c)
	}
	wg.Wait()
}

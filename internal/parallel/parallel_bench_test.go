package parallel

import (
	"testing"
)

func benchKeys(n int) []uint64 {
	out := make([]uint64, n)
	x := uint64(88172645463325252)
	for i := range out {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		out[i] = x
	}
	return out
}

func BenchmarkSort1M(b *testing.B) {
	src := benchKeys(1 << 20)
	buf := make([]uint64, len(src))
	b.SetBytes(int64(8 * len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, src)
		Sort(buf)
	}
}

func BenchmarkMerge1M(b *testing.B) {
	a := benchKeys(1 << 19)
	c := benchKeys(1 << 19)
	Sort(a)
	Sort(c)
	out := make([]uint64, len(a)+len(c))
	b.SetBytes(int64(8 * len(out)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Merge(a, c, out)
	}
}

func BenchmarkDedupSorted(b *testing.B) {
	a := benchKeys(1 << 20)
	for i := range a {
		a[i] %= 1 << 18 // heavy duplication
	}
	Sort(a)
	b.SetBytes(int64(8 * len(a)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DedupSorted(a)
	}
}

func BenchmarkReduceSum(b *testing.B) {
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ReduceSum(1<<20, 0, func(i int) uint64 { return uint64(i) })
	}
}

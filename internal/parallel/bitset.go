package parallel

import (
	"math/bits"
	"sync/atomic"
)

// Bitset is a fixed-size bitset whose Set operation is safe for concurrent
// use. The batch-merge phase uses it to record which PMA leaves a batch
// touched (the paper's "thread-safe set" of modified leaves).
type Bitset struct {
	words []uint64
	n     int
}

// NewBitset returns a Bitset able to hold n bits, all initially clear.
func NewBitset(n int) *Bitset {
	return &Bitset{words: make([]uint64, (n+63)/64), n: n}
}

// Set atomically sets bit i.
func (b *Bitset) Set(i int) {
	w := &b.words[i>>6]
	mask := uint64(1) << uint(i&63)
	for {
		old := atomic.LoadUint64(w)
		if old&mask != 0 || atomic.CompareAndSwapUint64(w, old, old|mask) {
			return
		}
	}
}

// TrySet atomically sets bit i, reporting whether this call changed it
// from clear to set. Exactly one of any set of concurrent TrySet(i)
// callers observes true, which makes the bitset usable as a claim table
// (see cpma's chunk unsharing).
func (b *Bitset) TrySet(i int) bool {
	w := &b.words[i>>6]
	mask := uint64(1) << uint(i&63)
	for {
		old := atomic.LoadUint64(w)
		if old&mask != 0 {
			return false
		}
		if atomic.CompareAndSwapUint64(w, old, old|mask) {
			return true
		}
	}
}

// Get reports whether bit i is set. It is only guaranteed to observe Sets
// that happened-before it (callers read after joining all writers).
func (b *Bitset) Get(i int) bool {
	return atomic.LoadUint64(&b.words[i>>6])&(uint64(1)<<uint(i&63)) != 0
}

// Len returns the capacity of the bitset in bits.
func (b *Bitset) Len() int { return b.n }

// Count returns the number of set bits.
func (b *Bitset) Count() int {
	total := 0
	for _, w := range b.words {
		total += bits.OnesCount64(w)
	}
	return total
}

// Clone returns an independent copy of the bitset. Not safe against
// concurrent Sets; callers snapshot after joining all writers.
func (b *Bitset) Clone() *Bitset {
	return &Bitset{words: append([]uint64(nil), b.words...), n: b.n}
}

// Or merges other into b (b |= other), reporting whether the merge was
// possible — false when the two bitsets have different capacities, in
// which case b is left unchanged. Not safe against concurrent Sets.
func (b *Bitset) Or(other *Bitset) bool {
	if b.n != other.n {
		return false
	}
	for i, w := range other.words {
		b.words[i] |= w
	}
	return true
}

// Indices returns the positions of all set bits in increasing order.
func (b *Bitset) Indices() []int {
	var out []int
	for wi, w := range b.words {
		for w != 0 {
			i := wi<<6 + bits.TrailingZeros64(w)
			if i < b.n {
				out = append(out, i)
			}
			w &= w - 1
		}
	}
	return out
}

// Package parallel implements the fork-join primitives the batch-parallel
// PMA/CPMA and the tree baselines are built on: binary forking (Do), grained
// parallel loops (For, ForRange), load-balanced parallel merge and merge
// sort, parallel reductions, and an atomic bitset.
//
// It plays the role Parlaylib plays for the paper's C++ implementation. All
// primitives degrade to plain serial loops when GOMAXPROCS is 1, so serial
// baselines measured with runtime.GOMAXPROCS(1) incur no scheduling overhead.
package parallel

import (
	"runtime"
	"sync"
)

// Procs reports the current GOMAXPROCS setting, i.e. the number of workers
// fork-join primitives will try to keep busy.
func Procs() int {
	return runtime.GOMAXPROCS(0)
}

// Serial reports whether the runtime is limited to a single worker, in which
// case every primitive in this package runs inline without spawning.
func Serial() bool {
	return Procs() == 1
}

// Do runs f and g as a binary fork, joining before it returns. When only one
// worker is available both run inline.
func Do(f, g func()) {
	if Serial() {
		f()
		g()
		return
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		g()
	}()
	f()
	wg.Wait()
}

// DoIf forks f and g when cond is true and runs them sequentially otherwise.
// Callers use it to cut off forking below a work threshold.
func DoIf(cond bool, f, g func()) {
	if cond {
		Do(f, g)
	} else {
		f()
		g()
	}
}

// Do3 runs three functions as a fork-join group.
func Do3(f, g, h func()) {
	Do(f, func() { Do(g, h) })
}

// DefaultGrain picks a loop grain that gives each worker roughly eight
// chunks, bounded below by 1.
func DefaultGrain(n int) int {
	g := n / (8 * Procs())
	if g < 1 {
		g = 1
	}
	return g
}

// For runs f(i) for every i in [0, n) with fork-join parallelism. Chunks of
// at most grain iterations run sequentially; grain <= 0 selects
// DefaultGrain(n). f must be safe to call concurrently for distinct i.
func For(n, grain int, f func(i int)) {
	ForRange(n, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			f(i)
		}
	})
}

// ForRange runs f over disjoint subranges [lo, hi) covering [0, n), each of
// length at most grain. It is the block form of For, avoiding per-index
// closure calls in hot loops.
func ForRange(n, grain int, f func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain <= 0 {
		grain = DefaultGrain(n)
	}
	if Serial() || n <= grain {
		f(0, n)
		return
	}
	forRange(0, n, grain, f)
}

func forRange(lo, hi, grain int, f func(lo, hi int)) {
	if hi-lo <= grain {
		f(lo, hi)
		return
	}
	mid := lo + (hi-lo)/2
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		forRange(mid, hi, grain, f)
	}()
	forRange(lo, mid, grain, f)
	wg.Wait()
}

// ReduceSum computes the sum of f(i) for i in [0, n) as a parallel tree
// reduction with the given grain (<= 0 selects DefaultGrain).
func ReduceSum(n, grain int, f func(i int) uint64) uint64 {
	var total uint64
	var mu sync.Mutex
	ForRange(n, grain, func(lo, hi int) {
		var s uint64
		for i := lo; i < hi; i++ {
			s += f(i)
		}
		mu.Lock()
		total += s
		mu.Unlock()
	})
	return total
}

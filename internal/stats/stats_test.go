package stats

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestThroughput(t *testing.T) {
	if got := Throughput(1000, time.Second); got != 1000 {
		t.Fatalf("Throughput = %f", got)
	}
	if got := Throughput(5, 0); got != 0 {
		t.Fatalf("zero duration should give 0, got %f", got)
	}
}

func TestSci(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{25_000_000, "2.5E7"}, {1.8e6, "1.8E6"}, {0, "0"}, {950, "9.5E2"},
	}
	for _, c := range cases {
		if got := Sci(c.in); got != c.want {
			t.Errorf("Sci(%g) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestGeoMean(t *testing.T) {
	got := GeoMean([]float64{1, 4})
	if math.Abs(got-2) > 1e-12 {
		t.Fatalf("GeoMean = %f", got)
	}
	if GeoMean(nil) != 0 {
		t.Fatal("empty GeoMean should be 0")
	}
}

func TestMedian(t *testing.T) {
	if Median([]float64{3, 1, 2}) != 2 {
		t.Fatal("odd median wrong")
	}
	if Median([]float64{4, 1, 2, 3}) != 2.5 {
		t.Fatal("even median wrong")
	}
}

func TestRatio(t *testing.T) {
	if Ratio(3, 2) != "1.5" || Ratio(1, 0) != "-" {
		t.Fatal("Ratio wrong")
	}
}

func TestTableRendersAligned(t *testing.T) {
	tb := NewTable("name", "value")
	tb.Row("a", 1)
	tb.Row("longer", 23456)
	var sb strings.Builder
	tb.Write(&sb)
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines", len(lines))
	}
	if len(lines[0]) != len(lines[2]) {
		t.Fatalf("misaligned: %q vs %q", lines[0], lines[2])
	}
	if !strings.Contains(out, "23456") {
		t.Fatal("missing cell")
	}
}

func TestTrials(t *testing.T) {
	calls := 0
	d := Trials(1, 3, func() { calls++ })
	if calls != 4 {
		t.Fatalf("calls = %d", calls)
	}
	if d < 0 {
		t.Fatal("negative duration")
	}
}

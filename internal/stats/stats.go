// Package stats holds the measurement and reporting helpers the benchmark
// harnesses share: wall-clock throughput, speedup series, geometric means,
// scientific-notation formatting matching the paper's tables, and aligned
// text-table rendering.
package stats

import (
	"fmt"
	"io"
	"math"
	"strings"
	"time"
)

// Throughput returns operations per second for n operations in d.
func Throughput(n int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(n) / d.Seconds()
}

// Time runs f and returns its wall-clock duration.
func Time(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

// Sci formats a value the way the paper's tables do: "2.5E7".
func Sci(v float64) string {
	if v == 0 {
		return "0"
	}
	exp := int(math.Floor(math.Log10(math.Abs(v))))
	mant := v / math.Pow(10, float64(exp))
	if math.Abs(mant) >= 9.95 { // would print as 10.0E(n)
		mant /= 10
		exp++
	}
	return fmt.Sprintf("%.1fE%d", mant, exp)
}

// Ratio formats a ratio with one decimal, like the paper's speedup columns.
func Ratio(a, b float64) string {
	if b == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f", a/b)
}

// GeoMean returns the geometric mean of positive values ("on average, the
// CPMA achieves ..." figures are geometric means over workloads).
func GeoMean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vals {
		if v <= 0 {
			return 0
		}
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vals)))
}

// Median returns the median of a non-empty slice (copied, not mutated).
func Median(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	c := append([]float64(nil), vals...)
	for i := 1; i < len(c); i++ { // insertion sort; inputs are tiny
		for j := i; j > 0 && c[j] < c[j-1]; j-- {
			c[j], c[j-1] = c[j-1], c[j]
		}
	}
	if len(c)%2 == 1 {
		return c[len(c)/2]
	}
	return (c[len(c)/2-1] + c[len(c)/2]) / 2
}

// Table renders aligned columns.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable starts a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// Row appends a row; values are formatted with %v.
func (t *Table) Row(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprintf("%v", c)
	}
	t.rows = append(t.rows, row)
}

// Write renders the table with right-aligned columns.
func (t *Table) Write(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	line(t.header)
	rule := make([]string, len(t.header))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	line(rule)
	for _, row := range t.rows {
		line(row)
	}
}

// Trials runs f `warmup+n` times and returns the mean duration of the last
// n runs, matching the paper's "average of 10 trials after a single warm up
// trial" protocol (callers pick smaller n for big workloads).
func Trials(warmup, n int, f func()) time.Duration {
	for i := 0; i < warmup; i++ {
		f()
	}
	var total time.Duration
	for i := 0; i < n; i++ {
		total += Time(f)
	}
	if n == 0 {
		return 0
	}
	return total / time.Duration(n)
}

// Package core marks the paper's primary contribution for readers
// navigating the repository layout: the batch-parallel Compressed Packed
// Memory Array lives in internal/cpma (with its uncompressed counterpart in
// internal/pma and the shared implicit-tree planner in internal/pmatree).
// This package re-exports the CPMA under the core name.
package core

import "repro/internal/cpma"

// Set is the batch-parallel Compressed Packed Memory Array (paper §5).
type Set = cpma.CPMA

// Options configures a Set.
type Options = cpma.Options

// New returns an empty CPMA; opts may be nil for the paper's defaults.
func New(opts *Options) *Set { return cpma.New(opts) }

// FromSorted builds a CPMA from sorted, duplicate-free, nonzero keys.
func FromSorted(keys []uint64, opts *Options) *Set { return cpma.FromSorted(keys, opts) }

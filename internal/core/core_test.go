package core

import "testing"

func TestCoreAliasesWork(t *testing.T) {
	s := New(nil)
	if added := s.InsertBatch([]uint64{3, 1, 2}, false); added != 3 {
		t.Fatalf("added = %d", added)
	}
	if !s.Has(2) {
		t.Fatal("missing key")
	}
	s2 := FromSorted([]uint64{5, 6}, nil)
	if s2.Len() != 2 {
		t.Fatalf("Len = %d", s2.Len())
	}
}

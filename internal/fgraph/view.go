package fgraph

import (
	"sync"
	"time"

	"repro/internal/shard"
)

// View is an immutable graph over one epoch-snapshot cut of a sharded
// F-Graph: the frozen per-shard CPMA handles of a shard.Snapshot presented
// through the graph.Graph interface, with the §6 vertex index (degrees +
// cursors) rebuilt at capture by one parallel pass over every shard's
// leaves under a single global leaf numbering — the index-rebuild cost,
// now sharded.
//
// # Consistency
//
// A View observes exactly what its snapshot does: each shard's handle is a
// FIFO prefix of that shard's applied sub-batch stream, all handles grabbed
// at one instant, lock-free, with no flush barrier — so analytics run
// concurrently with ingest and never block (or get blocked by) the shard
// writers. Across shards the cut is a frontier: shards may sit at different
// prefixes of a multi-shard batch stream, and edge batches enqueued but not
// yet drained are invisible (read-your-flushes, not read-your-writes —
// Flush the Sharded graph first when a View must cover preceding
// mutations). Because range partitioning makes shard order key order, the
// concatenated leaves hold every edge key in ascending order, and all
// kernels (Degree, Neighbors, the AccumulateContrib flat scan) return
// results bit-identical to a single-CPMA Graph holding the same edge set.
//
// # Staleness
//
// The index is built once at capture and never goes stale — the View is
// frozen; staleness is only how far the live graph has moved on since.
// LagKeys reports the ingest backlog (keys enqueued but not yet applied)
// at capture, Age how long ago the capture happened. A View remains valid
// forever, including after the Sharded graph is Closed.
//
// Views are safe for concurrent use by multiple goroutines.
type View struct {
	snap    *shard.Snapshot
	ls      leafSpan
	nv      int
	edges   int64
	deg     []int32
	cursors []uint64

	capturedAt time.Time
	lagKeys    uint64

	contribOnce sync.Once
	contrib     *contribIndex
}

// NumVertices returns the vertex-id space.
func (v *View) NumVertices() int { return v.nv }

// NumEdges returns the number of stored directed edges in the view.
func (v *View) NumEdges() int64 { return v.edges }

// Degree returns the out-degree of vertex u in the view.
func (v *View) Degree(u uint32) int { return int(v.deg[u]) }

// Degrees returns the view's degree array; callers must not mutate it.
func (v *View) Degrees() []int32 { return v.deg }

// Neighbors applies f to the destinations of u's stored edges in ascending
// order until f returns false, streaming across shard boundaries when u's
// key range straddles one.
func (v *View) Neighbors(u uint32, f func(w uint32) bool) {
	neighbors(v.ls, v.deg, v.cursors, u, f)
}

// AccumulateContrib implements graph.ContribScanner over the frozen shard
// leaves — the sharded PR flat-scan path. Deterministic by run ownership
// (contrib.go): bit-identical to a single-CPMA Graph scanning the same
// edge set, at any shard count. The structure-only ownership
// precomputation is built once per View, on first use.
func (v *View) AccumulateContrib(w []float64, acc []float64) {
	v.contribOnce.Do(func() { v.contrib = buildContribIndex(v.ls) })
	accumulateContrib(v.ls, v.contrib, w, acc)
}

// Snapshot returns the underlying frozen shard snapshot (for set-level
// reads: Len, Keys, MapRange, Validate).
func (v *View) Snapshot() *shard.Snapshot { return v.snap }

// Epochs returns the per-shard epochs the view was cut at (monotone per
// shard across successive Views).
func (v *View) Epochs() []uint64 { return v.snap.Epochs() }

// CapturedAt returns when the view was captured.
func (v *View) CapturedAt() time.Time { return v.capturedAt }

// Age returns how long ago the view was captured — the coarse
// snapshot-staleness measure alongside LagKeys.
func (v *View) Age() time.Duration { return time.Since(v.capturedAt) }

// LagKeys returns the ingest backlog — edge keys enqueued to the sharded
// pipeline but not yet applied — observed at capture: how far the view
// trails what clients had already submitted.
func (v *View) LagKeys() uint64 { return v.lagKeys }

package fgraph

import (
	"sync"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/workload"
)

// TestShardedFGraphRace is the -race hammer: analytics goroutines capturing
// Views and running the kernels concurrently with async edge ingest,
// deletes, live rebalancing, and finally Close — with a View captured
// before Close still being read afterwards. Invariants are deliberately
// weak (the schedules are nondeterministic); the detector is the point.
func TestShardedFGraphRace(t *testing.T) {
	const (
		scale     = 8
		shards    = 4
		ingesters = 2
		analysts  = 3
		rounds    = 40
	)
	nv := 1 << scale
	g := NewSharded(nv, shards, &ShardedOptions{
		Rebalance:      true,
		MaxSkew:        1.1,
		RebalanceEvery: time.Millisecond,
	})

	var ingest sync.WaitGroup
	for w := 0; w < ingesters; w++ {
		ingest.Add(1)
		go func(w int) {
			defer ingest.Done()
			stream := workload.NewEdgeStream(uint64(1000+w), scale, 0.25)
			for i := 0; i < rounds; i++ {
				ins, del := stream.Next(600)
				if err := g.InsertEdges(ins); err != nil {
					t.Errorf("ingester %d: InsertEdges: %v", w, err)
					return
				}
				if len(del) > 0 {
					if err := g.DeleteEdges(del); err != nil {
						t.Errorf("ingester %d: DeleteEdges: %v", w, err)
						return
					}
				}
			}
		}(w)
	}

	stop := make(chan struct{})
	var analyze sync.WaitGroup
	var lastView sync.Map // analyst id -> last *View, reused after Close
	for a := 0; a < analysts; a++ {
		analyze.Add(1)
		go func(a int) {
			defer analyze.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := g.View()
				lastView.Store(a, v)
				if v.NumVertices() != nv {
					t.Errorf("analyst %d: NumVertices %d", a, v.NumVertices())
					return
				}
				switch a % 3 {
				case 0:
					graph.BFS(v, uint32(a))
				case 1:
					graph.PageRank(v, 2)
				case 2:
					graph.ConnectedComponents(v)
				}
				if err := v.Snapshot().Validate(); err != nil {
					t.Errorf("analyst %d: %v", a, err)
					return
				}
			}
		}(a)
	}

	ingest.Wait()
	// Close while the analysts are still capturing views and running
	// kernels: it must only stop the writers, never invalidate reads.
	g.Close()
	close(stop)
	analyze.Wait()

	// Views captured before (or after) Close stay readable, and a fresh
	// post-Close View sees the final drained state.
	final := g.View()
	if final.LagKeys() != 0 {
		t.Fatalf("post-Close view reports lag %d", final.LagKeys())
	}
	lastView.Range(func(_, v any) bool {
		old := v.(*View)
		graph.BFS(old, 0)
		if err := old.Snapshot().Validate(); err != nil {
			t.Errorf("pre-Close view invalid after Close: %v", err)
		}
		return true
	})
}

package fgraph

import (
	"sort"
	"testing"

	"repro/internal/graph"
	"repro/internal/workload"
)

// shardOp is one routed sub-batch of the scripted ingest history: the keys
// of one insert or delete batch that landed on one shard.
type shardOp struct {
	insert bool
	keys   []uint64
}

// routeKeys splits a packed edge batch across the fixed interior boundary
// table exactly as the router does (first boundary strictly above the key;
// keys at or above every boundary go to the last shard).
func routeKeys(bounds []uint64, shards int, keys []uint64) [][]uint64 {
	out := make([][]uint64, shards)
	for _, k := range keys {
		p := sort.Search(len(bounds), func(i int) bool { return k < bounds[i] })
		out[p] = append(out[p], k)
	}
	return out
}

func packAll(t *testing.T, edges []workload.Edge) []uint64 {
	t.Helper()
	keys, err := packEdges(edges)
	if err != nil {
		t.Fatalf("packEdges: %v", err)
	}
	return keys
}

func modelEquals(model map[uint64]bool, keys []uint64) bool {
	if len(model) != len(keys) {
		return false
	}
	for _, k := range keys {
		if !model[k] {
			return false
		}
	}
	return true
}

// TestStreamingDifferential is the streaming-graph differential harness:
// insert/delete edge batches flow through the async sharded pipeline with
// no Flush between analytics rounds, and every mid-stream View must be (a)
// a per-shard FIFO prefix cut of the routed batch history, advancing
// monotonically across rounds, (b) byte-identical to a single-CPMA
// fgraph.Graph built on the captured edge set for BFS, PageRank, and CC,
// and (c) consistent with a sorted-slice adjacency model for Degree and
// Neighbors. A final Flush must land every shard on the full history.
func TestStreamingDifferential(t *testing.T) {
	const (
		scale  = 9
		shards = 4
		rounds = 24
		batch  = 800
	)
	nv := 1 << scale

	// Rebalancing stays off (the default) so the boundary table is fixed
	// for the whole run and the scripted routing below stays valid.
	g := NewSharded(nv, shards, nil)
	defer g.Close()
	bounds := g.Set().Snapshot().Bounds()

	stream := workload.NewEdgeStream(99, scale, 0.2)

	// Per-shard scripted history and the model's position in it.
	history := make([][]shardOp, shards)
	pos := make([]int, shards)
	model := make([]map[uint64]bool, shards)
	for p := range model {
		model[p] = map[uint64]bool{}
	}

	applyOp := func(p int) {
		op := history[p][pos[p]]
		for _, k := range op.keys {
			if op.insert {
				model[p][k] = true
			} else {
				delete(model[p], k)
			}
		}
		pos[p]++
	}

	// verifyView checks one captured view against the scripted history and
	// the single-CPMA reference.
	verifyView := func(round int, v *View, requireFull bool) {
		// (a) Each frozen shard handle must equal the model after some
		// prefix of that shard's op history, at or past the last matched
		// position (FIFO: a shard never un-applies a batch).
		sets := v.Snapshot().ShardSets()
		if len(sets) != shards {
			t.Fatalf("round %d: snapshot has %d shards, want %d", round, len(sets), shards)
		}
		for p := 0; p < shards; p++ {
			keys := sets[p].Keys()
			for !modelEquals(model[p], keys) {
				if pos[p] >= len(history[p]) {
					t.Fatalf("round %d shard %d: captured state matches no prefix of the batch history (pos %d)",
						round, p, pos[p])
				}
				applyOp(p)
			}
			if requireFull && pos[p] != len(history[p]) {
				t.Fatalf("round %d shard %d: flushed view stopped at prefix %d/%d",
					round, p, pos[p], len(history[p]))
			}
		}

		// (b) Kernel results must be byte-identical to the phased
		// single-CPMA graph holding exactly the captured edge set.
		union := v.Snapshot().Keys()
		ref := New(nv, nil)
		ref.InsertEdgeKeys(union, true)
		ref.EnsureIndex()
		if ref.NumEdges() != v.NumEdges() {
			t.Fatalf("round %d: reference holds %d edges, view %d", round, ref.NumEdges(), v.NumEdges())
		}
		wantBFS, gotBFS := graph.BFS(ref, 1), graph.BFS(v, 1)
		wantPR, gotPR := graph.PageRank(ref, 5), graph.PageRank(v, 5)
		wantCC, gotCC := graph.ConnectedComponents(ref), graph.ConnectedComponents(v)
		for i := 0; i < nv; i++ {
			if gotBFS[i] != wantBFS[i] {
				t.Fatalf("round %d: BFS[%d] = %d, want %d", round, i, gotBFS[i], wantBFS[i])
			}
			if gotPR[i] != wantPR[i] {
				t.Fatalf("round %d: PR[%d] not bit-identical: %x vs %x", round, i, gotPR[i], wantPR[i])
			}
			if gotCC[i] != wantCC[i] {
				t.Fatalf("round %d: CC[%d] = %d, want %d", round, i, gotCC[i], wantCC[i])
			}
		}

		// (c) Degree/Neighbors must agree with a plain sorted-slice
		// adjacency model of the captured keys.
		adj := make([][]uint32, nv)
		for _, k := range union {
			adj[k>>32] = append(adj[k>>32], uint32(k))
		}
		for u := 0; u < nv; u++ {
			if v.Degree(uint32(u)) != len(adj[u]) {
				t.Fatalf("round %d: Degree(%d) = %d, model %d", round, u, v.Degree(uint32(u)), len(adj[u]))
			}
			i := 0
			v.Neighbors(uint32(u), func(w uint32) bool {
				if i >= len(adj[u]) || adj[u][i] != w {
					t.Fatalf("round %d: Neighbors(%d)[%d] = %d, model %v", round, u, i, w, adj[u])
				}
				i++
				return true
			})
			if i != len(adj[u]) {
				t.Fatalf("round %d: Neighbors(%d) stopped at %d/%d", round, u, i, len(adj[u]))
			}
		}
	}

	for round := 0; round < rounds; round++ {
		ins, del := stream.Next(batch)
		insKeys := packAll(t, ins)
		if err := g.InsertEdges(ins); err != nil {
			t.Fatalf("round %d: InsertEdges: %v", round, err)
		}
		for p, ks := range routeKeys(bounds, shards, insKeys) {
			if len(ks) > 0 {
				history[p] = append(history[p], shardOp{insert: true, keys: ks})
			}
		}
		if len(del) > 0 {
			delKeys := packAll(t, del)
			if err := g.DeleteEdges(del); err != nil {
				t.Fatalf("round %d: DeleteEdges: %v", round, err)
			}
			for p, ks := range routeKeys(bounds, shards, delKeys) {
				if len(ks) > 0 {
					history[p] = append(history[p], shardOp{insert: false, keys: ks})
				}
			}
		}
		// Capture and verify mid-stream — no Flush: the async writers are
		// draining these batches while we check the cut.
		verifyView(round, g.View(), false)
	}

	g.Flush()
	verifyView(rounds, g.View(), true)
	if lag := g.View().LagKeys(); lag != 0 {
		t.Fatalf("post-flush view reports lag %d", lag)
	}
}

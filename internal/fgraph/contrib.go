package fgraph

// The deterministic flat-scan contribution kernel shared by the single-CPMA
// Graph and the sharded View — the §6 PageRank path ("PR can be cast as a
// straightforward pass through the data structure"), restated so the result
// is layout-independent.
//
// The old scan CAS-merged per-run partial sums, so a vertex whose run
// crossed a leaf boundary had its neighbor contributions grouped by where
// the boundaries fell: correct to within float rounding, but different
// bit patterns for different leaf layouts (and nondeterministic across
// schedules). The kernel here assigns every vertex's whole run to exactly
// one task — the one owning the leaf where the run starts — which then
// scans forward across leaf (and shard) boundaries until the run ends.
// Each acc[src] is one sequential left-to-right sum in ascending key order,
// written once: bit-identical to a per-vertex Neighbors pull, and therefore
// identical across leaf sizes, shard counts, and schedules. Ownership needs
// one structure-only precomputation (the source of the key preceding each
// leaf), cached until the graph mutates, so PageRank's 10 iterations pay
// for it once.

import (
	"sync/atomic"

	"repro/internal/cpma"
	"repro/internal/parallel"
)

func atomicAddInt32(addr *int32, delta int32) { atomic.AddInt32(addr, delta) }

// leafSpan presents an ordered sequence of CPMAs as one flat, globally
// numbered leaf array. For the single-CPMA graph the sequence has one
// element; for a view over a range-partitioned snapshot it is the frozen
// shard handles in shard (= key) order, so the concatenated leaves hold
// every edge key in ascending order.
type leafSpan struct {
	sets []*cpma.CPMA
	off  []int // off[i] is the global id of sets[i]'s leaf 0
	n    int   // total leaves
}

func newLeafSpan(sets []*cpma.CPMA) leafSpan {
	off := make([]int, len(sets))
	n := 0
	for i, set := range sets {
		off[i] = n
		n += set.Leaves()
	}
	return leafSpan{sets: sets, off: off, n: n}
}

// locate maps a global leaf id to (set index, local leaf).
func (ls leafSpan) locate(leaf int) (int, int) {
	// Linear from the back: set counts are small (shards), and callers scan
	// forward so the common case is the last set checked.
	i := len(ls.off) - 1
	for ls.off[i] > leaf {
		i--
	}
	return i, leaf - ls.off[i]
}

// leafMap applies f to the keys of global leaf `leaf` in ascending order
// until f returns false.
func (ls leafSpan) leafMap(leaf int, f func(uint64) bool) {
	i, l := ls.locate(leaf)
	ls.sets[i].LeafMap(l, f)
}

// contribIndex is the structure-only precomputation run ownership needs:
// for every global leaf, the source vertex of the key immediately before
// the leaf's first key (so a run continuing into a leaf can be told apart
// from a run starting there). It depends only on the stored key set, not
// on the weights, so one build serves every AccumulateContrib call until
// the graph mutates.
type contribIndex struct {
	prevSrc []uint32 // source of the nearest preceding key
	hasPrev []bool   // false for leaves before the first stored key
}

func buildContribIndex(ls leafSpan) *contribIndex {
	lastSrc := make([]uint32, ls.n)
	nonEmpty := make([]bool, ls.n)
	parallel.For(ls.n, 4, func(leaf int) {
		var last uint64
		found := false
		ls.leafMap(leaf, func(k uint64) bool {
			last, found = k, true
			return true
		})
		if found {
			lastSrc[leaf] = uint32(last >> 32)
			nonEmpty[leaf] = true
		}
	})
	ci := &contribIndex{prevSrc: make([]uint32, ls.n), hasPrev: make([]bool, ls.n)}
	var prev uint32
	have := false
	for leaf := 0; leaf < ls.n; leaf++ {
		ci.prevSrc[leaf], ci.hasPrev[leaf] = prev, have
		if nonEmpty[leaf] {
			prev, have = lastSrc[leaf], true
		}
	}
	return ci
}

// accumulateContrib runs the deterministic flat scan: for every source
// vertex s with at least one stored edge, acc[s] = sum of w[dst] over s's
// edges in ascending key order, written exactly once. Entries for vertices
// without edges are not touched.
func accumulateContrib(ls leafSpan, ci *contribIndex, w, acc []float64) {
	parallel.For(ls.n, 4, func(leaf int) {
		var curSrc uint32
		sum := 0.0
		active := false   // current run is owned by this task
		skipping := false // leading continuation run, owned by an earlier leaf
		first := true
		ls.leafMap(leaf, func(k uint64) bool {
			src := uint32(k >> 32)
			if first {
				first = false
				curSrc = src
				if ci.hasPrev[leaf] && src == ci.prevSrc[leaf] {
					skipping = true
					return true
				}
				active, sum = true, w[uint32(k)]
				return true
			}
			if src == curSrc {
				if !skipping {
					sum += w[uint32(k)]
				}
				return true
			}
			if active {
				acc[curSrc] = sum // run ended inside this leaf
			}
			skipping = false
			active, curSrc, sum = true, src, w[uint32(k)]
			return true
		})
		if !active {
			return // empty leaf, or entirely a continuation run
		}
		// The leaf's last run may continue into the following leaves (and
		// across shard handles); this task owns it to its end.
		for l := leaf + 1; l < ls.n; l++ {
			done := false
			ls.leafMap(l, func(k uint64) bool {
				if uint32(k>>32) != curSrc {
					done = true
					return false
				}
				sum += w[uint32(k)]
				return true
			})
			if done {
				break
			}
		}
		acc[curSrc] = sum
	})
}

// buildIndex reconstructs per-vertex cursors and degrees over a leaf span
// with one parallel pass — the §6 index rebuild, shared by the single-CPMA
// graph and the sharded view (where the pass covers every frozen shard's
// leaves under one global numbering, so the per-shard builds run in
// parallel for free). Cursors pack globalLeaf<<32 | index-within-leaf;
// noCursor marks degree-0 vertices.
func buildIndex(ls leafSpan, nv int) (deg []int32, cursors []uint64) {
	deg = make([]int32, nv)
	cursors = make([]uint64, nv)
	for i := range cursors {
		cursors[i] = noCursor
	}
	parallel.For(ls.n, 4, func(leaf int) {
		idx := 0
		runSrc := uint32(0)
		runCount := int32(0)
		ls.leafMap(leaf, func(k uint64) bool {
			src := uint32(k >> 32)
			if idx == 0 || src != runSrc {
				if runCount > 0 {
					atomicAddInt32(&deg[runSrc], runCount)
				}
				runSrc, runCount = src, 0
				cursorMin(&cursors[src], uint64(leaf)<<32|uint64(idx))
			}
			runCount++
			idx++
			return true
		})
		if runCount > 0 {
			atomicAddInt32(&deg[runSrc], runCount)
		}
	})
	return deg, cursors
}

// neighbors streams the destinations of v's stored edges in ascending
// order until f returns false, walking the leaf span from v's cursor.
func neighbors(ls leafSpan, deg []int32, cursors []uint64, v uint32, f func(u uint32) bool) {
	cur := cursors[v]
	if cur == noCursor {
		return
	}
	leaf := int(cur >> 32)
	skip := int(uint32(cur))
	remaining := int(deg[v])
	for l := leaf; remaining > 0 && l < ls.n; l++ {
		ls.leafMap(l, func(k uint64) bool {
			if skip > 0 {
				skip--
				return true
			}
			remaining--
			if !f(uint32(k)) {
				remaining = 0
				return false
			}
			return remaining > 0
		})
	}
}

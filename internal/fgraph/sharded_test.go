package fgraph

import (
	"errors"
	"testing"

	"repro/internal/graph"
	"repro/internal/workload"
)

// TestVertexZeroEdges is the regression test for the edge-(0,0) hole:
// src=0,dst=0 packs to key 0, which the sharded pipeline reserves. All
// other vertex-0 edges must behave as ordinary edges in both flavors.
func TestVertexZeroEdges(t *testing.T) {
	edges := []workload.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 0},
		{Src: 0, Dst: 5}, {Src: 5, Dst: 0},
		{Src: 2, Dst: 3},
	}

	check := func(t *testing.T, g graph.Graph) {
		t.Helper()
		if g.Degree(0) != 2 {
			t.Fatalf("Degree(0) = %d, want 2", g.Degree(0))
		}
		var nbrs []uint32
		g.Neighbors(0, func(u uint32) bool { nbrs = append(nbrs, u); return true })
		if len(nbrs) != 2 || nbrs[0] != 1 || nbrs[1] != 5 {
			t.Fatalf("Neighbors(0) = %v, want [1 5]", nbrs)
		}
		if g.Degree(1) != 1 || g.Degree(5) != 1 {
			t.Fatalf("degrees of vertex-0 peers: %d %d", g.Degree(1), g.Degree(5))
		}
	}

	t.Run("single", func(t *testing.T) {
		// Graph silently drops (0,0), keeping every other edge.
		g := FromEdges(8, append([]workload.Edge{{Src: 0, Dst: 0}}, edges...), nil)
		if g.NumEdges() != int64(len(edges)) {
			t.Fatalf("NumEdges = %d, want %d ((0,0) should be dropped)", g.NumEdges(), len(edges))
		}
		g.EnsureIndex()
		check(t, g)
	})

	t.Run("sharded", func(t *testing.T) {
		g := NewSharded(8, 2, nil)
		defer g.Close()
		// A batch containing (0,0) is rejected whole, before enqueue.
		err := g.InsertEdges(append([]workload.Edge{{Src: 0, Dst: 0}}, edges...))
		if !errors.Is(err, ErrEdgeZeroZero) {
			t.Fatalf("InsertEdges with (0,0): err = %v, want ErrEdgeZeroZero", err)
		}
		if err := g.InsertEdgeKeys([]uint64{0, 7}, false); !errors.Is(err, ErrEdgeZeroZero) {
			t.Fatalf("InsertEdgeKeys unsorted with key 0: err = %v", err)
		}
		if err := g.InsertEdgeKeys([]uint64{0, 7}, true); !errors.Is(err, ErrEdgeZeroZero) {
			t.Fatalf("InsertEdgeKeys sorted with key 0: err = %v", err)
		}
		if err := g.DeleteEdges([]workload.Edge{{Src: 0, Dst: 0}}); !errors.Is(err, ErrEdgeZeroZero) {
			t.Fatalf("DeleteEdges with (0,0): err = %v", err)
		}
		g.Flush()
		if g.NumEdges() != 0 {
			t.Fatalf("rejected batches must enqueue nothing; NumEdges = %d", g.NumEdges())
		}
		if err := g.InsertEdges(edges); err != nil {
			t.Fatalf("InsertEdges: %v", err)
		}
		g.Flush()
		check(t, g.View())
	})
}

// TestShardedMatchesSingleAfterFlush checks the basic equivalence: the same
// edge sequence through the async sharded pipeline and the phased
// single-CPMA graph yields byte-identical structure and algorithm results
// once flushed.
func TestShardedMatchesSingleAfterFlush(t *testing.T) {
	const scale = 10
	nv := 1 << scale
	r := workload.NewRNG(42)
	edges := workload.Symmetrize(workload.RMAT(r, 20000, scale, workload.DefaultRMAT()))

	ref := FromEdges(nv, edges, nil)
	ref.EnsureIndex()

	for _, shards := range []int{1, 4} {
		g := NewSharded(nv, shards, nil)
		// Feed in several async batches to exercise the pipeline.
		for i := 0; i < len(edges); i += 4096 {
			end := i + 4096
			if end > len(edges) {
				end = len(edges)
			}
			if err := g.InsertEdges(edges[i:end]); err != nil {
				t.Fatalf("shards=%d InsertEdges: %v", shards, err)
			}
		}
		g.Flush()
		v := g.View()
		if v.NumEdges() != ref.NumEdges() {
			t.Fatalf("shards=%d: NumEdges %d vs %d", shards, v.NumEdges(), ref.NumEdges())
		}
		if v.LagKeys() != 0 {
			t.Fatalf("shards=%d: LagKeys %d after Flush", shards, v.LagKeys())
		}
		wantKeys := ref.Set().Keys()
		gotKeys := v.Snapshot().Keys()
		if len(wantKeys) != len(gotKeys) {
			t.Fatalf("shards=%d: key counts %d vs %d", shards, len(gotKeys), len(wantKeys))
		}
		for i := range wantKeys {
			if wantKeys[i] != gotKeys[i] {
				t.Fatalf("shards=%d: key[%d] = %#x, want %#x", shards, i, gotKeys[i], wantKeys[i])
			}
		}
		for u := 0; u < nv; u++ {
			if v.Degree(uint32(u)) != ref.Degree(uint32(u)) {
				t.Fatalf("shards=%d: Degree(%d) %d vs %d", shards, u, v.Degree(uint32(u)), ref.Degree(uint32(u)))
			}
		}
		wantBFS := graph.BFS(ref, 0)
		gotBFS := graph.BFS(v, 0)
		wantPR := graph.PageRank(ref, 10)
		gotPR := graph.PageRank(v, 10)
		wantCC := graph.ConnectedComponents(ref)
		gotCC := graph.ConnectedComponents(v)
		for i := 0; i < nv; i++ {
			if gotBFS[i] != wantBFS[i] {
				t.Fatalf("shards=%d: BFS[%d] %d vs %d", shards, i, gotBFS[i], wantBFS[i])
			}
			if gotPR[i] != wantPR[i] {
				t.Fatalf("shards=%d: PR[%d] not bit-identical: %g vs %g", shards, i, gotPR[i], wantPR[i])
			}
			if gotCC[i] != wantCC[i] {
				t.Fatalf("shards=%d: CC[%d] %d vs %d", shards, i, gotCC[i], wantCC[i])
			}
		}
		g.Close()
		// Views outlive Close.
		if v.Degree(0) != ref.Degree(0) {
			t.Fatal("view unusable after Close")
		}
	}
}

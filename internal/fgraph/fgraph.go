// Package fgraph implements F-Graph (paper §6): a dynamic-graph system
// storing the whole graph — vertices and edges — in a single batch-parallel
// CPMA. Edges are 64-bit keys with the source in the upper 32 bits and the
// destination in the lower 32; delta compression elides the source in all
// but the first edge per leaf, so the vertex array of CSR disappears
// entirely ("the F in F-Graph comes from the musical key of F, which has
// one flat").
//
// Per-vertex access is restored on demand by BuildIndex, which reconstructs
// a cursor (leaf, offset) and the degree for every vertex with one parallel
// pass over the CPMA leaves — the "fixed cost to reconstruct the vertex
// array of offsets" the paper measures inside each algorithm's runtime.
package fgraph

import (
	"sync/atomic"

	"repro/internal/cpma"
	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/workload"
)

// Graph is a dynamic undirected graph on a single CPMA. One writer at a
// time; batch updates and algorithms are phased, as in the paper.
type Graph struct {
	set     *cpma.CPMA
	nv      int
	indexed bool
	deg     []int32
	cursors []uint64 // leaf<<32 | index-within-leaf; noCursor when degree 0
}

const noCursor = ^uint64(0)

// New returns an empty graph over a vertex-id space of numVertices.
func New(numVertices int, opts *cpma.Options) *Graph {
	return &Graph{set: cpma.New(opts), nv: numVertices}
}

// FromEdges builds a graph from a (typically symmetrized) edge list.
func FromEdges(numVertices int, edges []workload.Edge, opts *cpma.Options) *Graph {
	g := New(numVertices, opts)
	g.InsertEdges(edges)
	return g
}

// InsertEdges adds a batch of directed edges (undirected graphs pass both
// directions, e.g. via workload.Symmetrize), returning the number of edges
// that were new. Duplicates are absorbed by the set semantics.
func (g *Graph) InsertEdges(edges []workload.Edge) int {
	g.indexed = false
	return g.set.InsertBatch(workload.EdgeKeys(edges), false)
}

// DeleteEdges removes a batch of directed edges, returning how many were
// present.
func (g *Graph) DeleteEdges(edges []workload.Edge) int {
	g.indexed = false
	return g.set.RemoveBatch(workload.EdgeKeys(edges), false)
}

// InsertEdgeKeys inserts pre-packed src<<32|dst keys (the benchmark hot
// path, avoiding the Edge struct round trip).
func (g *Graph) InsertEdgeKeys(keys []uint64, sorted bool) int {
	g.indexed = false
	return g.set.InsertBatch(keys, sorted)
}

// NumVertices returns the vertex-id space.
func (g *Graph) NumVertices() int { return g.nv }

// NumEdges returns the number of stored directed edges.
func (g *Graph) NumEdges() int64 { return int64(g.set.Len()) }

// SizeBytes returns the memory footprint of the graph container (just the
// CPMA — there is no vertex array).
func (g *Graph) SizeBytes() uint64 { return g.set.SizeBytes() }

// Set exposes the underlying CPMA (read-only use).
func (g *Graph) Set() *cpma.CPMA { return g.set }

// Indexed reports whether the vertex index is current.
func (g *Graph) Indexed() bool { return g.indexed }

// BuildIndex reconstructs the per-vertex cursors and degrees with one
// parallel pass over the CPMA leaves. Algorithms that need per-vertex
// access must run it after any mutation; the paper includes this cost in
// every algorithm's measured time except PR's flat scans.
func (g *Graph) BuildIndex() {
	deg := make([]int32, g.nv)
	cursors := make([]uint64, g.nv)
	for i := range cursors {
		cursors[i] = noCursor
	}
	leaves := g.set.Leaves()
	parallel.For(leaves, 4, func(leaf int) {
		idx := 0
		runSrc := uint32(0)
		runCount := int32(0)
		g.set.LeafMap(leaf, func(k uint64) bool {
			src := uint32(k >> 32)
			if idx == 0 || src != runSrc {
				if runCount > 0 {
					atomic.AddInt32(&deg[runSrc], runCount)
				}
				runSrc, runCount = src, 0
				cursorMin(&cursors[src], uint64(leaf)<<32|uint64(idx))
			}
			runCount++
			idx++
			return true
		})
		if runCount > 0 {
			atomic.AddInt32(&deg[runSrc], runCount)
		}
	})
	g.deg = deg
	g.cursors = cursors
	g.indexed = true
}

// EnsureIndex rebuilds the index if a mutation invalidated it. Must be
// called from a single goroutine before parallel per-vertex access.
func (g *Graph) EnsureIndex() {
	if !g.indexed {
		g.BuildIndex()
	}
}

func cursorMin(addr *uint64, v uint64) {
	for {
		old := atomic.LoadUint64(addr)
		if v >= old {
			return
		}
		if atomic.CompareAndSwapUint64(addr, old, v) {
			return
		}
	}
}

// Degree returns the out-degree of v. The index must be current.
func (g *Graph) Degree(v uint32) int {
	g.mustIndex()
	return int(g.deg[v])
}

// Neighbors applies f to the destinations of v's stored edges in ascending
// order until f returns false. The index must be current.
func (g *Graph) Neighbors(v uint32, f func(u uint32) bool) {
	g.mustIndex()
	cur := g.cursors[v]
	if cur == noCursor {
		return
	}
	leaf := int(cur >> 32)
	skip := int(uint32(cur))
	remaining := int(g.deg[v])
	for l := leaf; remaining > 0 && l < g.set.Leaves(); l++ {
		g.set.LeafMap(l, func(k uint64) bool {
			if skip > 0 {
				skip--
				return true
			}
			remaining--
			if !f(uint32(k)) {
				remaining = 0
				return false
			}
			return remaining > 0
		})
	}
}

// AccumulateContrib implements graph.ContribScanner: one flat parallel scan
// over the CPMA accumulating accBits[src] += w[dst] per stored edge, with
// run-local sums flushed by CAS only at source changes and leaf boundaries.
func (g *Graph) AccumulateContrib(w []float64, accBits []uint64) {
	leaves := g.set.Leaves()
	parallel.For(leaves, 4, func(leaf int) {
		first := true
		runSrc := uint32(0)
		sum := 0.0
		g.set.LeafMap(leaf, func(k uint64) bool {
			src := uint32(k >> 32)
			if first || src != runSrc {
				if !first && sum != 0 {
					graph.AtomicAddFloatBits(&accBits[runSrc], sum)
				}
				runSrc, sum, first = src, 0, false
			}
			sum += w[uint32(k)]
			return true
		})
		if !first && sum != 0 {
			graph.AtomicAddFloatBits(&accBits[runSrc], sum)
		}
	})
}

func (g *Graph) mustIndex() {
	if !g.indexed {
		panic("fgraph: vertex index stale; call EnsureIndex/BuildIndex after mutations")
	}
}

// Interface conformance checks.
var (
	_ graph.Graph          = (*Graph)(nil)
	_ graph.ContribScanner = (*Graph)(nil)
)

// Package fgraph implements F-Graph (paper §6): a dynamic-graph system
// storing the whole graph — vertices and edges — in a single batch-parallel
// CPMA. Edges are 64-bit keys with the source in the upper 32 bits and the
// destination in the lower 32; delta compression elides the source in all
// but the first edge per leaf, so the vertex array of CSR disappears
// entirely ("the F in F-Graph comes from the musical key of F, which has
// one flat").
//
// Per-vertex access is restored on demand by BuildIndex, which reconstructs
// a cursor (leaf, offset) and the degree for every vertex with one parallel
// pass over the CPMA leaves — the "fixed cost to reconstruct the vertex
// array of offsets" the paper measures inside each algorithm's runtime.
//
// Two flavors share those kernels:
//
//   - Graph (this file) is the paper's phased single-CPMA system: one
//     writer, mutations and analytics strictly alternating.
//   - Sharded (sharded.go) stripes the edge keys across a range-partitioned
//     concurrent shard.Sharded and serves analytics from immutable epoch-
//     snapshot Views (view.go) while edge batches keep streaming through
//     the async ingest pipeline — no phasing.
//
// # Edge (0,0)
//
// Key 0 is reserved by the CPMA (and the sharded pipeline panics on it),
// and edge (0,0) — a self-loop on vertex 0 — packs to exactly key 0. The
// two flavors resolve the collision differently: Graph drops the edge
// silently (workload.EdgeKeys filters it, matching Symmetrize, which drops
// every self-loop), while Sharded rejects any batch containing it with
// ErrEdgeZeroZero before enqueueing — an async pipeline cannot afford a
// deferred panic in a writer goroutine. All other vertex-0 edges ((0, k)
// and (k, 0), k != 0) are ordinary keys in both flavors.
package fgraph

import (
	"errors"
	"sync/atomic"

	"repro/internal/cpma"
	"repro/internal/graph"
	"repro/internal/workload"
)

// ErrEdgeZeroZero is returned by the Sharded mutation paths when a batch
// contains the edge (0,0), which packs to the reserved key 0 and cannot be
// stored. Self-loops carry no information for the undirected kernels
// (Symmetrize drops them all), so callers typically filter rather than
// handle.
var ErrEdgeZeroZero = errors.New("fgraph: edge (0,0) packs to reserved key 0 and cannot be stored")

// Graph is a dynamic undirected graph on a single CPMA. One writer at a
// time; batch updates and algorithms are phased, as in the paper.
type Graph struct {
	set     *cpma.CPMA
	nv      int
	indexed bool
	deg     []int32
	cursors []uint64 // leaf<<32 | index-within-leaf; noCursor when degree 0
	contrib *contribIndex
}

const noCursor = ^uint64(0)

// New returns an empty graph over a vertex-id space of numVertices.
func New(numVertices int, opts *cpma.Options) *Graph {
	return &Graph{set: cpma.New(opts), nv: numVertices}
}

// FromEdges builds a graph from a (typically symmetrized) edge list.
func FromEdges(numVertices int, edges []workload.Edge, opts *cpma.Options) *Graph {
	g := New(numVertices, opts)
	g.InsertEdges(edges)
	return g
}

// InsertEdges adds a batch of directed edges (undirected graphs pass both
// directions, e.g. via workload.Symmetrize), returning the number of edges
// that were new. Duplicates are absorbed by the set semantics; the edge
// (0,0) is dropped (see the package documentation).
func (g *Graph) InsertEdges(edges []workload.Edge) int {
	g.invalidate()
	return g.set.InsertBatch(workload.EdgeKeys(edges), false)
}

// DeleteEdges removes a batch of directed edges, returning how many were
// present.
func (g *Graph) DeleteEdges(edges []workload.Edge) int {
	g.invalidate()
	return g.set.RemoveBatch(workload.EdgeKeys(edges), false)
}

// InsertEdgeKeys inserts pre-packed src<<32|dst keys (the benchmark hot
// path, avoiding the Edge struct round trip).
func (g *Graph) InsertEdgeKeys(keys []uint64, sorted bool) int {
	g.invalidate()
	return g.set.InsertBatch(keys, sorted)
}

func (g *Graph) invalidate() {
	g.indexed = false
	g.contrib = nil
}

// NumVertices returns the vertex-id space.
func (g *Graph) NumVertices() int { return g.nv }

// NumEdges returns the number of stored directed edges.
func (g *Graph) NumEdges() int64 { return int64(g.set.Len()) }

// SizeBytes returns the memory footprint of the graph container (just the
// CPMA — there is no vertex array).
func (g *Graph) SizeBytes() uint64 { return g.set.SizeBytes() }

// Set exposes the underlying CPMA (read-only use).
func (g *Graph) Set() *cpma.CPMA { return g.set }

// Indexed reports whether the vertex index is current.
func (g *Graph) Indexed() bool { return g.indexed }

// BuildIndex reconstructs the per-vertex cursors and degrees with one
// parallel pass over the CPMA leaves. Algorithms that need per-vertex
// access must run it after any mutation; the paper includes this cost in
// every algorithm's measured time except PR's flat scans.
func (g *Graph) BuildIndex() {
	g.deg, g.cursors = buildIndex(g.span(), g.nv)
	g.indexed = true
}

// EnsureIndex rebuilds the index if a mutation invalidated it. Must be
// called from a single goroutine before parallel per-vertex access.
func (g *Graph) EnsureIndex() {
	if !g.indexed {
		g.BuildIndex()
	}
}

func (g *Graph) span() leafSpan { return newLeafSpan([]*cpma.CPMA{g.set}) }

func cursorMin(addr *uint64, v uint64) {
	for {
		old := atomic.LoadUint64(addr)
		if v >= old {
			return
		}
		if atomic.CompareAndSwapUint64(addr, old, v) {
			return
		}
	}
}

// Degree returns the out-degree of v. The index must be current.
func (g *Graph) Degree(v uint32) int {
	g.mustIndex()
	return int(g.deg[v])
}

// Neighbors applies f to the destinations of v's stored edges in ascending
// order until f returns false. The index must be current.
func (g *Graph) Neighbors(v uint32, f func(u uint32) bool) {
	g.mustIndex()
	neighbors(g.span(), g.deg, g.cursors, v, f)
}

// AccumulateContrib implements graph.ContribScanner with the deterministic
// flat scan (contrib.go): one parallel pass over the CPMA leaves, each
// vertex's run owned end-to-end by one task, so acc[src] is the sequential
// ascending-order sum of w[dst] — bit-identical to a Neighbors pull and to
// the sharded view's scan of the same edge set. It does not need the vertex
// index (the §6 property: PR skips the index rebuild); the run-ownership
// precomputation is cached until the next mutation. Call from one goroutine
// at a time (the PageRank driver does).
func (g *Graph) AccumulateContrib(w []float64, acc []float64) {
	ls := g.span()
	if g.contrib == nil {
		g.contrib = buildContribIndex(ls)
	}
	accumulateContrib(ls, g.contrib, w, acc)
}

func (g *Graph) mustIndex() {
	if !g.indexed {
		panic("fgraph: vertex index stale; call EnsureIndex/BuildIndex after mutations")
	}
}

// Interface conformance checks.
var (
	_ graph.Graph          = (*Graph)(nil)
	_ graph.ContribScanner = (*Graph)(nil)
)

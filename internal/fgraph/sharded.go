package fgraph

import (
	"math/bits"
	"sync/atomic"
	"time"

	"repro/internal/cpma"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/workload"
)

// ShardedOptions tunes a sharded F-Graph beyond NewSharded's defaults.
// Partitioning is not configurable: the graph requires RangePartition (the
// vertex striping) and the async pipeline (concurrent ingest).
type ShardedOptions struct {
	// Set configures each shard's CPMA; nil selects the paper's defaults.
	Set *cpma.Options
	// MailboxDepth / CoalesceMax tune the async pipeline (0 = defaults).
	MailboxDepth int
	CoalesceMax  int
	// Rebalance starts the live vertex-range rebalancer: skewed degree
	// distributions (a power-law graph's hub vertices) load shards
	// unevenly, and the boundary monitor moves vertex-range boundaries
	// between adjacent shards while ingest continues. MaxSkew and
	// RebalanceEvery tune it as in shard.Options.
	Rebalance      bool
	MaxSkew        float64
	RebalanceEvery time.Duration
}

// Sharded is F-Graph on the concurrent pipeline: edge keys (src<<32|dst)
// striped across a range-partitioned shard.Sharded — range partitioning by
// key is vertex striping for free, each shard owning a contiguous vertex
// range — with mutations flowing through the async mailbox writers and
// analytics served from immutable epoch-snapshot Views. Unlike the phased
// single-CPMA Graph, ingest and analytics run concurrently: InsertEdges/
// DeleteEdges enqueue and return, View captures a frozen consistent cut
// with no flush barrier, and the Ligra kernels run against the View while
// the writers keep applying batches.
//
// Mutations may be issued from many goroutines (the shard pipeline's
// contract applies); Views are immutable and freely shared. Close stops
// the writers; Views outlive it. See View for the precise consistency and
// staleness contract, and the package documentation for the edge-(0,0)
// rule.
type Sharded struct {
	set *shard.Sharded
	nv  int

	// View metrics: index-build latency, capture-time ingest backlog
	// (snapshot staleness), and view counters, registered by
	// RegisterMetrics next to the underlying pipeline's surface.
	indexBuild    obs.Histogram
	viewLag       obs.Histogram
	views         atomic.Uint64
	lastViewEdges atomic.Int64
}

// NewSharded returns an empty concurrent F-Graph over numVertices vertex
// ids, striped across the given number of shards (clamped to at least 1);
// opts may be nil. The underlying set is range-partitioned over exactly
// the packed-edge key space (KeyBits = 32 + ceil(log2 numVertices)), so
// the default equal-width spans stripe the actual vertex range rather
// than the full 64-bit space.
func NewSharded(numVertices, shards int, opts *ShardedOptions) *Sharded {
	if numVertices < 1 {
		numVertices = 1
	}
	var o ShardedOptions
	if opts != nil {
		o = *opts
	}
	so := &shard.Options{
		Partition:      shard.RangePartition,
		KeyBits:        32 + bits.Len(uint(numVertices-1)),
		Set:            o.Set,
		Async:          true,
		MailboxDepth:   o.MailboxDepth,
		CoalesceMax:    o.CoalesceMax,
		Rebalance:      o.Rebalance,
		MaxSkew:        o.MaxSkew,
		RebalanceEvery: o.RebalanceEvery,
	}
	return &Sharded{set: shard.New(shards, so), nv: numVertices}
}

// packEdges packs a directed edge batch into CPMA keys, rejecting the one
// unrepresentable edge before anything is enqueued — an async writer
// goroutine cannot afford the reserved-key panic the shard layer would
// otherwise raise long after the caller returned.
func packEdges(edges []workload.Edge) ([]uint64, error) {
	keys := make([]uint64, len(edges))
	for i, e := range edges {
		k := uint64(e.Src)<<32 | uint64(e.Dst)
		if k == 0 {
			return nil, ErrEdgeZeroZero
		}
		keys[i] = k
	}
	return keys, nil
}

// InsertEdges enqueues a batch of directed edges for insertion (undirected
// graphs pass both directions, e.g. via workload.Symmetrize) and returns
// without waiting for the apply; Flush is the barrier. The whole batch is
// rejected with ErrEdgeZeroZero — nothing enqueued — if it contains the
// edge (0,0).
func (g *Sharded) InsertEdges(edges []workload.Edge) error {
	keys, err := packEdges(edges)
	if err != nil {
		return err
	}
	g.set.InsertBatchAsync(keys, false)
	return nil
}

// DeleteEdges enqueues a batch of directed edges for removal; the same
// contract as InsertEdges.
func (g *Sharded) DeleteEdges(edges []workload.Edge) error {
	keys, err := packEdges(edges)
	if err != nil {
		return err
	}
	g.set.RemoveBatchAsync(keys, false)
	return nil
}

// InsertEdgeKeys enqueues pre-packed src<<32|dst keys (the benchmark hot
// path). Key 0 is rejected with ErrEdgeZeroZero before anything is
// enqueued; a sorted batch only needs its first key checked.
func (g *Sharded) InsertEdgeKeys(keys []uint64, sorted bool) error {
	if err := checkEdgeKeys(keys, sorted); err != nil {
		return err
	}
	g.set.InsertBatchAsync(keys, sorted)
	return nil
}

// RemoveEdgeKeys enqueues pre-packed keys for removal; the same contract
// as InsertEdgeKeys.
func (g *Sharded) RemoveEdgeKeys(keys []uint64, sorted bool) error {
	if err := checkEdgeKeys(keys, sorted); err != nil {
		return err
	}
	g.set.RemoveBatchAsync(keys, sorted)
	return nil
}

func checkEdgeKeys(keys []uint64, sorted bool) error {
	if len(keys) == 0 {
		return nil
	}
	if sorted {
		if keys[0] == 0 {
			return ErrEdgeZeroZero
		}
		return nil
	}
	for _, k := range keys {
		if k == 0 {
			return ErrEdgeZeroZero
		}
	}
	return nil
}

// NumVertices returns the vertex-id space.
func (g *Sharded) NumVertices() int { return g.nv }

// NumEdges returns the number of applied directed edges (one atomic cut of
// the live shards; enqueued-but-undrained batches are not counted).
func (g *Sharded) NumEdges() int64 { return int64(g.set.Len()) }

// SizeBytes returns the summed memory footprint of the shard CPMAs.
func (g *Sharded) SizeBytes() uint64 { return g.set.SizeBytes() }

// Set exposes the underlying sharded set (stats, rebalancing, snapshots).
func (g *Sharded) Set() *shard.Sharded { return g.set }

// Flush blocks until every previously enqueued edge batch has been
// applied: the barrier that makes the next View cover them.
func (g *Sharded) Flush() { g.set.Flush() }

// Close drains and stops the shard writers. Further mutations panic;
// existing Views (and new ones — the published handles remain readable)
// keep working.
func (g *Sharded) Close() { g.set.Close() }

// View captures an immutable graph over one epoch-snapshot cut — a
// lock-free handle grab, no flush barrier — and rebuilds the §6 vertex
// index with one parallel pass over the frozen shards' leaves. Ingest
// continues concurrently; see View for the consistency contract. The
// capture-time ingest backlog is recorded as the view's staleness
// (LagKeys) and the build lands in the index-build histogram and the
// event trace.
func (g *Sharded) View() *View {
	st := g.set.IngestStats()
	var lag uint64
	if done := st.AppliedKeys + st.AbsorbedKeys; st.EnqueuedKeys > done {
		lag = st.EnqueuedKeys - done
	}
	t0 := time.Now()
	snap := g.set.Snapshot()
	ls := newLeafSpan(snap.ShardSets())
	deg, cursors := buildIndex(ls, g.nv)
	edges := int64(0)
	for _, set := range ls.sets {
		edges += int64(set.Len())
	}
	d := time.Since(t0)
	g.indexBuild.Observe(d)
	g.viewLag.Record(lag)
	g.views.Add(1)
	g.lastViewEdges.Store(edges)
	g.set.Trace().Record(-1, obs.EvIndex, 0, 0, uint64(edges), uint64(d))
	return &View{
		snap:       snap,
		ls:         ls,
		nv:         g.nv,
		edges:      edges,
		deg:        deg,
		cursors:    cursors,
		capturedAt: t0,
		lagKeys:    lag,
	}
}

// RegisterMetrics registers the graph-level metrics (index-build latency,
// view-staleness histogram, view counters) into r under prefix ("fgraph"
// when empty), plus the whole underlying pipeline surface under
// prefix+"_set".
func (g *Sharded) RegisterMetrics(r *obs.Registry, prefix string) {
	if prefix == "" {
		prefix = "fgraph"
	}
	r.RegisterHistogram(prefix+"_index_build_ns", "ns", "one View capture: snapshot grab plus per-shard parallel index build", &g.indexBuild)
	r.RegisterHistogram(prefix+"_view_lag_keys", "keys", "ingest backlog (enqueued-unapplied keys) at View capture — snapshot staleness", &g.viewLag)
	r.CounterFunc(prefix+"_views_built", "views", "Views captured", g.views.Load)
	r.GaugeFunc(prefix+"_view_edges", "edges", "directed edges in the most recent View", g.lastViewEdges.Load)
	g.set.RegisterMetrics(r, prefix+"_set")
}

// Interface conformance: a View serves the Ligra kernels with the sharded
// flat-scan PR path.
var (
	_ graph.Graph          = (*View)(nil)
	_ graph.ContribScanner = (*View)(nil)
)

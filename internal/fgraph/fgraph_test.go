package fgraph

import (
	"math"
	"math/rand"
	"slices"
	"testing"

	"repro/internal/graph"
	"repro/internal/workload"
)

func ring(n int) []workload.Edge {
	var edges []workload.Edge
	for i := 0; i < n; i++ {
		edges = append(edges, workload.Edge{Src: uint32(i), Dst: uint32((i + 1) % n)})
	}
	return workload.Symmetrize(edges)
}

func TestBuildAndDegrees(t *testing.T) {
	g := FromEdges(10, ring(10), nil)
	g.EnsureIndex()
	if g.NumEdges() != 20 {
		t.Fatalf("NumEdges = %d", g.NumEdges())
	}
	for v := uint32(0); v < 10; v++ {
		if g.Degree(v) != 2 {
			t.Fatalf("Degree(%d) = %d", v, g.Degree(v))
		}
	}
}

func TestNeighborsSortedAndComplete(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	nv := 200
	adj := make(map[uint32]map[uint32]bool)
	var edges []workload.Edge
	for i := 0; i < 3000; i++ {
		a, b := uint32(r.Intn(nv)), uint32(r.Intn(nv))
		if a == b {
			continue
		}
		edges = append(edges, workload.Edge{Src: a, Dst: b})
		if adj[a] == nil {
			adj[a] = map[uint32]bool{}
		}
		if adj[b] == nil {
			adj[b] = map[uint32]bool{}
		}
		adj[a][b] = true
		adj[b][a] = true
	}
	g := FromEdges(nv, workload.Symmetrize(edges), nil)
	g.EnsureIndex()
	for v := uint32(0); v < uint32(nv); v++ {
		var got []uint32
		g.Neighbors(v, func(u uint32) bool {
			got = append(got, u)
			return true
		})
		want := make([]uint32, 0, len(adj[v]))
		for u := range adj[v] {
			want = append(want, u)
		}
		slices.Sort(want)
		if !slices.Equal(got, want) {
			t.Fatalf("Neighbors(%d): got %v, want %v", v, got, want)
		}
		if g.Degree(v) != len(want) {
			t.Fatalf("Degree(%d) = %d, want %d", v, g.Degree(v), len(want))
		}
	}
}

func TestNeighborsEarlyStop(t *testing.T) {
	g := FromEdges(5, workload.Symmetrize([]workload.Edge{{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 0, Dst: 3}}), nil)
	g.EnsureIndex()
	calls := 0
	g.Neighbors(0, func(uint32) bool {
		calls++
		return calls < 2
	})
	if calls != 2 {
		t.Fatalf("early stop after %d calls", calls)
	}
}

func TestInsertDeleteEdges(t *testing.T) {
	g := New(8, nil)
	added := g.InsertEdges(workload.Symmetrize([]workload.Edge{{Src: 1, Dst: 2}, {Src: 2, Dst: 3}}))
	if added != 4 {
		t.Fatalf("added = %d", added)
	}
	// Duplicate insert adds nothing.
	if again := g.InsertEdges(workload.Symmetrize([]workload.Edge{{Src: 1, Dst: 2}})); again != 0 {
		t.Fatalf("duplicate added = %d", again)
	}
	removed := g.DeleteEdges(workload.Symmetrize([]workload.Edge{{Src: 2, Dst: 3}, {Src: 6, Dst: 7}}))
	if removed != 2 {
		t.Fatalf("removed = %d", removed)
	}
	g.EnsureIndex()
	if g.Degree(2) != 1 || g.Degree(3) != 0 {
		t.Fatalf("degrees after delete: %d %d", g.Degree(2), g.Degree(3))
	}
}

func TestIndexInvalidation(t *testing.T) {
	g := FromEdges(4, ring(4), nil)
	g.EnsureIndex()
	g.InsertEdges([]workload.Edge{{Src: 0, Dst: 2}})
	if g.Indexed() {
		t.Fatal("index should be stale after mutation")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on stale index access")
		}
	}()
	g.Degree(0)
}

func TestAccumulateContribMatchesNeighbors(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	nv := 300
	var edges []workload.Edge
	for i := 0; i < 5000; i++ {
		a, b := uint32(r.Intn(nv)), uint32(r.Intn(nv))
		if a != b {
			edges = append(edges, workload.Edge{Src: a, Dst: b})
		}
	}
	g := FromEdges(nv, workload.Symmetrize(edges), nil)
	g.EnsureIndex()
	w := make([]float64, nv)
	for i := range w {
		w[i] = r.Float64()
	}
	acc := make([]float64, nv)
	g.AccumulateContrib(w, acc)
	for v := 0; v < nv; v++ {
		want := 0.0
		g.Neighbors(uint32(v), func(u uint32) bool {
			want += w[u]
			return true
		})
		// The flat scan sums each vertex's run sequentially in ascending
		// order — the same order as the Neighbors pull — so the match is
		// exact, not approximate.
		if acc[v] != want {
			t.Fatalf("contrib[%d] = %g, want %g (not bit-identical)", v, acc[v], want)
		}
	}
}

func TestAlgorithmsRunOnFGraph(t *testing.T) {
	// A ring has uniform PR, one component, and known BC values.
	n := 64
	g := FromEdges(n, ring(n), nil)
	g.EnsureIndex()
	rank := graph.PageRank(g, 10)
	for i := 1; i < n; i++ {
		if math.Abs(rank[i]-rank[0]) > 1e-12 {
			t.Fatalf("ring PR not uniform: %g vs %g", rank[i], rank[0])
		}
	}
	labels := graph.ConnectedComponents(g)
	for i := range labels {
		if labels[i] != 0 {
			t.Fatalf("labels[%d] = %d", i, labels[i])
		}
	}
	bc := graph.BC(g, 0)
	if bc[0] != 0 {
		t.Fatal("BC of source must be 0")
	}
	// Symmetry of the ring around the source.
	for i := 1; i < n/2; i++ {
		if math.Abs(bc[i]-bc[n-i]) > 1e-9 {
			t.Fatalf("BC asymmetry at %d: %g vs %g", i, bc[i], bc[n-i])
		}
	}
}

func TestLargeRMATGraphConsistency(t *testing.T) {
	rng := workload.NewRNG(7)
	edges := workload.Symmetrize(workload.RMAT(rng, 50_000, 12, workload.DefaultRMAT()))
	g := FromEdges(1<<12, edges, nil)
	g.EnsureIndex()
	// Sum of degrees equals stored edges.
	total := 0
	for v := 0; v < g.NumVertices(); v++ {
		total += g.Degree(uint32(v))
	}
	if int64(total) != g.NumEdges() {
		t.Fatalf("degree sum %d != edges %d", total, g.NumEdges())
	}
}

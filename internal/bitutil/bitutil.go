// Package bitutil provides small bit-twiddling helpers shared by the PMA,
// CPMA, and codec packages.
package bitutil

import "math/bits"

// Log2Floor returns floor(log2(v)). Log2Floor(0) == 0.
func Log2Floor(v uint64) int {
	if v == 0 {
		return 0
	}
	return bits.Len64(v) - 1
}

// Log2Ceil returns ceil(log2(v)). Log2Ceil(0) == 0 and Log2Ceil(1) == 0.
func Log2Ceil(v uint64) int {
	if v <= 1 {
		return 0
	}
	return bits.Len64(v - 1)
}

// CeilPow2 rounds v up to the next power of two. CeilPow2(0) == 1.
func CeilPow2(v uint64) uint64 {
	if v <= 1 {
		return 1
	}
	return 1 << uint(bits.Len64(v-1))
}

// CeilDiv returns ceil(a/b) for b > 0.
func CeilDiv(a, b int) int {
	return (a + b - 1) / b
}

// Min returns the smaller of a and b.
func Min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Max returns the larger of a and b.
func Max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

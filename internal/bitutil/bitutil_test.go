package bitutil

import (
	"math/bits"
	"testing"
	"testing/quick"
)

func TestLog2Floor(t *testing.T) {
	cases := []struct {
		in   uint64
		want int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2}, {7, 2}, {8, 3},
		{1 << 40, 40}, {(1 << 40) + 1, 40}, {^uint64(0), 63},
	}
	for _, c := range cases {
		if got := Log2Floor(c.in); got != c.want {
			t.Errorf("Log2Floor(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestLog2Ceil(t *testing.T) {
	cases := []struct {
		in   uint64
		want int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4},
		{1 << 40, 40}, {(1 << 40) + 1, 41},
	}
	for _, c := range cases {
		if got := Log2Ceil(c.in); got != c.want {
			t.Errorf("Log2Ceil(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestCeilPow2(t *testing.T) {
	cases := []struct{ in, want uint64 }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {1000, 1024},
		{1 << 62, 1 << 62}, {(1 << 62) - 1, 1 << 62},
	}
	for _, c := range cases {
		if got := CeilPow2(c.in); got != c.want {
			t.Errorf("CeilPow2(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestCeilPow2Property(t *testing.T) {
	f := func(v uint64) bool {
		v >>= 2 // keep in range where next pow2 exists
		p := CeilPow2(v)
		if p < v {
			return false
		}
		if v > 1 && p/2 >= v {
			return false // not minimal
		}
		return bits.OnesCount64(p) == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCeilDivMinMax(t *testing.T) {
	if CeilDiv(10, 3) != 4 || CeilDiv(9, 3) != 3 || CeilDiv(0, 5) != 0 || CeilDiv(1, 1) != 1 {
		t.Error("CeilDiv wrong")
	}
	if Min(2, 3) != 2 || Min(3, 2) != 2 || Max(2, 3) != 3 || Max(3, 2) != 3 {
		t.Error("Min/Max wrong")
	}
}

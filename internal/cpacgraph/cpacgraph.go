// Package cpacgraph is the C-PaC dynamic-graph baseline (paper §6): the
// CPAM library's graph mode, with one compressed PaC edge tree per vertex
// (block size 256, the library default) under a vertex tree modeled at 32
// bytes per vertex.
package cpacgraph

import (
	"repro/internal/treegraph"
	"repro/internal/workload"
)

// Graph is a C-PaC-style dynamic graph.
type Graph = treegraph.Graph

// New returns an empty C-PaC graph.
func New(numVertices int) *Graph {
	return treegraph.New(numVertices, config())
}

// FromEdges builds a C-PaC graph from a symmetrized edge list.
func FromEdges(numVertices int, edges []workload.Edge) *Graph {
	return treegraph.FromEdges(numVertices, edges, config())
}

func config() treegraph.Config {
	return treegraph.Config{
		Name:            "C-PaC",
		BlockMax:        256,
		Compressed:      true,
		VertexNodeBytes: 32,
	}
}

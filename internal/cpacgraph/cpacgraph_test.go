package cpacgraph

import (
	"slices"
	"testing"

	"repro/internal/workload"
)

func TestCPaCGraphBasics(t *testing.T) {
	edges := workload.Symmetrize([]workload.Edge{{Src: 0, Dst: 1}, {Src: 0, Dst: 3}})
	g := FromEdges(4, edges)
	if g.Name() != "C-PaC" {
		t.Fatalf("Name = %s", g.Name())
	}
	var got []uint32
	g.Neighbors(0, func(u uint32) bool {
		got = append(got, u)
		return true
	})
	if !slices.Equal(got, []uint32{1, 3}) {
		t.Fatalf("Neighbors(0) = %v", got)
	}
	removed := g.DeleteEdges(workload.Symmetrize([]workload.Edge{{Src: 0, Dst: 1}}))
	if removed != 2 || g.NumEdges() != 2 {
		t.Fatalf("removed=%d edges=%d", removed, g.NumEdges())
	}
}

package codec

import (
	"math/rand"
	"slices"
	"testing"
	"testing/quick"
)

func TestLen(t *testing.T) {
	cases := []struct {
		v    uint64
		want int
	}{
		{0, 1}, {1, 1}, {127, 1}, {128, 2}, {16383, 2}, {16384, 3},
		{1 << 21, 4}, {(1 << 21) - 1, 3}, {1<<63 - 1, 9}, {1 << 63, 10}, {^uint64(0), 10},
	}
	for _, c := range cases {
		if got := Len(c.v); got != c.want {
			t.Errorf("Len(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	var buf [MaxLen]byte
	f := func(v uint64) bool {
		n := Put(buf[:], v)
		if n != Len(v) {
			return false
		}
		got, m := Get(buf[:])
		return got == v && m == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNoZeroBytesForPositiveValues(t *testing.T) {
	var buf [MaxLen]byte
	f := func(v uint64) bool {
		if v == 0 {
			v = 1
		}
		n := Put(buf[:], v)
		for _, b := range buf[:n] {
			if b == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func randRun(r *rand.Rand, n int) []uint64 {
	set := map[uint64]bool{}
	for len(set) < n {
		set[1+r.Uint64()%(1<<40)] = true
	}
	out := make([]uint64, 0, n)
	for k := range set {
		out = append(out, k)
	}
	slices.Sort(out)
	return out
}

func TestEncodeDecodeRun(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for _, n := range []int{1, 2, 3, 50, 1000} {
		run := randRun(r, n)
		size := SizeOfRun(run)
		buf := make([]byte, size)
		if got := EncodeRun(buf, run); got != size {
			t.Fatalf("EncodeRun wrote %d, SizeOfRun said %d", got, size)
		}
		back := DecodeRun(nil, buf, size)
		if !slices.Equal(back, run) {
			t.Fatalf("n=%d round trip mismatch", n)
		}
		if got := CountRun(buf, size); got != n {
			t.Fatalf("CountRun = %d, want %d", got, n)
		}
		if Head(buf) != run[0] {
			t.Fatalf("Head = %d, want %d", Head(buf), run[0])
		}
	}
}

func TestEncodeRunEmptyAndZeroUsed(t *testing.T) {
	if SizeOfRun(nil) != 0 {
		t.Fatal("SizeOfRun(nil) != 0")
	}
	if got := DecodeRun(nil, nil, 0); got != nil {
		t.Fatalf("DecodeRun empty = %v", got)
	}
	if CountRun(nil, 0) != 0 {
		t.Fatal("CountRun empty != 0")
	}
}

func TestDecodeRunAppends(t *testing.T) {
	run := []uint64{10, 20, 30}
	buf := make([]byte, SizeOfRun(run))
	n := EncodeRun(buf, run)
	got := DecodeRun([]uint64{1, 2}, buf, n)
	want := []uint64{1, 2, 10, 20, 30}
	if !slices.Equal(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestPutHeadOverwrite(t *testing.T) {
	run := []uint64{100, 200}
	buf := make([]byte, SizeOfRun(run))
	EncodeRun(buf, run)
	PutHead(buf, 99)
	if Head(buf) != 99 {
		t.Fatalf("Head after PutHead = %d", Head(buf))
	}
}

func TestSizeOfRunMatchesEncode(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		run := randRun(r, 1+int(r.Int31n(200)))
		buf := make([]byte, SizeOfRun(run)+MaxLen)
		return EncodeRun(buf, run) == SizeOfRun(run)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func BenchmarkDecodeRun(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	run := randRun(r, 4096)
	buf := make([]byte, SizeOfRun(run))
	used := EncodeRun(buf, run)
	dst := make([]uint64, 0, len(run))
	b.SetBytes(int64(used))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = DecodeRun(dst[:0], buf, used)
	}
}

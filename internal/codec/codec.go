// Package codec implements the delta-encoding byte codes the CPMA and the
// compressed PaC-tree blocks use (paper §5, "Data compression techniques").
//
// A value is stored as a little-endian sequence of bytes carrying 7 payload
// bits each; the high bit of every byte except the last is a continue bit.
// Deltas between distinct sorted keys are always >= 1, so no emitted byte is
// 0x00 — which lets compressed leaves use a zero byte as the end-of-data /
// empty-cell marker, exactly like the reference implementation.
package codec

import "math/bits"

// MaxLen is the longest byte code for a uint64 (ceil(64/7) bytes).
const MaxLen = 10

// Len returns the number of bytes Put would write for v. Len(0) == 1.
func Len(v uint64) int {
	return (bits.Len64(v|1) + 6) / 7
}

// Put writes the byte code of v at the start of dst and returns the number
// of bytes written. dst must have room (MaxLen bytes always suffice).
func Put(dst []byte, v uint64) int {
	i := 0
	for v >= 0x80 {
		dst[i] = byte(v) | 0x80
		v >>= 7
		i++
	}
	dst[i] = byte(v)
	return i + 1
}

// Get decodes a byte code from the start of src, returning the value and the
// number of bytes consumed. It assumes a well-formed code produced by Put.
func Get(src []byte) (v uint64, n int) {
	var shift uint
	for {
		b := src[n]
		v |= uint64(b&0x7f) << shift
		n++
		if b < 0x80 {
			return v, n
		}
		shift += 7
	}
}

// SizeOfRun returns the encoded size in bytes of a sorted, duplicate-free
// run of keys when stored as an 8-byte uncompressed head followed by delta
// byte codes. SizeOfRun(nil) == 0.
func SizeOfRun(elems []uint64) int {
	if len(elems) == 0 {
		return 0
	}
	size := HeadBytes
	for i := 1; i < len(elems); i++ {
		size += Len(elems[i] - elems[i-1])
	}
	return size
}

// HeadBytes is the size of the uncompressed head that precedes the delta
// codes in a compressed leaf or block.
const HeadBytes = 8

// MaxGrowth bounds how many bytes a single insertion can add to an encoded
// run: replacing one delta (>=1 byte) with two deltas of up to MaxLen bytes
// each, or prepending a new head. 2*MaxLen - 1 covers both cases.
const MaxGrowth = 2*MaxLen - 1

// EncodeRun writes elems (sorted, duplicate-free, non-empty) to dst as a
// head + delta codes and returns the bytes written. dst must have at least
// SizeOfRun(elems) bytes.
func EncodeRun(dst []byte, elems []uint64) int {
	putHead(dst, elems[0])
	n := HeadBytes
	prev := elems[0]
	for _, e := range elems[1:] {
		n += Put(dst[n:], e-prev)
		prev = e
	}
	return n
}

// DecodeRun appends the keys stored in src (head + delta codes, produced by
// EncodeRun) to dst and returns the extended slice. used is the number of
// encoded bytes in src. The decode loop is written inline — Go does not
// inline functions with loops, and this is the batch-merge hot path.
func DecodeRun(dst []uint64, src []byte, used int) []uint64 {
	if used == 0 {
		return dst
	}
	v := head(src)
	dst = append(dst, v)
	for n := HeadBytes; n < used; {
		b := src[n]
		n++
		d := uint64(b & 0x7f)
		for shift := uint(7); b >= 0x80; shift += 7 {
			b = src[n]
			n++
			d |= uint64(b&0x7f) << shift
		}
		v += d
		dst = append(dst, v)
	}
	return dst
}

// CountRun returns the number of keys in an encoded run of used bytes.
func CountRun(src []byte, used int) int {
	if used == 0 {
		return 0
	}
	cnt := 1
	for n := HeadBytes; n < used; n++ {
		if src[n] < 0x80 {
			cnt++
		}
	}
	return cnt
}

func putHead(dst []byte, v uint64) {
	for i := 0; i < HeadBytes; i++ {
		dst[i] = byte(v >> (8 * i))
	}
}

func head(src []byte) uint64 {
	var v uint64
	for i := 0; i < HeadBytes; i++ {
		v |= uint64(src[i]) << (8 * i)
	}
	return v
}

// Head returns the uncompressed head of an encoded run.
func Head(src []byte) uint64 { return head(src) }

// PutHead overwrites the head of an encoded run with v.
func PutHead(dst []byte, v uint64) { putHead(dst, v) }

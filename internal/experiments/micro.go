package experiments

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cpma"
	"repro/internal/parallel"
	"repro/internal/pma"
	"repro/internal/rma"
	"repro/internal/shard"
	"repro/internal/stats"
	"repro/internal/workload"
)

// MicroConfig scales the set microbenchmarks. The paper starts every
// structure at 100M elements and inserts/deletes another 100M; the default
// here is 100x smaller so a run takes seconds.
type MicroConfig struct {
	BaseN  int    // elements preloaded before measurement
	TotalK int    // elements inserted/deleted during measurement
	Seed   uint64 // workload seed
	Trials int    // timed trials (after one warmup) for query benches
}

// DefaultMicro returns the scaled defaults.
func DefaultMicro() MicroConfig {
	return MicroConfig{BaseN: 1_000_000, TotalK: 1_000_000, Seed: 42, Trials: 3}
}

// BatchSizes are the paper's x-axis for Figures 1/10/11 (capped by config).
func BatchSizes(totalK int) []int {
	all := []int{10, 100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000}
	var out []int
	for _, b := range all {
		if b <= totalK {
			out = append(out, b)
		}
	}
	return out
}

// InsertRow is one batch-size measurement across systems.
type InsertRow struct {
	BatchSize  int
	Throughput map[string]float64 // system name -> inserts/second
}

// Fig1BatchInsert measures parallel batch-insert throughput as a function
// of batch size (Figure 1 / Table 9; zipf=true gives Figure 11 / Table 13).
func Fig1BatchInsert(makers []SetMaker, cfg MicroConfig, zipf bool) []InsertRow {
	var rows []InsertRow
	for _, bs := range BatchSizes(cfg.TotalK) {
		row := InsertRow{BatchSize: bs, Throughput: map[string]float64{}}
		for _, mk := range makers {
			r := workload.NewRNG(cfg.Seed)
			base := workload.Uniform(r, cfg.BaseN, workload.UniformBits)
			s := mk.New()
			s.InsertBatch(base, false)
			batches := makeBatches(r, cfg.TotalK, bs, zipf)
			d := stats.Time(func() {
				for _, b := range batches {
					s.InsertBatch(b, false)
				}
			})
			closeSet(s)
			row.Throughput[mk.Name] = stats.Throughput(cfg.TotalK, d)
		}
		rows = append(rows, row)
	}
	return rows
}

func makeBatches(r *workload.RNG, total, bs int, zipf bool) [][]uint64 {
	var z *workload.Zipf
	if zipf {
		z = workload.NewZipf(r, workload.ZipfBits, workload.ZipfTheta)
	}
	var out [][]uint64
	for done := 0; done < total; done += bs {
		n := bs
		if total-done < n {
			n = total - done
		}
		if zipf {
			out = append(out, workload.ZipfBatch(z, n))
		} else {
			out = append(out, workload.Uniform(r, n, workload.UniformBits))
		}
	}
	return out
}

// RangeRow is one range-length measurement across systems.
type RangeRow struct {
	AvgLen     int
	Throughput map[string]float64 // elements processed / second
}

// RangeLens mirrors Figure 2 / Table 10's x-axis: expected elements
// returned per query, from ~6 to ~2M (capped at n/4).
func RangeLens(n int) []int {
	all := []int{6, 50, 400, 3_000, 20_000, 200_000, 2_000_000}
	var out []int
	for _, l := range all {
		if l <= n/4 {
			out = append(out, l)
		}
	}
	return out
}

// Fig2RangeQuery measures parallel range-map throughput as a function of
// range length (Figure 2 / Table 10). queries are issued in parallel; each
// sums its range.
func Fig2RangeQuery(makers []SetMaker, cfg MicroConfig, queries int) []RangeRow {
	r := workload.NewRNG(cfg.Seed)
	base := workload.Uniform(r, cfg.BaseN, workload.UniformBits)
	systems := make([]Set, len(makers))
	for i, mk := range makers {
		systems[i] = mk.New()
		systems[i].InsertBatch(base, false)
	}
	keySpace := uint64(1) << workload.UniformBits
	var rows []RangeRow
	for _, avgLen := range RangeLens(cfg.BaseN) {
		span := uint64(float64(keySpace) * float64(avgLen) / float64(cfg.BaseN))
		starts := make([]uint64, queries)
		qr := workload.NewRNG(cfg.Seed + 1)
		for i := range starts {
			starts[i] = 1 + qr.Uint64()%(keySpace-span)
		}
		row := RangeRow{AvgLen: avgLen, Throughput: map[string]float64{}}
		for i, mk := range makers {
			s := systems[i]
			var elems int64
			d := stats.Trials(1, cfg.Trials, func() {
				var total int64
				parallel.For(len(starts), 4, func(q int) {
					_, cnt := s.RangeSum(starts[q], starts[q]+span)
					atomicAdd64(&total, int64(cnt))
				})
				elems = total
			})
			row.Throughput[mk.Name] = stats.Throughput(int(elems), d)
		}
		rows = append(rows, row)
	}
	for _, s := range systems {
		closeSet(s)
	}
	return rows
}

// Table3Row reports serial vs parallel batch inserts for the PMA.
type Table3Row struct {
	BatchSize  int
	SerialTP   float64
	ParallelTP float64
}

// Table3SerialVsParallel measures the PMA's batch-insert algorithm on one
// core and on all cores (Table 3).
func Table3SerialVsParallel(cfg MicroConfig) []Table3Row {
	var rows []Table3Row
	for _, bs := range BatchSizes(cfg.TotalK) {
		serial := runPMAInsertWithProcs(cfg, bs, 1)
		par := runPMAInsertWithProcs(cfg, bs, runtime.NumCPU())
		rows = append(rows, Table3Row{BatchSize: bs, SerialTP: serial, ParallelTP: par})
	}
	return rows
}

func runPMAInsertWithProcs(cfg MicroConfig, bs, procs int) float64 {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
	r := workload.NewRNG(cfg.Seed)
	base := workload.Uniform(r, cfg.BaseN, workload.UniformBits)
	p := pma.New(nil)
	p.InsertBatch(base, false)
	batches := makeBatches(r, cfg.TotalK, bs, false)
	d := stats.Time(func() {
		for _, b := range batches {
			p.InsertBatch(b, false)
		}
	})
	return stats.Throughput(cfg.TotalK, d)
}

// Table4Row compares serial batch inserts: this paper's algorithm vs the
// RMA-style baseline.
type Table4Row struct {
	BatchSize int
	RMATP     float64
	PMATP     float64
}

// Table4RMA runs both serial batch-insert algorithms on one core (Table 4).
func Table4RMA(cfg MicroConfig) []Table4Row {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	var rows []Table4Row
	for _, bs := range BatchSizes(cfg.TotalK) {
		r := workload.NewRNG(cfg.Seed)
		base := workload.Uniform(r, cfg.BaseN, workload.UniformBits)
		m := rma.New(0)
		m.InsertBatch(base, false)
		batches := makeBatches(r, cfg.TotalK, bs, false)
		dRMA := stats.Time(func() {
			for _, b := range batches {
				m.InsertBatch(b, false)
			}
		})

		r = workload.NewRNG(cfg.Seed)
		base = workload.Uniform(r, cfg.BaseN, workload.UniformBits)
		p := pma.New(nil)
		p.InsertBatch(base, false)
		batches = makeBatches(r, cfg.TotalK, bs, false)
		dPMA := stats.Time(func() {
			for _, b := range batches {
				p.InsertBatch(b, false)
			}
		})
		rows = append(rows, Table4Row{
			BatchSize: bs,
			RMATP:     stats.Throughput(cfg.TotalK, dRMA),
			PMATP:     stats.Throughput(cfg.TotalK, dPMA),
		})
	}
	return rows
}

// Table5Row reports insert and delete throughput for PMA and CPMA under a
// given distribution.
type Table5Row struct {
	BatchSize                                    int
	PMAInsert, PMADelete, CPMAInsert, CPMADelete float64
}

// Table5InsertDelete measures parallel batch inserts and deletes for the
// PMA and CPMA (Table 5; zipf selects the right half of the table).
func Table5InsertDelete(cfg MicroConfig, zipf bool) []Table5Row {
	var rows []Table5Row
	for _, bs := range BatchSizes(cfg.TotalK) {
		row := Table5Row{BatchSize: bs}
		for _, which := range []string{"PMA", "CPMA"} {
			r := workload.NewRNG(cfg.Seed)
			base := workload.Uniform(r, cfg.BaseN, workload.UniformBits)
			var s Set
			if which == "PMA" {
				s = pma.New(nil)
			} else {
				s = cpma.New(nil)
			}
			s.InsertBatch(base, false)
			batches := makeBatches(r, cfg.TotalK, bs, zipf)
			dIns := stats.Time(func() {
				for _, b := range batches {
					s.InsertBatch(b, false)
				}
			})
			dDel := stats.Time(func() {
				for _, b := range batches {
					s.RemoveBatch(b, false)
				}
			})
			ins := stats.Throughput(cfg.TotalK, dIns)
			del := stats.Throughput(cfg.TotalK, dDel)
			if which == "PMA" {
				row.PMAInsert, row.PMADelete = ins, del
			} else {
				row.CPMAInsert, row.CPMADelete = ins, del
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// Table6Row reports bytes per element at one size.
type Table6Row struct {
	N            int
	BytesPerElem map[string]float64
}

// Table6Space measures space usage across sizes (Table 6).
func Table6Space(makers []SetMaker, sizes []int, seed uint64) []Table6Row {
	var rows []Table6Row
	for _, n := range sizes {
		r := workload.NewRNG(seed)
		keys := workload.Uniform(r, n, workload.UniformBits)
		row := Table6Row{N: n, BytesPerElem: map[string]float64{}}
		for _, mk := range makers {
			s := mk.New()
			s.InsertBatch(keys, false)
			row.BytesPerElem[mk.Name] = float64(s.SizeBytes()) / float64(s.Len())
			closeSet(s)
		}
		rows = append(rows, row)
	}
	return rows
}

// ScalingRow reports throughput at one worker count.
type ScalingRow struct {
	Procs  int
	PMATP  float64
	CPMATP float64
}

// CoreCounts returns the sweep 1, 2, 4, ... up to the host's CPUs.
func CoreCounts() []int {
	max := runtime.NumCPU()
	var out []int
	for p := 1; p <= max; p *= 2 {
		out = append(out, p)
	}
	if out[len(out)-1] != max {
		out = append(out, max)
	}
	return out
}

// Fig7InsertScaling measures batch-insert strong scaling for the PMA and
// CPMA (Figure 7 / Table 11): batches of 1% of the base size.
func Fig7InsertScaling(cfg MicroConfig) []ScalingRow {
	bs := cfg.BaseN / 100
	if bs < 1 {
		bs = 1
	}
	var rows []ScalingRow
	for _, procs := range CoreCounts() {
		row := ScalingRow{Procs: procs}
		row.PMATP = runPMAInsertWithProcs(cfg, bs, procs)
		row.CPMATP = runCPMAInsertWithProcs(cfg, bs, procs)
		rows = append(rows, row)
	}
	return rows
}

func runCPMAInsertWithProcs(cfg MicroConfig, bs, procs int) float64 {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
	r := workload.NewRNG(cfg.Seed)
	base := workload.Uniform(r, cfg.BaseN, workload.UniformBits)
	c := cpma.New(nil)
	c.InsertBatch(base, false)
	batches := makeBatches(r, cfg.TotalK, bs, false)
	d := stats.Time(func() {
		for _, b := range batches {
			c.InsertBatch(b, false)
		}
	})
	return stats.Throughput(cfg.TotalK, d)
}

// Fig8RangeScaling measures range-query strong scaling (Figure 8/Table 12).
func Fig8RangeScaling(cfg MicroConfig, queries, avgLen int) []ScalingRow {
	r := workload.NewRNG(cfg.Seed)
	base := workload.Uniform(r, cfg.BaseN, workload.UniformBits)
	p := pma.New(nil)
	p.InsertBatch(base, false)
	c := cpma.New(nil)
	c.InsertBatch(base, false)
	keySpace := uint64(1) << workload.UniformBits
	span := uint64(float64(keySpace) * float64(avgLen) / float64(cfg.BaseN))
	starts := make([]uint64, queries)
	qr := workload.NewRNG(cfg.Seed + 1)
	for i := range starts {
		starts[i] = 1 + qr.Uint64()%(keySpace-span)
	}
	run := func(s Set, procs int) float64 {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
		var elems int64
		d := stats.Trials(1, cfg.Trials, func() {
			var total int64
			parallel.For(len(starts), 4, func(q int) {
				_, cnt := s.RangeSum(starts[q], starts[q]+span)
				atomicAdd64(&total, int64(cnt))
			})
			elems = total
		})
		return stats.Throughput(int(elems), d)
	}
	var rows []ScalingRow
	for _, procs := range CoreCounts() {
		rows = append(rows, ScalingRow{Procs: procs, PMATP: run(p, procs), CPMATP: run(c, procs)})
	}
	return rows
}

// ShardRow reports concurrent-clients throughput at one shard count.
type ShardRow struct {
	Shards     int
	InsertTP   float64 // concurrent batch inserts / second
	MixedTP    float64 // concurrent batch inserts / second with readers running
	ReadOps    float64 // reader operations / second during the mixed phase
	FinalElems int
}

// ShardCounts returns the sweep 1, 2, 4, ... up to max (always including
// max itself).
func ShardCounts(max int) []int {
	if max < 1 {
		max = 1
	}
	var out []int
	for p := 1; p <= max; p *= 2 {
		out = append(out, p)
	}
	if out[len(out)-1] != max {
		out = append(out, max)
	}
	return out
}

// shardOptions builds the Options one shards experiment uses: the chosen
// partition policy over the microbenchmark key space.
func shardOptions(part shard.Partition) *shard.Options {
	return &shard.Options{Partition: part, KeyBits: workload.UniformBits}
}

// ShardConcurrentClients measures the sharded front-end beyond what the
// single-writer CPMA can express: `clients` goroutines each stream private
// uniform batches into one Sharded set concurrently. The first phase is
// write-only; the second re-runs the writers while `readers` goroutines
// issue point lookups and range sums against the same set. Sweeps shard
// counts 1, 2, 4, ..., maxShards under the given partition policy.
func ShardConcurrentClients(cfg MicroConfig, maxShards, clients, readers, batchSize int, part shard.Partition) []ShardRow {
	if clients < 1 {
		clients = 1
	}
	if batchSize < 1 {
		batchSize = 1
	}
	perClient := cfg.TotalK / clients
	if perClient < 1 {
		perClient = 1
	}
	var rows []ShardRow
	for _, p := range ShardCounts(maxShards) {
		s := shard.New(p, shardOptions(part))
		r := workload.NewRNG(cfg.Seed)
		s.InsertBatch(workload.Uniform(r, cfg.BaseN, workload.UniformBits), false)

		clientBatches := make([][][]uint64, clients)
		for c := range clientBatches {
			rc := workload.NewRNG(cfg.Seed + uint64(c) + 1)
			clientBatches[c] = makeBatches(rc, perClient, batchSize, false)
		}
		runWriters := func() {
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					for _, b := range clientBatches[c] {
						s.InsertBatch(b, false)
					}
				}(c)
			}
			wg.Wait()
		}

		row := ShardRow{Shards: p}
		d := stats.Time(runWriters)
		row.InsertTP = stats.Throughput(perClient*clients, d)

		// Mixed phase: fresh key stream per writer so inserts stay real work,
		// readers hammer lookups and short range sums until writers finish.
		for c := range clientBatches {
			rc := workload.NewRNG(cfg.Seed + uint64(clients+c) + 1)
			clientBatches[c] = makeBatches(rc, perClient, batchSize, false)
		}
		var done atomic.Bool
		var readOps atomic.Int64
		var rwg sync.WaitGroup
		for g := 0; g < readers; g++ {
			rwg.Add(1)
			go func(g int) {
				defer rwg.Done()
				rr := workload.NewRNG(cfg.Seed + uint64(1000+g))
				keySpace := uint64(1) << workload.UniformBits
				for !done.Load() {
					if rr.Intn(4) == 0 {
						start := rr.Uint64() % keySpace
						s.RangeSum(start, start+4096)
					} else {
						s.Has(1 + rr.Uint64()%keySpace)
					}
					readOps.Add(1)
				}
			}(g)
		}
		d = stats.Time(runWriters)
		done.Store(true)
		rwg.Wait()
		row.MixedTP = stats.Throughput(perClient*clients, d)
		row.ReadOps = stats.Throughput(int(readOps.Load()), d)
		row.FinalElems = s.Len()
		rows = append(rows, row)
	}
	return rows
}

// AsyncIngestRow reports the async pipeline at one (clients, mailbox
// depth) point against the synchronous front-end at equal shard count.
type AsyncIngestRow struct {
	Clients      int
	Depth        int     // mailbox depth (pending sub-batches per shard)
	SyncTP       float64 // blocking InsertBatch inserts / second
	AsyncTP      float64 // InsertBatchAsync + final Flush inserts / second
	MeanSubBatch float64 // mean keys per enqueued sub-batch
	MeanApplied  float64 // mean keys per merged apply (coalescing win)
	P50ms        float64 // median mailbox residency (enqueue -> applied), ms
	P99ms        float64 // p99 mailbox residency, ms
	LatSamples   uint64  // residency samples behind the percentiles
}

// ShardAsyncIngest sweeps the asynchronous ingest pipeline over client
// count (1, 2, 4, ..., maxClients) and mailbox depth: every client streams
// small private batches — the adversarial regime for the synchronous
// front-end, which forfeits the CPMA's batch-size amortization — and the
// per-shard writers coalesce whatever accumulates. Each row compares
// against the synchronous front-end at the same shard and client count and
// reports the achieved coalescing (mean applied-batch size over mean
// enqueued sub-batch size).
func ShardAsyncIngest(cfg MicroConfig, shards, maxClients int, depths []int, batchSize int, part shard.Partition) []AsyncIngestRow {
	if shards < 1 {
		shards = 1
	}
	if batchSize < 1 {
		batchSize = 1
	}
	base := workload.Uniform(workload.NewRNG(cfg.Seed), cfg.BaseN, workload.UniformBits)
	var rows []AsyncIngestRow
	for _, clients := range ShardCounts(maxClients) {
		perClient := cfg.TotalK / clients
		if perClient < 1 {
			perClient = 1
		}
		clientBatches := make([][][]uint64, clients)
		for c := range clientBatches {
			rc := workload.NewRNG(cfg.Seed + uint64(c) + 1)
			clientBatches[c] = makeBatches(rc, perClient, batchSize, false)
		}
		total := perClient * clients

		runClients := func(ingest func(c int, b []uint64)) {
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					for _, b := range clientBatches[c] {
						ingest(c, b)
					}
				}(c)
			}
			wg.Wait()
		}

		sync_ := shard.New(shards, shardOptions(part))
		sync_.InsertBatch(base, false)
		d := stats.Time(func() {
			runClients(func(_ int, b []uint64) { sync_.InsertBatch(b, false) })
		})
		syncTP := stats.Throughput(total, d)

		for _, depth := range depths {
			opt := shardOptions(part)
			opt.Async = true
			opt.MailboxDepth = depth
			s := shard.New(shards, opt)
			observeSet(fmt.Sprintf("async-ingest c%d d%d", clients, depth), s)
			s.InsertBatch(base, false)
			before := s.IngestStats()
			lat0 := s.PipelineLatencies()
			d := stats.Time(func() {
				runClients(func(_ int, b []uint64) { s.InsertBatchAsync(b, false) })
				s.Flush() // the measured phase ends only once everything applied
			})
			st := s.IngestStats().Sub(before)
			res := s.PipelineLatencies().Sub(lat0).Residency
			s.Close()
			p50, p99, n := residencyObs(res)
			rows = append(rows, AsyncIngestRow{
				Clients:      clients,
				Depth:        depth,
				SyncTP:       syncTP,
				AsyncTP:      stats.Throughput(total, d),
				MeanSubBatch: st.MeanEnqueuedBatch(),
				MeanApplied:  st.MeanAppliedBatch(),
				P50ms:        p50,
				P99ms:        p99,
				LatSamples:   n,
			})
		}
	}
	return rows
}

// SnapshotScanRow compares analytics scans running concurrently with async
// ingest under two read disciplines at one scanner count: flush-barrier
// scans (Flush, then an aggregate read holding every shard lock) versus
// Snapshot scans (lock-free capture of the writer-published frozen
// handles). IngestTP columns show how much each discipline steals from the
// writers; Publishes/CloneMB expose the copy-on-publish cost the snapshots
// pay instead.
type SnapshotScanRow struct {
	Scanners      int
	FlushScans    float64 // flush-barrier scans / second
	FlushIngestTP float64 // inserts / second while flush-barrier scans run
	SnapScans     float64 // snapshot scans / second
	SnapIngestTP  float64 // inserts / second while snapshot scans run
	Publishes     uint64  // frozen handles published during the snapshot phase
	CloneMB       float64 // megabytes cloned for those handles
}

// ShardSnapshotScan sweeps snapshot-scan-while-ingesting: `clients`
// goroutines stream fire-and-forget batches through the async pipeline
// while `sc` scanner goroutines run full aggregate scans (Sum) as fast as
// they can, first through a Flush barrier against the live set, then
// through Snapshot captures. The snapshot discipline should hold ingest
// throughput while scanning far more often — the flush barrier serializes
// every scan behind the mailbox drain and blocks writers for the scan's
// whole duration.
func ShardSnapshotScan(cfg MicroConfig, shards, clients int, scanners []int, batchSize int, part shard.Partition) []SnapshotScanRow {
	if shards < 1 {
		shards = 1
	}
	if clients < 1 {
		clients = 1
	}
	if batchSize < 1 {
		batchSize = 1
	}
	perClient := cfg.TotalK / clients
	if perClient < 1 {
		perClient = 1
	}
	total := perClient * clients
	base := workload.Uniform(workload.NewRNG(cfg.Seed), cfg.BaseN, workload.UniformBits)
	clientBatches := make([][][]uint64, clients)
	for c := range clientBatches {
		rc := workload.NewRNG(cfg.Seed + uint64(c) + 1)
		clientBatches[c] = makeBatches(rc, perClient, batchSize, false)
	}

	// run ingests the full client workload into a fresh async set while
	// `sc` scanners execute scan() in a loop; it returns the ingest
	// duration, scan count, and the phase's snapshot-counter delta.
	run := func(sc int, scan func(s *shard.Sharded)) (d time.Duration, scans int64, st shard.SnapshotStats) {
		opt := shardOptions(part)
		opt.Async = true
		s := shard.New(shards, opt)
		s.InsertBatch(base, false)
		before := s.SnapshotStats()
		var done atomic.Bool
		var nscans atomic.Int64
		var swg sync.WaitGroup
		for g := 0; g < sc; g++ {
			swg.Add(1)
			go func() {
				defer swg.Done()
				for !done.Load() {
					scan(s)
					nscans.Add(1)
				}
			}()
		}
		d = stats.Time(func() {
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					for _, b := range clientBatches[c] {
						s.InsertBatchAsync(b, false)
					}
				}(c)
			}
			wg.Wait()
			s.Flush()
		})
		done.Store(true)
		swg.Wait()
		st = s.SnapshotStats().Sub(before)
		scans = nscans.Load()
		s.Close()
		return d, scans, st
	}

	var rows []SnapshotScanRow
	for _, sc := range scanners {
		if sc < 1 {
			sc = 1
		}
		fd, fscans, _ := run(sc, func(s *shard.Sharded) {
			s.Flush()
			s.Sum()
		})
		sd, sscans, st := run(sc, func(s *shard.Sharded) {
			s.Snapshot().Sum()
		})
		rows = append(rows, SnapshotScanRow{
			Scanners:      sc,
			FlushScans:    stats.Throughput(int(fscans), fd),
			FlushIngestTP: stats.Throughput(total, fd),
			SnapScans:     stats.Throughput(int(sscans), sd),
			SnapIngestTP:  stats.Throughput(total, sd),
			Publishes:     st.Publishes,
			CloneMB:       float64(st.CloneBytes) / (1 << 20),
		})
	}
	return rows
}

// GrowthRow reports Appendix C's growing-factor sweep.
type GrowthRow struct {
	Factor       float64
	InsertTP     float64
	BytesPerElem float64
	ScanTP       float64
}

// AppCGrowingFactor sweeps the growing factor (Figure 12/13).
func AppCGrowingFactor(cfg MicroConfig, factors []float64) []GrowthRow {
	var rows []GrowthRow
	for _, f := range factors {
		r := workload.NewRNG(cfg.Seed)
		c := cpma.New(&cpma.Options{GrowthFactor: f})
		batches := makeBatches(r, cfg.BaseN, cfg.BaseN/100+1, false)
		d := stats.Time(func() {
			for _, b := range batches {
				c.InsertBatch(b, false)
			}
		})
		scan := stats.Trials(1, cfg.Trials, func() { c.Sum() })
		rows = append(rows, GrowthRow{
			Factor:       f,
			InsertTP:     stats.Throughput(cfg.BaseN, d),
			BytesPerElem: float64(c.SizeBytes()) / float64(c.Len()),
			ScanTP:       stats.Throughput(c.Len(), scan),
		})
	}
	return rows
}

// --- rendering helpers shared by the cmd harnesses ---

// WriteInsertRows renders Figure 1/11-style rows.
func WriteInsertRows(w io.Writer, title string, makers []SetMaker, rows []InsertRow) {
	fmt.Fprintln(w, title)
	header := []string{"batch"}
	for _, mk := range makers {
		header = append(header, mk.Name)
	}
	t := stats.NewTable(header...)
	for _, row := range rows {
		cells := []any{stats.Sci(float64(row.BatchSize))}
		for _, mk := range makers {
			cells = append(cells, stats.Sci(row.Throughput[mk.Name]))
		}
		t.Row(cells...)
	}
	t.Write(w)
}

// WriteRangeRows renders Figure 2-style rows.
func WriteRangeRows(w io.Writer, title string, makers []SetMaker, rows []RangeRow) {
	fmt.Fprintln(w, title)
	header := []string{"avg-len"}
	for _, mk := range makers {
		header = append(header, mk.Name)
	}
	t := stats.NewTable(header...)
	for _, row := range rows {
		cells := []any{stats.Sci(float64(row.AvgLen))}
		for _, mk := range makers {
			cells = append(cells, stats.Sci(row.Throughput[mk.Name]))
		}
		t.Row(cells...)
	}
	t.Write(w)
}

func atomicAdd64(addr *int64, v int64) { atomic.AddInt64(addr, v) }

package experiments

// The hot-key absorption sweep. Hashing spreads spans, and range
// rebalancing spreads spans, but neither helps a single-key hotspot: all
// traffic for one key routes to one shard's writer, which then burns its
// time re-proving idempotent inserts against the CPMA. The absorber
// (Options.HotKeys) intercepts promoted keys before the structure and
// folds them in at publish boundaries, so the writer's per-occurrence
// cost collapses to a counter bump. This sweep streams skewed workloads
// (power-law, and explicit hot-spot mixes across hot fractions) through
// the async pipeline with the absorber off and on, measures ingest
// throughput, and differentially verifies the final contents against an
// exact model — the speedup only counts if the answers stay right.

import (
	"slices"
	"sync"

	"repro/internal/shard"
	"repro/internal/stats"
	"repro/internal/workload"
)

// HotKeyRow is one (workload, absorber off/on) measurement of the sweep.
type HotKeyRow struct {
	Workload     string  // "powerlaw-<s>" or "hotspot"
	HotFrac      float64 // hot-spot traffic fraction (0 for power-law rows)
	HotKeyCount  int     // distinct hot keys in the hot-spot generator
	Shards       int
	Clients      int
	Absorb       bool
	IngestTP     float64 // inserts / second (enqueue through final Flush)
	AbsorbedFrac float64 // absorbed occurrences / enqueued occurrences
	Promotions   uint64
	Demotions    uint64
	Reconciles   uint64
	FinalKeys    int
	Verified     bool    // exact differential check against the model
	P50ms        float64 `json:"p50_ms"` // median mailbox residency over the timed phase, ms
	P99ms        float64 `json:"p99_ms"` // p99 mailbox residency, ms
}

// hotKeyWorkload is one pre-generated workload the sweep runs twice
// (absorber off, then on) so both rows see identical batches.
type hotKeyWorkload struct {
	name    string
	hotFrac float64
	hotKeys int
	batches [][][]uint64 // [client][batch]keys
}

// ShardHotKeySweep measures absorber speedup across workloads: one
// power-law row pair (exponent s, unscrambled — the paper's
// skew-adversarial form, whose hottest keys dominate the stream) plus one
// hot-spot row pair per entry in hotFracs (hotKeys distinct hot keys).
// Each pair streams the same batches through `clients` goroutines with
// the absorber off and on; the first half of each stream is untimed
// warmup (the detector converges its promotions there) and the timed
// phase measures steady state. Every row is differentially verified:
// after the final Flush the set's contents must equal the exact model of
// the insert stream.
func ShardHotKeySweep(cfg MicroConfig, shards, clients, batchSize, hotKeys int, s float64, hotFracs []float64) []HotKeyRow {
	if shards < 1 {
		shards = 1
	}
	if clients < 1 {
		clients = 1
	}
	if batchSize < 1 {
		batchSize = 1
	}
	if hotKeys < 1 {
		hotKeys = 1
	}
	perClient := cfg.TotalK / clients
	if perClient < 1 {
		perClient = 1
	}

	gen := func(name string, hotFrac float64, next func(c int) func(n int) []uint64) hotKeyWorkload {
		w := hotKeyWorkload{name: name, hotFrac: hotFrac, hotKeys: hotKeys,
			batches: make([][][]uint64, clients)}
		for c := 0; c < clients; c++ {
			batch := next(c)
			for got := 0; got < perClient; got += batchSize {
				n := batchSize
				if perClient-got < n {
					n = perClient - got
				}
				w.batches[c] = append(w.batches[c], batch(n))
			}
		}
		return w
	}
	workloads := []hotKeyWorkload{
		gen("powerlaw-2.5", 0, func(c int) func(n int) []uint64 {
			z := workload.NewPowerLaw(workload.NewRNG(cfg.Seed+uint64(c)+1), RebalanceBits, s, false)
			return func(n int) []uint64 { return workload.PowerLawBatch(z, n) }
		}),
	}
	for _, f := range hotFracs {
		f := f
		workloads = append(workloads, gen("hotspot", f, func(c int) func(n int) []uint64 {
			h := workload.NewHotSpot(workload.NewRNG(cfg.Seed+uint64(c)+101), RebalanceBits, hotKeys, f)
			return func(n int) []uint64 { return workload.HotSpotBatch(h, n) }
		}))
	}

	var rows []HotKeyRow
	for _, w := range workloads {
		// The exact model: the stream is insert-only, so the final state is
		// the distinct-key set (skew keeps it far smaller than TotalK).
		model := map[uint64]bool{}
		for c := range w.batches {
			for _, b := range w.batches[c] {
				for _, k := range b {
					model[k] = true
				}
			}
		}
		want := make([]uint64, 0, len(model))
		for k := range model {
			want = append(want, k)
		}
		slices.Sort(want)

		for _, absorb := range []bool{false, true} {
			opt := &shard.Options{Partition: shard.HashPartition, Async: true}
			if absorb {
				opt.HotKeys = true
				// A smaller-than-default detector window so promotions
				// converge inside the warmup half even at smoke sizes; the
				// steady-state absorbed path is what the timed phase sees.
				opt.HotKeyEvery = 1024
				if m := 2 * hotKeys; m > shard.DefaultHotKeyMax {
					opt.HotKeyMax = m
				}
			}
			set := shard.New(shards, opt)
			label := w.name
			if absorb {
				label += " absorb"
			}
			observeSet("hotkey "+label, set)
			run := func(phase func(batches [][]uint64) [][]uint64) {
				var wg sync.WaitGroup
				for c := 0; c < clients; c++ {
					wg.Add(1)
					go func(c int) {
						defer wg.Done()
						for _, b := range phase(w.batches[c]) {
							set.InsertBatchAsync(b, false)
						}
					}(c)
				}
				wg.Wait()
				set.Flush()
			}
			run(func(batches [][]uint64) [][]uint64 { return batches[:len(batches)/2] })
			timed := 0
			for c := range w.batches {
				for _, b := range w.batches[c][len(w.batches[c])/2:] {
					timed += len(b)
				}
			}
			// Best-of-Trials timed phase: re-streaming the same batches is
			// idempotent (set inserts), so repeats measure the identical
			// steady state and the max damps scheduler noise. Each trial
			// re-streams the timed half enough times that its duration
			// dwarfs fixed per-run costs (the final Flush, goroutine
			// spin-up), which otherwise swamp the absorbed path — it can
			// drain the whole half in single-digit milliseconds.
			trials := cfg.Trials
			if trials < 1 {
				trials = 1
			}
			reps := 1
			const repFloor = 4_000_000 // keys per trial, amortization target
			if timed > 0 && timed < repFloor {
				reps = (repFloor + timed - 1) / timed
				if reps > 16 {
					reps = 16
				}
			}
			var tp float64
			lat0 := set.PipelineLatencies()
			for tr := 0; tr < trials; tr++ {
				d := stats.Time(func() {
					for rep := 0; rep < reps; rep++ {
						run(func(batches [][]uint64) [][]uint64 { return batches[len(batches)/2:] })
					}
				})
				if t := stats.Throughput(timed*reps, d); t > tp {
					tp = t
				}
			}
			p50, p99, _ := residencyObs(set.PipelineLatencies().Sub(lat0).Residency)
			ist := set.IngestStats()
			verified := set.Len() == len(want) && slices.Equal(set.Keys(), want) &&
				ist.AppliedKeys+ist.AbsorbedKeys == ist.EnqueuedKeys &&
				set.Validate() == nil
			frac := 0.0
			if ist.EnqueuedKeys > 0 {
				frac = float64(ist.AbsorbedKeys) / float64(ist.EnqueuedKeys)
			}
			rows = append(rows, HotKeyRow{
				Workload:     w.name,
				HotFrac:      w.hotFrac,
				HotKeyCount:  w.hotKeys,
				Shards:       shards,
				Clients:      clients,
				Absorb:       absorb,
				IngestTP:     tp,
				AbsorbedFrac: frac,
				Promotions:   ist.HotKeys,
				Demotions:    ist.Demotions,
				Reconciles:   ist.ReconcileBatches,
				FinalKeys:    set.Len(),
				Verified:     verified,
				P50ms:        p50,
				P99ms:        p99,
			})
			set.Close()
		}
	}
	return rows
}

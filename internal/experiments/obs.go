package experiments

// Observability hooks for the sweeps. The bench harness (cmd/cpma-bench
// -obs) installs ObserveSet so each measurement set it builds is
// registered into a live obs.Server as its run starts; the sweeps
// themselves stay dependency-free when no one is watching. ObsRow is the
// percentile row the harness accumulates into BENCH_obs.json.

import (
	"repro/internal/fgraph"
	"repro/internal/obs"
	"repro/internal/shard"
)

// ObserveSet, when non-nil, is called with every async measurement set a
// sweep constructs, before its workload runs. Installed by cmd/cpma-bench
// when -obs is set; the callback typically builds a fresh registry for
// the set and swaps it into a live obs.Server.
var ObserveSet func(label string, s *shard.Sharded)

func observeSet(label string, s *shard.Sharded) {
	if ObserveSet != nil {
		ObserveSet(label, s)
	}
}

// ObserveGraph is ObserveSet's sharded-F-Graph counterpart: called with
// every streaming graph the stream sweep constructs, before ingest starts.
// Installed by cmd/fgraph-bench when -obs is set.
var ObserveGraph func(label string, g *fgraph.Sharded)

func observeGraph(label string, g *fgraph.Sharded) {
	if ObserveGraph != nil {
		ObserveGraph(label, g)
	}
}

// ObsRow is one percentile measurement: an experiment's ops/s alongside
// the p50/p99 of its dominant stage latency, as captured by the obs
// histograms during the timed phase.
type ObsRow struct {
	Experiment string  `json:"experiment"`
	Label      string  `json:"label"`
	Metric     string  `json:"latency_metric"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	P50ms      float64 `json:"p50_ms"`
	P99ms      float64 `json:"p99_ms"`
	Samples    uint64  `json:"samples"`
}

// ms converts a nanosecond quantile to milliseconds.
func ms(ns float64) float64 { return ns / 1e6 }

// residencyObs distills a mailbox-residency delta into the (p50, p99, n)
// triple the percentile columns report.
func residencyObs(h obs.HistSnap) (p50, p99 float64, n uint64) {
	return ms(h.P50()), ms(h.P99()), h.Count
}

package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/fgraph"
	"repro/internal/graph"
	"repro/internal/stats"
	"repro/internal/workload"
)

// StreamConfig parameterizes the streaming-graph sweep: ingest rate versus
// analytics latency versus snapshot staleness on the sharded F-Graph,
// across shard counts.
type StreamConfig struct {
	Seed       uint64
	Scale      int     // R-MAT scale; vertex space is 1<<Scale
	Shards     []int   // shard counts to sweep (at least two for the figure)
	Batches    int     // edge batches per shard count
	BatchSize  int     // inserted edges per batch
	DeleteFrac float64 // fraction of each batch emitted as deletes
	PRIters    int
	// Verify checks every mid-stream view's BFS/PR/CC results bytewise
	// against a phased single-CPMA graph holding the captured edge set,
	// and the final flushed view against a full replay of the stream —
	// the CI smoke gate. Costs a reference build per analytics round.
	Verify bool
}

// DefaultStream returns the committed-benchmark configuration.
func DefaultStream() StreamConfig {
	return StreamConfig{
		Seed:       42,
		Scale:      17,
		Shards:     []int{2, 8},
		Batches:    64,
		BatchSize:  100_000,
		DeleteFrac: 0.2,
		PRIters:    10,
	}
}

// StreamRow is one shard count's measurement: how fast edges streamed in,
// how long each analytics kernel took against mid-stream views, and how
// stale those views were.
type StreamRow struct {
	Shards          int     `json:"shards"`
	Batches         int     `json:"batches"`
	BatchSize       int     `json:"batch_size"`
	DeleteFrac      float64 `json:"delete_frac"`
	IngestKeysPerS  float64 `json:"ingest_keys_per_sec"`
	AnalyticsRounds int     `json:"analytics_rounds"`
	ViewBuildMs     float64 `json:"view_build_ms_mean"`
	BFSMs           float64 `json:"bfs_ms_mean"`
	PRMs            float64 `json:"pagerank_ms_mean"`
	CCMs            float64 `json:"cc_ms_mean"`
	LagKeysMean     float64 `json:"lag_keys_mean"`
	LagKeysMax      uint64  `json:"lag_keys_max"`
	ViewAgeMsMean   float64 `json:"view_age_ms_mean"`
	FinalEdges      int64   `json:"final_edges"`
	Verified        bool    `json:"verified"`
}

// GraphStreamSweep runs the streaming benchmark: for each shard count, one
// goroutine pushes EdgeStream insert/delete batches through the async
// pipeline while the caller's goroutine repeatedly captures Views and runs
// BFS, PageRank, and CC against them — no Flush between analytics rounds,
// so the views really are mid-stream cuts and their LagKeys/Age report the
// staleness the paper's phased design cannot have. With cfg.Verify every
// view (and the final flushed state) must match the single-CPMA reference
// bytewise; any divergence aborts the sweep with an error.
func GraphStreamSweep(cfg StreamConfig) ([]StreamRow, error) {
	var rows []StreamRow
	for _, shards := range cfg.Shards {
		row, err := streamOne(cfg, shards)
		if err != nil {
			return rows, fmt.Errorf("shards=%d: %w", shards, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func streamOne(cfg StreamConfig, shards int) (StreamRow, error) {
	nv := 1 << cfg.Scale
	row := StreamRow{
		Shards:     shards,
		Batches:    cfg.Batches,
		BatchSize:  cfg.BatchSize,
		DeleteFrac: cfg.DeleteFrac,
	}
	g := fgraph.NewSharded(nv, shards, nil)
	defer g.Close()
	observeGraph(fmt.Sprintf("stream shards=%d scale=%d", shards, cfg.Scale), g)

	totalKeys := 0
	done := make(chan error, 1)
	var ingestTime time.Duration
	go func() {
		t0 := time.Now()
		stream := workload.NewEdgeStream(cfg.Seed, cfg.Scale, cfg.DeleteFrac)
		for b := 0; b < cfg.Batches; b++ {
			ins, del := stream.Next(cfg.BatchSize)
			if err := g.InsertEdges(ins); err != nil {
				done <- err
				return
			}
			totalKeys += len(ins)
			if len(del) > 0 {
				if err := g.DeleteEdges(del); err != nil {
					done <- err
					return
				}
				totalKeys += len(del)
			}
		}
		g.Flush() // the rate includes draining, not just enqueueing
		ingestTime = time.Since(t0)
		done <- nil
	}()

	var buildMs, bfsMs, prMs, ccMs, lagSum, ageMs float64
	ingesting := true
	for ingesting {
		select {
		case err := <-done:
			if err != nil {
				return row, err
			}
			ingesting = false
		default:
			t0 := time.Now()
			v := g.View()
			buildMs += time.Since(t0).Seconds() * 1e3
			var bfs []int32
			var pr []float64
			var cc []uint32
			bfsMs += stats.Time(func() { bfs = graph.BFS(v, 1) }).Seconds() * 1e3
			prMs += stats.Time(func() { pr = graph.PageRank(v, cfg.PRIters) }).Seconds() * 1e3
			ccMs += stats.Time(func() { cc = graph.ConnectedComponents(v) }).Seconds() * 1e3
			lag := v.LagKeys()
			lagSum += float64(lag)
			if lag > row.LagKeysMax {
				row.LagKeysMax = lag
			}
			ageMs += v.Age().Seconds() * 1e3
			row.AnalyticsRounds++
			if cfg.Verify {
				if err := verifyAgainstReference(v, bfs, pr, cc, cfg.PRIters); err != nil {
					return row, fmt.Errorf("analytics round %d: %w", row.AnalyticsRounds, err)
				}
			}
		}
	}
	if row.AnalyticsRounds > 0 {
		n := float64(row.AnalyticsRounds)
		row.ViewBuildMs = buildMs / n
		row.BFSMs = bfsMs / n
		row.PRMs = prMs / n
		row.CCMs = ccMs / n
		row.LagKeysMean = lagSum / n
		row.ViewAgeMsMean = ageMs / n
	}
	row.IngestKeysPerS = stats.Throughput(totalKeys, ingestTime)
	row.FinalEdges = g.NumEdges()

	if cfg.Verify {
		// The flushed state must equal a full single-CPMA replay of the
		// identical stream — end-to-end set equality, not just a cut.
		ref := fgraph.New(nv, nil)
		stream := workload.NewEdgeStream(cfg.Seed, cfg.Scale, cfg.DeleteFrac)
		for b := 0; b < cfg.Batches; b++ {
			ins, del := stream.Next(cfg.BatchSize)
			ref.InsertEdges(ins)
			ref.DeleteEdges(del)
		}
		v := g.View()
		if v.NumEdges() != ref.NumEdges() {
			return row, fmt.Errorf("flushed view holds %d edges, full replay %d", v.NumEdges(), ref.NumEdges())
		}
		refKeys := ref.Set().Keys()
		gotKeys := v.Snapshot().Keys()
		for i := range refKeys {
			if gotKeys[i] != refKeys[i] {
				return row, fmt.Errorf("flushed view key[%d] = %#x, full replay %#x", i, gotKeys[i], refKeys[i])
			}
		}
		row.Verified = true
	}
	return row, nil
}

// verifyAgainstReference rebuilds the captured edge set in a phased
// single-CPMA graph and demands bytewise-equal kernel results.
func verifyAgainstReference(v *fgraph.View, bfs []int32, pr []float64, cc []uint32, prIters int) error {
	ref := fgraph.New(v.NumVertices(), nil)
	ref.InsertEdgeKeys(v.Snapshot().Keys(), true)
	ref.EnsureIndex()
	wantBFS := graph.BFS(ref, 1)
	wantPR := graph.PageRank(ref, prIters)
	wantCC := graph.ConnectedComponents(ref)
	for i := range wantBFS {
		if bfs[i] != wantBFS[i] {
			return fmt.Errorf("BFS[%d] = %d, reference %d", i, bfs[i], wantBFS[i])
		}
		if pr[i] != wantPR[i] {
			return fmt.Errorf("PR[%d] not bit-identical: %x vs %x", i, pr[i], wantPR[i])
		}
		if cc[i] != wantCC[i] {
			return fmt.Errorf("CC[%d] = %d, reference %d", i, cc[i], wantCC[i])
		}
	}
	return nil
}

// WriteGraphStream renders the streaming sweep.
func WriteGraphStream(w io.Writer, rows []StreamRow) {
	fmt.Fprintln(w, "Streaming F-Graph: concurrent ingest vs analytics vs snapshot staleness")
	t := stats.NewTable("shards", "ingest keys/s", "rounds", "view ms", "BFS ms", "PR ms", "CC ms", "lag mean", "lag max", "age ms")
	for _, r := range rows {
		t.Row(r.Shards, stats.Sci(r.IngestKeysPerS), r.AnalyticsRounds,
			fmt.Sprintf("%.2f", r.ViewBuildMs),
			fmt.Sprintf("%.2f", r.BFSMs),
			fmt.Sprintf("%.2f", r.PRMs),
			fmt.Sprintf("%.2f", r.CCMs),
			stats.Sci(r.LagKeysMean),
			stats.Sci(float64(r.LagKeysMax)),
			fmt.Sprintf("%.2f", r.ViewAgeMsMean))
	}
	t.Write(w)
}

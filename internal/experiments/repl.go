package experiments

// The replication experiment: how much snapshot-read capacity a fleet of
// WAL-shipping followers adds over a single primary, plus the replication
// costs themselves (bootstrap catch-up, tail lag, tail catch-up).
//
// Capacity model: per-node serving rates are measured time-multiplexed —
// each node's readers run while every other node idles — and the fleet
// figure is their sum. That is the capacity-planning model for a real
// deployment, where each replica owns its own machine; on this benchmark
// host every node shares one Go runtime, so co-scheduling all nodes at
// once (also reported, cosched_read_tp) just splits the host's cores
// across nodes and says nothing about fleet capacity. The JSON labels
// both numbers explicitly.

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/persist"
	"repro/internal/repl"
	"repro/internal/shard"
	"repro/internal/workload"
)

// ReplConfig sizes the replication sweep.
type ReplConfig struct {
	Shards    int
	Readers   int   // reader goroutines per node
	Preload   int   // keys ingested and checkpointed before followers join
	TailKeys  int   // keys ingested live during the tail phase
	Followers []int // follower counts to sweep (0 = primary only)
	MeasureMS int   // read-measurement window per node
	KeyBits   int
	Seed      uint64
}

func (c ReplConfig) withDefaults() ReplConfig {
	if c.Shards < 1 {
		c.Shards = 1
	}
	if c.Readers < 1 {
		c.Readers = 2
	}
	if c.Preload < 1 {
		c.Preload = 100_000
	}
	if c.TailKeys < 1 {
		c.TailKeys = c.Preload / 4
	}
	if len(c.Followers) == 0 {
		c.Followers = []int{0, 1, 2, 3}
	}
	if c.MeasureMS < 1 {
		c.MeasureMS = 150
	}
	if c.KeyBits < 1 || c.KeyBits > 64 {
		c.KeyBits = 30
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

// ReplRow is one follower-count measurement.
type ReplRow struct {
	Followers     int       `json:"followers"`
	CatchupMS     float64   `json:"bootstrap_catchup_ms"` // Pair -> all followers at the primary's positions
	NodeReadTP    []float64 `json:"node_read_tp"`         // solo snapshot-read rate per node (primary first)
	FleetTP       float64   `json:"fleet_read_tp"`        // sum of solo rates (time-multiplexed capacity)
	CoschedTP     float64   `json:"cosched_read_tp"`      // all nodes loaded at once on this one host
	FleetGain     float64   `json:"fleet_gain_vs_primary_only"`
	TailCatchupMS float64   `json:"tail_catchup_ms"` // live-ingest flush -> all followers caught up
	MaxLagRecords uint64    `json:"max_lag_records"` // peak sealed-but-unshipped lag during the tail phase
	ShippedKeys   uint64    `json:"shipped_keys"`
	Bootstraps    uint64    `json:"bootstraps"`
}

// ReplSweep builds a durable primary in dir, preloads and checkpoints it,
// then for each follower count: pairs that many in-process followers,
// measures bootstrap catch-up, per-node and co-scheduled snapshot-read
// rates, and the tail phase (live ingest while shipping).
func ReplSweep(cfg ReplConfig, dir string) ([]ReplRow, error) {
	cfg = cfg.withDefaults()
	s, st, err := persist.OpenSharded(cfg.Shards, &shard.Options{
		Dir:                    dir,
		SyncEvery:              64,
		CheckpointEveryBatches: -1,
		CompactEveryDeltas:     -1,
	})
	if err != nil {
		return nil, err
	}
	defer s.Close()

	r := workload.NewRNG(cfg.Seed)
	preload := workload.Uniform(r, cfg.Preload, cfg.KeyBits)
	s.InsertBatchAsync(preload, false)
	if err := s.Checkpoint(); err != nil {
		return nil, err
	}
	pr, err := repl.NewPrimary(s, st)
	if err != nil {
		return nil, err
	}

	var rows []ReplRow
	for _, nf := range cfg.Followers {
		row, err := replRound(cfg, s, st, pr, nf)
		if err != nil {
			return nil, err
		}
		rows = append(rows, *row)
	}
	if len(rows) > 0 && rows[0].FleetTP > 0 {
		for i := range rows {
			rows[i].FleetGain = rows[i].FleetTP / rows[0].FleetTP
		}
	}
	return rows, nil
}

func replRound(cfg ReplConfig, s *shard.Sharded, st *persist.Store, pr *repl.Primary, nf int) (*ReplRow, error) {
	row := &ReplRow{Followers: nf}
	statsBefore := pr.ReplStats()

	followers := make([]*repl.Follower, nf)
	links := make([]*repl.Link, nf)
	start := time.Now()
	for i := range followers {
		followers[i] = repl.NewFollower(cfg.Shards, nil)
		l, err := repl.Pair(pr, followers[i], nil)
		if err != nil {
			return nil, err
		}
		links[i] = l
	}
	defer func() {
		for _, l := range links {
			if l != nil {
				l.Close()
			}
		}
	}()
	if err := replWaitCaughtUp(st, followers); err != nil {
		return nil, err
	}
	row.CatchupMS = float64(time.Since(start)) / float64(time.Millisecond)

	// Solo per-node rates: everyone else idle while one node serves.
	dur := time.Duration(cfg.MeasureMS) * time.Millisecond
	nodes := make([]*shard.Sharded, 0, nf+1)
	nodes = append(nodes, s)
	for _, f := range followers {
		nodes = append(nodes, f.Set())
	}
	for i, node := range nodes {
		tp := replReadRate(node, cfg.Readers, cfg.KeyBits, cfg.Seed+uint64(i), dur)
		row.NodeReadTP = append(row.NodeReadTP, tp)
		row.FleetTP += tp
	}

	// Co-scheduled: every node loaded at once on this host.
	var wg sync.WaitGroup
	cosched := make([]float64, len(nodes))
	for i, node := range nodes {
		wg.Add(1)
		go func(i int, node *shard.Sharded) {
			defer wg.Done()
			cosched[i] = replReadRate(node, cfg.Readers, cfg.KeyBits, cfg.Seed+100+uint64(i), dur)
		}(i, node)
	}
	wg.Wait()
	for _, tp := range cosched {
		row.CoschedTP += tp
	}

	// Tail phase: live ingest while the links ship, peak lag sampled, then
	// time-to-caught-up once the primary flushes.
	if nf > 0 {
		r := workload.NewRNG(cfg.Seed ^ uint64(nf))
		tail := workload.Uniform(r, cfg.TailKeys, cfg.KeyBits)
		stopLag := make(chan struct{})
		var lagDone sync.WaitGroup
		lagDone.Add(1)
		go func() {
			defer lagDone.Done()
			for {
				select {
				case <-stopLag:
					return
				case <-time.After(time.Millisecond):
				}
				if lag := pr.ReplStats().LagRecords; lag > row.MaxLagRecords {
					row.MaxLagRecords = lag
				}
			}
		}()
		for off := 0; off < len(tail); off += 4096 {
			end := off + 4096
			if end > len(tail) {
				end = len(tail)
			}
			s.InsertBatchAsync(tail[off:end], false)
		}
		s.Flush()
		tailStart := time.Now()
		if err := replWaitCaughtUp(st, followers); err != nil {
			return nil, err
		}
		row.TailCatchupMS = float64(time.Since(tailStart)) / float64(time.Millisecond)
		close(stopLag)
		lagDone.Wait()
	}

	statsAfter := pr.ReplStats()
	row.ShippedKeys = statsAfter.ShippedKeys - statsBefore.ShippedKeys
	row.Bootstraps = statsAfter.Bootstraps - statsBefore.Bootstraps
	return row, nil
}

// replReadRate runs readers goroutines of snapshot point-lookups against
// one node for dur and returns lookups per second.
func replReadRate(node *shard.Sharded, readers, bits int, seed uint64, dur time.Duration) float64 {
	var ops atomic.Uint64
	deadline := time.Now().Add(dur)
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := workload.NewRNG(seed)
			mask := uint64(1)<<bits - 1
			var n uint64
			for time.Now().Before(deadline) {
				sn := node.Snapshot()
				for j := 0; j < 512; j++ {
					sn.Has(r.Uint64() & mask)
				}
				n += 512
			}
			ops.Add(n)
		}(seed + uint64(i)*7919)
	}
	wg.Wait()
	return float64(ops.Load()) / dur.Seconds()
}

func replWaitCaughtUp(st *persist.Store, followers []*repl.Follower) error {
	target := st.Positions()
	deadline := time.Now().Add(60 * time.Second)
	for {
		ok := true
		for _, f := range followers {
			for p, pos := range f.Positions() {
				if pos.Seq < target[p].Seq {
					ok = false
				}
			}
		}
		if ok {
			return nil
		}
		if time.Now().After(deadline) {
			return errReplStuck
		}
		time.Sleep(time.Millisecond)
	}
}

var errReplStuck = &replStuckError{}

type replStuckError struct{}

func (*replStuckError) Error() string {
	return "repl sweep: followers failed to catch up within 60s"
}

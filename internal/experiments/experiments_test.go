package experiments

import (
	"strings"
	"testing"

	"repro/internal/shard"
	"repro/internal/workload"
)

func tinyMicro() MicroConfig {
	return MicroConfig{BaseN: 20_000, TotalK: 10_000, Seed: 1, Trials: 1}
}

func TestBatchSizesCapped(t *testing.T) {
	got := BatchSizes(50_000)
	want := []int{10, 100, 1_000, 10_000}
	if len(got) != len(want) {
		t.Fatalf("BatchSizes = %v", got)
	}
}

func TestFig1ProducesPositiveThroughputs(t *testing.T) {
	makers := []SetMaker{PMAMaker(), CPMAMaker()}
	rows := Fig1BatchInsert(makers, tinyMicro(), false)
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range rows {
		for _, mk := range makers {
			if row.Throughput[mk.Name] <= 0 {
				t.Fatalf("bs=%d %s throughput %f", row.BatchSize, mk.Name, row.Throughput[mk.Name])
			}
		}
	}
	var sb strings.Builder
	WriteInsertRows(&sb, "fig1", makers, rows)
	if !strings.Contains(sb.String(), "PMA") {
		t.Fatal("render missing system column")
	}
}

func TestFig2RangeQueries(t *testing.T) {
	makers := []SetMaker{CPMAMaker(), CPaCMaker()}
	rows := Fig2RangeQuery(makers, tinyMicro(), 64)
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range rows {
		for _, mk := range makers {
			if row.Throughput[mk.Name] <= 0 {
				t.Fatalf("len=%d %s tp=%f", row.AvgLen, mk.Name, row.Throughput[mk.Name])
			}
		}
	}
}

func TestFig1ShardedFlavors(t *testing.T) {
	// The comparison tables carry the sharded front-end flavors; both must
	// measure cleanly through the synchronous Set interface (the async one
	// via ticketed enqueues, closed after each measurement).
	makers := []SetMaker{ShardedMaker(2), AsyncShardedMaker(2)}
	rows := Fig1BatchInsert(makers, tinyMicro(), false)
	for _, row := range rows {
		for _, mk := range makers {
			if row.Throughput[mk.Name] <= 0 {
				t.Fatalf("bs=%d %s throughput %f", row.BatchSize, mk.Name, row.Throughput[mk.Name])
			}
		}
	}
	if len(ComparisonSetMakers(2)) != len(AllSetMakers())+2 {
		t.Fatal("ComparisonSetMakers must extend AllSetMakers with both sharded flavors")
	}
}

func TestShardAsyncIngest(t *testing.T) {
	cfg := MicroConfig{BaseN: 5_000, TotalK: 8_000, Seed: 1, Trials: 1}
	for _, part := range []shard.Partition{shard.HashPartition, shard.RangePartition} {
		rows := ShardAsyncIngest(cfg, 2, 4, []int{4}, 250, part)
		if len(rows) != 3 { // clients 1, 2, 4 at one depth
			t.Fatalf("got %d rows, want 3", len(rows))
		}
		for _, r := range rows {
			if r.SyncTP <= 0 || r.AsyncTP <= 0 {
				t.Fatalf("bad throughput %+v", r)
			}
			if r.MeanSubBatch <= 0 {
				t.Fatalf("no sub-batches recorded %+v", r)
			}
			// Applies are merges of >= 1 sub-batch, so the applied mean can
			// never fall below the enqueued mean (how far above depends on
			// scheduling, so the strict win is asserted only in the
			// deterministic shard-package test).
			if r.MeanApplied+1e-9 < r.MeanSubBatch {
				t.Fatalf("applied mean below sub-batch mean: %+v", r)
			}
		}
	}
}

func TestShardConcurrentClientsPartitions(t *testing.T) {
	cfg := MicroConfig{BaseN: 4_000, TotalK: 4_000, Seed: 2, Trials: 1}
	for _, part := range []shard.Partition{shard.HashPartition, shard.RangePartition} {
		rows := ShardConcurrentClients(cfg, 2, 2, 1, 200, part)
		if len(rows) != 2 {
			t.Fatalf("got %d rows", len(rows))
		}
		for _, r := range rows {
			if r.InsertTP <= 0 || r.MixedTP <= 0 || r.FinalElems <= 0 {
				t.Fatalf("bad row %+v", r)
			}
		}
	}
}

func TestTable4BothSystemsRun(t *testing.T) {
	rows := Table4RMA(tinyMicro())
	for _, r := range rows {
		if r.PMATP <= 0 || r.RMATP <= 0 {
			t.Fatalf("bad row %+v", r)
		}
	}
}

func TestTable5InsertDelete(t *testing.T) {
	rows := Table5InsertDelete(tinyMicro(), true)
	for _, r := range rows {
		if r.PMAInsert <= 0 || r.PMADelete <= 0 || r.CPMAInsert <= 0 || r.CPMADelete <= 0 {
			t.Fatalf("bad row %+v", r)
		}
	}
}

func TestTable6SpaceOrdering(t *testing.T) {
	rows := Table6Space(AllSetMakers(), []int{200_000}, 3)
	r := rows[0]
	if r.BytesPerElem["CPMA"] >= r.BytesPerElem["PMA"] {
		t.Fatalf("CPMA %.2f not smaller than PMA %.2f", r.BytesPerElem["CPMA"], r.BytesPerElem["PMA"])
	}
	if r.BytesPerElem["C-PaC"] >= r.BytesPerElem["U-PaC"] {
		t.Fatalf("C-PaC %.2f not smaller than U-PaC %.2f", r.BytesPerElem["C-PaC"], r.BytesPerElem["U-PaC"])
	}
	if pt := r.BytesPerElem["P-tree"]; pt != 32 {
		t.Fatalf("P-tree bytes/elem = %.2f, want 32", pt)
	}
}

func TestScalingRowsCoverCores(t *testing.T) {
	cfg := tinyMicro()
	rows := Fig7InsertScaling(cfg)
	if len(rows) == 0 || rows[0].Procs != 1 {
		t.Fatalf("rows = %+v", rows)
	}
	for _, r := range rows {
		if r.PMATP <= 0 || r.CPMATP <= 0 {
			t.Fatalf("bad scaling row %+v", r)
		}
	}
}

func TestAppCGrowingFactors(t *testing.T) {
	rows := AppCGrowingFactor(tinyMicro(), []float64{1.2, 2.0})
	if len(rows) != 2 {
		t.Fatal("row count")
	}
	if rows[0].BytesPerElem > rows[1].BytesPerElem {
		t.Fatalf("growth 1.2 should use no more space than 2.0: %.2f vs %.2f",
			rows[0].BytesPerElem, rows[1].BytesPerElem)
	}
}

func tinyGraphs() []workload.SyntheticGraph {
	return []workload.SyntheticGraph{
		{Name: "tiny-rmat", Kind: "rmat", Scale: 9, Edges: 8_000},
		{Name: "tiny-er", Kind: "er", N: 500, P: 0.01},
	}
}

func TestFig9AllSystemsAllGraphs(t *testing.T) {
	rows := Fig9GraphAlgos(tinyGraphs(), 5, 3)
	if len(rows) != 6 {
		t.Fatalf("got %d rows, want 6", len(rows))
	}
	for _, r := range rows {
		if r.PR <= 0 || r.CC <= 0 || r.BC <= 0 {
			t.Fatalf("bad times %+v", r)
		}
	}
	var sb strings.Builder
	WriteAlgoTimes(&sb, rows)
	if !strings.Contains(sb.String(), "F-Graph") {
		t.Fatal("render missing system")
	}
}

func TestFig10AndTable7(t *testing.T) {
	base := workload.SyntheticGraph{Name: "base", Kind: "rmat", Scale: 10, Edges: 10_000}
	rows := Fig10GraphInserts(base, 5, 5_000)
	for _, r := range rows {
		for name, tp := range r.Throughput {
			if tp <= 0 {
				t.Fatalf("%s tp %f", name, tp)
			}
		}
	}
	space := Table7GraphSpace([]workload.SyntheticGraph{base}, 5)
	if len(space) != 1 {
		t.Fatal("space rows")
	}
	f := space[0].Bytes["F-Graph"]
	a := space[0].Bytes["Aspen"]
	if f == 0 || a == 0 {
		t.Fatal("zero sizes")
	}
	if float64(f) > 0.9*float64(a) {
		t.Fatalf("F-Graph %d should be well below Aspen %d (paper: ~0.6x)", f, a)
	}
	var sb strings.Builder
	WriteGraphInserts(&sb, rows)
	WriteGraphSpace(&sb, space)
	if !strings.Contains(sb.String(), "Table 7") {
		t.Fatal("render failed")
	}
}

func TestFig10NonPowerOfTwoVertexSpace(t *testing.T) {
	// Regression: the ER stand-in has a non-power-of-two vertex count; the
	// R-MAT insert stream must not generate out-of-range vertices.
	base := workload.SyntheticGraph{Name: "er", Kind: "er", N: 1000, P: 0.01}
	rows := Fig10GraphInserts(base, 3, 2_000)
	for _, r := range rows {
		for name, tp := range r.Throughput {
			if tp <= 0 {
				t.Fatalf("%s tp %f", name, tp)
			}
		}
	}
}

func TestShardRebalanceSweep(t *testing.T) {
	cfg := MicroConfig{BaseN: 5_000, TotalK: 30_000, Seed: 3, Trials: 1}
	rows := ShardRebalanceSweep(cfg, 4, 4, 250, 1.1)
	if len(rows) != 2 || rows[0].Rebalance || !rows[1].Rebalance {
		t.Fatalf("want an off/on row pair, got %+v", rows)
	}
	off, on := rows[0], rows[1]
	if off.IngestTP <= 0 || on.IngestTP <= 0 {
		t.Fatalf("bad throughputs: %+v", rows)
	}
	if off.FinalKeys != on.FinalKeys {
		t.Fatalf("identical workloads diverged: %d vs %d keys", off.FinalKeys, on.FinalKeys)
	}
	if off.Moves != 0 || on.Moves == 0 {
		t.Fatalf("move accounting off: off=%d on=%d", off.Moves, on.Moves)
	}
	// The acceptance bound: unscrambled power-law skew must be visible
	// with rebalancing off and repaired (max/mean <= 2) with it on.
	if off.MaxMeanRatio <= 2 {
		t.Fatalf("workload not skewed enough to test: off ratio %.2f", off.MaxMeanRatio)
	}
	if on.MaxMeanRatio > 2 {
		t.Fatalf("rebalancing left ratio %.2f", on.MaxMeanRatio)
	}
}

func TestShardHotKeySweep(t *testing.T) {
	cfg := MicroConfig{TotalK: 60_000, Seed: 3, Trials: 1}
	rows := ShardHotKeySweep(cfg, 4, 4, 500, 4, 2.5, []float64{0.9})
	if len(rows) != 4 {
		t.Fatalf("want 2 workloads x off/on = 4 rows, got %d", len(rows))
	}
	for i, r := range rows {
		if r.IngestTP <= 0 {
			t.Fatalf("row %d: bad throughput %+v", i, r)
		}
		if !r.Verified {
			t.Fatalf("row %d failed differential verification: %+v", i, r)
		}
		if r.Absorb != (i%2 == 1) {
			t.Fatalf("row %d: want alternating off/on, got %+v", i, r)
		}
	}
	for i := 0; i < len(rows); i += 2 {
		off, on := rows[i], rows[i+1]
		if off.FinalKeys != on.FinalKeys {
			t.Fatalf("identical workloads diverged: %d vs %d keys", off.FinalKeys, on.FinalKeys)
		}
		if off.AbsorbedFrac != 0 || off.Promotions != 0 {
			t.Fatalf("absorber-off row absorbed traffic: %+v", off)
		}
		// Both workloads concentrate most occurrences on a handful of
		// keys; the absorber must soak up the bulk of the stream.
		if on.Promotions == 0 || on.AbsorbedFrac < 0.5 {
			t.Fatalf("absorber barely engaged on %s: %+v", on.Workload, on)
		}
	}
}

func TestReplSweep(t *testing.T) {
	cfg := ReplConfig{
		Shards:    2,
		Readers:   1,
		Preload:   5_000,
		Followers: []int{0, 2},
		MeasureMS: 30,
		Seed:      5,
	}
	rows, err := ReplSweep(cfg, t.TempDir())
	if err != nil {
		t.Fatalf("ReplSweep: %v", err)
	}
	if len(rows) != 2 || rows[0].Followers != 0 || rows[1].Followers != 2 {
		t.Fatalf("want rows for 0 and 2 followers, got %+v", rows)
	}
	base, fleet := rows[0], rows[1]
	if base.FleetTP <= 0 || fleet.FleetTP <= 0 || fleet.CoschedTP <= 0 {
		t.Fatalf("bad throughputs: %+v", rows)
	}
	if len(base.NodeReadTP) != 1 || len(fleet.NodeReadTP) != 3 {
		t.Fatalf("per-node rate counts off: %d and %d", len(base.NodeReadTP), len(fleet.NodeReadTP))
	}
	if fleet.FleetGain <= 1 {
		t.Fatalf("two followers added no fleet capacity: gain %.2fx", fleet.FleetGain)
	}
	if fleet.Bootstraps == 0 {
		t.Fatal("followers joined after a checkpoint but never bootstrapped")
	}
	if fleet.ShippedKeys == 0 {
		t.Fatal("tail phase shipped nothing")
	}
}

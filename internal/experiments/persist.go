package experiments

// The persistence smoke experiment: ingest through the durable sharded
// pipeline, kill the store by chopping bytes off a shard's WAL tail (the
// crash a write-ahead log exists to survive), recover, and verify the
// recovered set is exactly a prefix of what was acknowledged. It reports
// ingest throughput with the WAL on the path plus the journal's own
// accounting, so the cost of durability is a number, not a vibe.

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/persist"
	"repro/internal/shard"
	"repro/internal/workload"
)

// PersistResult is the outcome of one PersistSmoke run.
type PersistResult struct {
	Shards    int
	Keys      int     // distinct keys acknowledged before the kill
	IngestTP  float64 // keys/s through the durable async pipeline
	WalMB     float64 // WAL bytes appended
	Fsyncs    uint64
	Ckpts     uint64
	CkptMB    float64 // encoded checkpoint bytes
	CleanLen  int     // keys after clean close + reopen (must equal Keys)
	CleanOK   bool
	TornCut   int64  // bytes chopped off one shard's WAL tail
	TornLen   int    // keys recovered after the chop
	TornOK    bool   // torn recovery is a valid subset
	Replayed  uint64 // WAL batches replayed by the torn recovery
	TornBytes uint64 // bytes the torn recovery discarded

	// WAL stall percentiles over the ingest phase, milliseconds, with the
	// histogram sample counts behind them.
	AppendP50ms   float64
	AppendP99ms   float64
	AppendSamples uint64
	FsyncP50ms    float64
	FsyncP99ms    float64
	FsyncSamples  uint64
}

// PersistSmoke runs the ingest → kill → recover → verify cycle in dir
// (which must be empty or fresh) and returns what happened. Inserts only,
// so every recovered prefix state is a subset of the acknowledged key set
// — which makes "did recovery invent or lose anything" checkable with one
// membership pass.
func PersistSmoke(cfg MicroConfig, shards, clients, batchSize int, part shard.Partition, dir string) (PersistResult, error) {
	res := PersistResult{Shards: shards}
	opt := &shard.Options{Partition: part, SyncEvery: 8, CheckpointEveryBatches: -1}
	opt.Dir = dir
	open := func() (*shard.Sharded, error) {
		s, _, err := persist.OpenSharded(shards, opt)
		return s, err
	}
	s, store, err := persist.OpenSharded(shards, opt)
	if err != nil {
		return res, err
	}
	observeSet("persist ingest", s)

	keys := workload.Uniform(workload.NewRNG(cfg.Seed), cfg.TotalK, workload.UniformBits)
	start := time.Now()
	runClients(clients, keys, batchSize, func(batch []uint64) {
		s.InsertBatchAsync(batch, false)
	})
	// Mid-stream checkpoint: recovery below must stitch checkpoint + tail.
	if err := s.Checkpoint(); err != nil {
		return res, err
	}
	runClients(clients, keys[:len(keys)/2], batchSize, func(batch []uint64) {
		s.InsertBatchAsync(batch, false) // duplicate traffic, exercises no-op applies
	})
	s.Flush()
	elapsed := time.Since(start)
	res.Keys = s.Len()
	res.IngestTP = float64(cfg.TotalK+len(keys)/2) / elapsed.Seconds()
	acked := s.Keys()
	st := s.PersistStats()
	res.WalMB = float64(st.AppendedBytes) / (1 << 20)
	res.Fsyncs = st.Fsyncs
	res.Ckpts = st.Checkpoints
	res.CkptMB = float64(st.CheckpointBytes) / (1 << 20)
	lat := store.Latencies()
	res.AppendP50ms = ms(lat.Append.P50())
	res.AppendP99ms = ms(lat.Append.P99())
	res.AppendSamples = lat.Append.Count
	res.FsyncP50ms = ms(lat.Fsync.P50())
	res.FsyncP99ms = ms(lat.Fsync.P99())
	res.FsyncSamples = lat.Fsync.Count
	s.Close()

	// Clean restart: must be byte-for-byte the acknowledged state.
	s2, err := open()
	if err != nil {
		return res, err
	}
	res.CleanLen = s2.Len()
	res.CleanOK = res.CleanLen == len(acked) && subsetOf(s2, acked)
	s2.Close()

	// The kill: chop a tail off the newest WAL segment of shard 0 (the
	// crash tail — the bytes most recently in flight), mid-record with
	// overwhelming probability, and recover.
	cut, err := chopNewestWAL(filepath.Join(dir, "shard-0000"), 257)
	if err != nil {
		return res, err
	}
	res.TornCut = cut
	s3, err := open()
	if err != nil {
		return res, err
	}
	defer s3.Close()
	st3 := s3.PersistStats()
	res.TornLen = s3.Len()
	res.Replayed = st3.ReplayedBatches
	res.TornBytes = st3.TornBytes
	res.TornOK = s3.Validate() == nil && res.TornLen <= len(acked) && subsetOf(s3, acked)
	return res, nil
}

// runClients streams keys through n concurrent client goroutines in
// batches of batchSize.
func runClients(n int, keys []uint64, batchSize int, send func([]uint64)) {
	if n < 1 {
		n = 1
	}
	done := make(chan struct{})
	per := (len(keys) + n - 1) / n
	for c := 0; c < n; c++ {
		lo := c * per
		hi := min(lo+per, len(keys))
		go func(part []uint64) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < len(part); i += batchSize {
				send(part[i:min(i+batchSize, len(part))])
			}
		}(keys[lo:hi])
	}
	for c := 0; c < n; c++ {
		<-done
	}
}

// subsetOf reports whether every key in the set is present in the sorted
// acknowledged slice (recovery must never invent keys).
func subsetOf(s *shard.Sharded, acked []uint64) bool {
	i := 0
	ok := true
	s.Map(func(k uint64) bool {
		for i < len(acked) && acked[i] < k {
			i++
		}
		if i >= len(acked) || acked[i] != k {
			ok = false
			return false
		}
		i++
		return true
	})
	return ok
}

// chopNewestWAL truncates the newest wal-*.log under dir (zero-padded
// names sort by first sequence, so the lexicographic maximum is the
// active tail) by cut bytes, clamped to leave the header, and returns how
// many were cut.
func chopNewestWAL(dir string, cut int64) (int64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	// ReadDir sorts by name, so walk candidates newest-first and take the
	// first segment that actually holds records (a clean reopen leaves a
	// header-only active segment behind — nothing there to tear).
	var best string
	var bestSize int64
	for i := len(ents) - 1; i >= 0 && best == ""; i-- {
		name := ents[i].Name()
		if len(name) < 8 || name[:4] != "wal-" || filepath.Ext(name) != ".log" {
			continue
		}
		info, err := ents[i].Info()
		if err != nil {
			continue
		}
		if info.Size() > persist.SegmentHeaderBytes {
			best, bestSize = filepath.Join(dir, name), info.Size()
		}
	}
	if best == "" {
		return 0, fmt.Errorf("experiments: no non-empty WAL segments under %s", dir)
	}
	if cut > bestSize-persist.SegmentHeaderBytes {
		cut = bestSize - persist.SegmentHeaderBytes
	}
	if cut <= 0 {
		return 0, nil
	}
	return cut, os.Truncate(best, bestSize-cut)
}

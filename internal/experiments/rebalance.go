package experiments

// The rebalance-under-skew sweep. RangePartition is the ordered-scan
// friendly routing policy, but a skewed key distribution concentrates
// load in few spans: with power-law keys (hot keys clustered at the
// bottom of the key space) one shard's writer absorbs nearly the whole
// insert stream and the pipeline degrades to single-writer throughput.
// This experiment streams the same skewed workload into a
// range-partitioned async set with the live rebalancer off and on, and
// reports per-shard load imbalance (max/mean key-count ratio), ingest
// throughput, and the rebalancer's work (boundary moves, keys moved).

import (
	"sync"
	"time"

	"repro/internal/shard"
	"repro/internal/stats"
	"repro/internal/workload"
)

// RebalanceBits is the key width of the skew sweep's power-law keys.
const RebalanceBits = 30

// RebalanceRow is one (rebalance off/on) measurement of the skew sweep.
type RebalanceRow struct {
	Rebalance    bool
	Shards       int
	Clients      int
	IngestTP     float64 // inserts / second (enqueue through final Flush)
	MaxMeanRatio float64 // max/mean shard key-count ratio after the run
	MaxShardFrac float64 // hottest shard's fraction of all keys
	Moves        uint64  // boundary moves performed
	MovedKeys    uint64  // keys that changed shards
	FinalKeys    int
}

// ShardRebalanceSweep streams `clients` goroutines of power-law
// (exponent s, unscrambled — the range-partition-adversarial form)
// insert batches through a range-partitioned async set, once with the
// live rebalancer off and once with it on, and measures the resulting
// shard balance and throughput. The first half of each client's stream
// is an untimed warmup in both configurations — the rebalancer converges
// its boundaries there (the distribution is self-similar, so they stay
// put) — and the timed phase measures the steady state: balanced writers
// versus one hot shard absorbing nearly the whole stream. A trailing
// RebalanceOnce in the "on" configuration settles any residual monitor
// lag so the reported ratio is the rebalancer's steady state.
func ShardRebalanceSweep(cfg MicroConfig, shards, clients, batchSize int, s float64) []RebalanceRow {
	if shards < 1 {
		shards = 1
	}
	if clients < 1 {
		clients = 1
	}
	if batchSize < 1 {
		batchSize = 1
	}
	perClient := cfg.TotalK / clients
	if perClient < 1 {
		perClient = 1
	}
	clientBatches := make([][][]uint64, clients)
	for c := range clientBatches {
		z := workload.NewPowerLaw(workload.NewRNG(cfg.Seed+uint64(c)+1), RebalanceBits, s, false)
		var batches [][]uint64
		for got := 0; got < perClient; got += batchSize {
			n := batchSize
			if perClient-got < n {
				n = perClient - got
			}
			batches = append(batches, workload.PowerLawBatch(z, n))
		}
		clientBatches[c] = batches
	}
	var rows []RebalanceRow
	for _, rebalance := range []bool{false, true} {
		opt := &shard.Options{
			Partition: shard.RangePartition,
			KeyBits:   RebalanceBits,
			Async:     true,
		}
		if rebalance {
			opt.Rebalance = true
			opt.RebalanceEvery = 5 * time.Millisecond // keep the monitor live at bench scale
		}
		set := shard.New(shards, opt)
		run := func(phase func(batches [][]uint64) [][]uint64) {
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					for _, b := range phase(clientBatches[c]) {
						set.InsertBatchAsync(b, false)
					}
				}(c)
			}
			wg.Wait()
			set.Flush()
		}
		run(func(batches [][]uint64) [][]uint64 { return batches[:len(batches)/2] })
		if rebalance {
			set.RebalanceOnce() // converge before the timed phase
		}
		timed := 0
		for c := range clientBatches {
			for _, b := range clientBatches[c][len(clientBatches[c])/2:] {
				timed += len(b)
			}
		}
		d := stats.Time(func() {
			run(func(batches [][]uint64) [][]uint64 { return batches[len(batches)/2:] })
		})
		if rebalance {
			set.RebalanceOnce()
		}
		ratio, lens := set.LoadRatio()
		maxLen, sum := 0, 0
		for _, n := range lens {
			sum += n
			if n > maxLen {
				maxLen = n
			}
		}
		frac := 0.0
		if sum > 0 {
			frac = float64(maxLen) / float64(sum)
		}
		rst := set.RebalanceStats()
		rows = append(rows, RebalanceRow{
			Rebalance:    rebalance,
			Shards:       shards,
			Clients:      clients,
			IngestTP:     stats.Throughput(timed, d),
			MaxMeanRatio: ratio,
			MaxShardFrac: frac,
			Moves:        rst.Moves,
			MovedKeys:    rst.MovedKeys,
			FinalKeys:    sum,
		})
		set.Close()
	}
	return rows
}

package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/aspen"
	"repro/internal/cpacgraph"
	"repro/internal/fgraph"
	"repro/internal/graph"
	"repro/internal/stats"
	"repro/internal/workload"
)

// GraphSystem is the uniform face over the three graph systems.
type GraphSystem interface {
	graph.Graph
	InsertEdges(edges []workload.Edge) int
	SizeBytes() uint64
}

// fgraphSystem wraps F-Graph to rebuild its vertex index inside the timed
// region, as the paper does ("this experiment rebuilds the vertex array
// with each run of the algorithm").
type fgraphSystem struct{ *fgraph.Graph }

// GraphMaker names a system and builds it from an edge list.
type GraphMaker struct {
	Name string
	New  func(nv int, edges []workload.Edge) GraphSystem
}

// GraphMakers returns the three systems in the paper's order: the baselines
// then F-Graph.
func GraphMakers() []GraphMaker {
	return []GraphMaker{
		{Name: "Aspen", New: func(nv int, e []workload.Edge) GraphSystem {
			return aspen.FromEdges(nv, e)
		}},
		{Name: "C-PaC", New: func(nv int, e []workload.Edge) GraphSystem {
			return cpacgraph.FromEdges(nv, e)
		}},
		{Name: "F-Graph", New: func(nv int, e []workload.Edge) GraphSystem {
			return fgraphSystem{fgraph.FromEdges(nv, e, nil)}
		}},
	}
}

// AlgoTimes holds one system's kernel runtimes on one graph.
type AlgoTimes struct {
	Graph  string
	System string
	PR     time.Duration
	CC     time.Duration
	BC     time.Duration
}

// Fig9GraphAlgos runs PR (10 iterations), CC, and BC on every graph and
// system (Figure 9 / Table 14). F-Graph's index rebuild is included in the
// timed region for CC and BC, matching the paper; PR uses its flat scan.
func Fig9GraphAlgos(graphs []workload.SyntheticGraph, seed uint64, prIters int) []AlgoTimes {
	var out []AlgoTimes
	for _, sg := range graphs {
		edges := sg.Build(seed)
		nv := sg.NumVertices()
		for _, mk := range GraphMakers() {
			g := mk.New(nv, edges)
			res := AlgoTimes{Graph: sg.Name, System: mk.Name}
			res.PR = stats.Time(func() {
				prepare(g, false)
				graph.PageRank(g, prIters)
			})
			res.CC = stats.Time(func() {
				prepare(g, true)
				graph.ConnectedComponents(g)
			})
			res.BC = stats.Time(func() {
				prepare(g, true)
				graph.BC(g, 0)
			})
			out = append(out, res)
		}
	}
	return out
}

// prepare invalidates-and-rebuilds F-Graph's vertex index inside the timed
// region; tree systems need no preparation. PR on F-Graph only needs
// degrees, which also come from the index, so it rebuilds too (its cost is
// one flat scan, small next to 10 PR iterations).
func prepare(g GraphSystem, needIndex bool) {
	if fg, ok := g.(fgraphSystem); ok {
		fg.BuildIndex()
		_ = needIndex
	}
}

// InsertGraphRow is one batch-size row of Figure 10 / Table 15.
type InsertGraphRow struct {
	BatchSize  int
	Throughput map[string]float64
}

// Fig10GraphInserts measures batch edge-insert throughput into a prebuilt
// base graph, with batches sampled from the R-MAT distribution (Figure 10 /
// Table 15; the paper uses the FS graph as the base).
func Fig10GraphInserts(base workload.SyntheticGraph, seed uint64, totalInserts int) []InsertGraphRow {
	edges := base.Build(seed)
	nv := base.NumVertices()
	// Insert-stream vertices must stay inside the base graph's id space:
	// floor(log2(nv)) keeps R-MAT samples in range even when nv is not a
	// power of two (the ER stand-in).
	scale := 0
	for 1<<(scale+1) <= nv {
		scale++
	}
	var rows []InsertGraphRow
	for _, bs := range BatchSizes(totalInserts) {
		row := InsertGraphRow{BatchSize: bs, Throughput: map[string]float64{}}
		for _, mk := range GraphMakers() {
			g := mk.New(nv, edges)
			r := workload.NewRNG(seed + 7)
			var batches [][]workload.Edge
			for done := 0; done < totalInserts; done += bs {
				n := bs
				if totalInserts-done < n {
					n = totalInserts - done
				}
				batches = append(batches, workload.RMAT(r, n, scale, workload.DefaultRMAT()))
			}
			d := stats.Time(func() {
				for _, b := range batches {
					g.InsertEdges(b)
				}
			})
			row.Throughput[mk.Name] = stats.Throughput(totalInserts, d)
		}
		rows = append(rows, row)
	}
	return rows
}

// SpaceRow is one graph's footprint across systems (Table 7).
type SpaceRow struct {
	Graph string
	N, M  int64
	Bytes map[string]uint64
}

// Table7GraphSpace measures the memory used to store each graph.
func Table7GraphSpace(graphs []workload.SyntheticGraph, seed uint64) []SpaceRow {
	var rows []SpaceRow
	for _, sg := range graphs {
		edges := sg.Build(seed)
		row := SpaceRow{Graph: sg.Name, N: int64(sg.NumVertices()), Bytes: map[string]uint64{}}
		for _, mk := range GraphMakers() {
			g := mk.New(sg.NumVertices(), edges)
			row.Bytes[mk.Name] = g.SizeBytes()
			row.M = g.NumEdges()
		}
		rows = append(rows, row)
	}
	return rows
}

// WriteAlgoTimes renders Table 14-style output.
func WriteAlgoTimes(w io.Writer, rows []AlgoTimes) {
	fmt.Fprintln(w, "Figure 9 / Table 14: graph algorithm runtimes (seconds)")
	t := stats.NewTable("graph", "system", "PR", "CC", "BC")
	for _, r := range rows {
		t.Row(r.Graph, r.System,
			fmt.Sprintf("%.3f", r.PR.Seconds()),
			fmt.Sprintf("%.3f", r.CC.Seconds()),
			fmt.Sprintf("%.3f", r.BC.Seconds()))
	}
	t.Write(w)
}

// WriteGraphInserts renders Table 15-style output.
func WriteGraphInserts(w io.Writer, rows []InsertGraphRow) {
	fmt.Fprintln(w, "Figure 10 / Table 15: graph batch-insert throughput (edges/s)")
	t := stats.NewTable("batch", "Aspen", "C-PaC", "F-Graph", "F/A", "F/C")
	for _, r := range rows {
		t.Row(stats.Sci(float64(r.BatchSize)),
			stats.Sci(r.Throughput["Aspen"]),
			stats.Sci(r.Throughput["C-PaC"]),
			stats.Sci(r.Throughput["F-Graph"]),
			stats.Ratio(r.Throughput["F-Graph"], r.Throughput["Aspen"]),
			stats.Ratio(r.Throughput["F-Graph"], r.Throughput["C-PaC"]))
	}
	t.Write(w)
}

// WriteGraphSpace renders Table 7-style output.
func WriteGraphSpace(w io.Writer, rows []SpaceRow) {
	fmt.Fprintln(w, "Table 7: graph memory footprint (MB; F/C, F/A below 1 = F-Graph smaller)")
	t := stats.NewTable("graph", "N", "M", "F-Graph", "C-PaC", "Aspen", "F/C", "F/A")
	mb := func(b uint64) string { return fmt.Sprintf("%.2f", float64(b)/(1<<20)) }
	for _, r := range rows {
		f, c, a := r.Bytes["F-Graph"], r.Bytes["C-PaC"], r.Bytes["Aspen"]
		t.Row(r.Graph, r.N, r.M, mb(f), mb(c), mb(a),
			stats.Ratio(float64(f), float64(c)), stats.Ratio(float64(f), float64(a)))
	}
	t.Write(w)
}

// Package experiments implements one reusable driver per table and figure
// of the paper's evaluation (§1, §4, §5, §6, Appendices B–C). The
// cmd/cpma-bench and cmd/fgraph-bench binaries and the root bench_test.go
// all call into this package, so the scaled-down benchmark defaults and the
// full-scale command-line runs share one code path.
package experiments

import (
	"fmt"

	"repro/internal/cpma"
	"repro/internal/pactree"
	"repro/internal/pma"
	"repro/internal/ptree"
	"repro/internal/rma"
	"repro/internal/shard"
)

// Set is the uniform face over the five set systems under test.
type Set interface {
	InsertBatch(keys []uint64, sorted bool) int
	RemoveBatch(keys []uint64, sorted bool) int
	RangeSum(start, end uint64) (uint64, int)
	Sum() uint64
	Len() int
	SizeBytes() uint64
}

// SetMaker names a system and constructs fresh instances of it.
type SetMaker struct {
	Name string
	New  func() Set
}

// PMAMaker returns the uncompressed batch-parallel PMA.
func PMAMaker() SetMaker {
	return SetMaker{Name: "PMA", New: func() Set { return pma.New(nil) }}
}

// CPMAMaker returns the CPMA.
func CPMAMaker() SetMaker {
	return SetMaker{Name: "CPMA", New: func() Set { return cpma.New(nil) }}
}

// PTreeMaker returns the P-tree (PAM) baseline.
func PTreeMaker() SetMaker {
	return SetMaker{Name: "P-tree", New: func() Set { return ptreeSet{ptree.New()} }}
}

// UPaCMaker returns the uncompressed PaC-tree baseline.
func UPaCMaker() SetMaker {
	return SetMaker{Name: "U-PaC", New: func() Set { return pactree.New(&pactree.Options{Compressed: false}) }}
}

// CPaCMaker returns the compressed PaC-tree baseline.
func CPaCMaker() SetMaker {
	return SetMaker{Name: "C-PaC", New: func() Set { return pactree.New(&pactree.Options{Compressed: true}) }}
}

// ShardedMaker returns the concurrent sharded CPMA front-end at a given
// shard count. It is not part of AllSetMakers (the paper's tables compare
// single-writer structures); ComparisonSetMakers, the shards experiments,
// and ad-hoc comparisons use it.
func ShardedMaker(shards int) SetMaker {
	return SetMaker{
		Name: fmt.Sprintf("Shard-%d", shards),
		New:  func() Set { return shard.New(shards, nil) },
	}
}

// AsyncShardedMaker returns the sharded front-end running the mailbox
// ingest pipeline. Through the synchronous Set interface its batches are
// ticketed (enqueue + wait), so it measures the pipeline's overhead, not
// its coalescing win — ShardAsyncIngest measures that. Drivers close the
// returned sets (closeSet) to stop the writer goroutines.
func AsyncShardedMaker(shards int) SetMaker {
	return SetMaker{
		Name: fmt.Sprintf("AShard-%d", shards),
		New:  func() Set { return shard.New(shards, &shard.Options{Async: true}) },
	}
}

// AllSetMakers returns the five systems in the paper's column order.
func AllSetMakers() []SetMaker {
	return []SetMaker{PMAMaker(), CPMAMaker(), UPaCMaker(), CPaCMaker(), PTreeMaker()}
}

// ComparisonSetMakers is AllSetMakers plus the sharded front-end flavors
// (lock-per-batch and async-ticketed) at the given shard count, for the
// comparison tables that go beyond the paper's single-writer systems.
func ComparisonSetMakers(shards int) []SetMaker {
	return append(AllSetMakers(), ShardedMaker(shards), AsyncShardedMaker(shards))
}

// closeSet stops a measured system's background goroutines, if it has any
// (async sharded sets); drivers call it when a system leaves measurement.
func closeSet(s Set) {
	if c, ok := s.(interface{ Close() }); ok {
		c.Close()
	}
}

// ptreeSet adapts ptree.Tree, which lacks RangeSum's exact signature set.
type ptreeSet struct{ *ptree.Tree }

func (p ptreeSet) RangeSum(start, end uint64) (uint64, int) { return p.Tree.RangeSum(start, end) }

// RMASet adapts the serial RMA baseline (insert-only; Table 4).
type RMASet struct{ *rma.RMA }

// NewRMASet returns a fresh RMA.
func NewRMASet() RMASet { return RMASet{rma.New(0)} }

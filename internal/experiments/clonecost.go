package experiments

// The publish/checkpoint cost sweep: the acceptance experiment for the
// leaf-granular COW clones and delta checkpoints. It drives the full
// durable pipeline — async ingest, writer-published snapshot handles,
// explicit checkpoints — and compares what the store actually copied and
// wrote against the pre-COW baseline (a full deep copy per publication,
// a full slab per checkpoint). Two drain shapes bound the answer:
// uniform random drains dirty leaves everywhere (worst case — the ratio
// approaches the spine-only floor as the set grows), while clustered
// drains (contiguous key runs, the monotone-ID shape) touch a handful of
// leaves, which is where O(dirty) beats O(n) by orders of magnitude.

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/persist"
	"repro/internal/shard"
	"repro/internal/workload"
)

// CloneCostRow is one (workload, size) cell of the sweep. Ratios are
// baseline/actual: how many times cheaper the COW/delta machinery is
// than full copies at the same publication and checkpoint cadence.
type CloneCostRow struct {
	Workload    string  `json:"workload"` // "uniform" | "clustered"
	Keys        int     `json:"keys_per_shard"`
	Rounds      int     `json:"rounds"`
	Batch       int     `json:"batch"`
	Publishes   uint64  `json:"publishes"`
	CloneMB     float64 `json:"clone_mb"`     // bytes actually copied for those handles
	FullMB      float64 `json:"full_copy_mb"` // deep-copy baseline for the same handles
	CloneRatio  float64 `json:"clone_ratio"`  // FullMB / CloneMB
	Checkpoints uint64  `json:"checkpoints"`  // full base slabs in the window
	Deltas      uint64  `json:"delta_checkpoints"`
	CkptMB      float64 `json:"checkpoint_mb"`      // bytes written (bases + deltas)
	FullCkptMB  float64 `json:"full_checkpoint_mb"` // one-base-per-event baseline
	CkptRatio   float64 `json:"checkpoint_ratio"`   // FullCkptMB / CkptMB
	IngestTP    float64 `json:"ingest_keys_per_sec"`
}

// CloneCostSweep measures publish and checkpoint cost per drain at each
// steady-state size, for uniform and clustered drains. batch caps the
// drain size; each cell uses size/500 clamped to [256, batch], keeping
// drains proportional to the set the way steady-state ingest is — a
// fixed-size clustered run into a tiny set forces a PMA redistribution
// window that is most of the array, which measures the redistribution
// bound, not the COW machinery. dir hosts the throwaway stores (one per
// cell, removed as it goes).
func CloneCostSweep(cfg MicroConfig, sizes []int, rounds, batch int, dir string) ([]CloneCostRow, error) {
	var rows []CloneCostRow
	for _, size := range sizes {
		b := min(max(size/500, 256), batch)
		for _, wl := range []string{"uniform", "clustered"} {
			row, err := cloneCostCell(cfg, wl, size, rounds, b,
				filepath.Join(dir, fmt.Sprintf("%s-%d", wl, size)))
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func cloneCostCell(cfg MicroConfig, wl string, size, rounds, batch int, dir string) (CloneCostRow, error) {
	row := CloneCostRow{Workload: wl, Keys: size, Rounds: rounds, Batch: batch}
	opt := &shard.Options{
		Dir:                    dir,
		CheckpointEveryBatches: -1, // explicit checkpoints only: one per round
		CompactEveryDeltas:     64, // no compaction inside the measurement window
	}
	s, _, err := persist.OpenSharded(1, opt)
	if err != nil {
		return row, err
	}
	defer os.RemoveAll(dir)
	defer s.Close()

	r := workload.NewRNG(cfg.Seed)
	s.InsertBatch(workload.Uniform(r, size, workload.UniformBits), false)
	if err := s.Checkpoint(); err != nil { // the base slab the deltas chain to
		return row, err
	}
	ss0 := s.SnapshotStats()
	ps0 := s.PersistStats()
	// Cost of one full slab at steady-state size: the per-event baseline a
	// store without deltas would pay for every checkpoint in the window.
	fullCkpt := ps0.CheckpointBytes

	start := time.Now()
	for round := 0; round < rounds; round++ {
		var keys []uint64
		sorted := false
		if wl == "clustered" {
			base := 1 + r.Uint64()%((uint64(1)<<workload.UniformBits)-uint64(batch)-1)
			keys = make([]uint64, batch)
			for i := range keys {
				keys[i] = base + uint64(i)
			}
			sorted = true
		} else {
			keys = workload.Uniform(r, batch, workload.UniformBits)
		}
		s.InsertBatch(keys, sorted)
		if err := s.Checkpoint(); err != nil {
			return row, err
		}
	}
	elapsed := time.Since(start)

	ss := s.SnapshotStats()
	ps := s.PersistStats()
	row.Publishes = ss.Publishes - ss0.Publishes
	cloneB := ss.CloneBytes - ss0.CloneBytes
	fullB := ss.FullCopyBytes - ss0.FullCopyBytes
	row.CloneMB = float64(cloneB) / (1 << 20)
	row.FullMB = float64(fullB) / (1 << 20)
	if cloneB > 0 {
		row.CloneRatio = float64(fullB) / float64(cloneB)
	}
	row.Checkpoints = ps.Checkpoints - ps0.Checkpoints
	row.Deltas = ps.DeltaCheckpoints - ps0.DeltaCheckpoints
	ckptB := (ps.CheckpointBytes + ps.DeltaBytes) - (ps0.CheckpointBytes + ps0.DeltaBytes)
	fullCkptB := (row.Checkpoints + row.Deltas) * fullCkpt
	row.CkptMB = float64(ckptB) / (1 << 20)
	row.FullCkptMB = float64(fullCkptB) / (1 << 20)
	if ckptB > 0 {
		row.CkptRatio = float64(fullCkptB) / float64(ckptB)
	}
	row.IngestTP = float64(rounds*batch) / elapsed.Seconds()
	return row, nil
}

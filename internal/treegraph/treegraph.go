// Package treegraph is the shared machinery behind the tree-based
// dynamic-graph baselines (C-PaC and Aspen): a per-vertex edge tree —
// a blocked, optionally compressed PaC-tree — reached through a vertex
// table. The two baselines differ in block size and per-vertex overhead
// (see internal/cpacgraph and internal/aspen).
package treegraph

import (
	"sort"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/pactree"
	"repro/internal/parallel"
	"repro/internal/workload"
)

// Config selects the edge-block representation and the modeled per-vertex
// cost of the host system's vertex tree.
type Config struct {
	Name            string
	BlockMax        int  // max edges per leaf block of the edge trees
	Compressed      bool // delta-byte-code blocks
	VertexNodeBytes int  // modeled per-vertex overhead of the vertex tree
}

// Graph is an undirected dynamic graph stored as one edge tree per vertex.
// Single writer; batch updates parallelize across vertices.
type Graph struct {
	cfg   Config
	verts []*pactree.Tree
	m     int64
}

// New returns an empty graph over numVertices ids.
func New(numVertices int, cfg Config) *Graph {
	return &Graph{cfg: cfg, verts: make([]*pactree.Tree, numVertices)}
}

// FromEdges builds a graph from a symmetrized edge list.
func FromEdges(numVertices int, edges []workload.Edge, cfg Config) *Graph {
	g := New(numVertices, cfg)
	g.InsertEdges(edges)
	return g
}

// edge trees store dst+1 because key 0 is reserved by the set containers.

// InsertEdges applies a batch of directed edges grouped by source: each
// distinct source's destinations are multi-inserted into its edge tree,
// sources in parallel (the batch-update style of C-PaC and Aspen). Returns
// the number of new edges.
func (g *Graph) InsertEdges(edges []workload.Edge) int {
	return g.update(edges, func(t *pactree.Tree, dsts []uint64) int {
		return t.InsertBatch(dsts, true)
	})
}

// DeleteEdges removes a batch of directed edges, returning how many were
// present.
func (g *Graph) DeleteEdges(edges []workload.Edge) int {
	n := g.update(edges, func(t *pactree.Tree, dsts []uint64) int {
		return -t.RemoveBatch(dsts, true)
	})
	return -n
}

func (g *Graph) update(edges []workload.Edge, apply func(t *pactree.Tree, dsts []uint64) int) int {
	if len(edges) == 0 {
		return 0
	}
	keys := parallel.SortedCopy(workload.EdgeKeys(edges))
	keys = parallel.DedupSorted(keys)
	// Partition into per-source runs.
	type run struct{ lo, hi int }
	var runs []run
	for lo := 0; lo < len(keys); {
		src := keys[lo] >> 32
		hi := lo + sort.Search(len(keys)-lo, func(i int) bool { return keys[lo+i]>>32 != src })
		runs = append(runs, run{lo, hi})
		lo = hi
	}
	var delta atomic.Int64
	parallel.For(len(runs), 1, func(i int) {
		r := runs[i]
		src := uint32(keys[r.lo] >> 32)
		dsts := make([]uint64, 0, r.hi-r.lo)
		for _, k := range keys[r.lo:r.hi] {
			dsts = append(dsts, uint64(uint32(k))+1)
		}
		t := g.verts[src]
		if t == nil {
			t = pactree.New(&pactree.Options{BlockMax: g.cfg.BlockMax, Compressed: g.cfg.Compressed})
			g.verts[src] = t
		}
		delta.Add(int64(apply(t, dsts)))
	})
	g.m += delta.Load()
	return int(delta.Load())
}

// NumVertices returns the vertex-id space.
func (g *Graph) NumVertices() int { return len(g.verts) }

// NumEdges returns the number of stored directed edges.
func (g *Graph) NumEdges() int64 { return g.m }

// Degree returns the out-degree of v.
func (g *Graph) Degree(v uint32) int {
	if t := g.verts[v]; t != nil {
		return t.Len()
	}
	return 0
}

// Neighbors applies f to the out-neighbors of v in ascending order until f
// returns false.
func (g *Graph) Neighbors(v uint32, f func(u uint32) bool) {
	t := g.verts[v]
	if t == nil {
		return
	}
	t.Map(func(k uint64) bool { return f(uint32(k - 1)) })
}

// SizeBytes reports the modeled footprint: edge trees plus the host
// system's vertex-tree overhead.
func (g *Graph) SizeBytes() uint64 {
	var total atomic.Uint64
	parallel.For(len(g.verts), 512, func(i int) {
		if t := g.verts[i]; t != nil {
			total.Add(t.SizeBytes())
		}
	})
	return total.Load() + uint64(len(g.verts)*g.cfg.VertexNodeBytes)
}

// Name returns the configured system name.
func (g *Graph) Name() string { return g.cfg.Name }

var _ graph.Graph = (*Graph)(nil)

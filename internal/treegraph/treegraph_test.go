package treegraph

import (
	"math"
	"slices"
	"testing"

	"repro/internal/graph"
	"repro/internal/workload"
)

func cfg() Config {
	return Config{Name: "test", BlockMax: 32, Compressed: true, VertexNodeBytes: 32}
}

func TestInsertAndNeighbors(t *testing.T) {
	edges := workload.Symmetrize([]workload.Edge{{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 1, Dst: 2}})
	g := FromEdges(4, edges, cfg())
	if g.NumEdges() != 6 {
		t.Fatalf("NumEdges = %d", g.NumEdges())
	}
	var got []uint32
	g.Neighbors(0, func(u uint32) bool {
		got = append(got, u)
		return true
	})
	if !slices.Equal(got, []uint32{1, 2}) {
		t.Fatalf("Neighbors(0) = %v", got)
	}
	if g.Degree(3) != 0 {
		t.Fatal("isolated vertex degree != 0")
	}
}

func TestDeleteEdges(t *testing.T) {
	edges := workload.Symmetrize([]workload.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}})
	g := FromEdges(4, edges, cfg())
	removed := g.DeleteEdges(workload.Symmetrize([]workload.Edge{{Src: 0, Dst: 1}, {Src: 2, Dst: 3}}))
	if removed != 2 {
		t.Fatalf("removed = %d", removed)
	}
	if g.NumEdges() != 2 || g.Degree(0) != 0 {
		t.Fatalf("NumEdges=%d Degree(0)=%d", g.NumEdges(), g.Degree(0))
	}
}

func TestZeroDestinationEdge(t *testing.T) {
	// dst 0 must survive the +1 key shift.
	g := FromEdges(3, []workload.Edge{{Src: 1, Dst: 0}}, cfg())
	var got []uint32
	g.Neighbors(1, func(u uint32) bool {
		got = append(got, u)
		return true
	})
	if !slices.Equal(got, []uint32{0}) {
		t.Fatalf("Neighbors(1) = %v", got)
	}
}

func TestAgreesWithFGraphOnAlgorithms(t *testing.T) {
	rng := workload.NewRNG(11)
	edges := workload.Symmetrize(workload.RMAT(rng, 20_000, 10, workload.DefaultRMAT()))
	nv := 1 << 10
	tg := FromEdges(nv, edges, cfg())

	// Reference adjacency.
	adj := make(map[uint32]map[uint32]bool)
	for _, e := range edges {
		if adj[e.Src] == nil {
			adj[e.Src] = map[uint32]bool{}
		}
		adj[e.Src][e.Dst] = true
	}
	total := 0
	for v := 0; v < nv; v++ {
		total += tg.Degree(uint32(v))
		if len(adj[uint32(v)]) != tg.Degree(uint32(v)) {
			t.Fatalf("degree mismatch at %d", v)
		}
	}
	if int64(total) != tg.NumEdges() {
		t.Fatalf("degree sum %d != NumEdges %d", total, tg.NumEdges())
	}

	labels := graph.ConnectedComponents(tg)
	rank := graph.PageRank(tg, 5)
	if len(labels) != nv || len(rank) != nv {
		t.Fatal("algorithm output sizes wrong")
	}
	sum := 0.0
	for _, x := range rank {
		sum += x
	}
	if math.Abs(sum-1) > 0.2 {
		t.Fatalf("PR mass = %f", sum)
	}
}

func TestSizeBytesGrowsWithEdges(t *testing.T) {
	small := FromEdges(100, workload.Symmetrize([]workload.Edge{{Src: 1, Dst: 2}}), cfg())
	rng := workload.NewRNG(3)
	big := FromEdges(100, workload.Symmetrize(workload.RMAT(rng, 5000, 6, workload.DefaultRMAT())), cfg())
	if big.SizeBytes() <= small.SizeBytes() {
		t.Fatalf("SizeBytes not monotone: %d vs %d", big.SizeBytes(), small.SizeBytes())
	}
}

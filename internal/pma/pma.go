// Package pma implements the uncompressed batch-parallel Packed Memory
// Array of paper §3–4: a sorted array with constant-factor slack, an
// implicit binary tree of density bounds, point updates, cache-friendly
// range maps, and the paper's three-phase parallel batch insert/delete
// (recursive batch merge → work-efficient counting → parallel
// redistribution).
//
// Keys are uint64; the value 0 is reserved as the empty-cell sentinel, as in
// the reference implementation.
package pma

import (
	"fmt"

	"repro/internal/bitutil"
	"repro/internal/pmatree"
)

// Options configures a PMA. The zero value selects the defaults used in the
// paper's evaluation (growing factor 1.2, point updates below batch size
// 100, full rebuild for batches of at least n/10).
type Options struct {
	// GrowthFactor is the multiplicative growing factor applied when the
	// root density bound is violated (paper Appendix C). Must be > 1.
	GrowthFactor float64
	// LeafSize fixes the number of cells per leaf (power of two). 0 selects
	// Θ(log n) automatically on each rebuild.
	LeafSize int
	// PointThreshold is the batch size below which InsertBatch/RemoveBatch
	// fall back to point updates (paper §4: "if k is small, point updates
	// are more efficient").
	PointThreshold int
	// RebuildFraction r makes batches of size >= r*n rebuild the whole
	// structure with a two-finger merge (paper §4: k >= n/10).
	RebuildFraction float64
	// Bounds overrides the density thresholds. Zero value selects
	// pmatree.DefaultBounds.
	Bounds pmatree.Bounds
}

func (o Options) withDefaults() Options {
	if o.GrowthFactor <= 1 {
		o.GrowthFactor = 1.2
	}
	if o.PointThreshold <= 0 {
		o.PointThreshold = 100
	}
	if o.RebuildFraction <= 0 {
		o.RebuildFraction = 0.1
	}
	if o.Bounds == (pmatree.Bounds{}) {
		o.Bounds = pmatree.DefaultBounds()
	}
	return o
}

// minCells is the smallest array the PMA shrinks to.
const minCells = 32

// PMA is an uncompressed batch-parallel Packed Memory Array storing a set of
// nonzero uint64 keys in sorted order. Batch operations parallelize
// internally; a PMA supports one writer at a time (batch-parallel, not
// concurrent — paper §2).
type PMA struct {
	cells    []uint64 // leaves*leafSize cells; 0 = empty; leaves packed left
	counts   []int32  // elements per leaf
	overflow [][]uint64
	tree     *pmatree.Tree
	leafLog2 uint
	leaves   int
	n        int
	opt      Options
}

// New returns an empty PMA. opts may be nil for defaults.
func New(opts *Options) *PMA {
	var o Options
	if opts != nil {
		o = *opts
	}
	p := &PMA{opt: o.withDefaults()}
	p.rebuildFrom(nil)
	return p
}

// FromSorted builds a PMA from a sorted, duplicate-free slice of nonzero
// keys. The slice is not retained.
func FromSorted(keys []uint64, opts *Options) *PMA {
	p := New(opts)
	if len(keys) > 0 {
		if keys[0] == 0 {
			panic("pma: key 0 is reserved")
		}
		p.rebuildFrom(keys)
	}
	return p
}

// Len returns the number of keys stored.
func (p *PMA) Len() int { return p.n }

// Capacity returns the total number of cells.
func (p *PMA) Capacity() int { return len(p.cells) }

// LeafSize returns the current number of cells per leaf.
func (p *PMA) LeafSize() int { return 1 << p.leafLog2 }

// Leaves returns the current number of leaves.
func (p *PMA) Leaves() int { return p.leaves }

// SizeBytes returns the memory footprint of the structure: the cell array
// plus per-leaf metadata (the quantity the paper's get_size reports).
func (p *PMA) SizeBytes() uint64 {
	return uint64(8*len(p.cells) + 4*len(p.counts))
}

func (p *PMA) base(leaf int) int    { return leaf << p.leafLog2 }
func (p *PMA) head(leaf int) uint64 { return p.cells[leaf<<p.leafLog2] }
func (p *PMA) leafLen(leaf int) int { return int(p.counts[leaf]) }
func (p *PMA) used(leaf int) int    { return int(p.counts[leaf]) }
func (p *PMA) leafUpperUnits() int  { return p.tree.UpperUnits(pmatree.Node{Level: 0, Index: 0}) }

// autoLeafSize picks a power-of-two leaf size of Θ(log n) cells.
func autoLeafSize(cells int) int {
	ls := int(bitutil.CeilPow2(uint64(bitutil.Max(8, bitutil.Log2Ceil(uint64(cells)+1)))))
	if ls > 256 {
		ls = 256
	}
	return ls
}

// capacityFor grows the capacity by the growing factor until n elements fit
// under the root's upper density bound, mirroring how repeated root
// violations would grow the array.
func (p *PMA) capacityFor(n int) int {
	c := minCells
	upper := p.opt.Bounds.UpperRoot
	for float64(n) > upper*float64(c) {
		next := int(float64(c) * p.opt.GrowthFactor)
		if next <= c {
			next = c + 1
		}
		c = next
	}
	return c
}

// rebuildFrom replaces the whole structure with a fresh array holding the
// given sorted, duplicate-free keys, spread evenly across leaves.
func (p *PMA) rebuildFrom(all []uint64) {
	cellsNeeded := p.capacityFor(len(all))
	leafSize := p.opt.LeafSize
	if leafSize <= 0 {
		leafSize = autoLeafSize(cellsNeeded)
	}
	leafSize = int(bitutil.CeilPow2(uint64(leafSize)))
	leaves := bitutil.Max(1, bitutil.CeilDiv(cellsNeeded, leafSize))
	p.leafLog2 = uint(bitutil.Log2Ceil(uint64(leafSize)))
	p.leaves = leaves
	p.cells = make([]uint64, leaves<<p.leafLog2)
	p.counts = make([]int32, leaves)
	p.overflow = nil
	p.tree = pmatree.New(leaves, leafSize, p.opt.Bounds)
	p.n = len(all)
	p.scatter(all, 0, leaves)
}

// scatter distributes the sorted run evenly over leaves [loLeaf, hiLeaf),
// packing each leaf to the left and zeroing its tail. Counts are updated;
// any overflow buffers in the range are released.
func (p *PMA) scatter(run []uint64, loLeaf, hiLeaf int) {
	nl := hiLeaf - loLeaf
	share := len(run) / nl
	rem := len(run) % nl
	forLeaves(nl, func(i int) {
		leaf := loLeaf + i
		cnt := share
		off := i * share
		if i < rem {
			cnt++
			off += i
		} else {
			off += rem
		}
		base := p.base(leaf)
		copy(p.cells[base:base+cnt], run[off:off+cnt])
		clearCells(p.cells[base+cnt : base+(1<<p.leafLog2)])
		p.counts[leaf] = int32(cnt)
		if p.overflow != nil {
			p.overflow[leaf] = nil
		}
	})
}

func clearCells(c []uint64) {
	for i := range c {
		c[i] = 0
	}
}

// gather packs the elements of leaves [loLeaf, hiLeaf) — including any
// overflow buffers — into a new sorted slice.
func (p *PMA) gather(loLeaf, hiLeaf int) []uint64 {
	nl := hiLeaf - loLeaf
	offsets := make([]int, nl+1)
	for i := 0; i < nl; i++ {
		offsets[i+1] = offsets[i] + p.leafLen(loLeaf+i)
	}
	buf := make([]uint64, offsets[nl])
	forLeaves(nl, func(i int) {
		leaf := loLeaf + i
		dst := buf[offsets[i]:offsets[i+1]]
		if p.overflow != nil && p.overflow[leaf] != nil {
			copy(dst, p.overflow[leaf])
		} else {
			base := p.base(leaf)
			copy(dst, p.cells[base:base+len(dst)])
		}
	})
	return buf
}

// redistribute evens out the occupancy of a planned region.
func (p *PMA) redistribute(r pmatree.Region) {
	run := p.gather(r.LoLeaf, r.HiLeaf)
	p.scatter(run, r.LoLeaf, r.HiLeaf)
}

// CheckInvariants verifies the structural invariants; tests call it after
// every mutation batch. It returns a descriptive error on the first
// violation found.
func (p *PMA) CheckInvariants() error {
	if p.leaves != len(p.counts) || p.leaves<<p.leafLog2 != len(p.cells) {
		return fmt.Errorf("pma: geometry mismatch")
	}
	total := 0
	var prev uint64
	for leaf := 0; leaf < p.leaves; leaf++ {
		cnt := p.leafLen(leaf)
		if cnt < 0 || cnt > p.LeafSize() {
			return fmt.Errorf("pma: leaf %d count %d out of range", leaf, cnt)
		}
		if p.overflow != nil && p.overflow[leaf] != nil {
			return fmt.Errorf("pma: leaf %d has undrained overflow", leaf)
		}
		base := p.base(leaf)
		for i := 0; i < cnt; i++ {
			v := p.cells[base+i]
			if v == 0 {
				return fmt.Errorf("pma: leaf %d cell %d zero within count", leaf, i)
			}
			if v <= prev {
				return fmt.Errorf("pma: order violation at leaf %d cell %d (%d <= %d)", leaf, i, v, prev)
			}
			prev = v
		}
		for i := cnt; i < p.LeafSize(); i++ {
			if p.cells[base+i] != 0 {
				return fmt.Errorf("pma: leaf %d cell %d nonzero past count", leaf, i)
			}
		}
		total += cnt
	}
	if total != p.n {
		return fmt.Errorf("pma: n=%d but leaves hold %d", p.n, total)
	}
	return nil
}

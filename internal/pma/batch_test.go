package pma

import (
	"math/rand"
	"slices"
	"testing"
	"testing/quick"
)

func TestInsertBatchIntoEmpty(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	keys := uniqueRandom(r, 10_000, 1<<40)
	p := New(nil)
	if added := p.InsertBatch(keys, false); added != len(keys) {
		t.Fatalf("added = %d, want %d", added, len(keys))
	}
	want := slices.Clone(keys)
	slices.Sort(want)
	checkAgainst(t, p, want)
}

func TestInsertBatchSizesAgainstModel(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	base := uniqueRandom(r, 40_000, 1<<40)
	for _, bs := range []int{1, 7, 100, 101, 1000, 5000, 39_999} {
		t.Run("", func(t *testing.T) {
			p := New(nil)
			p.InsertBatch(base, false)
			ref := make(map[uint64]bool, len(base))
			for _, k := range base {
				ref[k] = true
			}
			batch := uniqueRandom(r, bs, 1<<40)
			wantAdded := 0
			for _, k := range batch {
				if !ref[k] {
					wantAdded++
					ref[k] = true
				}
			}
			if added := p.InsertBatch(batch, false); added != wantAdded {
				t.Fatalf("bs=%d: added = %d, want %d", bs, added, wantAdded)
			}
			want := make([]uint64, 0, len(ref))
			for k := range ref {
				want = append(want, k)
			}
			slices.Sort(want)
			checkAgainst(t, p, want)
		})
	}
}

func TestInsertBatchWithManyDuplicates(t *testing.T) {
	p := New(nil)
	base := make([]uint64, 1000)
	for i := range base {
		base[i] = uint64(2 * (i + 1)) // evens
	}
	p.InsertBatch(base, true)
	// Batch: half already present, half odd (new), plus in-batch dups.
	batch := append([]uint64{}, base[:500]...)
	for i := 0; i < 500; i++ {
		batch = append(batch, uint64(2*i+1), uint64(2*i+1))
	}
	added := p.InsertBatch(batch, false)
	if added != 500 {
		t.Fatalf("added = %d, want 500", added)
	}
	if p.Len() != 1500 {
		t.Fatalf("Len = %d, want 1500", p.Len())
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertBatchSkewedToOneLeaf(t *testing.T) {
	// All batch keys land between two adjacent existing keys: the worst case
	// for a single leaf, exercising the overflow-buffer path (Figure 4).
	p := New(nil)
	var base []uint64
	for i := 1; i <= 2000; i++ {
		base = append(base, uint64(i)<<32)
	}
	p.InsertBatch(base, true)
	var batch []uint64
	target := base[1000]
	for i := 1; i <= 5000; i++ {
		batch = append(batch, target+uint64(i))
	}
	if added := p.InsertBatch(batch, true); added != 5000 {
		t.Fatalf("added = %d", added)
	}
	want := parallelMergeRef(base, batch)
	checkAgainst(t, p, want)
}

func parallelMergeRef(a, b []uint64) []uint64 {
	out := append(append([]uint64{}, a...), b...)
	slices.Sort(out)
	return slices.Compact(out)
}

func TestInsertBatchAllSmallerThanExisting(t *testing.T) {
	p := New(nil)
	var base []uint64
	for i := 0; i < 3000; i++ {
		base = append(base, 1<<30+uint64(i))
	}
	p.InsertBatch(base, true)
	var batch []uint64
	for i := 1; i <= 3000; i++ {
		batch = append(batch, uint64(i))
	}
	p.InsertBatch(batch, true)
	checkAgainst(t, p, parallelMergeRef(base, batch))
}

func TestInsertBatchTriggersRebuildMergePath(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	base := uniqueRandom(r, 10_000, 1<<40)
	batch := uniqueRandom(r, 9_000, 1<<40) // k ≈ n: full rebuild path
	p := New(nil)
	p.InsertBatch(base, false)
	p.InsertBatch(batch, false)
	checkAgainst(t, p, parallelMergeRef(base, batch))
}

func TestRemoveBatch(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	base := uniqueRandom(r, 30_000, 1<<40)
	p := New(nil)
	p.InsertBatch(base, false)

	sorted := slices.Clone(base)
	slices.Sort(sorted)
	toRemove := make([]uint64, 0, 10_000)
	for i := 0; i < len(sorted); i += 3 {
		toRemove = append(toRemove, sorted[i])
	}
	// Mix in keys that are absent.
	absent := uniqueRandom(r, 1000, 1<<20)
	mixed := append(slices.Clone(toRemove), absent...)
	present := map[uint64]bool{}
	for _, k := range sorted {
		present[k] = true
	}
	wantRemoved := 0
	for _, k := range mixed {
		if present[k] {
			wantRemoved++
			delete(present, k)
		}
	}
	if got := p.RemoveBatch(mixed, false); got != wantRemoved {
		t.Fatalf("RemoveBatch = %d, want %d", got, wantRemoved)
	}
	want := make([]uint64, 0, len(present))
	for k := range present {
		want = append(want, k)
	}
	slices.Sort(want)
	checkAgainst(t, p, want)
}

func TestRemoveBatchEverything(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	base := uniqueRandom(r, 20_000, 1<<40)
	p := New(nil)
	p.InsertBatch(base, false)
	if got := p.RemoveBatch(base, false); got != len(base) {
		t.Fatalf("removed %d, want %d", got, len(base))
	}
	checkAgainst(t, p, nil)
}

func TestAlternatingBatchInsertDelete(t *testing.T) {
	r := rand.New(rand.NewSource(15))
	p := New(nil)
	ref := map[uint64]bool{}
	for round := 0; round < 20; round++ {
		ins := uniqueRandom(r, 2000, 1<<24)
		p.InsertBatch(ins, false)
		for _, k := range ins {
			ref[k] = true
		}
		del := uniqueRandom(r, 1500, 1<<24)
		wantDel := 0
		for _, k := range del {
			if ref[k] {
				wantDel++
				delete(ref, k)
			}
		}
		if got := p.RemoveBatch(del, false); got != wantDel {
			t.Fatalf("round %d: removed %d, want %d", round, got, wantDel)
		}
		if p.Len() != len(ref) {
			t.Fatalf("round %d: Len %d, want %d", round, p.Len(), len(ref))
		}
		if err := p.CheckInvariants(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	want := make([]uint64, 0, len(ref))
	for k := range ref {
		want = append(want, k)
	}
	slices.Sort(want)
	checkAgainst(t, p, want)
}

func TestBatchPropertyAgainstModel(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := New(nil)
		ref := map[uint64]bool{}
		for round := 0; round < 6; round++ {
			n := 200 + r.Intn(3000)
			batch := make([]uint64, n)
			for i := range batch {
				batch[i] = 1 + r.Uint64()%(1<<20)
			}
			if r.Intn(2) == 0 {
				p.InsertBatch(batch, false)
				for _, k := range batch {
					ref[k] = true
				}
			} else {
				p.RemoveBatch(batch, false)
				for _, k := range batch {
					delete(ref, k)
				}
			}
			if p.Len() != len(ref) {
				return false
			}
		}
		if p.CheckInvariants() != nil {
			return false
		}
		got := p.Keys()
		want := make([]uint64, 0, len(ref))
		for k := range ref {
			want = append(want, k)
		}
		slices.Sort(want)
		return slices.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestBatchInsertPresortedFlag(t *testing.T) {
	r := rand.New(rand.NewSource(16))
	keys := uniqueRandom(r, 5000, 1<<40)
	slices.Sort(keys)
	p1 := New(nil)
	p1.InsertBatch(keys, true)
	p2 := New(nil)
	shuffled := slices.Clone(keys)
	r.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	p2.InsertBatch(shuffled, false)
	if !slices.Equal(p1.Keys(), p2.Keys()) {
		t.Fatal("sorted and unsorted insertion disagree")
	}
}

func TestSmallLeafOptionStress(t *testing.T) {
	// Tiny leaves force many redistributions and growths.
	r := rand.New(rand.NewSource(17))
	p := New(&Options{LeafSize: 8, GrowthFactor: 1.3})
	ref := map[uint64]bool{}
	for round := 0; round < 10; round++ {
		batch := make([]uint64, 700)
		for i := range batch {
			batch[i] = 1 + r.Uint64()%(1<<16)
		}
		p.InsertBatch(batch, false)
		for _, k := range batch {
			ref[k] = true
		}
		if err := p.CheckInvariants(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	if p.Len() != len(ref) {
		t.Fatalf("Len %d, want %d", p.Len(), len(ref))
	}
}

func TestZipfianBatchesRegression(t *testing.T) {
	// Regression: zipfian (scrambled hot-key) batches used to hit the
	// "batch elements with no target leaf range" panic when the median's
	// leaf was the leftmost of a recursion range but the sub-batch held
	// smaller keys.
	r := rand.New(rand.NewSource(99))
	p := New(nil)
	ref := map[uint64]bool{}
	for round := 0; round < 12; round++ {
		batch := make([]uint64, 1500)
		for i := range batch {
			// Heavy-tailed: many repeats of a few hot keys plus a spread.
			if r.Intn(3) == 0 {
				batch[i] = 1 + uint64(r.Intn(20))
			} else {
				batch[i] = 1 + r.Uint64()%(1<<34)
			}
		}
		p.InsertBatch(batch, false)
		for _, k := range batch {
			ref[k] = true
		}
		if err := p.CheckInvariants(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	if p.Len() != len(ref) {
		t.Fatalf("Len %d, want %d", p.Len(), len(ref))
	}
}

package pma

import (
	"sort"
	"sync/atomic"

	"repro/internal/parallel"
)

// mergeForkGrain is the batch size above which the recursive batch merge
// forks its three-way work (leaf merge, left recursion, right recursion).
const mergeForkGrain = 2048

// InsertBatch inserts a batch of keys and returns the number of keys that
// were not already present. If sorted is false the batch is sorted (in a
// copy) first; duplicates inside the batch are removed either way.
//
// This is the paper's parallel batch-insert algorithm (§4): point inserts
// for tiny batches, a full two-finger rebuild merge for huge ones, and the
// three-phase merge/count/redistribute algorithm in between.
func (p *PMA) InsertBatch(keys []uint64, sorted bool) int {
	batch := p.prepareBatch(keys, sorted)
	if len(batch) == 0 {
		return 0
	}
	switch {
	case p.n == 0:
		p.rebuildFrom(batch)
		return len(batch)
	case len(batch) <= p.opt.PointThreshold:
		added := 0
		for _, x := range batch {
			if p.Insert(x) {
				added++
			}
		}
		return added
	case float64(len(batch)) >= p.opt.RebuildFraction*float64(p.n):
		return p.rebuildMerge(batch)
	default:
		return p.batchMerge(batch)
	}
}

// RemoveBatch removes a batch of keys and returns the number of keys that
// were present. Batch deletes are symmetric to inserts (§4) but never
// overflow leaves, and the counting phase checks lower density bounds.
func (p *PMA) RemoveBatch(keys []uint64, sorted bool) int {
	batch := p.prepareBatch(keys, sorted)
	if len(batch) == 0 || p.n == 0 {
		return 0
	}
	if len(batch) <= p.opt.PointThreshold {
		removed := 0
		for _, x := range batch {
			if p.Remove(x) {
				removed++
			}
		}
		return removed
	}
	dirty := parallel.NewBitset(p.leaves)
	var removed atomic.Int64
	p.removeRange(batch, 0, p.leaves-1, dirty, &removed)
	p.n -= int(removed.Load())
	if len(p.cells) > minCells {
		plan := p.tree.Count(p.used, dirty.Indices(), false, true)
		p.applyPlan(plan)
	}
	return int(removed.Load())
}

// prepareBatch normalizes a batch: sorted, duplicate-free, nonzero keys.
func (p *PMA) prepareBatch(keys []uint64, sorted bool) []uint64 {
	if len(keys) == 0 {
		return nil
	}
	var batch []uint64
	if sorted {
		batch = parallel.DedupSorted(keys)
	} else {
		batch = parallel.DedupSorted(parallel.SortedCopy(keys))
	}
	if len(batch) > 0 && batch[0] == 0 {
		panic("pma: key 0 is reserved")
	}
	return batch
}

// batchMerge runs the three phases of the parallel batch insert.
func (p *PMA) batchMerge(batch []uint64) int {
	if p.overflow == nil {
		p.overflow = make([][]uint64, p.leaves)
	}
	dirty := parallel.NewBitset(p.leaves)
	var added atomic.Int64

	// Phase 1: recursive parallel batch merge.
	p.mergeRange(batch, 0, p.leaves-1, dirty, &added)
	p.n += int(added.Load())

	// Phase 2: work-efficient parallel counting.
	plan := p.tree.Count(p.used, dirty.Indices(), true, false)

	// Phase 3: parallel redistribution (or growth).
	p.applyPlan(plan)
	return int(added.Load())
}

// applyPlan in batch.go context must drain overflow buffers; gather already
// understands them, and the planner guarantees every overflowed leaf is
// covered by a redistribution region or by a rebuild.

// mergeRange implements the recursive batch-merge phase (paper §4): search
// for the batch median's target leaf within [loLeaf, hiLeaf], find the
// extent of the batch destined for that leaf, then in parallel merge that
// extent into the leaf and recurse on the left and right remainders.
//
// The leaf-range bounds guarantee that no search performed by this call
// probes a leaf owned by a concurrently forked merge, so the phase is safe
// without locks.
func (p *PMA) mergeRange(batch []uint64, loLeaf, hiLeaf int, dirty *parallel.Bitset, added *atomic.Int64) {
	if len(batch) == 0 {
		return
	}
	if loLeaf > hiLeaf {
		panic("pma: batch elements with no target leaf range")
	}
	mid := batch[len(batch)/2]
	leaf := p.leafForIn(mid, loLeaf, hiLeaf)
	var lo, hi int
	if leaf == -1 {
		// No non-empty leaf with head <= mid in range.
		first := p.firstNonEmptyIn(loLeaf, hiLeaf)
		if first == -1 {
			// The whole range is empty: the parent guaranteed every batch
			// element sorts between the surrounding leaves, so park the run
			// in the middle leaf; redistribution will spread it.
			p.mergeLeaf((loLeaf+hiLeaf)/2, batch, dirty, added)
			return
		}
		// Elements preceding the first head merge into that leaf.
		leaf = first
		lo = 0
	} else if leaf == loLeaf {
		// No room to recurse left: elements below this head belong at the
		// front of the range's first leaf.
		lo = 0
	} else {
		h := p.head(leaf)
		lo = sort.Search(len(batch), func(i int) bool { return batch[i] >= h })
	}
	upper := p.nextHeadIn(leaf, hiLeaf)
	hi = lo + sort.Search(len(batch)-lo, func(i int) bool { return batch[lo+i] >= upper })

	sub, left, right := batch[lo:hi], batch[:lo], batch[hi:]
	if len(batch) <= mergeForkGrain {
		p.mergeLeaf(leaf, sub, dirty, added)
		p.mergeRange(left, loLeaf, leaf-1, dirty, added)
		p.mergeRange(right, leaf+1, hiLeaf, dirty, added)
		return
	}
	parallel.Do3(
		func() { p.mergeLeaf(leaf, sub, dirty, added) },
		func() { p.mergeRange(left, loLeaf, leaf-1, dirty, added) },
		func() { p.mergeRange(right, leaf+1, hiLeaf, dirty, added) },
	)
}

// mergeLeaf merges a sorted run of batch keys into one leaf. If the merged
// result exceeds the leaf's physical capacity it is kept out-of-place in the
// overflow buffer with its size recorded in the leaf count (paper Figure 4);
// the redistribution phase drains it.
func (p *PMA) mergeLeaf(leaf int, sub []uint64, dirty *parallel.Bitset, added *atomic.Int64) {
	if len(sub) == 0 {
		return
	}
	dirty.Set(leaf)
	base := p.base(leaf)
	cnt := p.leafLen(leaf)
	leafSize := p.LeafSize()
	if cnt == 0 {
		if len(sub) <= leafSize {
			copy(p.cells[base:base+len(sub)], sub)
		} else {
			p.overflow[leaf] = append([]uint64(nil), sub...)
		}
		p.counts[leaf] = int32(len(sub))
		added.Add(int64(len(sub)))
		return
	}
	merged, fresh := parallel.MergeDedup(p.cells[base:base+cnt], sub)
	if len(merged) <= leafSize {
		copy(p.cells[base:base+len(merged)], merged)
		clearCells(p.cells[base+len(merged) : base+leafSize])
	} else {
		p.overflow[leaf] = merged
	}
	p.counts[leaf] = int32(len(merged))
	added.Add(int64(fresh))
}

// rebuildMerge handles batches of size Ω(n): gather everything, two-finger
// merge with the batch in parallel, and rebuild the array (paper §4: "if k
// is large, the optimal algorithm is to rebuild the entire data structure
// with a linear two-finger merge").
func (p *PMA) rebuildMerge(batch []uint64) int {
	all := p.gather(0, p.leaves)
	merged, fresh := parallel.MergeDedup(all, batch)
	p.rebuildFrom(merged)
	return fresh
}

// removeRange is the delete-side analogue of mergeRange.
func (p *PMA) removeRange(batch []uint64, loLeaf, hiLeaf int, dirty *parallel.Bitset, removed *atomic.Int64) {
	if len(batch) == 0 || loLeaf > hiLeaf {
		return
	}
	mid := batch[len(batch)/2]
	leaf := p.leafForIn(mid, loLeaf, hiLeaf)
	var lo, hi int
	if leaf == -1 {
		first := p.firstNonEmptyIn(loLeaf, hiLeaf)
		if first == -1 {
			return // nothing stored in this range, nothing to delete
		}
		leaf = first
		lo = 0
	} else if leaf == loLeaf {
		lo = 0
	} else {
		h := p.head(leaf)
		lo = sort.Search(len(batch), func(i int) bool { return batch[i] >= h })
	}
	upper := p.nextHeadIn(leaf, hiLeaf)
	hi = lo + sort.Search(len(batch)-lo, func(i int) bool { return batch[lo+i] >= upper })

	sub, left, right := batch[lo:hi], batch[:lo], batch[hi:]
	if len(batch) <= mergeForkGrain {
		p.removeLeaf(leaf, sub, dirty, removed)
		p.removeRange(left, loLeaf, leaf-1, dirty, removed)
		p.removeRange(right, leaf+1, hiLeaf, dirty, removed)
		return
	}
	parallel.Do3(
		func() { p.removeLeaf(leaf, sub, dirty, removed) },
		func() { p.removeRange(left, loLeaf, leaf-1, dirty, removed) },
		func() { p.removeRange(right, leaf+1, hiLeaf, dirty, removed) },
	)
}

// removeLeaf deletes the keys of sub present in the leaf with a two-finger
// difference. Deletes never overflow (paper §6: "deletes do not have to
// allocate temporary space as they will never overflow the PMA leaves").
func (p *PMA) removeLeaf(leaf int, sub []uint64, dirty *parallel.Bitset, removed *atomic.Int64) {
	if len(sub) == 0 {
		return
	}
	base := p.base(leaf)
	cnt := p.leafLen(leaf)
	w := 0
	j := 0
	dropped := 0
	for i := 0; i < cnt; i++ {
		v := p.cells[base+i]
		for j < len(sub) && sub[j] < v {
			j++
		}
		if j < len(sub) && sub[j] == v {
			dropped++
			continue
		}
		p.cells[base+w] = v
		w++
	}
	if dropped == 0 {
		return
	}
	clearCells(p.cells[base+w : base+cnt])
	p.counts[leaf] = int32(w)
	dirty.Set(leaf)
	removed.Add(int64(dropped))
}

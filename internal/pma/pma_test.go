package pma

import (
	"math/rand"
	"slices"
	"testing"
	"testing/quick"
)

func checkAgainst(t *testing.T, p *PMA, want []uint64) {
	t.Helper()
	if err := p.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	if p.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", p.Len(), len(want))
	}
	got := p.Keys()
	if !slices.Equal(got, want) {
		t.Fatalf("contents mismatch: got %d keys, want %d", len(got), len(want))
	}
}

func uniqueRandom(r *rand.Rand, n int, max uint64) []uint64 {
	set := make(map[uint64]bool, n)
	for len(set) < n {
		set[1+r.Uint64()%max] = true
	}
	out := make([]uint64, 0, n)
	for k := range set {
		out = append(out, k)
	}
	return out
}

func TestEmpty(t *testing.T) {
	p := New(nil)
	if p.Len() != 0 || p.Has(42) {
		t.Fatal("empty PMA misbehaves")
	}
	if _, ok := p.Min(); ok {
		t.Fatal("Min on empty should report false")
	}
	if _, ok := p.Next(1); ok {
		t.Fatal("Next on empty should report false")
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPointInsertSmall(t *testing.T) {
	p := New(nil)
	keys := []uint64{5, 3, 9, 1, 7, 3, 5}
	added := 0
	for _, k := range keys {
		if p.Insert(k) {
			added++
		}
	}
	if added != 5 {
		t.Fatalf("added = %d, want 5", added)
	}
	checkAgainst(t, p, []uint64{1, 3, 5, 7, 9})
	for _, k := range []uint64{1, 3, 5, 7, 9} {
		if !p.Has(k) {
			t.Fatalf("missing %d", k)
		}
	}
	if p.Has(2) || p.Has(10) {
		t.Fatal("phantom membership")
	}
}

func TestPointInsertManyTriggersGrowth(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	keys := uniqueRandom(r, 20_000, 1<<40)
	p := New(nil)
	for _, k := range keys {
		if !p.Insert(k) {
			t.Fatalf("Insert(%d) reported duplicate", k)
		}
	}
	want := slices.Clone(keys)
	slices.Sort(want)
	checkAgainst(t, p, want)
	// Reinsertion must all be duplicates.
	for _, k := range keys[:100] {
		if p.Insert(k) {
			t.Fatalf("duplicate insert of %d succeeded", k)
		}
	}
}

func TestAscendingAndDescendingInserts(t *testing.T) {
	for name, gen := range map[string]func(i int) uint64{
		"ascending":  func(i int) uint64 { return uint64(i + 1) },
		"descending": func(i int) uint64 { return uint64(50_000 - i) },
	} {
		t.Run(name, func(t *testing.T) {
			p := New(nil)
			n := 50_000
			for i := 0; i < n; i++ {
				p.Insert(gen(i))
			}
			if p.Len() != n {
				t.Fatalf("Len = %d", p.Len())
			}
			if err := p.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			if v, _ := p.Min(); v != 1 {
				t.Fatalf("Min = %d", v)
			}
			if v, _ := p.Max(); v != uint64(n) {
				t.Fatalf("Max = %d", v)
			}
		})
	}
}

func TestPointRemove(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	keys := uniqueRandom(r, 5000, 1<<30)
	p := New(nil)
	for _, k := range keys {
		p.Insert(k)
	}
	want := slices.Clone(keys)
	slices.Sort(want)
	// Remove every other key.
	removed := map[uint64]bool{}
	for i := 0; i < len(keys); i += 2 {
		if !p.Remove(keys[i]) {
			t.Fatalf("Remove(%d) failed", keys[i])
		}
		removed[keys[i]] = true
	}
	if p.Remove(0) {
		t.Fatal("Remove(0) should be false")
	}
	var left []uint64
	for _, k := range want {
		if !removed[k] {
			left = append(left, k)
		}
	}
	checkAgainst(t, p, left)
}

func TestRemoveAllShrinks(t *testing.T) {
	p := New(nil)
	n := 30_000
	for i := 1; i <= n; i++ {
		p.Insert(uint64(i))
	}
	grown := p.Capacity()
	for i := 1; i <= n; i++ {
		if !p.Remove(uint64(i)) {
			t.Fatalf("Remove(%d) failed", i)
		}
	}
	if p.Len() != 0 {
		t.Fatalf("Len = %d after removing all", p.Len())
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if p.Capacity() >= grown {
		t.Fatalf("capacity did not shrink: %d -> %d", grown, p.Capacity())
	}
}

func TestNext(t *testing.T) {
	p := FromSorted([]uint64{10, 20, 30, 40}, nil)
	cases := []struct {
		x    uint64
		want uint64
		ok   bool
	}{
		{1, 10, true}, {10, 10, true}, {11, 20, true}, {40, 40, true}, {41, 0, false},
	}
	for _, c := range cases {
		got, ok := p.Next(c.x)
		if got != c.want || ok != c.ok {
			t.Errorf("Next(%d) = (%d,%v), want (%d,%v)", c.x, got, ok, c.want, c.ok)
		}
	}
}

func TestFromSorted(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	keys := uniqueRandom(r, 12_345, 1<<40)
	slices.Sort(keys)
	p := FromSorted(keys, nil)
	checkAgainst(t, p, keys)
}

func TestMapRange(t *testing.T) {
	keys := make([]uint64, 0, 1000)
	for i := 1; i <= 1000; i++ {
		keys = append(keys, uint64(i*10))
	}
	p := FromSorted(keys, nil)
	var got []uint64
	p.MapRange(95, 255, func(v uint64) bool {
		got = append(got, v)
		return true
	})
	var want []uint64
	for _, k := range keys {
		if k >= 95 && k < 255 {
			want = append(want, k)
		}
	}
	if !slices.Equal(got, want) {
		t.Fatalf("MapRange got %v, want %v", got, want)
	}
	// Early exit.
	calls := 0
	p.MapRange(0, ^uint64(0), func(uint64) bool {
		calls++
		return calls < 7
	})
	if calls != 7 {
		t.Fatalf("early exit after %d calls", calls)
	}
}

func TestMapRangeLength(t *testing.T) {
	p := FromSorted([]uint64{2, 4, 6, 8, 10, 12}, nil)
	var got []uint64
	n := p.MapRangeLength(5, 3, func(v uint64) bool {
		got = append(got, v)
		return true
	})
	if n != 3 || !slices.Equal(got, []uint64{6, 8, 10}) {
		t.Fatalf("MapRangeLength = %d %v", n, got)
	}
	if n := p.MapRangeLength(100, 3, func(uint64) bool { return true }); n != 0 {
		t.Fatalf("past-the-end visit count %d", n)
	}
}

func TestSumAndRangeSum(t *testing.T) {
	keys := []uint64{1, 2, 3, 4, 5, 100, 200}
	p := FromSorted(keys, nil)
	if got := p.Sum(); got != 315 {
		t.Fatalf("Sum = %d", got)
	}
	sum, count := p.RangeSum(2, 100)
	if sum != 2+3+4+5 || count != 4 {
		t.Fatalf("RangeSum = %d/%d", sum, count)
	}
}

func TestParallelMapVisitsAll(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	keys := uniqueRandom(r, 50_000, 1<<40)
	p := New(nil)
	p.InsertBatch(keys, false)
	var total uint64
	serial := p.Sum()
	ch := make(chan uint64, 64)
	done := make(chan struct{})
	go func() {
		for v := range ch {
			total += v
		}
		close(done)
	}()
	p.ParallelMap(func(v uint64) { ch <- v })
	close(ch)
	<-done
	if total != serial {
		t.Fatalf("ParallelMap sum %d != Sum %d", total, serial)
	}
}

func TestInsertZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on key 0")
		}
	}()
	New(nil).Insert(0)
}

func TestGrowingFactorAffectsCapacity(t *testing.T) {
	keys := make([]uint64, 50_000)
	for i := range keys {
		keys[i] = uint64(i + 1)
	}
	small := New(&Options{GrowthFactor: 1.1})
	big := New(&Options{GrowthFactor: 2.0})
	small.InsertBatch(keys, true)
	big.InsertBatch(keys, true)
	if small.Capacity() > big.Capacity() {
		t.Fatalf("growth 1.1 capacity %d > growth 2.0 capacity %d", small.Capacity(), big.Capacity())
	}
	if err := small.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := big.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRandomOpsAgainstReferenceModel(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := New(nil)
		ref := map[uint64]bool{}
		for op := 0; op < 2000; op++ {
			k := 1 + r.Uint64()%512 // small key space forces collisions
			switch r.Intn(3) {
			case 0:
				got := p.Insert(k)
				want := !ref[k]
				if got != want {
					return false
				}
				ref[k] = true
			case 1:
				got := p.Remove(k)
				if got != ref[k] {
					return false
				}
				delete(ref, k)
			default:
				if p.Has(k) != ref[k] {
					return false
				}
			}
		}
		if p.Len() != len(ref) {
			return false
		}
		return p.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

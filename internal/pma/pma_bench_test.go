package pma

import (
	"testing"

	"repro/internal/workload"
)

func benchBase(n int) *PMA {
	p := New(nil)
	p.InsertBatch(workload.Uniform(workload.NewRNG(1), n, 40), false)
	return p
}

func BenchmarkPointInsert(b *testing.B) {
	p := benchBase(100_000)
	r := workload.NewRNG(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Insert(1 + r.Uint64()%(1<<40))
	}
}

func BenchmarkPointQuery(b *testing.B) {
	p := benchBase(100_000)
	r := workload.NewRNG(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Has(1 + r.Uint64()%(1<<40))
	}
}

func BenchmarkBatchInsert10k(b *testing.B) {
	p := benchBase(100_000)
	r := workload.NewRNG(4)
	batches := make([][]uint64, 32)
	for i := range batches {
		batches[i] = workload.Uniform(r, 10_000, 40)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.InsertBatch(batches[i%len(batches)], false)
	}
}

func BenchmarkSum(b *testing.B) {
	p := benchBase(200_000)
	b.SetBytes(int64(8 * p.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Sum()
	}
}

func BenchmarkRangeSum(b *testing.B) {
	p := benchBase(200_000)
	r := workload.NewRNG(5)
	span := uint64(1) << 40 / 100 // ~1% of the key space
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := 1 + r.Uint64()%(uint64(1)<<40-span)
		p.RangeSum(lo, lo+span)
	}
}

package pma

import "repro/internal/parallel"

// Map applies f to every key in ascending order, stopping early if f
// returns false. It reports whether the scan ran to completion.
func (p *PMA) Map(f func(uint64) bool) bool {
	for leaf := 0; leaf < p.leaves; leaf++ {
		base := p.base(leaf)
		for i := 0; i < p.leafLen(leaf); i++ {
			if !f(p.cells[base+i]) {
				return false
			}
		}
	}
	return true
}

// ParallelMap applies f to every key with leaf-level parallelism. f must be
// safe for concurrent calls; ordering is only guaranteed within a leaf.
func (p *PMA) ParallelMap(f func(uint64)) {
	forLeaves(p.leaves, func(leaf int) {
		base := p.base(leaf)
		for i := 0; i < p.leafLen(leaf); i++ {
			f(p.cells[base+i])
		}
	})
}

// MapRange applies f to every key in [start, end) in ascending order — the
// paper's range_map: one search then a contiguous scan. It stops early if f
// returns false and reports whether it reached the end of the range.
func (p *PMA) MapRange(start, end uint64, f func(uint64) bool) bool {
	if p.n == 0 || start >= end {
		return true
	}
	leaf := p.findLeaf(start)
	pos, _ := p.searchLeaf(leaf, start)
	for ; leaf < p.leaves; leaf++ {
		base := p.base(leaf)
		cnt := p.leafLen(leaf)
		for ; pos < cnt; pos++ {
			v := p.cells[base+pos]
			if v >= end {
				return true
			}
			if !f(v) {
				return false
			}
		}
		pos = 0
	}
	return true
}

// MapRangeLength applies f to at most length keys starting from the
// smallest key >= start, returning the number of keys visited.
func (p *PMA) MapRangeLength(start uint64, length int, f func(uint64) bool) int {
	if p.n == 0 || length <= 0 {
		return 0
	}
	leaf := p.findLeaf(start)
	pos, _ := p.searchLeaf(leaf, start)
	visited := 0
	for ; leaf < p.leaves; leaf++ {
		base := p.base(leaf)
		cnt := p.leafLen(leaf)
		for ; pos < cnt; pos++ {
			v := p.cells[base+pos]
			if v < start {
				continue
			}
			if visited == length || !f(v) {
				return visited
			}
			visited++
		}
		pos = 0
	}
	return visited
}

// Sum returns the sum (mod 2^64) of all keys, computed with leaf-level
// parallelism; the paper uses it as the canonical scan microbenchmark.
func (p *PMA) Sum() uint64 {
	return parallel.ReduceSum(p.leaves, 8, func(leaf int) uint64 {
		base := p.base(leaf)
		var s uint64
		for i := 0; i < p.leafLen(leaf); i++ {
			s += p.cells[base+i]
		}
		return s
	})
}

// RangeSum sums keys in [start, end); used by the range-query benchmarks.
func (p *PMA) RangeSum(start, end uint64) (sum uint64, count int) {
	p.MapRange(start, end, func(v uint64) bool {
		sum += v
		count++
		return true
	})
	return sum, count
}

// Keys returns all keys in ascending order; primarily for tests.
func (p *PMA) Keys() []uint64 {
	out := make([]uint64, 0, p.n)
	p.Map(func(v uint64) bool {
		out = append(out, v)
		return true
	})
	return out
}

package pma

import (
	"repro/internal/parallel"
	"repro/internal/pmatree"
)

// forLeaves runs f over n leaves in parallel with a grain that keeps
// per-task work in the tens of KB of cells, amortizing the fork cost.
func forLeaves(n int, f func(i int)) {
	parallel.For(n, 64, f)
}

// leafForIn returns the index of the last non-empty leaf in [lo, hi] whose
// head is <= x, or -1 when no such leaf exists. Empty leaves (head 0) are
// skipped by walking left from the probe, the classic PMA search.
func (p *PMA) leafForIn(x uint64, lo, hi int) int {
	res := -1
	for lo <= hi {
		mid := int(uint(lo+hi) >> 1)
		j := mid
		for j >= lo && p.head(j) == 0 {
			j--
		}
		if j < lo {
			lo = mid + 1
			continue
		}
		if p.head(j) <= x {
			res = j
			lo = mid + 1
		} else {
			hi = j - 1
		}
	}
	return res
}

// firstNonEmptyIn returns the first non-empty leaf in [lo, hi], or -1.
func (p *PMA) firstNonEmptyIn(lo, hi int) int {
	for j := lo; j <= hi; j++ {
		if p.head(j) != 0 {
			return j
		}
	}
	return -1
}

// nextHeadIn returns the head of the first non-empty leaf in (leaf, hi], or
// MaxUint64 when the rest of the range is empty.
func (p *PMA) nextHeadIn(leaf, hi int) uint64 {
	for j := leaf + 1; j <= hi; j++ {
		if h := p.head(j); h != 0 {
			return h
		}
	}
	return ^uint64(0)
}

// findLeaf locates the leaf a key belongs to for point operations: the last
// non-empty leaf with head <= x, falling back to the first non-empty leaf
// when x precedes every head. Returns -1 iff the PMA is empty.
func (p *PMA) findLeaf(x uint64) int {
	leaf := p.leafForIn(x, 0, p.leaves-1)
	if leaf == -1 {
		leaf = p.firstNonEmptyIn(0, p.leaves-1)
	}
	return leaf
}

// searchLeaf binary-searches the packed elements of a leaf, returning the
// insertion position of x and whether x is present.
func (p *PMA) searchLeaf(leaf int, x uint64) (pos int, found bool) {
	base := p.base(leaf)
	lo, hi := 0, p.leafLen(leaf)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		switch v := p.cells[base+mid]; {
		case v < x:
			lo = mid + 1
		case v > x:
			hi = mid
		default:
			return mid, true
		}
	}
	return lo, false
}

// Has reports whether x is in the set.
func (p *PMA) Has(x uint64) bool {
	if x == 0 || p.n == 0 {
		return false
	}
	leaf := p.findLeaf(x)
	_, found := p.searchLeaf(leaf, x)
	return found
}

// Next returns the smallest key >= x, the paper's search(x) operation.
func (p *PMA) Next(x uint64) (uint64, bool) {
	if p.n == 0 {
		return 0, false
	}
	leaf := p.findLeaf(x)
	pos, found := p.searchLeaf(leaf, x)
	if found {
		return x, true
	}
	if pos < p.leafLen(leaf) {
		return p.cells[p.base(leaf)+pos], true
	}
	for j := leaf + 1; j < p.leaves; j++ {
		if h := p.head(j); h != 0 {
			return h, true
		}
	}
	return 0, false
}

// Min returns the smallest key in the set.
func (p *PMA) Min() (uint64, bool) {
	if p.n == 0 {
		return 0, false
	}
	return p.head(p.firstNonEmptyIn(0, p.leaves-1)), true
}

// Max returns the largest key in the set.
func (p *PMA) Max() (uint64, bool) {
	if p.n == 0 {
		return 0, false
	}
	for j := p.leaves - 1; j >= 0; j-- {
		if cnt := p.leafLen(j); cnt > 0 {
			return p.cells[p.base(j)+cnt-1], true
		}
	}
	return 0, false
}

// Insert adds x to the set, returning false if it was already present.
// Point inserts follow the paper's four steps: search, place, count,
// redistribute (§3, Figure 3).
func (p *PMA) Insert(x uint64) bool {
	if x == 0 {
		panic("pma: key 0 is reserved")
	}
	for {
		leaf := p.findLeaf(x)
		if leaf == -1 {
			leaf = 0
		}
		pos, found := p.searchLeaf(leaf, x)
		if found {
			return false
		}
		cnt := p.leafLen(leaf)
		if cnt == p.LeafSize() {
			// No physical room: rebalance first (a full leaf always violates
			// its density bound), then retry the search.
			p.rebalanceLeaf(leaf, true, false)
			continue
		}
		base := p.base(leaf)
		copy(p.cells[base+pos+1:base+cnt+1], p.cells[base+pos:base+cnt])
		p.cells[base+pos] = x
		p.counts[leaf] = int32(cnt + 1)
		p.n++
		if cnt+1 > p.leafUpperUnits() {
			p.rebalanceLeaf(leaf, true, false)
		}
		return true
	}
}

// Remove deletes x from the set, returning false if it was absent.
func (p *PMA) Remove(x uint64) bool {
	if x == 0 || p.n == 0 {
		return false
	}
	leaf := p.findLeaf(x)
	pos, found := p.searchLeaf(leaf, x)
	if !found {
		return false
	}
	base := p.base(leaf)
	cnt := p.leafLen(leaf)
	copy(p.cells[base+pos:base+cnt-1], p.cells[base+pos+1:base+cnt])
	p.cells[base+cnt-1] = 0
	p.counts[leaf] = int32(cnt - 1)
	p.n--
	if cnt-1 < p.tree.LowerUnits(pmatree.Node{Level: 0, Index: leaf}) {
		p.rebalanceLeaf(leaf, false, true)
	}
	return true
}

// rebalanceLeaf performs the point-update rebalance: walk up from the leaf
// to the lowest ancestor within its density bounds and redistribute it, or
// resize the array if the violation reaches the root.
func (p *PMA) rebalanceLeaf(leaf int, checkUpper, checkLower bool) {
	if checkLower && len(p.cells) <= minCells {
		return // already at minimum capacity; sparseness is acceptable
	}
	plan := p.tree.WalkUp(p.used, leaf, checkUpper, checkLower)
	p.applyPlan(plan)
}

// applyPlan executes a rebalance plan: regional redistributions in parallel,
// or a whole-structure rebuild on grow/shrink.
func (p *PMA) applyPlan(plan pmatree.Plan) {
	if plan.Grow || plan.Shrink {
		p.rebuildFrom(p.gather(0, p.leaves))
		return
	}
	regions := plan.Redistribute
	parallel.For(len(regions), 1, func(i int) {
		p.redistribute(regions[i])
	})
}

// Package aspen is the Aspen baseline (paper §6): a dynamic-graph system on
// compressed purely-functional C-trees [36]. The stand-in keeps Aspen's
// memory-layout signature — per-vertex compressed chunked edge structures
// with smaller chunks than C-PaC (so more per-edge overhead, matching the
// paper's Table 7 where Aspen uses ~1.5-1.9x the space of C-PaC) under a
// heavier vertex tree (48 bytes per vertex: C-tree vertex entries carry the
// vertex id, edge-structure pointer, and tree linkage).
package aspen

import (
	"repro/internal/treegraph"
	"repro/internal/workload"
)

// Graph is an Aspen-style dynamic graph.
type Graph = treegraph.Graph

// New returns an empty Aspen graph.
func New(numVertices int) *Graph {
	return treegraph.New(numVertices, config())
}

// FromEdges builds an Aspen graph from a symmetrized edge list.
func FromEdges(numVertices int, edges []workload.Edge) *Graph {
	return treegraph.FromEdges(numVertices, edges, config())
}

func config() treegraph.Config {
	return treegraph.Config{
		Name:            "Aspen",
		BlockMax:        64,
		Compressed:      true,
		VertexNodeBytes: 48,
	}
}

package aspen

import (
	"testing"

	"repro/internal/cpacgraph"
	"repro/internal/workload"
)

func TestAspenGraphBasics(t *testing.T) {
	edges := workload.Symmetrize([]workload.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}})
	g := FromEdges(4, edges)
	if g.Name() != "Aspen" {
		t.Fatalf("Name = %s", g.Name())
	}
	if g.NumEdges() != 4 || g.Degree(1) != 2 {
		t.Fatalf("edges=%d deg(1)=%d", g.NumEdges(), g.Degree(1))
	}
}

func TestAspenUsesMoreSpaceThanCPaC(t *testing.T) {
	// The paper's Table 7: Aspen ~1.5-1.9x the space of C-PaC — smaller
	// chunks plus a heavier vertex tree.
	rng := workload.NewRNG(1)
	edges := workload.Symmetrize(workload.RMAT(rng, 60_000, 11, workload.DefaultRMAT()))
	a := FromEdges(1<<11, edges)
	c := cpacgraph.FromEdges(1<<11, edges)
	if a.SizeBytes() <= c.SizeBytes() {
		t.Fatalf("Aspen %d bytes should exceed C-PaC %d bytes", a.SizeBytes(), c.SizeBytes())
	}
}

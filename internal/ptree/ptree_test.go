package ptree

import (
	"math/rand"
	"slices"
	"testing"
	"testing/quick"
)

func uniqueRandom(r *rand.Rand, n int, max uint64) []uint64 {
	set := make(map[uint64]bool, n)
	for len(set) < n {
		set[1+r.Uint64()%max] = true
	}
	out := make([]uint64, 0, n)
	for k := range set {
		out = append(out, k)
	}
	return out
}

func TestEmpty(t *testing.T) {
	tr := New()
	if tr.Len() != 0 || tr.Has(1) {
		t.Fatal("empty tree misbehaves")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPointOps(t *testing.T) {
	tr := New()
	if !tr.Insert(5) || !tr.Insert(3) || !tr.Insert(9) {
		t.Fatal("insert failed")
	}
	if tr.Insert(5) {
		t.Fatal("duplicate insert succeeded")
	}
	if !tr.Has(3) || tr.Has(4) {
		t.Fatal("Has wrong")
	}
	if !tr.Remove(3) || tr.Remove(3) {
		t.Fatal("Remove wrong")
	}
	if !slices.Equal(tr.Keys(), []uint64{5, 9}) {
		t.Fatalf("Keys = %v", tr.Keys())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFromSortedBuild(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 2, 100, 10_000} {
		keys := uniqueRandom(r, n, 1<<40)
		slices.Sort(keys)
		tr := FromSorted(keys)
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !slices.Equal(tr.Keys(), keys) {
			t.Fatalf("n=%d: contents mismatch", n)
		}
		if tr.Len() != n {
			t.Fatalf("n=%d: Len=%d", n, tr.Len())
		}
	}
}

func TestInsertBatch(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	base := uniqueRandom(r, 20_000, 1<<40)
	tr := New()
	if added := tr.InsertBatch(base, false); added != len(base) {
		t.Fatalf("added = %d, want %d", added, len(base))
	}
	batch := uniqueRandom(r, 10_000, 1<<40)
	present := map[uint64]bool{}
	for _, k := range base {
		present[k] = true
	}
	wantNew := 0
	for _, k := range batch {
		if !present[k] {
			wantNew++
			present[k] = true
		}
	}
	if added := tr.InsertBatch(batch, false); added != wantNew {
		t.Fatalf("added = %d, want %d", added, wantNew)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	want := make([]uint64, 0, len(present))
	for k := range present {
		want = append(want, k)
	}
	slices.Sort(want)
	if !slices.Equal(tr.Keys(), want) {
		t.Fatal("contents mismatch after batch insert")
	}
}

func TestRemoveBatch(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	base := uniqueRandom(r, 20_000, 1<<40)
	tr := New()
	tr.InsertBatch(base, false)
	toRemove := append(slices.Clone(base[:10_000]), uniqueRandom(r, 500, 1<<20)...)
	present := map[uint64]bool{}
	for _, k := range base {
		present[k] = true
	}
	wantRemoved := 0
	for _, k := range toRemove {
		if present[k] {
			wantRemoved++
			delete(present, k)
		}
	}
	if got := tr.RemoveBatch(toRemove, false); got != wantRemoved {
		t.Fatalf("removed = %d, want %d", got, wantRemoved)
	}
	if tr.Len() != len(present) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(present))
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMapRangeAndSums(t *testing.T) {
	var keys []uint64
	for i := 1; i <= 1000; i++ {
		keys = append(keys, uint64(i*3))
	}
	tr := FromSorted(keys)
	var got []uint64
	tr.MapRange(10, 31, func(v uint64) bool {
		got = append(got, v)
		return true
	})
	if !slices.Equal(got, []uint64{12, 15, 18, 21, 24, 27, 30}) {
		t.Fatalf("MapRange = %v", got)
	}
	sum, count := tr.RangeSum(10, 31)
	if sum != 12+15+18+21+24+27+30 || count != 7 {
		t.Fatalf("RangeSum = %d/%d", sum, count)
	}
	var want uint64
	for _, k := range keys {
		want += k
	}
	if tr.Sum() != want {
		t.Fatalf("Sum = %d, want %d", tr.Sum(), want)
	}
}

func TestNext(t *testing.T) {
	tr := FromSorted([]uint64{10, 20, 30})
	cases := []struct {
		x, want uint64
		ok      bool
	}{{5, 10, true}, {10, 10, true}, {15, 20, true}, {30, 30, true}, {31, 0, false}}
	for _, c := range cases {
		got, ok := tr.Next(c.x)
		if got != c.want || ok != c.ok {
			t.Errorf("Next(%d) = (%d,%v)", c.x, got, ok)
		}
	}
}

func TestSizeBytes(t *testing.T) {
	tr := FromSorted([]uint64{1, 2, 3, 4})
	if tr.SizeBytes() != 128 {
		t.Fatalf("SizeBytes = %d, want 128", tr.SizeBytes())
	}
}

func TestBatchPropertyAgainstModel(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := New()
		ref := map[uint64]bool{}
		for round := 0; round < 5; round++ {
			batch := make([]uint64, 500+r.Intn(2000))
			for i := range batch {
				batch[i] = 1 + r.Uint64()%(1<<18)
			}
			if r.Intn(2) == 0 {
				tr.InsertBatch(batch, false)
				for _, k := range batch {
					ref[k] = true
				}
			} else {
				tr.RemoveBatch(batch, false)
				for _, k := range batch {
					delete(ref, k)
				}
			}
			if tr.Len() != len(ref) {
				return false
			}
		}
		if tr.CheckInvariants() != nil {
			return false
		}
		want := make([]uint64, 0, len(ref))
		for k := range ref {
			want = append(want, k)
		}
		slices.Sort(want)
		return slices.Equal(tr.Keys(), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestTreeHeightIsLogarithmic(t *testing.T) {
	// Sequential keys are the adversarial case for unbalanced BSTs; hashed
	// priorities must keep the treap shallow.
	keys := make([]uint64, 1<<16)
	for i := range keys {
		keys[i] = uint64(i + 1)
	}
	tr := FromSorted(keys)
	h := height(tr.root)
	if h > 4*17 { // ~ 4 log2(n) is a generous expected-case bound
		t.Fatalf("height %d too large for n=%d", h, len(keys))
	}
}

func height(n *node) int {
	if n == nil {
		return 0
	}
	l, r := height(n.left), height(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}

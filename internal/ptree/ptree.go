// Package ptree implements the P-tree baseline (PAM [70]): a batch-parallel
// binary search tree with join-based bulk operations, used by the paper as
// the uncompressed tree comparator.
//
// Balance scheme: PAM's weight-balanced trees are substituted with treaps
// whose priorities are a hash of the key — the same join/split/union
// algorithmic structure with the same expected O(log n) bounds, and, like
// PAM's in-place set mode, 32 bytes per element (key + two children + size;
// priorities are recomputed from the key, never stored).
package ptree

import (
	"repro/internal/parallel"
)

// node is one tree node: exactly 32 bytes of payload, matching the paper's
// "P-trees take a fixed 32 bytes per element" (Table 6 discussion).
type node struct {
	key   uint64
	left  *node
	right *node
	size  uint64
}

// Tree is a batch-parallel ordered set of nonzero uint64 keys.
// Batch operations parallelize internally; single writer.
type Tree struct {
	root *node
}

// New returns an empty tree.
func New() *Tree { return &Tree{} }

// prio returns the heap priority of a key: a strong mix (splitmix64 finalizer)
// so expected treap height is O(log n) for any key distribution.
func prio(k uint64) uint64 {
	k ^= k >> 30
	k *= 0xbf58476d1ce4e5b9
	k ^= k >> 27
	k *= 0x94d049bb133111eb
	k ^= k >> 31
	return k
}

func size(t *node) uint64 {
	if t == nil {
		return 0
	}
	return t.size
}

func (t *node) update() *node {
	t.size = 1 + size(t.left) + size(t.right)
	return t
}

// Len returns the number of keys.
func (t *Tree) Len() int { return int(size(t.root)) }

// join combines two treaps where every key of l precedes every key of r.
func join(l, r *node) *node {
	switch {
	case l == nil:
		return r
	case r == nil:
		return l
	case prio(l.key) >= prio(r.key):
		l.right = join(l.right, r)
		return l.update()
	default:
		r.left = join(l, r.left)
		return r.update()
	}
}

// split divides t into keys < k, whether k was present, and keys > k.
func split(t *node, k uint64) (l *node, mid bool, r *node) {
	if t == nil {
		return nil, false, nil
	}
	switch {
	case k < t.key:
		var ll *node
		ll, mid, t.left = split(t.left, k)
		return ll, mid, t.update()
	case k > t.key:
		var rr *node
		t.right, mid, rr = split(t.right, k)
		return t.update(), mid, rr
	default:
		return t.left, true, t.right
	}
}

// Has reports membership of x.
func (t *Tree) Has(x uint64) bool {
	cur := t.root
	for cur != nil {
		switch {
		case x < cur.key:
			cur = cur.left
		case x > cur.key:
			cur = cur.right
		default:
			return true
		}
	}
	return false
}

// Next returns the smallest key >= x.
func (t *Tree) Next(x uint64) (uint64, bool) {
	var best uint64
	found := false
	cur := t.root
	for cur != nil {
		if cur.key >= x {
			best, found = cur.key, true
			cur = cur.left
		} else {
			cur = cur.right
		}
	}
	return best, found
}

// Insert adds x, reporting whether it was new.
func (t *Tree) Insert(x uint64) bool {
	if x == 0 {
		panic("ptree: key 0 is reserved")
	}
	if t.Has(x) {
		return false
	}
	l, _, r := split(t.root, x)
	n := &node{key: x}
	t.root = join(join(l, n.update()), r)
	return true
}

// Remove deletes x, reporting whether it was present.
func (t *Tree) Remove(x uint64) bool {
	l, mid, r := split(t.root, x)
	t.root = join(l, r)
	return mid
}

// fromSorted builds a treap from sorted distinct keys in O(n) with a
// right-spine stack (Cartesian tree construction over hash priorities).
func fromSorted(keys []uint64) *node {
	var spine []*node // right spine, decreasing priority from bottom of stack
	for _, k := range keys {
		n := &node{key: k, size: 1}
		var last *node
		for len(spine) > 0 && prio(spine[len(spine)-1].key) < prio(k) {
			last = spine[len(spine)-1]
			// last's subtree is final once popped (deepest nodes pop first,
			// so its own descendants are already updated).
			last.update()
			spine = spine[:len(spine)-1]
		}
		n.left = last
		if len(spine) > 0 {
			spine[len(spine)-1].right = n
		}
		spine = append(spine, n)
	}
	if len(spine) == 0 {
		return nil
	}
	// Fix up sizes along the remaining spine, deepest first.
	for i := len(spine) - 1; i >= 0; i-- {
		spine[i].update()
	}
	return spine[0]
}

// union merges two treaps with the parallel join-based algorithm
// [Blelloch–Ferizovic–Sun]. Duplicate keys are kept once.
func union(a, b *node) *node {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	}
	if prio(a.key) < prio(b.key) {
		a, b = b, a
	}
	l, _, r := split(b, a.key)
	big := size(a) > 4096
	var nl, nr *node
	parallel.DoIf(big,
		func() { nl = union(a.left, l) },
		func() { nr = union(a.right, r) },
	)
	a.left, a.right = nl, nr
	return a.update()
}

// difference removes the keys of b from a.
func difference(a, b *node) *node {
	if a == nil || b == nil {
		return a
	}
	l, _, r := split(a, b.key)
	big := size(b) > 4096
	var nl, nr *node
	parallel.DoIf(big,
		func() { nl = difference(l, b.left) },
		func() { nr = difference(r, b.right) },
	)
	return join(nl, nr)
}

// InsertBatch adds a batch of keys, returning how many were new. The batch
// is built into a tree in O(k) and unioned in parallel — PAM's multi-insert.
func (t *Tree) InsertBatch(keys []uint64, sorted bool) int {
	batch := prepare(keys, sorted)
	if len(batch) == 0 {
		return 0
	}
	before := t.Len()
	t.root = union(t.root, fromSorted(batch))
	return t.Len() - before
}

// RemoveBatch deletes a batch of keys, returning how many were present.
func (t *Tree) RemoveBatch(keys []uint64, sorted bool) int {
	batch := prepare(keys, sorted)
	if len(batch) == 0 {
		return 0
	}
	before := t.Len()
	t.root = difference(t.root, fromSorted(batch))
	return before - t.Len()
}

func prepare(keys []uint64, sorted bool) []uint64 {
	if len(keys) == 0 {
		return nil
	}
	var batch []uint64
	if sorted {
		batch = parallel.DedupSorted(keys)
	} else {
		batch = parallel.DedupSorted(parallel.SortedCopy(keys))
	}
	if len(batch) > 0 && batch[0] == 0 {
		panic("ptree: key 0 is reserved")
	}
	return batch
}

// FromSorted builds a tree from sorted, duplicate-free nonzero keys.
func FromSorted(keys []uint64) *Tree {
	return &Tree{root: fromSorted(keys)}
}

// Map applies f in ascending key order until f returns false.
func (t *Tree) Map(f func(uint64) bool) bool {
	return mapNode(t.root, f)
}

func mapNode(n *node, f func(uint64) bool) bool {
	if n == nil {
		return true
	}
	return mapNode(n.left, f) && f(n.key) && mapNode(n.right, f)
}

// MapRange applies f to keys in [start, end) in ascending order.
func (t *Tree) MapRange(start, end uint64, f func(uint64) bool) bool {
	return mapRange(t.root, start, end, f)
}

func mapRange(n *node, start, end uint64, f func(uint64) bool) bool {
	if n == nil {
		return true
	}
	if n.key >= start && !mapRange(n.left, start, end, f) {
		return false
	}
	if n.key >= start && n.key < end && !f(n.key) {
		return false
	}
	if n.key < end && !mapRange(n.right, start, end, f) {
		return false
	}
	return true
}

// Sum returns the sum of all keys, computed with fork-join parallelism.
func (t *Tree) Sum() uint64 {
	return sumNode(t.root)
}

func sumNode(n *node) uint64 {
	if n == nil {
		return 0
	}
	if n.size <= 2048 {
		s := n.key
		s += sumNode(n.left)
		s += sumNode(n.right)
		return s
	}
	var l, r uint64
	parallel.Do(
		func() { l = sumNode(n.left) },
		func() { r = sumNode(n.right) },
	)
	return l + r + n.key
}

// RangeSum sums keys in [start, end).
func (t *Tree) RangeSum(start, end uint64) (sum uint64, count int) {
	t.MapRange(start, end, func(v uint64) bool {
		sum += v
		count++
		return true
	})
	return sum, count
}

// Keys returns all keys in ascending order.
func (t *Tree) Keys() []uint64 {
	out := make([]uint64, 0, t.Len())
	t.Map(func(v uint64) bool {
		out = append(out, v)
		return true
	})
	return out
}

// SizeBytes reports the P-tree's memory footprint: 32 bytes per element
// (Table 6: "P-trees take a fixed 32 bytes per element").
func (t *Tree) SizeBytes() uint64 { return 32 * size(t.root) }

// CheckInvariants verifies the BST order, the heap priority invariant, and
// subtree sizes.
func (t *Tree) CheckInvariants() error {
	_, err := checkNode(t.root, 0, ^uint64(0))
	return err
}

func checkNode(n *node, lo, hi uint64) (uint64, error) {
	if n == nil {
		return 0, nil
	}
	if n.key < lo || n.key > hi {
		return 0, errOrder
	}
	if n.left != nil && prio(n.left.key) > prio(n.key) {
		return 0, errHeap
	}
	if n.right != nil && prio(n.right.key) > prio(n.key) {
		return 0, errHeap
	}
	ls, err := checkNode(n.left, lo, n.key-1)
	if err != nil {
		return 0, err
	}
	rs, err := checkNode(n.right, n.key+1, hi)
	if err != nil {
		return 0, err
	}
	if n.size != ls+rs+1 {
		return 0, errSize
	}
	return n.size, nil
}

type treeError string

func (e treeError) Error() string { return string(e) }

const (
	errOrder treeError = "ptree: BST order violated"
	errHeap  treeError = "ptree: heap priority violated"
	errSize  treeError = "ptree: size field wrong"
)

package ptree

import (
	"testing"

	"repro/internal/workload"
)

func BenchmarkBatchInsert10k(b *testing.B) {
	t := New()
	t.InsertBatch(workload.Uniform(workload.NewRNG(1), 100_000, 40), false)
	r := workload.NewRNG(2)
	batches := make([][]uint64, 32)
	for i := range batches {
		batches[i] = workload.Uniform(r, 10_000, 40)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.InsertBatch(batches[i%len(batches)], false)
	}
}

func BenchmarkSum(b *testing.B) {
	t := New()
	t.InsertBatch(workload.Uniform(workload.NewRNG(1), 200_000, 40), false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Sum()
	}
}

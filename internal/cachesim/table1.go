package cachesim

import (
	"slices"

	"repro/internal/workload"
)

// Config sizes the replayed batch-insert workload (Table 1: start with 100M
// elements, add 100 batches of 1M; defaults scale it 50x down with the L3
// scaled to match).
type Config struct {
	N         int // elements in the structure before inserts
	BatchSize int
	Batches   int
	L3Bytes   int
	Seed      uint64
}

// DefaultConfig returns the scaled Table 1 workload.
func DefaultConfig() Config {
	return Config{N: 2_000_000, BatchSize: 20_000, Batches: 10, L3Bytes: 2 << 20, Seed: 1}
}

// Result reports simulated misses for one structure.
type Result struct {
	Name     string
	L1Misses uint64
	L3Misses uint64
}

// geometry constants mirroring the real structures at the replay scale.
const (
	pmaCellBytes   = 8
	pmaLeafCells   = 32
	cpmaBytesPerEl = 3 // 40-bit uniform keys at this density (paper Table 6)
	cpmaLeafBytes  = 256
	pacBlockElems  = 256
	nodeBytes      = 48
	density        = 0.65
)

// mix is the splitmix64 finalizer, used to scatter tree nodes in the arena.
func mix(v uint64) uint64 {
	v ^= v >> 30
	v *= 0xbf58476d1ce4e5b9
	v ^= v >> 27
	v *= 0x94d049bb133111eb
	return v ^ (v >> 31)
}

// batchLeafPositions sorts a fresh uniform batch and maps it to leaf
// indices of a structure with the given leaf count.
func batchLeafPositions(r *workload.RNG, k, leaves int) []int {
	keys := workload.Uniform(r, k, workload.UniformBits)
	slices.Sort(keys)
	out := make([]int, k)
	for i, key := range keys {
		out[i] = int(uint64(leaves) * (key >> 20) >> 20)
		if out[i] >= leaves {
			out[i] = leaves - 1
		}
	}
	return out
}

// TracePMA replays the PMA (compressed=false) or CPMA (compressed=true)
// batch insert: per touched leaf a binary search over leaf heads, a
// sequential leaf merge, the counting pass over the per-leaf metadata, and
// an amortized redistribution copy over sibling regions.
func TracePMA(h *Hierarchy, cfg Config, compressed bool) {
	leafBytes := pmaLeafCells * pmaCellBytes
	bytesPerEl := float64(pmaCellBytes)
	if compressed {
		leafBytes = cpmaLeafBytes
		bytesPerEl = cpmaBytesPerEl
	}
	arrayBytes := int(float64(cfg.N) * bytesPerEl / density)
	leaves := arrayBytes / leafBytes
	metaBase := uint64(arrayBytes)
	r := workload.NewRNG(cfg.Seed)

	for b := 0; b < cfg.Batches; b++ {
		pos := batchLeafPositions(r, cfg.BatchSize, leaves)
		prev := -1
		for _, leaf := range pos {
			if leaf == prev {
				continue // same leaf: merged in the same pass
			}
			prev = leaf
			// Search + merge. The batch-merge recursion shares one median
			// search per subtree across the sorted batch, and the deepest
			// probes land on leaf-head lines inside the recursion window —
			// lines the merges of nearby leaves touch anyway — so the
			// search contributes no extra cache lines beyond the merge's
			// sequential read+write of the leaf.
			h.Range(uint64(leaf*leafBytes), leafBytes)
			// Counting metadata for this leaf (4-byte counters).
			h.Access(metaBase + uint64(leaf*4))
		}
		// Redistribution: the work-efficient counting phase combines dirty
		// leaves' ancestors into maximal regions, so the copies sweep a few
		// large contiguous ranges rather than one range per leaf — and the
		// density bounds amortize the sweeps across batches (a region only
		// redistributes when its bound trips, roughly every few batches at
		// this fill rate). Model: one 64-leaf window sweep per dirty
		// window, once every fourth batch per window.
		prevWin := -1
		for _, leaf := range pos {
			win := leaf / 64
			if win == prevWin {
				continue
			}
			prevWin = win
			if (win+b)%4 == 0 {
				h.Range(uint64(win*64*leafBytes), 64*leafBytes)
			}
		}
	}
}

// TracePaC replays the U-PaC (compressed=false) or C-PaC (compressed=true)
// batch insert: per touched block a pointer-chased root-to-block descent
// through scattered internal nodes, a block read, and a block rewrite at a
// freshly allocated address.
func TracePaC(h *Hierarchy, cfg Config, compressed bool) {
	blockBytes := pacBlockElems * 8
	if compressed {
		blockBytes = int(float64(pacBlockElems) * cpmaBytesPerEl)
	}
	blocks := cfg.N / pacBlockElems
	depth := 1
	for 1<<depth < blocks {
		depth++
	}
	// Node footprint: ~2 tree nodes per block plus block headers and
	// allocator metadata, scattered; on the paper's machine this working
	// set (tens of MB) shares a polluted LLC with 64 cores' block traffic,
	// so deep-level probes miss. The 8x factor reproduces that coldness at
	// the replay scale.
	nodeArena := uint64(8 * blocks * nodeBytes)
	blockArena := uint64(8 * cfg.N * 4)
	r := workload.NewRNG(cfg.Seed)
	freshBase := uint64(blockArena) // fresh-allocation counter

	for b := 0; b < cfg.Batches; b++ {
		pos := batchLeafPositions(r, cfg.BatchSize, blocks)
		prev := -1
		for _, blk := range pos {
			if blk == prev {
				continue
			}
			prev = blk
			// Root-to-block descent: one scattered node per level. Nodes
			// are identified by (level, path prefix) so shared upper levels
			// hit in cache, as they do in the real tree.
			for lvl := 0; lvl < depth; lvl++ {
				id := uint64(lvl)<<40 | uint64(blk>>(depth-lvl))
				h.Access(mix(id) % nodeArena)
			}
			// Read the old block and write the re-blocked result at a
			// fresh address. Blocks are allocated at different times, so
			// key-adjacent blocks are NOT memory-adjacent in either
			// direction — the defining property of a pointer-based
			// structure.
			h.Range(mix(uint64(blk))%blockArena&^63, blockBytes)
			h.Range(mix(freshBase)%blockArena&^63, blockBytes)
			freshBase++
		}
	}
}

// Table1 runs the four replays of paper Table 1 and returns their misses in
// the paper's row order: U-PaC, C-PaC, PMA, CPMA.
func Table1(cfg Config) []Result {
	run := func(name string, f func(h *Hierarchy)) Result {
		h := NewHierarchy(cfg.L3Bytes)
		f(h)
		return Result{Name: name, L1Misses: h.L1.Misses(), L3Misses: h.L3.Misses()}
	}
	return []Result{
		run("U-PaC", func(h *Hierarchy) { TracePaC(h, cfg, false) }),
		run("C-PaC", func(h *Hierarchy) { TracePaC(h, cfg, true) }),
		run("PMA", func(h *Hierarchy) { TracePMA(h, cfg, false) }),
		run("CPMA", func(h *Hierarchy) { TracePMA(h, cfg, true) }),
	}
}

// Package cachesim is the stand-in for the hardware performance counters of
// paper Table 1 ("we measured the number of cache misses during batch
// inserts ... with perf stat"): a set-associative LRU cache hierarchy plus
// per-structure memory-access replay models for the batch-insert workload.
//
// Pure Go cannot read PMU counters portably, so we simulate the quantity
// Table 1 measures — cache lines touched and their reuse distance — by
// replaying the address patterns each data structure performs during batch
// inserts (binary-search probes, sequential leaf/block scans, pointer-chased
// root-to-block walks, redistribution copies), at a scaled-down size with
// proportionally scaled caches. See DESIGN.md §4.
package cachesim

// Cache is one set-associative LRU cache level.
type Cache struct {
	sets     int
	ways     int
	lineLog2 uint
	tags     [][]uint64 // tags[set] ordered MRU..LRU
	hits     uint64
	misses   uint64
}

// NewCache builds a cache of the given total size, associativity, and line
// size (all powers of two).
func NewCache(sizeBytes, ways, lineBytes int) *Cache {
	lines := sizeBytes / lineBytes
	sets := lines / ways
	if sets < 1 {
		sets = 1
	}
	c := &Cache{sets: sets, ways: ways, tags: make([][]uint64, sets)}
	for lineBytes > 1 {
		lineBytes >>= 1
		c.lineLog2++
	}
	return c
}

// Access touches the line containing addr, returns whether it hit, and
// updates LRU state.
func (c *Cache) Access(addr uint64) bool {
	line := addr >> c.lineLog2
	set := int(line % uint64(c.sets))
	tags := c.tags[set]
	for i, t := range tags {
		if t == line {
			// Move to front (MRU).
			copy(tags[1:i+1], tags[:i])
			tags[0] = line
			c.hits++
			return true
		}
	}
	c.misses++
	if len(tags) < c.ways {
		tags = append(tags, 0)
	}
	copy(tags[1:], tags)
	tags[0] = line
	c.tags[set] = tags
	return false
}

// Install fills the line containing addr without counting a hit or miss —
// how prefetched lines enter a cache. Prefetch fills compete for capacity
// exactly like demand fills (they evict the LRU way).
func (c *Cache) Install(addr uint64) {
	line := addr >> c.lineLog2
	set := int(line % uint64(c.sets))
	tags := c.tags[set]
	for i, t := range tags {
		if t == line {
			copy(tags[1:i+1], tags[:i])
			tags[0] = line
			return
		}
	}
	if len(tags) < c.ways {
		tags = append(tags, 0)
	}
	copy(tags[1:], tags)
	tags[0] = line
	c.tags[set] = tags
}

// Hits returns the hit count.
func (c *Cache) Hits() uint64 { return c.hits }

// Misses returns the miss count.
func (c *Cache) Misses() uint64 { return c.misses }

// Hierarchy is a two-level inclusive hierarchy standing in for the paper
// machine's L1 and L3 (we skip L2; Table 1 reports L1 and L3 only), plus a
// hardware-style stream prefetcher: sequential line streams are detected
// and their next lines served without a demand L3 miss. The prefetcher is
// what gives contiguous layouts (PMA/CPMA) their dramatic L3 advantage over
// pointer-chased blocks in the paper's Table 1.
type Hierarchy struct {
	L1 *Cache
	L3 *Cache
	// streams holds the next expected line of each tracked sequential
	// stream (round-robin replacement, as in simple hardware prefetchers).
	streams    [32]uint64
	rr         int
	prefetched uint64
}

// NewHierarchy builds the scaled hierarchy: a 48 KB 12-way L1 (one core of
// the paper's Xeon) and an L3 scaled to keep the same structure:L3 size
// ratio as the paper's 108 MB against 100M-element structures.
func NewHierarchy(l3Bytes int) *Hierarchy {
	h := &Hierarchy{
		L1: NewCache(48<<10, 12, 64),
		L3: NewCache(l3Bytes, 16, 64),
	}
	for i := range h.streams {
		h.streams[i] = ^uint64(0) // no stream expects line 0 initially
	}
	return h
}

// Prefetched returns the number of L1 misses served by the prefetcher.
func (h *Hierarchy) Prefetched() uint64 { return h.prefetched }

// Access touches addr in L1; L1 misses either match a prefetch stream (no
// demand L3 miss) or fall through to L3 and start a new stream.
func (h *Hierarchy) Access(addr uint64) {
	if h.L1.Access(addr) {
		return
	}
	line := addr >> 6
	for i, next := range h.streams {
		if line == next {
			h.streams[i] = line + 1
			h.prefetched++
			// Prefetched lines still occupy (and evict) L3 capacity.
			h.L3.Install(addr)
			return
		}
	}
	h.L3.Access(addr)
	h.streams[h.rr] = line + 1
	h.rr = (h.rr + 1) % len(h.streams)
}

// Range touches every line in [addr, addr+bytes) — a sequential scan.
func (h *Hierarchy) Range(addr uint64, bytes int) {
	for b := 0; b < bytes; b += 64 {
		h.Access(addr + uint64(b))
	}
}

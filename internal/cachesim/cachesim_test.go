package cachesim

import "testing"

func TestCacheBasics(t *testing.T) {
	c := NewCache(1024, 2, 64) // 16 lines, 8 sets, 2-way
	if c.Access(0) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0) || !c.Access(63) {
		t.Fatal("same line should hit")
	}
	if c.Access(64) {
		t.Fatal("different line hit")
	}
	if c.Hits() != 2 || c.Misses() != 2 {
		t.Fatalf("hits=%d misses=%d", c.Hits(), c.Misses())
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(128, 2, 64) // 1 set, 2 ways
	c.Access(0)
	c.Access(64)
	c.Access(0)   // 0 is MRU, 64 is LRU
	c.Access(128) // evicts 64
	if !c.Access(0) {
		t.Fatal("MRU line was evicted")
	}
	if c.Access(64) {
		t.Fatal("LRU line should have been evicted")
	}
}

func TestCacheSetIndexing(t *testing.T) {
	c := NewCache(8192, 1, 64) // direct-mapped, 128 sets
	// Two addresses in different sets must not evict each other.
	c.Access(0)
	c.Access(64)
	if !c.Access(0) || !c.Access(64) {
		t.Fatal("different sets interfered")
	}
	// Same set (stride = sets*line) must conflict in a direct-mapped cache.
	c.Access(0)
	c.Access(128 * 64)
	if c.Access(0) {
		t.Fatal("conflict miss expected")
	}
}

func TestHierarchyFallthrough(t *testing.T) {
	h := NewHierarchy(1 << 20)
	h.Access(0)
	if h.L1.Misses() != 1 || h.L3.Misses() != 1 {
		t.Fatal("cold miss should reach L3")
	}
	h.Access(0)
	if h.L1.Misses() != 1 {
		t.Fatal("warm access missed L1")
	}
}

func TestRangeTouchesEveryLine(t *testing.T) {
	h := NewHierarchy(1 << 20)
	h.Range(0, 640)
	if h.L1.Misses() != 10 {
		t.Fatalf("Range touched %d lines, want 10", h.L1.Misses())
	}
}

func TestTable1ShapeMatchesPaper(t *testing.T) {
	cfg := DefaultConfig()
	cfg.N = 500_000
	cfg.BatchSize = 5_000
	cfg.Batches = 5
	cfg.L3Bytes = 1 << 19 // keep the structure:L3 ratio
	res := Table1(cfg)
	byName := map[string]Result{}
	for _, r := range res {
		byName[r.Name] = r
	}
	upac, cpac, pma, cpma := byName["U-PaC"], byName["C-PaC"], byName["PMA"], byName["CPMA"]
	// Paper Table 1 orderings that must be preserved by the model:
	if pma.L1Misses >= upac.L1Misses {
		t.Fatalf("PMA L1 misses %d should be well below U-PaC %d", pma.L1Misses, upac.L1Misses)
	}
	if cpma.L1Misses > pma.L1Misses {
		t.Fatalf("CPMA L1 misses %d should not exceed PMA %d", cpma.L1Misses, pma.L1Misses)
	}
	if cpac.L1Misses >= upac.L1Misses {
		t.Fatalf("C-PaC L1 %d should be below U-PaC %d", cpac.L1Misses, upac.L1Misses)
	}
	if cpma.L3Misses >= pma.L3Misses {
		t.Fatalf("CPMA L3 %d should be below PMA %d", cpma.L3Misses, pma.L3Misses)
	}
	if cpma.L3Misses >= cpac.L3Misses {
		t.Fatalf("CPMA L3 %d should be below C-PaC %d", cpma.L3Misses, cpac.L3Misses)
	}
}

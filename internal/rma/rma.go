// Package rma implements the serial comparator of paper Table 4: a PMA with
// the Rewired-Memory-Array-style batch insert of De Leo & Boncz [31] —
// sorted batch applied by local merges, one leaf segment at a time, with a
// fresh root-to-leaf search per segment and an immediate uncached rebalance
// walk whenever a leaf fills.
//
// The actual RMA's memory-rewiring trick is an OS-level optimization
// orthogonal to the batch algorithm and unavailable in pure Go (DESIGN.md
// §4); what Table 4 isolates — and what this package reproduces — is the
// algorithmic gap: no work sharing between segments and no skipped
// redistribution levels, which is exactly what the paper's batch algorithm
// adds.
package rma

import (
	"fmt"
	"slices"

	"repro/internal/bitutil"
	"repro/internal/pmatree"
)

const minCells = 32

// RMA is a serial packed memory array supporting point updates and the
// segment-wise serial batch insert described above.
type RMA struct {
	cells    []uint64
	counts   []int32
	tree     *pmatree.Tree
	leafLog2 uint
	leaves   int
	n        int
	growth   float64
}

// New returns an empty RMA with the given growing factor (<=1 selects 1.2).
func New(growth float64) *RMA {
	if growth <= 1 {
		growth = 1.2
	}
	r := &RMA{growth: growth}
	r.rebuildFrom(nil)
	return r
}

// Len returns the number of stored keys.
func (r *RMA) Len() int { return r.n }

func (r *RMA) leafSize() int        { return 1 << r.leafLog2 }
func (r *RMA) base(leaf int) int    { return leaf << r.leafLog2 }
func (r *RMA) head(leaf int) uint64 { return r.cells[leaf<<r.leafLog2] }
func (r *RMA) used(leaf int) int    { return int(r.counts[leaf]) }

func (r *RMA) rebuildFrom(all []uint64) {
	bounds := pmatree.DefaultBounds()
	cells := minCells
	for float64(len(all)) > bounds.UpperRoot*float64(cells) {
		next := int(float64(cells) * r.growth)
		if next <= cells {
			next = cells + 1
		}
		cells = next
	}
	ls := int(bitutil.CeilPow2(uint64(bitutil.Max(8, bitutil.Log2Ceil(uint64(cells)+1)))))
	if ls > 256 {
		ls = 256
	}
	leaves := bitutil.Max(1, bitutil.CeilDiv(cells, ls))
	r.leafLog2 = uint(bitutil.Log2Ceil(uint64(ls)))
	r.leaves = leaves
	r.cells = make([]uint64, leaves<<r.leafLog2)
	r.counts = make([]int32, leaves)
	r.tree = pmatree.New(leaves, ls, bounds)
	r.n = len(all)
	r.scatter(all, 0, leaves)
}

func (r *RMA) scatter(run []uint64, loLeaf, hiLeaf int) {
	nl := hiLeaf - loLeaf
	share := len(run) / nl
	rem := len(run) % nl
	off := 0
	for i := 0; i < nl; i++ {
		cnt := share
		if i < rem {
			cnt++
		}
		base := r.base(loLeaf + i)
		copy(r.cells[base:base+cnt], run[off:off+cnt])
		for j := cnt; j < r.leafSize(); j++ {
			r.cells[base+j] = 0
		}
		r.counts[loLeaf+i] = int32(cnt)
		off += cnt
	}
}

func (r *RMA) gather(loLeaf, hiLeaf int) []uint64 {
	out := make([]uint64, 0, r.n)
	for leaf := loLeaf; leaf < hiLeaf; leaf++ {
		base := r.base(leaf)
		out = append(out, r.cells[base:base+r.used(leaf)]...)
	}
	return out
}

// findLeaf returns the leaf x belongs to (see pma.findLeaf), or -1 if empty.
func (r *RMA) findLeaf(x uint64) int {
	res := -1
	lo, hi := 0, r.leaves-1
	for lo <= hi {
		mid := int(uint(lo+hi) >> 1)
		j := mid
		for j >= lo && r.head(j) == 0 {
			j--
		}
		if j < lo {
			lo = mid + 1
			continue
		}
		if r.head(j) <= x {
			res = j
			lo = mid + 1
		} else {
			hi = j - 1
		}
	}
	if res == -1 {
		for j := 0; j < r.leaves; j++ {
			if r.head(j) != 0 {
				return j
			}
		}
	}
	return res
}

func (r *RMA) searchLeaf(leaf int, x uint64) (int, bool) {
	base := r.base(leaf)
	lo, hi := 0, r.used(leaf)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		switch v := r.cells[base+mid]; {
		case v < x:
			lo = mid + 1
		case v > x:
			hi = mid
		default:
			return mid, true
		}
	}
	return lo, false
}

// Has reports membership.
func (r *RMA) Has(x uint64) bool {
	if x == 0 || r.n == 0 {
		return false
	}
	_, found := r.searchLeaf(r.findLeaf(x), x)
	return found
}

// Insert adds one key serially.
func (r *RMA) Insert(x uint64) bool {
	if x == 0 {
		panic("rma: key 0 is reserved")
	}
	for {
		leaf := r.findLeaf(x)
		if leaf == -1 {
			leaf = 0
		}
		pos, found := r.searchLeaf(leaf, x)
		if found {
			return false
		}
		cnt := r.used(leaf)
		if cnt == r.leafSize() {
			r.rebalance(leaf)
			continue
		}
		base := r.base(leaf)
		copy(r.cells[base+pos+1:base+cnt+1], r.cells[base+pos:base+cnt])
		r.cells[base+pos] = x
		r.counts[leaf] = int32(cnt + 1)
		r.n++
		if cnt+1 > r.tree.UpperUnits(pmatree.Node{Level: 0, Index: leaf}) {
			r.rebalance(leaf)
		}
		return true
	}
}

// rebalance is the uncached walk-up redistribution of point inserts.
func (r *RMA) rebalance(leaf int) {
	plan := r.tree.WalkUp(r.used, leaf, true, false)
	if plan.Grow {
		r.rebuildFrom(r.gather(0, r.leaves))
		return
	}
	for _, reg := range plan.Redistribute {
		run := r.gather(reg.LoLeaf, reg.HiLeaf)
		r.scatter(run, reg.LoLeaf, reg.HiLeaf)
	}
}

// InsertBatch applies a batch with RMA-style serial local merges: each
// outer iteration re-searches the target leaf from the root, merges the
// segment of the batch that fits, and rebalances immediately — no shared
// searches, no counting cache, no skipped levels.
func (r *RMA) InsertBatch(keys []uint64, sorted bool) int {
	if len(keys) == 0 {
		return 0
	}
	batch := slices.Clone(keys)
	if !sorted {
		slices.Sort(batch)
	}
	batch = slices.Compact(batch)
	if batch[0] == 0 {
		panic("rma: key 0 is reserved")
	}
	if r.n == 0 {
		r.rebuildFrom(batch)
		return len(batch)
	}
	added := 0
	i := 0
	for i < len(batch) {
		leaf := r.findLeaf(batch[i])
		if leaf == -1 {
			leaf = 0
		}
		// Extent of the batch destined for this leaf under the current
		// layout: everything below the next non-empty leaf head.
		bound := ^uint64(0)
		for j := leaf + 1; j < r.leaves; j++ {
			if h := r.head(j); h != 0 {
				bound = h
				break
			}
		}
		j := i
		for j < len(batch) && batch[j] < bound {
			j++
		}
		free := r.leafSize() - r.used(leaf)
		if free == 0 {
			r.rebalance(leaf)
			continue // layout changed; re-search this segment
		}
		take := j - i
		if take > free {
			take = free
		}
		added += r.mergeIntoLeaf(leaf, batch[i:i+take])
		i += take
		if r.used(leaf) > r.tree.UpperUnits(pmatree.Node{Level: 0, Index: leaf}) {
			r.rebalance(leaf)
		}
	}
	return added
}

// mergeIntoLeaf merges a run (all belonging to this leaf's key range, small
// enough to fit) into the leaf, returning the number of new keys.
func (r *RMA) mergeIntoLeaf(leaf int, run []uint64) int {
	base := r.base(leaf)
	cnt := r.used(leaf)
	merged := make([]uint64, 0, cnt+len(run))
	a := r.cells[base : base+cnt]
	i, j := 0, 0
	fresh := 0
	for i < len(a) && j < len(run) {
		switch {
		case a[i] < run[j]:
			merged = append(merged, a[i])
			i++
		case a[i] > run[j]:
			merged = append(merged, run[j])
			j++
			fresh++
		default:
			merged = append(merged, a[i])
			i++
			j++
		}
	}
	merged = append(merged, a[i:]...)
	fresh += len(run) - j
	merged = append(merged, run[j:]...)
	copy(r.cells[base:base+len(merged)], merged)
	for k := len(merged); k < r.leafSize(); k++ {
		r.cells[base+k] = 0
	}
	r.counts[leaf] = int32(len(merged))
	r.n += fresh
	return fresh
}

// Keys returns all keys in ascending order.
func (r *RMA) Keys() []uint64 {
	return r.gather(0, r.leaves)
}

// Sum returns the sum of all keys (serial scan).
func (r *RMA) Sum() uint64 {
	var s uint64
	for leaf := 0; leaf < r.leaves; leaf++ {
		base := r.base(leaf)
		for i := 0; i < r.used(leaf); i++ {
			s += r.cells[base+i]
		}
	}
	return s
}

// CheckInvariants verifies sortedness and counts.
func (r *RMA) CheckInvariants() error {
	total := 0
	var prev uint64
	for leaf := 0; leaf < r.leaves; leaf++ {
		cnt := r.used(leaf)
		base := r.base(leaf)
		for i := 0; i < cnt; i++ {
			v := r.cells[base+i]
			if v == 0 || v <= prev {
				return fmt.Errorf("rma: order violation at leaf %d pos %d", leaf, i)
			}
			prev = v
		}
		for i := cnt; i < r.leafSize(); i++ {
			if r.cells[base+i] != 0 {
				return fmt.Errorf("rma: dirt past count in leaf %d", leaf)
			}
		}
		total += cnt
	}
	if total != r.n {
		return fmt.Errorf("rma: n=%d but leaves hold %d", r.n, total)
	}
	return nil
}

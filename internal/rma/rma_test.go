package rma

import (
	"math/rand"
	"slices"
	"testing"
	"testing/quick"
)

func uniqueRandom(r *rand.Rand, n int, max uint64) []uint64 {
	set := make(map[uint64]bool, n)
	for len(set) < n {
		set[1+r.Uint64()%max] = true
	}
	out := make([]uint64, 0, n)
	for k := range set {
		out = append(out, k)
	}
	return out
}

func TestPointInsert(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	keys := uniqueRandom(r, 10_000, 1<<40)
	m := New(0)
	for _, k := range keys {
		if !m.Insert(k) {
			t.Fatalf("Insert(%d) dup", k)
		}
	}
	if m.Insert(keys[0]) {
		t.Fatal("duplicate insert succeeded")
	}
	want := slices.Clone(keys)
	slices.Sort(want)
	if !slices.Equal(m.Keys(), want) {
		t.Fatal("contents mismatch")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertBatchAgainstModel(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	base := uniqueRandom(r, 20_000, 1<<40)
	m := New(0)
	if added := m.InsertBatch(base, false); added != len(base) {
		t.Fatalf("added = %d", added)
	}
	batch := uniqueRandom(r, 10_000, 1<<40)
	present := map[uint64]bool{}
	for _, k := range base {
		present[k] = true
	}
	wantNew := 0
	for _, k := range batch {
		if !present[k] {
			wantNew++
			present[k] = true
		}
	}
	if added := m.InsertBatch(batch, false); added != wantNew {
		t.Fatalf("added = %d, want %d", added, wantNew)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if m.Len() != len(present) {
		t.Fatalf("Len = %d", m.Len())
	}
}

func TestBatchSkewedSegments(t *testing.T) {
	m := New(0)
	var base []uint64
	for i := 1; i <= 1000; i++ {
		base = append(base, uint64(i)<<32)
	}
	m.InsertBatch(base, true)
	// A long run destined for one leaf exercises the partial-take loop.
	var batch []uint64
	for i := 1; i <= 4000; i++ {
		batch = append(batch, base[500]+uint64(i))
	}
	if added := m.InsertBatch(batch, true); added != 4000 {
		t.Fatalf("added = %d", added)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	want := append(append([]uint64{}, base...), batch...)
	slices.Sort(want)
	if !slices.Equal(m.Keys(), want) {
		t.Fatal("contents mismatch")
	}
}

func TestBatchPropertyAgainstModel(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := New(0)
		ref := map[uint64]bool{}
		for round := 0; round < 5; round++ {
			batch := make([]uint64, 100+r.Intn(2000))
			for i := range batch {
				batch[i] = 1 + r.Uint64()%(1<<20)
			}
			m.InsertBatch(batch, false)
			for _, k := range batch {
				ref[k] = true
			}
			if m.Len() != len(ref) {
				return false
			}
			if m.CheckInvariants() != nil {
				return false
			}
		}
		want := make([]uint64, 0, len(ref))
		for k := range ref {
			want = append(want, k)
		}
		slices.Sort(want)
		return slices.Equal(m.Keys(), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestSumAndHas(t *testing.T) {
	m := New(0)
	m.InsertBatch([]uint64{1, 2, 3, 10}, true)
	if m.Sum() != 16 {
		t.Fatalf("Sum = %d", m.Sum())
	}
	if !m.Has(10) || m.Has(4) {
		t.Fatal("Has wrong")
	}
}

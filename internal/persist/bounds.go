package persist

// The durable boundary table. Rebalancing makes RangePartition's span
// boundaries dynamic, so the store must remember them: recovery's span
// enforcement and the restarted set's router both need the table the
// journaled history was routed against. The table lives in its own
// generation-stamped sidecar file (dir/BOUNDS) rather than the MANIFEST —
// the manifest records immutable creation-time geometry, the boundary
// table is live state rewritten (atomically, via temp file + rename + dir
// fsync) in the middle of every rebalance barrier.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

const boundsName = "BOUNDS"

// boundsFile is the on-disk boundary table: the interior boundaries
// (shards-1 ascending keys) as of router generation Gen.
type boundsFile struct {
	Version int      `json:"version"`
	Gen     uint64   `json:"gen"`
	Bounds  []uint64 `json:"bounds"`
}

// writeBounds atomically replaces dir/BOUNDS with the given table.
func writeBounds(dir string, gen uint64, bounds []uint64) error {
	blob, err := json.Marshal(boundsFile{Version: 1, Gen: gen, Bounds: bounds})
	if err != nil {
		return err
	}
	path := filepath.Join(dir, boundsName)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, blob, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(dir)
}

// loadBounds reads dir/BOUNDS. ok is false when the file does not exist
// (a store from before rebalancing, or one that never rebalanced).
func loadBounds(dir string, shards int) (bounds []uint64, gen uint64, ok bool, err error) {
	data, err := os.ReadFile(filepath.Join(dir, boundsName))
	if os.IsNotExist(err) {
		return nil, 0, false, nil
	}
	if err != nil {
		return nil, 0, false, err
	}
	var bf boundsFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return nil, 0, false, fmt.Errorf("persist: corrupt boundary table %s/%s: %w", dir, boundsName, err)
	}
	if bf.Version != 1 {
		return nil, 0, false, fmt.Errorf("persist: unsupported boundary-table version %d", bf.Version)
	}
	if len(bf.Bounds) != shards-1 {
		return nil, 0, false, fmt.Errorf("persist: boundary table has %d entries for %d shards", len(bf.Bounds), shards)
	}
	for i := 1; i < len(bf.Bounds); i++ {
		if bf.Bounds[i] < bf.Bounds[i-1] {
			return nil, 0, false, fmt.Errorf("persist: boundary table not sorted at %d", i)
		}
	}
	return bf.Bounds, bf.Gen, true, nil
}

package persist

// Checkpoint files and the store manifest. A checkpoint wraps one shard's
// cpma slab (cpma.WriteTo — the pointer-free raw dump) in a small header
// naming the shard and the WAL sequence the state covers, with a
// whole-file CRC32C trailer. Files are written to a temp name, fsynced,
// and renamed into place, so a half-written checkpoint is never visible
// under its real name.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"repro/internal/cpma"
	"repro/internal/shard"
)

const (
	ckptMagic      = "CPMACKP1"
	ckptVersion    = 1
	ckptHeaderSize = 8 + 4 + 4 + 8 + 8 // magic, version, shard, seq, payload len
	ckptCRCSize    = 4
)

func checkpointName(seq uint64) string {
	return fmt.Sprintf("ckpt-%020d.ckpt", seq)
}

// writeCheckpoint serializes set (an immutable published handle) covering
// WAL records up to and including seq, atomically placing it in dir.
// Returns the slab payload size (EncodedSize — the checkpoint-bytes stat).
//
// The temp file gets a unique name (CreateTemp), not a fixed one: an
// explicit Checkpoint call and the background checkpointer both reach
// here under ckptMu today, but a fixed "ckpt.tmp" made that mutual
// exclusion load-bearing for file integrity — with two writers, one
// renames the shared temp file into place while the other keeps writing
// through its still-open fd into the now-final file, defeating the
// write-then-rename atomicity this format depends on. Unique names keep
// a lock bug from escalating into a corrupt durable checkpoint.
func writeCheckpoint(dir string, shardID int, seq uint64, set *cpma.CPMA) (uint64, error) {
	payloadLen := set.EncodedSize()
	f, err := os.CreateTemp(dir, "ckpt-*.tmp")
	if err != nil {
		return 0, err
	}
	tmp := f.Name()
	bw := bufio.NewWriterSize(f, 1<<16)
	crc := crc32.New(castagnoli)
	w := io.MultiWriter(bw, crc)

	var hdr [ckptHeaderSize]byte
	copy(hdr[:], ckptMagic)
	binary.LittleEndian.PutUint32(hdr[8:], ckptVersion)
	binary.LittleEndian.PutUint32(hdr[12:], uint32(shardID))
	binary.LittleEndian.PutUint64(hdr[16:], seq)
	binary.LittleEndian.PutUint64(hdr[24:], payloadLen)
	fail := func(err error) (uint64, error) {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	if _, err := w.Write(hdr[:]); err != nil {
		return fail(err)
	}
	n, err := set.WriteTo(w)
	if err != nil {
		return fail(err)
	}
	if uint64(n) != payloadLen {
		return fail(fmt.Errorf("persist: slab wrote %d bytes, EncodedSize said %d", n, payloadLen))
	}
	var tail [ckptCRCSize]byte
	binary.LittleEndian.PutUint32(tail[:], crc.Sum32())
	if _, err := bw.Write(tail[:]); err != nil {
		return fail(err)
	}
	if err := bw.Flush(); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		return fail(err)
	}
	final := filepath.Join(dir, checkpointName(seq))
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if err := syncDir(dir); err != nil {
		return 0, err
	}
	return payloadLen, nil
}

// loadCheckpoint reads and fully verifies one checkpoint file: header
// sanity, whole-file CRC, slab CRC (inside cpma.ReadFrom), and the strict
// cpma validator — a checkpoint that fails any of these is reported so the
// caller can fall back to an older one.
func loadCheckpoint(path string, shardID int, seq uint64, opts *cpma.Options) (*cpma.CPMA, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < ckptHeaderSize+ckptCRCSize {
		return nil, fmt.Errorf("persist: checkpoint %s truncated (%d bytes)", filepath.Base(path), len(data))
	}
	if string(data[:8]) != ckptMagic {
		return nil, fmt.Errorf("persist: checkpoint %s: bad magic", filepath.Base(path))
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != ckptVersion {
		return nil, fmt.Errorf("persist: checkpoint %s: unsupported version %d", filepath.Base(path), v)
	}
	if got := int(binary.LittleEndian.Uint32(data[12:])); got != shardID {
		return nil, fmt.Errorf("persist: checkpoint %s: belongs to shard %d, not %d", filepath.Base(path), got, shardID)
	}
	if got := binary.LittleEndian.Uint64(data[16:]); got != seq {
		return nil, fmt.Errorf("persist: checkpoint %s: header seq %d does not match name", filepath.Base(path), got)
	}
	payloadLen := binary.LittleEndian.Uint64(data[24:])
	if payloadLen != uint64(len(data)-ckptHeaderSize-ckptCRCSize) {
		return nil, fmt.Errorf("persist: checkpoint %s: payload length mismatch", filepath.Base(path))
	}
	body := data[:len(data)-ckptCRCSize]
	want := binary.LittleEndian.Uint32(data[len(data)-ckptCRCSize:])
	if crc32.Checksum(body, castagnoli) != want {
		return nil, fmt.Errorf("persist: checkpoint %s: checksum mismatch", filepath.Base(path))
	}
	set, err := cpma.ReadFrom(bytes.NewReader(body[ckptHeaderSize:]), opts)
	if err != nil {
		return nil, fmt.Errorf("persist: checkpoint %s: %w", filepath.Base(path), err)
	}
	if err := set.Validate(); err != nil {
		return nil, fmt.Errorf("persist: checkpoint %s: %w", filepath.Base(path), err)
	}
	return set, nil
}

const (
	dckptMagic      = "CPMADCK1"
	dckptVersion    = 1
	dckptHeaderSize = 8 + 4 + 4 + 8 + 8 + 8 + 8 // magic, version, shard, seq, prevSeq, baseSeq, payload len
	dckptCRCSize    = 4
)

func deltaName(seq uint64) string {
	return fmt.Sprintf("delta-%020d.dckpt", seq)
}

// writeDeltaCheckpoint serializes the dirty leaves of set (an immutable
// published handle covering WAL records up to and including seq) as a
// cpma delta patch, atomically placing it in dir. The header chains the
// file: prevSeq is the checkpoint (base or delta) this patch applies on
// top of, baseSeq the full slab anchoring the chain — recovery applies a
// delta only when both link up, so a delta from an abandoned chain can
// never be patched onto the wrong state. Returns the delta payload size
// (the delta-bytes stat).
func writeDeltaCheckpoint(dir string, shardID int, seq, prevSeq, baseSeq uint64, set *cpma.CPMA, leaves []int) (uint64, error) {
	payloadLen := set.DeltaEncodedSize(leaves)
	f, err := os.CreateTemp(dir, "delta-*.tmp")
	if err != nil {
		return 0, err
	}
	tmp := f.Name()
	bw := bufio.NewWriterSize(f, 1<<16)
	crc := crc32.New(castagnoli)
	w := io.MultiWriter(bw, crc)

	var hdr [dckptHeaderSize]byte
	copy(hdr[:], dckptMagic)
	binary.LittleEndian.PutUint32(hdr[8:], dckptVersion)
	binary.LittleEndian.PutUint32(hdr[12:], uint32(shardID))
	binary.LittleEndian.PutUint64(hdr[16:], seq)
	binary.LittleEndian.PutUint64(hdr[24:], prevSeq)
	binary.LittleEndian.PutUint64(hdr[32:], baseSeq)
	binary.LittleEndian.PutUint64(hdr[40:], payloadLen)
	fail := func(err error) (uint64, error) {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	if _, err := w.Write(hdr[:]); err != nil {
		return fail(err)
	}
	n, err := set.WriteDeltaTo(w, leaves)
	if err != nil {
		return fail(err)
	}
	if uint64(n) != payloadLen {
		return fail(fmt.Errorf("persist: delta wrote %d bytes, DeltaEncodedSize said %d", n, payloadLen))
	}
	var tail [dckptCRCSize]byte
	binary.LittleEndian.PutUint32(tail[:], crc.Sum32())
	if _, err := bw.Write(tail[:]); err != nil {
		return fail(err)
	}
	if err := bw.Flush(); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		return fail(err)
	}
	final := filepath.Join(dir, deltaName(seq))
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if err := syncDir(dir); err != nil {
		return 0, err
	}
	return payloadLen, nil
}

// loadDelta reads and verifies one delta checkpoint file's framing —
// whole-file CRC, header sanity — returning its chain links and the raw
// cpma delta payload. The payload's own structure is verified by
// cpma.ApplyDeltaFrom before anything is mutated.
func loadDelta(path string, shardID int, seq uint64) (prevSeq, baseSeq uint64, payload []byte, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, nil, err
	}
	name := filepath.Base(path)
	if len(data) < dckptHeaderSize+dckptCRCSize {
		return 0, 0, nil, fmt.Errorf("persist: delta %s truncated (%d bytes)", name, len(data))
	}
	body := data[:len(data)-dckptCRCSize]
	want := binary.LittleEndian.Uint32(data[len(data)-dckptCRCSize:])
	if crc32.Checksum(body, castagnoli) != want {
		return 0, 0, nil, fmt.Errorf("persist: delta %s: checksum mismatch", name)
	}
	if string(data[:8]) != dckptMagic {
		return 0, 0, nil, fmt.Errorf("persist: delta %s: bad magic", name)
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != dckptVersion {
		return 0, 0, nil, fmt.Errorf("persist: delta %s: unsupported version %d", name, v)
	}
	if got := int(binary.LittleEndian.Uint32(data[12:])); got != shardID {
		return 0, 0, nil, fmt.Errorf("persist: delta %s: belongs to shard %d, not %d", name, got, shardID)
	}
	if got := binary.LittleEndian.Uint64(data[16:]); got != seq {
		return 0, 0, nil, fmt.Errorf("persist: delta %s: header seq %d does not match name", name, got)
	}
	prevSeq = binary.LittleEndian.Uint64(data[24:])
	baseSeq = binary.LittleEndian.Uint64(data[32:])
	payloadLen := binary.LittleEndian.Uint64(data[40:])
	if payloadLen != uint64(len(body)-dckptHeaderSize) {
		return 0, 0, nil, fmt.Errorf("persist: delta %s: payload length mismatch", name)
	}
	return prevSeq, baseSeq, body[dckptHeaderSize:], nil
}

// manifest records the set geometry the store was created with; reopening
// with different geometry is an error (the log would replay into the
// wrong shards). Version history: 1 = fixed equal-width spans; 2 = the
// span boundary table became dynamic state, carried in the generation-
// stamped BOUNDS sidecar (see bounds.go) and updated by rebalance
// barriers. Both versions are accepted on open — a version-1 store simply
// has no BOUNDS file yet and runs on the default table until its first
// rebalance — and new stores are written at version 2.
type manifest struct {
	Version   int    `json:"version"`
	Shards    int    `json:"shards"`
	Partition string `json:"partition"`
	KeyBits   int    `json:"key_bits"`
}

const (
	manifestName       = "MANIFEST"
	manifestVersion    = 2
	manifestVersionMin = 1
)

func partitionString(p shard.Partition) string {
	if p == shard.RangePartition {
		return "range"
	}
	return "hash"
}

// ensureManifest validates dir's manifest against opts, writing a fresh
// one (atomically) if none exists yet. An older-version manifest with
// matching geometry is upgraded in place: this binary is about to write
// state the old format cannot express (version-2 WAL segments, the BOUNDS
// sidecar), and bumping the manifest makes an old binary refuse the store
// outright instead of silently discarding the new segments as invalid.
func ensureManifest(o Options) error {
	path := filepath.Join(o.Dir, manifestName)
	want := manifest{Version: manifestVersion, Shards: o.Shards, Partition: partitionString(o.Partition), KeyBits: o.KeyBits}
	data, err := os.ReadFile(path)
	if err == nil {
		var got manifest
		if err := json.Unmarshal(data, &got); err != nil {
			return fmt.Errorf("persist: corrupt manifest %s: %w", path, err)
		}
		if got.Version < manifestVersionMin || got.Version > manifestVersion {
			return fmt.Errorf("persist: store at %s has unsupported manifest version %d", o.Dir, got.Version)
		}
		if got.Shards != want.Shards || got.Partition != want.Partition || got.KeyBits != want.KeyBits {
			return fmt.Errorf("persist: store at %s holds a %d-shard %s/%d-bit set; asked to open it as %d-shard %s/%d-bit",
				o.Dir, got.Shards, got.Partition, got.KeyBits, want.Shards, want.Partition, want.KeyBits)
		}
		if got.Version == manifestVersion {
			return nil
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	blob, err := json.Marshal(want)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, blob, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(o.Dir)
}

// syncDir fsyncs a directory so renames and removals within it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

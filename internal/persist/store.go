package persist

import (
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/cpma"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/shard"
)

// Store is the durability engine behind a sharded set: one WAL appender
// per shard plus a background checkpointer. It implements shard.Journal;
// the per-shard methods (Append, Published, Synced) are called by the
// shard's writer goroutine, everything else may be called from anywhere.
type Store struct {
	dir    string
	opt    Options
	shards []*storeShard

	// ckptMu serializes checkpoint passes (manual Checkpoint calls versus
	// the background checkpointer) — checkpoints are rare, coarse locking
	// keeps the invariants simple.
	ckptMu  sync.Mutex
	ckptReq chan struct{}
	done    chan struct{}
	wg      sync.WaitGroup

	closeOnce sync.Once
	closedErr error
	closed    atomic.Bool

	errMu    sync.Mutex
	firstErr error

	// lockFile holds the exclusive flock on the store directory for the
	// Store's lifetime; released by Close (or by the OS if the process
	// dies, which is what makes flock safe across crashes).
	lockFile *os.File

	appBatches atomic.Uint64
	appKeys    atomic.Uint64
	appBytes   atomic.Uint64
	fsyncs     atomic.Uint64
	ckpts      atomic.Uint64
	ckptBytes  atomic.Uint64
	deltaCkpts atomic.Uint64
	deltaBytes atomic.Uint64
	truncSegs  atomic.Uint64
	moveRecs   atomic.Uint64
	movedKeys  atomic.Uint64

	// Latency histograms, aggregated across shards. walAppend times the
	// whole append call — lock wait included, so it reads as the stall a
	// shard writer sees, not just the file write. walFsync times seg.sync
	// alone; ckptDur one shard's checkpoint pass when it wrote something.
	walAppend obs.Histogram
	walFsync  obs.Histogram
	ckptDur   obs.Histogram

	// The recovered boundary table (nil = default equal-width spans) and
	// its router generation. Written once by Open; Rebalanced advances the
	// on-disk table but callers read these only at open time (Bounds).
	bounds    []uint64
	boundsGen uint64

	// Recovery counters, written once by Open before any concurrency.
	recoveredKeys   uint64
	replayedBatches uint64
	replayedKeys    uint64
	tornBytes       uint64
	droppedKeys     uint64
}

// storeShard is one shard's persistence state.
type storeShard struct {
	id  int
	dir string

	// mu guards the appender: the active segment, sequence numbers, and
	// the group-commit accounting. The shard writer holds it for appends;
	// the checkpointer takes it briefly to rotate segments.
	mu           sync.Mutex
	seg          *segment
	seq          atomic.Uint64 // last appended record sequence
	syncedSeq    uint64        // last record covered by an fsync — the shippable seal (mu)
	pendingRecs  int           // records since last fsync
	pendingBytes int
	encBuf       []byte

	// pub is the latest published frozen handle and the sequence it
	// covers; the shard writer stores it, the checkpointer loads it.
	// pendingAll/pendingDirty accumulate the dirty-leaf windows of every
	// handle published since the checkpointer's last capture: each handle
	// carries the leaves mutated since the previous publish
	// (cpma.DirtySince), and their union is exactly the leaf set the next
	// delta checkpoint must include. pendingAll means the window is
	// unknown or spans a rebuild — the next checkpoint must be a full
	// base slab.
	pubMu        sync.Mutex
	pubSet       *cpma.CPMA
	pubSeq       uint64
	pendingAll   bool
	pendingDirty *parallel.Bitset

	// ckptSeq is the sequence covered by the newest durable checkpoint —
	// base or delta, the tip of the chain (Append's trigger reads it).
	// The rest is the checkpointer's chain state, touched only under
	// ckptMu: baseSeq is the full slab the live delta chain patches (0 =
	// none yet), prevBaseSeq the previous chain's base — the file/WAL
	// deletion floor, see the retention note in the package doc — and
	// deltasSinceBase the chain length, bounded by CompactEveryDeltas.
	ckptSeq         atomic.Uint64
	baseSeq         uint64
	prevBaseSeq     uint64
	deltasSinceBase int
}

func shardDirName(p int) string { return fmt.Sprintf("shard-%04d", p) }

// Open opens (creating as needed) the store rooted at opts.Dir and
// recovers every shard: newest valid checkpoint plus WAL tail replay. It
// returns the recovered per-shard CPMAs, ready to seed shard.NewFrom; the
// caller owns wiring the Store into the set as its Journal (or use
// OpenSharded, which does both).
func Open(opts Options) (*Store, []*cpma.CPMA, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, nil, err
	}
	if err := os.MkdirAll(o.Dir, 0o755); err != nil {
		return nil, nil, err
	}
	st := &Store{
		dir:     o.Dir,
		opt:     o,
		shards:  make([]*storeShard, o.Shards),
		ckptReq: make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
	// Exclusive directory lock: two stores appending to the same WAL
	// files would interleave frames and destroy both logs. flock is
	// released automatically if the process dies, so a crash never
	// strands the store locked.
	if err := st.acquireLock(); err != nil {
		return nil, nil, err
	}
	opened := false
	defer func() {
		if !opened {
			// Close every segment a successfully recovered shard left open:
			// a later shard failing validation must not leak the earlier
			// shards' WAL file handles (callers commonly retry Open after
			// fixing the directory, and leaked fds accumulate per attempt).
			for _, sh := range st.shards {
				if sh != nil && sh.seg != nil {
					sh.seg.close()
				}
			}
			st.releaseLock()
		}
	}()
	if err := ensureManifest(o); err != nil {
		return nil, nil, err
	}
	if err := st.recoverBounds(o); err != nil {
		return nil, nil, err
	}
	sets := make([]*cpma.CPMA, o.Shards)
	for p := range st.shards {
		sh := &storeShard{id: p, dir: filepath.Join(o.Dir, shardDirName(p))}
		if err := os.MkdirAll(sh.dir, 0o755); err != nil {
			return nil, nil, err
		}
		set, err := st.recoverShard(sh)
		if err != nil {
			return nil, nil, fmt.Errorf("persist: shard %d: %w", p, err)
		}
		st.shards[p] = sh
		sets[p] = set
	}
	// Span enforcement: a crash inside a rebalance barrier can leave the
	// moved keys present in both shards of the pair (the protocol orders
	// its three durable steps so keys are never lost, only briefly owned
	// twice). The authoritative boundary table decides ownership — drop
	// every key from shards that no longer own it, restoring exactly the
	// pre- or post-move state.
	if o.Partition == shard.RangePartition && o.Shards > 1 {
		bounds := st.bounds
		if bounds == nil {
			bounds = shard.DefaultBounds(o.KeyBits, o.Shards)
		}
		for p, set := range sets {
			stale := dropOutOfSpan(set, p, o.Shards, bounds)
			if len(stale) == 0 {
				continue
			}
			st.droppedKeys += uint64(len(stale))
			// Journal the drop as an ordinary remove record, fsynced before
			// the store is handed out: without it the on-disk history
			// (chain + WAL) would disagree with the in-memory state by
			// exactly these keys, and a follower bootstrapping from the
			// chain would resurrect them with no later record to remove
			// them. With it, chain ⊕ WAL is always the acknowledged state.
			if _, err := st.appendKind(p, recRemove, 0, stale); err != nil {
				return nil, nil, err
			}
			if err := st.Synced(p); err != nil {
				return nil, nil, err
			}
		}
	}
	for _, set := range sets {
		st.recoveredKeys += uint64(set.Len()) // replay included; see recoverShard
	}
	st.wg.Add(1)
	go st.runCheckpointer()
	opened = true
	return st, sets, nil
}

// recoverBounds loads the durable boundary table (if any) and reconciles
// it with the caller-supplied seed: the stored table always wins — it is
// what the journaled history was routed against — and an explicit seed
// that contradicts it is a geometry error, like a manifest mismatch. A
// fresh store with an explicit seed persists it immediately, so a crash
// before the first rebalance still recovers against the right spans.
func (st *Store) recoverBounds(o Options) error {
	stored, gen, ok, err := loadBounds(o.Dir, o.Shards)
	if err != nil {
		return err
	}
	if ok {
		if o.Bounds != nil && !slices.Equal(o.Bounds, stored) {
			return fmt.Errorf("persist: store at %s has a journaled boundary table (gen %d) that differs from Options.Bounds", o.Dir, gen)
		}
		st.bounds, st.boundsGen = stored, gen
		return nil
	}
	if o.Bounds != nil && o.Partition == shard.RangePartition {
		if err := writeBounds(o.Dir, o.BoundsGen, o.Bounds); err != nil {
			return err
		}
		st.bounds, st.boundsGen = o.Bounds, o.BoundsGen
	}
	return nil
}

// Bounds returns the recovered boundary table and its router generation;
// a nil table means the default equal-width spans. Valid after Open.
func (st *Store) Bounds() ([]uint64, uint64) { return st.bounds, st.boundsGen }

// acquireLock takes a non-blocking exclusive flock on dir/LOCK.
func (st *Store) acquireLock() error {
	f, err := os.OpenFile(filepath.Join(st.dir, "LOCK"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return fmt.Errorf("persist: store at %s is locked by another process: %w", st.dir, err)
	}
	st.lockFile = f
	return nil
}

func (st *Store) releaseLock() {
	if st.lockFile != nil {
		syscall.Flock(int(st.lockFile.Fd()), syscall.LOCK_UN)
		st.lockFile.Close()
		st.lockFile = nil
	}
}

// OpenSharded opens (or creates) the durable store described by opts.Dir
// and returns a running async Sharded set recovered from it, wired to the
// store as its journal. Closing the set closes the store; sopts.Async is
// implied (durability rides the mailbox writer goroutines).
func OpenSharded(shards int, sopts *shard.Options) (*shard.Sharded, *Store, error) {
	var so shard.Options
	if sopts != nil {
		so = *sopts
	}
	if shards < 1 {
		shards = 1
	}
	st, sets, err := Open(Options{
		Dir:                    so.Dir,
		Shards:                 shards,
		SyncEvery:              so.SyncEvery,
		SyncBytes:              so.SyncBytes,
		CheckpointEveryBatches: so.CheckpointEveryBatches,
		CompactEveryDeltas:     so.CompactEveryDeltas,
		Set:                    so.Set,
		Partition:              so.Partition,
		KeyBits:                so.KeyBits,
		Bounds:                 so.Bounds,
		BoundsGen:              so.BoundsGen,
	})
	if err != nil {
		return nil, nil, err
	}
	so.Async = true
	so.Journal = st
	// The restarted router must route against the spans recovery replayed
	// (and span-enforced) the shards with, and new rebalances must extend
	// the journaled generation sequence.
	so.Bounds, so.BoundsGen = st.Bounds()
	return shard.NewFrom(sets, &so), st, nil
}

// fail records the first hard error the store hits and returns err.
func (st *Store) fail(err error) error {
	st.errMu.Lock()
	if st.firstErr == nil {
		st.firstErr = err
	}
	st.errMu.Unlock()
	return err
}

// Err returns the first hard I/O error the store has hit, if any.
func (st *Store) Err() error {
	st.errMu.Lock()
	defer st.errMu.Unlock()
	return st.firstErr
}

// appendKind frames and appends one record of the given kind to shard p's
// log, honoring the group-commit knobs. Returns the record's sequence
// number.
func (st *Store) appendKind(p int, kind byte, gen uint64, keys []uint64) (uint64, error) {
	if st.closed.Load() {
		return 0, st.fail(fmt.Errorf("persist: append on closed store"))
	}
	t0 := time.Now()
	sh := st.shards[p]
	sh.mu.Lock()
	seq := sh.seq.Load() + 1
	sh.encBuf = appendRecord(sh.encBuf[:0], seq, kind, gen, keys)
	frameLen := len(sh.encBuf)
	if err := sh.seg.append(sh.encBuf); err != nil {
		sh.mu.Unlock()
		return 0, st.fail(err)
	}
	sh.seq.Store(seq)
	sh.pendingRecs++
	sh.pendingBytes += frameLen
	if (st.opt.SyncEvery > 0 && sh.pendingRecs >= st.opt.SyncEvery) ||
		(st.opt.SyncBytes > 0 && sh.pendingBytes >= st.opt.SyncBytes) {
		if err := st.syncLocked(sh); err != nil {
			sh.mu.Unlock()
			return 0, st.fail(err)
		}
	}
	sh.mu.Unlock()
	st.walAppend.Since(t0)
	st.appBytes.Add(uint64(frameLen))
	return seq, nil
}

// Append logs one sorted batch for shard p ahead of its apply
// (shard.Journal). Group commit: the record lands in the segment's buffer
// immediately and the file is fsynced once SyncEvery records or SyncBytes
// bytes accumulate.
func (st *Store) Append(p int, remove bool, keys []uint64) error {
	kind := byte(recInsert)
	if remove {
		kind = recRemove
	}
	seq, err := st.appendKind(p, kind, 0, keys)
	if err != nil {
		return err
	}
	st.appBatches.Add(1)
	st.appKeys.Add(uint64(len(keys)))
	if st.opt.CheckpointEveryBatches > 0 &&
		seq-st.shards[p].ckptSeq.Load() >= uint64(st.opt.CheckpointEveryBatches) {
		select {
		case st.ckptReq <- struct{}{}:
		default:
		}
	}
	return nil
}

// Rebalanced journals one boundary move (shard.Journal): keys moved from
// shard src to shard dst under the new boundary table at router
// generation gen. Three durable steps, strictly ordered:
//
//  1. A recMoveIn barrier (the keys, as an insert) in dst's log, fsynced.
//  2. The new boundary table in the BOUNDS sidecar, atomically replaced.
//  3. A recMoveOut barrier (the keys, as a removal) in src's log, fsynced.
//
// Every crash point recovers exactly: before 2 the old table routes the
// keys to src (which never logged their removal), so recovery drops the
// dst copy if step 1's record landed; after 2 the new table routes them
// to dst (whose record is durable — step 1 completed), so recovery drops
// the src copy until step 3's removal is on disk. Either way the key set
// is intact and span-consistent — recovery's out-of-span enforcement is
// what collapses the transient double ownership.
//
// Called by the rebalancer with both shards' writers quiesced, so the
// appends cannot interleave with writer-side Appends on these logs.
func (st *Store) Rebalanced(src, dst int, keys []uint64, gen uint64, bounds []uint64) error {
	if _, err := st.appendKind(dst, recMoveIn, gen, keys); err != nil {
		return err
	}
	if err := st.Synced(dst); err != nil {
		return err
	}
	if err := writeBounds(st.dir, gen, bounds); err != nil {
		return st.fail(err)
	}
	if _, err := st.appendKind(src, recMoveOut, gen, keys); err != nil {
		return err
	}
	if err := st.Synced(src); err != nil {
		return err
	}
	st.moveRecs.Add(2)
	st.movedKeys.Add(uint64(len(keys)))
	return nil
}

func (st *Store) syncLocked(sh *storeShard) error {
	if sh.pendingRecs == 0 && sh.pendingBytes == 0 {
		return nil
	}
	t0 := time.Now()
	if err := sh.seg.sync(); err != nil {
		return err
	}
	st.walFsync.Since(t0)
	sh.pendingRecs = 0
	sh.pendingBytes = 0
	sh.syncedSeq = sh.seq.Load()
	st.fsyncs.Add(1)
	return nil
}

// Synced forces shard p's WAL to stable storage (shard.Journal; the
// durability barrier behind Flush).
func (st *Store) Synced(p int) error {
	sh := st.shards[p]
	sh.mu.Lock()
	err := st.syncLocked(sh)
	sh.mu.Unlock()
	if err != nil {
		return st.fail(err)
	}
	return nil
}

// Published records shard p's latest frozen handle (shard.Journal). The
// caller is the shard's writer goroutine, so every record it appended is
// covered by this handle and sh.seq is stable for the read. A handle not
// seen before carries a dirty window — the leaves mutated since the
// previous clone — which is folded into the shard's pending accumulator
// for the next delta checkpoint. Re-reports of the same handle (flush
// tokens on an idle shard re-publish without new mutations) carry no new
// dirt and are deduplicated by pointer.
func (st *Store) Published(p int, set *cpma.CPMA) {
	sh := st.shards[p]
	seq := sh.seq.Load()
	sh.pubMu.Lock()
	if set != sh.pubSet {
		all, bits := set.DirtySince()
		sh.noteDirtyLocked(all, bits)
		sh.pubSet = set
	}
	sh.pubSeq = seq
	sh.pubMu.Unlock()
}

// noteDirtyLocked folds one published dirty window into the pending
// accumulator. Caller holds pubMu. A nil bitset or an explicit all means
// the window is unknown (a handle that never went through Clone) or
// spans a geometry rebuild; either way every leaf is suspect and the
// next checkpoint must be a full base.
func (sh *storeShard) noteDirtyLocked(all bool, bits *parallel.Bitset) {
	if sh.pendingAll {
		return
	}
	if all || bits == nil {
		sh.pendingAll = true
		sh.pendingDirty = nil
		return
	}
	if sh.pendingDirty == nil {
		// The handle's bitset is frozen at Clone and may still be read by
		// others; the accumulator mutates, so it takes its own copy.
		sh.pendingDirty = bits.Clone()
		return
	}
	if !sh.pendingDirty.Or(bits) {
		// Length mismatch: a rebuild changed the leaf count between
		// windows without reporting all (defensive — it should have).
		sh.pendingAll = true
		sh.pendingDirty = nil
	}
}

// Stats returns the store's counters (shard.Journal).
func (st *Store) Stats() shard.PersistStats {
	return shard.PersistStats{
		AppendedBatches:   st.appBatches.Load(),
		AppendedKeys:      st.appKeys.Load(),
		AppendedBytes:     st.appBytes.Load(),
		Fsyncs:            st.fsyncs.Load(),
		Checkpoints:       st.ckpts.Load(),
		CheckpointBytes:   st.ckptBytes.Load(),
		DeltaCheckpoints:  st.deltaCkpts.Load(),
		DeltaBytes:        st.deltaBytes.Load(),
		TruncatedSegments: st.truncSegs.Load(),
		MoveRecords:       st.moveRecs.Load(),
		MovedKeys:         st.movedKeys.Load(),
		RecoveredKeys:     st.recoveredKeys,
		ReplayedBatches:   st.replayedBatches,
		ReplayedKeys:      st.replayedKeys,
		TornBytes:         st.tornBytes,
		DroppedKeys:       st.droppedKeys,
	}
}

// StoreLatencies is a snapshot of the store's latency histograms, all in
// nanoseconds.
type StoreLatencies struct {
	Append     obs.HistSnap // whole Append call, lock wait included
	Fsync      obs.HistSnap // seg.sync alone (group-commit and barrier syncs)
	Checkpoint obs.HistSnap // per-shard checkpoint passes that wrote a file
}

// Latencies snapshots the store's latency histograms.
func (st *Store) Latencies() StoreLatencies {
	return StoreLatencies{
		Append:     st.walAppend.Snapshot(),
		Fsync:      st.walFsync.Snapshot(),
		Checkpoint: st.ckptDur.Snapshot(),
	}
}

// Sub returns the latencies accumulated since prev.
func (l StoreLatencies) Sub(prev StoreLatencies) StoreLatencies {
	return StoreLatencies{
		Append:     l.Append.Sub(prev.Append),
		Fsync:      l.Fsync.Sub(prev.Fsync),
		Checkpoint: l.Checkpoint.Sub(prev.Checkpoint),
	}
}

// RegisterMetrics registers the store's latency histograms with r under
// prefix (e.g. "cpma_wal"). Sharded.RegisterMetrics calls this through an
// optional interface when the set's Journal is a *Store, so the WAL's
// stall profile lands in the same registry as the pipeline's.
func (st *Store) RegisterMetrics(r *obs.Registry, prefix string) {
	if prefix == "" {
		prefix = "wal"
	}
	r.RegisterHistogram(prefix+"_append_ns", "ns", "WAL append call latency (lock wait + buffered write + group-commit fsync when triggered)", &st.walAppend)
	r.RegisterHistogram(prefix+"_fsync_ns", "ns", "WAL fsync latency", &st.walFsync)
	r.RegisterHistogram(prefix+"_checkpoint_ns", "ns", "per-shard checkpoint pass duration (passes that wrote a base or delta)", &st.ckptDur)
}

// Checkpoint writes a slab checkpoint for every shard whose published
// state has advanced past its last checkpoint, then truncates obsolete
// WAL segments (shard.Journal). Callers wanting "everything enqueued so
// far is checkpointed" should flush the set first — Sharded.Checkpoint
// does.
func (st *Store) Checkpoint() error {
	st.ckptMu.Lock()
	defer st.ckptMu.Unlock()
	// Checked under ckptMu: Close tears the segments down while holding
	// it, so a Checkpoint that loses the race observes closed here rather
	// than rotating onto a closed file (which would poison the sticky
	// error on a perfectly clean shutdown).
	if st.closed.Load() {
		return st.Err()
	}
	var firstErr error
	for _, sh := range st.shards {
		if err := st.checkpointShard(sh, 1); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return st.fail(firstErr)
	}
	return st.Err()
}

// checkpointShard checkpoints one shard if its published state covers at
// least minAdvance records past the last checkpoint. Caller holds ckptMu.
//
// The checkpoint is a delta against the current base when the pending
// dirty window is known and the chain is shorter than the compaction
// cadence, otherwise a fresh full base slab. Only a base moves the
// retention floor: the delta path deletes nothing, so any single
// corrupt file in the live chain still leaves the previous base — and
// the WAL tail above it — available for fallback.
func (st *Store) checkpointShard(sh *storeShard, minAdvance uint64) error {
	// Time the pass, but only record it when a checkpoint file was
	// actually written — skipped passes (nothing published, no advance)
	// would otherwise flood the histogram with near-zero samples.
	t0 := time.Now()
	wrote0 := st.ckpts.Load() + st.deltaCkpts.Load()
	defer func() {
		if st.ckpts.Load()+st.deltaCkpts.Load() != wrote0 {
			st.ckptDur.Since(t0)
		}
	}()
	// Capture-and-swap the published handle and its accumulated dirty
	// window under one lock acquisition: dirt reported after this point
	// belongs to the next checkpoint, dirt captured here is consumed by
	// this one (or re-merged by restore if it skips or fails).
	sh.pubMu.Lock()
	set, seq := sh.pubSet, sh.pubSeq
	all, dirtyBits := sh.pendingAll, sh.pendingDirty
	sh.pendingAll, sh.pendingDirty = false, nil
	sh.pubMu.Unlock()
	restore := func() {
		sh.pubMu.Lock()
		sh.noteDirtyLocked(all, dirtyBits)
		sh.pubMu.Unlock()
	}
	cur := sh.ckptSeq.Load()
	if set == nil || seq < cur+minAdvance {
		restore()
		return nil
	}

	writeDelta := sh.baseSeq != 0 && !all && dirtyBits != nil &&
		st.opt.CompactEveryDeltas > 0 && sh.deltasSinceBase < st.opt.CompactEveryDeltas
	if writeDelta && dirtyBits.Len() != set.Leaves() {
		// The window's geometry does not match the handle (a rebuild
		// should have reported all; defensive): write a base.
		writeDelta = false
	}

	if writeDelta {
		payloadBytes, err := writeDeltaCheckpoint(sh.dir, sh.id, seq, cur, sh.baseSeq, set, dirtyBits.Indices())
		if err != nil {
			restore()
			return err
		}
		st.deltaCkpts.Add(1)
		st.deltaBytes.Add(payloadBytes)
		sh.deltasSinceBase++
		sh.ckptSeq.Store(seq)
		// Rotate so the covered prefix lives in closed segments, but
		// delete nothing: deltas never advance the retention floor.
		return st.rotateSegment(sh)
	}

	payloadBytes, err := writeCheckpoint(sh.dir, sh.id, seq, set)
	if err != nil {
		restore()
		return err
	}
	st.ckpts.Add(1)
	st.ckptBytes.Add(payloadBytes)
	floor := sh.baseSeq // the now-previous base: the WAL deletion floor
	sh.prevBaseSeq = sh.baseSeq
	sh.baseSeq = seq
	sh.deltasSinceBase = 0
	sh.ckptSeq.Store(seq)
	if err := st.rotateSegment(sh); err != nil {
		return err
	}

	// Drop checkpoint files — bases and deltas — from chains older than
	// the retained previous base, then every closed segment whose records
	// are all covered by the deletion floor (a segment's records end one
	// before the next segment's first seq).
	ckptSeqs, err := listSeqFiles(sh.dir, "ckpt-", ".ckpt")
	if err != nil {
		return err
	}
	for _, s := range ckptSeqs {
		if s < sh.prevBaseSeq {
			if err := os.Remove(filepath.Join(sh.dir, checkpointName(s))); err != nil {
				return err
			}
		}
	}
	deltaSeqs, err := listSeqFiles(sh.dir, "delta-", ".dckpt")
	if err != nil {
		return err
	}
	for _, s := range deltaSeqs {
		if s < sh.prevBaseSeq {
			if err := os.Remove(filepath.Join(sh.dir, deltaName(s))); err != nil {
				return err
			}
		}
	}
	segSeqs, err := listSeqFiles(sh.dir, "wal-", ".log")
	if err != nil {
		return err
	}
	removed := false
	for i := 0; i+1 < len(segSeqs); i++ {
		if segSeqs[i+1]-1 > floor {
			break
		}
		if err := os.Remove(filepath.Join(sh.dir, segmentName(segSeqs[i]))); err != nil {
			return err
		}
		st.truncSegs.Add(1)
		removed = true
	}
	if removed {
		if err := syncDir(sh.dir); err != nil {
			return err
		}
	}
	return nil
}

// rotateSegment closes the active WAL segment (if it holds any records)
// and opens a fresh one, so the prefix a checkpoint just covered lives
// in closed segments that a future base checkpoint can delete whole.
func (st *Store) rotateSegment(sh *storeShard) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.seg.records == 0 {
		return nil
	}
	if err := st.syncLocked(sh); err != nil {
		return err
	}
	if err := sh.seg.close(); err != nil {
		return err
	}
	nsg, err := createSegment(filepath.Join(sh.dir, segmentName(sh.seq.Load()+1)), sh.id)
	if err != nil {
		return err
	}
	sh.seg = nsg
	return nil
}

// runCheckpointer is the background checkpoint loop: woken by Append when
// a shard crosses CheckpointEveryBatches, it checkpoints every shard that
// is over the threshold. Errors are sticky (Err) — durability of the WAL
// is unaffected by a failed checkpoint, so the pipeline keeps running.
func (st *Store) runCheckpointer() {
	defer st.wg.Done()
	for {
		select {
		case <-st.done:
			return
		case <-st.ckptReq:
			st.ckptMu.Lock()
			for _, sh := range st.shards {
				if err := st.checkpointShard(sh, uint64(st.opt.CheckpointEveryBatches)); err != nil {
					st.fail(err)
				}
			}
			st.ckptMu.Unlock()
		}
	}
}

// Close stops the checkpointer, fsyncs and closes every shard's WAL, and
// returns the store's first hard error (shard.Journal). Idempotent. The
// caller must have stopped the shard writers first — Sharded.Close does,
// closing the journal only after the final drain.
func (st *Store) Close() error {
	st.closeOnce.Do(func() {
		st.closed.Store(true)
		close(st.done)
		st.wg.Wait()
		// ckptMu excludes in-flight Checkpoint passes: they either finish
		// before the teardown (their rotations land on live segments) or
		// observe closed after acquiring the lock and do nothing.
		st.ckptMu.Lock()
		for _, sh := range st.shards {
			sh.mu.Lock()
			if err := st.syncLocked(sh); err == nil {
				if err := sh.seg.close(); err != nil {
					st.fail(err)
				}
			} else {
				st.fail(err)
				sh.seg.close()
			}
			sh.mu.Unlock()
		}
		st.ckptMu.Unlock()
		st.releaseLock()
		st.closedErr = st.Err()
	})
	return st.closedErr
}

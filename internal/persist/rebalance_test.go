package persist

// Durability tests for live span rebalancing: the journaled barrier
// protocol (dest moveIn record -> BOUNDS table -> source moveOut record,
// each forced to disk in turn) must make every crash point recover to
// exactly the pre- or post-move state, and a clean reopen must restart
// the set with the journaled boundary table.

import (
	"encoding/json"
	"os"
	"path/filepath"
	"slices"
	"testing"

	"repro/internal/shard"
	"repro/internal/workload"
)

// seqKeys returns the sorted keys [1, n] — maximal range-partition skew:
// every key lands in shard 0's default span when n is far below the key
// space.
func seqKeys(n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = uint64(i) + 1
	}
	return out
}

// TestRebalanceDurableReopen: ingest a skewed stream, rebalance, ingest
// more (routed by the moved boundaries), close; a clean reopen must
// restore the exact contents AND the journaled boundary table, and new
// rebalances must continue the journaled generation sequence.
func TestRebalanceDurableReopen(t *testing.T) {
	const shards, keyBits = 3, 14
	dir := t.TempDir()
	opt := shard.Options{
		Partition: shard.RangePartition, KeyBits: keyBits,
		SyncEvery: 1, CheckpointEveryBatches: -1,
	}
	s, _ := openSet(t, dir, shards, opt)
	s.InsertBatch(seqKeys(3000), true)
	s.Flush()
	if moves := s.RebalanceOnce(); moves == 0 {
		t.Fatal("no rebalance on a fully skewed ingest")
	}
	bounds := s.Bounds()
	gen := s.RebalanceStats().Gen
	if gen == 0 || !slices.IsSorted(bounds) {
		t.Fatalf("bad rebalance state: gen %d bounds %v", gen, bounds)
	}
	// Post-move ingest exercises routing against the moved boundaries.
	extra := workload.Uniform(workload.NewRNG(9), 2000, keyBits)
	s.InsertBatch(extra, false)
	s.Flush()
	want := s.Keys()
	st1 := s.PersistStats()
	if st1.MoveRecords == 0 || st1.MovedKeys == 0 {
		t.Fatalf("move barriers not journaled: %+v", st1)
	}
	s.Close()

	s2, store2 := openSet(t, dir, shards, opt)
	if !slices.Equal(s2.Keys(), want) {
		t.Fatal("reopen lost data across a rebalance")
	}
	if !slices.Equal(s2.Bounds(), bounds) {
		t.Fatalf("reopen lost the boundary table: %v vs %v", s2.Bounds(), bounds)
	}
	if got := s2.RebalanceStats().Gen; got != gen {
		t.Fatalf("reopen lost the router generation: %d vs %d", got, gen)
	}
	if rb, rg := store2.Bounds(); !slices.Equal(rb, bounds) || rg != gen {
		t.Fatalf("store bounds %v gen %d, want %v gen %d", rb, rg, bounds, gen)
	}
	if err := s2.Validate(); err != nil {
		t.Fatal(err)
	}
	// New moves continue the journaled generation sequence.
	s2.InsertBatch(seqKeys(6000), true)
	s2.Flush()
	if s2.RebalanceOnce() > 0 {
		if got := s2.RebalanceStats().Gen; got <= gen {
			t.Fatalf("generation went backwards after reopen: %d <= %d", got, gen)
		}
	}
	s2.Close()

	// A contradictory explicit seed table is a geometry error.
	bad := opt
	bad.Dir = dir
	bad.Bounds = shard.DefaultBounds(keyBits, shards)
	if _, _, err := OpenSharded(shards, &bad); err == nil {
		t.Fatal("open with a contradicting Options.Bounds must fail")
	}
}

// TestRebalanceKillPoints is the kill-point crash harness for the barrier
// protocol. It runs a fully skewed ingest plus one rebalance to
// completion, then reconstructs every crash state the protocol's fsync
// ordering permits — byte-granular truncations of the destination's
// moveIn record with the boundary table rolled back and the source record
// absent (a crash in step 1 or between steps 1 and 2), and byte-granular
// truncations of the source's moveOut record with the new table durable
// (a crash in step 3 or between steps 2 and 3) — and requires recovery to
// restore the exact global key set with every shard span-consistent under
// the recovered table.
func TestRebalanceKillPoints(t *testing.T) {
	const shards, keyBits, n = 2, 14, 1500
	base := t.TempDir()
	opt := shard.Options{
		Partition: shard.RangePartition, KeyBits: keyBits,
		SyncEvery: 1, CheckpointEveryBatches: -1,
	}
	popt := Options{
		Shards: shards, SyncEvery: 1, CheckpointEveryBatches: -1,
		Partition: shard.RangePartition, KeyBits: keyBits,
	}
	model := seqKeys(n) // all inside shard 0's default span [0, 8192)
	s, _ := openSet(t, base, shards, opt)
	for lo := 0; lo < n; lo += 250 {
		s.InsertBatch(model[lo:lo+250], true)
	}
	s.Flush()
	if moves := s.RebalanceOnce(); moves != 1 {
		t.Fatalf("want exactly one boundary move, got %d", moves)
	}
	newBounds := s.Bounds()
	s.Close()

	// Locate the barrier records. The move went 0 -> 1: shard 1's log is
	// its moveIn record alone, shard 0's log ends with its moveOut record.
	findBarrier := func(p int, kind byte) walRecord {
		t.Helper()
		segs, err := listSeqFiles(filepath.Join(base, shardDirName(p)), "wal-", ".log")
		if err != nil || len(segs) == 0 {
			t.Fatalf("shard %d: no segments (%v)", p, err)
		}
		for _, fs := range segs {
			recs, _, ok, err := scanSegment(filepath.Join(base, shardDirName(p), segmentName(fs)), p)
			if err != nil || !ok {
				t.Fatalf("shard %d: scan failed: %v", p, err)
			}
			for _, rec := range recs {
				if rec.kind == kind {
					return rec
				}
			}
		}
		t.Fatalf("shard %d: no record of kind %d", p, kind)
		return walRecord{}
	}
	moveIn := findBarrier(1, recMoveIn)
	moveOut := findBarrier(0, recMoveOut)
	if moveIn.gen != 1 || moveOut.gen != 1 || !slices.Equal(moveIn.keys, moveOut.keys) {
		t.Fatalf("barrier records inconsistent: in gen %d out gen %d", moveIn.gen, moveOut.gen)
	}

	// recoverAndCheck opens the damaged copy and verifies: exact global
	// contents, span consistency under the recovered table, structural
	// health.
	recoverAndCheck := func(killDir, label string, wantBounds []uint64) {
		t.Helper()
		p2 := popt
		p2.Dir = killDir
		st, sets, err := Open(p2)
		if err != nil {
			t.Fatalf("%s: recovery failed: %v", label, err)
		}
		defer st.Close()
		gotBounds, _ := st.Bounds()
		if gotBounds == nil {
			gotBounds = shard.DefaultBounds(keyBits, shards)
		}
		if wantBounds != nil && !slices.Equal(gotBounds, wantBounds) {
			t.Fatalf("%s: recovered bounds %v, want %v", label, gotBounds, wantBounds)
		}
		var global []uint64
		for p, set := range sets {
			if err := set.Validate(); err != nil {
				t.Fatalf("%s: shard %d invalid: %v", label, p, err)
			}
			keys := cpmaKeys(set)
			// Span consistency: shard p only holds keys it owns.
			var lo, hi uint64
			if p > 0 {
				lo = gotBounds[p-1]
			}
			hi = ^uint64(0)
			if p < shards-1 {
				hi = gotBounds[p]
			}
			for _, k := range keys {
				if k < lo || (p < shards-1 && k >= hi) {
					t.Fatalf("%s: shard %d holds out-of-span key %d (span [%d,%d))", label, p, k, lo, hi)
				}
			}
			global = append(global, keys...)
		}
		slices.Sort(global)
		if !slices.Equal(global, model) {
			t.Fatalf("%s: recovered %d keys, want %d (a pure rebalance never changes contents)",
				label, len(global), len(model))
		}
	}

	copyStore := func() string {
		t.Helper()
		killDir := filepath.Join(t.TempDir(), "kill")
		if err := os.CopyFS(killDir, os.DirFS(base)); err != nil {
			t.Fatal(err)
		}
		return killDir
	}
	shard0Log := func(dir string) string {
		segs, err := listSeqFiles(filepath.Join(dir, shardDirName(0)), "wal-", ".log")
		if err != nil || len(segs) == 0 {
			t.Fatalf("no shard 0 segments: %v", err)
		}
		// The moveOut landed in the newest segment.
		return filepath.Join(dir, shardDirName(0), segmentName(segs[len(segs)-1]))
	}
	shard1Log := func(dir string) string {
		segs, err := listSeqFiles(filepath.Join(dir, shardDirName(1)), "wal-", ".log")
		if err != nil || len(segs) == 0 {
			t.Fatalf("no shard 1 segments: %v", err)
		}
		return filepath.Join(dir, shardDirName(1), segmentName(segs[0]))
	}

	// Crash in step 1 (or between 1 and 2): the destination's moveIn is
	// torn at every byte, the boundary table is still the implicit
	// default, and the source's moveOut was never appended.
	for cutAt := int64(0); cutAt <= moveIn.end; cutAt++ {
		killDir := copyStore()
		if err := os.Truncate(shard1Log(killDir), cutAt); err != nil {
			t.Fatal(err)
		}
		if err := os.Remove(filepath.Join(killDir, boundsName)); err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(shard0Log(killDir), moveOut.start); err != nil {
			t.Fatal(err)
		}
		recoverAndCheck(killDir, "step1", nil)
	}

	// Crash in step 3 (or between 2 and 3): the new table and the
	// destination's record are durable; the source's moveOut is torn at
	// every byte.
	for cutAt := moveOut.start; cutAt <= moveOut.end; cutAt++ {
		killDir := copyStore()
		if err := os.Truncate(shard0Log(killDir), cutAt); err != nil {
			t.Fatal(err)
		}
		recoverAndCheck(killDir, "step3", newBounds)
	}
}

// TestManifestVersionCompat: version-1 manifests (pre-rebalancing stores)
// still open when the geometry matches — and are upgraded to the current
// version, so a binary from before rebalancing refuses the store instead
// of silently discarding the version-2 WAL segments this binary writes;
// unknown future versions are rejected.
func TestManifestVersionCompat(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, manifestName),
		[]byte(`{"version":1,"shards":2,"partition":"range","key_bits":16}`), 0o644); err != nil {
		t.Fatal(err)
	}
	opt := Options{Dir: dir, Shards: 2, Partition: shard.RangePartition, KeyBits: 16}
	st, sets, err := Open(opt)
	if err != nil {
		t.Fatalf("v1 manifest rejected: %v", err)
	}
	if len(sets) != 2 {
		t.Fatalf("recovered %d shards", len(sets))
	}
	st.Close()
	blob, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		t.Fatal(err)
	}
	var m manifest
	if err := json.Unmarshal(blob, &m); err != nil {
		t.Fatal(err)
	}
	if m.Version != manifestVersion {
		t.Fatalf("v1 manifest not upgraded: version %d", m.Version)
	}

	dir2 := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir2, manifestName),
		[]byte(`{"version":99,"shards":2,"partition":"range","key_bits":16}`), 0o644); err != nil {
		t.Fatal(err)
	}
	opt.Dir = dir2
	if _, _, err := Open(opt); err == nil {
		t.Fatal("future manifest version accepted")
	}
}

package persist

// Race coverage for the durability path: concurrent async ingest through
// the journaling writers, explicit Checkpoint calls racing the background
// checkpointer, snapshot captures, flushes, and a Close racing all of it —
// then a recovery pass that must reproduce the final state exactly.

import (
	"slices"
	"sync"
	"testing"

	"repro/internal/shard"
	"repro/internal/workload"
)

func TestDurableIngestRace(t *testing.T) {
	const (
		shards  = 4
		writers = 4
		batches = 30
		size    = 400
	)
	dir := t.TempDir()
	opt := shard.Options{
		SyncEvery:              8,
		CheckpointEveryBatches: 16, // keep the background checkpointer busy
		MailboxDepth:           4,
	}
	s, _ := openSet(t, dir, shards, opt)

	// Each writer owns a disjoint key range, so the final state is exactly
	// the union regardless of interleaving.
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := workload.NewRNG(uint64(w) + 1)
			lo := uint64(w) << 40
			for i := 0; i < batches; i++ {
				keys := workload.Uniform(r, size, 39)
				for j := range keys {
					keys[j] |= lo + 1<<39
				}
				if i%4 == 3 {
					s.InsertBatch(keys, false) // ticketed path
				} else {
					s.InsertBatchAsync(keys, false)
				}
				if i%5 == 4 {
					s.RemoveBatchAsync(keys[:size/4], false)
				}
			}
		}(w)
	}
	var aux sync.WaitGroup
	stop := make(chan struct{})
	aux.Add(2)
	go func() { // checkpoint hammer racing the background checkpointer
		defer aux.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if err := s.Checkpoint(); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	go func() { // snapshot + stats readers
		defer aux.Done()
		for {
			select {
			case <-stop:
				return
			default:
				sn := s.Snapshot()
				_ = sn.Len()
				_ = s.PersistStats()
				s.Flush()
			}
		}
	}()
	wg.Wait()
	close(stop)
	aux.Wait()
	s.Flush()
	want := s.Keys()
	s.Close()

	s2, _ := openSet(t, dir, shards, opt)
	defer s2.Close()
	if err := s2.Validate(); err != nil {
		t.Fatalf("recovered set invalid: %v", err)
	}
	if !slices.Equal(want, s2.Keys()) {
		t.Fatalf("recovery diverged: %d keys before, %d after", len(want), s2.Len())
	}
}

// TestHotKeyDurableRace points the durability hammer at the hot-key
// absorber: writers blast shared hot keys (which promote, absorb, and
// journal only at reconcile time) alongside disjoint private streams,
// racing explicit Checkpoints, snapshots, and flushes. Flush forces
// reconcile-then-fsync, so the state captured before Close — absorbed
// traffic included — must survive recovery exactly.
func TestHotKeyDurableRace(t *testing.T) {
	const (
		shards  = 4
		writers = 4
		batches = 30
		size    = 300
	)
	dir := t.TempDir()
	opt := shard.Options{
		SyncEvery:              8,
		CheckpointEveryBatches: 16,
		MailboxDepth:           4,
		HotKeys:                true,
		HotKeyEvery:            64,
		HotKeyFrac:             0.05,
		HotKeyMax:              8,
	}
	s, _ := openSet(t, dir, shards, opt)

	// Hot keys are shared and insert-only; private ranges are disjoint per
	// writer (bit 39 set, so they never collide with the hot keys). The
	// final state is exact regardless of interleaving.
	hot := []uint64{11, 12, 13, 21, 22, 23}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := workload.NewRNG(uint64(w) + 1)
			lo := uint64(w) << 40
			for i := 0; i < batches; i++ {
				keys := workload.Uniform(r, size, 39)
				for j := range keys {
					keys[j] |= lo + 1<<39
				}
				// Rotate the blasted hot set so cooled keys demote with
				// pending absorbed state that Checkpoint must not lose.
				hk := hot[:3]
				if i > batches/2 {
					hk = hot[3:]
				}
				for j := 0; j < 200; j++ {
					keys = append(keys, hk[r.Intn(len(hk))])
				}
				if i%4 == 3 {
					s.InsertBatch(keys, false)
				} else {
					s.InsertBatchAsync(keys, false)
				}
				if i%5 == 4 {
					s.RemoveBatchAsync(keys[:size/4], false)
				}
			}
		}(w)
	}
	var aux sync.WaitGroup
	stop := make(chan struct{})
	aux.Add(2)
	go func() {
		defer aux.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if err := s.Checkpoint(); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	go func() {
		defer aux.Done()
		for {
			select {
			case <-stop:
				return
			default:
				sn := s.Snapshot()
				_ = sn.Len()
				_ = s.IngestStats()
				s.Flush()
			}
		}
	}()
	wg.Wait()
	close(stop)
	aux.Wait()
	s.Flush()
	for _, k := range hot {
		if !s.Has(k) {
			t.Fatalf("hot key %d missing before close", k)
		}
	}
	st := s.IngestStats()
	if st.AbsorbedKeys == 0 || st.HotKeys == 0 {
		t.Fatalf("absorber never engaged under durability: %+v", st)
	}
	if st.AppliedKeys+st.AbsorbedKeys != st.EnqueuedKeys {
		t.Fatalf("key conservation broken: %+v", st)
	}
	want := s.Keys()
	s.Close()

	s2, _ := openSet(t, dir, shards, opt)
	defer s2.Close()
	if err := s2.Validate(); err != nil {
		t.Fatalf("recovered set invalid: %v", err)
	}
	if !slices.Equal(want, s2.Keys()) {
		t.Fatalf("recovery diverged: %d keys before, %d after", len(want), s2.Len())
	}
	for _, k := range hot {
		if !s2.Has(k) {
			t.Fatalf("hot key %d lost across recovery", k)
		}
	}
}

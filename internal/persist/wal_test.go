package persist

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"slices"
	"testing"
)

func TestRecordRoundTrip(t *testing.T) {
	cases := [][]uint64{
		{1},
		{1, 2, 3, 1 << 40, 1<<64 - 1},
		{7, 7, 7, 9}, // coalesced merges may carry duplicates
		{},
	}
	for i, keys := range cases {
		for _, remove := range []bool{false, true} {
			kind := byte(recInsert)
			if remove {
				kind = recRemove
			}
			frame := appendRecord(nil, uint64(100+i), kind, 0, keys)
			plen := binary.LittleEndian.Uint32(frame)
			rec, err := decodeRecord(frame[recHeaderSize : recHeaderSize+int(plen)])
			if err != nil {
				t.Fatalf("case %d: decode: %v", i, err)
			}
			if rec.seq != uint64(100+i) || rec.remove() != remove {
				t.Fatalf("case %d: got seq=%d remove=%v", i, rec.seq, rec.remove())
			}
			if !slices.Equal(rec.keys, keys) && !(len(keys) == 0 && len(rec.keys) == 0) {
				t.Fatalf("case %d: keys %v != %v", i, rec.keys, keys)
			}
		}
	}
}

func TestDecodeRecordRejectsMalformed(t *testing.T) {
	frame := appendRecord(nil, 5, recInsert, 0, []uint64{10, 20})
	payload := frame[recHeaderSize:]
	cases := map[string][]byte{
		"empty":          {},
		"bad-kind":       append([]byte{9}, payload[1:]...),
		"truncated":      payload[:len(payload)-1],
		"trailing-bytes": append(slices.Clone(payload), 0x01),
		"absurd-count": func() []byte {
			b := slices.Clone(payload[:2])
			return binary.AppendUvarint(b, 1<<40)
		}(),
	}
	for name, p := range cases {
		if _, err := decodeRecord(p); err == nil {
			t.Errorf("%s: decodeRecord accepted malformed payload", name)
		}
	}
}

// writeTestSegment creates a segment holding the given records and
// returns its path.
func writeTestSegment(t *testing.T, dir string, shardID int, firstSeq uint64, batches [][]uint64) string {
	t.Helper()
	path := filepath.Join(dir, segmentName(firstSeq))
	sg, err := createSegment(path, shardID)
	if err != nil {
		t.Fatal(err)
	}
	for i, keys := range batches {
		if err := sg.append(appendRecord(nil, firstSeq+uint64(i), recInsert, 0, keys)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sg.sync(); err != nil {
		t.Fatal(err)
	}
	if err := sg.close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestScanSegmentStopsAtDamage(t *testing.T) {
	dir := t.TempDir()
	path := writeTestSegment(t, dir, 3, 1, [][]uint64{{1, 2}, {3}, {4, 5, 6}})
	recs, validEnd, headerOK, err := scanSegment(path, 3)
	if err != nil || !headerOK {
		t.Fatalf("clean scan: err=%v headerOK=%v", err, headerOK)
	}
	if len(recs) != 3 || recs[2].end != validEnd {
		t.Fatalf("clean scan: %d records, validEnd %d vs last end %d", len(recs), validEnd, recs[len(recs)-1].end)
	}

	data, _ := os.ReadFile(path)

	// Shard mismatch or mangled magic invalidates the whole file.
	if _, _, ok, _ := scanSegment(path, 4); ok {
		t.Fatal("scan accepted a segment belonging to another shard")
	}
	bad := slices.Clone(data)
	bad[0] = 'X'
	os.WriteFile(path, bad, 0o644)
	if _, _, ok, _ := scanSegment(path, 3); ok {
		t.Fatal("scan accepted a segment with bad magic")
	}

	// A flipped byte inside record 2's payload ends the valid prefix at
	// record 1's boundary; bytes past it are ignored.
	bad = slices.Clone(data)
	bad[recs[1].start+recHeaderSize] ^= 0x40
	os.WriteFile(path, bad, 0o644)
	got, end, ok, _ := scanSegment(path, 3)
	if !ok || len(got) != 1 || end != recs[0].end {
		t.Fatalf("corrupt scan: headerOK=%v records=%d end=%d (want 1 record ending %d)", ok, len(got), end, recs[0].end)
	}

	// Every byte-truncation of the file yields a clean record-boundary
	// prefix.
	for n := int64(0); n <= int64(len(data)); n++ {
		os.WriteFile(path, data[:n], 0o644)
		got, end, ok, err := scanSegment(path, 3)
		if err != nil {
			t.Fatal(err)
		}
		if n < segHeaderSize {
			if ok {
				t.Fatalf("truncation %d: header accepted", n)
			}
			continue
		}
		if !ok {
			t.Fatalf("truncation %d: header rejected", n)
		}
		want := 0
		for _, r := range recs {
			if r.end <= n {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("truncation %d: %d records, want %d", n, len(got), want)
		}
		if end > n {
			t.Fatalf("truncation %d: validEnd %d past file end", n, end)
		}
	}
}

// Package persist gives the sharded CPMA front-end crash durability: a
// per-shard write-ahead batch log plus pointer-free slab checkpoints, and
// the recovery that stitches the two back together after a crash.
//
// The design leans on the paper's central property. A CPMA is a compressed
// set *without pointers* — its entire state is flat slabs — so a checkpoint
// is a raw dump of those slabs (cpma.WriteTo) taken from an immutable
// handle the shard writer already publishes for snapshots: no traversal,
// no pointer fixup, no stop-the-world. The log side piggybacks on the
// async ingest pipeline: each shard's mailbox writer is the shard's sole
// mutator, so it appends every coalesced batch to the shard's log before
// applying it (write-ahead), with no extra synchronization on the hot
// path.
//
// # On-disk layout
//
//	dir/MANIFEST                     set geometry (shards, partition, ...)
//	dir/BOUNDS                       live span boundary table + generation
//	                                 (absent until the first rebalance)
//	dir/shard-NNNN/wal-<seq20>.log   WAL segments; <seq20> is the sequence
//	                                 number of the segment's first record
//	dir/shard-NNNN/ckpt-<seq20>.ckpt full (base) slab checkpoints; <seq20>
//	                                 is the last record sequence the state
//	                                 reflects
//	dir/shard-NNNN/delta-<seq20>.dckpt delta checkpoints: the dirty leaves
//	                                 since the previous checkpoint in the
//	                                 chain, patched onto a named base
//
// Every WAL record frames one applied batch: a little-endian length and
// CRC32C header, then kind (insert/remove/moveIn/moveOut), the record's
// per-shard sequence number, the router generation (barrier kinds only),
// and the sorted keys varint-delta encoded. Checkpoint files wrap a cpma
// slab (itself CRC-guarded) in a header naming the shard and covered
// sequence, with a whole-file CRC32C trailer. All formats are versioned
// via magics; readers reject unknown versions. The manifest records the
// immutable creation-time geometry (version 2; version-1 stores, from
// before rebalancing, still open); the BOUNDS sidecar records the live,
// generation-stamped boundary table that rebalancing rewrites.
//
// # Rebalance barriers
//
// A live boundary move relocates keys between two shards outside the
// normal batch flow, so it is journaled as its own three-step barrier
// (Store.Rebalanced), each step forced to disk before the next:
//
//  1. a moveIn record (the moved keys) in the destination's WAL, fsynced;
//  2. the new boundary table, atomically replacing dir/BOUNDS;
//  3. a moveOut record in the source's WAL, fsynced.
//
// Replay treats the barrier records as the insert/remove batches they
// encode, and recovery finishes with span enforcement: any key held by a
// shard that does not own it under the recovered boundary table is
// dropped. The ordering makes every crash point exact — before step 2
// the old table still routes the moved keys to the source (whose removal
// was never logged), so a surviving destination copy is dropped as
// out-of-span; after step 2 the new table routes them to the destination
// (whose record step 1 made durable first), so a lingering source copy
// is dropped instead. Keys are never lost, only transiently owned twice,
// and recovery always lands on exactly the pre- or post-move state.
//
// # Durability contract
//
// Three levels, weakest to strongest:
//
//   - An acknowledged mutation (a returned InsertBatch/Insert/...) has been
//     appended to its shard's WAL, but is fsynced only per the group-commit
//     knobs (Options.SyncEvery records / Options.SyncBytes bytes). A crash
//     may lose the unsynced suffix.
//   - After Flush returns, every previously enqueued mutation is applied
//     AND its shard's WAL is fsynced: Flush is the durability barrier.
//     SyncEvery=1 makes every record durable before its call returns.
//   - After Checkpoint returns, every shard's state is additionally
//     captured in a slab checkpoint and the WAL prefix it covers is
//     truncated (recovery work becomes proportional to the log tail).
//
// # Delta checkpoints
//
// The CPMA's copy-on-write clones report which leaves changed between
// published handles (cpma.DirtySince), and checkpoints exploit it: once
// a shard has a full base slab on disk, subsequent checkpoints write
// only the dirty leaves as a delta file (cpma.WriteDeltaTo) chained to
// that base — each delta's header names the base it anchors to and the
// checkpoint it patches on top of. Checkpoint I/O then scales with how
// much changed, not with shard size, exactly as a published clone's
// memory cost does. A chain is compacted back into a fresh base every
// Options.CompactEveryDeltas deltas, and whenever the dirty window is
// unknown or a geometry rebuild dirtied everything.
//
// Recovery (Open) processes each shard independently: load the newest
// base checkpoint that passes its CRC and cpma Validate — falling back
// to the retained previous one — then walk its delta chain, applying
// each delta that verifies (whole-file CRC, chain linkage, structural
// checks, and the strict semantic validator, each applied onto a COW
// clone so a late failure leaves the previous link intact). The chain
// ends at the first failure; then replay the WAL tail in sequence order,
// skipping records the chain already covers, and stop at the first torn
// or corrupt record, truncating the log there (later segments,
// unreachable past the gap, are deleted). The recovered state is always
// a per-shard prefix of the appended batch history: synced batches are
// never lost, torn tails are cleanly dropped.
//
// # Retention
//
// Only base checkpoints advance the deletion floor. Writing a base
// deletes checkpoint files — bases and deltas — from chains older than
// the previous base, and WAL segments whose records the previous base
// covers; writing a delta deletes nothing. The store therefore always
// holds its two newest base chains, and the WAL tail above the older
// base, so any single corrupt file — the newest base, any delta — still
// leaves a verifiable recovery point with the log needed to replay
// forward from it. A bit-rotted newest base falls back to the previous
// one and can even pick up *its* retained delta chain on the way.
package persist

import (
	"fmt"

	"repro/internal/cpma"
	"repro/internal/shard"
)

// Defaults for the group-commit and checkpoint cadence knobs.
const (
	DefaultSyncEvery              = 32
	DefaultSyncBytes              = 1 << 20
	DefaultCheckpointEveryBatches = 4096
	DefaultCompactEveryDeltas     = 8
)

// Options configures a Store. The zero value of every field selects a
// default; negative SyncEvery/SyncBytes disable that group-commit trigger
// and a negative CheckpointEveryBatches disables the background
// checkpointer (explicit Checkpoint calls still work).
type Options struct {
	// Dir roots the store's files. Required.
	Dir string
	// Shards is the shard count; it is fixed at creation and validated
	// against the manifest on reopen. Required (>= 1).
	Shards int
	// SyncEvery fsyncs a shard's WAL after this many appended records.
	SyncEvery int
	// SyncBytes fsyncs a shard's WAL once this many bytes accumulate.
	SyncBytes int
	// CheckpointEveryBatches checkpoints a shard once this many records
	// accumulate past its last checkpoint.
	CheckpointEveryBatches int
	// CompactEveryDeltas bounds a shard's delta-checkpoint chain: after
	// this many deltas against one base, the next checkpoint is a fresh
	// full base slab (which also lets retention reap the older chain). A
	// negative value disables delta checkpoints entirely — every
	// checkpoint is a base, restoring the pre-delta behavior.
	CompactEveryDeltas int
	// Set configures the recovered CPMAs (nil for the paper's defaults);
	// it must match the options the live set runs with.
	Set *cpma.Options
	// Partition and KeyBits describe the key routing of the set this store
	// backs; they are recorded in the manifest and validated on reopen,
	// because replaying a hash-partitioned log into a range-partitioned
	// set would scatter keys to the wrong shards.
	Partition shard.Partition
	KeyBits   int
	// Bounds seeds the RangePartition boundary table of a fresh store (nil
	// = default equal-width spans). Once the store exists, the journaled
	// BOUNDS sidecar is authoritative — rebalancing rewrites it — and an
	// explicit seed that contradicts it is rejected like any other
	// geometry mismatch. BoundsGen seeds the router generation.
	Bounds    []uint64
	BoundsGen uint64
}

func (o Options) withDefaults() (Options, error) {
	if o.Dir == "" {
		return o, fmt.Errorf("persist: Options.Dir is required")
	}
	if o.Shards < 1 {
		return o, fmt.Errorf("persist: Options.Shards must be >= 1 (got %d)", o.Shards)
	}
	if o.SyncEvery == 0 {
		o.SyncEvery = DefaultSyncEvery
	}
	if o.SyncBytes == 0 {
		o.SyncBytes = DefaultSyncBytes
	}
	if o.CheckpointEveryBatches == 0 {
		o.CheckpointEveryBatches = DefaultCheckpointEveryBatches
	}
	if o.CompactEveryDeltas == 0 {
		o.CompactEveryDeltas = DefaultCompactEveryDeltas
	}
	if o.KeyBits <= 0 || o.KeyBits > 64 {
		o.KeyBits = 64
	}
	return o, nil
}

package persist

// The write-ahead batch log. Each shard owns a sequence of segment files;
// records are framed with a length + CRC32C header so recovery can walk a
// log and stop exactly at the first torn or corrupt byte. Sequence numbers
// are per shard, start at 1, and never reset — a segment file is named by
// the sequence of its first record, which is all recovery needs to order
// segments and detect gaps.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
)

// SegmentHeaderBytes is the size of a WAL segment file's header (magic,
// version, shard id). Exported for tools that damage logs on purpose —
// the crash-injection smoke must chop record bytes, not header bytes.
const SegmentHeaderBytes = 8 + 4 + 4

const (
	segMagic = "CPMAWAL1"
	// walVersion is the version stamped into new segments. Version 2 added
	// the rebalance barrier record kinds (recMoveIn/recMoveOut, which carry
	// a router generation after the sequence number); version 1 segments
	// are still read — they simply predate rebalancing and contain only
	// insert/remove records.
	walVersion    = 2
	walVersionMin = 1
	segHeaderSize = SegmentHeaderBytes

	recHeaderSize  = 8 // payload length u32, payload CRC32C u32
	maxRecordBytes = 1 << 27

	recInsert = 1
	recRemove = 2
	// Rebalance barrier records: the keys a boundary move carried into
	// (recMoveIn) or out of (recMoveOut) this shard, stamped with the
	// router generation the move produced. Replay applies them as an
	// insert/remove batch; the ordered barrier protocol (see Rebalanced)
	// plus recovery's span enforcement make any crash point land on
	// exactly the pre- or post-move state.
	recMoveIn  = 3
	recMoveOut = 4
)

// recKindValid reports whether kind is a known record kind.
func recKindValid(kind byte) bool {
	return kind >= recInsert && kind <= recMoveOut
}

// recRemoves reports whether a record kind replays as a removal.
func recRemoves(kind byte) bool { return kind == recRemove || kind == recMoveOut }

// recHasGen reports whether the record layout carries a router generation
// between the sequence number and the key count.
func recHasGen(kind byte) bool { return kind == recMoveIn || kind == recMoveOut }

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendRecord appends one framed WAL record to dst and returns the
// extended slice. Keys must be sorted ascending (duplicates allowed, as in
// a coalesced merge); they are delta encoded with stdlib uvarints, the
// first delta taken from zero. gen is written only for barrier kinds
// (recHasGen).
func appendRecord(dst []byte, seq uint64, kind byte, gen uint64, keys []uint64) []byte {
	start := len(dst)
	dst = append(dst, make([]byte, recHeaderSize)...)
	dst = append(dst, kind)
	dst = binary.AppendUvarint(dst, seq)
	if recHasGen(kind) {
		dst = binary.AppendUvarint(dst, gen)
	}
	dst = binary.AppendUvarint(dst, uint64(len(keys)))
	prev := uint64(0)
	for _, k := range keys {
		dst = binary.AppendUvarint(dst, k-prev)
		prev = k
	}
	payload := dst[start+recHeaderSize:]
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[start+4:], crc32.Checksum(payload, castagnoli))
	return dst
}

// walRecord is one decoded log record. start/end are its frame's byte
// offsets within its segment file (filled by scanSegment, zero from
// decodeRecord alone) — recovery truncates at start when a record must be
// rejected for reasons the CRC cannot see, like a sequence gap.
type walRecord struct {
	seq   uint64
	kind  byte
	gen   uint64 // router generation (barrier records only)
	keys  []uint64
	start int64
	end   int64
}

func (r walRecord) remove() bool { return recRemoves(r.kind) }

// decodeRecord parses a CRC-verified payload. Strict: trailing bytes,
// short varints, or a count that cannot fit are errors.
func decodeRecord(payload []byte) (walRecord, error) {
	var r walRecord
	if len(payload) < 1 {
		return r, fmt.Errorf("persist: empty record payload")
	}
	if !recKindValid(payload[0]) {
		return r, fmt.Errorf("persist: bad record kind %d", payload[0])
	}
	r.kind = payload[0]
	b := payload[1:]
	seq, n := binary.Uvarint(b)
	if n <= 0 {
		return r, fmt.Errorf("persist: bad record seq varint")
	}
	b = b[n:]
	if recHasGen(r.kind) {
		gen, n := binary.Uvarint(b)
		if n <= 0 {
			return r, fmt.Errorf("persist: bad record gen varint")
		}
		r.gen = gen
		b = b[n:]
	}
	count, n := binary.Uvarint(b)
	if n <= 0 {
		return r, fmt.Errorf("persist: bad record count varint")
	}
	b = b[n:]
	if count > uint64(len(b)) { // every delta takes >= 1 byte
		return r, fmt.Errorf("persist: record claims %d keys in %d bytes", count, len(b))
	}
	r.seq = seq
	r.keys = make([]uint64, 0, count)
	prev := uint64(0)
	for i := uint64(0); i < count; i++ {
		d, n := binary.Uvarint(b)
		if n <= 0 {
			return r, fmt.Errorf("persist: bad key delta varint at key %d", i)
		}
		b = b[n:]
		prev += d
		r.keys = append(r.keys, prev)
	}
	if len(b) != 0 {
		return r, fmt.Errorf("persist: %d trailing bytes after record", len(b))
	}
	return r, nil
}

// segment is one open WAL segment file being appended to.
type segment struct {
	f       *os.File
	w       *bufio.Writer
	path    string
	records int
	// size is the byte length of everything written into the segment —
	// header plus frames — including bytes still sitting in w's buffer.
	// synced is the prefix known to be both flushed and fsynced. The two
	// are the shippable seal (ship.go): bytes past synced may be absent
	// from the file entirely, or present as a torn frame (bufio flushes
	// mid-frame whenever its buffer fills), even though the records they
	// encode are already acknowledged to callers. Both are guarded by the
	// owning storeShard's mu.
	size   int64
	synced int64
}

// segmentName returns the file name for a segment whose first record will
// carry the given sequence number.
func segmentName(firstSeq uint64) string {
	return fmt.Sprintf("wal-%020d.log", firstSeq)
}

// createSegment creates (truncating any leftover of the same name — its
// contents, if any, were consumed by recovery) a segment and writes its
// header. The header reaches disk with the first sync.
func createSegment(path string, shardID int) (*segment, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	sg := &segment{f: f, w: bufio.NewWriterSize(f, 1<<16), path: path, size: segHeaderSize}
	var hdr [segHeaderSize]byte
	copy(hdr[:], segMagic)
	binary.LittleEndian.PutUint32(hdr[8:], walVersion)
	binary.LittleEndian.PutUint32(hdr[12:], uint32(shardID))
	if _, err := sg.w.Write(hdr[:]); err != nil {
		f.Close()
		return nil, err
	}
	return sg, nil
}

func (sg *segment) append(frame []byte) error {
	if _, err := sg.w.Write(frame); err != nil {
		return err
	}
	sg.records++
	sg.size += int64(len(frame))
	return nil
}

// sync flushes buffered records and fsyncs the file, advancing the
// shippable seal to cover everything written so far.
func (sg *segment) sync() error {
	if err := sg.w.Flush(); err != nil {
		return err
	}
	if err := sg.f.Sync(); err != nil {
		return err
	}
	sg.synced = sg.size
	return nil
}

func (sg *segment) close() error {
	if err := sg.w.Flush(); err != nil {
		sg.f.Close()
		return err
	}
	return sg.f.Close()
}

// scanSegment reads a segment file and returns its valid records plus the
// byte offset where validity ends. headerOK is false when the segment
// header itself is missing or wrong — the whole file is then unusable.
// Record-level damage (short frame, CRC mismatch, undecodable payload)
// just ends the valid prefix: records before it are good, validEnd points
// at the boundary.
func scanSegment(path string, shardID int) (recs []walRecord, validEnd int64, headerOK bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, false, err
	}
	recs, validEnd, headerOK = scanSegmentBytes(data, shardID)
	return recs, validEnd, headerOK, nil
}

// scanSegmentBytes is scanSegment over an in-memory prefix of a segment
// file. The shippable reader uses it to scan exactly the sealed prefix of
// the active segment: data is the file's first synced bytes, so a torn
// frame the writer's bufio buffer half-flushed past the seal can never be
// observed. A short or missing header (headerOK false) is not an error —
// it is the normal state of a freshly created segment before its first
// sync, and of a tail file a crash cut between creation and the header
// reaching disk.
func scanSegmentBytes(data []byte, shardID int) (recs []walRecord, validEnd int64, headerOK bool) {
	if len(data) < segHeaderSize || string(data[:8]) != segMagic ||
		binary.LittleEndian.Uint32(data[8:]) < walVersionMin ||
		binary.LittleEndian.Uint32(data[8:]) > walVersion ||
		binary.LittleEndian.Uint32(data[12:]) != uint32(shardID) {
		return nil, 0, false
	}
	off := int64(segHeaderSize)
	for {
		rest := data[off:]
		if len(rest) < recHeaderSize {
			return recs, off, true
		}
		plen := binary.LittleEndian.Uint32(rest)
		if plen == 0 || plen > maxRecordBytes || int(plen) > len(rest)-recHeaderSize {
			return recs, off, true
		}
		payload := rest[recHeaderSize : recHeaderSize+int(plen)]
		if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(rest[4:]) {
			return recs, off, true
		}
		rec, derr := decodeRecord(payload)
		if derr != nil {
			return recs, off, true
		}
		rec.start = off
		rec.end = off + recHeaderSize + int64(plen)
		recs = append(recs, rec)
		off = rec.end
	}
}

// listSeqFiles returns the sequence numbers parsed from files in dir that
// match the prefix/suffix pattern, sorted ascending.
func listSeqFiles(dir, prefix, suffix string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || len(name) != len(prefix)+20+len(suffix) ||
			name[:len(prefix)] != prefix || name[len(name)-len(suffix):] != suffix {
			continue
		}
		var seq uint64
		if _, err := fmt.Sscanf(name[len(prefix):len(name)-len(suffix)], "%d", &seq); err != nil {
			continue
		}
		seqs = append(seqs, seq)
	}
	// ReadDir sorts lexicographically and the zero-padded width is fixed,
	// so seqs is already ascending.
	return seqs, nil
}

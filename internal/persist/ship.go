package persist

// The read side of WAL shipping. A replication shipper follows a shard's
// log by (position, seal): the position is the last record sequence the
// follower has applied, the seal (ShippableUpTo) is the last sequence the
// primary knows is fsynced. ReadShippable returns the records strictly
// between them, never reading a byte the writer has not both flushed and
// fsynced — the active segment's file can trail the acknowledged log by a
// whole bufio buffer, or lead the durable prefix with a torn frame the
// buffer half-flushed, and neither state may ever be shipped.
//
// Bootstrap reuses the checkpoint chain: BootState loads the newest
// verifiable base + delta chain exactly as recovery would and returns the
// state together with the sequence it covers; the shipper then streams
// records from that sequence on. When retention has deleted the records a
// position needs (only base checkpoints advance the deletion floor), the
// reader reports ErrPositionGone and the follower re-bootstraps.

import (
	"errors"
	"io"
	"os"
	"path/filepath"

	"repro/internal/cpma"
)

// Position is one shard's replication position: the checkpoint-chain tip
// the state was seeded from (zero when none) and the last WAL record
// sequence known durable/applied. Comparable across primary and follower
// because sequence numbers are per shard, start at 1, and never reset.
type Position struct {
	CkptSeq uint64
	Seq     uint64
}

// ErrPositionGone reports that the records a shipper asked for have been
// deleted behind a newer base checkpoint — the retention floor passed the
// position. The follower must re-bootstrap from the checkpoint chain
// (BootState) and resume from its tip.
var ErrPositionGone = errors.New("persist: replication position below the WAL retention floor")

// Rec is one replicated WAL record: a sorted key batch applied as an
// insert or a removal. Rebalance barrier records ship as the insert or
// removal they replay as — a follower needs no barrier protocol, because
// per shard the log is already a total order.
type Rec struct {
	Seq    uint64
	Remove bool
	Keys   []uint64
}

// ShippableUpTo returns shard p's seal boundary: the sequence of the last
// record covered by an fsync. Records at or below it are immutable on
// disk and safe to ship; records above it are still owned by the writer
// (possibly buffered, possibly torn mid-frame in the file) and must not
// be read.
func (st *Store) ShippableUpTo(p int) uint64 {
	sh := st.shards[p]
	sh.mu.Lock()
	seal := sh.syncedSeq
	sh.mu.Unlock()
	return seal
}

// Positions returns every shard's current durable position: checkpoint
// chain tip and shippable seal.
func (st *Store) Positions() []Position {
	out := make([]Position, len(st.shards))
	for p, sh := range st.shards {
		sh.mu.Lock()
		seq := sh.syncedSeq
		sh.mu.Unlock()
		out[p] = Position{CkptSeq: sh.ckptSeq.Load(), Seq: seq}
	}
	return out
}

// ReadShippable returns shard p's sealed records with sequence in
// (afterSeq, ShippableUpTo(p)], in order, stopping early once maxKeys
// keys have been collected (0 = unbounded). A nil, nil return means the
// follower is caught up to the seal. ErrPositionGone means retention has
// deleted records the position still needs.
//
// Safe against the live appender without holding its lock during I/O:
// the seal and the active segment's synced byte length are captured
// together under the lock, every record at or below the captured seal
// lies within those bytes (sync covers the whole segment prefix), and
// any file or byte that appears afterwards can only carry records above
// the seal, which are filtered out.
func (st *Store) ReadShippable(p int, afterSeq uint64, maxKeys int) ([]Rec, error) {
	sh := st.shards[p]
	sh.mu.Lock()
	seal := sh.syncedSeq
	activePath := sh.seg.path
	activeSynced := sh.seg.synced
	sh.mu.Unlock()
	if afterSeq >= seal {
		return nil, nil
	}
	segSeqs, err := listSeqFiles(sh.dir, "wal-", ".log")
	if err != nil {
		return nil, err
	}
	// Record afterSeq+1 lives in the segment with the largest first-seq at
	// or below it (segments cover the sequence space contiguously). If no
	// such segment exists the record was retired behind a base checkpoint.
	start := -1
	for i, fs := range segSeqs {
		if fs <= afterSeq+1 {
			start = i
		}
	}
	if start < 0 {
		return nil, ErrPositionGone
	}
	var out []Rec
	keys := 0
	for i := start; i < len(segSeqs); i++ {
		fs := segSeqs[i]
		if fs > seal {
			break // sorted: every later file starts above the seal too
		}
		var recs []walRecord
		path := filepath.Join(sh.dir, segmentName(fs))
		if path == activePath {
			if activeSynced < segHeaderSize {
				continue // freshly created active segment, nothing sealed yet
			}
			data, rerr := readPrefix(path, activeSynced)
			if rerr != nil {
				if os.IsNotExist(rerr) {
					return nil, ErrPositionGone
				}
				return nil, rerr
			}
			recs, _, _ = scanSegmentBytes(data, sh.id)
		} else {
			var headerOK bool
			recs, _, headerOK, err = scanSegment(path, sh.id)
			if err != nil {
				if os.IsNotExist(err) {
					// Deleted between listing and reading: the retention
					// floor passed it, and with it our position.
					return nil, ErrPositionGone
				}
				return nil, err
			}
			if !headerOK {
				// A tail file a crash cut before its header reached disk:
				// the log ends before it (recovery deletes these on reopen;
				// a live reader just stops).
				break
			}
		}
		for _, r := range recs {
			if r.seq <= afterSeq {
				continue
			}
			if r.seq > seal {
				break
			}
			out = append(out, Rec{Seq: r.seq, Remove: r.remove(), Keys: r.keys})
			keys += len(r.keys)
		}
		if maxKeys > 0 && keys >= maxKeys {
			break
		}
	}
	return out, nil
}

// BootState loads shard p's newest verifiable checkpoint chain — the same
// walk recovery performs, read-only — and returns the state plus the
// record sequence it covers. A follower seeds its shard with the state
// and resumes shipping from the returned sequence; combined with the
// journaled span-enforcement drops (see Open), chain state ⊕ records
// after its tip is always exactly the primary's acknowledged history.
// Runs under ckptMu so the checkpointer cannot reshape the chain mid-walk.
func (st *Store) BootState(p int) (*cpma.CPMA, uint64, error) {
	st.ckptMu.Lock()
	defer st.ckptMu.Unlock()
	sh := st.shards[p]
	set, _, tip, _, _, _, err := loadChain(sh.dir, sh.id, st.opt.Set)
	if err != nil {
		return nil, 0, err
	}
	return set, tip, nil
}

// readPrefix reads exactly the first n bytes of path. The caller only
// asks for byte ranges an fsync has covered, so a short read is a real
// error, not a race.
func readPrefix(path string, n int64) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, n)
	if _, err := io.ReadFull(f, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

package persist

// Tests for the WAL shipping read side (ship.go) and the three bugs
// building it exposed: the live-segment read race against the writer's
// bufio buffer, torn-header tail segments, and fd leaks on partial Open.

import (
	"errors"
	"os"
	"path/filepath"
	"slices"
	"testing"

	"repro/internal/cpma"
	"repro/internal/shard"
)

// TestShippableSealRegression reproduces the live-segment short-read: a
// record acknowledged by Append can be entirely or partially absent from
// the segment file while the writer's bufio buffer holds it, so a naive
// file-reading shipper ships a short (or torn) view of acked records.
// ShippableUpTo/ReadShippable must expose nothing until the fsync seals
// the prefix, then expose exactly the acked records.
func TestShippableSealRegression(t *testing.T) {
	dir := t.TempDir()
	st, _, err := Open(Options{Dir: dir, Shards: 1, SyncEvery: -1, SyncBytes: -1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer st.Close()

	// Small batch: fits entirely in the bufio buffer, so the file holds
	// nothing past the header.
	if err := st.Append(0, false, []uint64{3, 5, 9}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	// Huge frame (well past the 64KB writer buffer): bufio flushes full
	// chunks mid-frame, leaving a torn frame in the file.
	big := make([]uint64, 40_000)
	for i := range big {
		big[i] = uint64(i+1) * 1_000_003 // wide deltas, several bytes per key
	}
	if err := st.Append(0, false, big); err != nil {
		t.Fatalf("Append big: %v", err)
	}

	// The bug, demonstrated: scanning the raw segment file sees fewer
	// records than were acknowledged (and a torn byte tail).
	sh := st.shards[0]
	sh.mu.Lock()
	activePath := sh.seg.path
	sh.mu.Unlock()
	raw, err := os.ReadFile(activePath)
	if err != nil {
		t.Fatalf("read active segment: %v", err)
	}
	rawRecs, _, headerOK := scanSegmentBytes(raw, 0)
	if !headerOK && len(raw) >= segHeaderSize {
		t.Fatalf("active segment header unreadable")
	}
	if len(rawRecs) >= 2 {
		t.Fatalf("naive read saw all %d acked records — the short-read this test must reproduce did not occur", len(rawRecs))
	}

	// The fix: nothing is shippable before the seal...
	if seal := st.ShippableUpTo(0); seal != 0 {
		t.Fatalf("seal %d before any fsync", seal)
	}
	recs, err := st.ReadShippable(0, 0, 0)
	if err != nil || recs != nil {
		t.Fatalf("ReadShippable before seal = %d recs, err %v; want none", len(recs), err)
	}
	// ...and exactly the acked records after it.
	if err := st.Synced(0); err != nil {
		t.Fatalf("Synced: %v", err)
	}
	if seal := st.ShippableUpTo(0); seal != 2 {
		t.Fatalf("seal %d after fsync, want 2", seal)
	}
	recs, err = st.ReadShippable(0, 0, 0)
	if err != nil {
		t.Fatalf("ReadShippable: %v", err)
	}
	if len(recs) != 2 || recs[0].Seq != 1 || recs[1].Seq != 2 {
		t.Fatalf("got %d recs, want the 2 acked", len(recs))
	}
	if !slices.Equal(recs[0].Keys, []uint64{3, 5, 9}) || !slices.Equal(recs[1].Keys, big) {
		t.Fatal("shipped keys differ from acked keys")
	}
}

// TestTornHeaderTailSegment covers the crash window between
// createSegment's O_CREATE and the header reaching disk: the tail file
// exists with zero bytes (or a short/garbage header). The scanner must
// tolerate it without error, recovery must delete it and lose nothing,
// and a follower bootstrapping from the reopened store must see the
// exact history.
func TestTornHeaderTailSegment(t *testing.T) {
	for _, tail := range []struct {
		name  string
		bytes []byte
	}{
		{"zero-byte", nil},
		{"short-garbage", []byte{0xde, 0xad, 0xbe, 0xef}},
		{"wrong-magic", make([]byte, SegmentHeaderBytes)},
	} {
		t.Run(tail.name, func(t *testing.T) {
			dir := t.TempDir()
			s, st := openSet(t, dir, 1, shard.Options{SyncEvery: 1, CheckpointEveryBatches: -1})
			s.InsertBatch([]uint64{10, 20, 30, 40}, true)
			s.RemoveBatch([]uint64{20}, true)
			want := s.Keys()
			last := st.Positions()[0].Seq
			s.Close()

			// The torn tail: a segment file created past the log's end but
			// headerless (reopen itself recreates the slot at last+1, so the
			// torn file sits one beyond it — the same headerOK=false branch
			// deletes both shapes).
			tp := filepath.Join(dir, shardDirName(0), segmentName(last+2))
			if err := os.WriteFile(tp, tail.bytes, 0o644); err != nil {
				t.Fatalf("write torn tail: %v", err)
			}
			// Scanner tolerance: headerOK=false is a verdict, not an error.
			if _, _, headerOK, err := scanSegment(tp, 0); err != nil || headerOK {
				t.Fatalf("scanSegment(torn tail): headerOK=%v err=%v, want false, nil", headerOK, err)
			}

			s2, st2 := openSet(t, dir, 1, shard.Options{SyncEvery: 1, CheckpointEveryBatches: -1})
			defer s2.Close()
			if !slices.Equal(want, s2.Keys()) {
				t.Fatalf("recovered keys differ after torn tail: %d vs %d", len(want), s2.Len())
			}
			if _, err := os.Stat(tp); !os.IsNotExist(err) {
				t.Fatalf("torn tail not deleted by recovery (stat err %v)", err)
			}

			// Follower bootstrap off the reopened store: chain state plus
			// shipped records must reproduce the exact history.
			set, tip, err := st2.BootState(0)
			if err != nil {
				t.Fatalf("BootState: %v", err)
			}
			recs, err := st2.ReadShippable(0, tip, 0)
			if err != nil {
				t.Fatalf("ReadShippable: %v", err)
			}
			for _, r := range recs {
				if r.Remove {
					set.RemoveBatch(r.Keys, true)
				} else {
					set.InsertBatch(r.Keys, true)
				}
			}
			if !slices.Equal(want, set.Keys()) {
				t.Fatalf("bootstrapped state differs: %d keys vs %d", set.Len(), len(want))
			}
		})
	}
}

// TestOpenFdLeakOnPartialOpen: when a later shard fails validation during
// Open, the earlier shards' already-opened WAL segments must be closed on
// the error path. Injected failure: shard 1's directory is replaced by a
// regular file, so its MkdirAll fails after shard 0 recovered and opened
// its segment.
func TestOpenFdLeakOnPartialOpen(t *testing.T) {
	fdDir := "/proc/self/fd"
	if _, err := os.ReadDir(fdDir); err != nil {
		t.Skipf("no %s on this platform: %v", fdDir, err)
	}
	countFds := func() int {
		ents, err := os.ReadDir(fdDir)
		if err != nil {
			t.Fatalf("ReadDir(%s): %v", fdDir, err)
		}
		return len(ents)
	}

	dir := t.TempDir()
	s, _ := openSet(t, dir, 2, shard.Options{SyncEvery: 1})
	s.InsertBatch([]uint64{1, 2, 3}, true)
	s.Close()
	// Break shard 1: a file where its directory must be.
	if err := os.RemoveAll(filepath.Join(dir, shardDirName(1))); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, shardDirName(1)), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	before := countFds()
	for i := 0; i < 3; i++ {
		if _, _, err := Open(Options{Dir: dir, Shards: 2, SyncEvery: 1}); err == nil {
			t.Fatal("Open succeeded with shard 1's directory replaced by a file")
		}
	}
	if after := countFds(); after > before {
		t.Fatalf("fd leak across failed Opens: %d before, %d after", before, after)
	}
}

// TestReadShippableRetentionAndBootstrap: once base checkpoints advance
// the retention floor past a position, ReadShippable reports
// ErrPositionGone and BootState plus the remaining records reproduce the
// primary's exact per-shard state.
func TestReadShippableRetentionAndBootstrap(t *testing.T) {
	dir := t.TempDir()
	s, st := openSet(t, dir, 2, shard.Options{
		SyncEvery:              1,
		CheckpointEveryBatches: -1,
		CompactEveryDeltas:     -1, // every checkpoint a base: floor advances
	})
	defer s.Close()

	for round := 0; round < 3; round++ {
		keys := make([]uint64, 400)
		for i := range keys {
			keys[i] = uint64(round*400+i)*2_654_435_761 + 1
		}
		s.InsertBatch(keys, false)
		s.RemoveBatch(keys[:50], false)
		if err := s.Checkpoint(); err != nil {
			t.Fatalf("Checkpoint: %v", err)
		}
	}

	gone := false
	for p := 0; p < 2; p++ {
		if _, err := st.ReadShippable(p, 0, 0); errors.Is(err, ErrPositionGone) {
			gone = true
		}
	}
	if !gone {
		t.Fatal("no shard reported ErrPositionGone after repeated base checkpoints")
	}

	// A live tail past the last checkpoint, so bootstrap must combine
	// chain state with shipped records.
	tail := make([]uint64, 200)
	for i := range tail {
		tail[i] = uint64(5000+i)*2_654_435_761 + 1
	}
	s.InsertBatch(tail, false)
	s.Flush()
	for p := 0; p < 2; p++ {
		set, tip, err := st.BootState(p)
		if err != nil {
			t.Fatalf("BootState(%d): %v", p, err)
		}
		recs, err := st.ReadShippable(p, tip, 0)
		if err != nil {
			t.Fatalf("ReadShippable(%d, %d): %v", p, tip, err)
		}
		next := tip
		for _, r := range recs {
			if r.Seq != next+1 {
				t.Fatalf("shard %d: record gap after %d: got %d", p, next, r.Seq)
			}
			next = r.Seq
			if r.Remove {
				set.RemoveBatch(r.Keys, true)
			} else {
				set.InsertBatch(r.Keys, true)
			}
		}
		if !slices.Equal(s.ShardKeys(p), set.Keys()) {
			t.Fatalf("shard %d: bootstrapped state differs from primary", p)
		}
	}
}

// TestReadShippableChunking: maxKeys bounds one read, and chained reads
// walk the full sealed sequence without gaps or duplicates.
func TestReadShippableChunking(t *testing.T) {
	dir := t.TempDir()
	st, _, err := Open(Options{Dir: dir, Shards: 1, SyncEvery: 1, Set: &cpma.Options{}})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer st.Close()
	total := 0
	for i := 0; i < 20; i++ {
		keys := []uint64{uint64(i)*10 + 1, uint64(i)*10 + 2, uint64(i)*10 + 3}
		if err := st.Append(0, false, keys); err != nil {
			t.Fatal(err)
		}
		total += len(keys)
	}
	var pos uint64
	seen := 0
	for {
		recs, err := st.ReadShippable(0, pos, 5)
		if err != nil {
			t.Fatalf("ReadShippable: %v", err)
		}
		if len(recs) == 0 {
			break
		}
		for _, r := range recs {
			if r.Seq != pos+1 {
				t.Fatalf("gap: pos %d, next %d", pos, r.Seq)
			}
			pos = r.Seq
			seen += len(r.Keys)
		}
	}
	if pos != 20 || seen != total {
		t.Fatalf("walked to seq %d with %d keys, want 20 and %d", pos, seen, total)
	}
}

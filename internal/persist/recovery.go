package persist

// Crash recovery. Each shard recovers independently: load the newest
// base checkpoint that verifies end to end (CRC + cpma.Validate), fall
// back to the retained previous one if it does not, walk the base's
// delta chain as far as it verifies and links, then replay the WAL tail
// in sequence order on top. The first delta that fails — bad CRC, broken
// chain linkage, structural or semantic rejection — simply ends the
// chain: the state at the previous link is a valid recovery point, and
// the WAL retention floor (which only base checkpoints advance) still
// holds every record above the base, so nothing acknowledged is lost.
// The first WAL record that fails — torn frame, CRC mismatch, sequence
// gap — ends the log: the segment is truncated at that boundary and any
// later segments (unreachable past the gap) are deleted, so the log on
// disk again equals exactly the state that was recovered. Replay is
// idempotent by construction (InsertBatch/RemoveBatch are set-semantic
// and replay preserves the original order), which is why the checkpoint
// chain only needs to cover a *prefix* of the log: re-applying covered
// records converges to the same state.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/cpma"
)

// recoverShard rebuilds one shard's CPMA from its directory, repairs the
// log (torn-tail truncation, orphan deletion), and leaves sh ready for
// appending: sh.seq is the last valid record, sh.ckptSeq the recovered
// chain's tip, sh.baseSeq its base, and a fresh active segment is open.
func (st *Store) recoverShard(sh *storeShard) (*cpma.CPMA, error) {
	// Leftover temp files from interrupted checkpoint or delta writes are
	// garbage (CreateTemp names them uniquely, so they accumulate if not
	// swept).
	if tmps, err := filepath.Glob(filepath.Join(sh.dir, "*.tmp")); err == nil {
		for _, t := range tmps {
			os.Remove(t)
		}
	}

	set, base, tip, applied, ckptSeqs, deltaSeqs, err := loadChain(sh.dir, sh.id, st.opt.Set)
	if err != nil {
		return nil, err
	}

	// Anything newer than the recovered chain failed verification (a base
	// newer than the winner, a delta past the tip). Delete it now:
	// appends are about to resume numbering from the recovered position,
	// which can sit below the rejected file's coverage — if it later
	// became readable again (a transient I/O error), a future recovery
	// would prefer it and resurrect the very state this recovery rejected
	// while skipping the reused sequence numbers.
	for _, cs := range ckptSeqs {
		if cs > base {
			if err := os.Remove(filepath.Join(sh.dir, checkpointName(cs))); err != nil && !os.IsNotExist(err) {
				return nil, err
			}
		}
	}
	for _, ds := range deltaSeqs {
		if ds > tip {
			if err := os.Remove(filepath.Join(sh.dir, deltaName(ds))); err != nil && !os.IsNotExist(err) {
				return nil, err
			}
		}
	}
	sh.ckptSeq.Store(tip)
	sh.baseSeq = base
	sh.prevBaseSeq = base
	sh.deltasSinceBase = applied

	segSeqs, err := listSeqFiles(sh.dir, "wal-", ".log")
	if err != nil {
		return nil, err
	}
	// chain walks the record sequence from the oldest segment on disk,
	// which legitimately starts before the recovered chain tip (segments
	// are only deleted whole, and the deletion floor trails a full base
	// behind the tip); records with seq <= tip are chain-validated but
	// not re-applied... they could be, identically — replay converges
	// from any starting point at or before the chain's coverage —
	// skipping them just saves the work.
	chain := tip
	if len(segSeqs) > 0 {
		if segSeqs[0] > tip+1 {
			// The log starts after the recovered chain's coverage ends:
			// records in between are gone. That cannot happen under this
			// store's retention rule, so refuse to silently lose data.
			return nil, fmt.Errorf("WAL gap: checkpoint chain covers seq %d but oldest segment starts at %d", tip, segSeqs[0])
		}
		chain = segSeqs[0] - 1
	}
	logEnded := false // set once damage ends the log; later segments are orphans
	for _, fs := range segSeqs {
		path := filepath.Join(sh.dir, segmentName(fs))
		if logEnded {
			info, serr := os.Stat(path)
			if serr == nil {
				st.tornBytes += uint64(info.Size())
			}
			if err := os.Remove(path); err != nil {
				return nil, err
			}
			st.truncSegs.Add(1)
			continue
		}
		recs, validEnd, headerOK, err := scanSegment(path, sh.id)
		if err != nil {
			return nil, err
		}
		info, err := os.Stat(path)
		if err != nil {
			return nil, err
		}
		size := info.Size()
		if !headerOK || fs != chain+1 {
			// A segment whose header never made it to disk, or one that
			// does not continue the sequence chain: the log ends before it.
			st.tornBytes += uint64(size)
			if err := os.Remove(path); err != nil {
				return nil, err
			}
			st.truncSegs.Add(1)
			logEnded = true
			continue
		}
		end := validEnd
		for _, rec := range recs {
			if rec.seq != chain+1 {
				end = rec.start // sequence gap: reject from here on
				break
			}
			chain = rec.seq
			if rec.seq > tip && len(rec.keys) > 0 {
				// Rebalance barriers replay like the batches they encode: a
				// recMoveIn inserts the keys the move carried in, a
				// recMoveOut removes the keys it carried out. Cross-shard
				// agreement (the other half of the pair, possibly cut off by
				// the crash) is restored by Open's span enforcement.
				if rec.remove() {
					set.RemoveBatch(rec.keys, true)
				} else {
					set.InsertBatch(rec.keys, true)
				}
				st.replayedBatches++
				st.replayedKeys += uint64(len(rec.keys))
			}
		}
		if end < size {
			st.tornBytes += uint64(size - end)
			if err := truncateFile(path, end); err != nil {
				return nil, err
			}
			logEnded = true
		}
	}

	last := chain
	if last < tip {
		// The checkpoint chain is ahead of the surviving log (a crash can
		// tear unsynced records the chain's in-memory state already
		// covered). The log below the tip is fully subsumed — drop it so
		// the on-disk record chain restarts cleanly at tip+1 and future
		// recoveries see no gap.
		for _, fs := range segSeqs {
			path := filepath.Join(sh.dir, segmentName(fs))
			if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
				return nil, err
			}
		}
		last = tip
	}

	// Appends resume in a fresh segment right after the last valid record.
	// (The name can only collide with a fully consumed — typically empty —
	// segment, which createSegment truncates.)
	sg, err := createSegment(filepath.Join(sh.dir, segmentName(last+1)), sh.id)
	if err != nil {
		return nil, err
	}
	sh.seg = sg
	sh.seq.Store(last)
	// Everything recovery kept was read back from disk, so the shippable
	// seal starts at the full recovered log.
	sh.syncedSeq = last
	if err := syncDir(sh.dir); err != nil {
		sg.close()
		return nil, err
	}
	return set, nil
}

// loadChain loads the newest verifiable checkpoint chain in a shard
// directory without modifying anything on disk: the winning base (or an
// empty set when none verifies), the delta links that verify and connect,
// and the directory listings it worked from. recoverShard layers log
// repair and anti-resurrection deletion on top; the follower bootstrap
// (Store.BootState) uses it read-only under ckptMu.
//
// The chain walk: ascending delta sequences past the base, each linking
// to the chain (its baseSeq names this base, its prevSeq the current tip)
// and verifying end to end. Each delta is applied onto a COW clone of the
// current link, so a delta that fails late — the strict semantic
// validator runs after the patch — costs nothing: the clone is discarded
// and the previous link, untouched, is the recovery point. Deltas at or
// below the base belong to the retained previous chain (fallback
// material, skipped here, reaped by the next base checkpoint).
func loadChain(dir string, shardID int, opts *cpma.Options) (set *cpma.CPMA, base, tip uint64, applied int, ckptSeqs, deltaSeqs []uint64, err error) {
	// Newest verifiable base checkpoint wins; older ones are only
	// fallbacks.
	ckptSeqs, err = listSeqFiles(dir, "ckpt-", ".ckpt")
	if err != nil {
		return nil, 0, 0, 0, nil, nil, err
	}
	for i := len(ckptSeqs) - 1; i >= 0; i-- {
		s, lerr := loadCheckpoint(filepath.Join(dir, checkpointName(ckptSeqs[i])), shardID, ckptSeqs[i], opts)
		if lerr == nil {
			set, base = s, ckptSeqs[i]
			break
		}
	}
	if set == nil {
		set = cpma.New(opts)
	}
	deltaSeqs, err = listSeqFiles(dir, "delta-", ".dckpt")
	if err != nil {
		return nil, 0, 0, 0, nil, nil, err
	}
	tip = base
	for _, ds := range deltaSeqs {
		if ds <= base || base == 0 {
			continue
		}
		prevSeq, baseRef, payload, lerr := loadDelta(filepath.Join(dir, deltaName(ds)), shardID, ds)
		if lerr != nil || baseRef != base || prevSeq != tip {
			break
		}
		next := set.Clone()
		if aerr := next.ApplyDeltaFrom(bytes.NewReader(payload)); aerr != nil {
			break
		}
		if verr := next.Validate(); verr != nil {
			break
		}
		set, tip = next, ds
		applied++
	}
	return set, base, tip, applied, ckptSeqs, deltaSeqs, nil
}

// dropOutOfSpan removes from a recovered shard every key outside its span
// under the authoritative boundary table, returning the dropped keys in
// ascending order. Nonempty only after a crash inside a rebalance
// barrier, where the moved keys can transiently exist in both shards of
// the pair; the copy in the shard that does not own them under the
// recovered table is the stale one (the barrier protocol's ordering
// guarantees the owning shard's copy is durable). Open journals the
// returned keys as a remove record so the on-disk history stays equal to
// the recovered state.
func dropOutOfSpan(set *cpma.CPMA, p, shards int, bounds []uint64) []uint64 {
	var lo, hi uint64
	if p > 0 {
		lo = bounds[p-1]
	}
	if p < shards-1 {
		hi = bounds[p]
	}
	var stale []uint64
	if lo > 1 {
		set.MapRange(1, lo, func(k uint64) bool {
			stale = append(stale, k)
			return true
		})
	}
	if p < shards-1 {
		if hi == 0 {
			hi = 1 // keys are nonzero; an all-empty tail span owns nothing
		}
		set.MapRange(hi, ^uint64(0), func(k uint64) bool {
			stale = append(stale, k)
			return true
		})
		if set.Has(^uint64(0)) {
			stale = append(stale, ^uint64(0))
		}
	}
	if len(stale) == 0 {
		return nil
	}
	set.RemoveBatch(stale, true)
	return stale
}

// truncateFile cuts path to size bytes and forces the new length down.
func truncateFile(path string, size int64) error {
	if err := os.Truncate(path, size); err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return err
	}
	err = f.Sync()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

package persist

// Crash-consistency differential harness (the acceptance test for the
// durability design): run a scripted batch history against a durable set
// with per-record fsync, then for every byte offset N of a shard's WAL
// simulate a crash that stopped writing at byte N — copy the store, cut
// the log at N, recover — and require the recovered shard to equal
// exactly the sorted-slice model's state after the batches whose records
// fit entirely within N bytes. That is the contract in one sentence:
// synced batches are never lost, torn tails are cleanly truncated, and
// recovery is always a per-shard prefix of the acknowledged history.

import (
	"math/bits"
	"os"
	"path/filepath"
	"slices"
	"testing"

	"repro/internal/cpma"
	"repro/internal/shard"
	"repro/internal/workload"
)

// --- test-local routing replica (kept independent of the shard package's
// internals so a routing regression breaks this test instead of silently
// re-deriving the model from the bug) ---

func mix64Test(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func shardOfTest(part shard.Partition, shards, keyBits int, key uint64) int {
	if part == shard.RangePartition {
		total := uint64(1) << uint(keyBits)
		w := total / uint64(shards)
		if total%uint64(shards) != 0 {
			w++
		}
		p := int(key / w)
		if p >= shards {
			p = shards - 1
		}
		return p
	}
	hi, _ := bits.Mul64(mix64Test(key), uint64(shards))
	return int(hi)
}

// scriptOp is one global batch of the scripted history.
type scriptOp struct {
	remove bool
	keys   []uint64 // sorted, duplicate-free
}

// buildScript makes a deterministic mixed insert/remove history over
// [1, 2^keyBits).
func buildScript(batches, batchSize, keyBits int) []scriptOp {
	r := workload.NewRNG(99)
	var script []scriptOp
	for i := 0; i < batches; i++ {
		if i%3 == 2 {
			// Retract half of the previous batch.
			prev := script[i-1].keys
			script = append(script, scriptOp{remove: true, keys: slices.Clone(prev[:len(prev)/2])})
			continue
		}
		keys := workload.Uniform(r, batchSize, keyBits)
		slices.Sort(keys)
		script = append(script, scriptOp{keys: slices.Compact(keys)})
	}
	return script
}

// subBatches projects the script onto one shard: the per-shard sequence of
// non-empty sorted sub-batches, exactly the records the shard's WAL must
// hold (blocking batch calls are ticketed, so each sub-batch applies — and
// logs — individually, in enqueue order).
func subBatches(script []scriptOp, part shard.Partition, shards, keyBits, p int) []scriptOp {
	var subs []scriptOp
	for _, op := range script {
		var sub []uint64
		for _, k := range op.keys {
			if shardOfTest(part, shards, keyBits, k) == p {
				sub = append(sub, k)
			}
		}
		if len(sub) > 0 {
			subs = append(subs, scriptOp{remove: op.remove, keys: sub})
		}
	}
	return subs
}

// prefixStates returns the sorted-slice model states after each prefix of
// the sub-batch sequence: states[m] is the shard's exact content once its
// first m records have applied.
func prefixStates(subs []scriptOp) [][]uint64 {
	var m model
	states := make([][]uint64, 0, len(subs)+1)
	states = append(states, nil)
	for _, op := range subs {
		if op.remove {
			m.RemoveBatch(op.keys)
		} else {
			m.InsertBatch(op.keys)
		}
		states = append(states, slices.Clone(m.keys))
	}
	return states
}

// model is the sorted-slice reference (same shape as the cpma differential
// harness's).
type model struct{ keys []uint64 }

func (m *model) InsertBatch(keys []uint64) {
	m.keys = append(m.keys, keys...)
	slices.Sort(m.keys)
	m.keys = slices.Compact(m.keys)
}

func (m *model) RemoveBatch(keys []uint64) {
	out := m.keys[:0]
	for _, k := range m.keys {
		if _, found := slices.BinarySearch(keys, k); !found {
			out = append(out, k)
		}
	}
	m.keys = out
}

func cpmaKeys(c *cpma.CPMA) []uint64 {
	var out []uint64
	c.Map(func(k uint64) bool {
		out = append(out, k)
		return true
	})
	return out
}

func TestKillPointDifferential(t *testing.T) {
	const (
		shards    = 3
		keyBits   = 16
		batches   = 9
		batchSize = 40
	)
	for _, cfg := range []struct {
		name string
		part shard.Partition
	}{
		{"hash", shard.HashPartition},
		{"range", shard.RangePartition},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			script := buildScript(batches, batchSize, keyBits)
			popt := Options{
				Shards:                 shards,
				SyncEvery:              1, // every acknowledged record is durable
				CheckpointEveryBatches: -1,
				Partition:              cfg.part,
				KeyBits:                keyBits,
			}

			// Baseline run: scripted history through blocking (ticketed)
			// batch calls, so the WAL holds one record per sub-batch in
			// enqueue order.
			base := t.TempDir()
			s, _ := openSet(t, base, shards, shard.Options{
				Partition: cfg.part, KeyBits: keyBits,
				SyncEvery: popt.SyncEvery, CheckpointEveryBatches: popt.CheckpointEveryBatches,
			})
			for _, op := range script {
				if op.remove {
					s.RemoveBatch(op.keys, true)
				} else {
					s.InsertBatch(op.keys, true)
				}
			}
			s.Close()

			// Per-shard model and baseline log cross-check: the records on
			// disk must already match the projected sub-batches.
			type shardPlan struct {
				segPath string
				recs    []walRecord
				states  [][]uint64
				size    int64
			}
			plans := make([]shardPlan, shards)
			for p := 0; p < shards; p++ {
				subs := subBatches(script, cfg.part, shards, keyBits, p)
				pl := shardPlan{
					segPath: filepath.Join(base, shardDirName(p), segmentName(1)),
					states:  prefixStates(subs),
				}
				recs, _, ok, err := scanSegment(pl.segPath, p)
				if err != nil || !ok {
					t.Fatalf("shard %d: baseline scan failed: ok=%v err=%v", p, ok, err)
				}
				if len(recs) != len(subs) {
					t.Fatalf("shard %d: %d WAL records, model projects %d sub-batches", p, len(recs), len(subs))
				}
				for i, rec := range recs {
					if rec.remove() != subs[i].remove || !slices.Equal(rec.keys, subs[i].keys) {
						t.Fatalf("shard %d record %d does not match projected sub-batch", p, i)
					}
				}
				info, err := os.Stat(pl.segPath)
				if err != nil {
					t.Fatal(err)
				}
				pl.recs, pl.size = recs, info.Size()
				plans[p] = pl
			}

			// The sweep: for every kill shard and (strided off the primary
			// shard to bound runtime) every byte offset N, crash-copy,
			// truncate, recover, compare every shard against its model.
			popt2 := popt
			for p := 0; p < shards; p++ {
				stride := int64(1)
				if p > 0 {
					stride = 7
				}
				if testing.Short() {
					stride *= 13
				}
				for n := int64(0); n <= plans[p].size; n += stride {
					killDir := filepath.Join(t.TempDir(), "kill")
					if err := os.CopyFS(killDir, os.DirFS(base)); err != nil {
						t.Fatal(err)
					}
					if err := os.Truncate(filepath.Join(killDir, shardDirName(p), segmentName(1)), n); err != nil {
						t.Fatal(err)
					}
					popt2.Dir = killDir
					st, sets, err := Open(popt2)
					if err != nil {
						t.Fatalf("shard %d kill@%d: recovery failed: %v", p, n, err)
					}
					for q := 0; q < shards; q++ {
						wantM := len(plans[q].states) - 1 // undamaged: full history
						if q == p {
							wantM = 0
							for _, rec := range plans[p].recs {
								if rec.end <= n {
									wantM++
								}
							}
						}
						if err := sets[q].Validate(); err != nil {
							t.Fatalf("shard %d kill@%d: recovered shard %d invalid: %v", p, n, q, err)
						}
						got := cpmaKeys(sets[q])
						want := plans[q].states[wantM]
						if !slices.Equal(got, want) {
							t.Fatalf("shard %d kill@%d: shard %d recovered %d keys, model prefix %d/%d has %d",
								p, n, q, len(got), wantM, len(plans[q].states)-1, len(want))
						}
					}
					st.Close()
				}
			}
		})
	}
}

// TestCheckpointFallback drives checkpoints into the history and then
// damages the newest checkpoint: recovery must fall back (to the retained
// previous checkpoint or, before any truncation, to the full log) without
// losing a single acknowledged batch.
func TestCheckpointFallback(t *testing.T) {
	const shards = 2
	dir := t.TempDir()
	r := workload.NewRNG(5)
	opt := shard.Options{SyncEvery: 1, CheckpointEveryBatches: -1}
	s, _ := openSet(t, dir, shards, opt)
	var all []uint64
	ingest := func(n int) {
		keys := workload.Uniform(r, n, 20)
		s.InsertBatch(keys, false)
		all = append(all, keys...)
	}
	ingest(4_000)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	ingest(4_000)
	if err := s.Checkpoint(); err != nil { // second: truncates WAL <= first
		t.Fatal(err)
	}
	ingest(2_000)
	s.Flush()
	want := s.Keys()
	s.Close()

	// Clean reopen first.
	s2, _ := openSet(t, dir, shards, opt)
	if !slices.Equal(want, s2.Keys()) {
		t.Fatal("clean reopen lost data")
	}
	s2.Close()

	// Flip a byte inside shard 0's newest checkpoint payload.
	sdir := filepath.Join(dir, shardDirName(0))
	ckpts, err := listSeqFiles(sdir, "ckpt-", ".ckpt")
	if err != nil || len(ckpts) != 2 {
		t.Fatalf("want 2 retained checkpoints, have %v (err %v)", ckpts, err)
	}
	path := filepath.Join(sdir, checkpointName(ckpts[1]))
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)/2] ^= 0x20
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	s3, _ := openSet(t, dir, shards, opt)
	defer s3.Close()
	if err := s3.Validate(); err != nil {
		t.Fatalf("fallback recovery invalid: %v", err)
	}
	if !slices.Equal(want, s3.Keys()) {
		t.Fatal("fallback recovery after checkpoint corruption lost data")
	}
	if st := s3.PersistStats(); st.ReplayedBatches == 0 {
		t.Fatal("fallback recovery should have replayed the WAL tail")
	}
	// The rejected newer checkpoint must be gone: recovery resumes
	// sequence numbering from the fallback position, and a lingering
	// stale checkpoint could win a future recovery and resurrect the
	// state this one rejected.
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("rejected checkpoint left on disk")
	}
}

package persist

// Crash harness for delta checkpoints: PR 4's kill-point sweep walked
// every byte offset of the WAL; this one walks every (strided) byte
// offset of every checkpoint *file* — old base, old-chain deltas, the
// compacted base, live-chain deltas — under both truncation (a crash
// mid-rename-window) and corruption (bit rot), and requires recovery to
// land on the exact acknowledged key set every time. The retention rule
// makes that possible: deltas never advance the WAL floor, so any single
// damaged file leaves either the newest base chain or the retained
// previous base plus the full log tail above it.

import (
	"os"
	"path/filepath"
	"slices"
	"sync"
	"testing"

	"repro/internal/shard"
	"repro/internal/workload"
)

// buildDeltaStore ingests a scripted history with explicit checkpoints
// under CompactEveryDeltas=2, producing (per shard) a first base, its
// delta chain, a compacted base, and a live delta chain — every file
// kind the recovery path must survive losing. Returns the final
// acknowledged key set (everything is fsynced: SyncEvery=1 plus a Flush
// before every checkpoint).
func buildDeltaStore(t *testing.T, dir string, part shard.Partition) []uint64 {
	t.Helper()
	const shards = 2
	s, st := openSet(t, dir, shards, shard.Options{
		Partition: part, KeyBits: 20,
		SyncEvery: 1, CheckpointEveryBatches: -1, CompactEveryDeltas: 2,
	})
	r := workload.NewRNG(11)
	s.InsertBatch(workload.Uniform(r, 30_000, 20), false)
	s.Flush()
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	pool := s.Keys()
	for round := 0; round < 5; round++ {
		s.InsertBatch(workload.Uniform(r, 500, 20), false)
		s.RemoveBatch(pool[round*500:round*500+500], true)
		s.Flush()
		if err := s.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	pst := st.Stats()
	if pst.Checkpoints < 2 || pst.DeltaCheckpoints < 2 {
		t.Fatalf("history did not exercise both checkpoint kinds: %d bases, %d deltas",
			pst.Checkpoints, pst.DeltaCheckpoints)
	}
	want := s.Keys()
	s.Close()
	return want
}

func deltaStoreOptions(dir string, part shard.Partition) Options {
	return Options{
		Dir: dir, Shards: 2, Partition: part, KeyBits: 20,
		SyncEvery: 1, CheckpointEveryBatches: -1, CompactEveryDeltas: 2,
	}
}

// recoverAndCheck opens the (possibly damaged) store at dir and requires
// every shard to validate and the union of their keys to equal want.
func recoverAndCheck(t *testing.T, dir string, part shard.Partition, want []uint64, what string) {
	t.Helper()
	st, sets, err := Open(deltaStoreOptions(dir, part))
	if err != nil {
		t.Fatalf("%s: recovery failed: %v", what, err)
	}
	var got []uint64
	for q, set := range sets {
		if err := set.Validate(); err != nil {
			t.Fatalf("%s: recovered shard %d invalid: %v", what, q, err)
		}
		got = append(got, cpmaKeys(set)...)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("%s: close after recovery: %v", what, err)
	}
	slices.Sort(got)
	if !slices.Equal(got, want) {
		t.Fatalf("%s: recovered %d keys, acknowledged history has %d", what, len(got), len(want))
	}
}

func TestDeltaCheckpointKillPoints(t *testing.T) {
	for _, cfg := range []struct {
		name string
		part shard.Partition
	}{
		{"hash", shard.HashPartition},
		{"range", shard.RangePartition},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			base := t.TempDir()
			want := buildDeltaStore(t, base, cfg.part)

			// Every checkpoint file shard 0 holds, by kind.
			sdir := filepath.Join(base, shardDirName(0))
			var files []string
			for _, pre := range []struct{ prefix, suffix string }{
				{"ckpt-", ".ckpt"}, {"delta-", ".dckpt"},
			} {
				seqs, err := listSeqFiles(sdir, pre.prefix, pre.suffix)
				if err != nil {
					t.Fatal(err)
				}
				for _, sq := range seqs {
					if pre.prefix == "ckpt-" {
						files = append(files, checkpointName(sq))
					} else {
						files = append(files, deltaName(sq))
					}
				}
			}
			// The retention invariant this harness leans on: two bases and
			// both delta chains are on disk.
			nb, nd := 0, 0
			for _, f := range files {
				if filepath.Ext(f) == ".ckpt" {
					nb++
				} else {
					nd++
				}
			}
			if nb < 2 || nd < 3 {
				t.Fatalf("retention should hold 2 bases and both chains; have %v", files)
			}

			for _, name := range files {
				info, err := os.Stat(filepath.Join(sdir, name))
				if err != nil {
					t.Fatal(err)
				}
				size := info.Size()
				stride := size/37 + 1
				if testing.Short() {
					stride = size/7 + 1
				}
				for n := int64(0); n <= size; n += stride {
					// Truncation: the file stops at byte n.
					killDir := filepath.Join(t.TempDir(), "kill")
					if err := os.CopyFS(killDir, os.DirFS(base)); err != nil {
						t.Fatal(err)
					}
					target := filepath.Join(killDir, shardDirName(0), name)
					if err := os.Truncate(target, n); err != nil {
						t.Fatal(err)
					}
					recoverAndCheck(t, killDir, cfg.part, want, name+" truncated")

					// Corruption: byte n flipped (skip n == size: no byte there).
					if n == size {
						continue
					}
					killDir2 := filepath.Join(t.TempDir(), "kill2")
					if err := os.CopyFS(killDir2, os.DirFS(base)); err != nil {
						t.Fatal(err)
					}
					target = filepath.Join(killDir2, shardDirName(0), name)
					blob, err := os.ReadFile(target)
					if err != nil {
						t.Fatal(err)
					}
					blob[n] ^= 0x5a
					if err := os.WriteFile(target, blob, 0o644); err != nil {
						t.Fatal(err)
					}
					recoverAndCheck(t, killDir2, cfg.part, want, name+" corrupted")
				}
			}

			// A crash inside a checkpoint write leaves a unique temp file;
			// recovery must sweep it (and ignore its contents entirely).
			killDir := filepath.Join(t.TempDir(), "kill")
			if err := os.CopyFS(killDir, os.DirFS(base)); err != nil {
				t.Fatal(err)
			}
			tmp := filepath.Join(killDir, shardDirName(0), "delta-1234567890.tmp")
			if err := os.WriteFile(tmp, []byte("torn partial delta write"), 0o644); err != nil {
				t.Fatal(err)
			}
			recoverAndCheck(t, killDir, cfg.part, want, "leftover temp file")
			if _, err := os.Stat(tmp); !os.IsNotExist(err) {
				t.Fatal("recovery left the interrupted temp file behind")
			}
		})
	}
}

// TestDeltaChainFallback pins the anti-resurrection rule down the chain:
// corrupting the first delta of the live chain must (a) recover the full
// acknowledged state via WAL replay above the surviving link, (b) delete
// every delta past the break — sequence numbers are about to be reused,
// and a later-readable orphan would hijack a future recovery — and (c)
// leave a store a second recovery reads identically. Corrupting the
// newest *base* must instead fall back to the retained previous base and
// walk *its* delta chain forward.
func TestDeltaChainFallback(t *testing.T) {
	const part = shard.HashPartition

	t.Run("mid-chain-delta", func(t *testing.T) {
		dir := t.TempDir()
		want := buildDeltaStore(t, dir, part)
		sdir := filepath.Join(dir, shardDirName(0))
		bases, err := listSeqFiles(sdir, "ckpt-", ".ckpt")
		if err != nil || len(bases) < 2 {
			t.Fatalf("want 2 bases, have %v (err %v)", bases, err)
		}
		deltas, err := listSeqFiles(sdir, "delta-", ".dckpt")
		if err != nil {
			t.Fatal(err)
		}
		newBase := bases[len(bases)-1]
		var live []uint64
		for _, d := range deltas {
			if d > newBase {
				live = append(live, d)
			}
		}
		if len(live) < 2 {
			t.Fatalf("want a live chain of >= 2 deltas past base %d, have %v", newBase, live)
		}
		path := filepath.Join(sdir, deltaName(live[0]))
		blob, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		blob[dckptHeaderSize+2] ^= 0x40 // inside the cpma payload
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			t.Fatal(err)
		}

		recoverAndCheck(t, dir, part, want, "live chain broken at first delta")
		for _, d := range live {
			if _, err := os.Stat(filepath.Join(sdir, deltaName(d))); !os.IsNotExist(err) {
				t.Fatalf("delta %d past the break survived recovery", d)
			}
		}
		// Idempotence: a second recovery of the repaired store agrees.
		recoverAndCheck(t, dir, part, want, "second recovery")
	})

	t.Run("newest-base", func(t *testing.T) {
		dir := t.TempDir()
		want := buildDeltaStore(t, dir, part)
		sdir := filepath.Join(dir, shardDirName(0))
		bases, err := listSeqFiles(sdir, "ckpt-", ".ckpt")
		if err != nil || len(bases) < 2 {
			t.Fatalf("want 2 bases, have %v (err %v)", bases, err)
		}
		path := filepath.Join(sdir, checkpointName(bases[len(bases)-1]))
		blob, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		blob[len(blob)/2] ^= 0x20
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			t.Fatal(err)
		}

		recoverAndCheck(t, dir, part, want, "newest base corrupted")
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Fatal("rejected base left on disk")
		}
		recoverAndCheck(t, dir, part, want, "second recovery after base fallback")
	})
}

// TestConcurrentCheckpointRace: explicit Checkpoint calls racing the
// background checkpointer (and each other) during live ingest. Before
// writeCheckpoint moved to unique temp names, both writers shared one
// literal "ckpt.tmp" per shard directory, so this interleaving could
// rename a file another writer was still writing through. Run under
// -race in CI; the correctness check is the reopened store.
func TestConcurrentCheckpointRace(t *testing.T) {
	dir := t.TempDir()
	opt := shard.Options{
		SyncEvery: 1, CheckpointEveryBatches: 2, CompactEveryDeltas: 2,
	}
	s, st := openSet(t, dir, 2, opt)
	r := workload.NewRNG(17)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := st.Checkpoint(); err != nil {
				t.Errorf("explicit checkpoint: %v", err)
				return
			}
		}
	}()
	for i := 0; i < 120; i++ {
		s.InsertBatch(workload.Uniform(r, 200, 22), false)
		if i%4 == 3 {
			s.Flush()
		}
	}
	s.Flush()
	close(stop)
	wg.Wait()
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	want := s.Keys()
	s.Close()

	s2, _ := openSet(t, dir, 2, opt)
	defer s2.Close()
	if err := s2.Validate(); err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(want, s2.Keys()) {
		t.Fatal("reopen after racing checkpoints lost data")
	}
}

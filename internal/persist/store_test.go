package persist

import (
	"os"
	"path/filepath"
	"slices"
	"testing"
	"time"

	"repro/internal/shard"
	"repro/internal/workload"
)

// reopen closes nothing: it opens the store at dir with the same options
// and returns the recovered set (callers close both).
func openSet(t *testing.T, dir string, shards int, opt shard.Options) (*shard.Sharded, *Store) {
	t.Helper()
	opt.Dir = dir
	s, st, err := OpenSharded(shards, &opt)
	if err != nil {
		t.Fatalf("OpenSharded: %v", err)
	}
	return s, st
}

func TestDurableReopenEquality(t *testing.T) {
	for _, cfg := range []struct {
		name string
		opt  shard.Options
	}{
		{"hash", shard.Options{SyncEvery: 4}},
		{"range", shard.Options{Partition: shard.RangePartition, KeyBits: 24, SyncEvery: 4}},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			dir := t.TempDir()
			r := workload.NewRNG(1)
			s, _ := openSet(t, dir, 4, cfg.opt)
			var want []uint64
			keys := workload.Uniform(r, 30_000, 24)
			s.InsertBatchAsync(keys[:20_000], false)
			s.RemoveBatchAsync(keys[:5_000], false)
			s.InsertBatch(keys[20_000:], false)
			s.Flush()
			want = s.Keys()
			wantStats := s.PersistStats()
			if wantStats.AppendedBatches == 0 || wantStats.Fsyncs == 0 {
				t.Fatalf("no WAL traffic recorded: %+v", wantStats)
			}
			s.Close()

			s2, _ := openSet(t, dir, 4, cfg.opt)
			defer s2.Close()
			if err := s2.Validate(); err != nil {
				t.Fatalf("recovered set invalid: %v", err)
			}
			if !slices.Equal(want, s2.Keys()) {
				t.Fatalf("recovered keys differ: %d vs %d", len(want), s2.Len())
			}
			st2 := s2.PersistStats()
			if st2.RecoveredKeys != uint64(len(want)) {
				t.Fatalf("RecoveredKeys %d, want %d", st2.RecoveredKeys, len(want))
			}
			if st2.ReplayedBatches == 0 {
				t.Fatal("expected WAL replay on reopen without checkpoints")
			}

			// The recovered set keeps working durably.
			s2.Insert(1)
			s2.Flush()
		})
	}
}

func TestCheckpointTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	r := workload.NewRNG(2)
	s, _ := openSet(t, dir, 2, shard.Options{SyncEvery: 1})
	defer s.Close()

	for i := 0; i < 3; i++ {
		s.InsertBatch(workload.Uniform(r, 5_000, 30), false)
		if err := s.Checkpoint(); err != nil {
			t.Fatalf("Checkpoint %d: %v", i, err)
		}
	}
	st := s.PersistStats()
	if st.Checkpoints < 6 { // 2 shards x 3 checkpoints
		t.Fatalf("Checkpoints = %d, want >= 6", st.Checkpoints)
	}
	if st.CheckpointBytes == 0 {
		t.Fatal("CheckpointBytes not reported")
	}
	// After >= 2 checkpoints per shard the first segments must be gone.
	if st.TruncatedSegments == 0 {
		t.Fatalf("no WAL segments truncated: %+v", st)
	}
	for p := 0; p < 2; p++ {
		sdir := filepath.Join(dir, shardDirName(p))
		ckpts, _ := listSeqFiles(sdir, "ckpt-", ".ckpt")
		if len(ckpts) > 2 {
			t.Fatalf("shard %d retains %d checkpoints, want <= 2", p, len(ckpts))
		}
		segs, _ := listSeqFiles(sdir, "wal-", ".log")
		if len(segs) == 0 {
			t.Fatalf("shard %d has no active segment", p)
		}
	}

	// A checkpointed store recovers without replay.
	want := s.Keys()
	s.Close()
	s2, _ := openSet(t, dir, 2, shard.Options{SyncEvery: 1})
	defer s2.Close()
	if !slices.Equal(want, s2.Keys()) {
		t.Fatal("recovered keys differ after checkpointed close")
	}
	if st2 := s2.PersistStats(); st2.ReplayedBatches != 0 {
		t.Fatalf("replayed %d batches despite fresh checkpoint", st2.ReplayedBatches)
	}
}

func TestBackgroundCheckpointer(t *testing.T) {
	dir := t.TempDir()
	r := workload.NewRNG(3)
	s, st := openSet(t, dir, 2, shard.Options{SyncEvery: -1, SyncBytes: -1, CheckpointEveryBatches: 8})
	defer s.Close()
	for i := 0; i < 64; i++ {
		s.InsertBatch(workload.Uniform(r, 500, 30), false)
	}
	s.Flush()
	// The checkpointer runs asynchronously (file + dir fsyncs can take a
	// while on a cold CI disk), so wait on wall clock, not iteration
	// count.
	deadline := time.Now().Add(30 * time.Second)
	for st.ckpts.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if st.ckpts.Load() == 0 {
		t.Fatal("background checkpointer never fired")
	}
}

func TestManifestMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	s, _ := openSet(t, dir, 4, shard.Options{})
	s.Insert(7)
	s.Close()

	if _, _, err := OpenSharded(8, &shard.Options{Dir: dir}); err == nil {
		t.Fatal("reopen with a different shard count succeeded")
	}
	if _, _, err := OpenSharded(4, &shard.Options{Dir: dir, Partition: shard.RangePartition}); err == nil {
		t.Fatal("reopen with a different partition succeeded")
	}
	s2, _ := openSet(t, dir, 4, shard.Options{})
	defer s2.Close()
	if !s2.Has(7) {
		t.Fatal("recovered set lost its key")
	}
}

func TestStoreCloseIdempotentAndSticky(t *testing.T) {
	dir := t.TempDir()
	s, st := openSet(t, dir, 1, shard.Options{})
	s.Insert(9)
	s.Close()
	if err := st.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := st.Append(0, false, []uint64{1}); err == nil {
		t.Fatal("Append on closed store succeeded")
	}
	if st.Err() == nil {
		t.Fatal("closed-store append did not stick as an error")
	}
	// The sticky error is visible through the set's public surface too —
	// the post-Close health check the durability contract points at.
	if s.PersistErr() == nil {
		t.Fatal("PersistErr does not surface the journal's sticky error")
	}
	if err := s.Checkpoint(); err == nil {
		t.Fatal("Checkpoint after Close should surface the sticky error")
	}
}

func TestDirectoryLock(t *testing.T) {
	dir := t.TempDir()
	s, _ := openSet(t, dir, 1, shard.Options{})
	if _, _, err := OpenSharded(1, &shard.Options{Dir: dir}); err == nil {
		t.Fatal("second concurrent open of the same store succeeded — WALs would interleave")
	}
	s.Insert(5)
	s.Close()
	// Close releases the lock; a sequential reopen is fine.
	s2, _ := openSet(t, dir, 1, shard.Options{})
	defer s2.Close()
	if !s2.Has(5) {
		t.Fatal("reopen after Close lost data")
	}
}

func TestNonDurableSetPersistAPI(t *testing.T) {
	s := shard.New(2, &shard.Options{Async: true})
	defer s.Close()
	if s.Durable() {
		t.Fatal("plain set claims durability")
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint on non-durable set: %v", err)
	}
	if st := s.PersistStats(); st != (shard.PersistStats{}) {
		t.Fatalf("non-durable set reports persist stats: %+v", st)
	}
}

func TestDirWithoutJournalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Options.Dir without Journal did not panic")
		}
	}()
	shard.New(2, &shard.Options{Dir: t.TempDir()})
}

// TestTornCheckpointTempIgnored simulates a crash mid-checkpoint: the temp
// file must be swept and recovery must fall back to the WAL.
func TestTornCheckpointTempIgnored(t *testing.T) {
	dir := t.TempDir()
	s, _ := openSet(t, dir, 1, shard.Options{SyncEvery: 1})
	s.InsertBatch([]uint64{1, 2, 3, 4, 5}, true)
	s.Flush()
	want := s.Keys()
	s.Close()

	tmp := filepath.Join(dir, shardDirName(0), "ckpt.tmp")
	if err := os.WriteFile(tmp, []byte("half a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, _ := openSet(t, dir, 1, shard.Options{SyncEvery: 1})
	defer s2.Close()
	if !slices.Equal(want, s2.Keys()) {
		t.Fatal("recovery with a leftover temp checkpoint lost data")
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("temp checkpoint not swept")
	}
}

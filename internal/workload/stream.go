package workload

// EdgeStream generates the streaming-graph workload: an unbounded,
// deterministic sequence of R-MAT edge batches interleaved with delete
// batches drawn from edges the stream previously inserted. Deletes are
// reservoir-sampled from a bounded window of past inserts, so they hit
// real (likely-present) edges without the generator retaining the whole
// history; sampling removes the entry from the reservoir. R-MAT repeats
// edges, so a delete can still name an edge a later insert re-added or an
// earlier delete already removed — harmless under set semantics, and the
// differential model replays the same sequence.
//
// Every batch is a function of the seed alone — two streams with the same
// parameters emit identical batch sequences — which is what lets the
// differential harness replay one stream into both F-Graph flavors and a
// model and demand byte-identical results. The stream never emits the edge
// (0,0): it packs to the reserved key 0 that the sharded graph cannot
// store (fgraph.ErrEdgeZeroZero), so it is redrawn at generation — one
// rule for every consumer instead of a filter in each.
type EdgeStream struct {
	r     *RNG
	scale int
	p     RMATParams
	// deleteFrac of each requested batch size is emitted as deletes (once
	// the reservoir has something to delete).
	deleteFrac float64

	reservoir []Edge
	seen      uint64 // inserts observed by the reservoir so far
}

// reservoirCap bounds the delete-candidate memory regardless of stream
// length.
const reservoirCap = 1 << 16

// NewEdgeStream returns a deterministic stream of R-MAT(scale) batches with
// the default paper parameters. deleteFrac in [0,1) is the fraction of each
// batch emitted as deletions of previously inserted edges; 0 disables
// deletes.
func NewEdgeStream(seed uint64, scale int, deleteFrac float64) *EdgeStream {
	if deleteFrac < 0 {
		deleteFrac = 0
	}
	if deleteFrac >= 1 {
		deleteFrac = 0.5
	}
	return &EdgeStream{
		r:          NewRNG(seed),
		scale:      scale,
		p:          DefaultRMAT(),
		deleteFrac: deleteFrac,
	}
}

// NumVertices returns the vertex-id space the stream draws from.
func (s *EdgeStream) NumVertices() int { return 1 << s.scale }

// Next returns the stream's next batch: n new directed edges to insert and
// about n*deleteFrac previously inserted edges to delete (fewer while the
// reservoir is warming up, nil when deletes are disabled). The caller
// applies deletes after inserts, or in any order — the differential model
// just has to match. Slices are freshly allocated each call.
func (s *EdgeStream) Next(n int) (inserts, deletes []Edge) {
	inserts = make([]Edge, n)
	for i := range inserts {
		e := rmatOne(s.r, s.scale, s.p)
		for e.Src == 0 && e.Dst == 0 {
			e = rmatOne(s.r, s.scale, s.p)
		}
		inserts[i] = e
	}
	nd := int(float64(n) * s.deleteFrac)
	if nd > len(s.reservoir) {
		nd = len(s.reservoir)
	}
	for i := 0; i < nd; i++ {
		j := s.r.Intn(len(s.reservoir))
		deletes = append(deletes, s.reservoir[j])
		last := len(s.reservoir) - 1
		s.reservoir[j] = s.reservoir[last]
		s.reservoir = s.reservoir[:last]
	}
	for _, e := range inserts {
		s.seen++
		if len(s.reservoir) < reservoirCap {
			s.reservoir = append(s.reservoir, e)
		} else if j := s.r.Uint64() % s.seen; j < reservoirCap {
			s.reservoir[j] = e
		}
	}
	return inserts, deletes
}

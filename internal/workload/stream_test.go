package workload

import "testing"

func TestEdgeStreamDeterministic(t *testing.T) {
	a := NewEdgeStream(7, 10, 0.25)
	b := NewEdgeStream(7, 10, 0.25)
	for round := 0; round < 20; round++ {
		ia, da := a.Next(500)
		ib, db := b.Next(500)
		if len(ia) != len(ib) || len(da) != len(db) {
			t.Fatalf("round %d: batch sizes diverge", round)
		}
		for i := range ia {
			if ia[i] != ib[i] {
				t.Fatalf("round %d: insert %d diverges", round, i)
			}
		}
		for i := range da {
			if da[i] != db[i] {
				t.Fatalf("round %d: delete %d diverges", round, i)
			}
		}
	}
}

func TestEdgeStreamDeletesComeFromInserts(t *testing.T) {
	s := NewEdgeStream(11, 9, 0.3)
	inserted := map[Edge]bool{}
	sawDelete := false
	for round := 0; round < 30; round++ {
		ins, del := s.Next(400)
		if len(ins) != 400 {
			t.Fatalf("round %d: %d inserts", round, len(ins))
		}
		for _, e := range del {
			if !inserted[e] {
				t.Fatalf("round %d: delete %v never inserted", round, e)
			}
			sawDelete = true
		}
		for _, e := range ins {
			inserted[e] = true
		}
		nv := s.NumVertices()
		for _, e := range ins {
			if int(e.Src) >= nv || int(e.Dst) >= nv {
				t.Fatalf("edge %v out of vertex range %d", e, nv)
			}
		}
	}
	if !sawDelete {
		t.Fatal("stream with deleteFrac 0.3 emitted no deletes")
	}
}

func TestEdgeStreamNoDeletes(t *testing.T) {
	s := NewEdgeStream(3, 8, 0)
	for round := 0; round < 5; round++ {
		_, del := s.Next(100)
		if del != nil {
			t.Fatalf("round %d: unexpected deletes", round)
		}
	}
}
